(* Command-line driver: compile, inspect, simulate and reproduce the
   paper's experiments from a terminal. *)

open Cmdliner
module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Transform = Casted_detect.Transform
module Schedule = Casted_sched.Schedule
module Simulator = Casted_sim.Simulator
module Outcome = Casted_sim.Outcome
module Montecarlo = Casted_sim.Montecarlo
module Report = Casted_report
module Engine = Casted_engine.Engine
module Pool = Casted_exec.Pool
module Obs = Casted_obs
module Store = Casted_store.Store
module Work = Casted_store.Work

let version = "1.1.0"

let find_workload name =
  match Registry.find name with
  | Some w -> w
  | None ->
      Printf.eprintf "unknown benchmark %s (try: %s)\n" name
        (String.concat ", " (Registry.names ()));
      exit 2

(* Common options. *)

let bench_arg =
  let doc = "Benchmark name (see $(b,casted list))." in
  Arg.(value & opt string "cjpeg" & info [ "w"; "benchmark" ] ~doc)

let scheme_names = String.concat ", " (List.map Scheme.name Scheme.all)

let scheme_conv =
  let parse s =
    match Scheme.of_string s with
    | Some v -> Ok v
    | None ->
        Error (`Msg (Printf.sprintf "unknown scheme %s (use %s)" s scheme_names))
  in
  let print ppf s = Format.pp_print_string ppf (Scheme.name s) in
  Arg.conv (parse, print)

let scheme_arg =
  let doc =
    "Scheme: NOED, SCED, DCED or CASTED (detection); TMR or ROLLBACK \
     (recovery)."
  in
  Arg.(value & opt scheme_conv Scheme.Casted & info [ "s"; "scheme" ] ~doc)

let issue_arg =
  Arg.(value & opt int 2 & info [ "issue" ] ~doc:"Issue width per cluster.")

let delay_arg =
  Arg.(value & opt int 2 & info [ "delay" ] ~doc:"Inter-cluster delay.")

let size_arg =
  let parse = function
    | "perf" -> Ok W.Perf
    | "fault" -> Ok W.Fault
    | s -> Error (`Msg ("unknown size " ^ s))
  in
  let print ppf s = Format.pp_print_string ppf (W.size_name s) in
  let size_conv = Arg.conv (parse, print) in
  Arg.(
    value
    & opt size_conv W.Fault
    & info [ "size" ] ~doc:"Input size: fault (small) or perf (large).")

let trials_arg =
  Arg.(
    value & opt int 300
    & info [ "trials" ] ~doc:"Monte-Carlo trials per campaign.")

let model_conv =
  let parse s =
    match Casted_sim.Fault.model_of_string s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown fault model %s (use %s)" s
                (String.concat ", "
                   (List.map Casted_sim.Fault.model_name
                      Casted_sim.Fault.all_models))))
  in
  let print ppf m =
    Format.pp_print_string ppf (Casted_sim.Fault.model_name m)
  in
  Arg.conv (parse, print)

let model_arg =
  let doc =
    "Fault model: $(b,reg-bit) (the paper's single register bit flip), \
     $(b,burst) (2-4 adjacent bits), $(b,mem) (cache-line corruption), \
     $(b,control) (wrong-direction branch) or $(b,xcluster) (corrupted \
     inter-cluster transfer)."
  in
  Arg.(
    value
    & opt model_conv Casted_sim.Fault.Reg_bit
    & info [ "fault-model" ] ~docv:"MODEL" ~doc)

let ci_halfwidth_arg =
  let doc =
    "Stop the campaign early once the detected-rate 95% Wilson confidence \
     interval is no wider than ±$(docv) percentage points. Checked at \
     fixed trial-count boundaries, so the stopping point is independent \
     of $(b,--jobs)."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "ci-halfwidth" ] ~docv:"PP" ~doc)

let checkpoint_arg =
  let doc =
    "Write the partial tally to $(docv) periodically (and at the end), so \
     a killed campaign can be resumed with $(b,--resume)."
  in
  Arg.(
    value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let checkpoint_every_arg =
  let doc = "Checkpoint period, in trials (rounded to chunk boundaries)." in
  Arg.(value & opt int 256 & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let resume_arg =
  let doc =
    "Resume from the $(b,--checkpoint) file. The resumed campaign is \
     bit-identical to an uninterrupted one; the checkpoint must come from \
     the same benchmark/scheme/seed/model/trials configuration."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let store_arg =
  let doc =
    "Persistent result store directory (created if absent). The campaign \
     becomes incremental: a cell whose tally is already banked at this \
     (benchmark, scheme, config, fault model, seed, trials) identity is \
     served with zero simulation; a partially banked cell resumes at its \
     banked trial index; the final tally is written back. Incompatible \
     with $(b,--ci-halfwidth) and $(b,--checkpoint)/$(b,--resume) (the \
     store subsumes both)."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let shard_conv =
  let parse s =
    match String.split_on_char '/' s with
    | [ k; n ] -> (
        match (int_of_string_opt k, int_of_string_opt n) with
        | Some k, Some n when n >= 1 && k >= 0 && k < n -> Ok (k, n)
        | _ -> Error (`Msg (Printf.sprintf "bad shard %S (use K/N, 0 <= K < N)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad shard %S (use K/N, 0 <= K < N)" s))
  in
  let print ppf (k, n) = Format.fprintf ppf "%d/%d" k n in
  Arg.conv (parse, print)

let shard_arg =
  let doc =
    "Simulate only shard $(docv) (= K/N, zero-based) of the campaign: the \
     64-trial chunks whose index ≡ K (mod N). Requires $(b,--store); run \
     the other shards as separate processes against the same store and \
     the cell's merged tally — bit-identical to an unsharded run — is \
     published when the last shard lands."
  in
  Arg.(value & opt (some shard_conv) None & info [ "shard" ] ~docv:"K/N" ~doc)

let open_store ?(create = true) dir =
  match Store.open_dir ~create dir with
  | Ok s -> s
  | Error msg ->
      Printf.eprintf "casted: %s\n" msg;
      exit 2

let jobs_arg =
  let doc =
    "Worker domains for the experiment engine: sweep points and \
     Monte-Carlo trials fan out over $(docv) domains. Defaults to \
     $(b,CASTED_JOBS) or the number of cores. Results are identical for \
     every $(docv), including 1 (sequential)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

(* Resolve --jobs against CASTED_JOBS / core count, rejecting malformed
   values loudly. *)
let resolve_jobs = function
  | Some n when n >= 1 -> n
  | Some n ->
      Printf.eprintf "casted: --jobs must be >= 1 (got %d)\n" n;
      exit 2
  | None -> (
      match Pool.default_jobs () with
      | Ok n -> n
      | Error msg ->
          Printf.eprintf "casted: %s\n" msg;
          exit 2)

let with_engine jobs f = Engine.with_engine ~jobs:(resolve_jobs jobs) f

(* Observability options, shared by the experiment subcommands.
   Collection is passive — enabling it never changes a simulation
   outcome or a campaign tally — so these can be combined freely with
   any other option. *)

let trace_arg =
  let doc =
    "Record span traces (per-pass compile spans, scheduler spans, \
     Monte-Carlo chunks, pool tasks) and write them to $(docv) as Chrome \
     trace_event JSON, loadable in chrome://tracing or Perfetto."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Collect runtime metrics (simulator counters, cache hits/misses, \
     engine cache and pool statistics) and print them after the normal \
     output."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Run [f] with tracing/metrics enabled as requested, then emit the
   artifacts — even when [f] exits through an exception. *)
let with_obs ~trace ~metrics f =
  if metrics then Obs.Metrics.set_enabled true;
  if trace <> None then Obs.Trace.set_enabled true;
  Obs.Trace.name_track "main";
  Fun.protect
    ~finally:(fun () ->
      (match trace with
      | Some path ->
          Obs.Sink.write_trace ~path;
          Printf.eprintf "casted: wrote %d trace events to %s\n%!"
            (List.length (Obs.Trace.events ()))
            path
      | None -> ());
      if metrics then begin
        print_newline ();
        print_string (Obs.Sink.metrics_text ())
      end)
    f

(* Subcommands. *)

let list_cmd =
  let run () =
    print_string (Report.Static_tables.table2 ());
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available benchmarks (Table II)")
    Term.(const run $ const ())

let compile_cmd =
  let run bench scheme issue delay size dump_ir dump_sched =
    let w = find_workload bench in
    let program = w.W.build size in
    let compiled = Pipeline.compile ~scheme ~issue_width:issue ~delay program in
    Format.printf "%s / %s on %a@." bench (Scheme.name scheme)
      Casted_machine.Config.pp compiled.Pipeline.config;
    Format.printf "instrumentation: %a (expansion %.2fx)@." Transform.pp_stats
      compiled.Pipeline.stats
      (Transform.expansion compiled.Pipeline.stats);
    if dump_ir then
      Format.printf "@.%a@." Casted_ir.Program.pp compiled.Pipeline.program;
    if dump_sched then
      List.iter
        (fun (_, fs) -> Format.printf "@.%a@." Schedule.pp_func fs)
        compiled.Pipeline.schedule.Schedule.funcs;
    0
  in
  let dump_ir =
    Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the hardened IR.")
  in
  let dump_sched =
    Arg.(value & flag & info [ "dump-schedule" ] ~doc:"Print the schedules.")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Run the detection + assignment + scheduling pipeline")
    Term.(
      const run $ bench_arg $ scheme_arg $ issue_arg $ delay_arg $ size_arg
      $ dump_ir $ dump_sched)

let run_cmd =
  let run bench scheme issue delay size trace metrics =
    with_obs ~trace ~metrics (fun () ->
        let w = find_workload bench in
        let program = w.W.build size in
        let compiled =
          Pipeline.compile ~scheme ~issue_width:issue ~delay program
        in
        let r = Simulator.run compiled.Pipeline.schedule in
        Format.printf "%s / %s on %a@." bench (Scheme.name scheme)
          Casted_machine.Config.pp compiled.Pipeline.config;
        Format.printf "%a@." Outcome.pp r;
        Format.printf
          "dynamic roles: %d original, %d replica, %d check, %d copy@."
          r.Outcome.dyn_by_role.(0) r.Outcome.dyn_by_role.(1)
          r.Outcome.dyn_by_role.(2) r.Outcome.dyn_by_role.(3);
        Format.printf "slot occupancy: %.1f%% of %d offered@."
          (100.0 *. Outcome.occupancy r)
          r.Outcome.slots_total;
        Format.printf "cache: %a@." Casted_cache.Hierarchy.pp_stats
          r.Outcome.cache;
        0)
  in
  Cmd.v (Cmd.info "run" ~doc:"Simulate one benchmark under one scheme")
    Term.(
      const run $ bench_arg $ scheme_arg $ issue_arg $ delay_arg $ size_arg
      $ trace_arg $ metrics_arg)

let sweep_cmd =
  let run benches size jobs trace metrics =
    with_obs ~trace ~metrics (fun () ->
        let benchmarks = if benches = [] then None else Some benches in
        with_engine jobs (fun engine ->
            let sweep = Report.Perf_sweep.run ~engine ~size ?benchmarks () in
            print_string (Report.Perf_sweep.render_all sweep);
            print_string
              (Report.Perf_sweep.render_summary
                 (Report.Perf_sweep.summarize sweep)));
        0)
  in
  let benches =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmarks (default: all).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Reproduce Figs. 6-7: slowdowns over issue widths and delays")
    Term.(
      const run $ benches $ size_arg $ jobs_arg $ trace_arg $ metrics_arg)

let scaling_cmd =
  let run benches size jobs =
    let benchmarks = if benches = [] then None else Some benches in
    with_engine jobs (fun engine ->
        let sweep = Report.Perf_sweep.run ~engine ~size ?benchmarks () in
        print_string (Report.Scaling.render_all sweep));
    0
  in
  let benches =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmarks (default: all).")
  in
  Cmd.v (Cmd.info "scaling" ~doc:"Reproduce Fig. 8: ILP scaling")
    Term.(const run $ benches $ size_arg $ jobs_arg)

let faults_cmd =
  let run fig trials bench model jobs trace metrics =
    with_obs ~trace ~metrics (fun () ->
        with_engine jobs (fun engine ->
            let rows =
              match fig with
              | 9 -> Report.Coverage.fig9 ~engine ~model ~trials ()
              | 10 ->
                  Report.Coverage.fig10 ~engine ~model ~trials
                    ~benchmark:bench ()
              | n ->
                  Printf.eprintf "unknown figure %d (use 9 or 10)\n" n;
                  exit 2
            in
            Printf.printf "fault model: %s (rates ± 95%% Wilson half-width)\n"
              (Casted_sim.Fault.model_name model);
            print_string (Report.Coverage.render rows));
        0)
  in
  let fig =
    Arg.(
      value & opt int 9
      & info [ "fig" ] ~doc:"Which figure to reproduce: 9 or 10.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Reproduce Figs. 9-10: Monte-Carlo fault coverage")
    Term.(
      const run $ fig $ trials_arg $ bench_arg $ model_arg $ jobs_arg
      $ trace_arg $ metrics_arg)

let dme_cmd =
  let run bench trials issue delay jobs trace metrics =
    with_obs ~trace ~metrics (fun () ->
        with_engine jobs (fun engine ->
            let rows =
              Report.Coverage.dme_coverage ~engine ~trials ~issue ~delay
                ~benchmark:bench ()
            in
            print_string (Report.Coverage.render_dme rows));
        0)
  in
  Cmd.v
    (Cmd.info "dme"
       ~doc:
         "DME escape coverage: the fraction of mem/xcluster silent data \
          corruptions that escape CASTED's bit-identical replication but \
          are caught by the decorrelated multi-version scheme")
    Term.(
      const run $ bench_arg $ trials_arg $ issue_arg $ delay_arg $ jobs_arg
      $ trace_arg $ metrics_arg)

let tables_cmd =
  let run issue delay =
    let config = Casted_machine.Config.dual_core ~issue_width:issue ~delay in
    print_endline "Table I: processor configuration";
    print_string (Report.Static_tables.table1 config);
    print_endline "\nTable II: benchmarks";
    print_string (Report.Static_tables.table2 ());
    print_endline "\nTable III: compiler-based error detection schemes";
    print_string (Report.Static_tables.table3 ());
    0
  in
  Cmd.v (Cmd.info "tables" ~doc:"Print the paper's static tables (I-III)")
    Term.(const run $ issue_arg $ delay_arg)

let no_replay_arg =
  let doc =
    "Disable golden-prefix replay and run every trial full-length. Replay \
     (the default) starts each trial from the golden-run snapshot nearest \
     its injection point; results are bit-identical either way, replay is \
     just faster."
  in
  Arg.(value & flag & info [ "no-replay" ] ~doc)

let no_compile_arg =
  let doc =
    "Disable stage-2 closure compilation and run every trial on the \
     decoded interpreter. The compiled path (the default) threads each \
     program through pre-specialized closures; tallies are bit-identical \
     either way, compiled is just faster."
  in
  Arg.(value & flag & info [ "no-compile" ] ~doc)

let allow_legacy_checkpoint_arg =
  let doc =
    "Allow $(b,--resume) to load a legacy identity-less checkpoint file. \
     Such files carry nothing tying them to this campaign, so they are \
     refused by default."
  in
  Arg.(value & flag & info [ "allow-legacy-checkpoint" ] ~doc)

let retry_budget_arg =
  let doc =
    "Rollback retry budget: how many region re-executions a trial may \
     spend before its original failure is reported. Defaults to the \
     engine's budget for ROLLBACK and to no recovery loop for the other \
     schemes."
  in
  Arg.(
    value & opt (some int) None & info [ "retry-budget" ] ~docv:"N" ~doc)

let min_recovered_arg =
  let doc =
    "Fail (exit 1) when the recovered fraction falls below $(docv) percent \
     — a CI guard for recovery campaigns."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "min-recovered" ] ~docv:"PCT" ~doc)

(* MWTF (Reis et al.) needs the unprotected runtime: the golden cycles
   of the NOED build of the same benchmark at the same issue width. *)
let noed_baseline_cycles engine ~bench ~issue =
  let key =
    Casted_engine.Cache.key ~workload:bench ~size:W.Fault ~scheme:Scheme.Noed
      ~issue_width:issue ~delay:1 ()
  in
  let _, run = Engine.simulate engine key in
  run.Outcome.cycles

let pp_mwtf ppf m =
  if Float.is_integer m && Float.abs m < 1e9 then
    Format.fprintf ppf "%.0f" m
  else Format.fprintf ppf "%.2f" m

let campaign_cmd =
  let run bench scheme issue delay trials model ci_halfwidth checkpoint
      checkpoint_every resume no_replay no_compile allow_legacy_checkpoint
      retry_budget min_recovered store_dir shard jobs trace metrics =
    if resume && checkpoint = None then begin
      Printf.eprintf "casted: --resume requires --checkpoint FILE\n";
      exit 2
    end;
    if shard <> None && store_dir = None then begin
      Printf.eprintf "casted: --shard requires --store DIR\n";
      exit 2
    end;
    if store_dir <> None && ci_halfwidth <> None then begin
      Printf.eprintf
        "casted: --store cannot be combined with --ci-halfwidth (early \
         stopping would make the banked trial count depend on the sampling \
         path)\n";
      exit 2
    end;
    if store_dir <> None && (checkpoint <> None || resume) then begin
      Printf.eprintf
        "casted: --store subsumes --checkpoint/--resume — the store is the \
         durable partial tally\n";
      exit 2
    end;
    with_obs ~trace ~metrics @@ fun () ->
    with_engine jobs (fun engine ->
        (match Casted_workloads.Registry.find bench with
        | Some _ -> ()
        | None ->
            Printf.eprintf "unknown benchmark %s (try: %s)\n" bench
              (String.concat ", " (Casted_workloads.Registry.names ()));
            exit 2);
        let spec =
          Casted_engine.Cache.key ~workload:bench ~size:W.Fault ~scheme
            ~issue_width:issue ~delay ()
        in
        let store = Option.map open_store store_dir in
        let sc =
          Engine.campaign_stored engine ~model ?ci_halfwidth ?checkpoint
            ~checkpoint_every ~resume ~replay:(not no_replay)
            ~compile:(not no_compile) ~allow_legacy_checkpoint ?retry_budget
            ?store ?shard ~trials spec
        in
        let result = sc.Engine.result in
        Format.printf "%s / %s issue %d delay %d (%d jobs)@." bench
          (Scheme.name scheme) issue delay (Engine.jobs engine);
        if Montecarlo.inapplicable result then begin
          (* No injection sites for this model in this cell (e.g. an
             xcluster campaign on a single-cluster scheme): a clean
             skip, distinct from both success (0) and a failed
             coverage gate (1). *)
          Format.printf
            "model %s inapplicable: no injection sites in this cell \
             (population 0) — skipped@."
            (Casted_sim.Fault.model_name model);
          exit 3
        end;
        if ci_halfwidth <> None && result.Montecarlo.trials < trials then
          Format.printf
            "stopped early at %d/%d trials (detected-rate CI half-width ≤ \
             ±%.2fpp)@."
            result.Montecarlo.trials trials
            (Option.value ci_halfwidth ~default:0.0);
        (match (store_dir, shard) with
        | Some dir, _ ->
            Format.printf
              "store: %s — %d trials served, %d simulated%s@." dir
              sc.Engine.served sc.Engine.simulated
              (if sc.Engine.complete then ""
               else
                 Format.asprintf " (shard %d/%d tally only — other shards \
                                  outstanding)"
                   (fst (Option.value shard ~default:(0, 1)))
                   (snd (Option.value shard ~default:(0, 1))))
        | None, _ -> ());
        Format.printf "%a@." Montecarlo.pp result;
        (match result.Montecarlo.replay with
        | Some s -> Format.printf "%a@." Montecarlo.pp_replay s
        | None -> ());
        let recovered_pct =
          100.0 *. Montecarlo.recovered_fraction result
        in
        let baseline_cycles = noed_baseline_cycles engine ~bench ~issue in
        Format.printf
          "recovered: %d/%d (%.1f%%); MWTF vs NOED (%d baseline cycles): \
           %a@."
          result.Montecarlo.recovered result.Montecarlo.trials recovered_pct
          baseline_cycles pp_mwtf
          (Montecarlo.mwtf ~baseline_cycles result);
        match min_recovered with
        | Some threshold when sc.Engine.complete && recovered_pct < threshold
          ->
            Printf.eprintf
              "casted: recovered fraction %.1f%% is below the required \
               %.1f%%\n"
              recovered_pct threshold;
            exit 1
        | _ -> ());
    0
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run one Monte-Carlo fault campaign (checkpointable, resumable, \
          incremental against a persistent result store, shardable across \
          processes, with Wilson confidence intervals, optional early \
          stopping, and recovered-fraction / MWTF reporting)")
    Term.(
      const run $ bench_arg $ scheme_arg $ issue_arg $ delay_arg $ trials_arg
      $ model_arg $ ci_halfwidth_arg $ checkpoint_arg $ checkpoint_every_arg
      $ resume_arg $ no_replay_arg $ no_compile_arg
      $ allow_legacy_checkpoint_arg $ retry_budget_arg $ min_recovered_arg
      $ store_arg $ shard_arg $ jobs_arg $ trace_arg $ metrics_arg)

let recover_cmd =
  let run bench issue delay trials model retry_budget jobs trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    ignore (find_workload bench);
    with_engine jobs (fun engine ->
        let key scheme =
          Casted_engine.Cache.key ~workload:bench ~size:W.Fault ~scheme
            ~issue_width:issue ~delay ()
        in
        let baseline_cycles = noed_baseline_cycles engine ~bench ~issue in
        Format.printf
          "%s issue %d delay %d: %d %s trials per scheme (%d jobs, NOED \
           baseline %d cycles)@."
          bench issue delay trials
          (Casted_sim.Fault.model_name model)
          (Engine.jobs engine) baseline_cycles;
        Format.printf "%-10s %9s %9s %10s %10s %6s %8s@." "scheme" "overhead"
          "benign%" "recovered%" "detected%" "sdc%" "mwtf";
        List.iter
          (fun scheme ->
            let r =
              Engine.campaign engine ~model ?retry_budget ~trials (key scheme)
            in
            let overhead =
              float_of_int r.Montecarlo.golden_cycles
              /. float_of_int baseline_cycles
            in
            let mwtf =
              Format.asprintf "%a" pp_mwtf (Montecarlo.mwtf ~baseline_cycles r)
            in
            Format.printf "%-10s %8.2fx %9.1f %10.1f %10.1f %6.1f %8s@."
              (Scheme.name scheme) overhead
              (Montecarlo.percent r Montecarlo.Benign)
              (Montecarlo.percent r Montecarlo.Recovered)
              (Montecarlo.percent r Montecarlo.Detected)
              (Montecarlo.percent r Montecarlo.Data_corrupt)
              mwtf)
          [ Scheme.Casted; Scheme.Tmr; Scheme.Rollback ]);
    0
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Run the recovery campaign: CASTED (detection), TMR (triplication \
          + majority voting) and ROLLBACK (region checkpoints + bounded \
          re-execution) side by side, with runtime overhead, recovered \
          fraction and MWTF against the NOED baseline")
    Term.(
      const run $ bench_arg $ issue_arg $ delay_arg $ trials_arg $ model_arg
      $ retry_budget_arg $ jobs_arg $ trace_arg $ metrics_arg)

let placement_cmd =
  let run bench issue size =
    print_string
      (Report.Utilization.placement_table ~benchmark:bench ~size
         ~issue_width:issue ~delays:[ 1; 2; 3; 4 ]);
    0
  in
  Cmd.v
    (Cmd.info "placement"
       ~doc:"Show how DCED and CASTED distribute code across clusters")
    Term.(const run $ bench_arg $ issue_arg $ size_arg)

let profile_cmd =
  let run bench scheme issue delay size n json =
    let w = find_workload bench in
    let program = w.W.build size in
    let compiled = Pipeline.compile ~scheme ~issue_width:issue ~delay program in
    let profile = Casted_sim.Profile.create () in
    let r = Simulator.run ~profile compiled.Pipeline.schedule in
    if json then begin
      let block (row : Casted_sim.Profile.row) =
        Obs.Json.Obj
          [
            ("func", Obs.Json.String row.Casted_sim.Profile.func);
            ("label", Obs.Json.String row.Casted_sim.Profile.label);
            ("visits", Obs.Json.Int row.Casted_sim.Profile.visits);
            ("cycles", Obs.Json.Int row.Casted_sim.Profile.cycles);
            ("share", Obs.Json.Float row.Casted_sim.Profile.share);
          ]
      in
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("benchmark", Obs.Json.String bench);
                ("scheme", Obs.Json.String (Scheme.name scheme));
                ("issue_width", Obs.Json.Int issue);
                ("delay", Obs.Json.Int delay);
                ("cycles", Obs.Json.Int r.Outcome.cycles);
                ("dyn_insns", Obs.Json.Int r.Outcome.dyn_insns);
                ("ipc", Obs.Json.Float (Outcome.ipc r));
                ("occupancy", Obs.Json.Float (Outcome.occupancy r));
                ( "blocks",
                  Obs.Json.List
                    (List.map block (Casted_sim.Profile.top ~n profile)) );
              ]))
    end
    else begin
      Format.printf "%s / %s: %a@.@." bench (Scheme.name scheme) Outcome.pp r;
      print_string (Casted_sim.Profile.render_top ~n profile)
    end;
    0
  in
  let top =
    Arg.(value & opt int 12 & info [ "top" ] ~doc:"How many blocks to show.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the profile as JSON instead of a rendered table.")
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Per-block execution profile of a benchmark")
    Term.(
      const run $ bench_arg $ scheme_arg $ issue_arg $ delay_arg $ size_arg
      $ top $ json)

let pressure_cmd =
  let run bench =
    let w = find_workload bench in
    let program = w.W.build W.Fault in
    let plain = Casted_ir.Pressure.of_program program in
    let hardened, _ =
      Casted_detect.Transform.program Casted_detect.Options.default program
    in
    let det = Casted_ir.Pressure.of_program hardened in
    Format.printf "%s register pressure:@." bench;
    Format.printf "  original: %a@." Casted_ir.Pressure.pp plain;
    Format.printf "  hardened: %a@." Casted_ir.Pressure.pp det;
    Format.printf "  spills on a 64/64/32 file (Table I): %b@."
      (Casted_ir.Pressure.exceeds det ~gp:64 ~fp:64 ~pr:32);
    0
  in
  Cmd.v
    (Cmd.info "pressure"
       ~doc:"Register pressure of the original vs hardened code")
    Term.(const run $ bench_arg)

let asm_cmd =
  let run file scheme issue delay emit =
    let text =
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Casted_ir.Asm.parse text with
    | Error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        1
    | Ok program -> (
        match Casted_ir.Validate.check_program program with
        | _ :: _ as errs ->
            List.iter (Printf.eprintf "%s: %s\n" file) errs;
            1
        | [] ->
            let compiled =
              Pipeline.compile ~scheme ~issue_width:issue ~delay program
            in
            if emit then
              print_string (Casted_ir.Asm.print compiled.Pipeline.program)
            else begin
              let r = Simulator.run compiled.Pipeline.schedule in
              Format.printf "%s / %s: %a@." file (Scheme.name scheme)
                Outcome.pp r
            end;
            0)
  in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Assembly (.casted) file.")
  in
  let emit =
    Arg.(
      value & flag
      & info [ "emit" ]
          ~doc:"Print the hardened assembly instead of simulating.")
  in
  Cmd.v
    (Cmd.info "asm"
       ~doc:"Parse a .casted assembly file, then harden and simulate it")
    Term.(const run $ file $ scheme_arg $ issue_arg $ delay_arg $ emit)

let trace_cmd =
  let run bench scheme issue delay size trials trace metrics =
    let path = Option.value trace ~default:"trace.json" in
    with_obs ~trace:(Some path) ~metrics (fun () ->
        let w = find_workload bench in
        let program = w.W.build size in
        let compiled =
          Pipeline.compile ~scheme ~issue_width:issue ~delay program
        in
        let r = Simulator.run compiled.Pipeline.schedule in
        Format.printf "%s / %s on %a@." bench (Scheme.name scheme)
          Casted_machine.Config.pp compiled.Pipeline.config;
        Format.printf "golden: %a@." Outcome.pp r;
        if trials > 0 then begin
          let mc = Montecarlo.run ~trials compiled.Pipeline.schedule in
          Format.printf "faults: %a@." Montecarlo.pp mc
        end;
        0)
  in
  let trials =
    Arg.(
      value & opt int 0
      & info [ "trials" ]
          ~doc:
            "Also run a Monte-Carlo campaign of $(docv) trials so the trace \
             shows the chunked campaign timeline (0: compile + simulate \
             only).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Compile and simulate one benchmark with span tracing on, writing \
          Chrome trace_event JSON (default trace.json) for chrome://tracing \
          or Perfetto")
    Term.(
      const run $ bench_arg $ scheme_arg $ issue_arg $ delay_arg $ size_arg
      $ trials $ trace_arg $ metrics_arg)

let verify_cmd =
  let run benches size jobs json =
    List.iter (fun b -> ignore (find_workload b)) benches;
    let benchmarks = if benches = [] then None else Some benches in
    let entries =
      Pool.with_pool ~jobs:(resolve_jobs jobs) (fun pool ->
          Casted_verify.Matrix.run ~pool ?benchmarks ~size ())
    in
    if json then
      print_endline (Obs.Json.to_string (Casted_verify.Matrix.to_json entries))
    else begin
      List.iter
        (fun e ->
          if
            e.Casted_verify.Matrix.diags <> []
            || e.Casted_verify.Matrix.divergences <> []
          then Format.printf "%a@." Casted_verify.Matrix.pp_entry e)
        entries;
      let diags, divs = Casted_verify.Matrix.totals entries in
      Format.printf "verify: %d entries, %d diagnostics, %d divergences@."
        (List.length entries) diags divs
    end;
    if Casted_verify.Matrix.clean entries then 0 else 1
  in
  let benches =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmarks to verify (default: all).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the full report as JSON on stdout.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Lint every schedule against the SWIFT invariants and \
          differentially check all six schemes (detection and recovery) \
          against the NOED reference across the example matrix; exits 1 on \
          any diagnostic or divergence")
    Term.(const run $ benches $ size_arg $ jobs_arg $ json)

let fuzz_cmd =
  let run programs seed program jobs reproducer =
    let failure =
      match program with
      | Some index ->
          Printf.printf "fuzz: replaying program %d of seed %d\n%!" index seed;
          Casted_verify.Fuzz.check_index ~seed index
      | None ->
          Pool.with_pool ~jobs:(resolve_jobs jobs) (fun pool ->
              Casted_verify.Fuzz.run ~pool ~programs ~seed ())
    in
    match failure with
    | None ->
        let n = match program with Some _ -> 1 | None -> programs in
        Printf.printf "fuzz: %d programs clean (seed %d)\n" n seed;
        0
    | Some f ->
        Format.printf "%a@." Casted_verify.Fuzz.pp_failure f;
        (match reproducer with
        | Some path ->
            let oc = open_out path in
            output_string oc f.Casted_verify.Fuzz.asm;
            close_out oc;
            Printf.printf
              "fuzz: wrote shrunk reproducer to %s (replay: casted fuzz \
               --seed %d --program %d)\n"
              path seed f.Casted_verify.Fuzz.index
        | None -> ());
        1
  in
  let programs =
    Arg.(
      value & opt int 200
      & info [ "programs" ] ~docv:"N" ~doc:"How many programs to generate.")
  in
  let seed =
    Arg.(
      value & opt int 0xC457ED
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Campaign seed. Program $(i,i) is derived deterministically \
             from (seed, i), independent of $(b,--jobs).")
  in
  let program =
    Arg.(
      value
      & opt (some int) None
      & info [ "program" ] ~docv:"K"
          ~doc:"Replay a single program index instead of a campaign.")
  in
  let reproducer =
    Arg.(
      value
      & opt (some string) None
      & info [ "reproducer" ] ~docv:"FILE"
          ~doc:"On failure, write the shrunk program here as assembly.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Push seeded random programs through the full pipeline under \
          detection and recovery schemes alike, failing on any lint \
          diagnostic or oracle divergence; failures are shrunk to a minimal \
          reproducer")
    Term.(const run $ programs $ seed $ program $ jobs_arg $ reproducer)

(* Store subcommands: inspect, audit and sweep a result store. *)

let store_dir_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Result store directory.")

let parse_size = function
  | "perf" -> Some W.Perf
  | "fault" -> Some W.Fault
  | _ -> None

(* Rebuild the engine campaign coordinates from an entry's explicit
   spec fields. [None] when any name no longer resolves (a store from a
   different casted version). *)
let campaign_of_spec (spec : Store.spec) =
  match
    ( Registry.find spec.Store.workload,
      parse_size spec.Store.size,
      Scheme.of_string spec.Store.scheme,
      Casted_sim.Fault.model_of_string spec.Store.model )
  with
  | Some _, Some size, Some scheme, Some model ->
      Some
        ( Casted_engine.Cache.key ~workload:spec.Store.workload ~size ~scheme
            ~issue_width:spec.Store.issue ~delay:spec.Store.delay (),
          model )
  | _ -> None

let pp_counts ppf counts =
  let names = [| "benign"; "detected"; "exception"; "sdc"; "timeout";
                 "recovered" |] in
  let first = ref true in
  Array.iteri
    (fun i n ->
      if n > 0 && i < Array.length names then begin
        Format.fprintf ppf "%s%d %s" (if !first then "" else ", ")
          n names.(i);
        first := false
      end)
    counts;
  if !first then Format.pp_print_string ppf "empty"

let store_ls_cmd =
  let run dir =
    let s = open_store ~create:false dir in
    match Store.list s with
    | Error msg ->
        Printf.eprintf "casted: %s\n" msg;
        1
    | Ok entries ->
        let corrupt = ref 0 in
        let trials = ref 0 in
        List.iter
          (function
            | Ok (e : Store.entry) ->
                trials := !trials + e.Store.trials_done;
                Format.printf "%-60s %6d trials  (%a)@."
                  (Store.address e.Store.key)
                  e.Store.trials_done pp_counts e.Store.counts
            | Error msg ->
                incr corrupt;
                Printf.eprintf "casted: %s\n" msg)
          entries;
        Format.printf "%d entries, %d trials banked%s@." (List.length entries)
          !trials
          (if !corrupt = 0 then ""
           else Printf.sprintf ", %d CORRUPT" !corrupt);
        if !corrupt = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "ls"
       ~doc:
         "List every banked tally (address, trial count, outcome \
          breakdown); corrupt or mis-addressed entries are reported and \
          exit 1")
    Term.(const run $ store_dir_pos)

let store_audit_cmd =
  let run dir sample jobs =
    let s = open_store ~create:false dir in
    match Store.list s with
    | Error msg ->
        Printf.eprintf "casted: %s\n" msg;
        1
    | Ok entries ->
        let corrupt =
          List.filter_map
            (function Error msg -> Some msg | Ok _ -> None)
            entries
        in
        List.iter (Printf.eprintf "casted: %s\n") corrupt;
        let entries =
          List.filter_map
            (function Ok (e : Store.entry) -> Some e | Error _ -> None)
            entries
        in
        (* Deterministic sample: the listing is sorted by address, take
           an even stride through it. *)
        let picked =
          if sample <= 0 || sample >= List.length entries then entries
          else begin
            let arr = Array.of_list entries in
            let n = Array.length arr in
            List.init sample (fun i -> arr.(i * n / sample))
          end
        in
        let audited = ref 0 and skipped = ref 0 and bad = ref 0 in
        with_engine jobs (fun engine ->
            List.iter
              (fun (e : Store.entry) ->
                match Option.map campaign_of_spec e.Store.spec with
                | None | Some None ->
                    incr skipped;
                    Printf.eprintf
                      "casted: skipping %s (no reconstructible spec)\n"
                      (Store.address e.Store.key)
                | Some (Some (key, model)) ->
                    incr audited;
                    let k = e.Store.key in
                    let retry_budget =
                      if k.Store.retry_budget < 0 then None
                      else Some k.Store.retry_budget
                    in
                    let shard = k.Store.shard in
                    let trials =
                      if snd shard = 1 then e.Store.trials_done
                      else k.Store.trials
                    in
                    let r =
                      Engine.campaign engine ~seed:k.Store.seed
                        ~fuel_factor:k.Store.fuel_factor ~model ?retry_budget
                        ~shard ~trials key
                    in
                    if
                      Montecarlo.counts r <> e.Store.counts
                      || r.Montecarlo.golden_cycles <> e.Store.golden_cycles
                      || r.Montecarlo.golden_dyn <> e.Store.golden_dyn
                      || r.Montecarlo.population <> e.Store.population
                    then begin
                      incr bad;
                      Format.eprintf
                        "casted: AUDIT MISMATCH %s@.  banked:      %a \
                         (golden %d cycles, %d insns, population %d)@.  \
                         resimulated: %a (golden %d cycles, %d insns, \
                         population %d)@."
                        (Store.address e.Store.key)
                        pp_counts e.Store.counts e.Store.golden_cycles
                        e.Store.golden_dyn e.Store.population pp_counts
                        (Montecarlo.counts r) r.Montecarlo.golden_cycles
                        r.Montecarlo.golden_dyn r.Montecarlo.population
                    end)
              picked);
        Format.printf
          "audit: %d entries re-simulated, %d skipped, %d mismatched%s@."
          !audited !skipped !bad
          (if corrupt = [] then ""
           else Printf.sprintf ", %d corrupt" (List.length corrupt));
        if !bad = 0 && corrupt = [] then 0 else 1
  in
  let sample =
    Arg.(
      value & opt int 0
      & info [ "sample" ] ~docv:"N"
          ~doc:
            "Audit only $(docv) entries (an even, deterministic stride \
             through the address-sorted listing). 0 audits everything.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Re-simulate banked tallies and fail loudly (exit 1) on any \
          mismatch — the store's end-to-end integrity check: a mismatch \
          means the simulator no longer reproduces the banked campaign")
    Term.(const run $ store_dir_pos $ sample $ jobs_arg)

let store_gc_cmd =
  let run dir force =
    let s = open_store ~create:false dir in
    let tmp = Store.gc_tmp s in
    let locks = Work.gc_locks ~force s in
    match Store.gc_shards s with
    | Error msg ->
        Printf.eprintf "casted: %s\n" msg;
        1
    | Ok shards ->
        Format.printf
          "gc: removed %d tmp files, %d stale locks, %d merged-away shard \
           entries@."
          tmp locks shards;
        0
  in
  let force =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:
            "Remove every lock, not just stale ones (only safe when no \
             worker is running).")
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Sweep debris: orphan tmp files from killed writers, stale locks \
          of dead workers, and shard entries already covered by a merged \
          full entry")
    Term.(const run $ store_dir_pos $ force)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect, audit and garbage-collect a persistent result store")
    [ store_ls_cmd; store_audit_cmd; store_gc_cmd ]

(* The worker: claim identity-keyed units from DIR/queue and stream
   tallies into the store. *)

let work_cmd =
  let run store_dir benches schemes issues delays models trials seed fuel
      enqueue enqueue_only jobs trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let s = open_store store_dir in
    let enqueued = ref 0 in
    if enqueue || enqueue_only then begin
      let benchmarks = if benches = [] then Registry.names () else benches in
      List.iter (fun b -> ignore (find_workload b)) benchmarks;
      List.iter
        (fun workload ->
          List.iter
            (fun scheme ->
              List.iter
                (fun issue ->
                  List.iter
                    (fun delay ->
                      List.iter
                        (fun model ->
                          let u =
                            {
                              Work.workload;
                              size = "fault";
                              scheme = Scheme.name scheme;
                              issue;
                              delay;
                              model = Casted_sim.Fault.model_name model;
                              seed;
                              trials;
                              fuel_factor = fuel;
                              retry_budget = -1;
                            }
                          in
                          if Work.enqueue s u then incr enqueued)
                        models)
                    delays)
                issues)
            schemes)
        benchmarks;
      Format.printf "work: enqueued %d new units@." !enqueued
    end;
    if enqueue_only then 0
    else begin
      let units =
        match Work.units s with
        | Ok us -> us
        | Error msg ->
            Printf.eprintf "casted: %s\n" msg;
            exit 2
      in
      let ran = ref 0 and busy = ref 0 and broken = ref 0 in
      let served = ref 0 and simulated = ref 0 in
      with_engine jobs (fun engine ->
          List.iter
            (function
              | Error msg ->
                  incr broken;
                  Printf.eprintf "casted: %s\n" msg
              | Ok (u : Work.unit_spec) -> (
                  match
                    ( Registry.find u.Work.workload,
                      parse_size u.Work.size,
                      Scheme.of_string u.Work.scheme,
                      Casted_sim.Fault.model_of_string u.Work.model )
                  with
                  | Some _, Some size, Some scheme, Some model -> (
                      match Work.claim s u with
                      | Work.Busy owner ->
                          incr busy;
                          Format.printf "work: %s busy (%s)@."
                            (Work.address u) owner
                      | Work.Claimed ->
                          Fun.protect
                            ~finally:(fun () -> Work.release s u)
                            (fun () ->
                              let key =
                                Casted_engine.Cache.key
                                  ~workload:u.Work.workload ~size ~scheme
                                  ~issue_width:u.Work.issue
                                  ~delay:u.Work.delay ()
                              in
                              let retry_budget =
                                if u.Work.retry_budget < 0 then None
                                else Some u.Work.retry_budget
                              in
                              let sc =
                                Engine.campaign_stored engine
                                  ~seed:u.Work.seed
                                  ~fuel_factor:u.Work.fuel_factor ~model
                                  ?retry_budget ~store:s
                                  ~trials:u.Work.trials key
                              in
                              incr ran;
                              served := !served + sc.Engine.served;
                              simulated := !simulated + sc.Engine.simulated;
                              Format.printf
                                "work: %s — %d served, %d simulated@."
                                (Work.address u) sc.Engine.served
                                sc.Engine.simulated))
                  | _ ->
                      incr broken;
                      Printf.eprintf
                        "casted: unit %s names an unknown \
                         workload/scheme/model — skipping\n"
                        (Work.address u)))
            units);
      Format.printf
        "work: %d units run (%d trials served from the store, %d \
         simulated), %d busy, %d broken@."
        !ran !served !simulated !busy !broken;
      if !broken = 0 then 0 else 1
    end
  in
  let benches =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"BENCHMARK"
          ~doc:"Benchmarks for $(b,--enqueue) (default: all).")
  in
  let schemes =
    Arg.(
      value
      & opt (list scheme_conv) [ Scheme.Casted ]
      & info [ "schemes" ] ~docv:"S,.."
          ~doc:"Schemes for $(b,--enqueue) (comma-separated).")
  in
  let issues =
    Arg.(
      value & opt (list int) [ 2 ]
      & info [ "issues" ] ~docv:"I,.." ~doc:"Issue widths for $(b,--enqueue).")
  in
  let delays =
    Arg.(
      value & opt (list int) [ 2 ]
      & info [ "delays" ] ~docv:"D,.." ~doc:"Delays for $(b,--enqueue).")
  in
  let models =
    Arg.(
      value
      & opt (list model_conv) [ Casted_sim.Fault.Reg_bit ]
      & info [ "models" ] ~docv:"M,.."
          ~doc:"Fault models for $(b,--enqueue).")
  in
  let seed =
    Arg.(
      value & opt int 0xCA57ED
      & info [ "seed" ] ~docv:"S" ~doc:"Campaign seed for enqueued units.")
  in
  let fuel =
    Arg.(
      value & opt int 10
      & info [ "fuel" ] ~docv:"F" ~doc:"Fuel factor for enqueued units.")
  in
  let enqueue =
    Arg.(
      value & flag
      & info [ "enqueue" ]
          ~doc:
            "First enqueue the benchmark × scheme × issue × delay × model \
             matrix as work units, then drain the queue.")
  in
  let enqueue_only =
    Arg.(
      value & flag
      & info [ "enqueue-only" ]
          ~doc:"Enqueue the matrix and exit without claiming any unit.")
  in
  let store_req =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:"Result store directory holding the queue (created if absent).")
  in
  Cmd.v
    (Cmd.info "work"
       ~doc:
         "Cooperative campaign worker: claim identity-keyed work units \
          from the store's queue via crash-tolerant lock files, simulate \
          each cell incrementally against the store, and release. Any \
          number of workers (or hosts sharing the directory) can drain one \
          queue; a killed worker's lock is broken automatically")
    Term.(
      const run $ store_req $ benches $ schemes $ issues $ delays $ models
      $ trials_arg $ seed $ fuel $ enqueue $ enqueue_only $ jobs_arg
      $ trace_arg $ metrics_arg)

let version_cmd =
  let run () =
    print_endline ("casted " ^ version);
    0
  in
  Cmd.v
    (Cmd.info "version" ~doc:"Print the casted version")
    Term.(const run $ const ())

let main =
  let doc = "CASTED: core-adaptive software transient error detection" in
  Cmd.group
    (Cmd.info "casted" ~doc ~version)
    [
      list_cmd; compile_cmd; run_cmd; sweep_cmd; scaling_cmd; faults_cmd;
      campaign_cmd; dme_cmd; tables_cmd; recover_cmd; placement_cmd;
      profile_cmd;
      pressure_cmd; asm_cmd; trace_cmd; verify_cmd; fuzz_cmd; store_cmd;
      work_cmd; version_cmd;
    ]

let () = exit (Cmd.eval' main)
