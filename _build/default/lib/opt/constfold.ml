module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Insn = Casted_ir.Insn
module Block = Casted_ir.Block
module Func = Casted_ir.Func

let is_pow2 v = Int64.compare v 0L > 0 && Int64.logand v (Int64.sub v 1L) = 0L

let log2 v =
  let rec go k x = if Int64.equal x 1L then k else go (k + 1) (Int64.shift_right_logical x 1) in
  go 0 v

(* Fold one instruction given the block-local constant environment.
   Returns the rewritten instruction (possibly unchanged). *)
let fold_insn lookup (insn : Insn.t) =
  let const r = lookup r in
  let movi v =
    { insn with Insn.op = Opcode.Movi; uses = [||]; imm = v }
  in
  let mov src = { insn with Insn.op = Opcode.Mov; uses = [| src |]; imm = 0L } in
  match insn.Insn.op with
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.And | Opcode.Or
  | Opcode.Xor | Opcode.Shl | Opcode.Shr | Opcode.Sra -> (
      match (const insn.Insn.uses.(0), const insn.Insn.uses.(1)) with
      | Some a, Some b ->
          (* Pure operations only; this match cannot see Div/Rem. *)
          let v =
            match insn.Insn.op with
            | Opcode.Add -> Int64.add a b
            | Opcode.Sub -> Int64.sub a b
            | Opcode.Mul -> Int64.mul a b
            | Opcode.And -> Int64.logand a b
            | Opcode.Or -> Int64.logor a b
            | Opcode.Xor -> Int64.logxor a b
            | Opcode.Shl -> Int64.shift_left a (Int64.to_int b land 63)
            | Opcode.Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)
            | Opcode.Sra -> Int64.shift_right a (Int64.to_int b land 63)
            | _ -> assert false
          in
          movi v
      | _ -> insn)
  | Opcode.Addi -> (
      match const insn.Insn.uses.(0) with
      | Some a -> movi (Int64.add a insn.Insn.imm)
      | None ->
          if Int64.equal insn.Insn.imm 0L then mov insn.Insn.uses.(0)
          else insn)
  | Opcode.Muli -> (
      match const insn.Insn.uses.(0) with
      | Some a -> movi (Int64.mul a insn.Insn.imm)
      | None ->
          if Int64.equal insn.Insn.imm 1L then mov insn.Insn.uses.(0)
          else if Int64.equal insn.Insn.imm 0L then movi 0L
          else if is_pow2 insn.Insn.imm then
            {
              insn with
              Insn.op = Opcode.Shli;
              imm = Int64.of_int (log2 insn.Insn.imm);
            }
          else insn)
  | Opcode.Andi -> (
      match const insn.Insn.uses.(0) with
      | Some a -> movi (Int64.logand a insn.Insn.imm)
      | None -> if Int64.equal insn.Insn.imm 0L then movi 0L else insn)
  | Opcode.Xori -> (
      match const insn.Insn.uses.(0) with
      | Some a -> movi (Int64.logxor a insn.Insn.imm)
      | None ->
          if Int64.equal insn.Insn.imm 0L then mov insn.Insn.uses.(0)
          else insn)
  | Opcode.Shli -> (
      match const insn.Insn.uses.(0) with
      | Some a -> movi (Int64.shift_left a (Int64.to_int insn.Insn.imm land 63))
      | None ->
          if Int64.equal insn.Insn.imm 0L then mov insn.Insn.uses.(0)
          else insn)
  | Opcode.Shri -> (
      match const insn.Insn.uses.(0) with
      | Some a ->
          movi (Int64.shift_right_logical a (Int64.to_int insn.Insn.imm land 63))
      | None ->
          if Int64.equal insn.Insn.imm 0L then mov insn.Insn.uses.(0)
          else insn)
  | Opcode.Srai -> (
      match const insn.Insn.uses.(0) with
      | Some a -> movi (Int64.shift_right a (Int64.to_int insn.Insn.imm land 63))
      | None ->
          if Int64.equal insn.Insn.imm 0L then mov insn.Insn.uses.(0)
          else insn)
  (* [Mov] of a known constant is deliberately left alone: rewriting it
     to [Movi] would ping-pong with CSE, which rewrites duplicate [Movi]
     into [Mov]. Copy propagation plus DCE subsume the fold anyway. *)
  | _ -> insn

let run_block block =
  let consts : (Reg.t * int, int64) Hashtbl.t = Hashtbl.create 32 in
  let versions = Versions.create () in
  let lookup r = Hashtbl.find_opt consts (Versions.key versions r) in
  let changed = ref 0 in
  let step (insn : Insn.t) =
    let insn' = fold_insn lookup insn in
    if not (insn' == insn) then incr changed;
    (* Record definitions after the rewrite. *)
    Array.iter (fun r -> Versions.bump versions r) insn'.Insn.defs;
    (match (insn'.Insn.op, insn'.Insn.defs) with
    | Opcode.Movi, [| d |] ->
        Hashtbl.replace consts (Versions.key versions d) insn'.Insn.imm
    | _ -> ());
    insn'
  in
  block.Block.body <- List.map step block.Block.body;
  !changed

let run func =
  List.fold_left (fun acc b -> acc + run_block b) 0 func.Func.blocks
