module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Insn = Casted_ir.Insn
module Block = Casted_ir.Block
module Func = Casted_ir.Func

let is_copy (insn : Insn.t) =
  match insn.Insn.op with
  | Opcode.Mov | Opcode.Fmov -> true
  | _ -> false

let run_block ~preserve_detection block =
  (* copies: destination (at version) -> source (at its version). *)
  let copies : (Reg.t * int, Reg.t * int) Hashtbl.t = Hashtbl.create 32 in
  let versions = Versions.create () in
  let changed = ref 0 in
  let resolve r =
    match Hashtbl.find_opt copies (Versions.key versions r) with
    | Some (src, v) when Versions.get versions src = v -> src
    | Some _ | None -> r
  in
  let step (insn : Insn.t) =
    let uses' = Array.map resolve insn.Insn.uses in
    let insn' =
      if uses' = insn.Insn.uses then insn else { insn with Insn.uses = uses' }
    in
    if not (insn' == insn) then incr changed;
    Array.iter (fun r -> Versions.bump versions r) insn'.Insn.defs;
    if
      is_copy insn'
      && not (preserve_detection && insn'.Insn.role = Insn.Shadow_copy)
    then begin
      let d = insn'.Insn.defs.(0) and s = insn'.Insn.uses.(0) in
      if not (Reg.equal d s) then
        Hashtbl.replace copies
          (Versions.key versions d)
          (Versions.key versions s)
    end;
    insn'
  in
  block.Block.body <- List.map step block.Block.body;
  (* The terminator reads registers too. *)
  let term = block.Block.term in
  let uses' = Array.map resolve term.Insn.uses in
  if uses' <> term.Insn.uses then begin
    block.Block.term <- { term with Insn.uses = uses' };
    incr changed
  end;
  !changed

let run ~preserve_detection func =
  List.fold_left
    (fun acc b -> acc + run_block ~preserve_detection b)
    0 func.Func.blocks
