(** Local register versioning.

    The block-local optimisation passes (value numbering, copy and
    constant propagation) need to know when a register has been
    redefined. Instead of invalidating tables, each register carries a
    monotonically increasing version; facts are keyed on
    [(register, version)] pairs and silently expire on redefinition. *)

module Reg = Casted_ir.Reg

type t

val create : unit -> t

(** Current version of a register (0 before any definition). *)
val get : t -> Reg.t -> int

(** Bump the version (call when the register is defined). *)
val bump : t -> Reg.t -> unit

(** The register at its current version, as a hashable key. *)
val key : t -> Reg.t -> Reg.t * int
