(** Pass manager for the scalar optimisation pipeline.

    The paper's pipeline (Fig. 5) runs the scalar optimisers before the
    CASTED passes and explicitly disables the {e late} CSE and DCE that
    would otherwise run after them, because those passes delete the
    replicated code (§IV-A). Accordingly:

    - run [standard] on the input program {e before}
      {!Casted_detect.Transform.program} — always safe;
    - running passes on a {e hardened} program requires
      [preserve_detection:true] to keep the redundant stream intact; the
      unsafe mode exists to reproduce the paper's observation (see the
      [cse_on_hardened] ablation in [bench/main.ml]). *)

type t = {
  name : string;
  run : preserve_detection:bool -> Casted_ir.Func.t -> int;
      (** returns a change count (instructions rewritten/removed or
          blocks eliminated, pass-specific) *)
}

val constfold : t
val copyprop : t
val cse : t
val dce : t
val simplify_cfg : t

(** [constfold; copyprop; cse; dce; simplify_cfg] *)
val standard : t list

(** Run a pass list over every function of a (cloned) program.
    Unprotected library functions are optimised too — they are ordinary
    code. Returns the optimised program and per-pass change counts. *)
val run_program :
  ?preserve_detection:bool ->
  t list ->
  Casted_ir.Program.t ->
  Casted_ir.Program.t * (string * int) list

(** Iterate [run_program] until no pass reports a change (at most
    [max_rounds], default 10). *)
val run_to_fixpoint :
  ?preserve_detection:bool ->
  ?max_rounds:int ->
  t list ->
  Casted_ir.Program.t ->
  Casted_ir.Program.t * int
