(** Global dead-code elimination.

    Removes instructions without side effects whose results are dead
    (liveness-based, iterated to a fixpoint). Stores, control flow and
    checks are side-effecting and never removed — with one exception:
    when [preserve_detection] is false, {e trivial} checks comparing a
    register against itself are deleted too. Such checks only appear
    after cross-role CSE/copy-propagation has collapsed the redundant
    stream onto the original one, so this models the "late DCE" of the
    paper's §IV-A that finishes off the detection code. *)

val run : preserve_detection:bool -> Casted_ir.Func.t -> int
