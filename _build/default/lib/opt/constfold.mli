(** Block-local constant folding, propagation and algebraic
    simplification.

    Rewrites instructions whose integer operands are known constants into
    [Movi], and applies strength reductions ([muli] by a power of two
    becomes [shli], additions of zero become moves, ...). Division and
    remainder are never folded: they can trap and the simulator's
    semantics must be preserved exactly. Instruction ids and roles are
    kept, so detection code stays attributed correctly. *)

(** Returns the number of instructions rewritten. *)
val run : Casted_ir.Func.t -> int
