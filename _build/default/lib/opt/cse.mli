(** Block-local common-subexpression elimination (value numbering).

    An instruction recomputing an expression already available in a
    register is rewritten into a move from that register. Loads
    participate until the next store or call (the conservative memory
    model of the scheduler); trapping instructions (division) and
    side-effecting instructions never participate.

    When [preserve_detection] is set, an expression computed by
    detection code (replicas, shadow copies) is never merged with one
    computed by original code, and vice versa. Without it, CSE merges a
    replicated instruction with its original — e.g. two [movi 5] — after
    which the shadow register is a plain copy of the original, every
    check compares a value against itself, and the error detection is
    silently destroyed. This is precisely why the paper turns the late
    CSE pass off after the CASTED passes (§IV-A); the
    [cse_on_hardened] bench ablation demonstrates the collapse. *)

val run : preserve_detection:bool -> Casted_ir.Func.t -> int
