lib/opt/copyprop.ml: Array Casted_ir Hashtbl List Versions
