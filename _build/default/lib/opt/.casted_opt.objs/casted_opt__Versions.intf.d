lib/opt/versions.mli: Casted_ir
