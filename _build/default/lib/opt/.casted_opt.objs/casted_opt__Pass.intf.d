lib/opt/pass.mli: Casted_ir
