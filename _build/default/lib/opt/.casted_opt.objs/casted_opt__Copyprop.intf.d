lib/opt/copyprop.mli: Casted_ir
