lib/opt/cse.mli: Casted_ir
