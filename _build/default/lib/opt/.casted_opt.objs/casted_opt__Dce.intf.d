lib/opt/dce.mli: Casted_ir
