lib/opt/pass.ml: Casted_ir Constfold Copyprop Cse Dce List Simplify_cfg
