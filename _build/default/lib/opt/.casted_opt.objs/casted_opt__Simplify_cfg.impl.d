lib/opt/simplify_cfg.ml: Array Casted_ir Hashtbl List
