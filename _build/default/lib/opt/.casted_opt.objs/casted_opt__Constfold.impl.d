lib/opt/constfold.ml: Array Casted_ir Hashtbl Int64 List Versions
