lib/opt/versions.ml: Casted_ir Option
