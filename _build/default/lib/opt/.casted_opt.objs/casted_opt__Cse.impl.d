lib/opt/cse.ml: Array Casted_ir Hashtbl List Versions
