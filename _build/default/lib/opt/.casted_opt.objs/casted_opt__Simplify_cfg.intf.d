lib/opt/simplify_cfg.mli: Casted_ir
