lib/opt/constfold.mli: Casted_ir
