lib/opt/dce.ml: Array Casted_ir List
