module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Insn = Casted_ir.Insn
module Block = Casted_ir.Block
module Func = Casted_ir.Func
module Cfg = Casted_ir.Cfg
module Liveness = Casted_ir.Liveness

let trivial_check (insn : Insn.t) =
  Insn.is_check insn
  && Array.length insn.Insn.uses = 2
  && Reg.equal insn.Insn.uses.(0) insn.Insn.uses.(1)

let removable ~preserve_detection live (insn : Insn.t) =
  if (not preserve_detection) && trivial_check insn then true
  else if Opcode.has_side_effect insn.Insn.op then false
  else if Opcode.equal insn.Insn.op Opcode.Nop then true
  else
    Array.length insn.Insn.defs > 0
    && Array.for_all (fun r -> not (Reg.Set.mem r live)) insn.Insn.defs

(* One backward sweep over one block; returns removed count. *)
let sweep_block ~preserve_detection live_out block =
  let removed = ref 0 in
  let keep = ref [] in
  let live = ref live_out in
  (* The terminator's uses are live. *)
  Array.iter
    (fun r -> live := Reg.Set.add r !live)
    block.Block.term.Insn.uses;
  List.iter
    (fun (insn : Insn.t) ->
      if removable ~preserve_detection !live insn then incr removed
      else begin
        keep := insn :: !keep;
        Array.iter (fun r -> live := Reg.Set.remove r !live) insn.Insn.defs;
        Array.iter (fun r -> live := Reg.Set.add r !live) insn.Insn.uses
      end)
    (List.rev block.Block.body);
  block.Block.body <- !keep;
  !removed

let run ~preserve_detection func =
  let total = ref 0 in
  let continue_ = ref true in
  (* Each round removes at least one instruction or stops, so this
     terminates; cap the rounds defensively anyway. *)
  let rounds = ref 0 in
  while !continue_ && !rounds < 100 do
    incr rounds;
    let cfg = Cfg.of_func func in
    let live = Liveness.compute cfg in
    let removed = ref 0 in
    Array.iteri
      (fun i block ->
        removed :=
          !removed
          + sweep_block ~preserve_detection live.Liveness.live_out.(i) block)
      cfg.Cfg.blocks;
    total := !total + !removed;
    continue_ := !removed > 0
  done;
  !total
