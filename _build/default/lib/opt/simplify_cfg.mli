(** Control-flow graph clean-up.

    Three transformations, iterated until stable:
    - delete blocks unreachable from the entry;
    - thread jumps through empty forwarding blocks (a block with no body
      whose terminator is an unconditional branch);
    - merge a block into its unique [Br] successor when that successor
      has no other predecessor.

    Returns the number of blocks eliminated. *)

val run : Casted_ir.Func.t -> int
