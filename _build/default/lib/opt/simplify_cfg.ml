module Opcode = Casted_ir.Opcode
module Insn = Casted_ir.Insn
module Block = Casted_ir.Block
module Func = Casted_ir.Func
module Cfg = Casted_ir.Cfg

let retarget_term (term : Insn.t) ~from ~to_ =
  let target = if term.Insn.target = from then to_ else term.Insn.target in
  let target2 = if term.Insn.target2 = from then to_ else term.Insn.target2 in
  if target = term.Insn.target && target2 = term.Insn.target2 then term
  else { term with Insn.target; target2 }

let remove_unreachable func =
  let cfg = Cfg.of_func func in
  let reach = Cfg.reachable cfg in
  let before = List.length func.Func.blocks in
  func.Func.blocks <-
    List.filteri (fun i _ -> reach.(i)) func.Func.blocks;
  before - List.length func.Func.blocks

(* A forwarding block: empty body, unconditional branch out. The entry
   block is never removed (its label is the function entry point). *)
let thread_jumps func =
  match func.Func.blocks with
  | [] -> 0
  | entry :: rest ->
      let forwards =
        List.filter_map
          (fun b ->
            match (b.Block.body, b.Block.term.Insn.op) with
            | [], Opcode.Br when b.Block.term.Insn.target <> b.Block.label ->
                Some (b.Block.label, b.Block.term.Insn.target)
            | _ -> None)
          rest
      in
      (* Resolve forwarding chains (a -> b -> c becomes a -> c), cutting
         cycles of empty blocks by bounding the walk. *)
      let rec resolve seen label =
        if List.mem_assoc label forwards && not (List.mem label seen) then
          resolve (label :: seen) (List.assoc label forwards)
        else label
      in
      let changed = ref 0 in
      List.iter
        (fun b ->
          let term = b.Block.term in
          let fix label =
            if label = "" then label
            else
              let label' = resolve [] label in
              if label' <> label then incr changed;
              label'
          in
          let term' =
            {
              term with
              Insn.target = fix term.Insn.target;
              target2 = fix term.Insn.target2;
            }
          in
          if term' <> term then b.Block.term <- term')
        (entry :: rest);
      !changed

let merge_chains func =
  let cfg = Cfg.of_func func in
  let merged = ref 0 in
  let removed = Hashtbl.create 8 in
  Array.iteri
    (fun i block ->
      if not (Hashtbl.mem removed block.Block.label) then
        match (block.Block.term.Insn.op, cfg.Cfg.succs.(i)) with
        | Opcode.Br, [ j ] when j <> i ->
            let succ = cfg.Cfg.blocks.(j) in
            if
              List.length cfg.Cfg.preds.(j) = 1
              && (not (Hashtbl.mem removed succ.Block.label))
              && j <> 0 (* never merge the entry away *)
            then begin
              block.Block.body <- block.Block.body @ succ.Block.body;
              block.Block.term <- succ.Block.term;
              Hashtbl.replace removed succ.Block.label ();
              incr merged
            end
        | _ -> ())
    cfg.Cfg.blocks;
  func.Func.blocks <-
    List.filter
      (fun b -> not (Hashtbl.mem removed b.Block.label))
      func.Func.blocks;
  !merged

let run func =
  let before = List.length func.Func.blocks in
  let continue_ = ref true in
  (* Each transformation either strictly reduces the block count or
     reaches a fixed point on retargeting, so the loop terminates. *)
  while !continue_ do
    let unreachable = remove_unreachable func in
    let threaded = thread_jumps func in
    let merged = merge_chains func in
    continue_ := unreachable + threaded + merged > 0
  done;
  before - List.length func.Func.blocks

(* Kept for future passes that rewrite single edges. *)
let _ = retarget_term
