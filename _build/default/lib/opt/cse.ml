module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Insn = Casted_ir.Insn
module Block = Casted_ir.Block
module Func = Casted_ir.Func

(* Role class for the preservation mode: original code vs detection
   code. Merging within a class is safe; across classes it destroys the
   redundancy. *)
let role_class (insn : Insn.t) =
  match insn.Insn.role with
  | Insn.Original -> 0
  | Insn.Replica | Insn.Check | Insn.Shadow_copy -> 1

(* Instructions eligible for value numbering: one definition, no side
   effects, no trapping, deterministic. *)
let eligible (insn : Insn.t) =
  Array.length insn.Insn.defs = 1
  && (not (Opcode.has_side_effect insn.Insn.op))
  &&
  match insn.Insn.op with
  | Opcode.Div | Opcode.Rem | Opcode.Call | Opcode.Nop -> false
  (* Copies belong to copy propagation; numbering them makes the two
     passes rewrite each other's output forever. *)
  | Opcode.Mov | Opcode.Fmov -> false
  | _ -> true

(* Loads are eligible but must be invalidated at memory barriers. *)
let is_barrier (insn : Insn.t) =
  Opcode.is_store insn.Insn.op || Opcode.equal insn.Insn.op Opcode.Call

type key = {
  op : Opcode.t;
  args : (Reg.t * int) list;
  imm : int64;
  fimm : float;
  epoch : int;  (* memory epoch, 0 for non-loads *)
  cls : int;  (* role class under preservation, else 0 *)
}

let copy_op_for (insn : Insn.t) =
  match Reg.cls insn.Insn.defs.(0) with
  | Reg.Gp -> Some Opcode.Mov
  | Reg.Fp -> Some Opcode.Fmov
  | Reg.Pr -> None (* no predicate move instruction *)

let run_block ~preserve_detection block =
  let avail : (key, Reg.t * int) Hashtbl.t = Hashtbl.create 64 in
  let versions = Versions.create () in
  let epoch = ref 0 in
  let changed = ref 0 in
  (* The key must be computed before the definition bumps the register
     versions, or instructions like [addi r r 1] would be keyed against
     their own result. *)
  let key_of (insn : Insn.t) =
    {
      op = insn.Insn.op;
      args =
        Array.to_list
          (Array.map (fun r -> Versions.key versions r) insn.Insn.uses);
      imm = insn.Insn.imm;
      fimm = insn.Insn.fimm;
      epoch = (if Opcode.is_load insn.Insn.op then !epoch else 0);
      cls = (if preserve_detection then role_class insn else 0);
    }
  in
  let step (insn : Insn.t) =
    if is_barrier insn then incr epoch;
    let insn', record_key =
      if not (eligible insn) then (insn, None)
      else
        match copy_op_for insn with
        | None -> (insn, None)
        | Some copy_op -> (
            let key = key_of insn in
            match Hashtbl.find_opt avail key with
            | Some (src, v)
              when Versions.get versions src = v
                   && not (Reg.equal src insn.Insn.defs.(0)) ->
                incr changed;
                ( { insn with Insn.op = copy_op; uses = [| src |]; imm = 0L },
                  None )
            | _ ->
                (* Not yet available: remember it under this key. *)
                (insn, Some key))
    in
    Array.iter (fun r -> Versions.bump versions r) insn'.Insn.defs;
    (match record_key with
    | Some key when not (Hashtbl.mem avail key) ->
        Hashtbl.replace avail key
          (insn'.Insn.defs.(0), Versions.get versions insn'.Insn.defs.(0))
    | Some _ | None -> ());
    insn'
  in
  block.Block.body <- List.map step block.Block.body;
  !changed

let run ~preserve_detection func =
  List.fold_left
    (fun acc b -> acc + run_block ~preserve_detection b)
    0 func.Func.blocks
