(** Block-local copy propagation.

    Rewrites uses of a copied register to the copy's source while both
    stay unmodified ([mov d s; add x d y] becomes [mov d s; add x s y]).

    When [preserve_detection] is set, copies created by the detection
    pass ([Shadow_copy] role) are not propagated: forwarding the original
    register into the shadow stream would defeat the register isolation
    of paper Algorithm 1 — this is exactly why the paper disables the
    late propagation/CSE passes after its own (§IV-A). *)

val run : preserve_detection:bool -> Casted_ir.Func.t -> int
