module Reg = Casted_ir.Reg

type t = int Reg.Tbl.t

let create () = Reg.Tbl.create 64

let get t r = Option.value ~default:0 (Reg.Tbl.find_opt t r)

let bump t r = Reg.Tbl.replace t r (get t r + 1)

let key t r = (r, get t r)
