(** One set-associative cache level.

    Write-back, write-allocate, LRU replacement. Only tags are tracked —
    the simulator keeps data in a flat arena, the cache model only decides
    latencies — which is exactly what the paper's timing results need. *)

type t

type outcome = Hit | Miss of { evicted_dirty : bool }

val create : size_bytes:int -> block_bytes:int -> assoc:int -> t

val of_config : Casted_machine.Config.cache_level -> t

(** [access t ~addr ~write] looks the block containing [addr] up,
    allocates it on a miss (evicting the LRU way) and marks it dirty on
    writes. *)
val access : t -> addr:int -> write:bool -> outcome

(** Lookup without allocation or LRU update (used by tests). *)
val probe : t -> addr:int -> bool

val hits : t -> int
val misses : t -> int
val writebacks : t -> int
val reset_stats : t -> unit
val clear : t -> unit

val num_sets : t -> int
val block_bytes : t -> int
