lib/cache/level.mli: Casted_machine
