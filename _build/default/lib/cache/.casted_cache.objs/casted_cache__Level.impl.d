lib/cache/level.ml: Array Casted_machine
