lib/cache/hierarchy.ml: Array Casted_machine Format Level
