lib/cache/hierarchy.mli: Casted_machine Format
