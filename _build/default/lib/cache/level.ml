type way = { mutable tag : int; mutable dirty : bool; mutable stamp : int }
(* tag = -1 encodes an invalid way. *)

type t = {
  sets : way array array;
  block_bytes : int;
  block_shift : int;
  n_sets : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

type outcome = Hit | Miss of { evicted_dirty : bool }

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else if 1 lsl k > n then -1 else go (k + 1) in
  go 0

let create ~size_bytes ~block_bytes ~assoc =
  if size_bytes <= 0 || block_bytes <= 0 || assoc <= 0 then
    invalid_arg "Level.create: non-positive parameter";
  if size_bytes mod (block_bytes * assoc) <> 0 then
    invalid_arg "Level.create: size not divisible by block * assoc";
  let block_shift = log2_exact block_bytes in
  if block_shift < 0 then invalid_arg "Level.create: block size not a power of 2";
  let n_sets = size_bytes / (block_bytes * assoc) in
  let sets =
    Array.init n_sets (fun _ ->
        Array.init assoc (fun _ -> { tag = -1; dirty = false; stamp = 0 }))
  in
  {
    sets;
    block_bytes;
    block_shift;
    n_sets;
    clock = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

let of_config (c : Casted_machine.Config.cache_level) =
  create ~size_bytes:c.Casted_machine.Config.size_bytes
    ~block_bytes:c.Casted_machine.Config.block_bytes
    ~assoc:c.Casted_machine.Config.assoc

let locate t addr =
  let block = addr lsr t.block_shift in
  let set = block mod t.n_sets in
  let tag = block / t.n_sets in
  (set, tag)

let access t ~addr ~write =
  if addr < 0 then invalid_arg "Level.access: negative address";
  t.clock <- t.clock + 1;
  let set_idx, tag = locate t addr in
  let set = t.sets.(set_idx) in
  let hit = Array.find_opt (fun w -> w.tag = tag) set in
  match hit with
  | Some w ->
      w.stamp <- t.clock;
      if write then w.dirty <- true;
      t.hits <- t.hits + 1;
      Hit
  | None ->
      t.misses <- t.misses + 1;
      (* Evict the LRU way (invalid ways have stamp 0, oldest). *)
      let victim = ref set.(0) in
      Array.iter (fun w -> if w.stamp < !victim.stamp then victim := w) set;
      let evicted_dirty = !victim.tag >= 0 && !victim.dirty in
      if evicted_dirty then t.writebacks <- t.writebacks + 1;
      !victim.tag <- tag;
      !victim.dirty <- write;
      !victim.stamp <- t.clock;
      Miss { evicted_dirty }

let probe t ~addr =
  let set_idx, tag = locate t addr in
  Array.exists (fun w -> w.tag = tag) t.sets.(set_idx)

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0

let clear t =
  Array.iter
    (fun set ->
      Array.iter
        (fun w ->
          w.tag <- -1;
          w.dirty <- false;
          w.stamp <- 0)
        set)
    t.sets;
  t.clock <- 0;
  reset_stats t

let num_sets t = t.n_sets
let block_bytes t = t.block_bytes
