(** Three-level cache hierarchy plus main memory (paper Table I).

    [access] returns the access latency in cycles: the latency of the
    innermost level that hits (or memory latency on a full miss), matching
    the cumulative per-level latencies the paper lists. Caches are
    non-blocking in the paper; the simulator reproduces that by charging
    each load its own latency without serialising misses. *)

type t

type stats = {
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  l3_hits : int;
  l3_misses : int;
  writebacks : int;
}

val create : Casted_machine.Config.cache_config -> t

(** Latency in cycles of a read or write to [addr]. *)
val access : t -> addr:int -> write:bool -> int

(** An ideal hierarchy: every access hits in L1. Used by the
    perfect-cache ablation. *)
val perfect : Casted_machine.Config.cache_config -> t

val stats : t -> stats
val reset : t -> unit

val pp_stats : Format.formatter -> stats -> unit
