(** Issue-slot reservation table (paper Algorithm 2, line 17).

    Tracks, per cluster and cycle, how many of the [issue_width] slots are
    taken. Grows on demand: schedules are finite but their horizon is not
    known in advance. *)

type t

val create : clusters:int -> issue_width:int -> t

val clusters : t -> int
val issue_width : t -> int

(** Slots already taken at (cluster, cycle). *)
val used : t -> cluster:int -> cycle:int -> int

val is_free : t -> cluster:int -> cycle:int -> bool

(** Earliest cycle [>= from] with a free slot on [cluster]. *)
val first_free : t -> cluster:int -> from:int -> int

(** Take one slot. Raises [Invalid_argument] when the cycle is full. *)
val reserve : t -> cluster:int -> cycle:int -> unit

(** Release one slot (used by BUG when revisiting a tentative choice). *)
val release : t -> cluster:int -> cycle:int -> unit

(** One past the last cycle with any reservation. *)
val horizon : t -> int
