(** Machine configuration (paper Table I).

    A machine is a set of identical clusters (the paper evaluates 2)
    operating in lockstep. Each cluster issues up to [issue_width]
    instructions per cycle; reading a register produced on another cluster
    costs an extra [delay] cycles. *)

type cache_level = {
  size_bytes : int;
  block_bytes : int;
  assoc : int;
  latency : int;  (** total access latency of this level, cycles *)
}

type cache_config = {
  l1 : cache_level;
  l2 : cache_level;
  l3 : cache_level;
  mem_latency : int;
}

type t = {
  clusters : int;
  issue_width : int;  (** per cluster *)
  delay : int;  (** inter-cluster communication delay, cycles *)
  latencies : Latency.t;
  cache : cache_config;
}

(** The Table-I hierarchy: 16K/64B/4-way/1cy L1, 256K/128B/8-way/5cy L2,
    3M/128B/12-way/12cy L3, 150-cycle memory. *)
val itanium2_cache : cache_config

val make :
  ?clusters:int ->
  ?issue_width:int ->
  ?delay:int ->
  ?latencies:Latency.t ->
  ?cache:cache_config ->
  unit ->
  t

(** Single cluster of the given width — the machine NOED and SCED run on. *)
val single_core : issue_width:int -> t

(** Two clusters — the machine DCED and CASTED run on. *)
val dual_core : issue_width:int -> delay:int -> t

val pp : Format.formatter -> t -> unit

(** Multi-row description of the configuration, one [(field, value)] pair
    per row; used to regenerate paper Table I. *)
val describe : t -> (string * string) list
