type t = {
  n_clusters : int;
  width : int;
  mutable slots : int array array;  (* cluster -> cycle -> used count *)
  mutable capacity : int;
  mutable horizon : int;
}

let create ~clusters ~issue_width =
  if clusters < 1 || issue_width < 1 then
    invalid_arg "Reservation.create: bad dimensions";
  {
    n_clusters = clusters;
    width = issue_width;
    slots = Array.init clusters (fun _ -> Array.make 64 0);
    capacity = 64;
    horizon = 0;
  }

let clusters t = t.n_clusters
let issue_width t = t.width

let ensure t cycle =
  if cycle >= t.capacity then begin
    let cap = ref t.capacity in
    while cycle >= !cap do
      cap := !cap * 2
    done;
    t.slots <-
      Array.map
        (fun row ->
          let row' = Array.make !cap 0 in
          Array.blit row 0 row' 0 t.capacity;
          row')
        t.slots;
    t.capacity <- !cap
  end

let check_cluster t cluster =
  if cluster < 0 || cluster >= t.n_clusters then
    invalid_arg "Reservation: cluster out of range"

let used t ~cluster ~cycle =
  check_cluster t cluster;
  if cycle < 0 then invalid_arg "Reservation.used: negative cycle";
  if cycle >= t.capacity then 0 else t.slots.(cluster).(cycle)

let is_free t ~cluster ~cycle = used t ~cluster ~cycle < t.width

let first_free t ~cluster ~from =
  let rec go c = if is_free t ~cluster ~cycle:c then c else go (c + 1) in
  go (max 0 from)

let reserve t ~cluster ~cycle =
  check_cluster t cluster;
  if cycle < 0 then invalid_arg "Reservation.reserve: negative cycle";
  ensure t cycle;
  if t.slots.(cluster).(cycle) >= t.width then
    invalid_arg "Reservation.reserve: cycle full";
  t.slots.(cluster).(cycle) <- t.slots.(cluster).(cycle) + 1;
  t.horizon <- max t.horizon (cycle + 1)

let release t ~cluster ~cycle =
  check_cluster t cluster;
  if cycle < 0 || cycle >= t.capacity || t.slots.(cluster).(cycle) = 0 then
    invalid_arg "Reservation.release: nothing reserved";
  t.slots.(cluster).(cycle) <- t.slots.(cluster).(cycle) - 1

let horizon t = t.horizon
