lib/machine/config.mli: Format Latency
