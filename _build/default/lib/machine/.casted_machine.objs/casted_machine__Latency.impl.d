lib/machine/latency.ml: Casted_ir
