lib/machine/config.ml: Format Latency Printf
