lib/machine/reservation.mli:
