lib/machine/latency.mli: Casted_ir
