lib/machine/reservation.ml: Array
