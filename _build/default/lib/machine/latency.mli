(** Instruction latencies, in cycles.

    The defaults are modelled on the Itanium2 pipeline the paper targets:
    single-cycle integer ALU and compares, multi-cycle multiply/divide,
    4-cycle pipelined floating point, 1-cycle L1 load-use (cache misses add
    dynamic stalls in the simulator, not here). *)

type t = {
  alu : int;
  mul : int;
  div : int;
  fadd : int;
  fmul : int;
  fdiv : int;
  cvt : int;  (** int/float conversions *)
  load : int;  (** L1-hit load-use latency *)
  store : int;
  branch : int;
  compare : int;
  move : int;
  sel : int;
  check : int;  (** the [Chk] compare-and-trap emitted by the pass *)
  call : int;
}

val default : t

(** Latency of an opcode under this table. Always >= 1. *)
val of_op : t -> Casted_ir.Opcode.t -> int
