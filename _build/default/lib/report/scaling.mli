(** ILP scaling (paper Fig. 8): per-scheme speedup as the issue width
    grows, relative to the same scheme at issue width 1.

    Derived from a {!Perf_sweep.t}; the paper plots this per benchmark to
    show that SCED often scales better than NOED (the redundant stream's
    extra ILP) while DCED starts ahead and flattens. *)

val speedup :
  Perf_sweep.t ->
  benchmark:string ->
  scheme:Casted_detect.Scheme.t ->
  issue:int ->
  delay:int ->
  float

(** One Fig-8 panel: rows = scheme, columns = issue width, at the given
    delay (the paper does not state the delay; we record it). *)
val render_panel : Perf_sweep.t -> benchmark:string -> delay:int -> string

val render_all : ?delay:int -> Perf_sweep.t -> string
