module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Workload = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Montecarlo = Casted_sim.Montecarlo

type row = {
  benchmark : string;
  scheme : Scheme.t;
  issue : int;
  delay : int;
  result : Montecarlo.result;
}

let campaign ?(seed = 0xCA57ED) ~trials ~benchmark ~scheme ~issue ~delay () =
  let w =
    match Registry.find benchmark with
    | Some w -> w
    | None -> invalid_arg ("Coverage: unknown benchmark " ^ benchmark)
  in
  let program = w.Workload.build Workload.Fault in
  let compiled =
    Pipeline.compile ~scheme ~issue_width:issue ~delay program
  in
  let result = Montecarlo.run ~seed ~trials compiled.Pipeline.schedule in
  { benchmark; scheme; issue; delay; result }

let fig9 ?seed ?(trials = 300) ?benchmarks () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> Registry.names ()
  in
  List.concat_map
    (fun benchmark ->
      List.map
        (fun scheme ->
          campaign ?seed ~trials ~benchmark ~scheme ~issue:2 ~delay:2 ())
        Scheme.all)
    benchmarks

let fig10 ?seed ?(trials = 300) ?(benchmark = "h263dec")
    ?(schemes = Scheme.all) () =
  List.concat_map
    (fun issue ->
      List.concat_map
        (fun delay ->
          List.map
            (fun scheme ->
              campaign ?seed ~trials ~benchmark ~scheme ~issue ~delay ())
            schemes)
        [ 1; 2; 3; 4 ])
    [ 1; 2; 3; 4 ]

let render rows =
  let headers =
    [
      "benchmark"; "scheme"; "issue"; "delay"; "benign"; "detected";
      "exception"; "corrupt"; "timeout";
    ]
  in
  let row r =
    let p c = Table.pct (Montecarlo.percent r.result c) in
    [
      r.benchmark;
      Scheme.name r.scheme;
      string_of_int r.issue;
      string_of_int r.delay;
      p Montecarlo.Benign;
      p Montecarlo.Detected;
      p Montecarlo.Exception;
      p Montecarlo.Data_corrupt;
      p Montecarlo.Timeout;
    ]
  in
  Table.render ~headers (List.map row rows)
