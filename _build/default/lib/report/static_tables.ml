module Config = Casted_machine.Config
module Workload = Casted_workloads.Workload
module Registry = Casted_workloads.Registry

let table1 config =
  Table.render ~headers:[ "parameter"; "value" ]
    (List.map (fun (k, v) -> [ k; v ]) (Config.describe config))

let table2 () =
  Table.render ~headers:[ "benchmark"; "suite"; "kernel" ]
    (List.map
       (fun w ->
         [ w.Workload.name; w.Workload.suite; w.Workload.description ])
       Registry.all)

let table3 () =
  Table.render
    ~headers:[ "scheme"; "speed-up factors"; "target"; "code placement" ]
    [
      [ "EDDI"; "-"; "wide single-core"; "fixed" ];
      [ "SWIFT"; "fewer checking points"; "wide single-core"; "fixed" ];
      [ "Shoestring"; "partial redundancy"; "single-core"; "fixed" ];
      [ "Compiler-assisted ED"; "partial redundancy"; "single-core"; "fixed" ];
      [ "SRMT"; "partially synchronized threads"; "dual-core"; "fixed" ];
      [ "DAFT"; "decoupled threads"; "dual-core"; "fixed" ];
      [ "CASTED"; "adaptivity"; "tightly-coupled cores"; "adaptive" ];
    ]
