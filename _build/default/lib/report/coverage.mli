(** Fault-coverage experiments (paper Figs. 9 and 10).

    Fig. 9: the five-way outcome breakdown for every benchmark under
    NOED, SCED, DCED and CASTED at issue 2, delay 2.

    Fig. 10: the same breakdown for one benchmark (h263dec in the paper)
    across every (issue, delay) configuration, demonstrating that
    adaptivity does not change the fault coverage. *)

module Scheme = Casted_detect.Scheme
module Montecarlo = Casted_sim.Montecarlo

type row = {
  benchmark : string;
  scheme : Scheme.t;
  issue : int;
  delay : int;
  result : Montecarlo.result;
}

(** Run one campaign. *)
val campaign :
  ?seed:int ->
  trials:int ->
  benchmark:string ->
  scheme:Scheme.t ->
  issue:int ->
  delay:int ->
  unit ->
  row

(** Fig. 9: all benchmarks x all schemes at (issue, delay) = (2, 2). *)
val fig9 : ?seed:int -> ?trials:int -> ?benchmarks:string list -> unit -> row list

(** Fig. 10: one benchmark across issue widths 1–4 x delays 1–4. *)
val fig10 :
  ?seed:int ->
  ?trials:int ->
  ?benchmark:string ->
  ?schemes:Scheme.t list ->
  unit ->
  row list

val render : row list -> string
