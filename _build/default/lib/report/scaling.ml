module Scheme = Casted_detect.Scheme

let speedup sweep ~benchmark ~scheme ~issue ~delay =
  let c1 = Perf_sweep.cycles sweep ~benchmark ~scheme ~issue:1 ~delay in
  let ci = Perf_sweep.cycles sweep ~benchmark ~scheme ~issue ~delay in
  float_of_int c1 /. float_of_int ci

let render_panel sweep ~benchmark ~delay =
  let issues = sweep.Perf_sweep.issues in
  let headers =
    "scheme" :: List.map (fun i -> Printf.sprintf "issue %d" i) issues
  in
  let row scheme =
    Scheme.name scheme
    :: List.map
         (fun issue ->
           Table.f2 (speedup sweep ~benchmark ~scheme ~issue ~delay))
         issues
  in
  Printf.sprintf "%s (speedup vs issue 1, delay %d)\n%s" benchmark delay
    (Table.render ~headers
       [ row Scheme.Noed; row Scheme.Sced; row Scheme.Dced; row Scheme.Casted ])

let render_all ?(delay = 1) sweep =
  let buf = Buffer.create 2048 in
  List.iter
    (fun benchmark ->
      Buffer.add_string buf (render_panel sweep ~benchmark ~delay);
      Buffer.add_char buf '\n')
    sweep.Perf_sweep.benchmarks;
  Buffer.contents buf
