(** The paper's static tables: processor configuration (Table I),
    benchmark list (Table II) and the qualitative comparison of
    compiler-based error-detection schemes (Table III). *)

(** Table I for a given machine configuration. *)
val table1 : Casted_machine.Config.t -> string

(** Table II from the workload registry. *)
val table2 : unit -> string

(** Table III (static content from the paper's related-work survey). *)
val table3 : unit -> string
