let render ~headers rows =
  let all = headers :: rows in
  let cols = List.length headers in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < cols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 1024 in
  let line row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < cols - 1 then
          Buffer.add_string buf
            (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  line headers;
  line
    (List.mapi (fun i _ -> String.make widths.(i) '-') headers);
  List.iter line rows;
  Buffer.contents buf

let print ~headers rows = print_string (render ~headers rows)

let f2 v = Printf.sprintf "%.2f" v
let pct v = Printf.sprintf "%.1f%%" v
