lib/report/utilization.ml: Array Casted_detect Casted_ir Casted_machine Casted_sched Casted_workloads List Printf Table
