lib/report/scaling.ml: Buffer Casted_detect List Perf_sweep Printf Table
