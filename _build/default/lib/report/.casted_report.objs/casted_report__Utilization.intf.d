lib/report/utilization.mli: Casted_sched Casted_workloads
