lib/report/table.mli:
