lib/report/perf_sweep.ml: Buffer Casted_detect Casted_sim Casted_workloads Float Format List Printf String Table
