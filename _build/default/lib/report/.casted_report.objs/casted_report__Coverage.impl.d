lib/report/coverage.ml: Casted_detect Casted_sim Casted_workloads List Table
