lib/report/static_tables.mli: Casted_machine
