lib/report/scaling.mli: Casted_detect Perf_sweep
