lib/report/perf_sweep.mli: Casted_detect Casted_workloads
