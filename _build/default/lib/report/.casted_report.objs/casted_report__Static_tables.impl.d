lib/report/static_tables.ml: Casted_machine Casted_workloads List Table
