lib/report/coverage.mli: Casted_detect Casted_sim
