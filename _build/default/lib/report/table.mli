(** Plain-text table rendering for the experiment reports. *)

(** [render ~headers rows] lays the table out with one space-padded
    column per header, sized to the widest cell. *)
val render : headers:string list -> string list list -> string

val print : headers:string list -> string list list -> unit

(** Format a float with 2 decimals (the paper's slowdown precision). *)
val f2 : float -> string

(** Format a percentage with 1 decimal. *)
val pct : float -> string
