(** The four schemes the paper evaluates (§IV-B).

    - [Noed]: unmodified code on a single cluster (the normalisation
      baseline);
    - [Sced]: detection code, all of it on a single cluster;
    - [Dced]: detection code, original stream on cluster 0 and redundant
      stream on cluster 1 (fixed placement);
    - [Casted]: detection code, adaptive BUG placement over both
      clusters. *)

type t = Noed | Sced | Dced | Casted

val all : t list
val name : t -> string
val of_string : string -> t option

(** Does the scheme run the error-detection pass? *)
val hardened : t -> bool

(** The machine the scheme targets at a given configuration point.
    NOED and SCED run on one cluster; DCED and CASTED on two. *)
val machine :
  t -> issue_width:int -> delay:int -> Casted_machine.Config.t

val strategy : t -> Casted_sched.Assign.strategy
