(** The error-detection pass (paper Algorithm 1).

    Three steps, applied per function:

    + {b replicate}: every replicable instruction gets an exact duplicate
      emitted just before it;
    + {b rename}: the duplicate stream is isolated by renaming every
      register it writes (and its uses) through a per-function bijection
      into a fresh "shadow" register space; registers defined by
      non-replicated instructions are copied into their shadow after the
      defining instruction, and incoming parameters are copied at entry;
    + {b checks}: before every non-replicated instruction, each register
      it reads is compared against its shadow with a [Chk]
      (compare-and-trap) instruction.

    Functions with [protect = false] (binary-only "library" code) are
    left untouched, as in the paper. *)

type stats = {
  originals : int;
  replicas : int;
  checks : int;
  shadow_copies : int;
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val pp_stats : Format.formatter -> stats -> unit

(** Code-size expansion factor ((originals + detection code) /
    originals). The paper reports 2.4x on average. *)
val expansion : stats -> float

(** [func options f] transforms [f] in place (blocks are replaced;
    fresh registers and ids are drawn from [f]'s counters) and returns
    the instrumentation statistics. *)
val func : Options.t -> Casted_ir.Func.t -> stats

(** [program options p] clones [p], hardens every protected function of
    the clone and returns it with aggregate statistics. The input program
    is not modified. *)
val program : Options.t -> Casted_ir.Program.t -> Casted_ir.Program.t * stats
