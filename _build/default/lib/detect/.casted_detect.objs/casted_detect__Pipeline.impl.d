lib/detect/pipeline.ml: Casted_ir Casted_machine Casted_opt Casted_sched Options Scheme Transform
