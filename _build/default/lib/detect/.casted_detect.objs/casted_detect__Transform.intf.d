lib/detect/transform.mli: Casted_ir Format Options
