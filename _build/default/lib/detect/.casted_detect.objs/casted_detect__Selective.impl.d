lib/detect/selective.ml: Array Casted_ir Hashtbl List Option Queue
