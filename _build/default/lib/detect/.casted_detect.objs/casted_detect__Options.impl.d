lib/detect/options.ml:
