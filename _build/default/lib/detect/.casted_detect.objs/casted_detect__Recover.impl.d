lib/detect/recover.ml: Array Casted_ir Format List Options
