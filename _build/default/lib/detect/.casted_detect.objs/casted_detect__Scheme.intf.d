lib/detect/scheme.mli: Casted_machine Casted_sched
