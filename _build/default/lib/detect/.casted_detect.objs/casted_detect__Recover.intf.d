lib/detect/recover.mli: Casted_ir Format Options
