lib/detect/options.mli:
