lib/detect/selective.mli: Casted_ir Hashtbl
