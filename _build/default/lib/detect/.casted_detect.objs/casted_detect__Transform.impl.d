lib/detect/transform.ml: Array Casted_ir Format Hashtbl List Option Options Selective
