lib/detect/pipeline.mli: Casted_ir Casted_machine Casted_sched Options Scheme Transform
