lib/detect/scheme.ml: Casted_machine Casted_sched String
