(** Selective (Shoestring-style) replication scope.

    The paper's Table III contrasts CASTED with partial-redundancy
    schemes (Shoestring, compiler-assisted ED) that replicate only part
    of the program to trade coverage for overhead. This module computes
    such a scope: the backward slice of the {e store operands} — every
    instruction whose value can reach memory. Instructions outside the
    slice (pure address arithmetic for loads, branch-only counters, ...)
    are left unreplicated; faults there must surface as symptoms
    (exceptions, hangs) or stay benign, exactly Shoestring's bet. *)

(** Ids of the instructions in the backward slice of every store's value
    and address operands, over the whole function (fixpoint across
    blocks and loops). *)
val store_slice : Casted_ir.Func.t -> (int, unit) Hashtbl.t

(** Fraction of a function's instructions inside the slice. *)
val slice_fraction : Casted_ir.Func.t -> float
