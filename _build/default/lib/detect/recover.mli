(** CASTED-R: triplication with majority voting (an extension in the
    spirit of SWIFT-R, beyond the paper's detection-only scheme).

    Where Algorithm 1 emits one replica and traps on divergence, this
    pass emits {e two} replicas and, before every non-replicated
    instruction, {e votes}: if the two shadow copies of a register agree,
    their value is used (the original copy must be the corrupted one);
    otherwise the original value is used. The voted value is also written
    back into all three copies, so a single transient error is repaired
    instead of merely detected and the program runs to completion.

    Voting is expressed with ordinary IR instructions (compare + select +
    moves), so it needs no new hardware. Select only exists for
    general-purpose registers; floating-point and predicate operands of
    non-replicated instructions fall back to a detection check, which is
    recorded in the statistics.

    The triple-stream code is role-annotated like the detection pass
    ([Replica] for both shadow streams, [Check] for the voting sequences),
    so all three placement strategies — and in particular the adaptive
    BUG assignment — apply unchanged. *)

type stats = {
  originals : int;
  replicas : int;  (** two per replicable instruction *)
  votes : int;  (** majority-vote sequences emitted *)
  fallback_checks : int;  (** non-GP operands still only checked *)
  shadow_copies : int;
}

val pp_stats : Format.formatter -> stats -> unit

(** Harden a clone of the program with triplication + voting. *)
val program : Options.t -> Casted_ir.Program.t -> Casted_ir.Program.t * stats
