module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Insn = Casted_ir.Insn
module Func = Casted_ir.Func

let store_slice func =
  (* defs_of.(r) = every instruction that may define r, anywhere in the
     function (flow-insensitive: loops make any def reach any use). *)
  let defs_of : Insn.t list Reg.Tbl.t = Reg.Tbl.create 64 in
  Func.iter_insns func (fun _ insn ->
      Array.iter
        (fun r ->
          let old = Option.value ~default:[] (Reg.Tbl.find_opt defs_of r) in
          Reg.Tbl.replace defs_of r (insn :: old))
        insn.Insn.defs);
  let marked : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let work = Queue.create () in
  let seed_reg r = Queue.add r work in
  (* Seeds: operands of stores (value and address). *)
  Func.iter_insns func (fun _ insn ->
      if Opcode.is_store insn.Insn.op then
        Array.iter seed_reg insn.Insn.uses);
  let seen_regs = Reg.Tbl.create 64 in
  while not (Queue.is_empty work) do
    let r = Queue.pop work in
    if not (Reg.Tbl.mem seen_regs r) then begin
      Reg.Tbl.replace seen_regs r ();
      List.iter
        (fun (insn : Insn.t) ->
          if
            (not (Hashtbl.mem marked insn.Insn.id))
            && Opcode.replicable insn.Insn.op
          then begin
            Hashtbl.replace marked insn.Insn.id ();
            Array.iter seed_reg insn.Insn.uses
          end)
        (Option.value ~default:[] (Reg.Tbl.find_opt defs_of r))
    end
  done;
  marked

let slice_fraction func =
  let marked = store_slice func in
  let total = Func.num_insns func in
  if total = 0 then 0.0
  else float_of_int (Hashtbl.length marked) /. float_of_int total
