(** Tuning knobs of the error-detection pass.

    The defaults implement the paper's Algorithm 1 exactly; the flags
    exist for the ablation benchmarks (e.g. quantifying the cost of
    checking store operands). *)

(** How much of the program to replicate:
    - [Full]: everything replicable (the paper's Algorithm 1);
    - [Store_slice]: only the backward slice of store operands
      (Shoestring-style partial redundancy, see {!Selective}). *)
type scope = Full | Store_slice

type t = {
  check_stores : bool;  (** check address and value operands of stores *)
  check_branches : bool;  (** check predicate operands of branches *)
  check_calls : bool;  (** check call arguments and returned values *)
  shadow_params : bool;
      (** copy incoming parameters into the shadow register space at
          function entry *)
  scope : scope;
}

val default : t
