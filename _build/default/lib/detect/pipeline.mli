(** The full compiler pipeline: detection pass, cluster assignment,
    instruction scheduling (paper Fig. 5). *)

type compiled = {
  scheme : Scheme.t;
  config : Casted_machine.Config.t;
  program : Casted_ir.Program.t;  (** hardened program (or the input for NOED) *)
  schedule : Casted_sched.Schedule.t;
  stats : Transform.stats;
}

(** [compile ~scheme ~issue_width ~delay program] runs the detection pass
    (for hardened schemes), picks the scheme's machine and placement
    strategy, and schedules every function. The input program is not
    modified.

    [optimize] (default false) runs the standard scalar optimisation
    pipeline ({!Casted_opt.Pass.standard}) {e before} the detection pass,
    matching the paper's pass ordering (Fig. 5) where -O1 optimisations
    precede the CASTED passes. No pass runs after detection: the paper
    disables the late CSE/DCE precisely because they would delete the
    replicated code (SS IV-A). *)
val compile :
  ?options:Options.t ->
  ?bug_options:Casted_sched.Bug.options ->
  ?optimize:bool ->
  scheme:Scheme.t ->
  issue_width:int ->
  delay:int ->
  Casted_ir.Program.t ->
  compiled
