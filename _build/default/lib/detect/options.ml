type scope = Full | Store_slice

type t = {
  check_stores : bool;
  check_branches : bool;
  check_calls : bool;
  shadow_params : bool;
  scope : scope;
}

let default =
  {
    check_stores = true;
    check_branches = true;
    check_calls = true;
    shadow_params = true;
    scope = Full;
  }
