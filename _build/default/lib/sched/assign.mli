(** Cluster-assignment strategies.

    These realise the three code-placement policies the paper compares
    (§II-B): everything on one core (SCED/NOED), the fixed original-vs-
    redundant split (DCED), and CASTED's adaptive Bottom-Up-Greedy
    placement. The result maps each DFG node to a cluster; the list
    scheduler then honours the mapping. *)

type strategy =
  | Single_cluster  (** all instructions on cluster 0 *)
  | Dual_fixed
      (** original and non-replicated code on cluster 0; replicas, checks
          and shadow copies on cluster 1 (requires >= 2 clusters) *)
  | Adaptive of Bug.options  (** Bottom-Up-Greedy (paper Algorithm 2) *)

val strategy_name : strategy -> string

(** [compute strategy config dfg] returns the cluster of each DFG node. *)
val compute : strategy -> Casted_machine.Config.t -> Dfg.t -> int array
