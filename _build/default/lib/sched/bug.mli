(** Bottom-Up-Greedy cluster assignment (paper Algorithm 2, after Ellis'
    Bulldog).

    The DFG is visited in topological order, critical-path instructions
    first (the recursion on predecessors sorted by height). Each
    instruction is assigned to the cluster where its completion cycle —
    operand arrival (inter-cluster delay included) plus the wait for a
    free issue slot in the reservation table plus its own latency — is
    smallest. The chosen slot is reserved so later decisions see the
    occupancy. *)

type tie_break =
  | Prefer_lower  (** pick the lowest-numbered cluster on ties *)
  | Prefer_critical_pred
      (** pick the cluster of the predecessor that delivers its operand
          last, avoiding a future cross-cluster move on the critical
          path *)

type options = { tie_break : tie_break }

val default_options : options

(** [assign options config dfg] maps each node to a cluster. *)
val assign : options -> Casted_machine.Config.t -> Dfg.t -> int array
