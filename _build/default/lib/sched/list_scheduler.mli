(** Cycle-driven VLIW list scheduler.

    Runs after cluster assignment (the paper places both CASTED passes
    just before the first instruction-scheduling pass, Fig. 5). Within a
    block it issues ready instructions greedily, highest critical-path
    height first, respecting the per-cluster issue width and charging the
    inter-cluster delay on value-carrying edges whose endpoints live on
    different clusters. *)

(** [schedule_block config dfg ~assignment ~label] produces the bundle
    schedule of one block. [assignment] must map every DFG node to a
    cluster in range. *)
val schedule_block :
  Casted_machine.Config.t ->
  Dfg.t ->
  assignment:int array ->
  label:string ->
  Schedule.block_schedule

(** Schedule every block of a function under the given strategy. *)
val schedule_func :
  Casted_machine.Config.t ->
  Assign.strategy ->
  Casted_ir.Func.t ->
  Schedule.func_schedule

(** Schedule a whole program. *)
val schedule_program :
  Casted_machine.Config.t ->
  Assign.strategy ->
  Casted_ir.Program.t ->
  Schedule.t
