(** Block-local data-flow graph (paper §II-B, Fig. 2c/3c).

    Nodes are the block's instructions (body plus terminator). Edges carry
    a minimum issue-distance [latency] and a [kind]; only [Data] and
    [Check] edges transfer a value between instructions and therefore pay
    the inter-cluster delay when their endpoints are assigned to different
    clusters. *)

module Insn = Casted_ir.Insn
module Block = Casted_ir.Block

type edge_kind =
  | Data  (** true register dependence *)
  | Anti  (** write-after-read *)
  | Output  (** write-after-write *)
  | Mem  (** conservative memory ordering *)
  | Ctrl  (** everything must issue no later than the terminator *)
  | Check  (** a [Chk] guarding a non-replicated instruction *)

type edge = { src : int; dst : int; latency : int; kind : edge_kind }

type t = {
  insns : Insn.t array;  (** body followed by the terminator *)
  preds : edge list array;
  succs : edge list array;
  latency : int array;  (** per-node instruction latency *)
}

(** [kind_pays_delay k] is true for edges whose value crosses the
    inter-cluster interconnect when endpoints differ in cluster. *)
val kind_pays_delay : edge_kind -> bool

val build : latency:(Insn.t -> int) -> Block.t -> t

val num_nodes : t -> int

(** Critical-path height of each node: the longest latency-weighted path
    from the node to any sink, including the node's own latency. Used as
    the scheduling priority (paper Algorithm 2 visits critical-path
    instructions first). *)
val heights : t -> int array

(** A topological order of the nodes (program order is always one since
    edges only point forward). *)
val topological_order : t -> int array

(** Length of the critical path in cycles. *)
val critical_path : t -> int

val pp : Format.formatter -> t -> unit
