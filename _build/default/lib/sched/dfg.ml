module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Insn = Casted_ir.Insn
module Block = Casted_ir.Block

type edge_kind = Data | Anti | Output | Mem | Ctrl | Check

type edge = { src : int; dst : int; latency : int; kind : edge_kind }

type t = {
  insns : Insn.t array;
  preds : edge list array;
  succs : edge list array;
  latency : int array;
}

let kind_pays_delay = function
  | Data | Check -> true
  | Anti | Output | Mem | Ctrl -> false

(* A call may read and write arbitrary memory, so it orders like a store. *)
let store_like (i : Insn.t) =
  Opcode.is_store i.Insn.op || Opcode.equal i.Insn.op Opcode.Call

let load_like (i : Insn.t) = Opcode.is_load i.Insn.op

let build ~latency block =
  let insns = Array.of_list (Block.insns block) in
  let n = Array.length insns in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  let lat = Array.map latency insns in
  let add_edge ~src ~dst ~latency ~kind =
    if src <> dst then begin
      let e = { src; dst; latency; kind } in
      preds.(dst) <- e :: preds.(dst);
      succs.(src) <- e :: succs.(src)
    end
  in
  let last_def : int Reg.Tbl.t = Reg.Tbl.create 64 in
  let readers : int list Reg.Tbl.t = Reg.Tbl.create 64 in
  let by_id = Hashtbl.create 64 in
  Array.iteri (fun i insn -> Hashtbl.replace by_id insn.Insn.id i) insns;
  let last_store = ref (-1) in
  let loads_since_store = ref [] in
  for i = 0 to n - 1 do
    let insn = insns.(i) in
    (* RAW: from the last writer of each used register. *)
    Array.iter
      (fun r ->
        (match Reg.Tbl.find_opt last_def r with
        | Some j -> add_edge ~src:j ~dst:i ~latency:lat.(j) ~kind:Data
        | None -> ());
        let rs = Option.value ~default:[] (Reg.Tbl.find_opt readers r) in
        Reg.Tbl.replace readers r (i :: rs))
      insn.Insn.uses;
    (* WAR and WAW on defined registers. *)
    Array.iter
      (fun r ->
        (* Latency 1 (not 0): the simulator retires a bundle's
           instructions sequentially, so a register overwrite must never
           share a cycle with a reader of the old value. *)
        List.iter
          (fun j -> add_edge ~src:j ~dst:i ~latency:1 ~kind:Anti)
          (Option.value ~default:[] (Reg.Tbl.find_opt readers r));
        (match Reg.Tbl.find_opt last_def r with
        | Some j ->
            (* The later write must land after the earlier one. *)
            add_edge ~src:j ~dst:i
              ~latency:(max 1 (lat.(j) - lat.(i) + 1))
              ~kind:Output
        | None -> ());
        Reg.Tbl.replace last_def r i;
        Reg.Tbl.replace readers r [])
      insn.Insn.defs;
    (* Conservative memory ordering: stores (and calls) are barriers for
       all memory operations; loads may reorder freely among themselves. *)
    if store_like insn then begin
      if !last_store >= 0 then
        add_edge ~src:!last_store ~dst:i ~latency:1 ~kind:Mem;
      List.iter
        (fun j -> add_edge ~src:j ~dst:i ~latency:1 ~kind:Mem)
        !loads_since_store;
      last_store := i;
      loads_since_store := []
    end
    else if load_like insn then begin
      if !last_store >= 0 then
        add_edge ~src:!last_store ~dst:i ~latency:1 ~kind:Mem;
      loads_since_store := i :: !loads_since_store
    end;
    (* A check must complete before the instruction it guards issues. *)
    if Insn.is_check insn && insn.Insn.protects >= 0 then begin
      match Hashtbl.find_opt by_id insn.Insn.protects with
      | Some j when j > i -> add_edge ~src:i ~dst:j ~latency:lat.(i) ~kind:Check
      | Some _ | None -> ()
    end
  done;
  (* Everything must issue no later than the terminator. *)
  for i = 0 to n - 2 do
    add_edge ~src:i ~dst:(n - 1) ~latency:0 ~kind:Ctrl
  done;
  { insns; preds; succs; latency = lat }

let num_nodes t = Array.length t.insns

let heights t =
  let n = num_nodes t in
  let h = Array.make n 0 in
  (* Edges point forward in program order, so a reverse sweep suffices. *)
  for i = n - 1 downto 0 do
    h.(i) <- t.latency.(i);
    List.iter
      (fun (e : edge) -> h.(i) <- max h.(i) (e.latency + h.(e.dst)))
      t.succs.(i)
  done;
  h

let topological_order t = Array.init (num_nodes t) (fun i -> i)

let critical_path t =
  Array.fold_left max 0 (heights t)

let pp ppf t =
  Format.fprintf ppf "@[<v>dfg (%d nodes):" (num_nodes t);
  Array.iteri
    (fun i insn ->
      Format.fprintf ppf "@,%3d: %a" i Insn.pp insn;
      List.iter
        (fun e ->
          Format.fprintf ppf " ->%d(%d%s)" e.dst e.latency
            (match e.kind with
            | Data -> "d"
            | Anti -> "a"
            | Output -> "o"
            | Mem -> "m"
            | Ctrl -> "c"
            | Check -> "k"))
        t.succs.(i))
    t.insns;
  Format.fprintf ppf "@]"
