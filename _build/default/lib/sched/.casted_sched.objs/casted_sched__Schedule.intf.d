lib/sched/schedule.mli: Casted_ir Casted_machine Format Hashtbl
