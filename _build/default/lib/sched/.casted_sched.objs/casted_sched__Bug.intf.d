lib/sched/bug.mli: Casted_machine Dfg
