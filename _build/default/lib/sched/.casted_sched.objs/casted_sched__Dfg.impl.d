lib/sched/dfg.ml: Array Casted_ir Format Hashtbl List Option
