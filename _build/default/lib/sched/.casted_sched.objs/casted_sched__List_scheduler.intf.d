lib/sched/list_scheduler.mli: Assign Casted_ir Casted_machine Dfg Schedule
