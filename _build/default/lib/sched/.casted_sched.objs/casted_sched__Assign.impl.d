lib/sched/assign.ml: Array Bug Casted_ir Casted_machine Dfg
