lib/sched/dfg.mli: Casted_ir Format
