lib/sched/list_scheduler.ml: Array Assign Casted_ir Casted_machine Dfg Hashtbl List Schedule
