lib/sched/schedule.ml: Array Casted_ir Casted_machine Format Hashtbl List
