lib/sched/assign.mli: Bug Casted_machine Dfg
