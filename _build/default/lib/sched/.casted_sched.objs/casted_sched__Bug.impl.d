lib/sched/bug.ml: Array Casted_machine Dfg Int List
