(** Deterministic random numbers for the Monte-Carlo campaigns.

    A thin wrapper over [Random.State] with explicit seeding so fault
    campaigns are reproducible run to run. *)

type t

val create : seed:int -> t
val int : t -> int -> int
val int64 : t -> int64 -> int64
val split : t -> t
