(** Machine exceptions.

    In the paper's fault-injection taxonomy these are the "Exceptions"
    category: symptoms of a transient error that the hardware/OS would
    surface without any help from the detection code (e.g. a corrupted
    address register pointing outside the address space). *)

type t =
  | Out_of_bounds of int64  (** memory access outside the arena *)
  | Misaligned of int64  (** access not aligned to its width *)
  | Div_by_zero
  | Stack_overflow  (** call depth exceeded the frame limit *)

exception Trap of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
