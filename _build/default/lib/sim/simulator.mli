(** Cycle-accurate lockstep VLIW simulator.

    Executes a scheduled program (the output of
    {!Casted_detect.Pipeline.compile}) bundle by bundle. All clusters
    issue in lockstep: a bundle's issue time is the maximum over its
    instructions' operand-ready times, where an operand produced on a
    different cluster arrives [delay] cycles late (the paper's
    inter-cluster register-file read). Dynamic stalls come from cache
    misses (Table-I hierarchy) and cross-cluster reads not visible to the
    static scheduler (block boundaries, call returns).

    Bundle semantics are VLIW-parallel: all operands are read before any
    write of the same bundle lands.

    Faults: when a {!Fault.t} is supplied, the n-th dynamic instruction
    with output registers gets one bit of one of its outputs flipped right
    after write-back — the paper's injection model (§IV-C). *)

(** [run schedule] executes the program to termination.

    @param fault optional single transient fault to inject.
    @param fuel dynamic-instruction budget; exceeding it terminates the
      run with {!Outcome.Timeout} (the paper's simulator time-out).
    @param perfect_cache every access hits in L1 (ablation).
    @param profile per-block visit/cycle profile, filled during the run. *)
val run :
  ?fault:Fault.t ->
  ?fuel:int ->
  ?perfect_cache:bool ->
  ?profile:Profile.t ->
  Casted_sched.Schedule.t ->
  Outcome.run
