type t =
  | Out_of_bounds of int64
  | Misaligned of int64
  | Div_by_zero
  | Stack_overflow

exception Trap of t

let to_string = function
  | Out_of_bounds a -> Printf.sprintf "out-of-bounds access at %Ld" a
  | Misaligned a -> Printf.sprintf "misaligned access at %Ld" a
  | Div_by_zero -> "division by zero"
  | Stack_overflow -> "call stack overflow"

let pp ppf t = Format.pp_print_string ppf (to_string t)
