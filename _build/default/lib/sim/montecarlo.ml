type classification = Benign | Detected | Exception | Data_corrupt | Timeout

let all_classes = [ Benign; Detected; Exception; Data_corrupt; Timeout ]

let class_name = function
  | Benign -> "benign"
  | Detected -> "detected"
  | Exception -> "exception"
  | Data_corrupt -> "data-corrupt"
  | Timeout -> "timeout"

type result = {
  trials : int;
  benign : int;
  detected : int;
  exceptions : int;
  corrupt : int;
  timeouts : int;
  golden_cycles : int;
  golden_dyn : int;
  population : int;
}

let count r = function
  | Benign -> r.benign
  | Detected -> r.detected
  | Exception -> r.exceptions
  | Data_corrupt -> r.corrupt
  | Timeout -> r.timeouts

let percent r c =
  if r.trials = 0 then 0.0
  else 100.0 *. float_of_int (count r c) /. float_of_int r.trials

let classify ~golden (run : Outcome.run) =
  match run.Outcome.termination with
  | Outcome.Detected _ -> Detected
  | Outcome.Trapped _ -> Exception
  | Outcome.Timeout -> Timeout
  | Outcome.Exit code ->
      if
        code = golden.Outcome.exit_code
        && String.equal run.Outcome.output golden.Outcome.output
      then Benign
      else Data_corrupt

let run ?(seed = 0xCA57ED) ?(fuel_factor = 10) ~trials sched =
  let golden = Simulator.run sched in
  (match golden.Outcome.termination with
  | Outcome.Exit _ -> ()
  | t ->
      invalid_arg
        (Format.asprintf "Montecarlo.run: golden run did not exit cleanly: %a"
           Outcome.pp_termination t));
  let population = golden.Outcome.dyn_defs in
  let fuel = fuel_factor * max 1 golden.Outcome.dyn_insns in
  let rng = Rng.create ~seed in
  let counts = Array.make 5 0 in
  let idx = function
    | Benign -> 0
    | Detected -> 1
    | Exception -> 2
    | Data_corrupt -> 3
    | Timeout -> 4
  in
  for _ = 1 to trials do
    let fault = Fault.random rng ~population in
    let faulty = Simulator.run ~fault ~fuel sched in
    let c = classify ~golden faulty in
    counts.(idx c) <- counts.(idx c) + 1
  done;
  {
    trials;
    benign = counts.(0);
    detected = counts.(1);
    exceptions = counts.(2);
    corrupt = counts.(3);
    timeouts = counts.(4);
    golden_cycles = golden.Outcome.cycles;
    golden_dyn = golden.Outcome.dyn_insns;
    population;
  }

let pp ppf r =
  Format.fprintf ppf
    "%d trials: %.1f%% benign, %.1f%% detected, %.1f%% exception, %.1f%% \
     corrupt, %.1f%% timeout"
    r.trials (percent r Benign) (percent r Detected) (percent r Exception)
    (percent r Data_corrupt) (percent r Timeout)
