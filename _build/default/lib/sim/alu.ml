module Opcode = Casted_ir.Opcode

let shift_amount b = Int64.to_int b land 63

let sdiv a b =
  if Int64.equal b 0L then raise (Trap.Trap Trap.Div_by_zero)
  else if Int64.equal b (-1L) && Int64.equal a Int64.min_int then Int64.min_int
  else Int64.div a b

let srem a b =
  if Int64.equal b 0L then raise (Trap.Trap Trap.Div_by_zero)
  else if Int64.equal b (-1L) && Int64.equal a Int64.min_int then 0L
  else Int64.rem a b

let int_binop (op : Opcode.t) a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div -> sdiv a b
  | Rem -> srem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (shift_amount b)
  | Shr -> Int64.shift_right_logical a (shift_amount b)
  | Sra -> Int64.shift_right a (shift_amount b)
  | _ -> invalid_arg ("Alu.int_binop: " ^ Opcode.mnemonic op)

let int_immop (op : Opcode.t) a imm =
  match op with
  | Addi -> Int64.add a imm
  | Muli -> Int64.mul a imm
  | Andi -> Int64.logand a imm
  | Xori -> Int64.logxor a imm
  | Shli -> Int64.shift_left a (shift_amount imm)
  | Shri -> Int64.shift_right_logical a (shift_amount imm)
  | Srai -> Int64.shift_right a (shift_amount imm)
  | _ -> invalid_arg ("Alu.int_immop: " ^ Opcode.mnemonic op)

let float_binop (op : Opcode.t) a b =
  match op with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b
  | _ -> invalid_arg ("Alu.float_binop: " ^ Opcode.mnemonic op)
