(** Results of a simulated run. *)

type termination =
  | Exit of int  (** [Halt] executed with this exit code *)
  | Detected of int  (** a [Chk] fired; carries the check's insn id *)
  | Trapped of Trap.t  (** machine exception *)
  | Timeout  (** dynamic instruction budget exhausted *)

type run = {
  termination : termination;
  cycles : int;  (** total execution cycles *)
  dyn_insns : int;  (** dynamic instructions executed *)
  dyn_defs : int;  (** dynamic instructions with >= 1 output register;
                       the fault-injection population *)
  dyn_by_role : int array;  (** dynamic count per {!Casted_ir.Insn.role} *)
  output : string;  (** contents of the program's output region *)
  exit_code : int;  (** exit code, or -1 when not [Exit] *)
  cache : Casted_cache.Hierarchy.stats;
}

val pp_termination : Format.formatter -> termination -> unit
val pp : Format.formatter -> run -> unit

(** Instructions per cycle over the whole run. *)
val ipc : run -> float
