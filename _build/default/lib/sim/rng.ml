type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x5EED; seed lxor 0x00CA57ED |]
let int t bound = Random.State.int t bound
let int64 t bound = Random.State.int64 t bound
let split t = Random.State.split t
