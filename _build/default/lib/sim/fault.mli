(** Transient-fault specification (paper §IV-C).

    A fault flips one random bit in one output register of one randomly
    chosen dynamic instruction — exactly the paper's injection model. The
    injection population is the stream of executed instructions that have
    at least one output register (general-purpose, floating-point or
    predicate). *)

type t = {
  target_def : int;
      (** index into the dynamic stream of defining instructions *)
  def_slot : int;  (** which output register (taken modulo the def count) *)
  bit : int;  (** which bit to flip (modulo 64; predicates just negate) *)
}

(** Draw a fault uniformly over a population of [population] defining
    instructions. *)
val random : Rng.t -> population:int -> t

(** Flip [bit] of an integer value. *)
val flip_int : bit:int -> int64 -> int64

(** Flip [bit] of a float's IEEE-754 representation. *)
val flip_float : bit:int -> float -> float

val pp : Format.formatter -> t -> unit
