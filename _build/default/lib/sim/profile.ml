type entry = { mutable visits : int; mutable cycles : int }

type t = (string * string, entry) Hashtbl.t

let create () = Hashtbl.create 64

let record t ~func ~label ~cycles =
  let key = (func, label) in
  match Hashtbl.find_opt t key with
  | Some e ->
      e.visits <- e.visits + 1;
      e.cycles <- e.cycles + cycles
  | None -> Hashtbl.replace t key { visits = 1; cycles }

let entries t =
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] in
  List.sort (fun (_, a) (_, b) -> Int.compare b.cycles a.cycles) all

let total_cycles t = Hashtbl.fold (fun _ e acc -> acc + e.cycles) t 0

let render_top ?(n = 10) t =
  let total = max 1 (total_cycles t) in
  let rows =
    List.filteri (fun i _ -> i < n) (entries t)
    |> List.map (fun ((func, label), e) ->
           Printf.sprintf "%-28s %10d %12d %6.1f%%"
             (func ^ ":" ^ label)
             e.visits e.cycles
             (100.0 *. float_of_int e.cycles /. float_of_int total))
  in
  String.concat "\n"
    (Printf.sprintf "%-28s %10s %12s %7s" "block" "visits" "cycles" "share"
    :: rows)
  ^ "\n"
