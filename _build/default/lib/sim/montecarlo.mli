(** Monte-Carlo fault-injection campaigns (paper §IV-C).

    A campaign first executes the golden (fault-free) run to collect the
    reference output and the injection population, then runs [trials]
    faulty executions, classifying each into the paper's five outcome
    categories. *)

type classification = Benign | Detected | Exception | Data_corrupt | Timeout

val all_classes : classification list
val class_name : classification -> string

type result = {
  trials : int;
  benign : int;
  detected : int;
  exceptions : int;
  corrupt : int;
  timeouts : int;
  golden_cycles : int;
  golden_dyn : int;
  population : int;  (** dynamic defining instructions in the golden run *)
}

val count : result -> classification -> int

(** Percentage of trials in a class. *)
val percent : result -> classification -> float

(** Classify one faulty run against the golden run. *)
val classify : golden:Outcome.run -> Outcome.run -> classification

(** [run ~seed ~trials schedule] runs the campaign. The fuel of each
    faulty run is [fuel_factor] (default 10) times the golden dynamic
    instruction count, reproducing the simulator time-out of the paper. *)
val run :
  ?seed:int ->
  ?fuel_factor:int ->
  trials:int ->
  Casted_sched.Schedule.t ->
  result

val pp : Format.formatter -> result -> unit
