lib/sim/fault.ml: Format Int64 Rng
