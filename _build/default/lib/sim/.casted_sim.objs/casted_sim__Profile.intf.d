lib/sim/profile.mli:
