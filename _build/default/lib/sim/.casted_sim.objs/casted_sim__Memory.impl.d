lib/sim/memory.ml: Bytes Casted_ir Int64 List String Trap
