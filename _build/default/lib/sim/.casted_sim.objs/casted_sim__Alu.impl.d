lib/sim/alu.ml: Casted_ir Int64 Trap
