lib/sim/montecarlo.mli: Casted_sched Format Outcome
