lib/sim/simulator.ml: Alu Array Bool Casted_cache Casted_ir Casted_machine Casted_sched Fault Float Int64 List Memory Outcome Profile Trap
