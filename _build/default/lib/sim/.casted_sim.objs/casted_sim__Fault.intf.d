lib/sim/fault.mli: Format Rng
