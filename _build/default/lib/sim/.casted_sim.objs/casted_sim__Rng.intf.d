lib/sim/rng.mli:
