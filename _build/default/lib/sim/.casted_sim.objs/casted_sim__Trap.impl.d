lib/sim/trap.ml: Format Printf
