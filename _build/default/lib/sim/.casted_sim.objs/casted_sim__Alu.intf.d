lib/sim/alu.mli: Casted_ir
