lib/sim/outcome.ml: Casted_cache Format Trap
