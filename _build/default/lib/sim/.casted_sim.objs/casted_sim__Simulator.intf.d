lib/sim/simulator.mli: Casted_sched Fault Outcome Profile
