lib/sim/trap.mli: Format
