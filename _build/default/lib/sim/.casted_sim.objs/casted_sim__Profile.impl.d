lib/sim/profile.ml: Hashtbl Int List Printf String
