lib/sim/memory.mli: Casted_ir
