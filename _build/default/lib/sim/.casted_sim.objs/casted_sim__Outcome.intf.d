lib/sim/outcome.mli: Casted_cache Format Trap
