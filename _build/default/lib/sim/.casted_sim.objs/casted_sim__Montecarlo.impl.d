lib/sim/montecarlo.ml: Array Fault Format Outcome Rng Simulator String
