type t = { target_def : int; def_slot : int; bit : int }

let random rng ~population =
  if population <= 0 then invalid_arg "Fault.random: empty population";
  {
    target_def = Rng.int rng population;
    def_slot = Rng.int rng 4;
    bit = Rng.int rng 64;
  }

let flip_int ~bit v = Int64.logxor v (Int64.shift_left 1L (bit land 63))

let flip_float ~bit v =
  Int64.float_of_bits (flip_int ~bit (Int64.bits_of_float v))

let pp ppf t =
  Format.fprintf ppf "fault@@def#%d slot %d bit %d" t.target_def t.def_slot
    t.bit
