let all =
  [
    W_cjpeg.workload;
    W_h263dec.workload;
    W_mpeg2dec.workload;
    W_h263enc.workload;
    W_vpr.workload;
    W_mcf.workload;
    W_parser.workload;
  ]

let find name =
  List.find_opt (fun w -> String.equal w.Workload.name name) all

let names () = List.map (fun w -> w.Workload.name) all
