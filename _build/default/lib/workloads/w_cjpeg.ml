module B = Casted_ir.Builder
module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Program = Casted_ir.Program

let qrec_base = 0x400
let tmp_base = 0x800 (* 8x8 of W4 row-transform results *)
let in_base = 0x1000

let dims = function
  | Workload.Fault -> (16, 16)
  | Workload.Perf -> (64, 64)

let build size =
  let width, height = dims size in
  let bw = width / 8 and bh = height / 8 in
  let n_blocks = bw * bh in
  let out_base = in_base + (width * height) + 0x100 in
  let out_len = (n_blocks * 128) + 8 in
  let chk_addr = out_base + (n_blocks * 128) in
  let b = B.create ~name:"main" () in
  let in_reg = B.movi b (Int64.of_int in_base) in
  let tmp = B.movi b (Int64.of_int tmp_base) in
  let qreg = B.movi b (Int64.of_int qrec_base) in
  let out_ptr = B.movi b (Int64.of_int out_base) in
  let acc = B.movi b 0x9E3779B9L in
  B.counted_loop b ~name:"by" ~from:0L ~until:(Int64.of_int bh) (fun b by ->
      let row_off = B.muli b by (Int64.of_int (8 * width)) in
      let row_base = B.add b in_reg row_off in
      B.counted_loop b ~name:"bx" ~from:0L ~until:(Int64.of_int bw)
        (fun b bx ->
          let col_off = B.muli b bx 8L in
          let base = B.add b row_base col_off in
          (* Row pass: one 8-pixel 1-D DCT per iteration, results into
             the scratch tile (W4, row-major, 32-byte rows). *)
          B.counted_loop b ~name:"row" ~from:0L ~until:8L (fun b r ->
              let px_off = B.muli b r (Int64.of_int width) in
              let px_base = B.add b base px_off in
              let x =
                Array.init 8 (fun c ->
                    let v = B.ld b Opcode.W1 px_base (Int64.of_int c) in
                    B.addi b v (-128L))
              in
              let y = Kernels.dct_1d b x in
              let t_off = B.muli b r 32L in
              let t_base = B.add b tmp t_off in
              Array.iteri
                (fun j v ->
                  B.st b Opcode.W4 ~value:v ~base:t_base
                    (Int64.of_int (4 * j)))
                y);
          (* Column pass: transform, quantise against the reciprocal
             table, emit coefficients and fold them into the checksum. *)
          B.counted_loop b ~name:"col" ~from:0L ~until:8L (fun b c ->
              let c4 = B.muli b c 4L in
              let t_base = B.add b tmp c4 in
              let x =
                Array.init 8 (fun r ->
                    B.lds b Opcode.W4 t_base (Int64.of_int (32 * r)))
              in
              let y = Kernels.dct_1d b x in
              let c16 = B.muli b c 16L in
              let q_base = B.add b qreg c16 in
              let o_base = B.add b out_ptr c16 in
              let folded = ref None in
              Array.iteri
                (fun r v ->
                  let qr = B.lds b Opcode.W2 q_base (Int64.of_int (2 * r)) in
                  let q0 = B.mul b v qr in
                  let q = B.srai b q0 16L in
                  B.st b Opcode.W2 ~value:q ~base:o_base
                    (Int64.of_int (2 * r));
                  folded :=
                    Some
                      (match !folded with
                      | None -> q
                      | Some f -> B.xor b f q))
                y;
              match !folded with
              | Some f -> Kernels.mix b ~acc f
              | None -> ());
          let (_ : Reg.t) = B.addi b ~dst:out_ptr out_ptr 128L in
          ()));
  let chk = B.movi b (Int64.of_int chk_addr) in
  B.st b Opcode.W8 ~value:acc ~base:chk 0L;
  let zero = B.movi b 0L in
  B.halt b ~code:zero ();
  let func = B.finish b in
  let rng = Gen.create ~seed:(0x17E5 + width) in
  let image = Gen.bytes rng (width * height) in
  let qrecs = Gen.le16 (List.init 64 (fun _ -> 200 + Gen.int rng 700)) in
  Program.make ~funcs:[ func ] ~entry:"main"
    ~mem_size:(1 lsl 20)
    ~data:[ (qrec_base, qrecs); (in_base, image) ]
    ~output_base:out_base ~output_len:out_len ()

let workload =
  {
    Workload.name = "cjpeg";
    suite = "MediaBench II";
    description = "8x8 forward DCT + quantisation (high-ILP encoder kernel)";
    build;
  }
