(** Deterministic input-data generation.

    All workload inputs are produced by a fixed linear congruential
    generator so every build of a program is byte-identical — a
    requirement for differential testing (original vs. hardened must
    produce the same output) and for reproducible fault campaigns. *)

type t

val create : seed:int -> t

(** Uniform in [0, bound). *)
val int : t -> int -> int

(** Raw 32-bit step of the generator. *)
val bits : t -> int

(** [bytes t n] returns [n] pseudo-random bytes. *)
val bytes : t -> int -> string

(** Serialize 16-bit little-endian values. *)
val le16 : int list -> string

(** Serialize 32-bit little-endian values. *)
val le32 : int list -> string

(** Serialize 64-bit little-endian values. *)
val le64 : int64 list -> string

(** A pseudo-random permutation of [0 .. n-1] (Fisher-Yates). *)
val permutation : t -> int -> int array
