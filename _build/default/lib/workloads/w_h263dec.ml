module B = Casted_ir.Builder
module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Program = Casted_ir.Program

let tmp_base = 0x800
let coef_base = 0x1000

let dims = function
  | Workload.Fault -> (16, 16)
  | Workload.Perf -> (64, 48)

(* The reference frame is padded by 4 pixels on every side so motion
   vectors in [-2, 2] never leave the arena. *)
let pad = 4

let build size =
  let width, height = dims size in
  let bw = width / 8 and bh = height / 8 in
  let n_blocks = bw * bh in
  let rw = width + (2 * pad) and rh = height + (2 * pad) in
  let mv_base = coef_base + (n_blocks * 128) in
  let ref_base = mv_base + (n_blocks * 4) + 0x40 in
  let out_base = ref_base + (rw * rh) + 0x100 in
  let out_len = (width * height) + 8 in
  let chk_addr = out_base + (width * height) in
  let b = B.create ~name:"main" () in
  let coef = B.movi b (Int64.of_int coef_base) in
  let mvs = B.movi b (Int64.of_int mv_base) in
  let refr = B.movi b (Int64.of_int ref_base) in
  let out = B.movi b (Int64.of_int out_base) in
  let tmp = B.movi b (Int64.of_int tmp_base) in
  let zero = B.movi b 0L in
  let c255 = B.movi b 255L in
  let acc = B.movi b 0x0B5E55EDL in
  let bi = B.movi b 0L in
  B.counted_loop b ~name:"by" ~from:0L ~until:(Int64.of_int bh) (fun b by ->
      B.counted_loop b ~name:"bx" ~from:0L ~until:(Int64.of_int bw)
        (fun b bx ->
          let cb_off = B.muli b bi 128L in
          let cb = B.add b coef cb_off in
          (* Motion vector of this block, components in [-2, 2]. *)
          let mv_off = B.muli b bi 4L in
          let mv_at = B.add b mvs mv_off in
          let mvx = B.lds b Opcode.W2 mv_at 0L in
          let mvy = B.lds b Opcode.W2 mv_at 2L in
          (* Row pass: dequantise and inverse-transform each row. *)
          B.counted_loop b ~name:"row" ~from:0L ~until:8L (fun b r ->
              let r16 = B.muli b r 16L in
              let rb = B.add b cb r16 in
              let x =
                Array.init 8 (fun c ->
                    let v = B.lds b Opcode.W2 rb (Int64.of_int (2 * c)) in
                    B.muli b v 13L)
              in
              let y = Kernels.idct_1d b x in
              let t_off = B.muli b r 32L in
              let t_base = B.add b tmp t_off in
              Array.iteri
                (fun j v ->
                  B.st b Opcode.W4 ~value:v ~base:t_base
                    (Int64.of_int (4 * j)))
                y);
          (* Column pass: inverse transform, add the motion-compensated
             predictor, saturate to [0, 255] and store the pixel. *)
          let px0 = B.muli b bx 8L in
          let py0 = B.muli b by 8L in
          let ry0 = B.add b py0 mvy in
          let rx0 = B.add b px0 mvx in
          B.counted_loop b ~name:"col" ~from:0L ~until:8L (fun b c ->
              let c4 = B.muli b c 4L in
              let t_base = B.add b tmp c4 in
              let x =
                Array.init 8 (fun r ->
                    B.lds b Opcode.W4 t_base (Int64.of_int (32 * r)))
              in
              let y = Kernels.idct_1d b x in
              (* Base address of this column in the padded reference. *)
              let rx = B.add b rx0 c in
              let ry_row = B.addi b ry0 (Int64.of_int pad) in
              let ref_row0 = B.muli b ry_row (Int64.of_int rw) in
              let ref_col = B.addi b rx (Int64.of_int pad) in
              let ref_off = B.add b ref_row0 ref_col in
              let ref_at = B.add b refr ref_off in
              (* Output column base. *)
              let ox = B.add b px0 c in
              let oy_row = B.muli b py0 (Int64.of_int width) in
              let o_off = B.add b oy_row ox in
              let o_at = B.add b out o_off in
              let folded = ref None in
              Array.iteri
                (fun r v ->
                  let scaled = B.srai b v 6L in
                  let pred =
                    B.ld b Opcode.W1 ref_at (Int64.of_int (r * rw))
                  in
                  let s = B.add b scaled pred in
                  let px = Kernels.clamp b s ~lo:zero ~hi:c255 in
                  B.st b Opcode.W1 ~value:px ~base:o_at
                    (Int64.of_int (r * width));
                  folded :=
                    Some
                      (match !folded with
                      | None -> px
                      | Some f -> B.xor b f px))
                y;
              match !folded with
              | Some f -> Kernels.mix b ~acc f
              | None -> ());
          let (_ : Reg.t) = B.addi b ~dst:bi bi 1L in
          ()));
  let chk = B.movi b (Int64.of_int chk_addr) in
  B.st b Opcode.W8 ~value:acc ~base:chk 0L;
  B.halt b ~code:zero ();
  let func = B.finish b in
  let rng = Gen.create ~seed:(0xDEC0 + width) in
  let coefs =
    Gen.le16 (List.init (n_blocks * 64) (fun _ -> Gen.int rng 64 - 32))
  in
  let mv_words =
    Gen.le16
      (List.concat
         (List.init n_blocks (fun _ ->
              [ Gen.int rng 5 - 2; Gen.int rng 5 - 2 ])))
  in
  let ref_frame = Gen.bytes rng (rw * rh) in
  Program.make ~funcs:[ func ] ~entry:"main"
    ~mem_size:(1 lsl 20)
    ~data:
      [ (coef_base, coefs); (mv_base, mv_words); (ref_base, ref_frame) ]
    ~output_base:out_base ~output_len:out_len ()

let workload =
  {
    Workload.name = "h263dec";
    suite = "MediaBench II";
    description = "dequant + 8x8 IDCT + motion compensation (decoder kernel)";
    build;
  }
