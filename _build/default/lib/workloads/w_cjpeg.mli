(** cjpeg-like kernel (MediaBench II): 8x8 forward DCT + quantisation.

    High-ILP straight-line block bodies (unrolled butterflies and
    fixed-point quantisation), a store per output coefficient, and a
    running checksum. The paper reports CASTED's largest wins on cjpeg
    (up to 21.2%): plenty of redundant-stream ILP to spread across
    clusters. *)

val workload : Workload.t
