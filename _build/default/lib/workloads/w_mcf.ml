module B = Casted_ir.Builder
module Reg = Casted_ir.Reg
module Cond = Casted_ir.Cond
module Opcode = Casted_ir.Opcode
module Program = Casted_ir.Program

let nodes_base = 0x1000
let node_bytes = 16 (* next pointer (W8) + value (W8) *)

let sizes = function
  | Workload.Fault -> (1_024, 3)
  | Workload.Perf -> (8_192, 6)

let build size =
  let n_nodes, passes = sizes size in
  let out_base = nodes_base + (n_nodes * node_bytes) + 0x100 in
  let out_len = 16 in
  let b = B.create ~name:"main" () in
  let zero = B.movi b 0L in
  let acc = B.movi b 0x6D3CFL in
  let potential = B.movi b 7L in
  B.counted_loop b ~name:"pass" ~from:0L ~until:(Int64.of_int passes)
    (fun b _pass ->
      let cur = B.movi b (Int64.of_int nodes_base) in
      let head = B.fresh_label b "chase_head" in
      let body = B.fresh_label b "chase_body" in
      let done_ = B.fresh_label b "chase_done" in
      B.br b head;
      B.block b head;
      let at_end = B.cmpi b Cond.Eq cur 0L in
      B.brc b at_end ~if_:done_ ~else_:body;
      B.block b body;
      (* Node update: read the value, fold it into the running
         potential, write the relaxed value back, follow the chain. *)
      let v = B.ld b Opcode.W8 cur 8L in
      let (_ : Reg.t) = B.add b ~dst:acc acc v in
      let t = B.xor b v potential in
      let relaxed = B.srai b t 1L in
      let nv = B.add b v relaxed in
      B.st b Opcode.W8 ~value:nv ~base:cur 8L;
      let (_ : Reg.t) = B.addi b ~dst:potential potential 3L in
      let (_ : Reg.t) = B.ld b ~dst:cur Opcode.W8 cur 0L in
      B.br b head;
      B.block b done_;
      ());
  let out = B.movi b (Int64.of_int out_base) in
  B.st b Opcode.W8 ~value:acc ~base:out 0L;
  B.st b Opcode.W8 ~value:potential ~base:out 8L;
  B.halt b ~code:zero ();
  let func = B.finish b in
  (* Build the node image: a pseudo-random permutation chain so
     consecutive accesses stride unpredictably through the array. *)
  let rng = Gen.create ~seed:(0x6D3C + n_nodes) in
  (* The chase starts at node 0; the rest of the chain is a random
     permutation so consecutive accesses stride unpredictably. *)
  let tail = Gen.permutation rng (n_nodes - 1) in
  let sequence = Array.append [| 0 |] (Array.map (fun i -> i + 1) tail) in
  let next = Array.make n_nodes 0L in
  for i = 0 to n_nodes - 2 do
    next.(sequence.(i)) <-
      Int64.of_int (nodes_base + (sequence.(i + 1) * node_bytes))
  done;
  next.(sequence.(n_nodes - 1)) <- 0L;
  let image = Buffer.create (n_nodes * node_bytes) in
  Array.iter
    (fun nx ->
      Buffer.add_int64_le image nx;
      Buffer.add_int64_le image (Int64.of_int (Gen.int rng 100_000)))
    next;
  Program.make ~funcs:[ func ] ~entry:"main"
    ~mem_size:(1 lsl 21)
    ~data:[ (nodes_base, Buffer.contents image) ]
    ~output_base:out_base ~output_len:out_len ()

let workload =
  {
    Workload.name = "181.mcf";
    suite = "SPEC CINT2000";
    description = "pointer-chasing node relaxation (low ILP, cache-bound)";
    build;
  }
