module B = Casted_ir.Builder
module Reg = Casted_ir.Reg
module Cond = Casted_ir.Cond
module Opcode = Casted_ir.Opcode
module Program = Casted_ir.Program

let cx_base = 0x1000

let sizes = function
  | Workload.Fault -> (64, 400)
  | Workload.Perf -> (512, 6_000)

let build size =
  let n_cells, n_props = sizes size in
  let cy_base = cx_base + (n_cells * 4) in
  let partner_base = cy_base + (n_cells * 4) in
  let props_base = partner_base + (n_cells * 8) in
  let out_base = props_base + (n_props * 12) + 0x100 in
  let out_len = 24 in
  let b = B.create ~name:"main" () in
  let cx = B.movi b (Int64.of_int cx_base) in
  let cy = B.movi b (Int64.of_int cy_base) in
  let partners = B.movi b (Int64.of_int partner_base) in
  let props = B.movi b (Int64.of_int props_base) in
  let zero = B.movi b 0L in
  let cost = B.fmovi b 1000.0 in
  let weight = B.fmovi b 0.5 in
  let accepts = B.movi b 0L in
  (* Half-perimeter cost of a cell at (x, y) against its two partners. *)
  let hpwl b x y p1 p2 =
    let coord arr p =
      let off = B.muli b p 4L in
      let at = B.add b arr off in
      B.lds b Opcode.W4 at 0L
    in
    let p1x = coord cx p1 and p1y = coord cy p1 in
    let p2x = coord cx p2 and p2y = coord cy p2 in
    let d1 = B.add b (Kernels.abs_ b (B.sub b x p1x))
        (Kernels.abs_ b (B.sub b y p1y)) in
    let d2 = B.add b (Kernels.abs_ b (B.sub b x p2x))
        (Kernels.abs_ b (B.sub b y p2y)) in
    B.add b d1 d2
  in
  B.counted_loop b ~name:"prop" ~from:0L ~until:(Int64.of_int n_props)
    (fun b i ->
      let p_off = B.muli b i 12L in
      let p_at = B.add b props p_off in
      let cell = B.lds b Opcode.W4 p_at 0L in
      let nx = B.lds b Opcode.W4 p_at 4L in
      let ny = B.lds b Opcode.W4 p_at 8L in
      let c4 = B.muli b cell 4L in
      let x_at = B.add b cx c4 in
      let y_at = B.add b cy c4 in
      let ox = B.lds b Opcode.W4 x_at 0L in
      let oy = B.lds b Opcode.W4 y_at 0L in
      let pa_off = B.muli b cell 8L in
      let pa_at = B.add b partners pa_off in
      let p1 = B.lds b Opcode.W4 pa_at 0L in
      let p2 = B.lds b Opcode.W4 pa_at 4L in
      let old_cost = hpwl b ox oy p1 p2 in
      let new_cost = hpwl b nx ny p1 p2 in
      let delta = B.sub b new_cost old_cost in
      let improves = B.cmpi b Cond.Lt delta 0L in
      B.if_ b ~name:"accept" improves
        (fun b ->
          B.st b Opcode.W4 ~value:nx ~base:x_at 0L;
          B.st b Opcode.W4 ~value:ny ~base:y_at 0L;
          let df = B.itof b delta in
          let dw = B.fmul b df weight in
          let (_ : Reg.t) = B.fadd b ~dst:cost cost dw in
          let (_ : Reg.t) = B.addi b ~dst:accepts accepts 1L in
          ())
        (fun _ -> ()));
  (* Fold the final placement into a checksum. *)
  let acc = B.movi b 0x0F1CEDL in
  B.counted_loop b ~name:"sum" ~from:0L ~until:(Int64.of_int n_cells)
    (fun b i ->
      let off = B.muli b i 4L in
      let x = B.lds b Opcode.W4 (B.add b cx off) 0L in
      let y = B.lds b Opcode.W4 (B.add b cy off) 0L in
      Kernels.mix b ~acc x;
      Kernels.mix b ~acc y);
  let out = B.movi b (Int64.of_int out_base) in
  B.fst_ b ~value:cost ~base:out 0L;
  B.st b Opcode.W8 ~value:accepts ~base:out 8L;
  B.st b Opcode.W8 ~value:acc ~base:out 16L;
  B.halt b ~code:zero ();
  let func = B.finish b in
  let rng = Gen.create ~seed:(0x4B9 + n_cells) in
  let grid = 64 in
  let coords n = Gen.le32 (List.init n (fun _ -> Gen.int rng grid)) in
  let partners_data =
    Gen.le32
      (List.concat
         (List.init n_cells (fun _ ->
              [ Gen.int rng n_cells; Gen.int rng n_cells ])))
  in
  let props_data =
    Gen.le32
      (List.concat
         (List.init n_props (fun _ ->
              [ Gen.int rng n_cells; Gen.int rng grid; Gen.int rng grid ])))
  in
  Program.make ~funcs:[ func ] ~entry:"main"
    ~mem_size:(1 lsl 20)
    ~data:
      [
        (cx_base, coords n_cells);
        (cy_base, coords n_cells);
        (partner_base, partners_data);
        (props_base, props_data);
      ]
    ~output_base:out_base ~output_len:out_len ()

let workload =
  {
    Workload.name = "175.vpr";
    suite = "SPEC CINT2000";
    description = "placement-cost evaluation with accept/reject moves";
    build;
  }
