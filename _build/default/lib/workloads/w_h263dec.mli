(** h263dec-like kernel (MediaBench II): dequantisation, 8x8 inverse DCT
    and motion compensation with saturation.

    Decoder-shaped ILP: medium-sized loop bodies mixing loads from two
    streams (coefficients and reference frame), select-based clamping and
    a byte store per pixel. *)

val workload : Workload.t
