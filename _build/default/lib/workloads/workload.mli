(** Common benchmark interface.

    Each workload mirrors one of the paper's seven benchmarks (Table II):
    a deterministic kernel with the published character of the original —
    ILP profile, branch/store density, cache footprint — built as an IR
    program. [Fault] inputs are small (fault campaigns run hundreds of
    executions); [Perf] inputs are larger for stable timing. *)

type size = Perf | Fault

type t = {
  name : string;
  suite : string;  (** "MediaBench II" or "SPEC CINT2000" *)
  description : string;
  build : size -> Casted_ir.Program.t;
}

val size_name : size -> string
