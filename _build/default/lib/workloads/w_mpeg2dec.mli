(** mpeg2dec-like kernel (MediaBench II): per-coefficient dequantisation,
    inverse DCT and block reconstruction, with skipped macroblocks copied
    through an {e unprotected} library routine.

    The library call path reproduces the paper's observation that
    binary-only library code stays outside the sphere of replication and
    is the residual source of silent data corruption (§IV-C). *)

val workload : Workload.t
