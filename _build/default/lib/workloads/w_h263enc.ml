module B = Casted_ir.Builder
module Reg = Casted_ir.Reg
module Cond = Casted_ir.Cond
module Opcode = Casted_ir.Opcode
module Program = Casted_ir.Program

let cur_base = 0x1000
let pad = 4
let search = 2 (* candidates in [-search, search]^2 *)

let dims = function
  | Workload.Fault -> (8, 8)
  | Workload.Perf -> (32, 24)

let build size =
  let width, height = dims size in
  let bw = width / 8 and bh = height / 8 in
  let n_blocks = bw * bh in
  let rw = width + (2 * pad) and rh = height + (2 * pad) in
  let ref_base = cur_base + (width * height) + 0x40 in
  let out_base = ref_base + (rw * rh) + 0x100 in
  let out_len = (n_blocks * 8) + 8 in
  let chk_addr = out_base + (n_blocks * 8) in
  let b = B.create ~name:"main" () in
  let cur = B.movi b (Int64.of_int cur_base) in
  let refr = B.movi b (Int64.of_int ref_base) in
  let out = B.movi b (Int64.of_int out_base) in
  let zero = B.movi b 0L in
  let acc = B.movi b 0x536AD000L in
  let bi = B.movi b 0L in
  let span = Int64.of_int ((2 * search) + 1) in
  B.counted_loop b ~name:"by" ~from:0L ~until:(Int64.of_int bh) (fun b by ->
      B.counted_loop b ~name:"bx" ~from:0L ~until:(Int64.of_int bw)
        (fun b bx ->
          let px0 = B.muli b bx 8L in
          let py0 = B.muli b by 8L in
          let cur_row0 = B.muli b py0 (Int64.of_int width) in
          let cur_off = B.add b cur_row0 px0 in
          let cb = B.add b cur cur_off in
          let best_sad = B.movi b 0x7FFFFFL in
          let best_code = B.movi b (-1L) in
          B.counted_loop b ~name:"dy" ~from:0L ~until:span (fun b dyi ->
              B.counted_loop b ~name:"dx" ~from:0L ~until:span (fun b dxi ->
                  (* Reference base of this candidate:
                     (py0 + pad + dy) * rw + px0 + pad + dx. *)
                  let ry = B.add b py0 dyi in
                  let ry = B.addi b ry (Int64.of_int (pad - search)) in
                  let rrow = B.muli b ry (Int64.of_int rw) in
                  let rx = B.add b px0 dxi in
                  let rx = B.addi b rx (Int64.of_int (pad - search)) in
                  let roff = B.add b rrow rx in
                  let rb = B.add b refr roff in
                  (* Hand-rolled row loop with two exits: early abandon
                     when the partial SAD already exceeds the best. *)
                  let row_head = B.fresh_label b "row_head" in
                  let row_body = B.fresh_label b "row_body" in
                  let row_sum = B.fresh_label b "row_sum" in
                  let cand_done = B.fresh_label b "cand_done" in
                  let sad = B.movi b 0L in
                  let r = B.movi b 0L in
                  B.br b row_head;
                  B.block b row_head;
                  let p = B.cmpi b Cond.Lt r 8L in
                  B.brc b p ~if_:row_body ~else_:row_sum;
                  B.block b row_body;
                  let crow_off = B.muli b r (Int64.of_int width) in
                  let crow = B.add b cb crow_off in
                  let rrow_off = B.muli b r (Int64.of_int rw) in
                  let rrow = B.add b rb rrow_off in
                  let diffs =
                    Array.init 8 (fun c ->
                        let a = B.ld b Opcode.W1 crow (Int64.of_int c) in
                        let v = B.ld b Opcode.W1 rrow (Int64.of_int c) in
                        Kernels.abs_ b (B.sub b a v))
                  in
                  (* Balanced reduction keeps some ILP in the row body. *)
                  let s01 = B.add b diffs.(0) diffs.(1) in
                  let s23 = B.add b diffs.(2) diffs.(3) in
                  let s45 = B.add b diffs.(4) diffs.(5) in
                  let s67 = B.add b diffs.(6) diffs.(7) in
                  let s03 = B.add b s01 s23 in
                  let s47 = B.add b s45 s67 in
                  let row_sad = B.add b s03 s47 in
                  let (_ : Reg.t) = B.add b ~dst:sad sad row_sad in
                  let (_ : Reg.t) = B.addi b ~dst:r r 1L in
                  let give_up = B.cmp b Cond.Ge sad best_sad in
                  B.brc b give_up ~if_:cand_done ~else_:row_head;
                  B.block b row_sum;
                  let better = B.cmp b Cond.Lt sad best_sad in
                  B.if_ b ~name:"upd" better
                    (fun b ->
                      let (_ : Reg.t) = B.mov b ~dst:best_sad sad in
                      let code0 = B.muli b dyi 8L in
                      let code = B.add b code0 dxi in
                      let (_ : Reg.t) = B.mov b ~dst:best_code code in
                      ())
                    (fun _ -> ());
                  B.br b cand_done;
                  B.block b cand_done;
                  ()));
          (* Record the winning candidate. *)
          let o_off = B.muli b bi 8L in
          let o_at = B.add b out o_off in
          B.st b Opcode.W4 ~value:best_code ~base:o_at 0L;
          B.st b Opcode.W4 ~value:best_sad ~base:o_at 4L;
          Kernels.mix b ~acc best_sad;
          Kernels.mix b ~acc best_code;
          let (_ : Reg.t) = B.addi b ~dst:bi bi 1L in
          ()));
  let chk = B.movi b (Int64.of_int chk_addr) in
  B.st b Opcode.W8 ~value:acc ~base:chk 0L;
  B.halt b ~code:zero ();
  let func = B.finish b in
  let rng = Gen.create ~seed:(0xE6C + width) in
  let cur_frame = Gen.bytes rng (width * height) in
  let ref_frame = Gen.bytes rng (rw * rh) in
  Program.make ~funcs:[ func ] ~entry:"main"
    ~mem_size:(1 lsl 20)
    ~data:[ (cur_base, cur_frame); (ref_base, ref_frame) ]
    ~output_base:out_base ~output_len:out_len ()

let workload =
  {
    Workload.name = "h263enc";
    suite = "MediaBench II";
    description = "SAD motion search with early abandoning (branch-dense)";
    build;
  }
