module Builder = Casted_ir.Builder
module Reg = Casted_ir.Reg
module Cond = Casted_ir.Cond
module B = Builder

let abs_ b x =
  let s = B.srai b x 63L in
  let t = B.xor b x s in
  B.sub b t s

let min_ b x y =
  let p = B.cmp b Cond.Lt x y in
  B.sel b p x y

let max_ b x y =
  let p = B.cmp b Cond.Gt x y in
  B.sel b p x y

let clamp b x ~lo ~hi =
  let p1 = B.cmp b Cond.Lt x lo in
  let t = B.sel b p1 lo x in
  let p2 = B.cmp b Cond.Gt t hi in
  B.sel b p2 hi t

let mix b ~acc v =
  let m = B.muli b acc 31L in
  let s = B.add b m v in
  let r = B.shri b acc 17L in
  let (_ : Reg.t) = B.xor b ~dst:acc s r in
  ()

(* Fixed-point (Q10) cosine constants of the AAN-style butterfly. *)
let c1 = 1004L (* cos(pi/16) * 1024 *)
let c2 = 946L (* cos(2pi/16) *)
let c3 = 851L
let c5 = 569L
let c6 = 392L
let c7 = 200L

let dct_1d b x =
  assert (Array.length x = 8);
  (* Stage 1: symmetric sums and differences. *)
  let a0 = B.add b x.(0) x.(7) in
  let a1 = B.add b x.(1) x.(6) in
  let a2 = B.add b x.(2) x.(5) in
  let a3 = B.add b x.(3) x.(4) in
  let d0 = B.sub b x.(0) x.(7) in
  let d1 = B.sub b x.(1) x.(6) in
  let d2 = B.sub b x.(2) x.(5) in
  let d3 = B.sub b x.(3) x.(4) in
  (* Even half. *)
  let s03 = B.add b a0 a3 in
  let s12 = B.add b a1 a2 in
  let m03 = B.sub b a0 a3 in
  let m12 = B.sub b a1 a2 in
  let y0 = B.add b s03 s12 in
  let y4 = B.sub b s03 s12 in
  let scaled coeff r = B.muli b r coeff in
  let desc r = B.srai b r 10L in
  let y2 =
    let t = B.add b (scaled c2 m03) (scaled c6 m12) in
    desc t
  in
  let y6 =
    let t = B.sub b (scaled c6 m03) (scaled c2 m12) in
    desc t
  in
  (* Odd half: 4-tap fixed-point dot products. *)
  let dot k0 k1 k2 k3 =
    let t01 = B.add b (scaled k0 d0) (scaled k1 d1) in
    let t23 = B.add b (scaled k2 d2) (scaled k3 d3) in
    desc (B.add b t01 t23)
  in
  let y1 = dot c1 c3 c5 c7 in
  let y3 = dot c3 (Int64.neg c7) (Int64.neg c1) (Int64.neg c5) in
  let y5 = dot c5 (Int64.neg c1) c7 c3 in
  let y7 = dot c7 (Int64.neg c5) c3 (Int64.neg c1) in
  [| y0; y1; y2; y3; y4; y5; y6; y7 |]

let idct_1d b y =
  assert (Array.length y = 8);
  let scaled coeff r = B.muli b r coeff in
  let desc r = B.srai b r 10L in
  (* Even half. *)
  let s03 = B.add b y.(0) y.(4) in
  let s12 = B.sub b y.(0) y.(4) in
  let m03 = desc (B.add b (scaled c2 y.(2)) (scaled c6 y.(6))) in
  let m12 = desc (B.sub b (scaled c6 y.(2)) (scaled c2 y.(6))) in
  let a0 = B.add b s03 m03 in
  let a3 = B.sub b s03 m03 in
  let a1 = B.add b s12 m12 in
  let a2 = B.sub b s12 m12 in
  (* Odd half. *)
  let dot k0 k1 k2 k3 =
    let t01 = B.add b (scaled k0 y.(1)) (scaled k1 y.(3)) in
    let t23 = B.add b (scaled k2 y.(5)) (scaled k3 y.(7)) in
    desc (B.add b t01 t23)
  in
  let d0 = dot c1 c3 c5 c7 in
  let d1 = dot c3 (Int64.neg c7) (Int64.neg c1) (Int64.neg c5) in
  let d2 = dot c5 (Int64.neg c1) c7 c3 in
  let d3 = dot c7 (Int64.neg c5) c3 (Int64.neg c1) in
  let x0 = B.add b a0 d0 in
  let x7 = B.sub b a0 d0 in
  let x1 = B.add b a1 d1 in
  let x6 = B.sub b a1 d1 in
  let x2 = B.add b a2 d2 in
  let x5 = B.sub b a2 d2 in
  let x3 = B.add b a3 d3 in
  let x4 = B.sub b a3 d3 in
  [| x0; x1; x2; x3; x4; x5; x6; x7 |]
