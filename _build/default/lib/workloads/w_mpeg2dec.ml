module B = Casted_ir.Builder
module Reg = Casted_ir.Reg
module Cond = Casted_ir.Cond
module Opcode = Casted_ir.Opcode
module Program = Casted_ir.Program

let qtab_base = 0x400
let tmp_base = 0x800
let coef_base = 0x1000

let dims = function
  | Workload.Fault -> (16, 16)
  | Workload.Perf -> (64, 48)

(* Binary-only library routine: copy one 8-byte row. Left unprotected by
   the detection pass (protect = false), like the system libraries in the
   paper's fault-injection study. *)
let lib_copy_row () =
  let dst = Casted_ir.Reg.gp 0 and src = Casted_ir.Reg.gp 1 in
  let b =
    B.create ~name:"lib_copy_row" ~params:[ dst; src ]
      ~ret_cls:(Some Casted_ir.Reg.Gp) ~protect:false ()
  in
  let v = B.ld b Opcode.W8 src 0L in
  B.st b Opcode.W8 ~value:v ~base:dst 0L;
  B.ret b ~value:v ();
  B.finish b

let build size =
  let width, height = dims size in
  let bw = width / 8 and bh = height / 8 in
  let n_blocks = bw * bh in
  let ref_base = coef_base + (n_blocks * 128) + 0x40 in
  let out_base = ref_base + (width * height) + 0x100 in
  let out_len = (width * height) + 8 in
  let chk_addr = out_base + (width * height) in
  let b = B.create ~name:"main" () in
  let coef = B.movi b (Int64.of_int coef_base) in
  let qtab = B.movi b (Int64.of_int qtab_base) in
  let refr = B.movi b (Int64.of_int ref_base) in
  let out = B.movi b (Int64.of_int out_base) in
  let tmp = B.movi b (Int64.of_int tmp_base) in
  let zero = B.movi b 0L in
  let c255 = B.movi b 255L in
  let acc = B.movi b 0x4D50454FL in
  let bi = B.movi b 0L in
  B.counted_loop b ~name:"by" ~from:0L ~until:(Int64.of_int bh) (fun b by ->
      B.counted_loop b ~name:"bx" ~from:0L ~until:(Int64.of_int bw)
        (fun b bx ->
          let px0 = B.muli b bx 8L in
          let oy_row = B.muli b by (Int64.of_int (8 * width)) in
          let o_block = B.add b oy_row px0 in
          let o_at = B.add b out o_block in
          let r_at = B.add b refr o_block in
          (* Macroblocks alternate between a coded path (dequant + IDCT)
             and a skipped path (library copy from the reference). *)
          let parity = B.andi b bi 1L in
          let skip = B.cmpi b Cond.Eq parity 1L in
          B.if_ b ~name:"blk" skip
            (fun b ->
              B.counted_loop b ~name:"cp" ~from:0L ~until:8L (fun b r ->
                  let roff = B.muli b r (Int64.of_int width) in
                  let d = B.add b o_at roff in
                  let s = B.add b r_at roff in
                  let v = B.gp b in
                  B.call b ~dst:v "lib_copy_row" [ d; s ];
                  Kernels.mix b ~acc v))
            (fun b ->
              let cb_off = B.muli b bi 128L in
              let cb = B.add b coef cb_off in
              B.counted_loop b ~name:"row" ~from:0L ~until:8L (fun b r ->
                  let r16 = B.muli b r 16L in
                  let rb = B.add b cb r16 in
                  let qb = B.add b qtab r16 in
                  let x =
                    Array.init 8 (fun c ->
                        let v =
                          B.lds b Opcode.W2 rb (Int64.of_int (2 * c))
                        in
                        let q =
                          B.lds b Opcode.W2 qb (Int64.of_int (2 * c))
                        in
                        B.mul b v q)
                  in
                  let y = Kernels.idct_1d b x in
                  let t_off = B.muli b r 32L in
                  let t_base = B.add b tmp t_off in
                  Array.iteri
                    (fun j v ->
                      B.st b Opcode.W4 ~value:v ~base:t_base
                        (Int64.of_int (4 * j)))
                    y);
              B.counted_loop b ~name:"col" ~from:0L ~until:8L (fun b c ->
                  let c4 = B.muli b c 4L in
                  let t_base = B.add b tmp c4 in
                  let x =
                    Array.init 8 (fun r ->
                        B.lds b Opcode.W4 t_base (Int64.of_int (32 * r)))
                  in
                  let y = Kernels.idct_1d b x in
                  let o_col = B.add b o_at c in
                  let folded = ref None in
                  Array.iteri
                    (fun r v ->
                      let scaled = B.srai b v 10L in
                      let px = Kernels.clamp b scaled ~lo:zero ~hi:c255 in
                      B.st b Opcode.W1 ~value:px ~base:o_col
                        (Int64.of_int (r * width));
                      folded :=
                        Some
                          (match !folded with
                          | None -> px
                          | Some f -> B.xor b f px))
                    y;
                  match !folded with
                  | Some f -> Kernels.mix b ~acc f
                  | None -> ()));
          let (_ : Reg.t) = B.addi b ~dst:bi bi 1L in
          ()));
  let chk = B.movi b (Int64.of_int chk_addr) in
  B.st b Opcode.W8 ~value:acc ~base:chk 0L;
  B.halt b ~code:zero ();
  let func = B.finish b in
  let rng = Gen.create ~seed:(0x4D50 + width) in
  let coefs =
    Gen.le16 (List.init (n_blocks * 64) (fun _ -> Gen.int rng 48 - 24))
  in
  let qvals = Gen.le16 (List.init 64 (fun _ -> 8 + Gen.int rng 24)) in
  let ref_frame = Gen.bytes rng (width * height) in
  Program.make
    ~funcs:[ func; lib_copy_row () ]
    ~entry:"main"
    ~mem_size:(1 lsl 20)
    ~data:[ (qtab_base, qvals); (coef_base, coefs); (ref_base, ref_frame) ]
    ~output_base:out_base ~output_len:out_len ()

let workload =
  {
    Workload.name = "mpeg2dec";
    suite = "MediaBench II";
    description =
      "dequant + IDCT + reconstruction; skipped blocks go through an \
       unprotected library copy";
    build;
  }
