(** 197.parser-like kernel (SPEC CINT2000): hashed dictionary lookup of
    a token stream.

    Small, serial, branch-dense probe loops plus a call per hit into an
    {e unprotected} verification helper (the "system library" outside the
    sphere of replication). Dominated by dependent loads and compares —
    the classic check-heavy, low-ILP integer benchmark. *)

val workload : Workload.t
