type t = { mutable state : int }

let create ~seed = { state = (seed lor 1) land 0x7FFFFFFF }

let bits t =
  (* Park-Miller minimal standard generator. *)
  t.state <- t.state * 48271 mod 0x7FFFFFFF;
  t.state

let int t bound =
  if bound <= 0 then invalid_arg "Gen.int: non-positive bound";
  bits t mod bound

let bytes t n =
  String.init n (fun _ -> Char.chr (int t 256))

let le16 values =
  let b = Buffer.create (2 * List.length values) in
  List.iter (fun v -> Buffer.add_uint16_le b (v land 0xFFFF)) values;
  Buffer.contents b

let le32 values =
  let b = Buffer.create (4 * List.length values) in
  List.iter (fun v -> Buffer.add_int32_le b (Int32.of_int v)) values;
  Buffer.contents b

let le64 values =
  let b = Buffer.create (8 * List.length values) in
  List.iter (fun v -> Buffer.add_int64_le b v) values;
  Buffer.contents b

let permutation t n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a
