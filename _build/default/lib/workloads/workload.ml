type size = Perf | Fault

type t = {
  name : string;
  suite : string;
  description : string;
  build : size -> Casted_ir.Program.t;
}

let size_name = function Perf -> "perf" | Fault -> "fault"
