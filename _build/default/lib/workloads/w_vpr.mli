(** 175.vpr-like kernel (SPEC CINT2000): placement cost evaluation.

    A stream of proposed cell moves is evaluated against a
    half-perimeter wirelength model; improving moves are accepted
    (stores + branch), and the cost delta is accumulated in floating
    point. Mixed int/float, small branchy loop bodies. *)

val workload : Workload.t
