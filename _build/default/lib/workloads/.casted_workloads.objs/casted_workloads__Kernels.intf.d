lib/workloads/kernels.mli: Casted_ir
