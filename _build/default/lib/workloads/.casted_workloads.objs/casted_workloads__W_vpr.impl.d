lib/workloads/w_vpr.ml: Casted_ir Gen Int64 Kernels List Workload
