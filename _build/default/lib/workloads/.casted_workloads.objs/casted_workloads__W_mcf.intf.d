lib/workloads/w_mcf.mli: Workload
