lib/workloads/kernels.ml: Array Casted_ir Int64
