lib/workloads/w_mpeg2dec.mli: Workload
