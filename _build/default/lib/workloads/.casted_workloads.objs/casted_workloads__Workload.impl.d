lib/workloads/workload.ml: Casted_ir
