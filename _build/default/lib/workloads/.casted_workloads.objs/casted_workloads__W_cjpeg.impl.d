lib/workloads/w_cjpeg.ml: Array Casted_ir Gen Int64 Kernels List Workload
