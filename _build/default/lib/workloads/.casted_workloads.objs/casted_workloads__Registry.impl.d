lib/workloads/registry.ml: List String W_cjpeg W_h263dec W_h263enc W_mcf W_mpeg2dec W_parser W_vpr Workload
