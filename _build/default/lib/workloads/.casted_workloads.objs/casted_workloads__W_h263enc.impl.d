lib/workloads/w_h263enc.ml: Array Casted_ir Gen Int64 Kernels Workload
