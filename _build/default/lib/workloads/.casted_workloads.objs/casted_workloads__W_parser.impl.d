lib/workloads/w_parser.ml: Array Casted_ir Gen Int64 List Workload
