lib/workloads/w_h263dec.ml: Array Casted_ir Gen Int64 Kernels List Workload
