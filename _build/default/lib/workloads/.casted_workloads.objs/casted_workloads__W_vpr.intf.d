lib/workloads/w_vpr.mli: Workload
