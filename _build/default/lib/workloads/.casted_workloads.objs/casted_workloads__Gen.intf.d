lib/workloads/gen.mli:
