lib/workloads/w_mpeg2dec.ml: Array Casted_ir Gen Int64 Kernels List Workload
