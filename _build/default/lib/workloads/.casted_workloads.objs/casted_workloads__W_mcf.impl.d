lib/workloads/w_mcf.ml: Array Buffer Casted_ir Gen Int64 Workload
