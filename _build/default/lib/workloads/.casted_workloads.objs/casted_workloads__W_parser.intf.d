lib/workloads/w_parser.mli: Workload
