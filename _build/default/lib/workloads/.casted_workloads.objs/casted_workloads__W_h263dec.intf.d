lib/workloads/w_h263dec.mli: Workload
