lib/workloads/workload.mli: Casted_ir
