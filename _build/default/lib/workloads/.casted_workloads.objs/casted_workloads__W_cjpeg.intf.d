lib/workloads/w_cjpeg.mli: Workload
