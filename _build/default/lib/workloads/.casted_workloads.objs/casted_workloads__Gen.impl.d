lib/workloads/gen.ml: Array Buffer Char Int32 List String
