lib/workloads/w_h263enc.mli: Workload
