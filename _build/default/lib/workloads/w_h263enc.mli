(** h263enc-like kernel (MediaBench II): full-search SAD motion
    estimation with early abandoning.

    Branch-dense by design: per-row early-exit compares and best-candidate
    updates. Every branch costs the detection pass a check, so the
    redundant code is check-heavy and nearly serial — the benchmark where
    the paper observes SCED scaling {e worse} than NOED (§IV-B2). *)

val workload : Workload.t
