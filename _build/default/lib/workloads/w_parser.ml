module B = Casted_ir.Builder
module Reg = Casted_ir.Reg
module Cond = Casted_ir.Cond
module Opcode = Casted_ir.Opcode
module Program = Casted_ir.Program

let dict_base = 0x1000
let hash_mult = 0x9E3779B1L
let hash_shift = 16

let sizes = function
  | Workload.Fault -> (256, 400)
  | Workload.Perf -> (2_048, 6_000)

(* The hash must be computed identically here (to build the table) and in
   the IR (to probe it). *)
let hash_ocaml capacity key =
  let h = Int64.mul (Int64.of_int key) hash_mult in
  let h = Int64.to_int (Int64.shift_right_logical h hash_shift) in
  h land (capacity - 1)

(* Unprotected "library" comparison helper: returns 1 when both keys are
   equal. Outside the sphere of replication, like libc in the paper. *)
let lib_verify () =
  let a = Casted_ir.Reg.gp 0 and k = Casted_ir.Reg.gp 1 in
  let b =
    B.create ~name:"lib_verify" ~params:[ a; k ]
      ~ret_cls:(Some Casted_ir.Reg.Gp) ~protect:false ()
  in
  let x = B.xor b a k in
  let p = B.cmpi b Cond.Eq x 0L in
  let one = B.movi b 1L in
  let zero = B.movi b 0L in
  let r = B.sel b p one zero in
  B.ret b ~value:r ();
  B.finish b

let build size =
  let capacity, n_tokens = sizes size in
  let tokens_base = dict_base + (capacity * 4) in
  let out_base = tokens_base + (n_tokens * 4) + 0x100 in
  let out_len = n_tokens + 16 in
  let b = B.create ~name:"main" () in
  let dict = B.movi b (Int64.of_int dict_base) in
  let tokens = B.movi b (Int64.of_int tokens_base) in
  let out = B.movi b (Int64.of_int out_base) in
  let zero = B.movi b 0L in
  let matches = B.movi b 0L in
  let probes = B.movi b 0L in
  let mask = Int64.of_int (capacity - 1) in
  B.counted_loop b ~name:"tok" ~from:0L ~until:(Int64.of_int n_tokens)
    (fun b i ->
      let t_off = B.muli b i 4L in
      let tok = B.ld b Opcode.W4 (B.add b tokens t_off) 0L in
      let h0 = B.muli b tok hash_mult in
      let h1 = B.shri b h0 (Int64.of_int hash_shift) in
      let slot = B.andi b h1 mask in
      let probe_head = B.fresh_label b "probe_head" in
      let probe_miss = B.fresh_label b "probe_miss" in
      let probe_next = B.fresh_label b "probe_next" in
      let probe_hit = B.fresh_label b "probe_hit" in
      let tok_done = B.fresh_label b "tok_done" in
      let flag = B.movi b 0L in
      B.br b probe_head;
      B.block b probe_head;
      let s4 = B.muli b slot 4L in
      let key = B.ld b Opcode.W4 (B.add b dict s4) 0L in
      let (_ : Reg.t) = B.addi b ~dst:probes probes 1L in
      let hit = B.cmp b Cond.Eq key tok in
      B.brc b hit ~if_:probe_hit ~else_:probe_next;
      B.block b probe_next;
      let empty = B.cmpi b Cond.Eq key 0L in
      let bumped = B.addi b slot 1L in
      let (_ : Reg.t) = B.andi b ~dst:slot bumped mask in
      B.brc b empty ~if_:probe_miss ~else_:probe_head;
      B.block b probe_hit;
      (* Verify through the unprotected library helper. *)
      let v = B.gp b in
      B.call b ~dst:v "lib_verify" [ tok; key ];
      let (_ : Reg.t) = B.add b ~dst:matches matches v in
      let (_ : Reg.t) = B.mov b ~dst:flag v in
      B.br b tok_done;
      B.block b probe_miss;
      B.br b tok_done;
      B.block b tok_done;
      let o_at = B.add b out i in
      B.st b Opcode.W1 ~value:flag ~base:o_at 0L);
  let tail = B.movi b (Int64.of_int (out_base + n_tokens)) in
  B.st b Opcode.W8 ~value:matches ~base:tail 0L;
  B.st b Opcode.W8 ~value:probes ~base:tail 8L;
  B.halt b ~code:zero ();
  let func = B.finish b in
  (* Build the dictionary image with the same hash/probing as the IR. *)
  let rng = Gen.create ~seed:(0x9A25 + capacity) in
  let table = Array.make capacity 0 in
  let inserted = ref [] in
  let target_fill = capacity * 6 / 10 in
  while List.length !inserted < target_fill do
    let key = 1 + Gen.int rng 0x3FFFFFFE in
    let rec place slot =
      if table.(slot) = 0 then begin
        table.(slot) <- key;
        inserted := key :: !inserted
      end
      else if table.(slot) = key then ()
      else place ((slot + 1) land (capacity - 1))
    in
    place (hash_ocaml capacity key)
  done;
  let present = Array.of_list !inserted in
  let token_list =
    List.init n_tokens (fun _ ->
        if Gen.int rng 10 < 8 then present.(Gen.int rng (Array.length present))
        else 1 + Gen.int rng 0x3FFFFFFE)
  in
  Program.make
    ~funcs:[ func; lib_verify () ]
    ~entry:"main"
    ~mem_size:(1 lsl 20)
    ~data:
      [
        (dict_base, Gen.le32 (Array.to_list table));
        (tokens_base, Gen.le32 token_list);
      ]
    ~output_base:out_base ~output_len:out_len ()

let workload =
  {
    Workload.name = "197.parser";
    suite = "SPEC CINT2000";
    description = "hashed dictionary lookups with unprotected verify calls";
    build;
  }
