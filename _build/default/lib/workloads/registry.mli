(** The benchmark registry (paper Table II). *)

val all : Workload.t list

val find : string -> Workload.t option
val names : unit -> string list
