(** 181.mcf-like kernel (SPEC CINT2000): pointer chasing over a linked
    node list with per-node updates.

    The next-pointer chain serialises the loads, so ILP is minimal and
    NOED barely scales with issue width — the paper's low-ILP benchmark
    where the redundant stream's extra ILP makes SCED scale {e better}
    than NOED (§IV-B2). The node array exceeds L1 so the chain also
    exercises the cache hierarchy. *)

val workload : Workload.t
