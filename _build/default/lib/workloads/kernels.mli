(** Shared IR-emission idioms used by several workloads. *)

module Builder = Casted_ir.Builder
module Reg = Casted_ir.Reg

(** Branchless absolute value: [(x lxor (x asr 63)) - (x asr 63)]. *)
val abs_ : Builder.t -> Reg.t -> Reg.t

(** [min_ b x y] via compare + select. *)
val min_ : Builder.t -> Reg.t -> Reg.t -> Reg.t

val max_ : Builder.t -> Reg.t -> Reg.t -> Reg.t

(** [clamp b x ~lo ~hi] saturates [x] into [\[lo, hi\]]; the bounds are
    registers so callers hoist the constants out of loops. *)
val clamp : Builder.t -> Reg.t -> lo:Reg.t -> hi:Reg.t -> Reg.t

(** [mix b ~acc v] folds [v] into the running checksum register [acc]
    in place: [acc := (acc * 31 + v) lxor (acc lsr 17)]. *)
val mix : Builder.t -> acc:Reg.t -> Reg.t -> unit

(** 8-point forward integer DCT (butterfly form, fixed-point Q10
    constants). Input and output are 8 registers. *)
val dct_1d : Builder.t -> Reg.t array -> Reg.t array

(** 8-point inverse transform with the same operation mix. *)
val idct_1d : Builder.t -> Reg.t array -> Reg.t array
