(** IR functions.

    A function owns its virtual-register and instruction-id namespaces.
    The first block in [blocks] is the entry block. Functions flagged
    [protect = false] model binary-only library code: the detection pass
    skips them, which is the paper's explanation for residual
    silent-data-corruption (§IV-C). *)

type t = {
  name : string;
  params : Reg.t list;  (** parameter registers, defined on entry *)
  ret_cls : Reg.cls option;  (** class of the returned value, if any *)
  mutable blocks : Block.t list;
  protect : bool;
  mutable next_reg : int array;  (** next free index per register class *)
  mutable next_id : int;  (** next free instruction id *)
}

val make :
  name:string ->
  ?params:Reg.t list ->
  ?ret_cls:Reg.cls option ->
  ?protect:bool ->
  unit ->
  t

val entry : t -> Block.t
val find_block : t -> string -> Block.t

(** Fresh virtual register of the given class. *)
val fresh_reg : t -> Reg.cls -> Reg.t

(** Fresh instruction id. *)
val fresh_id : t -> int

(** Number of registers allocated so far in the given class
    (valid indices are [0 .. reg_count - 1]). *)
val reg_count : t -> Reg.cls -> int

val iter_insns : t -> (Block.t -> Insn.t -> unit) -> unit
val all_insns : t -> Insn.t list
val num_insns : t -> int

(** Bump the register counters so that every register mentioned by the
    current instructions is below [next_reg]. Call after building a
    function by hand with explicit register indices. *)
val normalize_reg_counts : t -> unit

val pp : Format.formatter -> t -> unit
