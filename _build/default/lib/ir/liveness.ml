type t = {
  cfg : Cfg.t;
  live_in : Reg.Set.t array;
  live_out : Reg.Set.t array;
}

let insn_uses (i : Insn.t) = Array.to_list i.Insn.uses
let insn_defs (i : Insn.t) = Array.to_list i.Insn.defs

(* Block-local [gen] (used before defined) and [kill] (defined) sets. *)
let gen_kill block =
  List.fold_left
    (fun (gen, kill) i ->
      let gen =
        List.fold_left
          (fun gen r -> if Reg.Set.mem r kill then gen else Reg.Set.add r gen)
          gen (insn_uses i)
      in
      let kill =
        List.fold_left (fun kill r -> Reg.Set.add r kill) kill (insn_defs i)
      in
      (gen, kill))
    (Reg.Set.empty, Reg.Set.empty)
    (Block.insns block)

let compute cfg =
  let n = Cfg.num_blocks cfg in
  let gens = Array.make n Reg.Set.empty in
  let kills = Array.make n Reg.Set.empty in
  Array.iteri
    (fun i b ->
      let g, k = gen_kill b in
      gens.(i) <- g;
      kills.(i) <- k)
    cfg.Cfg.blocks;
  let live_in = Array.make n Reg.Set.empty in
  let live_out = Array.make n Reg.Set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc j -> Reg.Set.union acc live_in.(j))
          Reg.Set.empty cfg.Cfg.succs.(i)
      in
      let inn = Reg.Set.union gens.(i) (Reg.Set.diff out kills.(i)) in
      if
        (not (Reg.Set.equal out live_out.(i)))
        || not (Reg.Set.equal inn live_in.(i))
      then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  { cfg; live_in; live_out }

let live_before t bi =
  let block = t.cfg.Cfg.blocks.(bi) in
  let insns = Block.insns block in
  (* Walk backwards accumulating liveness, then reverse. *)
  let rec go acc live = function
    | [] -> acc
    | i :: rest ->
        let live =
          List.fold_left (fun s r -> Reg.Set.remove r s) live (insn_defs i)
        in
        let live =
          List.fold_left (fun s r -> Reg.Set.add r s) live (insn_uses i)
        in
        go (live :: acc) live rest
  in
  go [] t.live_out.(bi) (List.rev insns)
