type t = { max_gp : int; max_fp : int; max_pr : int }

let count_classes set =
  Reg.Set.fold
    (fun r (gp, fp, pr) ->
      match Reg.cls r with
      | Reg.Gp -> (gp + 1, fp, pr)
      | Reg.Fp -> (gp, fp + 1, pr)
      | Reg.Pr -> (gp, fp, pr + 1))
    set (0, 0, 0)

let of_func func =
  let cfg = Cfg.of_func func in
  let live = Liveness.compute cfg in
  let worst = ref (0, 0, 0) in
  let bump set =
    let gp, fp, pr = count_classes set in
    let wg, wf, wp = !worst in
    worst := (max wg gp, max wf fp, max wp pr)
  in
  Array.iteri
    (fun i _ -> List.iter bump (Liveness.live_before live i))
    cfg.Cfg.blocks;
  let gp, fp, pr = !worst in
  { max_gp = gp; max_fp = fp; max_pr = pr }

let of_program program =
  List.fold_left
    (fun acc f ->
      let p = of_func f in
      {
        max_gp = max acc.max_gp p.max_gp;
        max_fp = max acc.max_fp p.max_fp;
        max_pr = max acc.max_pr p.max_pr;
      })
    { max_gp = 0; max_fp = 0; max_pr = 0 }
    program.Program.funcs

let exceeds t ~gp ~fp ~pr = t.max_gp > gp || t.max_fp > fp || t.max_pr > pr

let pp ppf t =
  Format.fprintf ppf "%d gp, %d fp, %d pr live at peak" t.max_gp t.max_fp
    t.max_pr
