(** Comparison conditions used by compare instructions. *)

type t = Eq | Ne | Lt | Le | Gt | Ge

val all : t list

(** Signed 64-bit integer comparison. *)
val eval_int : t -> int64 -> int64 -> bool

val eval_float : t -> float -> float -> bool

(** [negate c] satisfies [eval_int (negate c) a b = not (eval_int c a b)]. *)
val negate : t -> t

(** [swap c] satisfies [eval_int (swap c) a b = eval_int c b a]. *)
val swap : t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
