type t = {
  label : string;
  mutable body : Insn.t list;
  mutable term : Insn.t;
}

let make ~label ~body ~term =
  if not (Insn.is_terminator term) then
    invalid_arg
      (Printf.sprintf "Block.make: %s is not a terminator"
         (Opcode.mnemonic term.Insn.op));
  { label; body; term }

let insns t = t.body @ [ t.term ]
let num_insns t = List.length t.body + 1

let successors t =
  match t.term.Insn.op with
  | Opcode.Br -> [ t.term.Insn.target ]
  | Opcode.Brc _ -> [ t.term.Insn.target; t.term.Insn.target2 ]
  | Opcode.Ret | Opcode.Halt -> []
  | op ->
      invalid_arg
        (Printf.sprintf "Block.successors: bad terminator %s"
           (Opcode.mnemonic op))

let pp ppf t =
  Format.fprintf ppf "@[<v>%s:" t.label;
  List.iter (fun i -> Format.fprintf ppf "@,  %a" Insn.pp i) (insns t);
  Format.fprintf ppf "@]"
