(** Basic blocks.

    A block is a straight-line [body] followed by exactly one terminator
    ([Br], [Brc], [Ret] or [Halt]). [Call] instructions live in the body:
    control returns to the instruction after the call. *)

type t = {
  label : string;
  mutable body : Insn.t list;
  mutable term : Insn.t;
}

val make : label:string -> body:Insn.t list -> term:Insn.t -> t

(** Body followed by the terminator. *)
val insns : t -> Insn.t list

val num_insns : t -> int

(** Labels this block can transfer control to, in order
    (taken target first for conditional branches). *)
val successors : t -> string list

val pp : Format.formatter -> t -> unit
