type t = {
  name : string;
  params : Reg.t list;
  ret_cls : Reg.cls option;
  mutable blocks : Block.t list;
  protect : bool;
  mutable next_reg : int array;
  mutable next_id : int;
}

let make ~name ?(params = []) ?(ret_cls = None) ?(protect = true) () =
  let next_reg = [| 0; 0; 0 |] in
  List.iter
    (fun r ->
      let k = Reg.cls_index (Reg.cls r) in
      next_reg.(k) <- max next_reg.(k) (Reg.idx r + 1))
    params;
  { name; params; ret_cls; blocks = []; protect; next_reg; next_id = 0 }

let entry t =
  match t.blocks with
  | [] -> invalid_arg ("Func.entry: empty function " ^ t.name)
  | b :: _ -> b

let find_block t label =
  match List.find_opt (fun b -> b.Block.label = label) t.blocks with
  | Some b -> b
  | None -> raise Not_found

let fresh_reg t cls =
  let k = Reg.cls_index cls in
  let idx = t.next_reg.(k) in
  t.next_reg.(k) <- idx + 1;
  Reg.make cls idx

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let reg_count t cls = t.next_reg.(Reg.cls_index cls)

let iter_insns t f =
  List.iter (fun b -> List.iter (f b) (Block.insns b)) t.blocks

let all_insns t =
  List.concat_map (fun b -> Block.insns b) t.blocks

let num_insns t =
  List.fold_left (fun acc b -> acc + Block.num_insns b) 0 t.blocks

let normalize_reg_counts t =
  let see r =
    let k = Reg.cls_index (Reg.cls r) in
    t.next_reg.(k) <- max t.next_reg.(k) (Reg.idx r + 1)
  in
  iter_insns t (fun _ i ->
      Array.iter see i.Insn.defs;
      Array.iter see i.Insn.uses);
  List.iter see t.params;
  let see_id i = t.next_id <- max t.next_id (i.Insn.id + 1) in
  iter_insns t (fun _ i -> see_id i)

let pp ppf t =
  Format.fprintf ppf "@[<v>func %s(%a)%s:" t.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Reg.pp)
    t.params
    (if t.protect then "" else " [unprotected]");
  List.iter (fun b -> Format.fprintf ppf "@,%a" Block.pp b) t.blocks;
  Format.fprintf ppf "@]"
