(** Control-flow graph of a function, with blocks indexed densely. *)

type t = {
  func : Func.t;
  blocks : Block.t array;
  succs : int list array;
  preds : int list array;
}

val of_func : Func.t -> t

val block_index : t -> string -> int
val num_blocks : t -> int

(** Indices of blocks reachable from the entry. *)
val reachable : t -> bool array

(** Reverse postorder over reachable blocks, starting at the entry. *)
val reverse_postorder : t -> int array
