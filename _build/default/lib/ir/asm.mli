(** Textual assembly format for IR programs.

    A human-readable serialisation with a parser, so kernels can be
    written as [.casted] files and the hardened output of the passes can
    be inspected, diffed and re-loaded. The format round-trips: for any
    program [p], [parse_exn (print p)] is semantically identical to [p]
    (same execution, cycle for cycle) and textually a fixed point after
    one id-normalising print->parse cycle. Explicit [%id:] prefixes
    preserve the link between detection-code annotations ([@repl(id)],
    [@chk(id)], [@shad(id)]) and the instructions they reference.

    {v
    program entry=main mem=65536 output=64:8
    data 256 hex:00AA1BFF
    func main() {
    entry:
      movi r0, 256
      ld8 r1, [r0+0]
      %7: addi r2, r1, 4        ; ids only where referenced
      addi r3, r2, 1 @repl(7)   ; detection-code annotation
      st8 r2, [r0+8]
      brc.t p0, entry, done
    done:
      halt
    }
    func helper(r0, r1) : gp unprotected {
    entry:
      add r2, r0, r1
      ret r2
    }
    v} *)

(** Serialise a whole program. *)
val print : Program.t -> string

val print_func : Func.t -> string

(** Parse a program. Returns [Error message] with a line number on
    syntax errors; the result is not validated (run {!Validate} next). *)
val parse : string -> (Program.t, string) result

val parse_exn : string -> Program.t
