(** Register-pressure analysis.

    Maximum number of simultaneously live registers per class across a
    function. The paper attributes part of the SCED slowdown variance to
    spilling caused by the detection code (§IV-B1); this repo simulates
    unbounded virtual registers, so pressure is reported instead: the
    hardened pressure against the Table-I file sizes (64 GP / 64 FP /
    32 PR per cluster) shows where the paper's compiler would have
    spilled. *)

type t = {
  max_gp : int;
  max_fp : int;
  max_pr : int;
}

val of_func : Func.t -> t

val of_program : Program.t -> t

(** Would this pressure spill on a register file of the given sizes? *)
val exceeds : t -> gp:int -> fp:int -> pr:int -> bool

val pp : Format.formatter -> t -> unit
