(** Per-block liveness analysis (backward may-analysis).

    Used by the validator and the tests to establish that the detection
    pass's register renaming never makes a shadow register interfere with
    the original stream. *)

type t = {
  cfg : Cfg.t;
  live_in : Reg.Set.t array;
  live_out : Reg.Set.t array;
}

val compute : Cfg.t -> t

(** Registers read by the instruction (including call arguments and
    returned values). *)
val insn_uses : Insn.t -> Reg.t list

val insn_defs : Insn.t -> Reg.t list

(** [live_before t block_index] walks the block backwards and returns the
    set of live registers immediately before each instruction, in
    instruction order. *)
val live_before : t -> int -> Reg.Set.t list
