let block (b : Block.t) =
  Block.make ~label:b.Block.label ~body:b.Block.body ~term:b.Block.term

let func (f : Func.t) =
  {
    f with
    Func.blocks = List.map block f.Func.blocks;
    next_reg = Array.copy f.Func.next_reg;
  }

let program (p : Program.t) =
  { p with Program.funcs = List.map func p.Program.funcs }
