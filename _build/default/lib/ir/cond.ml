type t = Eq | Ne | Lt | Le | Gt | Ge

let all = [ Eq; Ne; Lt; Le; Gt; Ge ]

let eval_int t a b =
  let c = Int64.compare a b in
  match t with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let eval_float t a b =
  (* Float comparison follows IEEE semantics: comparisons with NaN are
     false, so [Ne] is implemented directly rather than via [negate]. *)
  match t with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let swap = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let equal (a : t) (b : t) = a = b

let to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let pp ppf t = Format.pp_print_string ppf (to_string t)
