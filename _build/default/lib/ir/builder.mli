(** Imperative construction of IR functions.

    A builder accumulates instructions into a current block; emitting a
    terminator closes the block. Emit helpers allocate a fresh destination
    register unless [?dst] is supplied, and return the destination, so
    straight-line code reads like an expression tree:

    {[
      let b = Builder.create ~name:"main" () in
      let x = Builder.movi b 21L in
      let y = Builder.add b x x in
      Builder.halt b ~code:y ();
      let f = Builder.finish b
    ]} *)

type t

val create :
  name:string ->
  ?params:Reg.t list ->
  ?ret_cls:Reg.cls option ->
  ?protect:bool ->
  ?entry_label:string ->
  unit ->
  t

(** Close the builder and return the function. Raises [Invalid_argument]
    if the current block is still open (missing terminator). *)
val finish : t -> Func.t

(** {1 Registers and labels} *)

val gp : t -> Reg.t
val fp : t -> Reg.t
val pr : t -> Reg.t

(** Fresh label with the given stem, unique within the function. *)
val fresh_label : t -> string -> string

(** {1 Blocks} *)

(** Start a new block with this label. The previous block must have been
    terminated. *)
val block : t -> string -> unit

(** Label of the block currently being filled. *)
val current_label : t -> string

(** {1 Generic emission} *)

val emit :
  t ->
  op:Opcode.t ->
  ?defs:Reg.t array ->
  ?uses:Reg.t array ->
  ?imm:int64 ->
  ?fimm:float ->
  ?target:string ->
  ?target2:string ->
  unit ->
  unit

(** {1 Integer ops} *)

val movi : t -> ?dst:Reg.t -> int64 -> Reg.t
val mov : t -> ?dst:Reg.t -> Reg.t -> Reg.t
val add : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val sub : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val mul : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val div : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val rem : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val and_ : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val or_ : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val xor : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val shl : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val shr : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val sra : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val addi : t -> ?dst:Reg.t -> Reg.t -> int64 -> Reg.t
val muli : t -> ?dst:Reg.t -> Reg.t -> int64 -> Reg.t
val andi : t -> ?dst:Reg.t -> Reg.t -> int64 -> Reg.t
val xori : t -> ?dst:Reg.t -> Reg.t -> int64 -> Reg.t
val shli : t -> ?dst:Reg.t -> Reg.t -> int64 -> Reg.t
val shri : t -> ?dst:Reg.t -> Reg.t -> int64 -> Reg.t
val srai : t -> ?dst:Reg.t -> Reg.t -> int64 -> Reg.t

(** {1 Compares and select} *)

val cmp : t -> ?dst:Reg.t -> Cond.t -> Reg.t -> Reg.t -> Reg.t
val cmpi : t -> ?dst:Reg.t -> Cond.t -> Reg.t -> int64 -> Reg.t

(** [sel b p x y] is [if p then x else y]. *)
val sel : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t -> Reg.t

(** {1 Floating point} *)

val fmovi : t -> ?dst:Reg.t -> float -> Reg.t
val fmov : t -> ?dst:Reg.t -> Reg.t -> Reg.t
val fadd : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val fsub : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val fmul : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val fdiv : t -> ?dst:Reg.t -> Reg.t -> Reg.t -> Reg.t
val fcmp : t -> ?dst:Reg.t -> Cond.t -> Reg.t -> Reg.t -> Reg.t
val itof : t -> ?dst:Reg.t -> Reg.t -> Reg.t
val ftoi : t -> ?dst:Reg.t -> Reg.t -> Reg.t

(** {1 Memory} *)

val ld : t -> ?dst:Reg.t -> Opcode.width -> Reg.t -> int64 -> Reg.t
val lds : t -> ?dst:Reg.t -> Opcode.width -> Reg.t -> int64 -> Reg.t
val st : t -> Opcode.width -> value:Reg.t -> base:Reg.t -> int64 -> unit
val fld : t -> ?dst:Reg.t -> Reg.t -> int64 -> Reg.t
val fst_ : t -> value:Reg.t -> base:Reg.t -> int64 -> unit

(** {1 Control flow (terminators close the current block)} *)

val br : t -> string -> unit

(** [brc b p ~if_:l1 ~else_:l2] branches to [l1] when [p] is true. *)
val brc : t -> ?flag:bool -> Reg.t -> if_:string -> else_:string -> unit

val ret : t -> ?value:Reg.t -> unit -> unit
val halt : t -> ?code:Reg.t -> unit -> unit

(** [call b "f" args] (body instruction, does not close the block). *)
val call : t -> ?dst:Reg.t -> string -> Reg.t list -> unit

(** {1 Structured-control helpers} *)

(** [counted_loop b ~from ~until ?step body] builds
    [for iv = from; iv < until; iv += step do body iv done].
    Emission continues in the loop-exit block. *)
val counted_loop :
  t ->
  ?name:string ->
  from:int64 ->
  until:int64 ->
  ?step:int64 ->
  (t -> Reg.t -> unit) ->
  unit

(** Like {!counted_loop} but the bound is a register. *)
val counted_loop_r :
  t ->
  ?name:string ->
  from:int64 ->
  until:Reg.t ->
  ?step:int64 ->
  (t -> Reg.t -> unit) ->
  unit

(** [if_ b p then_ else_]: both arms join; emission continues after. *)
val if_ : t -> ?name:string -> Reg.t -> (t -> unit) -> (t -> unit) -> unit
