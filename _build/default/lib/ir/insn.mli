(** IR instructions.

    Instructions are immutable records with a per-function unique [id].
    The error-detection pass (paper Algorithm 1) annotates every
    instruction with a {!role} so that the fixed dual-core baseline (DCED)
    and the statistics code can tell original code from detection code
    apart without re-deriving it. *)

(** Provenance of an instruction w.r.t. the detection pass:
    - [Original]: present in the input program.
    - [Replica]: duplicate of an original instruction ([replica_of]).
    - [Check]: comparison guarding a non-replicated instruction
      ([protects]).
    - [Shadow_copy]: copy creating the shadow value of a register defined
      by a non-replicated instruction (Algorithm 1, line 35). *)
type role = Original | Replica | Check | Shadow_copy

type t = {
  id : int;  (** unique within the enclosing function *)
  op : Opcode.t;
  defs : Reg.t array;
  uses : Reg.t array;
  imm : int64;  (** integer immediate; 0 when unused *)
  fimm : float;  (** float immediate; 0.0 when unused *)
  target : string;  (** branch target label / callee name; "" when unused *)
  target2 : string;  (** fall-through label of [Brc]; "" when unused *)
  role : role;
  replica_of : int;  (** id of the original instruction; -1 when unused *)
  protects : int;  (** id of the instruction a [Check] guards; -1 *)
}

val make :
  id:int ->
  op:Opcode.t ->
  ?defs:Reg.t array ->
  ?uses:Reg.t array ->
  ?imm:int64 ->
  ?fimm:float ->
  ?target:string ->
  ?target2:string ->
  ?role:role ->
  ?replica_of:int ->
  ?protects:int ->
  unit ->
  t

(** Functional updates. Each returns a new instruction. *)

val with_id : t -> int -> t
val with_defs : t -> Reg.t array -> t
val with_uses : t -> Reg.t array -> t
val with_role : t -> role -> t

(** [map_uses f t] rewrites every use register through [f]. *)
val map_uses : (Reg.t -> Reg.t) -> t -> t

val map_defs : (Reg.t -> Reg.t) -> t -> t

val is_terminator : t -> bool
val is_check : t -> bool

(** True when the detection pass must not replicate this instruction
    (stores, control flow, checks and shadow copies). *)
val non_replicated : t -> bool

val role_to_string : role -> string
val pp_role : Format.formatter -> role -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
