(** Structural validation of IR programs.

    Every workload and every compiler pass output is validated in the test
    suite; the checks catch malformed register classes, dangling branch
    targets, call signature mismatches and out-of-bounds data segments
    before they turn into confusing simulator failures. *)

(** [check_program p] returns the list of violations ([] if well formed). *)
val check_program : Program.t -> string list

val check_func : Program.t -> Func.t -> string list

(** Raises [Invalid_argument] listing the violations, if any. *)
val check_exn : Program.t -> unit
