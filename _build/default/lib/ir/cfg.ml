type t = {
  func : Func.t;
  blocks : Block.t array;
  succs : int list array;
  preds : int list array;
}

let index_table blocks =
  let tbl = Hashtbl.create (Array.length blocks * 2) in
  Array.iteri (fun i b -> Hashtbl.replace tbl b.Block.label i) blocks;
  tbl

let of_func func =
  let blocks = Array.of_list func.Func.blocks in
  let tbl = index_table blocks in
  let n = Array.length blocks in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iteri
    (fun i b ->
      let ss =
        List.map
          (fun label ->
            match Hashtbl.find_opt tbl label with
            | Some j -> j
            | None ->
                invalid_arg
                  (Printf.sprintf "Cfg.of_func: %s: unknown target %s"
                     func.Func.name label))
          (Block.successors b)
      in
      succs.(i) <- ss;
      List.iter (fun j -> preds.(j) <- i :: preds.(j)) ss)
    blocks;
  { func; blocks; succs; preds }

let block_index t label =
  let rec find i =
    if i >= Array.length t.blocks then raise Not_found
    else if t.blocks.(i).Block.label = label then i
    else find (i + 1)
  in
  find 0

let num_blocks t = Array.length t.blocks

let reachable t =
  let n = Array.length t.blocks in
  let seen = Array.make n false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go t.succs.(i)
    end
  in
  if n > 0 then go 0;
  seen

let reverse_postorder t =
  let n = Array.length t.blocks in
  let seen = Array.make n false in
  let order = ref [] in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go t.succs.(i);
      order := i :: !order
    end
  in
  if n > 0 then go 0;
  Array.of_list !order
