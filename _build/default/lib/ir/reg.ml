type cls = Gp | Fp | Pr

type t = { cls : cls; idx : int }

let make cls idx =
  if idx < 0 then invalid_arg "Reg.make: negative index";
  { cls; idx }

let gp idx = make Gp idx
let fp idx = make Fp idx
let pr idx = make Pr idx

let cls t = t.cls
let idx t = t.idx

let cls_index = function Gp -> 0 | Fp -> 1 | Pr -> 2
let all_classes = [ Gp; Fp; Pr ]

let cls_equal a b = cls_index a = cls_index b

let equal a b = cls_equal a.cls b.cls && a.idx = b.idx

let compare a b =
  let c = Int.compare (cls_index a.cls) (cls_index b.cls) in
  if c <> 0 then c else Int.compare a.idx b.idx

let hash t = (cls_index t.cls * 1_000_003) + t.idx

let pp_cls ppf c =
  Format.pp_print_string ppf (match c with Gp -> "r" | Fp -> "f" | Pr -> "p")

let pp ppf t = Format.fprintf ppf "%a%d" pp_cls t.cls t.idx
let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
module Tbl = Hashtbl.Make (Hashed)
