type role = Original | Replica | Check | Shadow_copy

type t = {
  id : int;
  op : Opcode.t;
  defs : Reg.t array;
  uses : Reg.t array;
  imm : int64;
  fimm : float;
  target : string;
  target2 : string;
  role : role;
  replica_of : int;
  protects : int;
}

let make ~id ~op ?(defs = [||]) ?(uses = [||]) ?(imm = 0L) ?(fimm = 0.0)
    ?(target = "") ?(target2 = "") ?(role = Original) ?(replica_of = -1)
    ?(protects = -1) () =
  { id; op; defs; uses; imm; fimm; target; target2; role; replica_of; protects }

let with_id t id = { t with id }
let with_defs t defs = { t with defs }
let with_uses t uses = { t with uses }
let with_role t role = { t with role }
let map_uses f t = { t with uses = Array.map f t.uses }
let map_defs f t = { t with defs = Array.map f t.defs }
let is_terminator t = Opcode.is_terminator t.op
let is_check t = Opcode.is_check t.op

let non_replicated t =
  match t.role with
  | Check | Shadow_copy -> true
  | Original | Replica -> not (Opcode.replicable t.op)

let role_to_string = function
  | Original -> "orig"
  | Replica -> "repl"
  | Check -> "chk"
  | Shadow_copy -> "shad"

let pp_role ppf r = Format.pp_print_string ppf (role_to_string r)

let pp ppf t =
  let pp_regs ppf regs =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      Reg.pp ppf
      (Array.to_list regs)
  in
  Format.fprintf ppf "%-8s" (Opcode.mnemonic t.op);
  if Array.length t.defs > 0 then Format.fprintf ppf " %a" pp_regs t.defs;
  if Array.length t.defs > 0 && Array.length t.uses > 0 then
    Format.pp_print_string ppf " <-";
  if Array.length t.uses > 0 then Format.fprintf ppf " %a" pp_regs t.uses;
  if Opcode.uses_imm t.op then Format.fprintf ppf " #%Ld" t.imm;
  if Opcode.uses_fimm t.op then Format.fprintf ppf " #%g" t.fimm;
  if t.target <> "" then Format.fprintf ppf " @%s" t.target;
  if t.target2 <> "" then Format.fprintf ppf " /%s" t.target2;
  match t.role with
  | Original -> ()
  | role -> Format.fprintf ppf "  ;%a" pp_role role

let to_string t = Format.asprintf "%a" pp t
