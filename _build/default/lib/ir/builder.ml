type t = {
  func : Func.t;
  mutable cur_label : string option;
  mutable cur_body : Insn.t list;  (* reversed *)
  mutable done_blocks : Block.t list;  (* reversed *)
  mutable label_counter : int;
}

let create ~name ?(params = []) ?(ret_cls = None) ?(protect = true)
    ?(entry_label = "entry") () =
  let func = Func.make ~name ~params ~ret_cls ~protect () in
  {
    func;
    cur_label = Some entry_label;
    cur_body = [];
    done_blocks = [];
    label_counter = 0;
  }

let gp t = Func.fresh_reg t.func Reg.Gp
let fp t = Func.fresh_reg t.func Reg.Fp
let pr t = Func.fresh_reg t.func Reg.Pr

let fresh_label t stem =
  let n = t.label_counter in
  t.label_counter <- n + 1;
  Printf.sprintf "%s_%d" stem n

let block t label =
  (match t.cur_label with
  | Some open_label ->
      invalid_arg
        (Printf.sprintf "Builder.block: block %s still open" open_label)
  | None -> ());
  t.cur_label <- Some label;
  t.cur_body <- []

let current_label t =
  match t.cur_label with
  | Some l -> l
  | None -> invalid_arg "Builder.current_label: no open block"

let push t insn =
  match t.cur_label with
  | None -> invalid_arg "Builder: emitting outside of a block"
  | Some _ -> t.cur_body <- insn :: t.cur_body

let close t term =
  match t.cur_label with
  | None -> invalid_arg "Builder: terminator outside of a block"
  | Some label ->
      let body = List.rev t.cur_body in
      t.done_blocks <- Block.make ~label ~body ~term :: t.done_blocks;
      t.cur_label <- None;
      t.cur_body <- []

let finish t =
  (match t.cur_label with
  | Some open_label ->
      invalid_arg
        (Printf.sprintf "Builder.finish: block %s has no terminator"
           open_label)
  | None -> ());
  t.func.Func.blocks <- List.rev t.done_blocks;
  t.func

let mk t ~op ?defs ?uses ?imm ?fimm ?target ?target2 () =
  Insn.make ~id:(Func.fresh_id t.func) ~op ?defs ?uses ?imm ?fimm ?target
    ?target2 ()

let emit t ~op ?defs ?uses ?imm ?fimm ?target ?target2 () =
  push t (mk t ~op ?defs ?uses ?imm ?fimm ?target ?target2 ())

(* Allocate or reuse the destination register of class [cls]. *)
let dst_reg t cls = function
  | Some r ->
      if not (Reg.cls_equal (Reg.cls r) cls) then
        invalid_arg "Builder: destination register has the wrong class";
      r
  | None -> Func.fresh_reg t.func cls

let bin t op cls ?dst a b =
  let d = dst_reg t cls dst in
  emit t ~op ~defs:[| d |] ~uses:[| a; b |] ();
  d

let un t op cls ?dst a =
  let d = dst_reg t cls dst in
  emit t ~op ~defs:[| d |] ~uses:[| a |] ();
  d

let un_imm t op cls ?dst a imm =
  let d = dst_reg t cls dst in
  emit t ~op ~defs:[| d |] ~uses:[| a |] ~imm ();
  d

let movi t ?dst v =
  let d = dst_reg t Reg.Gp dst in
  emit t ~op:Opcode.Movi ~defs:[| d |] ~imm:v ();
  d

let mov t ?dst a = un t Opcode.Mov Reg.Gp ?dst a
let add t ?dst a b = bin t Opcode.Add Reg.Gp ?dst a b
let sub t ?dst a b = bin t Opcode.Sub Reg.Gp ?dst a b
let mul t ?dst a b = bin t Opcode.Mul Reg.Gp ?dst a b
let div t ?dst a b = bin t Opcode.Div Reg.Gp ?dst a b
let rem t ?dst a b = bin t Opcode.Rem Reg.Gp ?dst a b
let and_ t ?dst a b = bin t Opcode.And Reg.Gp ?dst a b
let or_ t ?dst a b = bin t Opcode.Or Reg.Gp ?dst a b
let xor t ?dst a b = bin t Opcode.Xor Reg.Gp ?dst a b
let shl t ?dst a b = bin t Opcode.Shl Reg.Gp ?dst a b
let shr t ?dst a b = bin t Opcode.Shr Reg.Gp ?dst a b
let sra t ?dst a b = bin t Opcode.Sra Reg.Gp ?dst a b
let addi t ?dst a v = un_imm t Opcode.Addi Reg.Gp ?dst a v
let muli t ?dst a v = un_imm t Opcode.Muli Reg.Gp ?dst a v
let andi t ?dst a v = un_imm t Opcode.Andi Reg.Gp ?dst a v
let xori t ?dst a v = un_imm t Opcode.Xori Reg.Gp ?dst a v
let shli t ?dst a v = un_imm t Opcode.Shli Reg.Gp ?dst a v
let shri t ?dst a v = un_imm t Opcode.Shri Reg.Gp ?dst a v
let srai t ?dst a v = un_imm t Opcode.Srai Reg.Gp ?dst a v

let cmp t ?dst c a b = bin t (Opcode.Cmp c) Reg.Pr ?dst a b
let cmpi t ?dst c a v = un_imm t (Opcode.Cmpi c) Reg.Pr ?dst a v

let sel t ?dst p a b =
  let d = dst_reg t Reg.Gp dst in
  emit t ~op:Opcode.Sel ~defs:[| d |] ~uses:[| p; a; b |] ();
  d

let fmovi t ?dst v =
  let d = dst_reg t Reg.Fp dst in
  emit t ~op:Opcode.Fmovi ~defs:[| d |] ~fimm:v ();
  d

let fmov t ?dst a = un t Opcode.Fmov Reg.Fp ?dst a
let fadd t ?dst a b = bin t Opcode.Fadd Reg.Fp ?dst a b
let fsub t ?dst a b = bin t Opcode.Fsub Reg.Fp ?dst a b
let fmul t ?dst a b = bin t Opcode.Fmul Reg.Fp ?dst a b
let fdiv t ?dst a b = bin t Opcode.Fdiv Reg.Fp ?dst a b
let fcmp t ?dst c a b = bin t (Opcode.Fcmp c) Reg.Pr ?dst a b
let itof t ?dst a = un t Opcode.Itof Reg.Fp ?dst a
let ftoi t ?dst a = un t Opcode.Ftoi Reg.Gp ?dst a

let ld t ?dst w base off = un_imm t (Opcode.Ld w) Reg.Gp ?dst base off
let lds t ?dst w base off = un_imm t (Opcode.Lds w) Reg.Gp ?dst base off

let st t w ~value ~base off =
  emit t ~op:(Opcode.St w) ~uses:[| value; base |] ~imm:off ()

let fld t ?dst base off =
  let d = dst_reg t Reg.Fp dst in
  emit t ~op:Opcode.Fld ~defs:[| d |] ~uses:[| base |] ~imm:off ();
  d

let fst_ t ~value ~base off =
  emit t ~op:Opcode.Fst ~uses:[| value; base |] ~imm:off ()

let br t target = close t (mk t ~op:Opcode.Br ~target ())

let brc t ?(flag = true) p ~if_ ~else_ =
  close t
    (mk t ~op:(Opcode.Brc flag) ~uses:[| p |] ~target:if_ ~target2:else_ ())

let ret t ?value () =
  let uses = match value with None -> [||] | Some r -> [| r |] in
  close t (mk t ~op:Opcode.Ret ~uses ())

let halt t ?code () =
  let uses = match code with None -> [||] | Some r -> [| r |] in
  close t (mk t ~op:Opcode.Halt ~uses ())

let call t ?dst name args =
  let defs = match dst with None -> [||] | Some r -> [| r |] in
  emit t ~op:Opcode.Call ~defs ~uses:(Array.of_list args) ~target:name ()

let counted_loop_gen t ?(name = "loop") ~from ~cond ?(step = 1L) body =
  let head = fresh_label t (name ^ "_head") in
  let body_l = fresh_label t (name ^ "_body") in
  let exit_l = fresh_label t (name ^ "_exit") in
  let iv = movi t from in
  br t head;
  block t head;
  let p = cond t iv in
  brc t p ~if_:body_l ~else_:exit_l;
  block t body_l;
  body t iv;
  let (_ : Reg.t) = addi t ~dst:iv iv step in
  br t head;
  block t exit_l;
  ()

let counted_loop t ?name ~from ~until ?step body =
  counted_loop_gen t ?name ~from
    ~cond:(fun t iv -> cmpi t Cond.Lt iv until)
    ?step body

let counted_loop_r t ?name ~from ~until ?step body =
  counted_loop_gen t ?name ~from
    ~cond:(fun t iv -> cmp t Cond.Lt iv until)
    ?step body

let if_ t ?(name = "if") p then_ else_ =
  let then_l = fresh_label t (name ^ "_then") in
  let else_l = fresh_label t (name ^ "_else") in
  let join_l = fresh_label t (name ^ "_join") in
  brc t p ~if_:then_l ~else_:else_l;
  block t then_l;
  then_ t;
  br t join_l;
  block t else_l;
  else_ t;
  br t join_l;
  block t join_l;
  ()
