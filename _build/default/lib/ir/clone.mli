(** Deep copies of functions and programs.

    Instructions are immutable, so cloning only needs to rebuild the
    mutable block and function shells. Passes clone their input and
    transform the copy, leaving the original available for differential
    testing (original vs. hardened program must compute the same
    output). *)

val func : Func.t -> Func.t
val program : Program.t -> Program.t
