lib/ir/opcode.ml: Cond Format Reg
