lib/ir/liveness.mli: Cfg Insn Reg
