lib/ir/block.ml: Format Insn List Opcode Printf
