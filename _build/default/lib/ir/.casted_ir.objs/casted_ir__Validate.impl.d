lib/ir/validate.ml: Array Block Format Func Hashtbl Insn List Opcode Printf Program Reg String
