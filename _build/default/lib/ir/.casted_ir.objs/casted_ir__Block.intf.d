lib/ir/block.mli: Format Insn
