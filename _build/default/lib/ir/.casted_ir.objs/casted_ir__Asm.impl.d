lib/ir/asm.ml: Array Block Buffer Char Cond Format Func Hashtbl Insn Int64 List Opcode Printf Program Reg String
