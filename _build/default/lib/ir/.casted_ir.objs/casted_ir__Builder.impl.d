lib/ir/builder.ml: Array Block Cond Func Insn List Opcode Printf Reg
