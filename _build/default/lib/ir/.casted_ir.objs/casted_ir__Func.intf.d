lib/ir/func.mli: Block Format Insn Reg
