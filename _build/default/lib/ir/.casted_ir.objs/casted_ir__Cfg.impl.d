lib/ir/cfg.ml: Array Block Func Hashtbl List Printf
