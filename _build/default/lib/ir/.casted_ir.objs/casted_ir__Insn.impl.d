lib/ir/insn.ml: Array Format Opcode Reg
