lib/ir/liveness.ml: Array Block Cfg Insn List Reg
