lib/ir/pressure.ml: Array Cfg Format List Liveness Program Reg
