lib/ir/asm.mli: Func Program
