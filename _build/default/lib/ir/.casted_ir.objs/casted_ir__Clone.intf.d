lib/ir/clone.mli: Func Program
