lib/ir/cond.ml: Format Int64
