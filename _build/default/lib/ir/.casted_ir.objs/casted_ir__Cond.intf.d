lib/ir/cond.mli: Format
