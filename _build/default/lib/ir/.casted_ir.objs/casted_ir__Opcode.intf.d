lib/ir/opcode.mli: Cond Format Reg
