lib/ir/validate.mli: Func Program
