lib/ir/builder.mli: Cond Func Opcode Reg
