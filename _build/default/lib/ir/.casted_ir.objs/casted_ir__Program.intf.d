lib/ir/program.mli: Format Func
