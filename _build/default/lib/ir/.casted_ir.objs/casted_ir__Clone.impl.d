lib/ir/clone.ml: Array Block Func List Program
