lib/ir/pressure.mli: Format Func Program
