lib/ir/func.ml: Array Block Format Insn List Reg
