(** Virtual registers.

    The IR uses an unbounded supply of virtual registers in three classes,
    mirroring the Itanium register files the paper injects faults into:
    general-purpose ([Gp], 64-bit integers), floating-point ([Fp], 64-bit
    floats) and predicate ([Pr], booleans written by compare
    instructions). *)

type cls = Gp | Fp | Pr

type t = private { cls : cls; idx : int }

val gp : int -> t
val fp : int -> t
val pr : int -> t
val make : cls -> int -> t

val cls : t -> cls
val idx : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val pp_cls : Format.formatter -> cls -> unit
val cls_equal : cls -> cls -> bool

(** Total order on classes, used to index per-class arrays. *)
val cls_index : cls -> int

val all_classes : cls list

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
