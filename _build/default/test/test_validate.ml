open Helpers

let mk_insn func ~op ?defs ?uses ?target ?target2 () =
  Insn.make ~id:(Func.fresh_id func) ~op ?defs ?uses ?target ?target2 ()

(* A minimal hand-built program with one injected defect. *)
let program_with ~patch =
  let func = Func.make ~name:"main" () in
  let r = Func.fresh_reg func Reg.Gp in
  let movi = mk_insn func ~op:Opcode.Movi ~defs:[| r |] () in
  let halt = mk_insn func ~op:Opcode.Halt () in
  let block = Block.make ~label:"entry" ~body:[ movi ] ~term:halt in
  func.Func.blocks <- [ block ];
  let p = Program.make ~funcs:[ func ] ~entry:"main" () in
  patch p func block;
  p

let expect_invalid name p =
  match Casted_ir.Validate.check_program p with
  | [] -> Alcotest.failf "%s: expected a violation" name
  | _ -> ()

let test_valid_program_passes () =
  let p = program_with ~patch:(fun _ _ _ -> ()) in
  Alcotest.(check (list string)) "no errors" []
    (Casted_ir.Validate.check_program p)

let test_unknown_entry () =
  let p = program_with ~patch:(fun _ _ _ -> ()) in
  expect_invalid "entry" { p with Program.entry = "nope" }

let test_dangling_branch_target () =
  let p =
    program_with ~patch:(fun _ func block ->
        block.Block.term <-
          mk_insn func ~op:Opcode.Br ~target:"nowhere" ())
  in
  expect_invalid "dangling target" p

let test_register_class_mismatch () =
  let p =
    program_with ~patch:(fun _ func block ->
        (* Add takes Gp operands; give it a predicate. *)
        let bad =
          mk_insn func ~op:Opcode.Add
            ~defs:[| Func.fresh_reg func Reg.Gp |]
            ~uses:[| Func.fresh_reg func Reg.Pr; Func.fresh_reg func Reg.Gp |]
            ()
        in
        block.Block.body <- block.Block.body @ [ bad ])
  in
  expect_invalid "class mismatch" p

let test_duplicate_insn_id () =
  let p =
    program_with ~patch:(fun _ func block ->
        let r = Func.fresh_reg func Reg.Gp in
        let dup = Insn.make ~id:0 ~op:Opcode.Movi ~defs:[| r |] () in
        block.Block.body <- block.Block.body @ [ dup ])
  in
  expect_invalid "duplicate id" p

let test_register_beyond_counter () =
  let p =
    program_with ~patch:(fun _ func block ->
        let rogue = Reg.gp 999 in
        let bad = mk_insn func ~op:Opcode.Movi ~defs:[| rogue |] () in
        block.Block.body <- block.Block.body @ [ bad ])
  in
  expect_invalid "register beyond counter" p

let test_call_to_unknown_function () =
  let p =
    program_with ~patch:(fun _ func block ->
        let c = mk_insn func ~op:Opcode.Call ~target:"ghost" () in
        block.Block.body <- block.Block.body @ [ c ])
  in
  expect_invalid "unknown callee" p

let test_call_argument_mismatch () =
  let callee = Func.make ~name:"callee" ~params:[ Reg.gp 0 ] () in
  let ret = Insn.make ~id:(Func.fresh_id callee) ~op:Opcode.Ret () in
  callee.Func.blocks <- [ Block.make ~label:"entry" ~body:[] ~term:ret ];
  let p =
    program_with ~patch:(fun _ func block ->
        (* Calling with zero arguments; callee expects one. *)
        let c = mk_insn func ~op:Opcode.Call ~target:"callee" () in
        block.Block.body <- block.Block.body @ [ c ])
  in
  expect_invalid "arg mismatch" { p with Program.funcs = p.Program.funcs @ [ callee ] }

let test_data_segment_out_of_bounds () =
  let p = program_with ~patch:(fun _ _ _ -> ()) in
  expect_invalid "data oob"
    { p with Program.data = [ (p.Program.mem_size - 1, "xyz") ] }

let test_output_region_out_of_bounds () =
  let p = program_with ~patch:(fun _ _ _ -> ()) in
  expect_invalid "output oob"
    { p with Program.output_base = p.Program.mem_size; Program.output_len = 8 }

let test_entry_with_params_rejected () =
  let func = Func.make ~name:"main" ~params:[ Reg.gp 0 ] () in
  let halt = Insn.make ~id:(Func.fresh_id func) ~op:Opcode.Halt () in
  func.Func.blocks <- [ Block.make ~label:"entry" ~body:[] ~term:halt ];
  expect_invalid "entry params" (Program.make ~funcs:[ func ] ~entry:"main" ())

let test_chk_class_pair () =
  let p =
    program_with ~patch:(fun _ func block ->
        let bad =
          mk_insn func ~op:Opcode.Chk
            ~uses:[| Func.fresh_reg func Reg.Gp; Func.fresh_reg func Reg.Fp |]
            ()
        in
        block.Block.body <- block.Block.body @ [ bad ])
  in
  expect_invalid "chk classes" p

let test_workloads_validate () =
  List.iter
    (fun w ->
      List.iter
        (fun size ->
          let p = w.Casted_workloads.Workload.build size in
          match Casted_ir.Validate.check_program p with
          | [] -> ()
          | errs ->
              Alcotest.failf "%s (%s): %s" w.Casted_workloads.Workload.name
                (Casted_workloads.Workload.size_name size)
                (String.concat "; " errs))
        [ Casted_workloads.Workload.Fault; Casted_workloads.Workload.Perf ])
    Casted_workloads.Registry.all

let suite =
  ( "validate",
    [
      case "valid program passes" test_valid_program_passes;
      case "unknown entry" test_unknown_entry;
      case "dangling branch target" test_dangling_branch_target;
      case "register class mismatch" test_register_class_mismatch;
      case "duplicate instruction id" test_duplicate_insn_id;
      case "register beyond counter" test_register_beyond_counter;
      case "call to unknown function" test_call_to_unknown_function;
      case "call argument mismatch" test_call_argument_mismatch;
      case "data segment bounds" test_data_segment_out_of_bounds;
      case "output region bounds" test_output_region_out_of_bounds;
      case "entry with params rejected" test_entry_with_params_rejected;
      case "chk operand classes" test_chk_class_pair;
      case "all workloads validate at both sizes" test_workloads_validate;
    ] )
