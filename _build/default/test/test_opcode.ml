open Helpers

(* Every opcode, for exhaustive classification checks. *)
let all_opcodes =
  let conds = Cond.all in
  let widths = [ Opcode.W1; Opcode.W2; Opcode.W4; Opcode.W8 ] in
  [
    Opcode.Add; Opcode.Sub; Opcode.Mul; Opcode.Div; Opcode.Rem; Opcode.And;
    Opcode.Or; Opcode.Xor; Opcode.Shl; Opcode.Shr; Opcode.Sra; Opcode.Mov;
    Opcode.Movi; Opcode.Addi; Opcode.Muli; Opcode.Andi; Opcode.Xori;
    Opcode.Shli; Opcode.Shri; Opcode.Srai; Opcode.Sel; Opcode.Fadd;
    Opcode.Fsub; Opcode.Fmul; Opcode.Fdiv; Opcode.Fmov; Opcode.Fmovi;
    Opcode.Itof; Opcode.Ftoi; Opcode.Fld; Opcode.Fst; Opcode.Br;
    Opcode.Call; Opcode.Ret; Opcode.Halt; Opcode.Chk; Opcode.Nop;
    Opcode.Brc true; Opcode.Brc false;
  ]
  @ List.map (fun c -> Opcode.Cmp c) conds
  @ List.map (fun c -> Opcode.Cmpi c) conds
  @ List.map (fun c -> Opcode.Fcmp c) conds
  @ List.map (fun w -> Opcode.Ld w) widths
  @ List.map (fun w -> Opcode.Lds w) widths
  @ List.map (fun w -> Opcode.St w) widths

let test_replicable_partition () =
  (* The paper's rule: replicate everything except stores, control flow
     and detection code. *)
  List.iter
    (fun op ->
      let expected =
        (not (Opcode.is_store op))
        && (not (Opcode.is_control_flow op))
        && not (Opcode.is_check op)
      in
      Alcotest.(check bool) (Opcode.mnemonic op) expected (Opcode.replicable op))
    all_opcodes

let test_terminators_are_control_flow () =
  List.iter
    (fun op ->
      if Opcode.is_terminator op then
        Alcotest.(check bool)
          (Opcode.mnemonic op ^ " is control flow")
          true (Opcode.is_control_flow op))
    all_opcodes;
  (* Call is control flow but not a terminator. *)
  Alcotest.(check bool) "call not terminator" false
    (Opcode.is_terminator Opcode.Call);
  Alcotest.(check bool) "call is control flow" true
    (Opcode.is_control_flow Opcode.Call)

let test_mem_classification () =
  Alcotest.(check bool) "ld" true (Opcode.is_load (Opcode.Ld Opcode.W4));
  Alcotest.(check bool) "lds" true (Opcode.is_load (Opcode.Lds Opcode.W1));
  Alcotest.(check bool) "fld" true (Opcode.is_load Opcode.Fld);
  Alcotest.(check bool) "st" true (Opcode.is_store (Opcode.St Opcode.W8));
  Alcotest.(check bool) "fst" true (Opcode.is_store Opcode.Fst);
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Opcode.mnemonic op ^ " mem consistency")
        (Opcode.is_load op || Opcode.is_store op)
        (Opcode.is_mem op))
    all_opcodes

let test_mnemonics_unique () =
  let names = List.map Opcode.mnemonic all_opcodes in
  let uniq = List.sort_uniq String.compare names in
  Alcotest.(check int) "no duplicate mnemonics" (List.length names)
    (List.length uniq)

let test_signatures_well_formed () =
  List.iter
    (fun op ->
      match Opcode.signature op with
      | Some (defs, _) ->
          Alcotest.(check bool)
            (Opcode.mnemonic op ^ " at most one def")
            true
            (List.length defs <= 1)
      | None ->
          (* Only variable-signature instructions may lack one. *)
          Alcotest.(check bool)
            (Opcode.mnemonic op ^ " variable signature")
            true
            (match op with
            | Opcode.Call | Opcode.Ret | Opcode.Halt | Opcode.Chk -> true
            | _ -> false))
    all_opcodes

let test_side_effects () =
  List.iter
    (fun op ->
      let expected =
        Opcode.is_store op || Opcode.is_control_flow op || Opcode.is_check op
      in
      Alcotest.(check bool)
        (Opcode.mnemonic op ^ " side effect")
        expected
        (Opcode.has_side_effect op))
    all_opcodes

let test_width_bytes () =
  Alcotest.(check (list int)) "widths" [ 1; 2; 4; 8 ]
    (List.map Opcode.width_bytes [ Opcode.W1; Opcode.W2; Opcode.W4; Opcode.W8 ])

let suite =
  ( "opcode",
    [
      case "replicable partition (paper SS III-B)" test_replicable_partition;
      case "terminators vs control flow" test_terminators_are_control_flow;
      case "memory classification" test_mem_classification;
      case "mnemonics unique" test_mnemonics_unique;
      case "signatures well-formed" test_signatures_well_formed;
      case "side-effect classification" test_side_effects;
      case "width bytes" test_width_bytes;
    ] )
