open Helpers
module Dfg = Casted_sched.Dfg
module Assign = Casted_sched.Assign
module Bug = Casted_sched.Bug
module List_scheduler = Casted_sched.List_scheduler
module Schedule = Casted_sched.Schedule

let latency i = Latency.of_op Latency.default i.Insn.op

(* Check every schedule invariant for one block under one config. *)
let check_block_schedule config (dfg : Dfg.t) assignment
    (bs : Schedule.block_schedule) =
  let n = Dfg.num_nodes dfg in
  (* 1. Every instruction appears exactly once. *)
  let seen = Hashtbl.create n in
  Array.iter
    (fun bundle ->
      Array.iter
        (fun insns ->
          Array.iter
            (fun (i : Insn.t) ->
              if Hashtbl.mem seen i.Insn.id then
                Alcotest.failf "insn %d scheduled twice" i.Insn.id;
              Hashtbl.replace seen i.Insn.id ())
            insns)
        bundle)
    bs.Schedule.bundles;
  Alcotest.(check int) "all scheduled" n (Hashtbl.length seen);
  (* 2. Issue-width respected per cluster and cycle. *)
  Array.iteri
    (fun cycle bundle ->
      Array.iteri
        (fun cluster insns ->
          if Array.length insns > config.Config.issue_width then
            Alcotest.failf "cycle %d cluster %d over-subscribed" cycle cluster)
        bundle)
    bs.Schedule.bundles;
  (* 3. Dependences respected, including cross-cluster delays. *)
  let issue i = Hashtbl.find bs.Schedule.issue_of dfg.Dfg.insns.(i).Insn.id in
  for i = 0 to n - 1 do
    List.iter
      (fun (e : Dfg.edge) ->
        let src_cycle, src_cluster = issue e.Dfg.src in
        let dst_cycle, dst_cluster = issue e.Dfg.dst in
        let cross =
          if Dfg.kind_pays_delay e.Dfg.kind && src_cluster <> dst_cluster
          then config.Config.delay
          else 0
        in
        if dst_cycle < src_cycle + e.Dfg.latency + cross then
          Alcotest.failf "edge %d->%d violated (%d < %d+%d+%d)" e.Dfg.src
            e.Dfg.dst dst_cycle src_cycle e.Dfg.latency cross)
      dfg.Dfg.succs.(i)
  done;
  (* 4. Clusters match the assignment. *)
  for i = 0 to n - 1 do
    let _, cluster = issue i in
    Alcotest.(check int) "assigned cluster" assignment.(i) cluster
  done;
  (* 5. The terminator issues in the last cycle. *)
  let term_cycle, _ = issue (n - 1) in
  Alcotest.(check int) "terminator last" (Schedule.block_length bs - 1)
    term_cycle

let check_program_schedules program strategy config =
  List.iter
    (fun f ->
      List.iter
        (fun blk ->
          let dfg = Dfg.build ~latency blk in
          let assignment = Assign.compute strategy config dfg in
          let bs =
            List_scheduler.schedule_block config dfg ~assignment
              ~label:blk.Block.label
          in
          check_block_schedule config dfg assignment bs)
        f.Func.blocks)
    program.Program.funcs

let test_invariants_all_workloads () =
  List.iter
    (fun w ->
      let p =
        w.Casted_workloads.Workload.build Casted_workloads.Workload.Fault
      in
      let hardened, _ = Casted_detect.Transform.program Options.default p in
      (* Three placement strategies, several machine shapes. *)
      List.iter
        (fun (strategy, config) ->
          check_program_schedules hardened strategy config)
        [
          (Assign.Single_cluster, Config.single_core ~issue_width:1);
          (Assign.Single_cluster, Config.single_core ~issue_width:4);
          (Assign.Dual_fixed, Config.dual_core ~issue_width:2 ~delay:3);
          ( Assign.Adaptive Bug.default_options,
            Config.dual_core ~issue_width:1 ~delay:1 );
          ( Assign.Adaptive Bug.default_options,
            Config.dual_core ~issue_width:2 ~delay:4 );
        ])
    Casted_workloads.Registry.all

let test_single_cluster_assignment () =
  let p = program_of (fun b -> ignore (B.movi b 1L)) in
  let blk = List.hd (Program.entry_func p).Func.blocks in
  let dfg = Dfg.build ~latency blk in
  let a =
    Assign.compute Assign.Single_cluster (Config.single_core ~issue_width:2)
      dfg
  in
  Array.iter (fun c -> Alcotest.(check int) "cluster 0" 0 c) a

let test_dual_fixed_split () =
  let p =
    program_of (fun b ->
        let v = B.movi b 5L in
        let base = B.movi b 0x100L in
        B.st b Opcode.W8 ~value:v ~base 0L)
  in
  let hardened, _ = Casted_detect.Transform.program Options.default p in
  let blk = List.hd (Program.entry_func hardened).Func.blocks in
  let dfg = Dfg.build ~latency blk in
  let config = Config.dual_core ~issue_width:2 ~delay:1 in
  let a = Assign.compute Assign.Dual_fixed config dfg in
  Array.iteri
    (fun i cluster ->
      let insn = dfg.Dfg.insns.(i) in
      let expected =
        match insn.Insn.role with
        | Insn.Original -> 0
        | Insn.Replica | Insn.Check | Insn.Shadow_copy -> 1
      in
      Alcotest.(check int) (Insn.to_string insn) expected cluster)
    a

let test_dual_fixed_requires_two_clusters () =
  let p = program_of (fun b -> ignore (B.movi b 1L)) in
  let blk = List.hd (Program.entry_func p).Func.blocks in
  let dfg = Dfg.build ~latency blk in
  match
    Assign.compute Assign.Dual_fixed (Config.single_core ~issue_width:2) dfg
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dual-fixed on one cluster should be rejected"

let test_narrow_machine_serialises () =
  (* 10 independent instructions on a 1-wide single cluster need 10
     cycles (plus the terminator). *)
  let p =
    program_of (fun b ->
        for _ = 1 to 10 do
          ignore (B.movi b 3L)
        done)
  in
  let blk = List.hd (Program.entry_func p).Func.blocks in
  let dfg = Dfg.build ~latency blk in
  let config = Config.single_core ~issue_width:1 in
  let a = Assign.compute Assign.Single_cluster config dfg in
  let bs = List_scheduler.schedule_block config dfg ~assignment:a ~label:"x" in
  (* 10 movis + the exit-code movi + halt, one per cycle. *)
  Alcotest.(check int) "serialised" 12 (Schedule.block_length bs)

let test_wide_machine_parallelises () =
  let p =
    program_of (fun b ->
        for _ = 1 to 10 do
          ignore (B.movi b 3L)
        done)
  in
  let blk = List.hd (Program.entry_func p).Func.blocks in
  let dfg = Dfg.build ~latency blk in
  let config = Config.single_core ~issue_width:4 in
  let a = Assign.compute Assign.Single_cluster config dfg in
  let bs = List_scheduler.schedule_block config dfg ~assignment:a ~label:"x" in
  (* ceil(12/4) = 3 cycles. *)
  Alcotest.(check int) "packed" 3 (Schedule.block_length bs)

let prop_random_blocks =
  (* Random straight-line blocks over a small register pool: the
     scheduler must uphold all invariants for any dependency pattern. *)
  let insn_gen =
    QCheck2.Gen.(
      map3
        (fun kind a bc -> (kind, a, bc))
        (int_bound 3) (int_bound 5) (pair (int_bound 5) (int_bound 5)))
  in
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 40) insn_gen)
        (pair (int_range 1 3) (int_range 0 4)))
  in
  qcheck ~count:80 "random blocks schedule correctly" gen
    (fun (specs, (width, delay)) ->
      let b = B.create ~name:"main" () in
      let regs = Array.init 6 (fun _ -> B.movi b 1L) in
      List.iter
        (fun (kind, a, (c, d)) ->
          match kind with
          | 0 -> ignore (B.add b ~dst:regs.(a) regs.(c) regs.(d))
          | 1 -> ignore (B.mul b ~dst:regs.(a) regs.(c) regs.(d))
          | 2 -> ignore (B.addi b ~dst:regs.(a) regs.(c) 3L)
          | _ -> ignore (B.xor b ~dst:regs.(a) regs.(c) regs.(d)))
        specs;
      B.halt b ();
      let f = B.finish b in
      let blk = List.hd f.Func.blocks in
      let dfg = Dfg.build ~latency blk in
      let config = Config.dual_core ~issue_width:width ~delay in
      let a =
        Assign.compute (Assign.Adaptive Bug.default_options) config dfg
      in
      let bs =
        List_scheduler.schedule_block config dfg ~assignment:a ~label:"x"
      in
      check_block_schedule config dfg a bs;
      true)

let suite =
  ( "scheduler",
    [
      case "invariants on all workloads" test_invariants_all_workloads;
      case "single-cluster assignment" test_single_cluster_assignment;
      case "dual-fixed split by role" test_dual_fixed_split;
      case "dual-fixed needs two clusters" test_dual_fixed_requires_two_clusters;
      case "narrow machine serialises" test_narrow_machine_serialises;
      case "wide machine parallelises" test_wide_machine_parallelises;
      prop_random_blocks;
    ] )
