test/test_report.ml: Alcotest Casted_report Casted_sim Casted_workloads Config Helpers Lazy List Scheme String
