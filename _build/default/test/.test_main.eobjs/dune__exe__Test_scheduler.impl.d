test/test_scheduler.ml: Alcotest Array B Block Casted_detect Casted_sched Casted_workloads Config Func Hashtbl Helpers Insn Latency List Opcode Options Program QCheck2
