test/test_sim.ml: Alcotest B Casted_ir Casted_sim Casted_workloads Cond Helpers Int64 List Opcode Option Outcome Pipeline Program QCheck2 Reg Scheme Simulator
