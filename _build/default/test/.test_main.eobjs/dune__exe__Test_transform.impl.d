test/test_transform.ml: Alcotest Array B Block Casted_detect Casted_ir Casted_workloads Format Func Helpers Insn Int64 List Opcode Option Options Outcome Program Reg Scheme
