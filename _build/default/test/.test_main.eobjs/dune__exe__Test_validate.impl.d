test/test_validate.ml: Alcotest Block Casted_ir Casted_workloads Func Helpers Insn List Opcode Program Reg String
