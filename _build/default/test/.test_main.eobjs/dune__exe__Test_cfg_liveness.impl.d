test/test_cfg_liveness.ml: Alcotest Array B Block Casted_ir Cond Helpers List Opcode Reg String
