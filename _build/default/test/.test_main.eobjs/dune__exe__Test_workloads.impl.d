test/test_workloads.ml: Alcotest Array Casted_workloads Format Fun Func Helpers Int List Option Outcome Program String
