test/test_reservation.ml: Alcotest Casted_machine Helpers List QCheck2
