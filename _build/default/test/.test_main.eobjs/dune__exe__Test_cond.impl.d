test/test_cond.ml: Alcotest Cond Float Helpers Int64 List QCheck2 String
