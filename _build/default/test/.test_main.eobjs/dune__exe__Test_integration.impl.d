test/test_integration.ml: Alcotest Casted_detect Casted_sim Casted_workloads Config Float Func Helpers List Option Outcome Pipeline Program Scheme
