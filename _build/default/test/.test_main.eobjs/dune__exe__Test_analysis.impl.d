test/test_analysis.ml: Alcotest Array B Casted_detect Casted_ir Casted_report Casted_sim Casted_workloads Helpers List Option Options Outcome Pipeline Printf Scheme Simulator String
