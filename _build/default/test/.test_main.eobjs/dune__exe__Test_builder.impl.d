test/test_builder.ml: Alcotest B Cond Func Helpers Insn Int List Opcode Program Reg String
