test/test_asm.ml: Alcotest B Casted_detect Casted_ir Casted_sched Casted_sim Casted_workloads Config Helpers List Option Options Outcome Printf String
