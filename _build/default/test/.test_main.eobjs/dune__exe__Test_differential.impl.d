test/test_differential.ml: Array B Casted_detect Casted_ir Casted_opt Casted_sched Cond Config Helpers Int64 List Opcode Options Outcome Pipeline Program QCheck2 Scheme Simulator String
