test/test_bug.ml: Alcotest Array B Casted_detect Casted_sched Config Func Helpers Insn Int Latency List Opcode Options Program
