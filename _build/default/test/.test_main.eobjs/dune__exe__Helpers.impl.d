test/helpers.ml: Alcotest Casted_detect Casted_ir Casted_machine Casted_sim QCheck2 QCheck_alcotest String
