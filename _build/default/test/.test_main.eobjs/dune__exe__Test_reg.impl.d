test/test_reg.ml: Alcotest Helpers List Reg
