test/test_dfg.ml: Alcotest Array B Casted_detect Casted_sched Casted_workloads Func Helpers Insn Latency List Opcode Options Program Reg
