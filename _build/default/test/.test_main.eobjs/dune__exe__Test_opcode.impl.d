test/test_opcode.ml: Alcotest Cond Helpers List Opcode String
