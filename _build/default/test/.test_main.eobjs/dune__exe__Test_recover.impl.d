test/test_recover.ml: Alcotest B Casted_detect Casted_ir Casted_sched Casted_sim Casted_workloads Config Hashtbl Helpers List Opcode Option Options Outcome Pipeline Printf Reg Scheme Simulator String
