test/test_fault.ml: Alcotest B Casted_cache Casted_sim Float Helpers Int64 List Opcode Outcome Pipeline QCheck2 Reg Scheme Simulator String
