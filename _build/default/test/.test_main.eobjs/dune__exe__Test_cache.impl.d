test/test_cache.ml: Alcotest Array Casted_cache Config Helpers List QCheck2
