test/test_selective.ml: Alcotest B Casted_detect Casted_ir Casted_sched Casted_sim Casted_workloads Config Func Hashtbl Helpers Insn List Opcode Option Options Outcome Printf Program Scheme Simulator
