open Helpers
module Reservation = Casted_machine.Reservation

let test_reserve_and_fill () =
  let t = Reservation.create ~clusters:2 ~issue_width:2 in
  Alcotest.(check bool) "initially free" true
    (Reservation.is_free t ~cluster:0 ~cycle:0);
  Reservation.reserve t ~cluster:0 ~cycle:0;
  Alcotest.(check int) "one used" 1 (Reservation.used t ~cluster:0 ~cycle:0);
  Reservation.reserve t ~cluster:0 ~cycle:0;
  Alcotest.(check bool) "now full" false
    (Reservation.is_free t ~cluster:0 ~cycle:0);
  (* The other cluster is unaffected. *)
  Alcotest.(check bool) "cluster 1 free" true
    (Reservation.is_free t ~cluster:1 ~cycle:0)

let test_overfull_rejected () =
  let t = Reservation.create ~clusters:1 ~issue_width:1 in
  Reservation.reserve t ~cluster:0 ~cycle:3;
  match Reservation.reserve t ~cluster:0 ~cycle:3 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "overfull cycle accepted"

let test_first_free_skips_full_cycles () =
  let t = Reservation.create ~clusters:1 ~issue_width:1 in
  Reservation.reserve t ~cluster:0 ~cycle:0;
  Reservation.reserve t ~cluster:0 ~cycle:1;
  Reservation.reserve t ~cluster:0 ~cycle:3;
  Alcotest.(check int) "skips 0,1" 2
    (Reservation.first_free t ~cluster:0 ~from:0);
  Alcotest.(check int) "skips 3" 4
    (Reservation.first_free t ~cluster:0 ~from:3)

let test_release () =
  let t = Reservation.create ~clusters:1 ~issue_width:1 in
  Reservation.reserve t ~cluster:0 ~cycle:5;
  Reservation.release t ~cluster:0 ~cycle:5;
  Alcotest.(check bool) "free again" true
    (Reservation.is_free t ~cluster:0 ~cycle:5);
  match Reservation.release t ~cluster:0 ~cycle:5 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double release accepted"

let test_growth () =
  let t = Reservation.create ~clusters:1 ~issue_width:2 in
  (* Far beyond the initial capacity. *)
  Reservation.reserve t ~cluster:0 ~cycle:10_000;
  Alcotest.(check int) "used at grown cycle" 1
    (Reservation.used t ~cluster:0 ~cycle:10_000);
  Alcotest.(check int) "horizon" 10_001 (Reservation.horizon t);
  Alcotest.(check int) "unreserved grown cycle empty" 0
    (Reservation.used t ~cluster:0 ~cycle:9_999)

let test_bad_cluster_rejected () =
  let t = Reservation.create ~clusters:2 ~issue_width:1 in
  match Reservation.reserve t ~cluster:2 ~cycle:0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-range cluster accepted"

let prop_capacity_invariant =
  let gen =
    QCheck2.Gen.(list_size (int_bound 200) (pair (int_bound 1) (int_bound 30)))
  in
  qcheck ~count:100 "used never exceeds width" gen (fun reservations ->
      let width = 3 in
      let t = Reservation.create ~clusters:2 ~issue_width:width in
      List.iter
        (fun (cluster, cycle) ->
          if Reservation.is_free t ~cluster ~cycle then
            Reservation.reserve t ~cluster ~cycle)
        reservations;
      List.for_all
        (fun (cluster, cycle) -> Reservation.used t ~cluster ~cycle <= width)
        reservations)

let suite =
  ( "reservation",
    [
      case "reserve and fill" test_reserve_and_fill;
      case "overfull rejected" test_overfull_rejected;
      case "first_free skips full cycles" test_first_free_skips_full_cycles;
      case "release" test_release;
      case "table grows on demand" test_growth;
      case "bad cluster rejected" test_bad_cluster_rejected;
      prop_capacity_invariant;
    ] )
