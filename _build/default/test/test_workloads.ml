open Helpers
module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Gen = Casted_workloads.Gen

let test_registry_complete () =
  (* The paper's Table II: 4 MediaBench + 3 SPEC benchmarks. *)
  Alcotest.(check int) "seven benchmarks" 7 (List.length Registry.all);
  let media, spec =
    List.partition (fun w -> w.W.suite = "MediaBench II") Registry.all
  in
  Alcotest.(check int) "four MediaBench" 4 (List.length media);
  Alcotest.(check int) "three SPEC" 3 (List.length spec);
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (Option.is_some (Registry.find name)))
    [ "cjpeg"; "h263dec"; "mpeg2dec"; "h263enc"; "175.vpr"; "181.mcf";
      "197.parser" ]

let test_find_unknown () =
  Alcotest.(check bool) "unknown" true (Option.is_none (Registry.find "gcc"))

let test_builds_are_deterministic () =
  List.iter
    (fun w ->
      let p1 = w.W.build W.Fault in
      let p2 = w.W.build W.Fault in
      Alcotest.(check string) (w.W.name ^ " identical IR")
        (Format.asprintf "%a" Program.pp p1)
        (Format.asprintf "%a" Program.pp p2))
    Registry.all

let test_all_run_to_completion () =
  List.iter
    (fun w ->
      let p = w.W.build W.Fault in
      let r = run_noed p in
      (match r.Outcome.termination with
      | Outcome.Exit 0 -> ()
      | t ->
          Alcotest.failf "%s: %a" w.W.name Outcome.pp_termination t);
      Alcotest.(check bool) (w.W.name ^ " does work") true
        (r.Outcome.dyn_insns > 1_000);
      (* The output region must not be all zeroes (the kernels write
         real results plus a checksum). *)
      Alcotest.(check bool) (w.W.name ^ " output nonzero") true
        (String.exists (fun c -> c <> '\000') r.Outcome.output))
    Registry.all

let test_perf_larger_than_fault () =
  List.iter
    (fun w ->
      let fault = run_noed (w.W.build W.Fault) in
      let perf = run_noed (w.W.build W.Perf) in
      Alcotest.(check bool) (w.W.name ^ " perf is bigger") true
        (perf.Outcome.dyn_insns > 2 * fault.Outcome.dyn_insns))
    Registry.all

let test_workload_character () =
  (* Spot-check the published character of selected kernels. *)
  let ipc name =
    let w = Option.get (Registry.find name) in
    let r = run_noed ~issue_width:4 (w.W.build W.Fault) in
    Outcome.ipc r
  in
  (* mcf is the low-ILP pointer chaser; cjpeg is the high-ILP encoder. *)
  Alcotest.(check bool) "mcf has the lowest ILP of the two" true
    (ipc "181.mcf" < ipc "cjpeg")

let test_unprotected_library_presence () =
  let has_unprotected name =
    let w = Option.get (Registry.find name) in
    let p = w.W.build W.Fault in
    List.exists (fun f -> not f.Func.protect) p.Program.funcs
  in
  Alcotest.(check bool) "parser has a library" true
    (has_unprotected "197.parser");
  Alcotest.(check bool) "mpeg2dec has a library" true
    (has_unprotected "mpeg2dec");
  Alcotest.(check bool) "cjpeg is fully protected" false
    (has_unprotected "cjpeg")

let test_mcf_chain_covers_all_nodes () =
  (* The pointer chain must visit every node exactly once per pass:
     acc = sum of all node values (before updates) on the first pass. *)
  let w = Option.get (Registry.find "181.mcf") in
  let p = w.W.build W.Fault in
  let r = run_noed p in
  (* If the chain were cut short, far fewer instructions would run:
     1024 nodes x 3 passes x ~10 insns each. *)
  Alcotest.(check bool) "chain length plausible" true
    (r.Outcome.dyn_insns > 1024 * 3 * 8)

let test_gen_determinism () =
  let a = Gen.create ~seed:5 in
  let b = Gen.create ~seed:5 in
  Alcotest.(check string) "same bytes" (Gen.bytes a 64) (Gen.bytes b 64)

let test_gen_permutation () =
  let g = Gen.create ~seed:9 in
  let p = Gen.permutation g 100 in
  let sorted = Array.copy p in
  Array.sort Int.compare sorted;
  Alcotest.(check bool) "is a permutation" true
    (Array.to_list sorted = List.init 100 Fun.id)

let test_gen_serialization () =
  Alcotest.(check string) "le16" "\x34\x12" (Gen.le16 [ 0x1234 ]);
  Alcotest.(check string) "le32" "\x78\x56\x34\x12" (Gen.le32 [ 0x12345678 ]);
  Alcotest.(check string) "le16 negative wraps" "\xff\xff" (Gen.le16 [ -1 ])

let suite =
  ( "workloads",
    [
      case "registry matches Table II" test_registry_complete;
      case "unknown benchmark" test_find_unknown;
      case "builds are deterministic" test_builds_are_deterministic;
      case "all run to completion" test_all_run_to_completion;
      case "perf inputs are larger" test_perf_larger_than_fault;
      case "workload ILP character" test_workload_character;
      case "unprotected libraries where the paper needs them"
        test_unprotected_library_presence;
      case "mcf chain covers all nodes" test_mcf_chain_covers_all_nodes;
      case "generator determinism" test_gen_determinism;
      case "generator permutations" test_gen_permutation;
      case "generator serialisation" test_gen_serialization;
    ] )
