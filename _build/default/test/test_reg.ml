open Helpers

let test_classes () =
  Alcotest.(check bool) "gp cls" true (Reg.cls (Reg.gp 3) = Reg.Gp);
  Alcotest.(check bool) "fp cls" true (Reg.cls (Reg.fp 0) = Reg.Fp);
  Alcotest.(check bool) "pr cls" true (Reg.cls (Reg.pr 9) = Reg.Pr);
  Alcotest.(check int) "idx" 7 (Reg.idx (Reg.gp 7))

let test_equality () =
  Alcotest.(check bool) "equal same" true (Reg.equal (Reg.gp 1) (Reg.gp 1));
  Alcotest.(check bool) "class differs" false
    (Reg.equal (Reg.gp 1) (Reg.fp 1));
  Alcotest.(check bool) "index differs" false
    (Reg.equal (Reg.gp 1) (Reg.gp 2));
  Alcotest.(check int) "compare reflexive" 0
    (Reg.compare (Reg.pr 4) (Reg.pr 4))

let test_order_consistent () =
  let regs = [ Reg.gp 0; Reg.gp 5; Reg.fp 0; Reg.fp 2; Reg.pr 1 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c = Reg.compare a b in
          Alcotest.(check int) "antisymmetric" (-c) (Reg.compare b a);
          Alcotest.(check bool)
            "equal iff compare 0" (Reg.equal a b) (c = 0);
          if Reg.equal a b then
            Alcotest.(check int) "hash consistent" (Reg.hash a) (Reg.hash b))
        regs)
    regs

let test_negative_index_rejected () =
  Alcotest.check_raises "negative index"
    (Invalid_argument "Reg.make: negative index") (fun () ->
      ignore (Reg.gp (-1)))

let test_set_map () =
  let s = Reg.Set.of_list [ Reg.gp 1; Reg.gp 1; Reg.fp 1; Reg.pr 0 ] in
  Alcotest.(check int) "set dedups" 3 (Reg.Set.cardinal s);
  let m = Reg.Map.singleton (Reg.gp 1) "x" in
  Alcotest.(check bool) "map lookup" true (Reg.Map.mem (Reg.gp 1) m);
  Alcotest.(check bool) "map class-distinct" false
    (Reg.Map.mem (Reg.fp 1) m)

let test_to_string () =
  Alcotest.(check string) "gp" "r3" (Reg.to_string (Reg.gp 3));
  Alcotest.(check string) "fp" "f0" (Reg.to_string (Reg.fp 0));
  Alcotest.(check string) "pr" "p12" (Reg.to_string (Reg.pr 12))

let test_tbl () =
  let tbl = Reg.Tbl.create 8 in
  Reg.Tbl.replace tbl (Reg.gp 1) 10;
  Reg.Tbl.replace tbl (Reg.fp 1) 20;
  Alcotest.(check (option int)) "gp hit" (Some 10)
    (Reg.Tbl.find_opt tbl (Reg.gp 1));
  Alcotest.(check (option int)) "fp distinct" (Some 20)
    (Reg.Tbl.find_opt tbl (Reg.fp 1));
  Alcotest.(check (option int)) "miss" None
    (Reg.Tbl.find_opt tbl (Reg.pr 1))

let suite =
  ( "reg",
    [
      case "classes and indices" test_classes;
      case "equality" test_equality;
      case "total order" test_order_consistent;
      case "negative index rejected" test_negative_index_rejected;
      case "set/map" test_set_map;
      case "to_string" test_to_string;
      case "hashtable" test_tbl;
    ] )
