open Helpers
module Pass = Casted_opt.Pass
module Transform = Casted_detect.Transform
module Montecarlo = Casted_sim.Montecarlo
module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry

let run_program p =
  let r = run_noed p in
  (match r.Outcome.termination with
  | Outcome.Exit 0 -> ()
  | t -> Alcotest.failf "did not exit: %a" Outcome.pp_termination t);
  r

(* --- semantics preservation: the master property --- *)

let test_passes_preserve_semantics () =
  List.iter
    (fun w ->
      let p = w.W.build W.Fault in
      let plain = run_program p in
      let optimised, _ = Pass.run_program Pass.standard p in
      Casted_ir.Validate.check_exn optimised;
      let r = run_program optimised in
      Alcotest.(check string) (w.W.name ^ " output preserved")
        plain.Outcome.output r.Outcome.output)
    Registry.all

let test_fixpoint_preserves_semantics () =
  let w = Option.get (Registry.find "h263dec") in
  let p = w.W.build W.Fault in
  let plain = run_program p in
  let optimised, rounds = Pass.run_to_fixpoint Pass.standard p in
  Alcotest.(check bool) "terminates" true (rounds < 10);
  Alcotest.(check string) "output preserved" plain.Outcome.output
    (run_program optimised).Outcome.output

let test_optimised_not_slower () =
  (* The scalar passes should reduce (or at least not grow) the dynamic
     instruction count of the kernels. *)
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let p = w.W.build W.Fault in
      let before = (run_program p).Outcome.dyn_insns in
      let optimised, _ = Pass.run_program Pass.standard p in
      let after = (run_program optimised).Outcome.dyn_insns in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d -> %d" name before after)
        true (after <= before))
    [ "cjpeg"; "181.mcf"; "197.parser" ]

(* --- individual passes --- *)

let count_op p op =
  List.fold_left
    (fun acc f ->
      List.fold_left
        (fun acc i ->
          if Opcode.equal i.Insn.op op then acc + 1 else acc)
        acc (Func.all_insns f))
    0 p.Program.funcs

let test_constfold_folds () =
  let p =
    compute_program (fun b ->
        let x = B.movi b 6L in
        let y = B.movi b 7L in
        B.mul b x y)
  in
  let optimised, counts = Pass.run_program [ Pass.constfold ] p in
  Alcotest.(check bool) "changes reported" true
    (List.assoc "constfold" counts > 0);
  Alcotest.(check int) "mul folded away" 0 (count_op optimised Opcode.Mul);
  Alcotest.(check int64) "value preserved" 42L (out64 (run_program optimised))

let test_constfold_strength_reduction () =
  let p =
    compute_program (fun b ->
        let x = B.ld b Opcode.W8 (B.movi b 0x100L) 0L in
        B.muli b x 8L)
  in
  let optimised, _ = Pass.run_program [ Pass.constfold ] p in
  Alcotest.(check int) "muli becomes shli" 0 (count_op optimised Opcode.Muli);
  Alcotest.(check bool) "shli present" true
    (count_op optimised Opcode.Shli > 0)

let test_constfold_keeps_div () =
  (* Division may trap; never folded. *)
  let p =
    compute_program (fun b -> B.div b (B.movi b 10L) (B.movi b 0L))
  in
  let optimised, _ = Pass.run_program [ Pass.constfold ] p in
  Alcotest.(check int) "div kept" 1 (count_op optimised Opcode.Div)

let test_copyprop_forwards () =
  let p =
    compute_program (fun b ->
        let x = B.movi b 11L in
        let y = B.mov b x in
        B.addi b y 1L)
  in
  let optimised, counts = Pass.run_program [ Pass.copyprop; Pass.dce ] p in
  Alcotest.(check bool) "propagated" true (List.assoc "copyprop" counts > 0);
  (* After propagation the mov is dead and DCE removes it. *)
  Alcotest.(check int) "mov removed" 0 (count_op optimised Opcode.Mov);
  Alcotest.(check int64) "value" 12L (out64 (run_program optimised))

let test_copyprop_respects_redefinition () =
  let p =
    compute_program (fun b ->
        let x = B.movi b 1L in
        let y = B.mov b x in
        (* Redefine the source: the copy must no longer forward. *)
        let (_ : Reg.t) = B.movi b ~dst:x 100L in
        B.add b y x)
  in
  let optimised, _ = Pass.run_program [ Pass.copyprop ] p in
  Alcotest.(check int64) "1 + 100" 101L (out64 (run_program optimised))

let test_cse_merges () =
  let p =
    compute_program (fun b ->
        let base = B.movi b 0x100L in
        let x = B.ld b Opcode.W8 base 0L in
        let a = B.mul b x x in
        let c = B.mul b x x in
        B.add b a c)
  in
  let optimised, counts = Pass.run_program [ Pass.cse ] p in
  Alcotest.(check bool) "merged" true (List.assoc "cse" counts > 0);
  Alcotest.(check int) "one mul left" 1 (count_op optimised Opcode.Mul);
  Alcotest.(check int64) "semantics" 0L (out64 (run_program optimised))

let test_cse_loads_blocked_by_store () =
  let p =
    compute_program (fun b ->
        let base = B.movi b 0x100L in
        let x = B.ld b Opcode.W8 base 0L in
        let v = B.movi b 9L in
        B.st b Opcode.W8 ~value:v ~base 0L;
        let y = B.ld b Opcode.W8 base 0L in
        B.add b x y)
  in
  let optimised, _ = Pass.run_program [ Pass.cse ] p in
  (* The second load must survive: memory changed in between. *)
  Alcotest.(check int) "both loads kept" 2
    (count_op optimised (Opcode.Ld Opcode.W8));
  Alcotest.(check int64) "0 + 9" 9L (out64 (run_program optimised))

let test_cse_self_update_not_poisoned () =
  (* addi r r 1 must not register itself as an available expression for
     its own result. *)
  let p =
    compute_program (fun b ->
        let r = B.movi b 5L in
        let (_ : Reg.t) = B.addi b ~dst:r r 1L in
        let q = B.addi b r 1L in
        q)
  in
  let optimised, _ = Pass.run_program [ Pass.cse ] p in
  Alcotest.(check int64) "(5+1)+1" 7L (out64 (run_program optimised))

let test_dce_removes_dead () =
  let p =
    compute_program (fun b ->
        let x = B.movi b 1L in
        let _dead = B.mul b x x in
        let _dead2 = B.fmovi b 3.0 in
        B.addi b x 9L)
  in
  let optimised, counts = Pass.run_program [ Pass.dce ] p in
  Alcotest.(check bool) "removed" true (List.assoc "dce" counts >= 2);
  Alcotest.(check int) "mul gone" 0 (count_op optimised Opcode.Mul);
  Alcotest.(check int64) "semantics" 10L (out64 (run_program optimised))

let test_dce_keeps_stores_and_loop_carried () =
  let p =
    program_of (fun b ->
        let acc = B.movi b 0L in
        B.counted_loop b ~from:0L ~until:5L (fun b _ ->
            ignore (B.addi b ~dst:acc acc 2L));
        let out = B.movi b 0x40L in
        B.st b Opcode.W8 ~value:acc ~base:out 0L)
  in
  let optimised, _ = Pass.run_program [ Pass.dce ] p in
  Alcotest.(check int64) "loop result survives" 10L
    (out64 (run_program optimised))

let test_simplify_cfg_removes_empty_blocks () =
  let b = B.create ~name:"main" () in
  B.br b "hop1";
  B.block b "hop1";
  B.br b "hop2";
  B.block b "hop2";
  B.br b "real";
  B.block b "dead";
  B.br b "dead";
  B.block b "real";
  let out = B.movi b 0x40L in
  let v = B.movi b 5L in
  B.st b Opcode.W8 ~value:v ~base:out 0L;
  B.halt b ();
  let p =
    Program.make ~funcs:[ B.finish b ] ~entry:"main" ~mem_size:(1 lsl 16)
      ~output_base:0x40 ~output_len:8 ()
  in
  let optimised, _ = Pass.run_program [ Pass.simplify_cfg ] p in
  let f = Program.entry_func optimised in
  Alcotest.(check bool) "blocks collapsed" true
    (List.length f.Func.blocks <= 2);
  Alcotest.(check int64) "semantics" 5L (out64 (run_program optimised))

(* --- the paper's SS IV-A interaction --- *)

(* A fully protected kernel, hardened. Straight-line (the loop is
   unrolled at build time) so that the block-local role-blind passes can
   actually collapse the redundancy, as GCC's global passes would. *)
let hardened_kernel () =
  let p =
    program_of (fun b ->
        let base = B.movi b 0x100L in
        let acc = ref (B.movi b 3L) in
        for i = 0 to 15 do
          let x = B.mul b !acc !acc in
          let y = B.addi b x (Int64.of_int i) in
          acc := B.andi b y 0xFFFL;
          B.st b Opcode.W8 ~value:!acc ~base 0L
        done;
        let out = B.movi b 0x40L in
        let v = B.ld b Opcode.W8 base 0L in
        B.st b Opcode.W8 ~value:v ~base:out 0L)
  in
  fst (Transform.program Options.default p)

let coverage p =
  let config = Config.dual_core ~issue_width:2 ~delay:2 in
  let schedule =
    Casted_sched.List_scheduler.schedule_program config
      Casted_sched.Assign.Single_cluster p
  in
  ignore config;
  Montecarlo.run ~trials:150 schedule

let test_preserving_passes_keep_detection () =
  let hardened = hardened_kernel () in
  let optimised, _ =
    Pass.run_program ~preserve_detection:true Pass.standard hardened
  in
  Casted_ir.Validate.check_exn optimised;
  let r = coverage optimised in
  Alcotest.(check bool) "still detects" true
    (Montecarlo.percent r Montecarlo.Detected > 40.0);
  Alcotest.(check int) "no silent corruption" 0 r.Montecarlo.corrupt

let test_unsafe_passes_destroy_detection () =
  (* The paper's reason for disabling late CSE/DCE: without role
     awareness the redundant stream is merged into the original and the
     checks become tautologies. *)
  let hardened = hardened_kernel () in
  let before = Program.num_insns hardened in
  let optimised, _ =
    Pass.run_to_fixpoint ~preserve_detection:false ~max_rounds:50
      Pass.standard hardened
  in
  let after = Program.num_insns optimised in
  Alcotest.(check bool) "detection code shrank" true
    (after < (before * 8 / 10));
  let r = coverage optimised in
  let preserved = coverage (fst (Pass.run_program ~preserve_detection:true
                                   Pass.standard hardened)) in
  Alcotest.(check bool)
    (Printf.sprintf "coverage collapsed (%.0f%% vs %.0f%%)"
       (Montecarlo.percent r Montecarlo.Detected)
       (Montecarlo.percent preserved Montecarlo.Detected))
    true
    (Montecarlo.percent r Montecarlo.Detected
    < Montecarlo.percent preserved Montecarlo.Detected -. 20.0)

let test_pipeline_optimize_flag () =
  let w = Option.get (Registry.find "cjpeg") in
  let p = w.W.build W.Fault in
  let plain = run_scheme Scheme.Casted p in
  let c =
    Pipeline.compile ~optimize:true ~scheme:Scheme.Casted ~issue_width:2
      ~delay:2 p
  in
  let r = Simulator.run c.Pipeline.schedule in
  Alcotest.(check string) "same output" plain.Outcome.output r.Outcome.output;
  Alcotest.(check bool) "not slower" true
    (r.Outcome.cycles <= plain.Outcome.cycles)

let suite =
  ( "opt",
    [
      case "standard passes preserve semantics (all workloads)"
        test_passes_preserve_semantics;
      case "fixpoint terminates and preserves semantics"
        test_fixpoint_preserves_semantics;
      case "optimisation does not add work" test_optimised_not_slower;
      case "constfold folds constants" test_constfold_folds;
      case "constfold strength-reduces muli" test_constfold_strength_reduction;
      case "constfold never folds trapping division" test_constfold_keeps_div;
      case "copyprop forwards copies" test_copyprop_forwards;
      case "copyprop respects redefinition" test_copyprop_respects_redefinition;
      case "cse merges common expressions" test_cse_merges;
      case "cse: stores invalidate loads" test_cse_loads_blocked_by_store;
      case "cse: self-updates not poisoned" test_cse_self_update_not_poisoned;
      case "dce removes dead code" test_dce_removes_dead;
      case "dce keeps stores and loop-carried values"
        test_dce_keeps_stores_and_loop_carried;
      case "simplify-cfg collapses empty blocks"
        test_simplify_cfg_removes_empty_blocks;
      case "role-aware passes keep detection intact (SS IV-A)"
        test_preserving_passes_keep_detection;
      case "role-blind passes destroy detection (SS IV-A)"
        test_unsafe_passes_destroy_detection;
      case "pipeline optimize flag" test_pipeline_optimize_flag;
    ] )
