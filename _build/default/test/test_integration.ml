open Helpers
module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Transform = Casted_detect.Transform
module Montecarlo = Casted_sim.Montecarlo

(* End-to-end reproductions of the paper's qualitative claims, on
   fault-sized inputs so the suite stays fast. *)

let cycles w scheme ~issue ~delay =
  (run_scheme ~issue_width:issue ~delay scheme (w.W.build W.Fault))
    .Outcome.cycles

let test_scheme_machines () =
  Alcotest.(check int) "NOED single cluster" 1
    (Scheme.machine Scheme.Noed ~issue_width:2 ~delay:1)
      .Config.clusters;
  Alcotest.(check int) "SCED single cluster" 1
    (Scheme.machine Scheme.Sced ~issue_width:2 ~delay:1)
      .Config.clusters;
  Alcotest.(check int) "DCED dual cluster" 2
    (Scheme.machine Scheme.Dced ~issue_width:2 ~delay:1)
      .Config.clusters;
  Alcotest.(check int) "CASTED dual cluster" 2
    (Scheme.machine Scheme.Casted ~issue_width:2 ~delay:1)
      .Config.clusters

let test_scheme_names_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Scheme.name s) true
        (Scheme.of_string (Scheme.name s) = Some s))
    Scheme.all;
  Alcotest.(check bool) "case-insensitive" true
    (Scheme.of_string "casted" = Some Scheme.Casted);
  Alcotest.(check bool) "unknown" true (Scheme.of_string "swift" = None)

(* SS IV-B1: SCED's slowdown improves (or at least does not degrade) as
   the issue width grows, on the media benchmarks. *)
let test_sced_improves_with_issue_width () =
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let slowdown issue =
        float_of_int (cycles w Scheme.Sced ~issue ~delay:1)
        /. float_of_int (cycles w Scheme.Noed ~issue ~delay:1)
      in
      let s1 = slowdown 1 and s4 = slowdown 4 in
      if s4 > s1 +. 0.05 then
        Alcotest.failf "%s: SCED slowdown grew %.2f -> %.2f" name s1 s4)
    [ "cjpeg"; "h263dec"; "mpeg2dec" ]

(* SS IV-B3: DCED degrades as the inter-core delay grows. *)
let test_dced_degrades_with_delay () =
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let c1 = cycles w Scheme.Dced ~issue:2 ~delay:1 in
      let c4 = cycles w Scheme.Dced ~issue:2 ~delay:4 in
      Alcotest.(check bool) (name ^ " delay hurts DCED") true (c4 > c1))
    [ "cjpeg"; "h263dec"; "181.mcf"; "197.parser" ]

(* SS IV-B6: CASTED at least roughly matches the best fixed scheme at
   every configuration point. The paper's own data has small exceptions;
   we allow 12% slack. *)
let test_casted_tracks_best_fixed () =
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      List.iter
        (fun (issue, delay) ->
          let sced = cycles w Scheme.Sced ~issue ~delay in
          let dced = cycles w Scheme.Dced ~issue ~delay in
          let casted = cycles w Scheme.Casted ~issue ~delay in
          let best = min sced dced in
          if float_of_int casted > 1.12 *. float_of_int best then
            Alcotest.failf "%s issue %d delay %d: CASTED %d vs best %d" name
              issue delay casted best)
        [ (1, 1); (2, 2); (2, 4); (4, 1) ])
    [ "cjpeg"; "h263enc"; "181.mcf" ]

(* SS IV-C: fault coverage. Hardened schemes detect; silent corruption
   only survives through unprotected library code. *)
let test_coverage_claims () =
  let campaign name scheme =
    let w = Option.get (Registry.find name) in
    let p = w.W.build W.Fault in
    let c = Pipeline.compile ~scheme ~issue_width:2 ~delay:2 p in
    Montecarlo.run ~trials:120 c.Pipeline.schedule
  in
  (* NOED never detects. *)
  let noed = campaign "cjpeg" Scheme.Noed in
  Alcotest.(check int) "NOED detects nothing" 0 noed.Montecarlo.detected;
  Alcotest.(check bool) "NOED corrupts" true (noed.Montecarlo.corrupt > 0);
  (* CASTED on a fully protected benchmark: no silent corruption and a
     large detected fraction. *)
  let casted = campaign "cjpeg" Scheme.Casted in
  Alcotest.(check int) "CASTED never silently corrupts cjpeg" 0
    casted.Montecarlo.corrupt;
  Alcotest.(check bool) "CASTED detects the majority" true
    (Montecarlo.percent casted Montecarlo.Detected > 50.0);
  (* parser's unprotected dictionary helper leaks a little corruption,
     the paper's explanation for the residue in Fig. 9. *)
  let parser = campaign "197.parser" Scheme.Casted in
  Alcotest.(check bool) "library code leaks SDC" true
    (parser.Montecarlo.corrupt > 0)

(* Fig. 10's point: fault coverage is configuration-independent. *)
let test_coverage_stable_across_configs () =
  let w = Option.get (Registry.find "cjpeg") in
  let p = w.W.build W.Fault in
  let detected issue delay =
    let c = Pipeline.compile ~scheme:Scheme.Casted ~issue_width:issue ~delay p in
    let r = Montecarlo.run ~trials:120 c.Pipeline.schedule in
    Montecarlo.percent r Montecarlo.Detected
  in
  let a = detected 1 1 and b = detected 4 4 in
  (* Same seed, same faults relative to the (identical) instruction
     stream; coverage differences are statistical only. *)
  Alcotest.(check bool) "within 10 points" true (Float.abs (a -. b) < 10.0)

(* The paper's 2.4x code-size observation, measured dynamically. *)
let test_dynamic_expansion () =
  let w = Option.get (Registry.find "h263dec") in
  let p = w.W.build W.Fault in
  let noed = run_scheme Scheme.Noed p in
  let sced = run_scheme Scheme.Sced p in
  let ratio =
    float_of_int sced.Outcome.dyn_insns /. float_of_int noed.Outcome.dyn_insns
  in
  Alcotest.(check bool) "dynamic expansion around 2x" true
    (ratio > 1.6 && ratio < 3.2)

let test_pipeline_stats_consistent () =
  let w = Option.get (Registry.find "mpeg2dec") in
  let p = w.W.build W.Fault in
  let c = Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 p in
  let s = c.Pipeline.stats in
  Alcotest.(check bool) "replicas > 0" true (s.Transform.replicas > 0);
  Alcotest.(check bool) "checks > 0" true (s.Transform.checks > 0);
  (* The hardened program contains exactly the instrumented count. *)
  let total = Program.num_insns c.Pipeline.program in
  let lib =
    List.fold_left
      (fun acc f -> if f.Func.protect then acc else acc + Func.num_insns f)
      0 c.Pipeline.program.Program.funcs
  in
  Alcotest.(check int) "instruction accounting"
    (s.Transform.originals + s.Transform.replicas + s.Transform.checks
   + s.Transform.shadow_copies)
    (total - lib)

let suite =
  ( "integration",
    [
      case "scheme machines" test_scheme_machines;
      case "scheme names roundtrip" test_scheme_names_roundtrip;
      case "SCED improves with issue width (SS IV-B1)"
        test_sced_improves_with_issue_width;
      case "DCED degrades with delay (SS IV-B3)" test_dced_degrades_with_delay;
      case "CASTED tracks the best fixed scheme (SS IV-B6)"
        test_casted_tracks_best_fixed;
      case "fault-coverage claims (SS IV-C)" test_coverage_claims;
      case "coverage stable across configurations (Fig. 10)"
        test_coverage_stable_across_configs;
      case "dynamic code expansion ~2x" test_dynamic_expansion;
      case "pipeline statistics consistent" test_pipeline_stats_consistent;
    ] )
