open Helpers

let test_fresh_registers_distinct () =
  let b = B.create ~name:"f" () in
  let r1 = B.gp b and r2 = B.gp b and f1 = B.fp b in
  Alcotest.(check bool) "gp fresh" false (Reg.equal r1 r2);
  Alcotest.(check bool) "classes distinct" false (Reg.equal r1 f1);
  B.halt b ();
  let func = B.finish b in
  Alcotest.(check int) "gp count" 2 (Func.reg_count func Reg.Gp);
  Alcotest.(check int) "fp count" 1 (Func.reg_count func Reg.Fp)

let test_unterminated_block_rejected () =
  let b = B.create ~name:"f" () in
  let (_ : Reg.t) = B.movi b 1L in
  (match B.finish b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "finish should reject an open block")

let test_emit_after_terminator_rejected () =
  let b = B.create ~name:"f" () in
  B.halt b ();
  match B.movi b 1L with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "emit outside a block should fail"

let test_dst_class_checked () =
  let b = B.create ~name:"f" () in
  let f = B.fp b in
  (match B.movi b ~dst:f 1L with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "movi into an fp register should fail");
  B.halt b ();
  ignore (B.finish b)

let test_counted_loop_shape () =
  let p =
    program_of (fun b ->
        let acc = B.movi b 0L in
        B.counted_loop b ~from:0L ~until:10L (fun b _i ->
            let (_ : Reg.t) = B.addi b ~dst:acc acc 1L in
            ());
        let out = B.movi b 0x40L in
        B.st b Opcode.W8 ~value:acc ~base:out 0L)
  in
  let func = Program.entry_func p in
  (* entry, head, body, exit = 4 blocks. *)
  Alcotest.(check int) "block count" 4 (List.length func.Func.blocks);
  let r = run_noed p in
  Alcotest.(check int64) "loop executes 10 times" 10L (out64 r)

let test_counted_loop_zero_iterations () =
  let p =
    program_of (fun b ->
        let acc = B.movi b 99L in
        B.counted_loop b ~from:5L ~until:5L (fun b _ ->
            let (_ : Reg.t) = B.movi b ~dst:acc 0L in
            ());
        let out = B.movi b 0x40L in
        B.st b Opcode.W8 ~value:acc ~base:out 0L)
  in
  Alcotest.(check int64) "body never runs" 99L (out64 (run_noed p))

let test_counted_loop_step () =
  let p =
    program_of (fun b ->
        let acc = B.movi b 0L in
        B.counted_loop b ~from:0L ~until:10L ~step:3L (fun b iv ->
            let (_ : Reg.t) = B.add b ~dst:acc acc iv in
            ());
        let out = B.movi b 0x40L in
        B.st b Opcode.W8 ~value:acc ~base:out 0L)
  in
  (* 0 + 3 + 6 + 9 = 18 *)
  Alcotest.(check int64) "step 3" 18L (out64 (run_noed p))

let test_if_join () =
  let branch taken =
    let p =
      program_of (fun b ->
          let x = B.movi b (if taken then 1L else 5L) in
          let pconf = B.cmpi b Cond.Eq x 1L in
          let res = B.movi b 0L in
          B.if_ b pconf
            (fun b -> ignore (B.movi b ~dst:res 111L))
            (fun b -> ignore (B.movi b ~dst:res 222L));
          (* Code after the join always runs. *)
          let (_ : Reg.t) = B.addi b ~dst:res res 1L in
          let out = B.movi b 0x40L in
          B.st b Opcode.W8 ~value:res ~base:out 0L)
    in
    out64 (run_noed p)
  in
  Alcotest.(check int64) "then arm" 112L (branch true);
  Alcotest.(check int64) "else arm" 223L (branch false)

let test_nested_loops () =
  let p =
    program_of (fun b ->
        let acc = B.movi b 0L in
        B.counted_loop b ~name:"outer" ~from:0L ~until:5L (fun b _ ->
            B.counted_loop b ~name:"inner" ~from:0L ~until:7L (fun b _ ->
                let (_ : Reg.t) = B.addi b ~dst:acc acc 1L in
                ()));
        let out = B.movi b 0x40L in
        B.st b Opcode.W8 ~value:acc ~base:out 0L)
  in
  Alcotest.(check int64) "5*7 iterations" 35L (out64 (run_noed p))

let test_labels_unique () =
  let b = B.create ~name:"f" () in
  let l1 = B.fresh_label b "x" in
  let l2 = B.fresh_label b "x" in
  Alcotest.(check bool) "fresh labels differ" false (String.equal l1 l2);
  B.halt b ();
  ignore (B.finish b)

let test_insn_ids_unique () =
  let p =
    program_of (fun b ->
        B.counted_loop b ~from:0L ~until:3L (fun b _ ->
            ignore (B.movi b 7L)))
  in
  let func = Program.entry_func p in
  let ids = List.map (fun i -> i.Insn.id) (Func.all_insns func) in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq Int.compare ids))

let suite =
  ( "builder",
    [
      case "fresh registers distinct" test_fresh_registers_distinct;
      case "unterminated block rejected" test_unterminated_block_rejected;
      case "emit after terminator rejected" test_emit_after_terminator_rejected;
      case "destination class checked" test_dst_class_checked;
      case "counted loop" test_counted_loop_shape;
      case "counted loop, zero iterations" test_counted_loop_zero_iterations;
      case "counted loop, custom step" test_counted_loop_step;
      case "if/else joins" test_if_join;
      case "nested loops" test_nested_loops;
      case "fresh labels unique" test_labels_unique;
      case "instruction ids unique" test_insn_ids_unique;
    ] )
