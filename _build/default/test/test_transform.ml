open Helpers
module Transform = Casted_detect.Transform
module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry

let harden ?(options = Options.default) p = Transform.program options p

(* A small but representative program: arithmetic, loads, stores, a
   branch, a call into a protected helper. *)
let sample () =
  let helper =
    let a = Reg.gp 0 in
    let b = B.create ~name:"helper" ~params:[ a ] ~ret_cls:(Some Reg.Gp) () in
    let r = B.muli b a 3L in
    B.ret b ~value:r ();
    B.finish b
  in
  let b = B.create ~name:"main" () in
  let base = B.movi b 0x1000L in
  let acc = B.movi b 0L in
  B.counted_loop b ~from:0L ~until:8L (fun b i ->
      let off = B.muli b i 8L in
      let at = B.add b base off in
      let v = B.ld b Opcode.W8 at 0L in
      let t = B.gp b in
      B.call b ~dst:t "helper" [ v ];
      let (_ : Reg.t) = B.add b ~dst:acc acc t in
      ());
  let out = B.movi b 0x40L in
  B.st b Opcode.W8 ~value:acc ~base:out 0L;
  let zero = B.movi b 0L in
  B.halt b ~code:zero ();
  let p =
    Program.make
      ~funcs:[ B.finish b; helper ]
      ~entry:"main" ~mem_size:(1 lsl 16)
      ~data:[ (0x1000, Casted_workloads.Gen.le64 (List.init 8 Int64.of_int)) ]
      ~output_base:0x40 ~output_len:8 ()
  in
  Casted_ir.Validate.check_exn p;
  p

let test_hardened_validates () =
  let hardened, _ = harden (sample ()) in
  Alcotest.(check (list string)) "valid" []
    (Casted_ir.Validate.check_program hardened)

let test_input_not_modified () =
  let p = sample () in
  let before = Format.asprintf "%a" Program.pp p in
  let _ = harden p in
  let after = Format.asprintf "%a" Program.pp p in
  Alcotest.(check string) "input untouched" before after

(* Algorithm 1 step 1: every replicable instruction has exactly one
   replica, placed immediately before it. *)
let test_every_replicable_duplicated () =
  let hardened, _ = harden (sample ()) in
  List.iter
    (fun f ->
      if f.Func.protect then
        List.iter
          (fun blk ->
            let body = blk.Block.body in
            List.iteri
              (fun idx (insn : Insn.t) ->
                if
                  insn.Insn.role = Insn.Original
                  && Opcode.replicable insn.Insn.op
                then begin
                  (* The predecessor must be its replica. *)
                  if idx = 0 then Alcotest.fail "replica missing (first)";
                  let prev = List.nth body (idx - 1) in
                  Alcotest.(check bool)
                    (Insn.to_string insn ^ " preceded by replica")
                    true
                    (prev.Insn.role = Insn.Replica
                    && prev.Insn.replica_of = insn.Insn.id
                    && Opcode.equal prev.Insn.op insn.Insn.op)
                end)
              body)
          f.Func.blocks)
    hardened.Program.funcs

(* Algorithm 1 step 2: register isolation. The replica stream never
   writes a register that the original stream reads or writes. *)
let test_register_isolation () =
  let hardened, _ = harden (sample ()) in
  List.iter
    (fun f ->
      if f.Func.protect then begin
        let original_regs = Reg.Tbl.create 64 in
        Func.iter_insns f (fun _ insn ->
            match insn.Insn.role with
            | Insn.Original ->
                Array.iter
                  (fun r -> Reg.Tbl.replace original_regs r ())
                  insn.Insn.defs;
                Array.iter
                  (fun r -> Reg.Tbl.replace original_regs r ())
                  insn.Insn.uses
            | Insn.Replica | Insn.Check | Insn.Shadow_copy -> ());
        Func.iter_insns f (fun _ insn ->
            match insn.Insn.role with
            | Insn.Replica | Insn.Shadow_copy ->
                Array.iter
                  (fun r ->
                    if Reg.Tbl.mem original_regs r then
                      Alcotest.failf "shadow write to original register %a"
                        Reg.pp r)
                  insn.Insn.defs
            | Insn.Original | Insn.Check -> ())
      end)
    hardened.Program.funcs

(* Algorithm 1 step 3: every register read by a non-replicated original
   instruction is guarded by a check comparing it to its shadow. *)
let test_checks_guard_non_replicated () =
  let hardened, _ = harden (sample ()) in
  List.iter
    (fun f ->
      if f.Func.protect then
        List.iter
          (fun blk ->
            let insns = Block.insns blk in
            let checks_for id =
              List.filter
                (fun (i : Insn.t) ->
                  i.Insn.role = Insn.Check && i.Insn.protects = id)
                insns
            in
            List.iter
              (fun (insn : Insn.t) ->
                if
                  insn.Insn.role = Insn.Original
                  && not (Opcode.replicable insn.Insn.op)
                then
                  Alcotest.(check int)
                    (Insn.to_string insn ^ " guarded")
                    (Array.length insn.Insn.uses)
                    (List.length (checks_for insn.Insn.id)))
              insns)
          f.Func.blocks)
    hardened.Program.funcs

(* Non-replicated defs (call results) get a shadow copy right after. *)
let test_shadow_copy_after_call () =
  let hardened, _ = harden (sample ()) in
  let f = Program.entry_func hardened in
  let found = ref false in
  List.iter
    (fun blk ->
      let rec scan = function
        | (a : Insn.t) :: (b : Insn.t) :: rest ->
            if Opcode.equal a.Insn.op Opcode.Call && Array.length a.Insn.defs > 0
            then begin
              Alcotest.(check bool) "copy after call" true
                (b.Insn.role = Insn.Shadow_copy);
              Alcotest.(check bool) "copy reads the call result" true
                (Reg.equal b.Insn.uses.(0) a.Insn.defs.(0));
              found := true
            end;
            scan (b :: rest)
        | _ -> ()
      in
      scan blk.Block.body)
    f.Func.blocks;
  Alcotest.(check bool) "call found" true !found

let test_unprotected_functions_untouched () =
  let p = (Option.get (Registry.find "197.parser")).W.build W.Fault in
  let hardened, _ = harden p in
  let lib = Program.find_func hardened "lib_verify" in
  Alcotest.(check bool) "unprotected" false lib.Func.protect;
  Func.iter_insns lib (fun _ insn ->
      Alcotest.(check bool) "only original roles" true
        (insn.Insn.role = Insn.Original))

let test_expansion_factor_range () =
  (* The paper reports hardened binaries 2.4x larger on average. Static
     expansion of our kernels should land in the same ballpark. *)
  List.iter
    (fun w ->
      let p = w.W.build W.Fault in
      let _, stats = harden p in
      let e = Transform.expansion stats in
      if e < 1.6 || e > 3.5 then
        Alcotest.failf "%s: expansion %.2f out of expected range" w.W.name e)
    Registry.all

(* The heart of the matter: hardening must not change program semantics.
   Run original and hardened programs and compare outputs. *)
let test_semantics_preserved_all_workloads () =
  List.iter
    (fun w ->
      let p = w.W.build W.Fault in
      let plain = run_scheme Scheme.Noed p in
      List.iter
        (fun scheme ->
          let r = run_scheme scheme p in
          (match r.Outcome.termination with
          | Outcome.Exit 0 -> ()
          | t ->
              Alcotest.failf "%s/%s: %a" w.W.name (Scheme.name scheme)
                Outcome.pp_termination t);
          Alcotest.(check string)
            (w.W.name ^ "/" ^ Scheme.name scheme ^ " output")
            plain.Outcome.output r.Outcome.output)
        [ Scheme.Sced; Scheme.Dced; Scheme.Casted ])
    Registry.all

let test_options_disable_checks () =
  let p = sample () in
  let _, with_stores = harden p in
  let _, without_stores =
    harden ~options:{ Options.default with Options.check_stores = false } p
  in
  Alcotest.(check bool) "fewer checks" true
    (without_stores.Transform.checks < with_stores.Transform.checks);
  (* Semantics still preserved without store checks. *)
  let hardened, _ =
    Transform.program
      { Options.default with Options.check_stores = false }
      p
  in
  Casted_ir.Validate.check_exn hardened

let test_stats_counts () =
  let p =
    program_of (fun b ->
        let x = B.movi b 2L in
        let y = B.addi b x 3L in
        let base = B.movi b 0x100L in
        B.st b Opcode.W8 ~value:y ~base 0L)
  in
  let _, stats = harden p in
  (* Originals: movi, addi, movi(base), st, movi(zero), halt = 6. *)
  Alcotest.(check int) "originals" 6 stats.Transform.originals;
  (* Replicas: all four movi/addi/movi + exit movi = 4. *)
  Alcotest.(check int) "replicas" 4 stats.Transform.replicas;
  (* Checks: st reads (value, base) = 2; halt reads code = 1. *)
  Alcotest.(check int) "checks" 3 stats.Transform.checks;
  Alcotest.(check int) "copies" 0 stats.Transform.shadow_copies

let suite =
  ( "transform",
    [
      case "hardened program validates" test_hardened_validates;
      case "input program not modified" test_input_not_modified;
      case "step 1: replication" test_every_replicable_duplicated;
      case "step 2: register isolation" test_register_isolation;
      case "step 3: checks guard non-replicated insns"
        test_checks_guard_non_replicated;
      case "shadow copy after call results" test_shadow_copy_after_call;
      case "unprotected functions untouched"
        test_unprotected_functions_untouched;
      case "expansion factor in the paper's range (2.4x avg)"
        test_expansion_factor_range;
      case "semantics preserved on all workloads x schemes"
        test_semantics_preserved_all_workloads;
      case "options disable check classes" test_options_disable_checks;
      case "instrumentation statistics" test_stats_counts;
    ] )
