open Helpers
module Cfg = Casted_ir.Cfg
module Liveness = Casted_ir.Liveness

(* A diamond:   entry -> (left | right) -> join. *)
let diamond () =
  let b = B.create ~name:"main" () in
  let x = B.movi b 10L in
  let y = B.movi b 20L in
  let p = B.cmpi b Cond.Lt x 15L in
  let res = B.movi b 0L in
  B.brc b p ~if_:"left" ~else_:"right";
  B.block b "left";
  let (_ : Reg.t) = B.mov b ~dst:res x in
  B.br b "join";
  B.block b "right";
  let (_ : Reg.t) = B.mov b ~dst:res y in
  B.br b "join";
  B.block b "join";
  let out = B.movi b 0x40L in
  B.st b Opcode.W8 ~value:res ~base:out 0L;
  B.halt b ();
  let f = B.finish b in
  (f, x, y, res)

let test_successors_predecessors () =
  let f, _, _, _ = diamond () in
  let cfg = Cfg.of_func f in
  Alcotest.(check int) "blocks" 4 (Cfg.num_blocks cfg);
  let entry = Cfg.block_index cfg "entry" in
  let left = Cfg.block_index cfg "left" in
  let right = Cfg.block_index cfg "right" in
  let join = Cfg.block_index cfg "join" in
  Alcotest.(check (list int)) "entry succs" [ left; right ]
    cfg.Cfg.succs.(entry);
  Alcotest.(check (list int)) "left succs" [ join ] cfg.Cfg.succs.(left);
  Alcotest.(check int) "join preds" 2 (List.length cfg.Cfg.preds.(join));
  Alcotest.(check (list int)) "join succs" [] cfg.Cfg.succs.(join)

let test_reachability () =
  let b = B.create ~name:"main" () in
  B.halt b ();
  B.block b "orphan";
  B.br b "orphan";
  let f = B.finish b in
  let cfg = Cfg.of_func f in
  let reach = Cfg.reachable cfg in
  Alcotest.(check bool) "entry reachable" true reach.(0);
  Alcotest.(check bool) "orphan unreachable" false
    reach.(Cfg.block_index cfg "orphan")

let test_reverse_postorder () =
  let f, _, _, _ = diamond () in
  let cfg = Cfg.of_func f in
  let rpo = Cfg.reverse_postorder cfg in
  let pos = Array.make (Cfg.num_blocks cfg) (-1) in
  Array.iteri (fun i bidx -> pos.(bidx) <- i) rpo;
  let entry = Cfg.block_index cfg "entry" in
  let join = Cfg.block_index cfg "join" in
  Alcotest.(check int) "entry first" 0 pos.(entry);
  (* Join comes after both arms. *)
  Alcotest.(check bool) "join after left" true
    (pos.(join) > pos.(Cfg.block_index cfg "left"));
  Alcotest.(check bool) "join after right" true
    (pos.(join) > pos.(Cfg.block_index cfg "right"))

let test_liveness_diamond () =
  let f, x, y, res = diamond () in
  let cfg = Cfg.of_func f in
  let live = Liveness.compute cfg in
  let left = Cfg.block_index cfg "left" in
  let right = Cfg.block_index cfg "right" in
  let join = Cfg.block_index cfg "join" in
  (* x is live into the left arm, y into the right one. *)
  Alcotest.(check bool) "x live into left" true
    (Reg.Set.mem x live.Liveness.live_in.(left));
  Alcotest.(check bool) "y live into right" true
    (Reg.Set.mem y live.Liveness.live_in.(right));
  Alcotest.(check bool) "y dead into left" false
    (Reg.Set.mem y live.Liveness.live_in.(left));
  (* res is live into the join (it is stored there). *)
  Alcotest.(check bool) "res live into join" true
    (Reg.Set.mem res live.Liveness.live_in.(join));
  Alcotest.(check bool) "nothing live out of join" true
    (Reg.Set.is_empty live.Liveness.live_out.(join))

let test_liveness_loop () =
  (* A loop-carried accumulator must be live around the back edge. *)
  let b = B.create ~name:"main" () in
  let acc = B.movi b 0L in
  B.counted_loop b ~from:0L ~until:4L (fun b _ ->
      ignore (B.addi b ~dst:acc acc 1L));
  let out = B.movi b 0x40L in
  B.st b Opcode.W8 ~value:acc ~base:out 0L;
  B.halt b ();
  let f = B.finish b in
  let cfg = Cfg.of_func f in
  let live = Liveness.compute cfg in
  (* Find the loop body block. *)
  let body_idx = ref (-1) in
  Array.iteri
    (fun i blk ->
      if
        String.length blk.Block.label >= 9
        && String.sub blk.Block.label 0 9 = "loop_body"
      then body_idx := i)
    cfg.Cfg.blocks;
  Alcotest.(check bool) "found body" true (!body_idx >= 0);
  Alcotest.(check bool) "acc live into body" true
    (Reg.Set.mem acc live.Liveness.live_in.(!body_idx));
  Alcotest.(check bool) "acc live out of body" true
    (Reg.Set.mem acc live.Liveness.live_out.(!body_idx))

let test_live_before_walk () =
  let b = B.create ~name:"main" () in
  let x = B.movi b 1L in
  let y = B.addi b x 2L in
  let out = B.movi b 0x40L in
  B.st b Opcode.W8 ~value:y ~base:out 0L;
  B.halt b ();
  let f = B.finish b in
  let cfg = Cfg.of_func f in
  let live = Liveness.compute cfg in
  let per_insn = Liveness.live_before live 0 in
  (* Before the first instruction nothing is live. *)
  Alcotest.(check bool) "start empty" true
    (Reg.Set.is_empty (List.hd per_insn));
  (* Before the addi, x is live. *)
  Alcotest.(check bool) "x live before use" true
    (Reg.Set.mem x (List.nth per_insn 1))

let suite =
  ( "cfg-liveness",
    [
      case "successors/predecessors" test_successors_predecessors;
      case "reachability" test_reachability;
      case "reverse postorder" test_reverse_postorder;
      case "liveness on a diamond" test_liveness_diamond;
      case "liveness around a loop" test_liveness_loop;
      case "per-instruction walk" test_live_before_walk;
    ] )
