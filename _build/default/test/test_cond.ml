open Helpers

let pairs_gen =
  QCheck2.Gen.(pair (map Int64.of_int int) (map Int64.of_int int))

let cond_gen = QCheck2.Gen.oneofl Cond.all

let prop_negate =
  qcheck "negate flips the integer result"
    QCheck2.Gen.(pair cond_gen pairs_gen)
    (fun (c, (a, b)) ->
      Cond.eval_int (Cond.negate c) a b = not (Cond.eval_int c a b))

let prop_swap =
  qcheck "swap mirrors the operands"
    QCheck2.Gen.(pair cond_gen pairs_gen)
    (fun (c, (a, b)) -> Cond.eval_int (Cond.swap c) a b = Cond.eval_int c b a)

let prop_trichotomy =
  qcheck "exactly one of lt/eq/gt holds" pairs_gen (fun (a, b) ->
      let count =
        List.length
          (List.filter
             (fun c -> Cond.eval_int c a b)
             [ Cond.Lt; Cond.Eq; Cond.Gt ])
      in
      count = 1)

let test_int_semantics () =
  Alcotest.(check bool) "1 < 2" true (Cond.eval_int Cond.Lt 1L 2L);
  Alcotest.(check bool) "signed: -1 < 0" true (Cond.eval_int Cond.Lt (-1L) 0L);
  Alcotest.(check bool)
    "min_int < max_int" true
    (Cond.eval_int Cond.Lt Int64.min_int Int64.max_int);
  Alcotest.(check bool) "le reflexive" true (Cond.eval_int Cond.Le 5L 5L);
  Alcotest.(check bool) "ne" true (Cond.eval_int Cond.Ne 0L 1L)

let test_float_nan () =
  (* IEEE semantics: all comparisons with NaN are false except Ne. *)
  Alcotest.(check bool) "nan eq" false (Cond.eval_float Cond.Eq Float.nan 1.0);
  Alcotest.(check bool) "nan lt" false (Cond.eval_float Cond.Lt Float.nan 1.0);
  Alcotest.(check bool) "nan ge" false (Cond.eval_float Cond.Ge Float.nan 1.0);
  Alcotest.(check bool) "nan ne" true (Cond.eval_float Cond.Ne Float.nan 1.0)

let test_to_string_unique () =
  let names = List.map Cond.to_string Cond.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let suite =
  ( "cond",
    [
      case "integer semantics" test_int_semantics;
      case "float NaN semantics" test_float_nan;
      case "names unique" test_to_string_unique;
      prop_negate;
      prop_swap;
      prop_trichotomy;
    ] )
