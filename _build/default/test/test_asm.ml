open Helpers
module Asm = Casted_ir.Asm
module Transform = Casted_detect.Transform
module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry

(* Round-trip equivalence. Parsing renumbers instruction ids in listing
   order, so the first print->parse acts as a normalisation; from then
   on the text must be a fixed point. *)
let roundtrip_check name p =
  let parse_checked text =
    match Asm.parse text with
    | Error msg -> Alcotest.failf "%s: parse failed: %s" name msg
    | Ok p' ->
        (match Casted_ir.Validate.check_program p' with
        | [] -> ()
        | errs ->
            Alcotest.failf "%s: reparsed program invalid: %s" name
              (String.concat "; " errs));
        p'
  in
  let normalised = Asm.print (parse_checked (Asm.print p)) in
  Alcotest.(check string)
    (name ^ " round-trips")
    normalised
    (Asm.print (parse_checked normalised))

let test_roundtrip_workloads () =
  List.iter
    (fun w -> roundtrip_check w.W.name (w.W.build W.Fault))
    Registry.all

let test_roundtrip_hardened () =
  (* Detection annotations (@repl/@chk/@shad and %id: prefixes) must
     survive the round trip too. *)
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let hardened, _ =
        Transform.program Options.default (w.W.build W.Fault)
      in
      roundtrip_check (name ^ "/hardened") hardened)
    [ "cjpeg"; "197.parser" ]

let test_reparsed_program_runs_identically () =
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let p = w.W.build W.Fault in
      let p' = Asm.parse_exn (Asm.print p) in
      let a = run_noed p and b = run_noed p' in
      Alcotest.(check string) (name ^ " same output") a.Outcome.output
        b.Outcome.output;
      Alcotest.(check int) (name ^ " same cycles") a.Outcome.cycles
        b.Outcome.cycles)
    [ "h263dec"; "181.mcf" ]

let test_hardened_roundtrip_still_detects () =
  (* The reparsed hardened program must keep its fault coverage: roles
     and protects references drive nothing at runtime, but the checks
     themselves must have survived textual round-tripping. *)
  let w = Option.get (Registry.find "cjpeg") in
  let hardened, _ = Transform.program Options.default (w.W.build W.Fault) in
  let reparsed = Asm.parse_exn (Asm.print hardened) in
  let config = Config.single_core ~issue_width:2 in
  let schedule =
    Casted_sched.List_scheduler.schedule_program config
      Casted_sched.Assign.Single_cluster reparsed
  in
  let mc = Casted_sim.Montecarlo.run ~trials:100 schedule in
  Alcotest.(check bool) "detects" true
    (Casted_sim.Montecarlo.percent mc Casted_sim.Montecarlo.Detected > 50.0)

let test_handwritten_program () =
  let text =
    {|
program entry=main mem=65536 output=64:8
data 256 hex:2A00000000000000

func main() {
entry:
  movi r0, 256
  ld8 r1, [r0+0]
  movi r2, -2
  mul r3, r1, r2
  call r4 = negate(r3)
  st8 r4, [r0-192]
  halt
}

func negate(r0) : gp unprotected {
entry:
  movi r1, 0
  sub r2, r1, r0
  ret r2
}
|}
  in
  let p = Asm.parse_exn text in
  Casted_ir.Validate.check_exn p;
  let r = run_noed p in
  (* 42 * -2 = -84, negated = 84, stored at 256 - 192 = 64 = output. *)
  Alcotest.(check int64) "computes through call" 84L (out64 r)

let test_handwritten_control_flow () =
  let text =
    {|
program entry=main mem=65536 output=64:8
func main() {
entry:
  movi r0, 0
  movi r1, 0
  br head
head:
  cmpi.lt p0, r1, 10
  brc.t p0, body, done
body:
  add r0, r0, r1
  addi r1, r1, 1
  br head
done:
  movi r2, 64
  st8 r0, [r2+0]
  halt
}
|}
  in
  let p = Asm.parse_exn text in
  Alcotest.(check int64) "sum 0..9" 45L (out64 (run_noed p))

let expect_error text fragment =
  match Asm.parse text with
  | Ok _ -> Alcotest.failf "expected a parse error mentioning %S" fragment
  | Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" msg fragment)
        true (contains msg fragment)

let test_parse_errors () =
  expect_error "program entry=main\nfunc main() {\nentry:\n  frobnicate r1\n}"
    "unknown mnemonic";
  expect_error "program entry=main\nfunc main() {\nentry:\n  movi r0, 1\n}"
    "terminator";
  expect_error "program entry=main\nfunc main() {\n  movi r0, 1\n}" "block";
  expect_error "program entry=main\nfunc main() {\nentry:\n  movi z9, 1\n  halt\n}"
    "register";
  expect_error "data 0 hex:ABC\nprogram entry=main" "hex"

let test_float_roundtrip () =
  (* Hex float literals keep full precision through the text form. *)
  let p =
    program_of (fun b ->
        let x = B.fmovi b 0.1 in
        let y = B.fmul b x x in
        let out = B.movi b 0x40L in
        B.fst_ b ~value:y ~base:out 0L)
  in
  let p' = Asm.parse_exn (Asm.print p) in
  Alcotest.(check string) "bit-identical float results"
    (run_noed p).Outcome.output
    (run_noed p').Outcome.output

let suite =
  ( "asm",
    [
      case "workloads round-trip" test_roundtrip_workloads;
      case "hardened programs round-trip (annotations)"
        test_roundtrip_hardened;
      case "reparsed programs run identically"
        test_reparsed_program_runs_identically;
      case "reparsed hardened code still detects"
        test_hardened_roundtrip_still_detects;
      case "hand-written program with a call" test_handwritten_program;
      case "hand-written control flow" test_handwritten_control_flow;
      case "parse errors are reported" test_parse_errors;
      case "float literals round-trip bit-exactly" test_float_roundtrip;
    ] )
