open Helpers
module Trap = Casted_sim.Trap
module Alu = Casted_sim.Alu
module Memory = Casted_sim.Memory

(* --- ALU semantics --- *)

let int64_gen = QCheck2.Gen.(map Int64.of_int int)

let prop_alu_matches_ocaml =
  qcheck "register-register ALU matches Int64"
    QCheck2.Gen.(pair int64_gen int64_gen)
    (fun (a, b) ->
      Alu.int_binop Opcode.Add a b = Int64.add a b
      && Alu.int_binop Opcode.Sub a b = Int64.sub a b
      && Alu.int_binop Opcode.Mul a b = Int64.mul a b
      && Alu.int_binop Opcode.And a b = Int64.logand a b
      && Alu.int_binop Opcode.Or a b = Int64.logor a b
      && Alu.int_binop Opcode.Xor a b = Int64.logxor a b)

let prop_shifts_mod_64 =
  qcheck "shift amounts are taken mod 64"
    QCheck2.Gen.(pair int64_gen (int_bound 500))
    (fun (a, k) ->
      let k64 = Int64.of_int k in
      Alu.int_binop Opcode.Shl a k64
      = Int64.shift_left a (k land 63)
      && Alu.int_binop Opcode.Shr a k64
         = Int64.shift_right_logical a (k land 63)
      && Alu.int_binop Opcode.Sra a k64 = Int64.shift_right a (k land 63))

let test_division_edge_cases () =
  (match Alu.int_binop Opcode.Div 1L 0L with
  | exception Trap.Trap Trap.Div_by_zero -> ()
  | _ -> Alcotest.fail "div by zero must trap");
  (match Alu.int_binop Opcode.Rem 1L 0L with
  | exception Trap.Trap Trap.Div_by_zero -> ()
  | _ -> Alcotest.fail "rem by zero must trap");
  Alcotest.(check int64) "min_int / -1 wraps" Int64.min_int
    (Alu.int_binop Opcode.Div Int64.min_int (-1L));
  Alcotest.(check int64) "min_int rem -1 is 0" 0L
    (Alu.int_binop Opcode.Rem Int64.min_int (-1L));
  Alcotest.(check int64) "-7 / 2 truncates" (-3L)
    (Alu.int_binop Opcode.Div (-7L) 2L)

(* --- memory --- *)

let test_memory_widths () =
  let m = Memory.create ~size:256 in
  Memory.write m ~addr:0L ~width:Opcode.W8 0x1122334455667788L;
  Alcotest.(check int64) "w8 roundtrip" 0x1122334455667788L
    (Memory.read m ~addr:0L ~width:Opcode.W8 ~signed:false);
  Alcotest.(check int64) "w1 le first byte" 0x88L
    (Memory.read m ~addr:0L ~width:Opcode.W1 ~signed:false);
  Alcotest.(check int64) "w2 le" 0x7788L
    (Memory.read m ~addr:0L ~width:Opcode.W2 ~signed:false);
  Alcotest.(check int64) "w4 le" 0x55667788L
    (Memory.read m ~addr:0L ~width:Opcode.W4 ~signed:false)

let test_memory_sign_extension () =
  let m = Memory.create ~size:64 in
  Memory.write m ~addr:0L ~width:Opcode.W1 0xFFL;
  Alcotest.(check int64) "unsigned byte" 255L
    (Memory.read m ~addr:0L ~width:Opcode.W1 ~signed:false);
  Alcotest.(check int64) "signed byte" (-1L)
    (Memory.read m ~addr:0L ~width:Opcode.W1 ~signed:true);
  Memory.write m ~addr:4L ~width:Opcode.W4 0x80000000L;
  Alcotest.(check int64) "signed word" (-2147483648L)
    (Memory.read m ~addr:4L ~width:Opcode.W4 ~signed:true)

let test_memory_bounds_and_alignment () =
  let m = Memory.create ~size:64 in
  (match Memory.read m ~addr:64L ~width:Opcode.W1 ~signed:false with
  | exception Trap.Trap (Trap.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "oob read");
  (match Memory.read m ~addr:(-8L) ~width:Opcode.W8 ~signed:false with
  | exception Trap.Trap (Trap.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "negative read");
  (match Memory.read m ~addr:3L ~width:Opcode.W4 ~signed:false with
  | exception Trap.Trap (Trap.Misaligned _) -> ()
  | _ -> Alcotest.fail "misaligned read");
  match Memory.write m ~addr:62L ~width:Opcode.W8 0L with
  | exception Trap.Trap (Trap.Out_of_bounds _ | Trap.Misaligned _) -> ()
  | _ -> Alcotest.fail "straddling write"

(* --- whole-program semantics, one opcode at a time --- *)

let test_arith_programs () =
  check_compute "add" 30L (fun b ->
      B.add b (B.movi b 10L) (B.movi b 20L));
  check_compute "sub" (-10L) (fun b ->
      B.sub b (B.movi b 10L) (B.movi b 20L));
  check_compute "mul" 200L (fun b ->
      B.mul b (B.movi b 10L) (B.movi b 20L));
  check_compute "div" 3L (fun b -> B.div b (B.movi b 10L) (B.movi b 3L));
  check_compute "rem" 1L (fun b -> B.rem b (B.movi b 10L) (B.movi b 3L));
  check_compute "sel true" 5L (fun b ->
      let p = B.cmpi b Cond.Lt (B.movi b 1L) 2L in
      B.sel b p (B.movi b 5L) (B.movi b 9L));
  check_compute "sel false" 9L (fun b ->
      let p = B.cmpi b Cond.Gt (B.movi b 1L) 2L in
      B.sel b p (B.movi b 5L) (B.movi b 9L));
  check_compute "srai negative" (-2L) (fun b ->
      B.srai b (B.movi b (-8L)) 2L);
  check_compute "shri negative" 0x3FFFFFFFFFFFFFFEL (fun b ->
      B.shri b (B.movi b (-8L)) 2L)

let test_float_programs () =
  check_compute "float pipeline" 7L (fun b ->
      let x = B.fmovi b 2.5 in
      let y = B.fmovi b 0.5 in
      let s = B.fadd b x y in
      (* 3.0 * 2.5 = 7.5, truncates to 7 *)
      let m = B.fmul b s x in
      B.ftoi b m);
  check_compute "itof/ftoi roundtrip" (-42L) (fun b ->
      B.ftoi b (B.itof b (B.movi b (-42L))));
  check_compute "fcmp feeds sel" 1L (fun b ->
      let p = B.fcmp b Cond.Lt (B.fmovi b 1.0) (B.fmovi b 2.0) in
      B.sel b p (B.movi b 1L) (B.movi b 0L))

let test_memory_program () =
  check_compute "store/load roundtrip" 77L (fun b ->
      let base = B.movi b 0x100L in
      let v = B.movi b 77L in
      B.st b Opcode.W8 ~value:v ~base 0L;
      B.ld b Opcode.W8 base 0L);
  check_compute "byte store truncates" 0x34L (fun b ->
      let base = B.movi b 0x100L in
      let v = B.movi b 0x1234L in
      B.st b Opcode.W1 ~value:v ~base 0L;
      B.ld b Opcode.W1 base 0L)

let test_trap_programs () =
  check_traps "oob load" (fun b ->
      let base = B.movi b 0x7FFFFFFFL in
      B.ld b Opcode.W8 base 0L);
  check_traps "misaligned load" (fun b ->
      let base = B.movi b 0x101L in
      B.ld b Opcode.W8 base 0L);
  check_traps "div by zero" (fun b ->
      B.div b (B.movi b 1L) (B.movi b 0L))

let test_call_semantics () =
  let callee =
    let x = Reg.gp 0 and y = Reg.gp 1 in
    let b =
      B.create ~name:"addmul" ~params:[ x; y ] ~ret_cls:(Some Reg.Gp) ()
    in
    let s = B.add b x y in
    let r = B.muli b s 10L in
    B.ret b ~value:r ();
    B.finish b
  in
  let b = B.create ~name:"main" () in
  let r = B.gp b in
  B.call b ~dst:r "addmul" [ B.movi b 3L; B.movi b 4L ];
  let out = B.movi b 0x40L in
  B.st b Opcode.W8 ~value:r ~base:out 0L;
  let zero = B.movi b 0L in
  B.halt b ~code:zero ();
  let p =
    Program.make
      ~funcs:[ B.finish b; callee ]
      ~entry:"main" ~mem_size:(1 lsl 16) ~output_base:0x40 ~output_len:8 ()
  in
  Casted_ir.Validate.check_exn p;
  Alcotest.(check int64) "call result" 70L (out64 (run_noed p))

let test_recursion_depth_limited () =
  (* Infinite recursion must hit the stack-overflow trap, not loop. *)
  let rec_f =
    let b = B.create ~name:"f" () in
    B.call b "f" [];
    B.ret b ();
    B.finish b
  in
  let b = B.create ~name:"main" () in
  B.call b "f" [];
  B.halt b ();
  let p =
    Program.make ~funcs:[ B.finish b; rec_f ] ~entry:"main"
      ~mem_size:(1 lsl 12) ()
  in
  let c = Pipeline.compile ~scheme:Scheme.Noed ~issue_width:1 ~delay:1 p in
  match (Simulator.run c.Pipeline.schedule).Outcome.termination with
  | Outcome.Trapped Trap.Stack_overflow -> ()
  | t ->
      Alcotest.failf "expected stack overflow, got %a" Outcome.pp_termination t

let test_exit_code () =
  let p =
    program_of (fun b ->
        let base = B.movi b 0x40L in
        let v = B.movi b 123L in
        B.st b Opcode.W8 ~value:v ~base 0L)
  in
  (* program_of halts with code 0. *)
  let r = run_noed p in
  Alcotest.(check int) "exit code" 0 r.Outcome.exit_code;
  Alcotest.(check int64) "output" 123L (out64 r)

let test_fuel_timeout () =
  let b = B.create ~name:"main" () in
  B.br b "spin";
  B.block b "spin";
  B.br b "spin";
  let p = Program.make ~funcs:[ B.finish b ] ~entry:"main" () in
  let c = Pipeline.compile ~scheme:Scheme.Noed ~issue_width:1 ~delay:1 p in
  match (Simulator.run ~fuel:1000 c.Pipeline.schedule).Outcome.termination with
  | Outcome.Timeout -> ()
  | t -> Alcotest.failf "expected timeout, got %a" Outcome.pp_termination t

(* --- timing --- *)

let test_cycles_lower_bound () =
  (* IPC can never exceed total issue slots. *)
  List.iter
    (fun w ->
      let p = w.Casted_workloads.Workload.build Casted_workloads.Workload.Fault in
      List.iter
        (fun (scheme, issue, clusters) ->
          let c = Pipeline.compile ~scheme ~issue_width:issue ~delay:1 p in
          let r = Simulator.run c.Pipeline.schedule in
          let slots = issue * clusters in
          Alcotest.(check bool)
            (w.Casted_workloads.Workload.name ^ " ipc bound")
            true
            (r.Outcome.dyn_insns <= r.Outcome.cycles * slots))
        [ (Scheme.Noed, 1, 1); (Scheme.Sced, 2, 1); (Scheme.Casted, 2, 2) ])
    Casted_workloads.Registry.all

let test_delay_increases_dced_cycles () =
  (* A dependent chain split across cores must slow down as the
     inter-core delay grows. *)
  let p =
    program_of (fun b ->
        let base = B.movi b 0x100L in
        B.counted_loop b ~from:0L ~until:32L (fun b _ ->
            let v = B.ld b Opcode.W8 base 0L in
            let w = B.addi b v 1L in
            B.st b Opcode.W8 ~value:w ~base 0L))
  in
  let cycles delay =
    (run_scheme ~issue_width:2 ~delay Scheme.Dced p).Outcome.cycles
  in
  let c1 = cycles 1 and c4 = cycles 4 in
  Alcotest.(check bool) "delay hurts DCED" true (c4 > c1)

let test_issue_width_helps_sced () =
  let w = Option.get (Casted_workloads.Registry.find "cjpeg") in
  let p = w.Casted_workloads.Workload.build Casted_workloads.Workload.Fault in
  let cycles issue = (run_scheme ~issue_width:issue Scheme.Sced p).Outcome.cycles in
  Alcotest.(check bool) "wider is faster" true (cycles 4 < cycles 1)

let test_deterministic_runs () =
  let w = Option.get (Casted_workloads.Registry.find "h263enc") in
  let p = w.Casted_workloads.Workload.build Casted_workloads.Workload.Fault in
  let r1 = run_scheme Scheme.Casted p in
  let r2 = run_scheme Scheme.Casted p in
  Alcotest.(check int) "same cycles" r1.Outcome.cycles r2.Outcome.cycles;
  Alcotest.(check int) "same dyn" r1.Outcome.dyn_insns r2.Outcome.dyn_insns;
  Alcotest.(check string) "same output" r1.Outcome.output r2.Outcome.output

let suite =
  ( "simulator",
    [
      prop_alu_matches_ocaml;
      prop_shifts_mod_64;
      case "division edge cases" test_division_edge_cases;
      case "memory widths (little-endian)" test_memory_widths;
      case "memory sign extension" test_memory_sign_extension;
      case "memory bounds and alignment" test_memory_bounds_and_alignment;
      case "integer programs" test_arith_programs;
      case "float programs" test_float_programs;
      case "memory programs" test_memory_program;
      case "trapping programs" test_trap_programs;
      case "calls and returns" test_call_semantics;
      case "recursion depth limited" test_recursion_depth_limited;
      case "exit codes and output region" test_exit_code;
      case "fuel timeout" test_fuel_timeout;
      case "IPC never exceeds issue slots" test_cycles_lower_bound;
      case "delay slows a split dependent chain" test_delay_increases_dced_cycles;
      case "issue width speeds SCED up" test_issue_width_helps_sced;
      case "simulation is deterministic" test_deterministic_runs;
    ] )
