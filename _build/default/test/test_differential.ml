open Helpers

(* Random structured programs, exercised differentially: whatever the
   unhardened single-core machine computes, every scheme, the optimiser
   and the recovery transform must compute too. This is the strongest
   correctness net in the suite — it explores register reuse, loop
   nesting, predicated selects and aliased memory patterns no
   hand-written case covers. *)

type stmt =
  | Binop of int * int * int * int  (* kind, dst, src1, src2 *)
  | Immop of int * int * int * int64  (* kind, dst, src, imm *)
  | Select of int * int * int * int * int64  (* dst, cmp_src, a, b, threshold *)
  | Store of int * int  (* slot, src *)
  | Load of int * int  (* dst, slot *)
  | If_ of int * int64 * stmt list * stmt list  (* src, threshold, arms *)
  | Loop of int * stmt list  (* iterations 1..4, body *)

let n_regs = 6
let n_slots = 8
let mem_base = 0x100L

let stmt_gen =
  let open QCheck2.Gen in
  let reg = int_bound (n_regs - 1) in
  let slot = int_bound (n_slots - 1) in
  let imm = map Int64.of_int (int_range (-50) 50) in
  sized @@ fix (fun self size ->
      let leaf =
        oneof
          [
            map3 (fun k d (a, b) -> Binop (k, d, a, b))
              (int_bound 5) reg (pair reg reg);
            map3 (fun k d (s, i) -> Immop (k, d, s, i))
              (int_bound 4) reg (pair reg imm);
            map3 (fun d (c, t) (a, b) -> Select (d, c, a, b, t))
              reg (pair reg imm) (pair reg reg);
            map2 (fun s r -> Store (s, r)) slot reg;
            map2 (fun d s -> Load (d, s)) reg slot;
          ]
      in
      if size <= 1 then leaf
      else
        frequency
          [
            (6, leaf);
            ( 1,
              map3
                (fun (s, t) thens elses -> If_ (s, t, thens, elses))
                (pair reg imm)
                (list_size (int_range 1 4) (self (size / 2)))
                (list_size (int_range 1 4) (self (size / 2))) );
            ( 1,
              map2
                (fun n body -> Loop (n, body))
                (int_range 1 4)
                (list_size (int_range 1 4) (self (size / 2))) );
          ])

let program_gen = QCheck2.Gen.(list_size (int_range 3 25) stmt_gen)

(* Emit the recipe through the builder. All memory accesses go to fixed
   aligned slots, so no run can trap. *)
let emit_program stmts =
  let b = B.create ~name:"main" () in
  let base = B.movi b mem_base in
  let regs = Array.init n_regs (fun i -> B.movi b (Int64.of_int (i * 7))) in
  let rec emit_stmt = function
    | Binop (kind, d, a, b') ->
        let dst = regs.(d) and x = regs.(a) and y = regs.(b') in
        let f =
          match kind with
          | 0 -> B.add
          | 1 -> B.sub
          | 2 -> B.mul
          | 3 -> B.and_
          | 4 -> B.or_
          | _ -> B.xor
        in
        ignore (f b ~dst x y)
    | Immop (kind, d, s, imm) ->
        let dst = regs.(d) and x = regs.(s) in
        let f =
          match kind with
          | 0 -> B.addi
          | 1 -> B.muli
          | 2 -> B.xori
          | 3 -> fun b ?dst x _ -> B.shri b ?dst x 3L
          | _ -> fun b ?dst x _ -> B.srai b ?dst x 2L
        in
        ignore (f b ~dst x imm)
    | Select (d, c, x, y, t) ->
        let p = B.cmpi b Cond.Lt regs.(c) t in
        ignore (B.sel b ~dst:regs.(d) p regs.(x) regs.(y))
    | Store (slot, r) ->
        B.st b Opcode.W8 ~value:regs.(r) ~base (Int64.of_int (8 * slot))
    | Load (d, slot) ->
        ignore (B.ld b ~dst:regs.(d) Opcode.W8 base (Int64.of_int (8 * slot)))
    | If_ (s, t, thens, elses) ->
        let p = B.cmpi b Cond.Ge regs.(s) t in
        B.if_ b p
          (fun _ -> List.iter emit_stmt thens)
          (fun _ -> List.iter emit_stmt elses)
    | Loop (n, body) ->
        B.counted_loop b ~from:0L ~until:(Int64.of_int n) (fun _ _ ->
            List.iter emit_stmt body)
  in
  List.iter emit_stmt stmts;
  (* Make every register and memory slot observable. *)
  let out = B.movi b 0x40L in
  Array.iteri
    (fun i r -> B.st b Opcode.W8 ~value:r ~base:out (Int64.of_int (8 * i)))
    regs;
  let acc = B.movi b 0L in
  for slot = 0 to n_slots - 1 do
    let v = B.ld b Opcode.W8 base (Int64.of_int (8 * slot)) in
    ignore (B.xor b ~dst:acc acc v)
  done;
  B.st b Opcode.W8 ~value:acc ~base:out (Int64.of_int (8 * n_regs));
  let zero = B.movi b 0L in
  B.halt b ~code:zero ();
  Program.make ~funcs:[ B.finish b ] ~entry:"main" ~mem_size:(1 lsl 16)
    ~output_base:0x40
    ~output_len:(8 * (n_regs + 1))
    ()

let reference p = (run_noed ~issue_width:1 p).Outcome.output

let must_match name p output =
  let r = output in
  let golden = reference p in
  if not (String.equal golden r) then
    QCheck2.Test.fail_reportf "%s diverged from NOED" name;
  true

let prop_schemes_agree =
  qcheck ~count:120 "all schemes compute the reference output" program_gen
    (fun stmts ->
      let p = emit_program stmts in
      Casted_ir.Validate.check_exn p;
      List.for_all
        (fun (scheme, issue, delay) ->
          let c = Pipeline.compile ~scheme ~issue_width:issue ~delay p in
          Casted_ir.Validate.check_exn c.Pipeline.program;
          let r = Simulator.run c.Pipeline.schedule in
          must_match (Scheme.name scheme) p r.Outcome.output)
        [
          (Scheme.Sced, 1, 1); (Scheme.Sced, 4, 1); (Scheme.Dced, 2, 3);
          (Scheme.Casted, 1, 1); (Scheme.Casted, 2, 4); (Scheme.Casted, 3, 2);
        ])

let prop_optimiser_agrees =
  qcheck ~count:120 "optimised programs compute the reference output"
    program_gen (fun stmts ->
      let p = emit_program stmts in
      let optimised, _ =
        Casted_opt.Pass.run_to_fixpoint Casted_opt.Pass.standard p
      in
      Casted_ir.Validate.check_exn optimised;
      must_match "opt" p (run_noed optimised).Outcome.output)

let prop_optimised_hardened_agrees =
  qcheck ~count:60 "optimise-then-harden computes the reference output"
    program_gen (fun stmts ->
      let p = emit_program stmts in
      let c =
        Pipeline.compile ~optimize:true ~scheme:Scheme.Casted ~issue_width:2
          ~delay:2 p
      in
      must_match "opt+casted" p (Simulator.run c.Pipeline.schedule).Outcome.output)

let prop_recovery_agrees =
  qcheck ~count:60 "triplicated programs compute the reference output"
    program_gen (fun stmts ->
      let p = emit_program stmts in
      let hardened, _ =
        Casted_detect.Recover.program Options.default p
      in
      Casted_ir.Validate.check_exn hardened;
      let config = Config.dual_core ~issue_width:2 ~delay:2 in
      let s =
        Casted_sched.List_scheduler.schedule_program config
          (Casted_sched.Assign.Adaptive Casted_sched.Bug.default_options)
          hardened
      in
      must_match "casted-r" p (Simulator.run s).Outcome.output)

let prop_timing_independent_of_values =
  (* Running the same schedule twice gives identical cycle counts —
     the simulator has no hidden state between runs. *)
  qcheck ~count:40 "simulation is repeatable" program_gen (fun stmts ->
      let p = emit_program stmts in
      let c = Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 p in
      let a = Simulator.run c.Pipeline.schedule in
      let b = Simulator.run c.Pipeline.schedule in
      a.Outcome.cycles = b.Outcome.cycles
      && String.equal a.Outcome.output b.Outcome.output)

let suite =
  ( "differential",
    [
      prop_schemes_agree;
      prop_optimiser_agrees;
      prop_optimised_hardened_agrees;
      prop_recovery_agrees;
      prop_timing_independent_of_values;
    ] )
