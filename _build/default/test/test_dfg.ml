open Helpers
module Dfg = Casted_sched.Dfg

let latency i = Latency.of_op Latency.default i.Insn.op

let block_of body =
  let p = program_of body in
  List.hd (Program.entry_func p).Func.blocks

let edge_exists dfg ~src ~dst kind =
  List.exists
    (fun (e : Dfg.edge) -> e.Dfg.src = src && e.Dfg.kind = kind)
    dfg.Dfg.preds.(dst)

(* Index of an instruction within the DFG by a predicate. *)
let find_idx dfg pred =
  let n = Dfg.num_nodes dfg in
  let rec go i =
    if i >= n then Alcotest.fail "instruction not found in DFG"
    else if pred dfg.Dfg.insns.(i) then i
    else go (i + 1)
  in
  go 0

let test_raw_edge () =
  let block =
    block_of (fun b ->
        let x = B.movi b 1L in
        let _y = B.addi b x 2L in
        ())
  in
  let dfg = Dfg.build ~latency block in
  (* movi(0) -> addi(1) carries a Data edge with movi's latency. *)
  Alcotest.(check bool) "raw edge" true (edge_exists dfg ~src:0 ~dst:1 Dfg.Data)

let test_war_waw_edges () =
  let block =
    block_of (fun b ->
        let x = B.movi b 1L in
        let _use = B.addi b x 1L in
        (* overwrite x: WAR from the addi, WAW from the movi *)
        let (_ : Reg.t) = B.movi b ~dst:x 2L in
        ())
  in
  let dfg = Dfg.build ~latency block in
  Alcotest.(check bool) "war" true (edge_exists dfg ~src:1 ~dst:2 Dfg.Anti);
  Alcotest.(check bool) "waw" true (edge_exists dfg ~src:0 ~dst:2 Dfg.Output)

let test_memory_ordering () =
  let block =
    block_of (fun b ->
        let base = B.movi b 0x100L in
        let v = B.movi b 7L in
        let _l1 = B.ld b Opcode.W8 base 0L in
        B.st b Opcode.W8 ~value:v ~base 8L;
        let _l2 = B.ld b Opcode.W8 base 16L in
        B.st b Opcode.W8 ~value:v ~base 24L;
        ())
  in
  let dfg = Dfg.build ~latency block in
  (* Indices: 0 movi, 1 movi, 2 ld, 3 st, 4 ld, 5 st. *)
  Alcotest.(check bool) "load -> store" true
    (edge_exists dfg ~src:2 ~dst:3 Dfg.Mem);
  Alcotest.(check bool) "store -> load" true
    (edge_exists dfg ~src:3 ~dst:4 Dfg.Mem);
  Alcotest.(check bool) "store -> store" true
    (edge_exists dfg ~src:3 ~dst:5 Dfg.Mem);
  (* Two loads with no intervening store are unordered. *)
  Alcotest.(check bool) "load || load" false
    (edge_exists dfg ~src:2 ~dst:4 Dfg.Mem)

let test_terminator_is_universal_sink () =
  let block =
    block_of (fun b ->
        ignore (B.movi b 1L);
        ignore (B.movi b 2L))
  in
  let dfg = Dfg.build ~latency block in
  let n = Dfg.num_nodes dfg in
  for i = 0 to n - 2 do
    Alcotest.(check bool) "ctrl edge to terminator" true
      (edge_exists dfg ~src:i ~dst:(n - 1) Dfg.Ctrl)
  done

let test_check_edge () =
  (* Build a hardened block and verify each Chk has an edge to the
     instruction it protects. *)
  let p =
    program_of (fun b ->
        let v = B.movi b 5L in
        let base = B.movi b 0x100L in
        B.st b Opcode.W8 ~value:v ~base 0L)
  in
  let hardened, _ = Casted_detect.Transform.program Options.default p in
  let block = List.hd (Program.entry_func hardened).Func.blocks in
  let dfg = Dfg.build ~latency block in
  let chk_idx =
    find_idx dfg (fun i -> Opcode.is_check i.Insn.op)
  in
  let protected_id = dfg.Dfg.insns.(chk_idx).Insn.protects in
  let prot_idx = find_idx dfg (fun i -> i.Insn.id = protected_id) in
  Alcotest.(check bool) "check edge present" true
    (edge_exists dfg ~src:chk_idx ~dst:prot_idx Dfg.Check)

let test_heights_monotone () =
  let block =
    block_of (fun b ->
        let x = B.movi b 1L in
        let y = B.addi b x 1L in
        let _z = B.addi b y 1L in
        ())
  in
  let dfg = Dfg.build ~latency block in
  let h = Dfg.heights dfg in
  (* Heights strictly decrease along the chain. *)
  Alcotest.(check bool) "h0 > h1" true (h.(0) > h.(1));
  Alcotest.(check bool) "h1 > h2" true (h.(1) > h.(2));
  Alcotest.(check bool) "critical path is max" true
    (Dfg.critical_path dfg = Array.fold_left max 0 h)

let test_edges_point_forward () =
  (* Edges may only go from earlier to later program positions, which is
     what makes the one-pass height computation valid. *)
  List.iter
    (fun w ->
      let p = w.Casted_workloads.Workload.build Casted_workloads.Workload.Fault in
      let hardened, _ = Casted_detect.Transform.program Options.default p in
      List.iter
        (fun f ->
          List.iter
            (fun blk ->
              let dfg = Dfg.build ~latency blk in
              Array.iteri
                (fun i succs ->
                  List.iter
                    (fun (e : Dfg.edge) ->
                      if e.Dfg.dst <= i then
                        Alcotest.failf "%s: backward edge %d -> %d"
                          w.Casted_workloads.Workload.name i e.Dfg.dst)
                    succs)
                dfg.Dfg.succs)
            f.Func.blocks)
        hardened.Program.funcs)
    Casted_workloads.Registry.all

let test_delay_kinds () =
  Alcotest.(check bool) "data pays" true (Dfg.kind_pays_delay Dfg.Data);
  Alcotest.(check bool) "check pays" true (Dfg.kind_pays_delay Dfg.Check);
  Alcotest.(check bool) "anti free" false (Dfg.kind_pays_delay Dfg.Anti);
  Alcotest.(check bool) "mem free" false (Dfg.kind_pays_delay Dfg.Mem);
  Alcotest.(check bool) "ctrl free" false (Dfg.kind_pays_delay Dfg.Ctrl)

let suite =
  ( "dfg",
    [
      case "RAW edge" test_raw_edge;
      case "WAR and WAW edges" test_war_waw_edges;
      case "memory ordering" test_memory_ordering;
      case "terminator is the universal sink" test_terminator_is_universal_sink;
      case "check edges (Algorithm 1 output)" test_check_edge;
      case "critical-path heights" test_heights_monotone;
      case "edges point forward in all workloads" test_edges_point_forward;
      case "which kinds pay the inter-cluster delay" test_delay_kinds;
    ] )
