open Helpers
module Level = Casted_cache.Level
module Hierarchy = Casted_cache.Hierarchy

let test_cold_miss_then_hit () =
  let c = Level.create ~size_bytes:1024 ~block_bytes:64 ~assoc:2 in
  (match Level.access c ~addr:0 ~write:false with
  | Level.Miss _ -> ()
  | Level.Hit -> Alcotest.fail "cold access must miss");
  (match Level.access c ~addr:32 ~write:false with
  | Level.Hit -> ()
  | Level.Miss _ -> Alcotest.fail "same block must hit");
  Alcotest.(check int) "hits" 1 (Level.hits c);
  Alcotest.(check int) "misses" 1 (Level.misses c)

let test_lru_eviction () =
  (* 2-way set: fill both ways, touch the first, insert a third; the
     second (least recently used) must be evicted. *)
  let c = Level.create ~size_bytes:128 ~block_bytes:64 ~assoc:2 in
  (* One set only: 128 / (64*2) = 1. *)
  Alcotest.(check int) "one set" 1 (Level.num_sets c);
  let a = 0 and b = 64 and d = 128 in
  ignore (Level.access c ~addr:a ~write:false);
  ignore (Level.access c ~addr:b ~write:false);
  ignore (Level.access c ~addr:a ~write:false);
  (* refresh a *)
  ignore (Level.access c ~addr:d ~write:false);
  (* evicts b *)
  Alcotest.(check bool) "a still present" true (Level.probe c ~addr:a);
  Alcotest.(check bool) "b evicted" false (Level.probe c ~addr:b);
  Alcotest.(check bool) "d present" true (Level.probe c ~addr:d)

let test_dirty_writeback () =
  let c = Level.create ~size_bytes:128 ~block_bytes:64 ~assoc:1 in
  ignore (Level.access c ~addr:0 ~write:true);
  (* dirty *)
  (match Level.access c ~addr:128 ~write:false with
  | Level.Miss { evicted_dirty = true } -> ()
  | _ -> Alcotest.fail "evicting a dirty block must report it");
  Alcotest.(check int) "writeback counted" 1 (Level.writebacks c);
  (* Clean eviction reports false. *)
  match Level.access c ~addr:256 ~write:false with
  | Level.Miss { evicted_dirty = false } -> ()
  | _ -> Alcotest.fail "clean eviction"

let test_bad_geometry_rejected () =
  (match Level.create ~size_bytes:100 ~block_bytes:64 ~assoc:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-divisible size");
  match Level.create ~size_bytes:120 ~block_bytes:60 ~assoc:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-power-of-2 block"

(* Reference model: a per-set list, most recent first. *)
let reference_model ~sets ~assoc accesses =
  let table = Array.make sets [] in
  List.map
    (fun (set, tag) ->
      let line = table.(set) in
      let hit = List.mem tag line in
      let line' = tag :: List.filter (fun t -> t <> tag) line in
      table.(set) <- (if List.length line' > assoc then
                        List.filteri (fun i _ -> i < assoc) line'
                      else line');
      hit)
    accesses

let prop_matches_reference =
  let gen =
    QCheck2.Gen.(list_size (int_bound 300) (pair (int_bound 3) (int_bound 7)))
  in
  qcheck ~count:100 "level matches a reference LRU model" gen
    (fun accesses ->
      let sets = 4 and assoc = 2 and block = 64 in
      let c =
        Level.create ~size_bytes:(sets * assoc * block) ~block_bytes:block
          ~assoc
      in
      let got =
        List.map
          (fun (set, tag) ->
            let addr = ((tag * sets) + set) * block in
            match Level.access c ~addr ~write:false with
            | Level.Hit -> true
            | Level.Miss _ -> false)
          accesses
      in
      got = reference_model ~sets ~assoc accesses)

let test_hierarchy_latencies () =
  let h = Hierarchy.create Config.itanium2_cache in
  (* Cold: full miss -> memory latency. *)
  Alcotest.(check int) "cold miss" 150
    (Hierarchy.access h ~addr:0 ~write:false);
  (* Immediately after: L1 hit. *)
  Alcotest.(check int) "l1 hit" 1 (Hierarchy.access h ~addr:0 ~write:false);
  let s = Hierarchy.stats h in
  Alcotest.(check int) "l1 hits" 1 s.Hierarchy.l1_hits;
  Alcotest.(check int) "l1 misses" 1 s.Hierarchy.l1_misses;
  Alcotest.(check int) "l3 misses" 1 s.Hierarchy.l3_misses

let test_hierarchy_l2_hit () =
  let h = Hierarchy.create Config.itanium2_cache in
  (* Load enough distinct L1 sets to evict address 0 from L1 but not
     from L2 (L1 = 16K/64B/4-way = 64 sets). Touch 5 conflicting blocks
     in set 0: stride = 64 sets * 64 B = 4096. *)
  ignore (Hierarchy.access h ~addr:0 ~write:false);
  for i = 1 to 5 do
    ignore (Hierarchy.access h ~addr:(i * 4096) ~write:false)
  done;
  let lat = Hierarchy.access h ~addr:0 ~write:false in
  Alcotest.(check int) "served by L2" 5 lat

let test_perfect_hierarchy () =
  let h = Hierarchy.perfect Config.itanium2_cache in
  Alcotest.(check int) "always l1" 1 (Hierarchy.access h ~addr:0 ~write:false);
  Alcotest.(check int) "always l1 (2)" 1
    (Hierarchy.access h ~addr:999936 ~write:false)

let suite =
  ( "cache",
    [
      case "cold miss then hit" test_cold_miss_then_hit;
      case "LRU eviction order" test_lru_eviction;
      case "dirty writeback" test_dirty_writeback;
      case "bad geometry rejected" test_bad_geometry_rejected;
      prop_matches_reference;
      case "hierarchy latencies (Table I)" test_hierarchy_latencies;
      case "L2 hit after L1 eviction" test_hierarchy_l2_hit;
      case "perfect cache ablation" test_perfect_hierarchy;
    ] )
