(* Quickstart: build a small program with the IR builder, harden it with
   the CASTED pipeline, and simulate it.

   Run with: dune exec examples/quickstart.exe *)

module B = Casted_ir.Builder
module Opcode = Casted_ir.Opcode
module Program = Casted_ir.Program
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Simulator = Casted_sim.Simulator
module Outcome = Casted_sim.Outcome

(* A toy kernel: sum of squares of 100 integers stored in memory,
   written back to address 0x40. *)
let program () =
  let b = B.create ~name:"main" () in
  let base = B.movi b 0x1000L in
  let acc = B.movi b 0L in
  B.counted_loop b ~from:0L ~until:100L (fun b i ->
      let off = B.muli b i 8L in
      let at = B.add b base off in
      let v = B.ld b Opcode.W8 at 0L in
      let sq = B.mul b v v in
      let (_ : Casted_ir.Reg.t) = B.add b ~dst:acc acc sq in
      ());
  let out = B.movi b 0x40L in
  B.st b Opcode.W8 ~value:acc ~base:out 0L;
  let zero = B.movi b 0L in
  B.halt b ~code:zero ();
  let data =
    Casted_workloads.Gen.le64 (List.init 100 (fun i -> Int64.of_int (i * 3)))
  in
  Program.make ~funcs:[ B.finish b ] ~entry:"main" ~mem_size:(1 lsl 16)
    ~data:[ (0x1000, data) ]
    ~output_base:0x40 ~output_len:8 ()

let () =
  let program = program () in
  Casted_ir.Validate.check_exn program;
  Format.printf "--- original program ---@.%a@.@." Program.pp program;
  (* Harden and schedule for a 2-cluster, 2-wide machine with a 2-cycle
     inter-cluster delay. *)
  let compiled =
    Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 program
  in
  Format.printf "--- hardened program (CASTED) ---@.%a@.@." Program.pp
    compiled.Pipeline.program;
  Format.printf "instrumentation: %a@.@." Casted_detect.Transform.pp_stats
    compiled.Pipeline.stats;
  (* Simulate. *)
  let r = Simulator.run compiled.Pipeline.schedule in
  Format.printf "result: %a@." Outcome.pp r;
  (* Compare against the unprotected baseline. *)
  let baseline =
    Pipeline.compile ~scheme:Scheme.Noed ~issue_width:2 ~delay:2 program
  in
  let r0 = Simulator.run baseline.Pipeline.schedule in
  Format.printf "NOED baseline: %a@." Outcome.pp r0;
  Format.printf "slowdown: %.2fx, outputs %s@."
    (float_of_int r.Outcome.cycles /. float_of_int r0.Outcome.cycles)
    (if String.equal r.Outcome.output r0.Outcome.output then "match"
     else "DIFFER")
