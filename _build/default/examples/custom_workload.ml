(* Defining your own workload: an 8x8 integer matrix-multiply kernel,
   plugged into the same sweep machinery the paper benchmarks use.

   Run with: dune exec examples/custom_workload.exe *)

module B = Casted_ir.Builder
module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Program = Casted_ir.Program
module W = Casted_workloads.Workload
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Simulator = Casted_sim.Simulator
module Outcome = Casted_sim.Outcome

let n = 16 (* matrix dimension *)
let a_base = 0x1000
let b_base = a_base + (n * n * 8)
let c_base = b_base + (n * n * 8)

let build (_ : W.size) =
  let b = B.create ~name:"main" () in
  let am = B.movi b (Int64.of_int a_base) in
  let bm = B.movi b (Int64.of_int b_base) in
  let cm = B.movi b (Int64.of_int c_base) in
  let acc_chk = B.movi b 0L in
  B.counted_loop b ~name:"i" ~from:0L ~until:(Int64.of_int n) (fun b i ->
      let arow_off = B.muli b i (Int64.of_int (8 * n)) in
      let arow = B.add b am arow_off in
      let crow = B.add b cm arow_off in
      B.counted_loop b ~name:"j" ~from:0L ~until:(Int64.of_int n) (fun b j ->
          let j8 = B.muli b j 8L in
          let bcol = B.add b bm j8 in
          let sum = B.movi b 0L in
          B.counted_loop b ~name:"k" ~from:0L ~until:(Int64.of_int n)
            (fun b k ->
              let k8 = B.muli b k 8L in
              let a_at = B.add b arow k8 in
              let av = B.ld b Opcode.W8 a_at 0L in
              let brow_off = B.muli b k (Int64.of_int (8 * n)) in
              let b_at = B.add b bcol brow_off in
              let bv = B.ld b Opcode.W8 b_at 0L in
              let p = B.mul b av bv in
              let (_ : Reg.t) = B.add b ~dst:sum sum p in
              ());
          let c_at = B.add b crow j8 in
          B.st b Opcode.W8 ~value:sum ~base:c_at 0L;
          let (_ : Reg.t) = B.add b ~dst:acc_chk acc_chk sum in
          ()));
  let out = B.movi b (Int64.of_int (c_base + (n * n * 8))) in
  B.st b Opcode.W8 ~value:acc_chk ~base:out 0L;
  let zero = B.movi b 0L in
  B.halt b ~code:zero ();
  let rng = Casted_workloads.Gen.create ~seed:42 in
  let mat () =
    Casted_workloads.Gen.le64
      (List.init (n * n) (fun _ ->
           Int64.of_int (Casted_workloads.Gen.int rng 1000)))
  in
  Program.make ~funcs:[ B.finish b ] ~entry:"main" ~mem_size:(1 lsl 18)
    ~data:[ (a_base, mat ()); (b_base, mat ()) ]
    ~output_base:c_base
    ~output_len:((n * n * 8) + 8)
    ()

let workload =
  {
    W.name = "matmul";
    suite = "custom";
    description = Printf.sprintf "%dx%d integer matrix multiply" n n;
    build;
  }

let () =
  let program = workload.W.build W.Fault in
  Casted_ir.Validate.check_exn program;
  Format.printf "benchmark: %s (%s)@.@." workload.W.name
    workload.W.description;
  Format.printf "%-8s" "issue";
  List.iter (fun s -> Format.printf "  %-7s" (Scheme.name s)) Scheme.all;
  Format.printf "@.";
  List.iter
    (fun issue ->
      Format.printf "%-8d" issue;
      let noed = ref 0 in
      List.iter
        (fun scheme ->
          let compiled =
            Pipeline.compile ~scheme ~issue_width:issue ~delay:2 program
          in
          let r = Simulator.run compiled.Pipeline.schedule in
          if scheme = Scheme.Noed then noed := r.Outcome.cycles;
          Format.printf "  %-7.2f"
            (float_of_int r.Outcome.cycles /. float_of_int !noed))
        Scheme.all;
      Format.printf "@.")
    [ 1; 2; 3; 4 ]
