(* The optimisation pipeline and the textual assembly format, together:
   build a deliberately wasteful kernel, optimise it, show the hardened
   assembly, and demonstrate why the role-blind late passes must not run
   after the detection pass (paper SS IV-A).

   Run with: dune exec examples/opt_and_asm.exe *)

module B = Casted_ir.Builder
module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Program = Casted_ir.Program
module Asm = Casted_ir.Asm
module Pass = Casted_opt.Pass
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Transform = Casted_detect.Transform
module Options = Casted_detect.Options
module Simulator = Casted_sim.Simulator
module Outcome = Casted_sim.Outcome
module Montecarlo = Casted_sim.Montecarlo

(* Dead code, redundant expressions, foldable constants, a copy chain
   and a multiply by a power of two — one of everything the scalar
   passes clean up. *)
let wasteful () =
  let b = B.create ~name:"main" () in
  let base = B.movi b 0x100L in
  let k1 = B.movi b 21L in
  let k2 = B.movi b 2L in
  let answer = B.mul b k1 k2 in
  (* constant-foldable *)
  let _dead = B.mul b answer answer in
  (* dead *)
  let copy = B.mov b answer in
  (* copy chain *)
  let x8 = B.muli b copy 8L in
  (* strength-reducible *)
  let r1 = B.add b x8 copy in
  let r2 = B.add b x8 copy in
  (* common subexpression *)
  let s = B.add b r1 r2 in
  B.st b Opcode.W8 ~value:s ~base 0L;
  let out = B.movi b 0x40L in
  let v = B.ld b Opcode.W8 base 0L in
  B.st b Opcode.W8 ~value:v ~base:out 0L;
  let zero = B.movi b 0L in
  B.halt b ~code:zero ();
  Program.make ~funcs:[ B.finish b ] ~entry:"main" ~mem_size:(1 lsl 16)
    ~output_base:0x40 ~output_len:8 ()

let () =
  let program = wasteful () in
  Format.printf "--- input ---@.%s@." (Asm.print program);
  let optimised, counts = Pass.run_program Pass.standard program in
  Format.printf "--- after %s ---@.%s@."
    (String.concat ", "
       (List.map (fun (n, c) -> Printf.sprintf "%s:%d" n c) counts))
    (Asm.print optimised);
  (* Optimise, then harden, as the paper's pass pipeline does (Fig. 5). *)
  let compiled =
    Pipeline.compile ~optimize:true ~scheme:Scheme.Casted ~issue_width:2
      ~delay:2 program
  in
  Format.printf "--- optimised + hardened (CASTED) ---@.%s@."
    (Asm.print compiled.Pipeline.program);
  let r = Simulator.run compiled.Pipeline.schedule in
  Format.printf "runs: %a@.@." Outcome.pp r;
  (* What would happen if the late passes ran after hardening without
     role awareness, as the paper warns (SS IV-A)? *)
  let hardened, _ = Transform.program Options.default program in
  let destroyed, _ =
    Pass.run_to_fixpoint ~preserve_detection:false ~max_rounds:50
      Pass.standard hardened
  in
  let coverage p =
    let config = Casted_machine.Config.single_core ~issue_width:2 in
    let s =
      Casted_sched.List_scheduler.schedule_program config
        Casted_sched.Assign.Single_cluster p
    in
    Montecarlo.run ~trials:200 s
  in
  Format.printf "hardened coverage:        %a@." Montecarlo.pp
    (coverage hardened);
  Format.printf "after role-blind CSE/DCE: %a@." Montecarlo.pp
    (coverage destroyed);
  Format.printf
    "(the redundant stream was merged away -- this is why the paper \
     disables the late CSE/DCE)@."
