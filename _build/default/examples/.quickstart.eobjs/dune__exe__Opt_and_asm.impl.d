examples/opt_and_asm.ml: Casted_detect Casted_ir Casted_machine Casted_opt Casted_sched Casted_sim Format List Printf String
