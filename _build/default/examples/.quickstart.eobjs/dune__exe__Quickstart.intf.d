examples/quickstart.mli:
