examples/custom_workload.ml: Casted_detect Casted_ir Casted_sim Casted_workloads Format Int64 List Printf
