examples/fault_injection_demo.ml: Casted_detect Casted_sim Casted_workloads Format List Option
