examples/adaptive_vs_fixed.ml: Array Casted_detect Casted_ir Casted_sched Casted_sim Casted_workloads Format Int64 List String
