examples/adaptive_vs_fixed.mli:
