examples/opt_and_asm.mli:
