(* The paper's motivating example (Figs. 2 and 3): the same hardened code
   scheduled under the fixed single-core (SCED), fixed dual-core (DCED)
   and adaptive (CASTED) placements, on two machine shapes.

   On a narrow machine the single core is resource-constrained and the
   dual-core split wins; on a wider machine the inter-core delay makes
   the fixed split lose. CASTED matches (or beats) the better of the two
   on both.

   Run with: dune exec examples/adaptive_vs_fixed.exe *)

module B = Casted_ir.Builder
module Opcode = Casted_ir.Opcode
module Program = Casted_ir.Program
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Schedule = Casted_sched.Schedule
module Simulator = Casted_sim.Simulator
module Outcome = Casted_sim.Outcome

(* A DFG in the spirit of the paper's sample code: a chain of dependent
   ALU operations (A -> B -> C -> D) feeding a store, repeated so the
   schedule is long enough to read. *)
let program () =
  let b = B.create ~name:"main" () in
  let base = B.movi b 0x1000L in
  let out = B.movi b 0x40L in
  B.counted_loop b ~from:0L ~until:64L (fun b i ->
      let off = B.muli b i 8L in
      let at = B.add b base off in
      let a = B.ld b Opcode.W8 at 0L in
      let bb = B.addi b a 17L in
      let c = B.xori b bb 0x5AL in
      let d = B.muli b c 3L in
      B.st b Opcode.W8 ~value:d ~base:out 0L);
  let zero = B.movi b 0L in
  B.halt b ~code:zero ();
  let data = Casted_workloads.Gen.le64 (List.init 64 Int64.of_int) in
  Program.make ~funcs:[ B.finish b ] ~entry:"main" ~mem_size:(1 lsl 16)
    ~data:[ (0x1000, data) ]
    ~output_base:0x40 ~output_len:8 ()

let cycles program scheme ~issue_width ~delay =
  let compiled = Pipeline.compile ~scheme ~issue_width ~delay program in
  (Simulator.run compiled.Pipeline.schedule).Outcome.cycles

let show_config program ~issue_width ~delay =
  Format.printf "@.=== issue width %d, inter-core delay %d ===@." issue_width
    delay;
  let noed = cycles program Scheme.Noed ~issue_width ~delay in
  List.iter
    (fun scheme ->
      let c = cycles program scheme ~issue_width ~delay in
      Format.printf "%-7s %6d cycles  (%.2fx NOED)@." (Scheme.name scheme) c
        (float_of_int c /. float_of_int noed))
    [ Scheme.Noed; Scheme.Sced; Scheme.Dced; Scheme.Casted ]

let () =
  let program = program () in
  (* Example 1 (paper Fig. 2): narrow cores. SCED is resource
     constrained; the dual-core split wins; CASTED matches it. *)
  show_config program ~issue_width:1 ~delay:1;
  (* Example 2 (paper Fig. 3): wider cores, larger delay. SCED has the
     slots it needs while DCED pays the interconnect on every check;
     CASTED adapts back towards single-core placement. *)
  show_config program ~issue_width:2 ~delay:4;
  show_config program ~issue_width:4 ~delay:4;
  (* Show the actual bundle placement of the loop body under CASTED on
     the narrow machine, like the paper's schedule figures. *)
  let compiled =
    Pipeline.compile ~scheme:Scheme.Casted ~issue_width:1 ~delay:1 program
  in
  let fs = Schedule.find_func compiled.Pipeline.schedule "main" in
  Format.printf
    "@.CASTED schedule of the loop body (issue 1, delay 1), cluster 0 || \
     cluster 1:@.";
  Array.iter
    (fun bs ->
      if
        String.length bs.Schedule.label >= 9
        && String.sub bs.Schedule.label 0 9 = "loop_body"
      then Format.printf "%a@." Schedule.pp_block bs)
    fs.Schedule.blocks
