(* Fault injection walkthrough: inject specific single-bit faults into a
   hardened run and watch the checks catch them, then run a small
   Monte-Carlo campaign comparing NOED and CASTED coverage.

   Run with: dune exec examples/fault_injection_demo.exe *)

module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Simulator = Casted_sim.Simulator
module Outcome = Casted_sim.Outcome
module Fault = Casted_sim.Fault
module Montecarlo = Casted_sim.Montecarlo

let () =
  let w = Option.get (Registry.find "h263dec") in
  let program = w.W.build W.Fault in
  let hardened =
    Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 program
  in
  let golden = Simulator.run hardened.Pipeline.schedule in
  Format.printf "golden run: %a@." Outcome.pp golden;
  Format.printf "injection population: %d defining instructions@.@."
    golden.Outcome.dyn_defs;
  (* Inject a handful of hand-picked faults: one early, one in the
     middle, one late; different bits. *)
  let fuel = 10 * golden.Outcome.dyn_insns in
  List.iter
    (fun (target_def, bit) ->
      let fault = { Fault.target_def; def_slot = 0; bit } in
      let r = Simulator.run ~fault ~fuel hardened.Pipeline.schedule in
      Format.printf "%a -> %a (%s)@." Fault.pp fault Outcome.pp_termination
        r.Outcome.termination
        (Montecarlo.class_name (Montecarlo.classify ~golden r)))
    [
      (10, 0); (10, 63);
      (golden.Outcome.dyn_defs / 2, 5);
      (golden.Outcome.dyn_defs / 2, 40);
      (golden.Outcome.dyn_defs - 5, 1);
    ];
  (* Small campaigns: the hardened binary turns silent corruptions into
     detections. *)
  Format.printf "@.Monte-Carlo (200 trials each):@.";
  List.iter
    (fun scheme ->
      let compiled =
        Pipeline.compile ~scheme ~issue_width:2 ~delay:2 program
      in
      let result = Montecarlo.run ~trials:200 compiled.Pipeline.schedule in
      Format.printf "%-7s %a@." (Scheme.name scheme) Montecarlo.pp result)
    [ Scheme.Noed; Scheme.Casted ]
