#!/usr/bin/env python3
"""Guard the simulator's throughput floor.

Usage: perf_check.py BENCH.json scripts/perf_baseline.json

Reads the `sim_throughput` section the bench harness writes (see
EXPERIMENTS.md) and compares each metric named in the baseline's "min"
table against `baseline * (1 - margin)`. Exits non-zero on any
regression past the margin, so CI fails when the pre-decoded core
loses its speedup.

The committed baseline values are deliberately conservative (shared CI
runners are slower and noisier than a dev box); they are floors against
architectural regressions, not a benchmark record. Update them only
when the expected throughput changes on purpose.
"""

import json
import sys


def lookup(doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            sys.exit(f"perf_check: BENCH.json has no field sim_throughput.{dotted}")
        node = node[part]
    if not isinstance(node, (int, float)):
        sys.exit(f"perf_check: sim_throughput.{dotted} is not a number")
    return float(node)


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} BENCH.json baseline.json")
    with open(sys.argv[1]) as fh:
        bench = json.load(fh)
    with open(sys.argv[2]) as fh:
        base = json.load(fh)

    st = bench.get("sim_throughput")
    if not isinstance(st, dict):
        sys.exit(
            "perf_check: BENCH.json has no sim_throughput section "
            "(run bench with CASTED_SECTIONS=sim_throughput)"
        )

    margin = float(base.get("margin", 0.30))
    failures = []
    for dotted, baseline_value in base["min"].items():
        measured = lookup(st, dotted)
        floor = float(baseline_value) * (1.0 - margin)
        ok = measured >= floor
        print(
            f"sim_throughput.{dotted}: measured {measured:.1f}, "
            f"baseline {float(baseline_value):.1f}, floor {floor:.1f} "
            f"[{'ok' if ok else 'REGRESSED'}]"
        )
        if not ok:
            failures.append(dotted)

    if failures:
        sys.exit(
            f"perf_check: throughput regressed more than {margin * 100:.0f}% "
            f"below baseline in: {', '.join(failures)}"
        )
    print(f"perf_check: all metrics within {margin * 100:.0f}% of baseline")


if __name__ == "__main__":
    main()
