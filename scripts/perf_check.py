#!/usr/bin/env python3
"""Guard the bench harness's quality/throughput floors.

Usage: perf_check.py BENCH.json scripts/perf_baseline.json

Reads sections of BENCH.json (see EXPERIMENTS.md) and compares each
metric named in the baseline against `baseline * (1 - margin)`. The
baseline's top-level "min" table applies to the `sim_throughput`
section (its historical shape); a top-level "floor" table applies to
the same section but without a margin, for machine-independent ratios
whose acceptance bar is the floor itself; a top-level
"recovery_overhead" object carries its own "min" (and optional
"margin") table for the `recovery_overhead` section. Exits non-zero on
any regression past the margin, so CI fails when the pre-decoded core
or the closure-threaded engine loses its speedup or a recovery scheme
stops recovering.

The committed baseline values are deliberately conservative (shared CI
runners are slower and noisier than a dev box); they are floors against
architectural regressions, not a benchmark record. Update them only
when the expected throughput changes on purpose.
"""

import json
import sys


def lookup(section, doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            sys.exit(f"perf_check: BENCH.json has no field {section}.{dotted}")
        node = node[part]
    if not isinstance(node, (int, float)):
        sys.exit(f"perf_check: {section}.{dotted} is not a number")
    return float(node)


def check_section(bench, section, mins, margin, failures, floors=None):
    doc = bench.get(section)
    if not isinstance(doc, dict):
        sys.exit(
            f"perf_check: BENCH.json has no {section} section "
            f"(run bench with CASTED_SECTIONS={section})"
        )
    for dotted, baseline_value in mins.items():
        measured = lookup(section, doc, dotted)
        floor = float(baseline_value) * (1.0 - margin)
        ok = measured >= floor
        print(
            f"{section}.{dotted}: measured {measured:.3f}, "
            f"baseline {float(baseline_value):.3f}, floor {floor:.3f} "
            f"[{'ok' if ok else 'REGRESSED'}]"
        )
        if not ok:
            failures.append(f"{section}.{dotted}")
    # The "floor" table carries hard minimums applied without a margin:
    # machine-independent ratios (two rates measured on the same box)
    # where the acceptance bar itself is the floor.
    for dotted, floor_value in (floors or {}).items():
        measured = lookup(section, doc, dotted)
        floor = float(floor_value)
        ok = measured >= floor
        print(
            f"{section}.{dotted}: measured {measured:.3f}, "
            f"hard floor {floor:.3f} [{'ok' if ok else 'REGRESSED'}]"
        )
        if not ok:
            failures.append(f"{section}.{dotted}")


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} BENCH.json baseline.json")
    with open(sys.argv[1]) as fh:
        bench = json.load(fh)
    with open(sys.argv[2]) as fh:
        base = json.load(fh)

    margin = float(base.get("margin", 0.30))
    failures = []
    check_section(
        bench,
        "sim_throughput",
        base["min"],
        margin,
        failures,
        floors=base.get("floor", {}),
    )
    recovery = base.get("recovery_overhead")
    if isinstance(recovery, dict):
        check_section(
            bench,
            "recovery_overhead",
            recovery.get("min", {}),
            float(recovery.get("margin", margin)),
            failures,
        )
    dme = base.get("dme_coverage")
    if isinstance(dme, dict):
        check_section(
            bench,
            "dme_coverage",
            dme.get("min", {}),
            float(dme.get("margin", margin)),
            failures,
            floors=dme.get("floor", {}),
        )

    if failures:
        sys.exit(
            "perf_check: metrics regressed below their baseline floor: "
            + ", ".join(failures)
        )
    print("perf_check: all metrics within margin of baseline")


if __name__ == "__main__":
    main()
