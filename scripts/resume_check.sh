#!/usr/bin/env bash
# Crash-recovery check: start a checkpointing Monte-Carlo campaign, kill
# it mid-run with SIGKILL, resume it from the checkpoint, and verify the
# resumed tally is bit-for-bit identical to an uninterrupted campaign —
# at more than one --jobs setting.
#
# Knobs:
#   CASTED_BIN  path to the casted binary
#               (default _build/default/bin/casted.exe)
#   TRIALS      campaign length (default 2000; must be long enough that
#               the kill lands before the campaign finishes)
#   MODEL       fault model to campaign under (default reg-bit)
set -euo pipefail

BIN=${CASTED_BIN:-_build/default/bin/casted.exe}
TRIALS=${TRIALS:-2000}
MODEL=${MODEL:-reg-bit}
ARGS=(campaign -w cjpeg -s casted --issue 2 --delay 2
      --trials "$TRIALS" --fault-model "$MODEL")

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# The "(N jobs)" line legitimately differs across --jobs settings; the
# tally lines must not.
normalize() { sed 's/([0-9]* jobs)//' "$1"; }

echo "== reference: uninterrupted campaign"
"$BIN" "${ARGS[@]}" --jobs 2 > "$workdir/reference.out"
normalize "$workdir/reference.out" > "$workdir/reference.norm"

echo "== interrupted campaign (SIGKILL after the first checkpoint)"
"$BIN" "${ARGS[@]}" --jobs 1 --checkpoint "$workdir/ckpt" \
  --checkpoint-every 64 > "$workdir/killed.out" 2>&1 &
pid=$!
for _ in $(seq 1 600); do
  [ -f "$workdir/ckpt" ] && break
  sleep 0.1
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

if [ ! -f "$workdir/ckpt" ]; then
  echo "resume_check: no checkpoint was written before the kill;" >&2
  echo "              is the binary built? ($BIN)" >&2
  exit 1
fi

next=$(sed -n 's/^next=//p' "$workdir/ckpt")
if [ "$next" -ge "$TRIALS" ]; then
  echo "resume_check: campaign finished before the kill (next=$next);" >&2
  echo "              raise TRIALS so the kill lands mid-run" >&2
  exit 1
fi
echo "   killed with $next/$TRIALS trials tallied"

for jobs in 1 4; do
  echo "== resume with --jobs $jobs"
  cp "$workdir/ckpt" "$workdir/ckpt.$jobs"
  "$BIN" "${ARGS[@]}" --jobs "$jobs" --checkpoint "$workdir/ckpt.$jobs" \
    --resume > "$workdir/resumed.$jobs.out"
  normalize "$workdir/resumed.$jobs.out" > "$workdir/resumed.$jobs.norm"
  if ! diff -u "$workdir/reference.norm" "$workdir/resumed.$jobs.norm"; then
    echo "resume_check: --jobs $jobs resume differs from the" >&2
    echo "              uninterrupted campaign" >&2
    exit 1
  fi
done

echo "resume_check: OK — killed + resumed campaign is bit-identical to the"
echo "              uninterrupted one at every --jobs"
