#!/usr/bin/env bash
# Result-store end-to-end check, the store-smoke CI job:
#
#   1. zero-resimulation fast path — a campaign run cold into a store
#      and rerun warm must serve every trial from disk (0 simulated)
#      with a tally bit-identical to a storeless reference run;
#   2. crash-tolerant sharding — a shard worker is SIGKILLed
#      mid-flight after banking its first partial chunk; re-running the
#      killed shard serves the banked chunks (nonzero served trials),
#      simulates only the rest, completes the cell, and the merged
#      tally matches the uninterrupted reference bit-for-bit;
#   3. store hygiene — `casted store gc` sweeps the killed worker's
#      debris and `casted store audit` re-simulates a banked entry and
#      agrees with it;
#   4. worker queue drill — `casted work --enqueue` fills a matrix,
#      a second drain of the same queue simulates nothing.
#
# Knobs:
#   CASTED_BIN  path to the casted binary
#               (default _build/default/bin/casted.exe)
#   TRIALS      campaign length (default 24000; must be long enough
#               that the shard kill lands before that worker finishes)
#   MODEL       fault model to campaign under (default reg-bit)
set -euo pipefail

BIN=${CASTED_BIN:-_build/default/bin/casted.exe}
TRIALS=${TRIALS:-24000}
MODEL=${MODEL:-reg-bit}
ARGS=(campaign -w cjpeg -s casted --issue 2 --delay 2
      --trials "$TRIALS" --fault-model "$MODEL")

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Only the tally lines are comparable across runs: the jobs count, the
# store summary and the replay statistics (absent when nothing was
# simulated) legitimately differ.
tally() { grep -E '^[0-9]+ trials |^recovered:' "$1"; }

must_match() { # reference-tally actual-out label
  tally "$2" > "$2.tally"
  if ! diff -u "$1" "$2.tally"; then
    echo "store_check: $3 tally differs from the reference" >&2
    exit 1
  fi
}

must_serve() { # out served simulated label
  if ! grep -q "$2 trials served, $3 simulated" "$1"; then
    echo "store_check: $4: expected '$2 trials served, $3 simulated'" >&2
    cat "$1" >&2
    exit 1
  fi
}

echo "== reference: uninterrupted, storeless campaign"
"$BIN" "${ARGS[@]}" --jobs 2 > "$workdir/reference.out"
tally "$workdir/reference.out" > "$workdir/reference.tally"

store="$workdir/store"
echo "== cold fill into $store"
"$BIN" "${ARGS[@]}" --jobs 2 --store "$store" > "$workdir/cold.out"
must_serve "$workdir/cold.out" 0 "$TRIALS" "cold fill"
must_match "$workdir/reference.tally" "$workdir/cold.out" "cold fill"

echo "== warm rerun must simulate zero trials"
"$BIN" "${ARGS[@]}" --jobs 4 --store "$store" > "$workdir/warm.out"
must_serve "$workdir/warm.out" "$TRIALS" 0 "warm rerun"
must_match "$workdir/reference.tally" "$workdir/warm.out" "warm rerun"

echo "== shard drill: shard 0 SIGKILLed after banking a partial chunk"
store2="$workdir/store2"
"$BIN" "${ARGS[@]}" --jobs 1 --store "$store2" --shard 0/2 \
  > "$workdir/shard0.out" 2>&1 &
pid0=$!
# A shard worker banks its running tally after every finished owned
# 64-trial chunk. Poll for the first banked partial entry, then kill
# the worker mid-campaign.
banked=0
for _ in $(seq 1 400); do
  banked=$(find "$store2/entries" -name '*.entry' 2>/dev/null | wc -l)
  [ "$banked" -ge 1 ] && break
  sleep 0.05
done
kill -9 "$pid0" 2>/dev/null || true
wait "$pid0" 2>/dev/null || true
if [ "$banked" -lt 1 ]; then
  echo "store_check: shard 0 exited without banking a partial entry —" >&2
  echo "             partial-chunk banking is broken (or TRIALS too low)" >&2
  cat "$workdir/shard0.out" >&2
  exit 1
fi
echo "   killed shard 0 with its partial tally banked"

echo "== the surviving shard completes its half"
"$BIN" "${ARGS[@]}" --jobs 1 --store "$store2" --shard 1/2 \
  > "$workdir/shard1.out"
if ! grep -q "other shards outstanding" "$workdir/shard1.out"; then
  echo "store_check: shard 1 merged against shard 0's partial entry" >&2
  cat "$workdir/shard1.out" >&2
  exit 1
fi

echo "== re-run the killed shard: serves banked chunks, completes, merges"
"$BIN" "${ARGS[@]}" --jobs 1 --store "$store2" --shard 0/2 \
  > "$workdir/shard0.resumed.out"
if grep -q "other shards outstanding" "$workdir/shard0.resumed.out"; then
  echo "store_check: resumed shard did not merge the cell" >&2
  cat "$workdir/shard0.resumed.out" >&2
  exit 1
fi
served=$(grep -oE '[0-9]+ trials served' "$workdir/shard0.resumed.out" \
  | grep -oE '[0-9]+' | head -1)
simulated=$(grep -oE '[0-9]+ simulated' "$workdir/shard0.resumed.out" \
  | grep -oE '[0-9]+' | head -1)
if [ "${served:-0}" -eq 0 ]; then
  echo "store_check: resumed shard served zero trials — the killed" >&2
  echo "             worker's banked chunks were not reused" >&2
  cat "$workdir/shard0.resumed.out" >&2
  exit 1
fi
if [ "${simulated:-0}" -eq 0 ]; then
  echo "store_check: resumed shard simulated nothing — shard 0 finished" >&2
  echo "             before the kill; raise TRIALS" >&2
  exit 1
fi
echo "   resumed shard served $served banked trials, simulated $simulated"
must_match "$workdir/reference.tally" "$workdir/shard0.resumed.out" \
  "resumed shard merge"

echo "== merged cell serves an unsharded rerun with zero simulation"
"$BIN" "${ARGS[@]}" --jobs 4 --store "$store2" > "$workdir/merged.out"
must_serve "$workdir/merged.out" "$TRIALS" 0 "merged rerun"
must_match "$workdir/reference.tally" "$workdir/merged.out" "merged rerun"

echo "== gc sweeps the killed worker's debris; audit re-simulates"
"$BIN" store gc "$store2"
"$BIN" store audit "$store" --sample 1 --jobs 2

echo "== worker queue drill: enqueue a matrix, drain it twice"
wstore="$workdir/wstore"
"$BIN" work --store "$wstore" --enqueue cjpeg h263dec --schemes casted,tmr \
  --trials 120 --jobs 2 > "$workdir/work1.out"
grep -q "enqueued 4 new units" "$workdir/work1.out"
grep -q "4 units run" "$workdir/work1.out"
"$BIN" work --store "$wstore" --jobs 2 > "$workdir/work2.out"
if ! grep -q "4 units run (480 trials served from the store, 0 simulated)" \
    "$workdir/work2.out"; then
  echo "store_check: second queue drain re-simulated banked cells" >&2
  cat "$workdir/work2.out" >&2
  exit 1
fi

echo "store_check: OK — warm store serves campaigns with zero simulation,"
echo "             and a SIGKILLed shard worker's banked chunks are reused"
echo "             on the way to the bit-identical merged tally"
