(** Scheduled code: the output of the compiler back-end and the input of
    the simulator.

    A block schedule is a dense array of cycles; each cycle holds, per
    cluster, the instructions issued in that slot ("bundles", VLIW
    style). *)

module Insn = Casted_ir.Insn
module Func = Casted_ir.Func
module Program = Casted_ir.Program

type bundle = Insn.t array array
(** [bundle.(cluster)] = instructions issued on that cluster this cycle. *)

type block_schedule = {
  label : string;
  bundles : bundle array;
  issue_of : (int, int * int) Hashtbl.t;
      (** insn id -> (cycle, cluster) *)
}

type func_schedule = {
  func : Func.t;
  blocks : block_schedule array;  (** same order as [func.blocks] *)
}

type t = {
  program : Program.t;
  config : Casted_machine.Config.t;
  funcs : (string * func_schedule) list;
}

val block_length : block_schedule -> int

(** Static instruction count of a block schedule. *)
val block_insns : block_schedule -> int

(** [find_func t name] returns the schedule of function [name]. Raises
    [Invalid_argument] naming the missing function (and the functions
    the schedule does define) when [name] is unknown — reachable only on
    malformed input, since {!Casted_sim} resolves every callee at decode
    time. *)
val find_func : t -> string -> func_schedule
val find_block : func_schedule -> string -> block_schedule

(** Sum of block lengths — a static lower bound on execution cycles. *)
val static_length : func_schedule -> int

(** Render a block like the paper's Fig. 2/3 schedules: one row per
    cycle, one column per cluster. *)
val pp_block : Format.formatter -> block_schedule -> unit

val pp_func : Format.formatter -> func_schedule -> unit
