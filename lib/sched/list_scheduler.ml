module Insn = Casted_ir.Insn
module Func = Casted_ir.Func
module Program = Casted_ir.Program
module Config = Casted_machine.Config
module Latency = Casted_machine.Latency

let schedule_block (config : Config.t) (dfg : Dfg.t) ~assignment ~label =
  let n = Dfg.num_nodes dfg in
  if Array.length assignment <> n then
    invalid_arg "schedule_block: assignment size mismatch";
  Array.iter
    (fun c ->
      if c < 0 || c >= config.Config.clusters then
        invalid_arg "schedule_block: cluster out of range")
    assignment;
  let heights = Dfg.heights dfg in
  let indeg = Array.make n 0 in
  Array.iteri (fun i preds -> indeg.(i) <- List.length preds) dfg.Dfg.preds;
  let earliest = Array.make n 0 in
  let issue = Array.make n (-1) in
  let remaining = ref n in
  let cycle = ref 0 in
  (* Candidate selection is O(n) per slot; blocks are small enough that
     this quadratic bound is irrelevant next to simulation time. *)
  let pick_best cluster =
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if
        issue.(i) < 0 && indeg.(i) = 0
        && assignment.(i) = cluster
        && earliest.(i) <= !cycle
        && (!best < 0
           || heights.(i) > heights.(!best)
           || (heights.(i) = heights.(!best) && i < !best))
      then best := i
    done;
    !best
  in
  while !remaining > 0 do
    for cluster = 0 to config.Config.clusters - 1 do
      let slots = ref config.Config.issue_width in
      let stop = ref false in
      while (not !stop) && !slots > 0 do
        let i = pick_best cluster in
        if i < 0 then stop := true
        else begin
          issue.(i) <- !cycle;
          decr slots;
          decr remaining;
          List.iter
            (fun (e : Dfg.edge) ->
              let cross =
                if
                  Dfg.kind_pays_delay e.Dfg.kind
                  && assignment.(e.Dfg.src) <> assignment.(e.Dfg.dst)
                then config.Config.delay
                else 0
              in
              earliest.(e.Dfg.dst) <-
                max earliest.(e.Dfg.dst) (!cycle + e.Dfg.latency + cross);
              indeg.(e.Dfg.dst) <- indeg.(e.Dfg.dst) - 1)
            dfg.Dfg.succs.(i)
        end
      done
    done;
    incr cycle
  done;
  let length = 1 + Array.fold_left max 0 issue in
  let bundles =
    Array.init length (fun _ ->
        Array.init config.Config.clusters (fun _ -> [||]))
  in
  (* Fill bundles in program order so intra-bundle order is stable. *)
  let tmp : Insn.t list array array =
    Array.init length (fun _ -> Array.make config.Config.clusters [])
  in
  for i = n - 1 downto 0 do
    let c = assignment.(i) in
    tmp.(issue.(i)).(c) <- dfg.Dfg.insns.(i) :: tmp.(issue.(i)).(c)
  done;
  Array.iteri
    (fun cy row ->
      Array.iteri
        (fun cl insns -> bundles.(cy).(cl) <- Array.of_list insns)
        row)
    tmp;
  let issue_of = Hashtbl.create n in
  Array.iteri
    (fun i (insn : Insn.t) ->
      Hashtbl.replace issue_of insn.Insn.id (issue.(i), assignment.(i)))
    dfg.Dfg.insns;
  { Schedule.label; bundles; issue_of }

let schedule_func config strategy func =
  Casted_obs.Trace.with_span ~cat:"sched" "sched.func"
    ~args:
      [
        ("func", Casted_obs.Json.String func.Func.name);
        ("blocks", Casted_obs.Json.Int (List.length func.Func.blocks));
      ]
    (fun () ->
      let latency insn = Latency.of_op config.Config.latencies insn.Insn.op in
      let blocks =
        List.map
          (fun block ->
            let dfg = Dfg.build ~latency block in
            let assignment = Assign.compute strategy config dfg in
            Casted_obs.Metrics.incr "sched.blocks";
            schedule_block config dfg ~assignment
              ~label:block.Casted_ir.Block.label)
          func.Func.blocks
      in
      { Schedule.func; blocks = Array.of_list blocks })

let schedule_program config strategy program =
  let funcs =
    List.map
      (fun f -> (f.Func.name, schedule_func config strategy f))
      program.Program.funcs
  in
  { Schedule.program; config; funcs }
