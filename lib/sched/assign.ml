module Insn = Casted_ir.Insn
module Config = Casted_machine.Config

type strategy = Single_cluster | Dual_fixed | Adaptive of Bug.options

let strategy_name = function
  | Single_cluster -> "single"
  | Dual_fixed -> "dual-fixed"
  | Adaptive _ -> "adaptive"

let compute strategy (config : Config.t) (dfg : Dfg.t) =
  Casted_obs.Metrics.incr ("assign." ^ strategy_name strategy);
  match strategy with
  | Single_cluster -> Array.make (Dfg.num_nodes dfg) 0
  | Dual_fixed ->
      if config.Config.clusters < 2 then
        invalid_arg "Assign.compute: Dual_fixed needs >= 2 clusters";
      Array.map
        (fun (i : Insn.t) ->
          match i.Insn.role with
          | Insn.Original -> 0
          | Insn.Replica | Insn.Check | Insn.Shadow_copy -> 1)
        dfg.Dfg.insns
  | Adaptive options -> Bug.assign options config dfg
