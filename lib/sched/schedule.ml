module Insn = Casted_ir.Insn
module Func = Casted_ir.Func
module Program = Casted_ir.Program

type bundle = Insn.t array array

type block_schedule = {
  label : string;
  bundles : bundle array;
  issue_of : (int, int * int) Hashtbl.t;
}

type func_schedule = {
  func : Func.t;
  blocks : block_schedule array;
}

type t = {
  program : Program.t;
  config : Casted_machine.Config.t;
  funcs : (string * func_schedule) list;
}

let block_length b = Array.length b.bundles

let block_insns b =
  Array.fold_left
    (fun acc bundle ->
      Array.fold_left (fun acc insns -> acc + Array.length insns) acc bundle)
    0 b.bundles

let find_func t name =
  match List.assoc_opt name t.funcs with
  | Some fs -> fs
  | None ->
      invalid_arg
        (Printf.sprintf
           "Schedule.find_func: unknown function %S (schedule defines: %s)"
           name
           (String.concat ", " (List.map fst t.funcs)))

let find_block fs label =
  let n = Array.length fs.blocks in
  let rec go i =
    if i >= n then raise Not_found
    else if fs.blocks.(i).label = label then fs.blocks.(i)
    else go (i + 1)
  in
  go 0

let static_length fs =
  Array.fold_left (fun acc b -> acc + block_length b) 0 fs.blocks

let pp_block ppf b =
  Format.fprintf ppf "@[<v>%s: (%d cycles)" b.label (block_length b);
  Array.iteri
    (fun cycle bundle ->
      Format.fprintf ppf "@,%3d |" cycle;
      Array.iteri
        (fun cluster insns ->
          if cluster > 0 then Format.fprintf ppf " ||";
          Array.iter
            (fun i -> Format.fprintf ppf " [%s]" (Insn.to_string i))
            insns)
        bundle)
    b.bundles;
  Format.fprintf ppf "@]"

let pp_func ppf fs =
  Format.fprintf ppf "@[<v>schedule of %s:" fs.func.Func.name;
  Array.iter (fun b -> Format.fprintf ppf "@,%a" pp_block b) fs.blocks;
  Format.fprintf ppf "@]"
