module Reg = Casted_ir.Reg
module Insn = Casted_ir.Insn
module Func = Casted_ir.Func

(* The shadow map of a hardened function, reconstructed from the
   emitted artifacts rather than trusted from the pass: a replica's
   defs are (positionally) the shadows of its original's defs, and a
   shadow copy maps its source to its destination. Anything a transform
   claims to protect must be derivable this way — which is what makes
   the map usable by the verifier, and what keeps it valid under the
   DME register shuffle (the shuffle rewrites replica defs and copy
   destinations alike, so the reconstruction simply reads the permuted
   names). *)

let by_id (f : Func.t) =
  let tbl = Hashtbl.create 64 in
  Func.iter_insns f (fun _ i -> Hashtbl.replace tbl i.Insn.id i);
  tbl

let reconstruct (f : Func.t) =
  let ids = by_id f in
  let shadow = Reg.Tbl.create 64 in
  Func.iter_insns f (fun _ i ->
      match i.Insn.role with
      | Insn.Replica -> (
          match Hashtbl.find_opt ids i.Insn.replica_of with
          | Some orig ->
              let n =
                min (Array.length orig.Insn.defs) (Array.length i.Insn.defs)
              in
              for k = 0 to n - 1 do
                if not (Reg.Tbl.mem shadow orig.Insn.defs.(k)) then
                  Reg.Tbl.replace shadow orig.Insn.defs.(k) i.Insn.defs.(k)
              done
          | None -> ())
      | Insn.Shadow_copy ->
          if
            Array.length i.Insn.uses >= 1
            && Array.length i.Insn.defs >= 1
            && not (Reg.Tbl.mem shadow i.Insn.uses.(0))
          then Reg.Tbl.replace shadow i.Insn.uses.(0) i.Insn.defs.(0)
      | Insn.Original | Insn.Check -> ());
  (ids, shadow)

let collisions shadow =
  let rev = Reg.Tbl.create (Reg.Tbl.length shadow) in
  let clashes = ref [] in
  Reg.Tbl.iter
    (fun orig sh ->
      match Reg.Tbl.find_opt rev sh with
      | Some other -> clashes := (orig, other, sh) :: !clashes
      | None -> Reg.Tbl.replace rev sh orig)
    shadow;
  (* Hash-table iteration order is unspecified; pin the report order so
     diagnostics are stable across runs. *)
  List.sort
    (fun (a, b, c) (a', b', c') ->
      match Reg.compare a a' with
      | 0 -> ( match Reg.compare b b' with 0 -> Reg.compare c c' | n -> n)
      | n -> n)
    !clashes
