module Reservation = Casted_machine.Reservation
module Config = Casted_machine.Config

type tie_break = Prefer_lower | Prefer_critical_pred

type options = { tie_break : tie_break }

let default_options = { tie_break = Prefer_critical_pred }

let assign options (config : Config.t) (dfg : Dfg.t) =
  Casted_obs.Metrics.incr "bug.assignments";
  Casted_obs.Metrics.incr ~by:(Dfg.num_nodes dfg) "bug.nodes_assigned";
  let n = Dfg.num_nodes dfg in
  let clusters = config.Config.clusters in
  let table =
    Reservation.create ~clusters ~issue_width:config.Config.issue_width
  in
  let heights = Dfg.heights dfg in
  let cluster = Array.make n (-1) in
  let issue = Array.make n (-1) in
  (* Operand arrival time of [node] on [c], and the cluster of the
     predecessor that arrives last (the critical predecessor). *)
  let arrival node c =
    List.fold_left
      (fun ((t, _) as acc) (e : Dfg.edge) ->
        if cluster.(e.Dfg.src) < 0 then acc
        else
          let cross =
            if
              Dfg.kind_pays_delay e.Dfg.kind
              && cluster.(e.Dfg.src) <> c
            then config.Config.delay
            else 0
          in
          let t' = issue.(e.Dfg.src) + e.Dfg.latency + cross in
          if t' > t then (t', cluster.(e.Dfg.src)) else acc)
      (0, -1) dfg.Dfg.preds.(node)
  in
  let rec bug node =
    if cluster.(node) >= 0 then ()
    else begin
      (* Visit predecessors first, most critical first. *)
      let preds =
        List.sort
          (fun (a : Dfg.edge) b ->
            Int.compare heights.(b.Dfg.src) heights.(a.Dfg.src))
          dfg.Dfg.preds.(node)
      in
      List.iter (fun (e : Dfg.edge) -> bug e.Dfg.src) preds;
      (* Completion-cycle heuristic on every cluster. *)
      let best = ref None in
      for c = 0 to clusters - 1 do
        let ready, crit_pred = arrival node c in
        let cycle = Reservation.first_free table ~cluster:c ~from:ready in
        let completion = cycle + dfg.Dfg.latency.(node) in
        let better =
          match !best with
          | None -> true
          | Some (bc, _, _, bp) -> (
              if completion < bc then true
              else if completion > bc then false
              else
                (* Tie: apply the configured preference. *)
                match options.tie_break with
                | Prefer_lower -> false (* keep the earlier (lower) cluster *)
                | Prefer_critical_pred -> crit_pred = c && bp <> c && bp >= 0
                )
        in
        if better then best := Some (completion, c, cycle, crit_pred)
      done;
      match !best with
      | None ->
          (* Unreachable with a validated [Config.t] (clusters >= 1):
             the loop above always proposes cluster 0. Name the node so
             a corrupt config surfaces as a diagnosis, not a crash. *)
          invalid_arg
            (Printf.sprintf
               "Bug.assign: no feasible cluster for DFG node %d (machine \
                reports %d clusters; config must have clusters >= 1)"
               node clusters)
      | Some (_, c, cycle, _) ->
          cluster.(node) <- c;
          issue.(node) <- cycle;
          Reservation.reserve table ~cluster:c ~cycle
    end
  in
  (* Entry points: recursion from the sinks reaches every node (the
     terminator is a universal sink), but iterate over all nodes to be
     robust to degenerate graphs. *)
  for i = n - 1 downto 0 do
    bug i
  done;
  cluster
