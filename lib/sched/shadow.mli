(** Artifact-derived shadow map of a hardened function.

    The detection passes maintain an original-register → shadow-register
    map internally, but the verifier must not trust it: this module
    reconstructs the map from the emitted instructions alone — a
    replica's defs are positionally the shadows of its original's defs,
    a shadow copy maps its source to its destination. The
    reconstruction is layout-blind, so it stays correct under the DME
    register shuffle: it simply reads the permuted names. *)

(** Index a function's instructions by id. *)
val by_id : Casted_ir.Func.t -> (int, Casted_ir.Insn.t) Hashtbl.t

(** [reconstruct f] is [(by_id f, shadow)] where [shadow] maps each
    protected original register to its shadow as evidenced by the
    emitted replicas and shadow copies. First evidence wins. *)
val reconstruct :
  Casted_ir.Func.t ->
  (int, Casted_ir.Insn.t) Hashtbl.t * Casted_ir.Reg.t Casted_ir.Reg.Tbl.t

(** Pairs of distinct originals whose shadows collide —
    [(orig, earlier_orig, shared_shadow)], sorted for stable reporting.
    A sound shadow map is injective (the DME shuffle in particular is a
    bijection of the shadow space); any collision means one shadow
    register carries two protected values and checks can falsely
    pass. *)
val collisions :
  Casted_ir.Reg.t Casted_ir.Reg.Tbl.t ->
  (Casted_ir.Reg.t * Casted_ir.Reg.t * Casted_ir.Reg.t) list
