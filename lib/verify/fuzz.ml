module B = Casted_ir.Builder
module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Cond = Casted_ir.Cond
module Program = Casted_ir.Program
module Asm = Casted_ir.Asm
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Rng = Casted_sim.Rng
module Pool = Casted_exec.Pool

(* The recipe language mirrors test_differential's: a small structured
   imperative program over a fixed register file and fixed aligned
   memory slots (so no generated program can trap), plus a call into a
   protected helper so parameter shadowing and call checks are
   exercised. *)
type stmt =
  | Binop of int * int * int * int  (* kind, dst, src1, src2 *)
  | Immop of int * int * int * int64  (* kind, dst, src, imm *)
  | Select of int * int * int * int * int64  (* dst, cmp, a, b, threshold *)
  | Store of int * int  (* slot, src *)
  | Load of int * int  (* dst, slot *)
  | Callh of int * int * int  (* dst, arg1, arg2 *)
  | If_ of int * int64 * stmt list * stmt list
  | Loop of int * stmt list  (* iterations 1..4, body *)

let n_regs = 6
let n_slots = 8
let mem_base = 0x100L

(* Every random draw is an explicit [let] in source order: constructor
   argument evaluation order is unspecified in OCaml, and the generator
   must be deterministic for a (seed, index) pair forever. *)
let rec gen_stmt rng depth =
  let reg () = Rng.int rng n_regs in
  let slot () = Rng.int rng n_slots in
  let imm () = Int64.of_int (Rng.int rng 101 - 50) in
  let pick = Rng.int rng (if depth <= 0 then 12 else 14) in
  match pick with
  | 0 | 1 ->
      let k = Rng.int rng 6 in
      let d = reg () in
      let a = reg () in
      let b = reg () in
      Binop (k, d, a, b)
  | 2 | 3 ->
      let k = Rng.int rng 5 in
      let d = reg () in
      let s = reg () in
      let i = imm () in
      Immop (k, d, s, i)
  | 4 | 5 ->
      let d = reg () in
      let c = reg () in
      let a = reg () in
      let b = reg () in
      let t = imm () in
      Select (d, c, a, b, t)
  | 6 | 7 ->
      let s = slot () in
      let r = reg () in
      Store (s, r)
  | 8 | 9 ->
      let d = reg () in
      let s = slot () in
      Load (d, s)
  | 10 | 11 ->
      let d = reg () in
      let a = reg () in
      let b = reg () in
      Callh (d, a, b)
  | 12 ->
      let s = reg () in
      let t = imm () in
      let thens = gen_stmts rng (depth - 1) in
      let elses = gen_stmts rng (depth - 1) in
      If_ (s, t, thens, elses)
  | _ ->
      let n = 1 + Rng.int rng 4 in
      let body = gen_stmts rng (depth - 1) in
      Loop (n, body)

and gen_stmts rng depth =
  let n = 1 + Rng.int rng 4 in
  let rec go k acc =
    if k = 0 then List.rev acc else go (k - 1) (gen_stmt rng depth :: acc)
  in
  go n []

let recipe ~seed index =
  let rng = Rng.create ~seed:(Rng.derive ~seed index) in
  let n = 3 + Rng.int rng 18 in
  let rec go k acc =
    if k = 0 then List.rev acc else go (k - 1) (gen_stmt rng 2 :: acc)
  in
  go n []

(* Protected callee: pure arithmetic on its two parameters. Being
   protected, the transform shadows its parameters and checks its
   return path — coverage no main-only program has. *)
let helper () =
  let x = Reg.gp 0 and y = Reg.gp 1 in
  let b = B.create ~name:"madd" ~params:[ x; y ] ~ret_cls:(Some Reg.Gp) () in
  let s = B.add b x y in
  let t = B.muli b s 3L in
  let r = B.xori b t 0x55L in
  B.ret b ~value:r ();
  B.finish b

let emit_program stmts =
  let b = B.create ~name:"main" () in
  let base = B.movi b mem_base in
  let regs = Array.init n_regs (fun i -> B.movi b (Int64.of_int (i * 7))) in
  let rec emit_stmt = function
    | Binop (kind, d, a, b') ->
        let dst = regs.(d) and x = regs.(a) and y = regs.(b') in
        let f =
          match kind with
          | 0 -> B.add
          | 1 -> B.sub
          | 2 -> B.mul
          | 3 -> B.and_
          | 4 -> B.or_
          | _ -> B.xor
        in
        ignore (f b ~dst x y)
    | Immop (kind, d, s, imm) ->
        let dst = regs.(d) and x = regs.(s) in
        let f =
          match kind with
          | 0 -> B.addi
          | 1 -> B.muli
          | 2 -> B.xori
          | 3 -> fun b ?dst x _ -> B.shri b ?dst x 3L
          | _ -> fun b ?dst x _ -> B.srai b ?dst x 2L
        in
        ignore (f b ~dst x imm)
    | Select (d, c, x, y, t) ->
        let p = B.cmpi b Cond.Lt regs.(c) t in
        ignore (B.sel b ~dst:regs.(d) p regs.(x) regs.(y))
    | Store (slot, r) ->
        B.st b Opcode.W8 ~value:regs.(r) ~base (Int64.of_int (8 * slot))
    | Load (d, slot) ->
        ignore (B.ld b ~dst:regs.(d) Opcode.W8 base (Int64.of_int (8 * slot)))
    | Callh (d, x, y) -> B.call b ~dst:regs.(d) "madd" [ regs.(x); regs.(y) ]
    | If_ (s, t, thens, elses) ->
        let p = B.cmpi b Cond.Ge regs.(s) t in
        B.if_ b p
          (fun _ -> List.iter emit_stmt thens)
          (fun _ -> List.iter emit_stmt elses)
    | Loop (n, body) ->
        B.counted_loop b ~from:0L ~until:(Int64.of_int n) (fun _ _ ->
            List.iter emit_stmt body)
  in
  List.iter emit_stmt stmts;
  (* Observability epilogue: every register and memory slot reaches the
     output region, so a wrong value anywhere is an output divergence. *)
  let out = B.movi b 0x40L in
  Array.iteri
    (fun i r -> B.st b Opcode.W8 ~value:r ~base:out (Int64.of_int (8 * i)))
    regs;
  let acc = B.movi b 0L in
  for slot = 0 to n_slots - 1 do
    let v = B.ld b Opcode.W8 base (Int64.of_int (8 * slot)) in
    ignore (B.xor b ~dst:acc acc v)
  done;
  B.st b Opcode.W8 ~value:acc ~base:out (Int64.of_int (8 * n_regs));
  let zero = B.movi b 0L in
  B.halt b ~code:zero ();
  Program.make
    ~funcs:[ B.finish b; helper () ]
    ~entry:"main" ~mem_size:(1 lsl 16) ~output_base:0x40
    ~output_len:(8 * (n_regs + 1))
    ()

let default_cells =
  [
    { Oracle.scheme = Scheme.Noed; issue_width = 2; delay = 1 };
    { Oracle.scheme = Scheme.Sced; issue_width = 1; delay = 1 };
    { Oracle.scheme = Scheme.Sced; issue_width = 4; delay = 1 };
    { Oracle.scheme = Scheme.Dced; issue_width = 1; delay = 1 };
    { Oracle.scheme = Scheme.Dced; issue_width = 2; delay = 3 };
    { Oracle.scheme = Scheme.Casted; issue_width = 1; delay = 1 };
    { Oracle.scheme = Scheme.Casted; issue_width = 2; delay = 4 };
    { Oracle.scheme = Scheme.Casted; issue_width = 3; delay = 2 };
    { Oracle.scheme = Scheme.Dme; issue_width = 1; delay = 1 };
    { Oracle.scheme = Scheme.Dme; issue_width = 2; delay = 2 };
    { Oracle.scheme = Scheme.Tmr; issue_width = 2; delay = 2 };
    { Oracle.scheme = Scheme.Rollback; issue_width = 2; delay = 2 };
  ]

let check_program ?(cells = default_cells) ?(fuel = 1_000_000) program =
  Casted_ir.Validate.check_exn program;
  let reference = Oracle.reference ~fuel program in
  List.fold_left
    (fun (diags, divs) cell ->
      let compiled =
        Pipeline.compile ~scheme:cell.Oracle.scheme
          ~issue_width:cell.Oracle.issue_width ~delay:cell.Oracle.delay
          program
      in
      let ds = Lint.schedule ~scheme:cell.Oracle.scheme compiled.Pipeline.schedule in
      let vs = Oracle.check_cell ~fuel ~reference program cell in
      (diags @ List.map (fun d -> (cell, d)) ds, divs @ vs))
    ([], []) cells

(* [None] when the recipe is clean; the shrinker keeps only recipes for
   which this stays [Some]. *)
let failing ?cells ?fuel stmts =
  let program = emit_program stmts in
  match check_program ?cells ?fuel program with
  | [], [] -> None
  | diags, divs -> Some (program, diags, divs)

(* Structural shrink candidates, simplest-first: drop a statement,
   flatten a compound into (a subset of) its body, reduce a loop count,
   then recurse into compound bodies. *)
let rec shrinks_of_list = function
  | [] -> []
  | s :: rest ->
      (rest
       ::
       (match s with
        | If_ (_, _, a, b) -> [ a @ rest; b @ rest; a @ b @ rest ]
        | Loop (_, body) -> [ body @ rest ]
        | _ -> [])
      @ List.map (fun s' -> s' :: rest) (shrink_stmt s))
      @ List.map (fun rest' -> s :: rest') (shrinks_of_list rest)

and shrink_stmt = function
  | If_ (r, t, a, b) ->
      List.map (fun a' -> If_ (r, t, a', b)) (shrinks_of_list a)
      @ List.map (fun b' -> If_ (r, t, a, b')) (shrinks_of_list b)
  | Loop (n, body) ->
      (if n > 1 then [ Loop (1, body) ] else [])
      @ List.map (fun body' -> Loop (n, body')) (shrinks_of_list body)
  | _ -> []

(* Greedy descent to a local minimum, bounded so a pathological failure
   cannot stall the campaign. *)
let shrink ?cells ?fuel stmts first_failure =
  let budget = ref 1000 in
  let steps = ref 0 in
  let rec go stmts failure =
    let rec try_candidates = function
      | [] -> (stmts, failure)
      | c :: cs ->
          if !budget <= 0 then (stmts, failure)
          else begin
            decr budget;
            match failing ?cells ?fuel c with
            | Some f ->
                incr steps;
                go c f
            | None -> try_candidates cs
          end
    in
    try_candidates (shrinks_of_list stmts)
  in
  let final, failure = go stmts first_failure in
  (final, failure, !steps)

type failure = {
  index : int;
  seed : int;
  asm : string;
  diags : (Oracle.cell * Diag.t) list;
  divergences : Oracle.divergence list;
  shrink_steps : int;
}

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v>program %d of seed %d fails (%d shrink steps to minimum):@," f.index
    f.seed f.shrink_steps;
  List.iter
    (fun (cell, d) ->
      Format.fprintf ppf "  [%a] %a@," Oracle.pp_cell cell Diag.pp d)
    f.diags;
  List.iter
    (fun d -> Format.fprintf ppf "  %a@," Oracle.pp_divergence d)
    f.divergences;
  Format.fprintf ppf "reproducer:@,%s@]" f.asm

let check_index ?cells ?fuel ~seed index =
  let stmts = recipe ~seed index in
  match failing ?cells ?fuel stmts with
  | None -> None
  | Some first ->
      let _, (program, diags, divergences), shrink_steps =
        shrink ?cells ?fuel stmts first
      in
      Some
        {
          index;
          seed;
          asm = Asm.print program;
          diags;
          divergences;
          shrink_steps;
        }

let run ?pool ?cells ?fuel ~programs ~seed () =
  let indices = Array.init programs Fun.id in
  let check i = check_index ?cells ?fuel ~seed i in
  let results =
    match pool with
    | Some p -> Pool.map p check indices
    | None -> Array.map check indices
  in
  Array.fold_left
    (fun acc r -> match acc with Some _ -> acc | None -> r)
    None results
