(** The whole verify sweep: every registered workload, linted and
    differentially checked over the example cell matrix. This is what
    [casted verify] runs; a clean build produces an empty report on
    every entry. *)

type entry = {
  workload : string;
  cell : Oracle.cell;
  diags : Diag.t list;
  divergences : Oracle.divergence list;
}

(** [run ()] checks [benchmarks] (default: the whole registry) at
    [size] (default [Fault]) over [cells] (default {!Oracle.cells}),
    fanning (workload, cell) jobs over [pool] when given. Entries come
    back in (workload, cell) matrix order regardless of parallelism. *)
val run :
  ?pool:Casted_exec.Pool.t ->
  ?benchmarks:string list ->
  ?size:Casted_workloads.Workload.size ->
  ?cells:Oracle.cell list ->
  unit ->
  entry list

(** No entry has a diagnostic or divergence. *)
val clean : entry list -> bool

(** Total (diags, divergences) across all entries. *)
val totals : entry list -> int * int

val pp_entry : Format.formatter -> entry -> unit
val to_json : entry list -> Casted_obs.Json.t
