(** Cross-scheme differential oracle.

    Fault-free, every scheme is supposed to be a semantics-preserving
    recompilation: NOED, SCED, DCED and CASTED must produce the same
    architectural outcome — exit code, output-region bytes, and the
    whole final memory image — on the same workload. Any divergence is
    a compiler or simulator bug, RepTFD-style: the reference execution
    is the oracle.

    Each cell additionally cross-checks the four execution paths
    against each other, field for field: [Simulator.run] vs
    [Simulator.run_decoded] on the schedule (the pre-decoded
    interpreter must be bit-identical to the direct one),
    [Simulator.run_compiled] on the stage-2 compiled program (the
    closure-threaded engine must be bit-identical to the interpreter),
    and [Simulator.run_replayed] / [Simulator.run_compiled_replayed]
    from {e every} snapshot of a dense {!Casted_sim.Replay.capture} vs
    the decoded run (golden-prefix replay must lose no piece of the
    machine state, on either engine). *)

type cell = {
  scheme : Casted_detect.Scheme.t;
  issue_width : int;
  delay : int;
}

val pp_cell : Format.formatter -> cell -> unit

(** The default example matrix: NOED/SCED once per issue width
    (single-core schemes do not see the delay axis), DCED/CASTED per
    (issue width, delay) point. *)
val cells : ?issue_widths:int list -> ?delays:int list -> unit -> cell list

type divergence = {
  cell : cell;
  field : string;  (** what differed, e.g. ["output"] or ["cycles"] *)
  reference : string;
  got : string;
}

val pp_divergence : Format.formatter -> divergence -> unit
val divergence_to_json : divergence -> Casted_obs.Json.t

(** [reference ?options ?fuel program] compiles and runs the program
    under NOED at issue width 1 and returns the fault-free reference
    run (with its memory digest). *)
val reference :
  ?options:Casted_detect.Options.t ->
  ?fuel:int ->
  Casted_ir.Program.t ->
  Casted_sim.Outcome.run

(** [check_cell ?options ?fuel ~reference program cell] compiles
    [program] for [cell], runs it fault-free, and returns every
    divergence: architectural outcome vs the reference, plus the
    four-way [run] / [run_decoded] / [run_replayed] / [run_compiled]
    cross-check on the cell's own schedule. *)
val check_cell :
  ?options:Casted_detect.Options.t ->
  ?fuel:int ->
  reference:Casted_sim.Outcome.run ->
  Casted_ir.Program.t ->
  cell ->
  divergence list

(** [differential ?pool ?issue_widths ?delays ?options ?fuel program]
    runs the whole matrix, fanning cells over [pool] when given. The
    result preserves matrix order. *)
val differential :
  ?pool:Casted_exec.Pool.t ->
  ?issue_widths:int list ->
  ?delays:int list ->
  ?options:Casted_detect.Options.t ->
  ?fuel:int ->
  Casted_ir.Program.t ->
  divergence list
