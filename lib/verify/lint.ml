module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Insn = Casted_ir.Insn
module Block = Casted_ir.Block
module Func = Casted_ir.Func
module Program = Casted_ir.Program
module Config = Casted_machine.Config
module Latency = Casted_machine.Latency
module Schedule = Casted_sched.Schedule
module Options = Casted_detect.Options
module Scheme = Casted_detect.Scheme

(* Diagnostics accumulate in order of discovery; [schedule] reverses
   once at the end. *)
type acc = { mutable diags : Diag.t list }

let add acc ?block ?insn ?cycle ~func rule message =
  acc.diags <- Diag.make ?block ?insn ?cycle ~func rule message :: acc.diags

(* The shadow map is reconstructed from the emitted artifacts rather
   than trusted from the pass — see {!Casted_sched.Shadow}. *)
module Shadow = Casted_sched.Shadow

(* Register isolation: the shadow stream's defs must never collide with
   a register the original stream defines or reads (or a parameter) —
   a collision lets a replica clobber master state, which is exactly
   the corruption the scheme claims to detect. *)
let lint_isolation acc ~fname (f : Func.t) =
  let masters = ref Reg.Set.empty in
  let master_site = Reg.Tbl.create 64 in
  let note_master insn r =
    if not (Reg.Set.mem r !masters) then begin
      masters := Reg.Set.add r !masters;
      Reg.Tbl.replace master_site r insn.Insn.id
    end
  in
  List.iter (fun r -> masters := Reg.Set.add r !masters) f.Func.params;
  Func.iter_insns f (fun _ i ->
      if i.Insn.role = Insn.Original then begin
        Array.iter (note_master i) i.Insn.defs;
        Array.iter (note_master i) i.Insn.uses
      end);
  Func.iter_insns f (fun block i ->
      match i.Insn.role with
      | Insn.Replica | Insn.Shadow_copy ->
          Array.iter
            (fun r ->
              if Reg.Set.mem r !masters then
                add acc ~block:block.Block.label ~insn:i.Insn.id ~func:fname
                  Diag.Replica_overlap
                  (Format.asprintf
                     "%s instruction defines %a, which the master stream \
                      also touches%s"
                     (Insn.role_to_string i.Insn.role)
                     Reg.pp r
                     (match Reg.Tbl.find_opt master_site r with
                     | Some id -> Printf.sprintf " (e.g. insn %d)" id
                     | None -> " (parameter)")))
            i.Insn.defs
      | Insn.Original | Insn.Check -> ())

let wants_check (options : Options.t) (i : Insn.t) =
  match i.Insn.op with
  | Opcode.St _ | Opcode.Fst -> options.Options.check_stores
  | Opcode.Brc _ -> options.Options.check_branches
  | Opcode.Call | Opcode.Ret | Opcode.Halt -> options.Options.check_calls
  | _ -> false

(* Replication, check and shadow-copy coverage of one hardened,
   protected function. All three rules work per block, because the
   transform emits replicas, checks and copies into the block of the
   instruction they serve. *)
let lint_coverage acc ~fname ~voting ~decorrelated (options : Options.t)
    (f : Func.t) shadow =
  let block_rules (b : Block.t) =
    let insns = Block.insns b in
    let replicas_of = Hashtbl.create 16 in
    let checks_of = Hashtbl.create 16 in
    let copies_of = Hashtbl.create 16 in
    List.iter
      (fun (i : Insn.t) ->
        match i.Insn.role with
        | Insn.Replica -> Hashtbl.add replicas_of i.Insn.replica_of i
        | Insn.Check -> Hashtbl.add checks_of i.Insn.protects i
        | Insn.Shadow_copy -> Hashtbl.add copies_of i.Insn.replica_of i
        | Insn.Original -> ())
      insns;
    List.iter
      (fun (i : Insn.t) ->
        if i.Insn.role = Insn.Original then begin
          (* Full scope: every replicable original has a replica —
             and under DME stores do too (the replica stream keeps its
             own memory image). *)
          if
            options.Options.scope = Options.Full
            && (Opcode.replicable i.Insn.op
               || (decorrelated && Opcode.is_store i.Insn.op))
            && not (Hashtbl.mem replicas_of i.Insn.id)
          then
            add acc ~block:b.Block.label ~insn:i.Insn.id ~func:fname
              Diag.Missing_replica
              (Format.asprintf "replicable instruction %a has no replica"
                 Insn.pp i);
          (* Non-replicated consumers: a check per shadowed operand —
             for a detection scheme a [Chk] against the shadow, for TMR
             a majority-vote [Sel] whose fallthrough operand is the
             protected register (GP operands; the rest keep the
             detection check as TMR's own fallback). *)
          if (not (Opcode.replicable i.Insn.op)) && wants_check options i
          then begin
            let seen = ref Reg.Set.empty in
            Array.iter
              (fun r ->
                if not (Reg.Set.mem r !seen) then begin
                  seen := Reg.Set.add r !seen;
                  match Reg.Tbl.find_opt shadow r with
                  | None -> () (* outside the replication scope *)
                  | Some r' ->
                      if voting && Reg.cls r = Reg.Gp then begin
                        let voted =
                          List.exists
                            (fun (c : Insn.t) ->
                              c.Insn.op = Opcode.Sel
                              && Array.length c.Insn.uses = 3
                              && Reg.equal c.Insn.uses.(1) r'
                              && Reg.equal c.Insn.uses.(2) r)
                            (Hashtbl.find_all checks_of i.Insn.id)
                        in
                        if not voted then
                          add acc ~block:b.Block.label ~insn:i.Insn.id
                            ~func:fname Diag.Missing_vote
                            (Format.asprintf
                               "%a reads %a but no majority vote covers it \
                                (expected a Sel over %a and its shadow %a)"
                               Insn.pp i Reg.pp r Reg.pp r Reg.pp r')
                      end
                      else
                        let covered =
                          List.exists
                            (fun (c : Insn.t) ->
                              Array.length c.Insn.uses = 2
                              && ((Reg.equal c.Insn.uses.(0) r
                                  && Reg.equal c.Insn.uses.(1) r')
                                 || (Reg.equal c.Insn.uses.(0) r'
                                    && Reg.equal c.Insn.uses.(1) r)))
                            (Hashtbl.find_all checks_of i.Insn.id)
                        in
                        if not covered then
                          add acc ~block:b.Block.label ~insn:i.Insn.id
                            ~func:fname Diag.Missing_check
                            (Format.asprintf
                               "%a reads %a but no check compares it against \
                                its shadow %a"
                               Insn.pp i Reg.pp r Reg.pp r')
                end)
              i.Insn.uses
          end;
          (* Values entering through non-replicated defs get copies. *)
          if
            Array.length i.Insn.defs > 0
            && not (Opcode.replicable i.Insn.op)
          then
            Array.iter
              (fun r ->
                if Reg.cls r <> Reg.Pr then
                  let copied =
                    List.exists
                      (fun (c : Insn.t) ->
                        Array.length c.Insn.uses >= 1
                        && Reg.equal c.Insn.uses.(0) r)
                      (Hashtbl.find_all copies_of i.Insn.id)
                  in
                  if not copied then
                    add acc ~block:b.Block.label ~insn:i.Insn.id ~func:fname
                      Diag.Missing_shadow_copy
                      (Format.asprintf
                         "%a defines %a with no shadow copy after it"
                         Insn.pp i Reg.pp r))
              i.Insn.defs
        end)
      insns
  in
  List.iter block_rules f.Func.blocks;
  (* Parameters enter the shadow space at function entry. *)
  if options.Options.shadow_params && f.Func.params <> [] then begin
    let entry = Func.entry f in
    let entry_copies =
      List.filter
        (fun (i : Insn.t) ->
          i.Insn.role = Insn.Shadow_copy && i.Insn.replica_of = -1)
        entry.Block.body
    in
    List.iter
      (fun p ->
        let copied =
          List.exists
            (fun (c : Insn.t) ->
              Array.length c.Insn.uses >= 1 && Reg.equal c.Insn.uses.(0) p)
            entry_copies
        in
        if not copied then
          add acc ~block:entry.Block.label ~func:fname
            Diag.Missing_shadow_copy
            (Format.asprintf "parameter %a has no shadow copy at entry"
               Reg.pp p))
      f.Func.params
  end

(* Decorrelation invariants under DME, recomputed from the emitted
   code: the artifact-derived shadow map must be injective (the
   register shuffle is a bijection of the shadow space — a collision
   means one shadow register carries two protected values), and every
   replica memory access must address the original's location shifted
   by exactly [shadow_base] (anything else either re-shares a line
   with the master or reads garbage). *)
let lint_decorrelation acc ~fname ~shadow_base (f : Func.t) by_id shadow =
  List.iter
    (fun (orig, other, sh) ->
      add acc ~func:fname Diag.Shadow_collision
        (Format.asprintf
           "shadow register %a covers both %a and %a: the decorrelated \
            shadow map must be injective"
           Reg.pp sh Reg.pp orig Reg.pp other))
    (Shadow.collisions shadow);
  let offset = Int64.of_int shadow_base in
  Func.iter_insns f (fun block i ->
      if i.Insn.role = Insn.Replica && Opcode.is_mem i.Insn.op then
        match Hashtbl.find_opt by_id i.Insn.replica_of with
        | None ->
            add acc ~block:block.Block.label ~insn:i.Insn.id ~func:fname
              Diag.Decorrelation_violation
              (Format.asprintf
                 "replica memory access %a has no original (replica_of %d)"
                 Insn.pp i i.Insn.replica_of)
        | Some (orig : Insn.t) ->
            let want = Int64.add orig.Insn.imm offset in
            if i.Insn.imm <> want then
              add acc ~block:block.Block.label ~insn:i.Insn.id ~func:fname
                Diag.Decorrelation_violation
                (Format.asprintf
                   "replica memory access %a offsets the original's \
                    immediate %Ld by %Ld, expected shadow base %d"
                   Insn.pp i orig.Insn.imm
                   (Int64.sub i.Insn.imm orig.Insn.imm)
                   shadow_base))

(* Vote integrity under TMR: every majority vote (a Check-role [Sel],
   emitted only by the recovery pass) must rewrite all three copies —
   master, both replicas — with the voted value, or a diverged copy
   stays live after the vote and a later vote can be outvoted by stale
   state. The replica pair is recovered from the vote's own compare
   ([Cmp Eq p <- s1, s2]), not trusted from the pass. *)
let lint_votes acc ~fname (f : Func.t) =
  let block_rules (b : Block.t) =
    let insns = Block.insns b in
    List.iter
      (fun (i : Insn.t) ->
        if
          i.Insn.role = Insn.Check
          && i.Insn.op = Opcode.Sel
          && Array.length i.Insn.uses = 3
          && Array.length i.Insn.defs = 1
        then begin
          let p = i.Insn.uses.(0) in
          let a = i.Insn.uses.(1) in
          let r = i.Insn.uses.(2) in
          let v = i.Insn.defs.(0) in
          let compare_b =
            List.find_map
              (fun (c : Insn.t) ->
                match c.Insn.op with
                | Opcode.Cmp _
                  when c.Insn.role = Insn.Check
                       && Array.length c.Insn.defs = 1
                       && Reg.equal c.Insn.defs.(0) p
                       && Array.length c.Insn.uses = 2
                       && Reg.equal c.Insn.uses.(0) a ->
                    Some c.Insn.uses.(1)
                | _ -> None)
              insns
          in
          match compare_b with
          | None ->
              add acc ~block:b.Block.label ~insn:i.Insn.id ~func:fname
                Diag.Partial_vote_rewrite
                (Format.asprintf
                   "vote %a has no compare defining its predicate %a over \
                    the replica pair"
                   Insn.pp i Reg.pp p)
          | Some breg ->
              List.iter
                (fun target ->
                  let rewritten =
                    List.exists
                      (fun (c : Insn.t) ->
                        c.Insn.role = Insn.Check
                        && c.Insn.op = Opcode.Mov
                        && Array.length c.Insn.defs = 1
                        && Reg.equal c.Insn.defs.(0) target
                        && Array.length c.Insn.uses = 1
                        && Reg.equal c.Insn.uses.(0) v)
                      insns
                  in
                  if not rewritten then
                    add acc ~block:b.Block.label ~insn:i.Insn.id ~func:fname
                      Diag.Partial_vote_rewrite
                      (Format.asprintf
                         "vote %a never rewrites copy %a with the voted \
                          value %a"
                         Insn.pp i Reg.pp target Reg.pp v))
                [ r; a; breg ]
        end)
      insns
  in
  List.iter block_rules f.Func.blocks

(* Checkpoint placement under Rollback, reconstructed from layout
   rather than trusted from the pass: every region head of the entry
   function — entry block, every target of a backward (or self) branch
   — must open with a [Cpt] marker (re-executing a region is only
   idempotent if its head really is snapshotted), checkpoints must sit
   first in their block's body and appear at most once, and no other
   function may carry one (snapshots are invalid below the entry
   frame). *)
let lint_checkpoints acc ~entry (funcs : (string * Func.t) list) =
  let is_cpt (i : Insn.t) = Opcode.is_checkpoint i.Insn.op in
  List.iter
    (fun (fname, (f : Func.t)) ->
      if not (String.equal fname entry) then
        Func.iter_insns f (fun block i ->
            if is_cpt i then
              add acc ~block:block.Block.label ~insn:i.Insn.id ~func:fname
                Diag.Misplaced_checkpoint
                "checkpoint outside the entry function: snapshots are only \
                 valid at entry-function block tops")
      else begin
        let blocks = Array.of_list f.Func.blocks in
        let index_of = Hashtbl.create (2 * Array.length blocks) in
        Array.iteri
          (fun idx b ->
            if not (Hashtbl.mem index_of b.Block.label) then
              Hashtbl.add index_of b.Block.label idx)
          blocks;
        let heads = Array.make (Array.length blocks) false in
        if Array.length heads > 0 then heads.(0) <- true;
        Array.iteri
          (fun idx b ->
            List.iter
              (fun label ->
                match Hashtbl.find_opt index_of label with
                | Some j when j <= idx -> heads.(j) <- true
                | _ -> ())
              (Block.successors b))
          blocks;
        Array.iteri
          (fun idx (b : Block.t) ->
            let cpts = List.filter is_cpt b.Block.body in
            (match (heads.(idx), cpts) with
            | true, [] ->
                add acc ~block:b.Block.label ~func:fname
                  Diag.Missing_checkpoint
                  "region head (entry block or backward-branch target) has \
                   no checkpoint marker"
            | _, _ :: _ :: _ ->
                List.iter
                  (fun (extra : Insn.t) ->
                    add acc ~block:b.Block.label ~insn:extra.Insn.id
                      ~func:fname Diag.Misplaced_checkpoint
                      "block carries more than one checkpoint marker")
                  (List.tl cpts)
            | _ -> ());
            match (b.Block.body, cpts) with
            | first :: _, c :: _ when not (is_cpt first) ->
                add acc ~block:b.Block.label ~insn:c.Insn.id ~func:fname
                  Diag.Misplaced_checkpoint
                  "checkpoint marker is not the first instruction of its \
                   block: the snapshot taken at the block top would not \
                   cover the instructions before it"
            | _ -> ())
          blocks
      end)
    funcs

(* Structure of one scheduled block against its IR block: same
   instruction set, once each, legal bundle shapes, consistent issue
   map. Returns the linear issue positions (insn id -> cycle, cluster)
   for the timing rules. *)
let lint_block_structure acc ~fname (config : Config.t) (ir : Block.t)
    (bs : Schedule.block_schedule) =
  let label = bs.Schedule.label in
  if not (String.equal label ir.Block.label) then
    add acc ~block:ir.Block.label ~func:fname Diag.Schedule_mismatch
      (Printf.sprintf "schedule block %S paired with IR block %S" label
         ir.Block.label);
  let position = Hashtbl.create 32 in
  Array.iteri
    (fun cycle bundle ->
      if Array.length bundle <> config.Config.clusters then
        add acc ~block:label ~cycle ~func:fname Diag.Bundle_overflow
          (Printf.sprintf "cycle has %d cluster slots, machine has %d"
             (Array.length bundle) config.Config.clusters);
      Array.iteri
        (fun cluster slots ->
          if Array.length slots > config.Config.issue_width then
            add acc ~block:label ~cycle ~func:fname Diag.Bundle_overflow
              (Printf.sprintf
                 "cluster %d issues %d instructions, issue width is %d"
                 cluster (Array.length slots) config.Config.issue_width);
          Array.iter
            (fun (i : Insn.t) ->
              if Hashtbl.mem position i.Insn.id then
                add acc ~block:label ~insn:i.Insn.id ~cycle ~func:fname
                  Diag.Schedule_mismatch "instruction scheduled twice"
              else Hashtbl.replace position i.Insn.id (cycle, cluster))
            slots)
        bundle)
    bs.Schedule.bundles;
  (* Exactly the IR's instructions, and an issue map that agrees with
     the bundles. *)
  let ir_ids = Hashtbl.create 32 in
  List.iter
    (fun (i : Insn.t) ->
      Hashtbl.replace ir_ids i.Insn.id ();
      match Hashtbl.find_opt position i.Insn.id with
      | None ->
          add acc ~block:label ~insn:i.Insn.id ~func:fname
            Diag.Schedule_mismatch
            (Format.asprintf "IR instruction %a is not scheduled" Insn.pp i)
      | Some (cycle, cluster) -> (
          match Hashtbl.find_opt bs.Schedule.issue_of i.Insn.id with
          | Some (c, cl) when c = cycle && cl = cluster -> ()
          | Some (c, cl) ->
              add acc ~block:label ~insn:i.Insn.id ~cycle ~func:fname
                Diag.Schedule_mismatch
                (Printf.sprintf
                   "issue map says cycle %d cluster %d, bundles say cycle \
                    %d cluster %d"
                   c cl cycle cluster)
          | None ->
              add acc ~block:label ~insn:i.Insn.id ~cycle ~func:fname
                Diag.Schedule_mismatch "instruction missing from issue map"))
    (Block.insns ir);
  Hashtbl.iter
    (fun id (cycle, _) ->
      if not (Hashtbl.mem ir_ids id) then
        add acc ~block:label ~insn:id ~cycle ~func:fname
          Diag.Schedule_mismatch "scheduled instruction is not in the IR block")
    position;
  position

(* Branch and callee targets must resolve: branch labels within the
   function, callees within the schedule. *)
let lint_targets acc ~fname (labels : (string, unit) Hashtbl.t)
    (callees : (string, unit) Hashtbl.t) (bs : Schedule.block_schedule) =
  let check_label (i : Insn.t) name =
    if name <> "" && not (Hashtbl.mem labels name) then
      add acc ~block:bs.Schedule.label ~insn:i.Insn.id ~func:fname
        Diag.Unresolved_target
        (Printf.sprintf "branch target %S is not a block of this function"
           name)
  in
  Array.iter
    (Array.iter
       (Array.iter (fun (i : Insn.t) ->
            match i.Insn.op with
            | Opcode.Br -> check_label i i.Insn.target
            | Opcode.Brc _ ->
                check_label i i.Insn.target;
                check_label i i.Insn.target2
            | Opcode.Call ->
                if not (Hashtbl.mem callees i.Insn.target) then
                  add acc ~block:bs.Schedule.label ~insn:i.Insn.id
                    ~func:fname Diag.Unresolved_target
                    (Printf.sprintf "callee %S is not in the schedule"
                       i.Insn.target)
            | _ -> ())))
    bs.Schedule.bundles

(* Operand timing within a block: walking the bundles in issue order
   (cycle, then cluster, then slot), every read of a register written
   earlier in the block must wait out the producer's latency — plus the
   inter-cluster delay when the producer sits on another cluster. The
   same bound applies between a check and the instruction it guards,
   which is how "a delay cycle dropped from the schedule" surfaces. *)
let lint_timing acc ~fname ~voting (config : Config.t)
    (bs : Schedule.block_schedule) position =
  let latency (i : Insn.t) = Latency.of_op config.Config.latencies i.Insn.op in
  let last_def = Reg.Tbl.create 32 in
  let walk f =
    Array.iteri
      (fun cycle bundle ->
        Array.iteri
          (fun cluster slots ->
            Array.iter (fun i -> f cycle cluster i) slots)
          bundle)
      bs.Schedule.bundles
  in
  walk (fun cycle cluster (i : Insn.t) ->
      let seen = ref Reg.Set.empty in
      Array.iter
        (fun r ->
          if Reg.Set.mem r !seen then ()
          else begin
            seen := Reg.Set.add r !seen;
            match Reg.Tbl.find_opt last_def r with
            | None -> ()
            | Some (dc, dcl, lat) ->
              let cross = if dcl <> cluster then config.Config.delay else 0 in
              let required = dc + lat + cross in
              if cycle < required then
                add acc ~block:bs.Schedule.label ~insn:i.Insn.id ~cycle
                  ~func:fname Diag.Delay_violation
                  (Format.asprintf
                     "%a reads %a at cycle %d, but its producer issues at \
                      cycle %d on cluster %d (latency %d%s): earliest legal \
                      read is cycle %d"
                     Insn.pp i Reg.pp r cycle dc dcl lat
                     (if cross > 0 then
                        Printf.sprintf " + delay %d" config.Config.delay
                      else "")
                     required)
          end)
        i.Insn.uses;
      Array.iter
        (fun r -> Reg.Tbl.replace last_def r (cycle, cluster, latency i))
        i.Insn.defs;
      (* A detection check must complete before the instruction it
         guards issues, or the fault window it guards is open. Under a
         voting scheme only the fallback [Chk]s are fail-stop: the vote
         chain feeds the guarded instruction through a data dependency
         on the repaired master (already covered by the operand-timing
         rule above), and the shadow rewrites may legally complete
         later. *)
      if
        i.Insn.role = Insn.Check
        && i.Insn.protects >= 0
        && ((not voting) || Opcode.is_check i.Insn.op)
      then
        match Hashtbl.find_opt position i.Insn.protects with
        | None -> ()
        | Some (pc, pcl) ->
            let cross = if pcl <> cluster then config.Config.delay else 0 in
            let required = cycle + latency i + cross in
            if pc < required then
              add acc ~block:bs.Schedule.label ~insn:i.Insn.id ~cycle
                ~func:fname Diag.Delay_violation
                (Printf.sprintf
                   "check completes at cycle %d but the instruction it \
                    guards (insn %d) issues at cycle %d"
                   required i.Insn.protects pc))

let lint_func acc ~options ~hardened ~voting ~decorrelated ~shadow_base
    (config : Config.t) (callees : (string, unit) Hashtbl.t) fname
    (fs : Schedule.func_schedule) =
  let f = fs.Schedule.func in
  let ir_blocks = Array.of_list f.Func.blocks in
  if Array.length ir_blocks <> Array.length fs.Schedule.blocks then
    add acc ~func:fname Diag.Schedule_mismatch
      (Printf.sprintf "IR has %d blocks, schedule has %d"
         (Array.length ir_blocks)
         (Array.length fs.Schedule.blocks));
  let labels = Hashtbl.create 8 in
  Array.iter
    (fun (b : Block.t) -> Hashtbl.replace labels b.Block.label ())
    ir_blocks;
  let n = min (Array.length ir_blocks) (Array.length fs.Schedule.blocks) in
  for k = 0 to n - 1 do
    let ir = ir_blocks.(k) and bs = fs.Schedule.blocks.(k) in
    let position = lint_block_structure acc ~fname config ir bs in
    lint_targets acc ~fname labels callees bs;
    lint_timing acc ~fname ~voting config bs position
  done;
  if hardened && f.Func.protect then begin
    let by_id, shadow = Shadow.reconstruct f in
    lint_isolation acc ~fname f;
    lint_coverage acc ~fname ~voting ~decorrelated options f shadow;
    if voting then lint_votes acc ~fname f;
    if decorrelated then
      lint_decorrelation acc ~fname ~shadow_base f by_id shadow
  end

let schedule ?(options = Options.default) ~scheme (s : Schedule.t) =
  let acc = { diags = [] } in
  let hardened = Scheme.hardened scheme in
  let voting = scheme = Scheme.Tmr in
  let decorrelated = scheme = Scheme.Dme in
  let shadow_base =
    match s.Schedule.program.Program.shadow_base with
    | Some b -> b
    | None -> 0
  in
  if decorrelated && s.Schedule.program.Program.shadow_base = None then
    add acc ~func:s.Schedule.program.Program.entry
      Diag.Decorrelation_violation
      "DME program carries no shadow base: the replica image boundary is \
       unrecoverable and the memory digest would cover the replica half";
  let config = s.Schedule.config in
  let callees = Hashtbl.create 8 in
  List.iter (fun (name, _) -> Hashtbl.replace callees name ()) s.Schedule.funcs;
  let entry = s.Schedule.program.Program.entry in
  if not (Hashtbl.mem callees entry) then
    add acc ~func:entry Diag.Unresolved_target
      (Printf.sprintf "entry function %S is not in the schedule" entry);
  List.iter
    (fun (f : Func.t) ->
      if not (Hashtbl.mem callees f.Func.name) then
        add acc ~func:f.Func.name Diag.Schedule_mismatch
          "program function has no schedule")
    s.Schedule.program.Program.funcs;
  List.iter
    (fun (fname, fs) ->
      lint_func acc ~options ~hardened ~voting ~decorrelated ~shadow_base
        config callees fname fs)
    s.Schedule.funcs;
  if scheme = Scheme.Rollback then
    lint_checkpoints acc ~entry
      (List.map
         (fun (fname, fs) -> (fname, fs.Schedule.func))
         s.Schedule.funcs);
  List.rev acc.diags
