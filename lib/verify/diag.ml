type rule =
  | Replica_overlap
  | Missing_replica
  | Missing_check
  | Missing_shadow_copy
  | Bundle_overflow
  | Unresolved_target
  | Delay_violation
  | Schedule_mismatch
  | Missing_vote
  | Partial_vote_rewrite
  | Missing_checkpoint
  | Misplaced_checkpoint
  | Shadow_collision
  | Decorrelation_violation

let rule_name = function
  | Replica_overlap -> "replica-overlap"
  | Missing_replica -> "missing-replica"
  | Missing_check -> "missing-check"
  | Missing_shadow_copy -> "missing-shadow-copy"
  | Bundle_overflow -> "bundle-overflow"
  | Unresolved_target -> "unresolved-target"
  | Delay_violation -> "delay-violation"
  | Schedule_mismatch -> "schedule-mismatch"
  | Missing_vote -> "missing-vote"
  | Partial_vote_rewrite -> "partial-vote-rewrite"
  | Missing_checkpoint -> "missing-checkpoint"
  | Misplaced_checkpoint -> "misplaced-checkpoint"
  | Shadow_collision -> "shadow-collision"
  | Decorrelation_violation -> "decorrelation-violation"

let all_rules =
  [
    Replica_overlap;
    Missing_replica;
    Missing_check;
    Missing_shadow_copy;
    Bundle_overflow;
    Unresolved_target;
    Delay_violation;
    Schedule_mismatch;
    Missing_vote;
    Partial_vote_rewrite;
    Missing_checkpoint;
    Misplaced_checkpoint;
    Shadow_collision;
    Decorrelation_violation;
  ]

type t = {
  rule : rule;
  func : string;
  block : string;
  insn : int;
  cycle : int;
  message : string;
}

let make ?(block = "") ?(insn = -1) ?(cycle = -1) ~func rule message =
  { rule; func; block; insn; cycle; message }

let pp ppf d =
  Format.fprintf ppf "%s: %s" (rule_name d.rule) d.func;
  if d.block <> "" then Format.fprintf ppf ".%s" d.block;
  if d.insn >= 0 then Format.fprintf ppf " insn %d" d.insn;
  if d.cycle >= 0 then Format.fprintf ppf " cycle %d" d.cycle;
  Format.fprintf ppf ": %s" d.message

let to_string d = Format.asprintf "%a" pp d

let to_json d =
  let module J = Casted_obs.Json in
  J.Obj
    ([
       ("rule", J.String (rule_name d.rule));
       ("func", J.String d.func);
     ]
    @ (if d.block = "" then [] else [ ("block", J.String d.block) ])
    @ (if d.insn < 0 then [] else [ ("insn", J.Int d.insn) ])
    @ (if d.cycle < 0 then [] else [ ("cycle", J.Int d.cycle) ])
    @ [ ("message", J.String d.message) ])

let list_to_json ds = Casted_obs.Json.List (List.map to_json ds)
