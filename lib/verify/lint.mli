(** Static lint of a scheduled program against the SWIFT-style
    invariants the detection pass must preserve (DESIGN.md §10).

    [schedule ~scheme s] checks the {!Casted_sched.Schedule.t} / IR pair
    produced by {!Casted_detect.Pipeline.compile} and returns every
    violation as a {!Diag.t}. A clean pipeline returns [[]] for every
    scheme, workload and machine shape; anything else is a compiler bug.

    What is checked, per function:

    - {b structure}: the schedule covers exactly the IR's blocks and
      instructions, once each, with a consistent issue map;
    - {b bundles}: every cycle has one slot array per cluster and at
      most [issue_width] instructions per cluster;
    - {b targets}: branch labels resolve within the function, callees
      and the program entry resolve within the schedule;
    - {b register isolation}: registers written by replicas and shadow
      copies are disjoint from every register the original stream
      defines or reads (and from the parameters);
    - {b replication} (hardened schemes, [Full] scope): every
      replicable original instruction has a replica;
    - {b checks} (hardened schemes): every non-replicated instruction
      the options say to check is covered by a check per shadowed
      operand, in its own block, scheduled early enough to fire first;
    - {b shadow copies} (hardened schemes): every value defined by a
      non-replicated instruction — and every parameter, when
      [shadow_params] — is copied into its shadow register;
    - {b timing}: within a block, no instruction reads an operand
      before its producer's issue + latency, plus the inter-cluster
      delay when the producer sits on another cluster.

    [options] must be the {!Casted_detect.Options.t} the program was
    compiled with (default {!Casted_detect.Options.default}); the check
    and shadow rules key off it. *)
val schedule :
  ?options:Casted_detect.Options.t ->
  scheme:Casted_detect.Scheme.t ->
  Casted_sched.Schedule.t ->
  Diag.t list
