(** Pipeline fuzzer: seeded random programs through compile → lint →
    differential oracle.

    Programs are generated from [Rng.derive]-split per-index seeds, so
    program [i] of a campaign is the same bytes-for-bytes regardless of
    [--jobs] — a failing index reported by CI replays locally with
    [casted fuzz --seed S --program i].

    A program {e fails} when any matrix cell produces a lint diagnostic
    ({!Lint.schedule}) or an oracle divergence ({!Oracle.check_cell}).
    Failures are shrunk greedily — statement deletion, [if]/loop body
    flattening, loop-count reduction — to a local minimum that still
    fails, and reported with the shrunk program's assembly so the
    reproducer is a standalone [.casted] file. *)

(** One statement of the generator's structured recipe language. *)
type stmt

(** The cells a fuzzed program is pushed through when none are given:
    all four schemes over a small spread of issue widths and delays. *)
val default_cells : Oracle.cell list

(** [recipe ~seed index] is the deterministic recipe for program
    [index] of campaign [seed]. *)
val recipe : seed:int -> int -> stmt list

(** Render a recipe through the {!Casted_ir.Builder} into a runnable
    program (fixed aligned memory slots, observability epilogue, a
    protected callee exercising parameter shadowing and call checks). *)
val emit_program : stmt list -> Casted_ir.Program.t

(** [check_program program] validates, compiles, lints and
    differentially runs [program] over [cells]; empty lists mean the
    pipeline is clean on it. *)
val check_program :
  ?cells:Oracle.cell list ->
  ?fuel:int ->
  Casted_ir.Program.t ->
  (Oracle.cell * Diag.t) list * Oracle.divergence list

type failure = {
  index : int;  (** failing program index within the campaign *)
  seed : int;  (** campaign seed — replay coordinates *)
  asm : string;  (** shrunk program, printable as a [.casted] file *)
  diags : (Oracle.cell * Diag.t) list;  (** lint hits on the shrunk program *)
  divergences : Oracle.divergence list;  (** oracle hits on the shrunk program *)
  shrink_steps : int;  (** how many shrinking steps reached the minimum *)
}

val pp_failure : Format.formatter -> failure -> unit

(** [check_index ~seed index] generates, checks and — on failure —
    shrinks program [index]. [None] means clean. *)
val check_index :
  ?cells:Oracle.cell list ->
  ?fuel:int ->
  seed:int ->
  int ->
  failure option

(** [run ~programs ~seed ()] fuzzes [programs] programs, fanning the
    indices over [pool] when given, and returns the lowest-index
    failure, shrunk. *)
val run :
  ?pool:Casted_exec.Pool.t ->
  ?cells:Oracle.cell list ->
  ?fuel:int ->
  programs:int ->
  seed:int ->
  unit ->
  failure option
