module Scheme = Casted_detect.Scheme
module Options = Casted_detect.Options
module Pipeline = Casted_detect.Pipeline
module Simulator = Casted_sim.Simulator
module Decode = Casted_sim.Decode
module Outcome = Casted_sim.Outcome
module Replay = Casted_sim.Replay
module Pool = Casted_exec.Pool

type cell = { scheme : Scheme.t; issue_width : int; delay : int }

let pp_cell ppf c =
  Format.fprintf ppf "%s/i%d/d%d" (Scheme.name c.scheme) c.issue_width c.delay

let cells ?(issue_widths = [ 1; 2; 4 ]) ?(delays = [ 1; 2 ]) () =
  List.concat_map
    (fun issue_width ->
      { scheme = Scheme.Noed; issue_width; delay = 1 }
      :: { scheme = Scheme.Sced; issue_width; delay = 1 }
      :: List.concat_map
           (fun delay ->
             [
               { scheme = Scheme.Dced; issue_width; delay };
               { scheme = Scheme.Casted; issue_width; delay };
               { scheme = Scheme.Dme; issue_width; delay };
               { scheme = Scheme.Tmr; issue_width; delay };
               { scheme = Scheme.Rollback; issue_width; delay };
             ])
           delays)
    issue_widths

type divergence = {
  cell : cell;
  field : string;
  reference : string;
  got : string;
}

let pp_divergence ppf d =
  Format.fprintf ppf "%a: %s: expected %s, got %s" pp_cell d.cell d.field
    d.reference d.got

let divergence_to_json d =
  let module J = Casted_obs.Json in
  J.Obj
    [
      ("scheme", J.String (Scheme.name d.cell.scheme));
      ("issue_width", J.Int d.cell.issue_width);
      ("delay", J.Int d.cell.delay);
      ("field", J.String d.field);
      ("reference", J.String d.reference);
      ("got", J.String d.got);
    ]

let hex s = Digest.to_hex (Digest.string s)
let term_string t = Format.asprintf "%a" Outcome.pp_termination t

let compile ?options cell program =
  Pipeline.compile ?options ~scheme:cell.scheme ~issue_width:cell.issue_width
    ~delay:cell.delay program

let reference ?options ?fuel program =
  let c = compile ?options { scheme = Scheme.Noed; issue_width = 1; delay = 1 }
      program
  in
  Simulator.run ?fuel ~with_mem_digest:true c.Pipeline.schedule

(* Field-for-field comparison of two runs of the same cell: [run],
   [run_decoded], [run_replayed] and [run_compiled] all promise
   bit-identical results, and a fault-free run is deterministic, so any
   difference is a simulator bug. [label] names the pair being
   compared, e.g. ["run vs run_decoded"]. *)
let cross_check_with ~label cell (a : Outcome.run) (b : Outcome.run) =
  let d field reference got = { cell; field; reference; got } in
  let int field x y acc =
    if x = y then acc
    else d (label ^ ": " ^ field) (string_of_int x) (string_of_int y) :: acc
  in
  []
  |> int "cycles" a.Outcome.cycles b.Outcome.cycles
  |> int "dyn_insns" a.Outcome.dyn_insns b.Outcome.dyn_insns
  |> int "dyn_defs" a.Outcome.dyn_defs b.Outcome.dyn_defs
  |> int "dyn_mem" a.Outcome.dyn_mem b.Outcome.dyn_mem
  |> int "dyn_branches" a.Outcome.dyn_branches b.Outcome.dyn_branches
  |> int "dyn_xreads" a.Outcome.dyn_xreads b.Outcome.dyn_xreads
  |> int "dyn_checks" a.Outcome.dyn_checks b.Outcome.dyn_checks
  |> int "slots_total" a.Outcome.slots_total b.Outcome.slots_total
  |> int "exit_code" a.Outcome.exit_code b.Outcome.exit_code
  |> fun acc ->
  let acc =
    if a.Outcome.termination = b.Outcome.termination then acc
    else
      d (label ^ ": termination")
        (term_string a.Outcome.termination)
        (term_string b.Outcome.termination)
      :: acc
  in
  let acc =
    if String.equal a.Outcome.output b.Outcome.output then acc
    else
      d (label ^ ": output") (hex a.Outcome.output) (hex b.Outcome.output)
      :: acc
  in
  let acc =
    if String.equal a.Outcome.mem_digest b.Outcome.mem_digest then acc
    else
      d (label ^ ": mem_digest")
        (Digest.to_hex a.Outcome.mem_digest)
        (Digest.to_hex b.Outcome.mem_digest)
      :: acc
  in
  List.rev acc

let cross_check cell a b = cross_check_with ~label:"run vs run_decoded" cell a b

(* The replay legs of the four-way check: capture a small snapshot set
   on the cell's program (dense stride, so the thinning path is
   exercised too) and replay the fault-free run from EVERY snapshot —
   on both the decoded interpreter and the stage-2 compiled engine.
   Each replayed suffix must land on the decoded run field for field —
   cycles, every counter, output, cache stats, the whole memory image.
   Any miss means State.snapshot/restore lost a piece of the machine
   (or the compiled engine resumes it differently). *)
let replay_cross_check ?fuel cell (decoded_run : Outcome.run) decoded stage2 =
  let r = Replay.capture ~init_stride:32 ~target:4 ?fuel decoded in
  Replay.snapshots r |> Array.to_list
  |> List.concat_map (fun snapshot ->
         let replayed =
           Simulator.run_replayed ?fuel ~with_mem_digest:true ~snapshot
             decoded
         in
         let compiled_replayed =
           Simulator.run_compiled_replayed ?fuel ~with_mem_digest:true
             ~snapshot stage2
         in
         cross_check_with ~label:"run_decoded vs run_replayed" cell
           decoded_run replayed
         @ cross_check_with ~label:"run_decoded vs compiled_replayed" cell
             decoded_run compiled_replayed)

let check_cell ?options ?fuel ~reference:(ref_run : Outcome.run) program cell
    =
  let compiled = compile ?options cell program in
  let sched = compiled.Pipeline.schedule in
  let decoded = Decode.of_schedule sched in
  let stage2 = Casted_sim.Compile.of_decoded decoded in
  let run = Simulator.run ?fuel ~with_mem_digest:true sched in
  let decoded_run =
    Simulator.run_decoded ?fuel ~with_mem_digest:true decoded
  in
  let compiled_run =
    Simulator.run_compiled ?fuel ~with_mem_digest:true stage2
  in
  let d field reference got = { cell; field; reference; got } in
  let archi =
    (if run.Outcome.termination = ref_run.Outcome.termination then []
     else
       [
         d "termination"
           (term_string ref_run.Outcome.termination)
           (term_string run.Outcome.termination);
       ])
    @ (if run.Outcome.exit_code = ref_run.Outcome.exit_code then []
       else
         [
           d "exit_code"
             (string_of_int ref_run.Outcome.exit_code)
             (string_of_int run.Outcome.exit_code);
         ])
    @ (if String.equal run.Outcome.output ref_run.Outcome.output then []
       else
         [ d "output" (hex ref_run.Outcome.output) (hex run.Outcome.output) ])
    @
    if String.equal run.Outcome.mem_digest ref_run.Outcome.mem_digest then []
    else
      [
        d "mem_digest"
          (Digest.to_hex ref_run.Outcome.mem_digest)
          (Digest.to_hex run.Outcome.mem_digest);
      ]
  in
  archi @ cross_check cell run decoded_run
  @ cross_check_with ~label:"run_decoded vs run_compiled" cell decoded_run
      compiled_run
  @ replay_cross_check ?fuel cell decoded_run decoded stage2

let differential ?pool ?issue_widths ?delays ?options ?fuel program =
  let ref_run = reference ?options ?fuel program in
  let cs = Array.of_list (cells ?issue_widths ?delays ()) in
  let check cell = check_cell ?options ?fuel ~reference:ref_run program cell in
  let per_cell =
    match pool with
    | Some p -> Pool.map p check cs
    | None -> Array.map check cs
  in
  List.concat (Array.to_list per_cell)
