module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Pipeline = Casted_detect.Pipeline
module Pool = Casted_exec.Pool

type entry = {
  workload : string;
  cell : Oracle.cell;
  diags : Diag.t list;
  divergences : Oracle.divergence list;
}

(* Each job rebuilds its workload and reference run rather than sharing
   them across cells: jobs stay self-contained (safe to fan over
   domains) and a Fault-size build + NOED run costs single-digit
   milliseconds. *)
let check_one size (w : W.t) cell =
  let program = w.W.build size in
  let compiled =
    Pipeline.compile ~scheme:cell.Oracle.scheme
      ~issue_width:cell.Oracle.issue_width ~delay:cell.Oracle.delay program
  in
  let diags =
    Lint.schedule ~scheme:cell.Oracle.scheme compiled.Pipeline.schedule
  in
  let reference = Oracle.reference program in
  let divergences = Oracle.check_cell ~reference program cell in
  { workload = w.W.name; cell; diags; divergences }

let run ?pool ?benchmarks ?(size = W.Fault) ?(cells = Oracle.cells ()) () =
  let workloads =
    match benchmarks with
    | None -> Registry.all
    | Some names ->
        List.map
          (fun name ->
            match Registry.find name with
            | Some w -> w
            | None ->
                invalid_arg
                  (Printf.sprintf "Matrix.run: unknown benchmark %s (try: %s)"
                     name
                     (String.concat ", " (Registry.names ()))))
          names
  in
  let jobs =
    Array.of_list
      (List.concat_map (fun w -> List.map (fun c -> (w, c)) cells) workloads)
  in
  let check (w, cell) = check_one size w cell in
  let entries =
    match pool with
    | Some p -> Pool.map p check jobs
    | None -> Array.map check jobs
  in
  Array.to_list entries

let clean entries =
  List.for_all (fun e -> e.diags = [] && e.divergences = []) entries

let totals entries =
  List.fold_left
    (fun (d, v) e ->
      (d + List.length e.diags, v + List.length e.divergences))
    (0, 0) entries

let pp_entry ppf e =
  Format.fprintf ppf "@[<v>%s @@ %a: " e.workload Oracle.pp_cell e.cell;
  if e.diags = [] && e.divergences = [] then Format.fprintf ppf "clean@]"
  else begin
    Format.fprintf ppf "%d diagnostics, %d divergences@,"
      (List.length e.diags)
      (List.length e.divergences);
    List.iter (fun d -> Format.fprintf ppf "  %a@," Diag.pp d) e.diags;
    List.iter
      (fun d -> Format.fprintf ppf "  %a@," Oracle.pp_divergence d)
      e.divergences;
    Format.fprintf ppf "@]"
  end

let to_json entries =
  let module J = Casted_obs.Json in
  J.List
    (List.map
       (fun e ->
         J.Obj
           [
             ("workload", J.String e.workload);
             ( "scheme",
               J.String (Casted_detect.Scheme.name e.cell.Oracle.scheme) );
             ("issue_width", J.Int e.cell.Oracle.issue_width);
             ("delay", J.Int e.cell.Oracle.delay);
             ("diags", Diag.list_to_json e.diags);
             ( "divergences",
               J.List (List.map Oracle.divergence_to_json e.divergences) );
           ])
       entries)
