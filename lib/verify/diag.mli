(** Structured lint diagnostics.

    Every invariant violation found by {!Lint} is reported as one
    diagnostic carrying the rule that fired and the coordinates of the
    offending code (function / block / instruction id / schedule
    cycle), so a CI failure pinpoints the broken pass output instead of
    a mysteriously wrong coverage number. Diagnostics render as one-line
    text ({!pp}) or as JSON ({!to_json}) through the {!Casted_obs}
    sinks. *)

(** The invariant catalogue (DESIGN.md §10). *)
type rule =
  | Replica_overlap
      (** a shadow register (defined by a replica or shadow copy) is
          also defined or read by the master instruction stream *)
  | Missing_replica
      (** a replicable original instruction has no replica (Full scope
          only) *)
  | Missing_check
      (** a non-replicated instruction reads a shadowed register with
          no check covering it in its block *)
  | Missing_shadow_copy
      (** a value defined by a non-replicated instruction (or a
          parameter) was never copied into the shadow space *)
  | Bundle_overflow
      (** a cycle carries more instructions than the machine has
          clusters × issue slots, or the wrong cluster count *)
  | Unresolved_target
      (** a branch label or callee name does not resolve in the
          schedule *)
  | Delay_violation
      (** an operand is read earlier than producer issue + latency
          (+ inter-cluster delay when the producer sits on another
          cluster), or a check fires too late to guard its
          instruction *)
  | Schedule_mismatch
      (** the schedule disagrees with the IR: missing, duplicated or
          unknown instructions, inconsistent issue map, or mismatched
          block structure *)
  | Missing_vote
      (** TMR: a protected instruction reads a triplicated GP register
          with no majority-vote [Sel] covering it in its block *)
  | Partial_vote_rewrite
      (** TMR: a majority vote does not rewrite all three copies with
          the voted value, leaving a diverged copy live after the
          vote *)
  | Missing_checkpoint
      (** Rollback: a region head (entry block or backward-branch
          target) of the entry function carries no [Cpt] marker *)
  | Misplaced_checkpoint
      (** Rollback: a [Cpt] marker outside the entry function, not at
          the head of its block's body, or duplicated within a block *)
  | Shadow_collision
      (** DME: two distinct protected registers map to the same shadow
          register — the shuffle must stay a bijection of the shadow
          space, or one shadow carries two values and checks can
          falsely pass *)
  | Decorrelation_violation
      (** DME: a decorrelation invariant broke — a replica memory
          access whose immediate is not the original's shifted by
          exactly [shadow_base], or a DME program without a recorded
          [shadow_base] *)

val rule_name : rule -> string
val all_rules : rule list

type t = {
  rule : rule;
  func : string;
  block : string;  (** [""] when function-level *)
  insn : int;  (** instruction id; [-1] when not tied to one *)
  cycle : int;  (** schedule cycle; [-1] when not schedule-level *)
  message : string;
}

val make :
  ?block:string -> ?insn:int -> ?cycle:int -> func:string -> rule ->
  string -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_json : t -> Casted_obs.Json.t

(** Render a diagnostic list as a JSON array. *)
val list_to_json : t list -> Casted_obs.Json.t
