type t = {
  n_jobs : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when the queue gains tasks or on close *)
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  mutable tasks_done : int;
  mutable busy_s : float;
  created_at : float;
}

let now () = Unix.gettimeofday ()

(* Pop one task while holding [t.mutex]. *)
let rec worker t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work t.mutex
  done;
  if Queue.is_empty t.queue then (* closed and drained *)
    Mutex.unlock t.mutex
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker t
  end

let create ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      n_jobs = jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work = Condition.create ();
      closed = false;
      domains = [];
      tasks_done = 0;
      busy_s = 0.0;
      created_at = now ();
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            Casted_obs.Trace.name_track (Printf.sprintf "pool-worker-%d" (i + 1));
            worker t));
  t

let jobs t = t.n_jobs

(* A batch shares the pool mutex; [finished] is signalled when the last
   task of the batch completes (possibly on a worker domain). *)
type batch = { mutable remaining : int; finished : Condition.t }

(* Shared core of {map} and {map_result}: run every task (capturing
   exceptions per slot, so one failing task never prevents the rest of
   the batch from completing) and return the captured results in input
   order. *)
let map_capture t f arr =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.map: pool is shut down"
  end;
  Mutex.unlock t.mutex;
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.n_jobs = 1 then
    Array.map
      (fun x ->
        let t0 = now () in
        let r =
          try
            Ok (Casted_obs.Trace.with_span ~cat:"pool" "pool.task" (fun () -> f x))
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        t.tasks_done <- t.tasks_done + 1;
        t.busy_s <- t.busy_s +. (now () -. t0);
        r)
      arr
  else begin
    let results = Array.make n None in
    let batch = { remaining = n; finished = Condition.create () } in
    let task i () =
      let t0 = now () in
      let r =
        try
          Ok (Casted_obs.Trace.with_span ~cat:"pool" "pool.task" (fun () -> f arr.(i)))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      let dt = now () -. t0 in
      Mutex.lock t.mutex;
      results.(i) <- Some r;
      t.tasks_done <- t.tasks_done + 1;
      t.busy_s <- t.busy_s +. dt;
      batch.remaining <- batch.remaining - 1;
      if batch.remaining = 0 then Condition.broadcast batch.finished;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue;
      Casted_obs.Metrics.gauge "pool.queue_depth"
        (float_of_int (Queue.length t.queue))
    done;
    Casted_obs.Metrics.incr ~by:n "pool.tasks_submitted";
    Condition.broadcast t.work;
    (* The caller is an executor too: help drain the queue (any batch),
       then wait for this batch's in-flight tasks. *)
    let rec help () =
      if batch.remaining > 0 then
        if not (Queue.is_empty t.queue) then begin
          let task = Queue.pop t.queue in
          Mutex.unlock t.mutex;
          task ();
          Mutex.lock t.mutex;
          help ()
        end
        else begin
          Condition.wait batch.finished t.mutex;
          help ()
        end
    in
    help ();
    Mutex.unlock t.mutex;
    Array.mapi
      (fun i -> function
        | Some r -> r
        | None ->
            (* The batch counter hit zero, so every task ran; an empty
               slot means a worker lost its result. Name the slot so the
               failure is attributable. *)
            failwith
              (Printf.sprintf
                 "Pool.map: batch of %d finished but slot %d has no result \
                  (worker dropped it?)"
                 n i))
      results
  end

let map t f arr =
  Array.map
    (function
      | Ok v -> v
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    (map_capture t f arr)

let map_result t f arr =
  Array.map
    (function Ok v -> Ok v | Error (e, _bt) -> Error e)
    (map_capture t f arr)

let map_list t f l = Array.to_list (map t f (Array.of_list l))

let shutdown t =
  Mutex.lock t.mutex;
  let ds = t.domains in
  t.closed <- true;
  t.domains <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join ds

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

type stats = {
  jobs : int;
  domains : int;
  tasks : int;
  busy_s : float;
  wall_s : float;
}

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      jobs = t.n_jobs;
      domains = t.n_jobs - 1;
      tasks = t.tasks_done;
      busy_s = t.busy_s;
      wall_s = now () -. t.created_at;
    }
  in
  Mutex.unlock t.mutex;
  s

let utilisation s =
  if s.wall_s <= 0.0 then 0.0
  else Float.min 1.0 (Float.max 0.0 (s.busy_s /. (s.wall_s *. float_of_int s.jobs)))

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "jobs must be >= 1 (got %d)" n)
  | None -> Error (Printf.sprintf "jobs must be an integer (got %S)" s)

let default_jobs () =
  match Sys.getenv_opt "CASTED_JOBS" with
  | None -> Ok (Domain.recommended_domain_count ())
  | Some s -> (
      match parse_jobs s with
      | Ok n -> Ok n
      | Error msg -> Error ("CASTED_JOBS: " ^ msg))
