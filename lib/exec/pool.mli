(** Domain pool executor: a shared work queue drained by [jobs - 1]
    worker domains plus the submitting domain itself.

    The pool is the parallel substrate of the experiment engine
    ({!Casted_engine.Engine}): independent experiment jobs — sweep
    points, Monte-Carlo trials — are fanned out over the pool with
    {!map}, which preserves input order so parallel and sequential
    execution produce identical result arrays.

    A pool with [jobs = 1] spawns no domains and runs every task inline
    in the caller, so the [jobs = 1] path is bit-identical to, and as
    cheap as, a plain [Array.map]. *)

type t

(** [create ~jobs ()] makes a pool of [max 1 jobs] executors
    ([jobs - 1] spawned domains; the caller of {!map} is the last).
    Raises [Invalid_argument] if [jobs < 1]. *)
val create : jobs:int -> unit -> t

(** Executor count the pool was created with (>= 1). *)
val jobs : t -> int

(** [map pool f arr] applies [f] to every element, in parallel across
    the pool, and returns the results in input order. Exceptions raised
    by [f] are re-raised in the caller (first failing index wins).
    Raises [Invalid_argument] on a pool that has been {!shutdown}. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** {!map} over a list, preserving order. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** Fault-tolerant {!map}: a task that raises yields [Error exn] in its
    slot instead of aborting the batch — every other task still runs to
    completion. This is the substrate for trial-level fault tolerance
    in Monte-Carlo campaigns: one pathological trial is recorded, not
    fatal to the pool. *)
val map_result : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array

(** Drain the queue, join all worker domains and mark the pool closed.
    Every task already submitted is completed before the workers exit —
    no job is lost. Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
    afterwards, also on exception. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** Lifetime counters, for the engine utilisation summary. *)
type stats = {
  jobs : int;  (** executors ([domains] + the caller) *)
  domains : int;  (** worker domains spawned *)
  tasks : int;  (** tasks completed so far *)
  busy_s : float;  (** summed wall-clock seconds spent inside tasks *)
  wall_s : float;  (** wall-clock seconds since [create] *)
}

val stats : t -> stats

(** [utilisation s] = [busy_s / (wall_s * jobs)], clamped to [0, 1]:
    the fraction of available executor time spent running tasks. *)
val utilisation : stats -> float

(** {2 Sizing knobs} *)

(** Number of executors to use by default: [$CASTED_JOBS] if set, else
    {!Domain.recommended_domain_count}. Malformed or non-positive
    [$CASTED_JOBS] is an [Error] carrying a human-readable message —
    callers must reject it loudly, not fall back silently. *)
val default_jobs : unit -> (int, string) result

(** Parse a user-supplied job count ([--jobs] or [$CASTED_JOBS]). *)
val parse_jobs : string -> (int, string) result
