module Scheme = Casted_detect.Scheme
module Workload = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Fault = Casted_sim.Fault
module Montecarlo = Casted_sim.Montecarlo
module Engine = Casted_engine.Engine
module Cache = Casted_engine.Cache

type row = {
  benchmark : string;
  scheme : Scheme.t;
  issue : int;
  delay : int;
  result : Montecarlo.result;
}

let campaign_on engine ?(seed = 0xCA57ED) ?(model = Fault.Reg_bit)
    ?ci_halfwidth ~trials ~benchmark ~scheme ~issue ~delay () =
  (match Registry.find benchmark with
  | Some _ -> ()
  | None -> invalid_arg ("Coverage: unknown benchmark " ^ benchmark));
  let spec =
    Cache.key ~workload:benchmark ~size:Workload.Fault ~scheme
      ~issue_width:issue ~delay ()
  in
  let result =
    Engine.campaign engine ~seed ~model ?ci_halfwidth ~trials spec
  in
  { benchmark; scheme; issue; delay; result }

let with_engine ?engine f =
  match engine with Some e -> f e | None -> Engine.with_engine f

let campaign ?engine ?seed ?model ?ci_halfwidth ~trials ~benchmark ~scheme
    ~issue ~delay () =
  with_engine ?engine (fun e ->
      campaign_on e ?seed ?model ?ci_halfwidth ~trials ~benchmark ~scheme
        ~issue ~delay ())

let fig9 ?engine ?seed ?model ?(trials = 300) ?benchmarks () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> Registry.names ()
  in
  with_engine ?engine (fun e ->
      List.concat_map
        (fun benchmark ->
          List.map
            (fun scheme ->
              campaign_on e ?seed ?model ~trials ~benchmark ~scheme ~issue:2
                ~delay:2 ())
            Scheme.all)
        benchmarks)

let fig10 ?engine ?seed ?model ?(trials = 300) ?(benchmark = "h263dec")
    ?(schemes = Scheme.all) () =
  with_engine ?engine (fun e ->
      List.concat_map
        (fun issue ->
          List.concat_map
            (fun delay ->
              List.map
                (fun scheme ->
                  campaign_on e ?seed ?model ~trials ~benchmark ~scheme ~issue
                    ~delay ())
                schemes)
            [ 1; 2; 3; 4 ])
        [ 1; 2; 3; 4 ])

let render rows =
  let headers =
    [
      "benchmark"; "scheme"; "issue"; "delay"; "benign"; "recovered";
      "detected"; "exception"; "corrupt"; "timeout";
    ]
  in
  let row r =
    (* Each class rate with its 95% Wilson half-width, e.g. "54.3±5.6". *)
    let p c =
      Printf.sprintf "%.1f±%.1f"
        (Montecarlo.percent r.result c)
        (Montecarlo.halfwidth r.result c)
    in
    [
      r.benchmark;
      Scheme.name r.scheme;
      string_of_int r.issue;
      string_of_int r.delay;
      p Montecarlo.Benign;
      p Montecarlo.Recovered;
      p Montecarlo.Detected;
      p Montecarlo.Exception;
      p Montecarlo.Data_corrupt;
      p Montecarlo.Timeout;
    ]
  in
  Table.render ~headers (List.map row rows)
