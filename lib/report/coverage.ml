module Scheme = Casted_detect.Scheme
module Workload = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Fault = Casted_sim.Fault
module Montecarlo = Casted_sim.Montecarlo
module Engine = Casted_engine.Engine
module Cache = Casted_engine.Cache

type row = {
  benchmark : string;
  scheme : Scheme.t;
  issue : int;
  delay : int;
  result : Montecarlo.result;
}

let campaign_on engine ?(seed = 0xCA57ED) ?(model = Fault.Reg_bit)
    ?ci_halfwidth ~trials ~benchmark ~scheme ~issue ~delay () =
  (match Registry.find benchmark with
  | Some _ -> ()
  | None -> invalid_arg ("Coverage: unknown benchmark " ^ benchmark));
  let spec =
    Cache.key ~workload:benchmark ~size:Workload.Fault ~scheme
      ~issue_width:issue ~delay ()
  in
  let result =
    Engine.campaign engine ~seed ~model ?ci_halfwidth ~trials spec
  in
  { benchmark; scheme; issue; delay; result }

let with_engine ?engine f =
  match engine with Some e -> f e | None -> Engine.with_engine f

let campaign ?engine ?seed ?model ?ci_halfwidth ~trials ~benchmark ~scheme
    ~issue ~delay () =
  with_engine ?engine (fun e ->
      campaign_on e ?seed ?model ?ci_halfwidth ~trials ~benchmark ~scheme
        ~issue ~delay ())

let fig9 ?engine ?seed ?model ?(trials = 300) ?benchmarks () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> Registry.names ()
  in
  with_engine ?engine (fun e ->
      List.concat_map
        (fun benchmark ->
          List.map
            (fun scheme ->
              campaign_on e ?seed ?model ~trials ~benchmark ~scheme ~issue:2
                ~delay:2 ())
            Scheme.all)
        benchmarks)

let fig10 ?engine ?seed ?model ?(trials = 300) ?(benchmark = "h263dec")
    ?(schemes = Scheme.all) () =
  with_engine ?engine (fun e ->
      List.concat_map
        (fun issue ->
          List.concat_map
            (fun delay ->
              List.map
                (fun scheme ->
                  campaign_on e ?seed ?model ~trials ~benchmark ~scheme ~issue
                    ~delay ())
                schemes)
            [ 1; 2; 3; 4 ])
        [ 1; 2; 3; 4 ])

let render rows =
  let headers =
    [
      "benchmark"; "scheme"; "issue"; "delay"; "benign"; "recovered";
      "detected"; "exception"; "corrupt"; "timeout";
    ]
  in
  let row r =
    (* Each class rate with its 95% Wilson half-width, e.g. "54.3±5.6".
       A cell the model does not apply to (empty injection population,
       zero trials) renders as "n/a" rather than a fake all-zero
       breakdown. *)
    let p c =
      if Montecarlo.inapplicable r.result then "n/a"
      else
        Printf.sprintf "%.1f±%.1f"
          (Montecarlo.percent r.result c)
          (Montecarlo.halfwidth r.result c)
    in
    [
      r.benchmark;
      Scheme.name r.scheme;
      string_of_int r.issue;
      string_of_int r.delay;
      p Montecarlo.Benign;
      p Montecarlo.Recovered;
      p Montecarlo.Detected;
      p Montecarlo.Exception;
      p Montecarlo.Data_corrupt;
      p Montecarlo.Timeout;
    ]
  in
  Table.render ~headers (List.map row rows)

(* DME escape coverage: how much of the silent corruption that escapes
   CASTED does the decorrelated scheme catch? These are the shared-
   resource fault models — a corrupted memory line or cross-cluster
   operand hits both of CASTED's bit-identical copies the same way, so
   CASTED misclassifies the fault as benign-looking SDC; DME's replica
   reads a physically distinct line, diverges and traps. *)
type dme_escape = {
  escape_benchmark : string;
  escape_model : Fault.model;
  escape_trials : int;
  casted_sdc : int;  (* data-corrupt count under CASTED *)
  dme_sdc : int;  (* data-corrupt count under DME *)
  caught_fraction : float;  (* (casted - dme) / casted SDC rate, >= 0 *)
}

let dme_coverage_on engine ?(seed = 0xCA57ED)
    ?(models = [ Fault.Mem; Fault.Xcluster ]) ?(trials = 2000) ?(issue = 2)
    ?(delay = 2) ~benchmark () =
  List.map
    (fun model ->
      let run scheme =
        (campaign_on engine ~seed ~model ~trials ~benchmark ~scheme ~issue
           ~delay ())
          .result
      in
      let c = run Scheme.Casted and d = run Scheme.Dme in
      let cr = Montecarlo.percent c Montecarlo.Data_corrupt in
      let dr = Montecarlo.percent d Montecarlo.Data_corrupt in
      let caught =
        if cr <= 0.0 then 0.0 else Float.max 0.0 ((cr -. dr) /. cr)
      in
      {
        escape_benchmark = benchmark;
        escape_model = model;
        escape_trials = c.Montecarlo.trials;
        casted_sdc = Montecarlo.count c Montecarlo.Data_corrupt;
        dme_sdc = Montecarlo.count d Montecarlo.Data_corrupt;
        caught_fraction = caught;
      })
    models

let dme_coverage ?engine ?seed ?models ?trials ?issue ?delay ~benchmark () =
  with_engine ?engine (fun e ->
      dme_coverage_on e ?seed ?models ?trials ?issue ?delay ~benchmark ())

let render_dme rows =
  let headers =
    [
      "benchmark"; "model"; "trials"; "casted-sdc"; "dme-sdc"; "caught";
    ]
  in
  let row r =
    [
      r.escape_benchmark;
      Fault.model_name r.escape_model;
      string_of_int r.escape_trials;
      string_of_int r.casted_sdc;
      string_of_int r.dme_sdc;
      Printf.sprintf "%.1f%%" (100.0 *. r.caught_fraction);
    ]
  in
  Table.render ~headers (List.map row rows)
