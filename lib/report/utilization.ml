module Insn = Casted_ir.Insn
module Schedule = Casted_sched.Schedule
module Config = Casted_machine.Config
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Workload = Casted_workloads.Workload
module Registry = Casted_workloads.Registry

type t = {
  insns_per_cluster : int array;
  detection_remote : int;
  detection_total : int;
  original_remote : int;
  original_total : int;
}

let analyze (sched : Schedule.t) =
  let clusters = sched.Schedule.config.Config.clusters in
  let per_cluster = Array.make clusters 0 in
  let detection_remote = ref 0 in
  let detection_total = ref 0 in
  let original_remote = ref 0 in
  let original_total = ref 0 in
  List.iter
    (fun (_, fs) ->
      Array.iter
        (fun bs ->
          Array.iter
            (fun bundle ->
              Array.iteri
                (fun cluster insns ->
                  Array.iter
                    (fun (insn : Insn.t) ->
                      per_cluster.(cluster) <- per_cluster.(cluster) + 1;
                      match insn.Insn.role with
                      | Insn.Original ->
                          incr original_total;
                          if cluster <> 0 then incr original_remote
                      | Insn.Replica | Insn.Check | Insn.Shadow_copy ->
                          incr detection_total;
                          if cluster <> 0 then incr detection_remote)
                    insns)
                bundle)
            bs.Schedule.bundles)
        fs.Schedule.blocks)
    sched.Schedule.funcs;
  {
    insns_per_cluster = per_cluster;
    detection_remote = !detection_remote;
    detection_total = !detection_total;
    original_remote = !original_remote;
    original_total = !original_total;
  }

let frac num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let detection_remote_fraction t = frac t.detection_remote t.detection_total
let original_remote_fraction t = frac t.original_remote t.original_total
let occupancy_of_run = Casted_sim.Outcome.occupancy

let placement_table ~benchmark ~size ~issue_width ~delays =
  let w =
    match Registry.find benchmark with
    | Some w -> w
    | None -> invalid_arg ("Utilization: unknown benchmark " ^ benchmark)
  in
  let program = w.Workload.build size in
  let row scheme =
    Scheme.name scheme
    :: List.map
         (fun delay ->
           let c = Pipeline.compile ~scheme ~issue_width ~delay program in
           let u = analyze c.Pipeline.schedule in
           Printf.sprintf "%.0f%% / %.0f%%"
             (100.0 *. detection_remote_fraction u)
             (100.0 *. original_remote_fraction u))
         delays
  in
  let headers =
    "scheme"
    :: List.map (fun d -> Printf.sprintf "delay %d" d) delays
  in
  Printf.sprintf
    "%s, issue %d: detection / original code placed on the remote cluster\n%s"
    benchmark issue_width
    (Table.render ~headers [ row Scheme.Dced; row Scheme.Casted ])
