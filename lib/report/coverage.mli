(** Fault-coverage experiments (paper Figs. 9 and 10).

    Fig. 9: the five-way outcome breakdown for every benchmark under
    NOED, SCED, DCED and CASTED at issue 2, delay 2.

    Fig. 10: the same breakdown for one benchmark (h263dec in the paper)
    across every (issue, delay) configuration, demonstrating that
    adaptivity does not change the fault coverage. *)

module Scheme = Casted_detect.Scheme
module Montecarlo = Casted_sim.Montecarlo

type row = {
  benchmark : string;
  scheme : Scheme.t;
  issue : int;
  delay : int;
  result : Montecarlo.result;
}

(** Run one campaign.

    Campaigns are {!Casted_engine.Engine} jobs: the schedule comes from
    the engine's compile cache, and the Monte-Carlo trials fan out over
    its domain pool (bit-identical to a sequential run for the same
    [seed]). Pass [engine] to share the pool and cache across
    campaigns; otherwise a private engine is created per call. [model]
    selects the fault model (default the paper's register bit flip);
    [ci_halfwidth] enables sequential early stopping. *)
val campaign :
  ?engine:Casted_engine.Engine.t ->
  ?seed:int ->
  ?model:Casted_sim.Fault.model ->
  ?ci_halfwidth:float ->
  trials:int ->
  benchmark:string ->
  scheme:Scheme.t ->
  issue:int ->
  delay:int ->
  unit ->
  row

(** Fig. 9: all benchmarks x all schemes at (issue, delay) = (2, 2). *)
val fig9 :
  ?engine:Casted_engine.Engine.t ->
  ?seed:int ->
  ?model:Casted_sim.Fault.model ->
  ?trials:int ->
  ?benchmarks:string list ->
  unit ->
  row list

(** Fig. 10: one benchmark across issue widths 1–4 x delays 1–4. *)
val fig10 :
  ?engine:Casted_engine.Engine.t ->
  ?seed:int ->
  ?model:Casted_sim.Fault.model ->
  ?trials:int ->
  ?benchmark:string ->
  ?schemes:Scheme.t list ->
  unit ->
  row list

(** Render the rows; every class rate carries its 95% Wilson half-width
    ("54.3±5.6"). A row whose fault model has no injection sites in its
    cell (zero population, zero trials) renders as "n/a" cells. *)
val render : row list -> string

(** DME escape coverage on one benchmark: for each shared-resource
    fault model (default [mem] and [xcluster]), the silent-corruption
    counts under CASTED and under DME at the same configuration, and
    the fraction of CASTED-escaping SDCs that DME converts into
    detections ([max 0 ((casted - dme) / casted)] on SDC rates). *)
type dme_escape = {
  escape_benchmark : string;
  escape_model : Casted_sim.Fault.model;
  escape_trials : int;
  casted_sdc : int;
  dme_sdc : int;
  caught_fraction : float;
}

val dme_coverage :
  ?engine:Casted_engine.Engine.t ->
  ?seed:int ->
  ?models:Casted_sim.Fault.model list ->
  ?trials:int ->
  ?issue:int ->
  ?delay:int ->
  benchmark:string ->
  unit ->
  dme_escape list

val render_dme : dme_escape list -> string
