module Scheme = Casted_detect.Scheme
module Workload = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Outcome = Casted_sim.Outcome
module Engine = Casted_engine.Engine

type point = {
  benchmark : string;
  scheme : Scheme.t;
  issue : int;
  delay : int;
  cycles : int;
  dyn_insns : int;
}

type t = {
  points : point list;
  issues : int list;
  delays : int list;
  benchmarks : string list;
}

let default_issues = [ 1; 2; 3; 4 ]
let default_delays = [ 1; 2; 3; 4 ]

let run ?engine ?(size = Workload.Perf) ?benchmarks ?(issues = default_issues)
    ?(delays = default_delays) () =
  let benchmarks =
    match benchmarks with
    | Some names -> names
    | None -> Registry.names ()
  in
  let sweep e =
    List.map
      (fun (p : Engine.sweep_point) ->
        {
          benchmark = p.Engine.benchmark;
          scheme = p.Engine.scheme;
          issue = p.Engine.issue;
          delay = p.Engine.delay;
          cycles = p.Engine.run.Outcome.cycles;
          dyn_insns = p.Engine.run.Outcome.dyn_insns;
        })
      (Engine.sweep e ~size ~benchmarks ~issues ~delays ())
  in
  let points =
    match engine with
    | Some e -> sweep e
    | None -> Engine.with_engine sweep
  in
  { points; issues; delays; benchmarks }

let find t ~benchmark ~scheme ~issue ~delay =
  let delay =
    match scheme with Scheme.Noed | Scheme.Sced -> 0 | _ -> delay
  in
  match
    List.find_opt
      (fun p ->
        String.equal p.benchmark benchmark
        && p.scheme = scheme && p.issue = issue && p.delay = delay)
      t.points
  with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Perf_sweep: no point %s/%s/i%d/d%d" benchmark
           (Scheme.name scheme) issue delay)

let cycles t ~benchmark ~scheme ~issue ~delay =
  (find t ~benchmark ~scheme ~issue ~delay).cycles

let slowdown t ~benchmark ~scheme ~issue ~delay =
  let c = cycles t ~benchmark ~scheme ~issue ~delay in
  let base = cycles t ~benchmark ~scheme:Scheme.Noed ~issue ~delay:0 in
  float_of_int c /. float_of_int base

let render_panel t ~benchmark ~delay =
  let headers =
    "scheme"
    :: List.map (fun i -> Printf.sprintf "issue %d" i) t.issues
  in
  let row scheme =
    Scheme.name scheme
    :: List.map
         (fun issue ->
           Table.f2 (slowdown t ~benchmark ~scheme ~issue ~delay))
         t.issues
  in
  Printf.sprintf "%s, delay %d (slowdown vs NOED)\n%s" benchmark delay
    (Table.render ~headers
       [ row Scheme.Sced; row Scheme.Dced; row Scheme.Casted ])

let render_all t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun benchmark ->
      List.iter
        (fun delay ->
          Buffer.add_string buf (render_panel t ~benchmark ~delay);
          Buffer.add_char buf '\n')
        t.delays)
    t.benchmarks;
  Buffer.contents buf

type summary = {
  sced_min : float;
  sced_max : float;
  sced_avg : float;
  dced_min : float;
  dced_max : float;
  dced_avg : float;
  casted_min : float;
  casted_max : float;
  casted_avg : float;
  best_gain : float;
  best_gain_at : string;
  casted_vs_sced : float;
  casted_vs_dced : float;
}

let summarize t =
  let grid_slowdowns scheme =
    List.concat_map
      (fun benchmark ->
        List.concat_map
          (fun issue ->
            List.map
              (fun delay -> slowdown t ~benchmark ~scheme ~issue ~delay)
              t.delays)
          t.issues)
      t.benchmarks
  in
  let stats xs =
    let n = float_of_int (List.length xs) in
    ( List.fold_left min infinity xs,
      List.fold_left max neg_infinity xs,
      List.fold_left ( +. ) 0.0 xs /. n )
  in
  let sced = grid_slowdowns Scheme.Sced in
  let dced = grid_slowdowns Scheme.Dced in
  let casted = grid_slowdowns Scheme.Casted in
  let sced_min, sced_max, sced_avg = stats sced in
  let dced_min, dced_max, dced_avg = stats dced in
  let casted_min, casted_max, casted_avg = stats casted in
  (* Biggest win of CASTED over the better fixed scheme at each point. *)
  let best_gain = ref 0.0 and best_gain_at = ref "-" in
  List.iter
    (fun benchmark ->
      List.iter
        (fun issue ->
          List.iter
            (fun delay ->
              let s = slowdown t ~benchmark ~scheme:Scheme.Sced ~issue ~delay in
              let d = slowdown t ~benchmark ~scheme:Scheme.Dced ~issue ~delay in
              let c =
                slowdown t ~benchmark ~scheme:Scheme.Casted ~issue ~delay
              in
              let best_fixed = Float.min s d in
              let gain = 100.0 *. (best_fixed -. c) /. best_fixed in
              if gain > !best_gain then begin
                best_gain := gain;
                best_gain_at :=
                  Printf.sprintf "%s issue %d delay %d" benchmark issue delay
              end)
            t.delays)
        t.issues)
    t.benchmarks;
  {
    sced_min;
    sced_max;
    sced_avg;
    dced_min;
    dced_max;
    dced_avg;
    casted_min;
    casted_max;
    casted_avg;
    best_gain = !best_gain;
    best_gain_at = !best_gain_at;
    casted_vs_sced = 100.0 *. (sced_avg -. casted_avg) /. sced_avg;
    casted_vs_dced = 100.0 *. (dced_avg -. casted_avg) /. dced_avg;
  }

let render_summary s =
  String.concat "\n"
    [
      Printf.sprintf "SCED   slowdown: %.2f - %.2f (avg %.2f)" s.sced_min
        s.sced_max s.sced_avg;
      Printf.sprintf "DCED   slowdown: %.2f - %.2f (avg %.2f)" s.dced_min
        s.dced_max s.dced_avg;
      Printf.sprintf "CASTED slowdown: %.2f - %.2f (avg %.2f)" s.casted_min
        s.casted_max s.casted_avg;
      Printf.sprintf
        "CASTED beats the best fixed scheme by up to %.1f%% (%s)" s.best_gain
        s.best_gain_at;
      Printf.sprintf
        "average slowdown reduction: %.1f%% vs SCED, %.1f%% vs DCED"
        s.casted_vs_sced s.casted_vs_dced;
      "";
    ]
