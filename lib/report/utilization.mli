(** Static placement analysis of a schedule.

    Quantifies what the paper argues qualitatively in §IV-B6: DCED pins
    the whole redundant stream on the remote cluster regardless of the
    interconnect, while CASTED migrates code towards the home cluster as
    the inter-core delay grows.

    Issue-slot occupancy is no longer accounted here: the simulator is
    the single source of truth — see {!Casted_sim.Outcome.occupancy}
    (and the [sim.slots_offered] / [sim.occupancy] metrics), fed by
    {!occupancy_of_run} below. *)

type t = {
  insns_per_cluster : int array;
  detection_remote : int;
      (** replicas/checks/copies placed on clusters other than 0 *)
  detection_total : int;
  original_remote : int;  (** original instructions placed off cluster 0 *)
  original_total : int;
}

val analyze : Casted_sched.Schedule.t -> t

(** Fraction of detection code placed on the remote cluster(s). *)
val detection_remote_fraction : t -> float

val original_remote_fraction : t -> float

(** Dynamic issue-slot occupancy of a simulated run, from the
    simulator's own slot counters ([= Casted_sim.Outcome.occupancy]). *)
val occupancy_of_run : Casted_sim.Outcome.run -> float

(** A table of remote-placement fractions per scheme and delay for one
    benchmark — the "adaptivity visualised" report. *)
val placement_table :
  benchmark:string ->
  size:Casted_workloads.Workload.size ->
  issue_width:int ->
  delays:int list ->
  string
