(** The paper's main performance experiment (Figs. 6 and 7): slowdown of
    SCED, DCED and CASTED relative to NOED, per benchmark, for every
    (issue width, inter-core delay) point.

    NOED and SCED run on one cluster and are delay-independent; DCED and
    CASTED run on two clusters and are measured at every delay. All
    slowdowns are normalised to NOED at the {e same} issue width, as in
    the paper. *)

module Scheme = Casted_detect.Scheme

type point = {
  benchmark : string;
  scheme : Scheme.t;
  issue : int;
  delay : int;  (** 0 for the delay-independent NOED/SCED *)
  cycles : int;
  dyn_insns : int;
}

type t = {
  points : point list;
  issues : int list;
  delays : int list;
  benchmarks : string list;
}

(** Run the sweep. Defaults mirror the paper: issue widths 1–4, delays
    1–4, all seven benchmarks, perf-sized inputs.

    All points are submitted as jobs to an experiment engine
    ({!Casted_engine.Engine}) and fan out over its domain pool. Pass
    [engine] to share a pool and compiled-schedule cache with other
    experiments; otherwise a private engine (sized by [$CASTED_JOBS] or
    the core count) is created for the call and shut down afterwards.
    Point order is deterministic regardless of parallelism. *)
val run :
  ?engine:Casted_engine.Engine.t ->
  ?size:Casted_workloads.Workload.size ->
  ?benchmarks:string list ->
  ?issues:int list ->
  ?delays:int list ->
  unit ->
  t

val cycles : t -> benchmark:string -> scheme:Scheme.t -> issue:int ->
  delay:int -> int

(** Slowdown vs NOED at the same issue width. *)
val slowdown : t -> benchmark:string -> scheme:Scheme.t -> issue:int ->
  delay:int -> float

(** One Fig-6/7 panel: for a benchmark and delay, a table of slowdowns
    with a row per scheme and a column per issue width. *)
val render_panel : t -> benchmark:string -> delay:int -> string

(** All panels of Figs. 6 and 7. *)
val render_all : t -> string

type summary = {
  sced_min : float;
  sced_max : float;
  sced_avg : float;
  dced_min : float;
  dced_max : float;
  dced_avg : float;
  casted_min : float;
  casted_max : float;
  casted_avg : float;
  best_gain : float;  (** max improvement of CASTED over the best fixed
                          scheme, in percent *)
  best_gain_at : string;  (** "<benchmark> issue <i> delay <d>" *)
  casted_vs_sced : float;  (** average slowdown reduction vs SCED, % *)
  casted_vs_dced : float;  (** average slowdown reduction vs DCED, % *)
}

(** The headline numbers of §IV-B / §VI. *)
val summarize : t -> summary

val render_summary : summary -> string
