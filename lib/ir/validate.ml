let err fmt = Format.asprintf fmt

let check_signature func (i : Insn.t) =
  let classes regs = List.map Reg.cls (Array.to_list regs) in
  let bad expected =
    [
      err "%s: insn %d (%s): signature mismatch (expected defs/uses %s)"
        func.Func.name i.Insn.id (Opcode.mnemonic i.Insn.op) expected;
    ]
  in
  let show (ds, us) =
    let s cs =
      String.concat ""
        (List.map (fun c -> Format.asprintf "%a" Reg.pp_cls c) cs)
    in
    Printf.sprintf "[%s]/[%s]" (s ds) (s us)
  in
  match Opcode.signature i.Insn.op with
  | Some (ds, us) ->
      if classes i.Insn.defs = ds && classes i.Insn.uses = us then []
      else bad (show (ds, us))
  | None -> (
      match i.Insn.op with
      | Opcode.Chk -> (
          match classes i.Insn.defs, classes i.Insn.uses with
          | [], [ a; b ] when Reg.cls_equal a b -> []
          | _ -> bad "[]/two same-class regs")
      | Opcode.Halt | Opcode.Ret -> (
          match classes i.Insn.defs, Array.length i.Insn.uses with
          | [], (0 | 1) -> []
          | _ -> bad "[]/at most one reg")
      | Opcode.Call ->
          if Array.length i.Insn.defs <= 1 then [] else bad "at most one def"
      | _ -> [])

let check_call program func (i : Insn.t) =
  if not (Opcode.equal i.Insn.op Opcode.Call) then []
  else
    match List.find_opt (fun f -> f.Func.name = i.Insn.target) program.Program.funcs with
    | None ->
        [ err "%s: call to unknown function %s" func.Func.name i.Insn.target ]
    | Some callee ->
        let arg_classes = List.map Reg.cls (Array.to_list i.Insn.uses) in
        let param_classes = List.map Reg.cls callee.Func.params in
        let sig_errs =
          if arg_classes <> param_classes then
            [
              err "%s: call %s: argument classes do not match parameters"
                func.Func.name i.Insn.target;
            ]
          else []
        in
        let ret_errs =
          match Array.to_list i.Insn.defs, callee.Func.ret_cls with
          | [], _ -> []
          | [ d ], Some c when Reg.cls_equal (Reg.cls d) c -> []
          | [ _ ], Some _ ->
              [
                err "%s: call %s: result register class mismatch"
                  func.Func.name i.Insn.target;
              ]
          | [ _ ], None ->
              [
                err "%s: call %s: callee returns no value" func.Func.name
                  i.Insn.target;
              ]
          | _ -> [ err "%s: call %s: multiple defs" func.Func.name i.Insn.target ]
        in
        sig_errs @ ret_errs

let check_reg_bounds func (i : Insn.t) =
  let bad r =
    Reg.idx r >= func.Func.next_reg.(Reg.cls_index (Reg.cls r))
  in
  let regs = Array.to_list i.Insn.defs @ Array.to_list i.Insn.uses in
  List.filter_map
    (fun r ->
      if bad r then
        Some
          (err "%s: insn %d uses register %a beyond the allocation counter"
             func.Func.name i.Insn.id Reg.pp r)
      else None)
    regs

let check_func program func =
  let errs = ref [] in
  let add es = errs := es @ !errs in
  if func.Func.blocks = [] then
    add [ err "%s: function has no blocks" func.Func.name ];
  (* Unique labels. *)
  let labels = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let l = b.Block.label in
      if Hashtbl.mem labels l then
        add [ err "%s: duplicate label %s" func.Func.name l ]
      else Hashtbl.replace labels l ())
    func.Func.blocks;
  (* Unique instruction ids. *)
  let ids = Hashtbl.create 64 in
  Func.iter_insns func (fun _ i ->
      if Hashtbl.mem ids i.Insn.id then
        add [ err "%s: duplicate instruction id %d" func.Func.name i.Insn.id ]
      else Hashtbl.replace ids i.Insn.id ());
  (* Per-instruction checks. *)
  Func.iter_insns func (fun b i ->
      add (check_signature func i);
      add (check_call program func i);
      add (check_reg_bounds func i);
      if Opcode.is_terminator i.Insn.op && not (Insn.is_terminator b.Block.term && i.Insn.id = b.Block.term.Insn.id)
      then
        add
          [
            err "%s: %s: terminator %s in block body" func.Func.name
              b.Block.label (Opcode.mnemonic i.Insn.op);
          ]);
  (* Branch targets resolve. *)
  List.iter
    (fun b ->
      List.iter
        (fun l ->
          if not (Hashtbl.mem labels l) then
            add
              [
                err "%s: %s: branch to unknown label %s" func.Func.name
                  b.Block.label l;
              ])
        (Block.successors b))
    func.Func.blocks;
  (* Terminator of the function's exits: Ret must carry a value iff the
     function declares one. *)
  List.iter
    (fun b ->
      match b.Block.term.Insn.op with
      | Opcode.Ret -> (
          match Array.length b.Block.term.Insn.uses, func.Func.ret_cls with
          | 0, None -> ()
          | 1, Some c
            when Reg.cls_equal (Reg.cls b.Block.term.Insn.uses.(0)) c ->
              ()
          | _ ->
              add
                [
                  err "%s: %s: ret value does not match declared return class"
                    func.Func.name b.Block.label;
                ])
      | _ -> ())
    func.Func.blocks;
  List.rev !errs

let check_program program =
  let errs = ref [] in
  let add es = errs := es @ !errs in
  (match
     List.find_opt
       (fun f -> f.Func.name = program.Program.entry)
       program.Program.funcs
   with
  | None -> add [ err "entry function %s not found" program.Program.entry ]
  | Some f ->
      if f.Func.params <> [] then
        add [ err "entry function %s must not take parameters" f.Func.name ]);
  List.iter (fun f -> add (check_func program f)) program.Program.funcs;
  List.iter
    (fun (addr, bytes) ->
      if addr < 0 || addr + String.length bytes > program.Program.mem_size
      then add [ err "data segment at %d out of bounds" addr ])
    program.Program.data;
  if
    program.Program.output_base < 0
    || program.Program.output_base + program.Program.output_len
       > program.Program.mem_size
  then add [ err "output region out of bounds" ];
  (match program.Program.shadow_base with
  | None -> ()
  | Some b ->
      if b <= 0 || b > program.Program.mem_size then
        add [ err "shadow base %d out of bounds" b ]
      else if
        program.Program.output_base + program.Program.output_len > b
      then
        add
          [
            err
              "output region overlaps the shadow image (ends at %d, shadow \
               base %d)"
              (program.Program.output_base + program.Program.output_len)
              b;
          ]);
  List.rev !errs

let check_exn program =
  match check_program program with
  | [] -> ()
  | errs -> invalid_arg ("Validate: " ^ String.concat "; " errs)
