(* Deterministic structural rewrites for decorrelated replication.

   The DME pass wants the replica stream to be structurally different
   from the master while computing the same values: its registers drawn
   from a shuffled assignment, its memory traffic shifted into a
   disjoint image. Both rewrites live here because they are pure IR
   surgery — the detection pass decides *what* is a replica, this
   module only remaps names.

   Everything is seeded and self-contained (a splitmix64-style mixer, no
   dependency on the simulator's RNG) so the same (seed, function)
   always produces the same permutation, on every box and at any domain
   count. *)

(* splitmix64 finalizer: a full-avalanche mix of one 64-bit word. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A tiny splitmix64 stream: state advances by the golden-gamma, each
   draw mixes the new state. *)
type stream = { mutable state : int64 }

let stream_of_seed seed = { state = mix64 (Int64.of_int seed) }

let next s =
  s.state <- Int64.add s.state 0x9E3779B97F4A7C15L;
  mix64 s.state

(* Uniform draw in [0, n) by 64-bit modulo — bias is irrelevant here
   (the permutation only needs to be deterministic and well mixed, not
   statistically perfect). *)
let below s n =
  if n <= 0 then invalid_arg "Rewrite.below: empty range";
  Int64.to_int (Int64.unsigned_rem (next s) (Int64.of_int n))

(* FNV-1a over a string: derives a per-function seed from the global
   one, so two functions of the same program get unrelated shuffles. *)
let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  Int64.to_int !h

let derive_seed ~seed name = seed lxor fnv1a name

(* Seeded Fisher-Yates permutation of [0, n). *)
let permutation ~seed n =
  let p = Array.init n Fun.id in
  let s = stream_of_seed seed in
  for i = n - 1 downto 1 do
    let j = below s (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

(* Remap every register of [f] through [remap] (blanket, defs and
   uses). Blocks are mutable and instruction records are not, so the
   bodies are rebuilt with functionally-updated instructions. *)
let map_regs remap (f : Func.t) =
  let fix insn = Insn.map_uses remap (Insn.map_defs remap insn) in
  List.iter
    (fun (b : Block.t) ->
      b.Block.body <- List.map fix b.Block.body;
      b.Block.term <- fix b.Block.term)
    f.Func.blocks

(* Shuffle the register assignment of the index range [lo.(cls),
   f.next_reg.(cls)) per class — the registers a hardening pass
   allocated on top of the [lo] counters (its shadow space). The
   remap is a bijection of that range, so isolation is preserved:
   master registers (index < lo) are never touched, and two distinct
   shadow registers stay distinct. Deterministic in (seed, f.name). *)
let permute_shadow_regs ~seed ~lo (f : Func.t) =
  if Array.length lo <> 3 then
    invalid_arg "Rewrite.permute_shadow_regs: lo must have 3 class counters";
  let fseed = derive_seed ~seed f.Func.name in
  let perms =
    Array.init 3 (fun k ->
        let n = f.Func.next_reg.(k) - lo.(k) in
        if n <= 1 then [||]
        else permutation ~seed:(fseed + (k * 0x9E3779B9)) n)
  in
  let remap r =
    let k = Reg.cls_index (Reg.cls r) in
    let idx = Reg.idx r in
    if idx < lo.(k) || Array.length perms.(k) = 0 then r
    else Reg.make (Reg.cls r) (lo.(k) + perms.(k).(idx - lo.(k)))
  in
  map_regs remap f

(* Shift every data segment by [offset] — the replica's initial image,
   byte-identical to the master's, at the top half of a doubled
   arena. *)
let offset_data ~offset data =
  List.map (fun (addr, bytes) -> (addr + offset, bytes)) data
