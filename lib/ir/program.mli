(** Whole programs.

    A program is a set of functions plus a flat byte-addressable memory
    arena. [data] seeds the arena before execution; the [output] region is
    the part of memory the fault-injection harness compares against the
    golden run to classify silent data corruption, mirroring the paper's
    comparison of program outputs. *)

type t = {
  funcs : Func.t list;
  entry : string;  (** name of the entry function (no parameters) *)
  mem_size : int;  (** arena size in bytes *)
  data : (int * string) list;  (** (address, bytes) initial memory image *)
  output_base : int;
  output_len : int;
  shadow_base : int option;
      (** [Some base] when the upper half of the arena, [base, mem_size),
          is a decorrelated replica image (the DME pass): architectural
          comparisons — the whole-memory digest in particular — must
          cover only [0, base), exactly the arena an unhardened build of
          the same program would have. [None] for every other program. *)
}

val make :
  funcs:Func.t list ->
  entry:string ->
  ?mem_size:int ->
  ?data:(int * string) list ->
  ?output_base:int ->
  ?output_len:int ->
  ?shadow_base:int ->
  unit ->
  t

val find_func : t -> string -> Func.t
val entry_func : t -> Func.t
val num_insns : t -> int

(** Map every function through [f] (used by compiler passes). *)
val map_funcs : (Func.t -> Func.t) -> t -> t

val pp : Format.formatter -> t -> unit
