type t = {
  funcs : Func.t list;
  entry : string;
  mem_size : int;
  data : (int * string) list;
  output_base : int;
  output_len : int;
  shadow_base : int option;
}

let make ~funcs ~entry ?(mem_size = 1 lsl 20) ?(data = []) ?(output_base = 0)
    ?(output_len = 0) ?shadow_base () =
  { funcs; entry; mem_size; data; output_base; output_len; shadow_base }

let find_func t name =
  match List.find_opt (fun f -> f.Func.name = name) t.funcs with
  | Some f -> f
  | None -> raise Not_found

let entry_func t = find_func t t.entry

let num_insns t =
  List.fold_left (fun acc f -> acc + Func.num_insns f) 0 t.funcs

let map_funcs f t = { t with funcs = List.map f t.funcs }

let pp ppf t =
  Format.fprintf ppf "@[<v>program (entry %s, mem %d bytes)" t.entry
    t.mem_size;
  List.iter (fun f -> Format.fprintf ppf "@,@,%a" Func.pp f) t.funcs;
  Format.fprintf ppf "@]"
