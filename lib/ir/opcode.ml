type width = W1 | W2 | W4 | W8

let width_bytes = function W1 -> 1 | W2 -> 2 | W4 -> 4 | W8 -> 8
let pp_width ppf w = Format.pp_print_int ppf (width_bytes w)

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Sra
  | Mov
  | Movi
  | Addi
  | Muli
  | Andi
  | Xori
  | Shli
  | Shri
  | Srai
  | Cmp of Cond.t
  | Cmpi of Cond.t
  | Sel
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fmov
  | Fmovi
  | Fcmp of Cond.t
  | Itof
  | Ftoi
  | Ld of width
  | Lds of width
  | St of width
  | Fld
  | Fst
  | Br
  | Brc of bool
  | Call
  | Ret
  | Halt
  | Chk
  | Cpt
  | Nop

type unit_kind = U_int | U_fp | U_mem | U_branch

let unit_kind = function
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sra | Mov
  | Movi | Addi | Muli | Andi | Xori | Shli | Shri | Srai | Cmp _ | Cmpi _ | Sel
  | Chk | Cpt | Nop ->
      U_int
  | Fadd | Fsub | Fmul | Fdiv | Fmov | Fmovi | Fcmp _ | Itof | Ftoi -> U_fp
  | Ld _ | Lds _ | St _ | Fld | Fst -> U_mem
  | Br | Brc _ | Call | Ret | Halt -> U_branch

let is_load = function Ld _ | Lds _ | Fld -> true | _ -> false
let is_store = function St _ | Fst -> true | _ -> false
let is_mem op = is_load op || is_store op

let is_control_flow = function
  | Br | Brc _ | Call | Ret | Halt -> true
  | _ -> false

let is_terminator = function Br | Brc _ | Ret | Halt -> true | _ -> false
let is_check = function Chk -> true | _ -> false
let is_checkpoint = function Cpt -> true | _ -> false

let replicable op =
  (not (is_store op))
  && (not (is_control_flow op))
  && (not (is_check op))
  && not (is_checkpoint op)

let has_side_effect op =
  is_store op || is_control_flow op || is_check op || is_checkpoint op

let uses_imm = function
  | Movi | Addi | Muli | Andi | Xori | Shli | Shri | Srai | Cmpi _ | Ld _ | Lds _
  | St _ | Fld | Fst ->
      true
  | _ -> false

let uses_fimm = function Fmovi -> true | _ -> false

let signature = function
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sra ->
      Some ([ Reg.Gp ], [ Reg.Gp; Reg.Gp ])
  | Mov -> Some ([ Reg.Gp ], [ Reg.Gp ])
  | Movi -> Some ([ Reg.Gp ], [])
  | Addi | Muli | Andi | Xori | Shli | Shri | Srai ->
      Some ([ Reg.Gp ], [ Reg.Gp ])
  | Cmp _ -> Some ([ Reg.Pr ], [ Reg.Gp; Reg.Gp ])
  | Cmpi _ -> Some ([ Reg.Pr ], [ Reg.Gp ])
  | Sel -> Some ([ Reg.Gp ], [ Reg.Pr; Reg.Gp; Reg.Gp ])
  | Fadd | Fsub | Fmul | Fdiv -> Some ([ Reg.Fp ], [ Reg.Fp; Reg.Fp ])
  | Fmov -> Some ([ Reg.Fp ], [ Reg.Fp ])
  | Fmovi -> Some ([ Reg.Fp ], [])
  | Fcmp _ -> Some ([ Reg.Pr ], [ Reg.Fp; Reg.Fp ])
  | Itof -> Some ([ Reg.Fp ], [ Reg.Gp ])
  | Ftoi -> Some ([ Reg.Gp ], [ Reg.Fp ])
  | Ld _ | Lds _ -> Some ([ Reg.Gp ], [ Reg.Gp ])
  | St _ -> Some ([], [ Reg.Gp; Reg.Gp ])
  | Fld -> Some ([ Reg.Fp ], [ Reg.Gp ])
  | Fst -> Some ([], [ Reg.Fp; Reg.Gp ])
  | Br -> Some ([], [])
  | Brc _ -> Some ([], [ Reg.Pr ])
  | Call | Ret -> None
  | Halt -> None
  | Chk -> None
  | Cpt -> Some ([], [])
  | Nop -> Some ([], [])

let equal (a : t) (b : t) = a = b

let mnemonic = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sra -> "sra"
  | Mov -> "mov"
  | Movi -> "movi"
  | Addi -> "addi"
  | Muli -> "muli"
  | Andi -> "andi"
  | Xori -> "xori"
  | Shli -> "shli"
  | Shri -> "shri"
  | Srai -> "srai"
  | Cmp c -> "cmp." ^ Cond.to_string c
  | Cmpi c -> "cmpi." ^ Cond.to_string c
  | Sel -> "sel"
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fmov -> "fmov"
  | Fmovi -> "fmovi"
  | Fcmp c -> "fcmp." ^ Cond.to_string c
  | Itof -> "itof"
  | Ftoi -> "ftoi"
  | Ld w -> Format.asprintf "ld%a" pp_width w
  | Lds w -> Format.asprintf "lds%a" pp_width w
  | St w -> Format.asprintf "st%a" pp_width w
  | Fld -> "fld"
  | Fst -> "fst"
  | Br -> "br"
  | Brc true -> "brc.t"
  | Brc false -> "brc.f"
  | Call -> "call"
  | Ret -> "ret"
  | Halt -> "halt"
  | Chk -> "chk"
  | Cpt -> "cpt"
  | Nop -> "nop"

let pp ppf t = Format.pp_print_string ppf (mnemonic t)
