(* A clone must be physically disjoint from its source: passes rewrite
   their input in place (block bodies, instruction operand arrays), so
   any structure shared with the original would alias the source
   program. Instruction records are immutable, but their [defs]/[uses]
   arrays are not — they are copied too. *)
let insn (i : Insn.t) =
  { i with Insn.defs = Array.copy i.Insn.defs; uses = Array.copy i.Insn.uses }

let block (b : Block.t) =
  Block.make ~label:b.Block.label
    ~body:(List.map insn b.Block.body)
    ~term:(insn b.Block.term)

let func (f : Func.t) =
  {
    f with
    Func.blocks = List.map block f.Func.blocks;
    next_reg = Array.copy f.Func.next_reg;
  }

let program (p : Program.t) =
  { p with Program.funcs = List.map func p.Program.funcs }
