(** Deep copies of instructions, blocks, functions and programs.

    A clone shares {e no} mutable structure with its source: block
    bodies and terminators are rebuilt, and every instruction's
    [defs]/[uses] arrays are copied (the [Insn.t] record itself is
    immutable, but its operand arrays are not). Passes clone their
    input and transform the copy — including in-place operand rewrites
    such as the DME register permutation — leaving the original
    available for differential testing (original vs. hardened program
    must compute the same output). *)

val insn : Insn.t -> Insn.t
val block : Block.t -> Block.t
val func : Func.t -> Func.t
val program : Program.t -> Program.t
