(* Printer and recursive-descent parser for the textual IR format. *)

let spf = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let reg_str r = Reg.to_string r

let mem_operand base off = spf "[%s%+Ld]" (reg_str base) off

(* Ids are printed only for instructions that detection annotations
   reference, keeping hand-written files free of noise. *)
let referenced_ids func =
  let ids = Hashtbl.create 32 in
  Func.iter_insns func (fun _ i ->
      if i.Insn.replica_of >= 0 then Hashtbl.replace ids i.Insn.replica_of ();
      if i.Insn.protects >= 0 then Hashtbl.replace ids i.Insn.protects ());
  ids

let annot (i : Insn.t) =
  match i.Insn.role with
  | Insn.Original -> ""
  | Insn.Replica -> spf " @repl(%d)" i.Insn.replica_of
  | Insn.Shadow_copy ->
      if i.Insn.replica_of >= 0 then spf " @shad(%d)" i.Insn.replica_of
      else " @shad()"
  | Insn.Check -> spf " @chk(%d)" i.Insn.protects

let insn_body (i : Insn.t) =
  let u n = reg_str i.Insn.uses.(n) in
  let d n = reg_str i.Insn.defs.(n) in
  let m = Opcode.mnemonic i.Insn.op in
  match i.Insn.op with
  | Opcode.Movi -> spf "%s %s, %Ld" m (d 0) i.Insn.imm
  | Opcode.Fmovi -> spf "%s %s, %h" m (d 0) i.Insn.fimm
  | Opcode.Addi | Opcode.Muli | Opcode.Andi | Opcode.Xori | Opcode.Shli
  | Opcode.Shri | Opcode.Srai | Opcode.Cmpi _ ->
      spf "%s %s, %s, %Ld" m (d 0) (u 0) i.Insn.imm
  | Opcode.Ld _ | Opcode.Lds _ | Opcode.Fld ->
      spf "%s %s, %s" m (d 0) (mem_operand i.Insn.uses.(0) i.Insn.imm)
  | Opcode.St _ | Opcode.Fst ->
      spf "%s %s, %s" m (u 0) (mem_operand i.Insn.uses.(1) i.Insn.imm)
  | Opcode.Br -> spf "%s %s" m i.Insn.target
  | Opcode.Brc _ -> spf "%s %s, %s, %s" m (u 0) i.Insn.target i.Insn.target2
  | Opcode.Call ->
      let args =
        String.concat ", " (Array.to_list (Array.map reg_str i.Insn.uses))
      in
      if Array.length i.Insn.defs > 0 then
        spf "%s %s = %s(%s)" m (d 0) i.Insn.target args
      else spf "%s %s(%s)" m i.Insn.target args
  | Opcode.Ret | Opcode.Halt ->
      if Array.length i.Insn.uses > 0 then spf "%s %s" m (u 0) else m
  | Opcode.Nop -> m
  | Opcode.Chk -> spf "%s %s, %s" m (u 0) (u 1)
  | _ ->
      (* Generic register form: defs then uses, comma separated. *)
      let parts =
        Array.to_list (Array.map reg_str i.Insn.defs)
        @ Array.to_list (Array.map reg_str i.Insn.uses)
      in
      spf "%s %s" m (String.concat ", " parts)

let print_insn ids (i : Insn.t) =
  let id_prefix =
    if Hashtbl.mem ids i.Insn.id then spf "%%%d: " i.Insn.id else ""
  in
  spf "  %s%s%s" id_prefix (insn_body i) (annot i)

let print_func func =
  let buf = Buffer.create 1024 in
  let ids = referenced_ids func in
  let params =
    String.concat ", " (List.map reg_str func.Func.params)
  in
  let ret =
    match func.Func.ret_cls with
    | None -> ""
    | Some c -> spf " : %s" (Format.asprintf "%a" Reg.pp_cls c)
  in
  let prot = if func.Func.protect then "" else " unprotected" in
  Buffer.add_string buf (spf "func %s(%s)%s%s {\n" func.Func.name params ret prot);
  List.iter
    (fun b ->
      Buffer.add_string buf (spf "%s:\n" b.Block.label);
      List.iter
        (fun i -> Buffer.add_string buf (print_insn ids i ^ "\n"))
        (Block.insns b))
    func.Func.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let hex_of_string s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (spf "%02X" (Char.code c))) s;
  Buffer.contents buf

let print (p : Program.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (spf "program entry=%s mem=%d output=%d:%d%s\n" p.Program.entry
       p.Program.mem_size p.Program.output_base p.Program.output_len
       (match p.Program.shadow_base with
       | None -> ""
       | Some b -> spf " shadow=%d" b));
  List.iter
    (fun (addr, bytes) ->
      Buffer.add_string buf (spf "data %d hex:%s\n" addr (hex_of_string bytes)))
    p.Program.data;
  List.iter
    (fun f ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (print_func f))
    p.Program.funcs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

(* Tokenise one line: idents/numbers, punctuation, annotations. *)
let tokenize line_no line =
  (* Strip comments. *)
  let line =
    match String.index_opt line ';' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.'
  in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' || c = ',' then incr i
    else if
      is_word c
      || ((c = '+' || c = '-') && !i + 1 < n && is_digit line.[!i + 1])
    then begin
      (* A word, or a signed number (so "[r0+16]" splits after "r0").
         Signs directly after an exponent marker stay inside the token,
         keeping float literals like "0x1.8p-4" and "1e-05" whole. *)
      let j = ref (!i + 1) in
      let continues k =
        is_word line.[k]
        || ((line.[k] = '+' || line.[k] = '-')
           && k > 0
           &&
           match line.[k - 1] with
           | 'e' | 'E' | 'p' | 'P' -> true
           | _ -> false)
      in
      while !j < n && continues !j do
        incr j
      done;
      toks := String.sub line !i (!j - !i) :: !toks;
      i := !j
    end
    else
      match c with
      | '[' | ']' | '(' | ')' | ':' | '=' | '%' | '@' | '{' | '}' ->
          toks := String.make 1 c :: !toks;
          incr i
      | _ -> fail line_no "unexpected character %C" c
  done;
  List.rev !toks

let parse_reg line s =
  let cls_of = function
    | 'r' -> Some Reg.Gp
    | 'f' -> Some Reg.Fp
    | 'p' -> Some Reg.Pr
    | _ -> None
  in
  if String.length s < 2 then fail line "bad register %S" s
  else
    match (cls_of s.[0], int_of_string_opt (String.sub s 1 (String.length s - 1))) with
    | Some cls, Some idx when idx >= 0 -> Reg.make cls idx
    | _ -> fail line "bad register %S" s

let parse_int64 line s =
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> fail line "bad integer %S" s

let parse_float line s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail line "bad float %S" s

(* Mnemonic -> opcode. *)
let opcode_table =
  let tbl = Hashtbl.create 128 in
  let widths = [ Opcode.W1; Opcode.W2; Opcode.W4; Opcode.W8 ] in
  let ops =
    [
      Opcode.Add; Opcode.Sub; Opcode.Mul; Opcode.Div; Opcode.Rem;
      Opcode.And; Opcode.Or; Opcode.Xor; Opcode.Shl; Opcode.Shr;
      Opcode.Sra; Opcode.Mov; Opcode.Movi; Opcode.Addi; Opcode.Muli;
      Opcode.Andi; Opcode.Xori; Opcode.Shli; Opcode.Shri; Opcode.Srai;
      Opcode.Sel; Opcode.Fadd; Opcode.Fsub; Opcode.Fmul; Opcode.Fdiv;
      Opcode.Fmov; Opcode.Fmovi; Opcode.Itof; Opcode.Ftoi; Opcode.Fld;
      Opcode.Fst; Opcode.Br; Opcode.Brc true; Opcode.Brc false;
      Opcode.Call; Opcode.Ret; Opcode.Halt; Opcode.Chk; Opcode.Nop;
    ]
    @ List.map (fun c -> Opcode.Cmp c) Cond.all
    @ List.map (fun c -> Opcode.Cmpi c) Cond.all
    @ List.map (fun c -> Opcode.Fcmp c) Cond.all
    @ List.map (fun w -> Opcode.Ld w) widths
    @ List.map (fun w -> Opcode.Lds w) widths
    @ List.map (fun w -> Opcode.St w) widths
  in
  List.iter (fun op -> Hashtbl.replace tbl (Opcode.mnemonic op) op) ops;
  tbl

(* Partially parsed instruction, before id/annotation fixups. *)
type raw_insn = {
  written_id : int option;
  op : Opcode.t;
  defs : Reg.t array;
  uses : Reg.t array;
  imm : int64;
  fimm : float;
  target : string;
  target2 : string;
  raw_role : Insn.role;
  raw_ref : int;  (* replica_of / protects as written *)
}

let parse_mem line toks =
  (* [ reg off ] — the sign is folded into the offset token. *)
  match toks with
  | "[" :: base :: off :: "]" :: rest ->
      ((parse_reg line base, parse_int64 line off), rest)
  | _ -> fail line "expected a memory operand [reg+off]"

let parse_annot line toks =
  match toks with
  | [] -> (Insn.Original, -1, [])
  | [ "@"; "repl"; "("; id; ")" ] ->
      (Insn.Replica, int_of_string id, [])
  | [ "@"; "shad"; "("; id; ")" ] -> (Insn.Shadow_copy, int_of_string id, [])
  | [ "@"; "shad"; "("; ")" ] -> (Insn.Shadow_copy, -1, [])
  | [ "@"; "chk"; "("; id; ")" ] -> (Insn.Check, int_of_string id, [])
  | t :: _ -> fail line "unexpected trailing token %S" t

let parse_insn line_no toks =
  (* Optional '%id:' prefix. *)
  let written_id, toks =
    match toks with
    | "%" :: id :: ":" :: rest -> (
        match int_of_string_opt id with
        | Some v -> (Some v, rest)
        | None -> fail line_no "bad instruction id %S" id)
    | _ -> (None, toks)
  in
  let mnemonic, toks =
    match toks with
    | m :: rest -> (m, rest)
    | [] -> fail line_no "empty instruction"
  in
  let op =
    match Hashtbl.find_opt opcode_table mnemonic with
    | Some op -> op
    | None -> fail line_no "unknown mnemonic %S" mnemonic
  in
  let base =
    {
      written_id;
      op;
      defs = [||];
      uses = [||];
      imm = 0L;
      fimm = 0.0;
      target = "";
      target2 = "";
      raw_role = Insn.Original;
      raw_ref = -1;
    }
  in
  let with_annot raw rest =
    let role, r, _ = parse_annot line_no rest in
    { raw with raw_role = role; raw_ref = r }
  in
  let reg = parse_reg line_no in
  match op with
  | Opcode.Movi -> (
      match toks with
      | d :: v :: rest ->
          with_annot
            { base with defs = [| reg d |]; imm = parse_int64 line_no v }
            rest
      | _ -> fail line_no "movi dst, imm")
  | Opcode.Fmovi -> (
      match toks with
      | d :: v :: rest ->
          with_annot
            { base with defs = [| reg d |]; fimm = parse_float line_no v }
            rest
      | _ -> fail line_no "fmovi dst, fimm")
  | Opcode.Addi | Opcode.Muli | Opcode.Andi | Opcode.Xori | Opcode.Shli
  | Opcode.Shri | Opcode.Srai | Opcode.Cmpi _ -> (
      match toks with
      | d :: s :: v :: rest ->
          with_annot
            {
              base with
              defs = [| reg d |];
              uses = [| reg s |];
              imm = parse_int64 line_no v;
            }
            rest
      | _ -> fail line_no "%s dst, src, imm" mnemonic)
  | Opcode.Ld _ | Opcode.Lds _ | Opcode.Fld -> (
      match toks with
      | d :: rest ->
          let (b, off), rest = parse_mem line_no rest in
          with_annot
            { base with defs = [| reg d |]; uses = [| b |]; imm = off }
            rest
      | _ -> fail line_no "%s dst, [base+off]" mnemonic)
  | Opcode.St _ | Opcode.Fst -> (
      match toks with
      | v :: rest ->
          let (b, off), rest = parse_mem line_no rest in
          with_annot { base with uses = [| reg v; b |]; imm = off } rest
      | _ -> fail line_no "%s value, [base+off]" mnemonic)
  | Opcode.Br -> (
      match toks with
      | t :: rest -> with_annot { base with target = t } rest
      | _ -> fail line_no "br label")
  | Opcode.Brc _ -> (
      match toks with
      | p :: t1 :: t2 :: rest ->
          with_annot
            { base with uses = [| reg p |]; target = t1; target2 = t2 }
            rest
      | _ -> fail line_no "brc.t/f pred, taken, fallthrough")
  | Opcode.Call ->
      (* call [dst =] name ( args ) *)
      let dst, toks =
        match toks with
        | d :: "=" :: rest when d.[0] = 'r' || d.[0] = 'f' -> ([| reg d |], rest)
        | _ -> ([||], toks)
      in
      let name, toks =
        match toks with
        | n :: "(" :: rest -> (n, rest)
        | _ -> fail line_no "call [dst =] name(args)"
      in
      let rec args acc = function
        | ")" :: rest -> (List.rev acc, rest)
        | a :: rest -> args (reg a :: acc) rest
        | [] -> fail line_no "unterminated call arguments"
      in
      let arglist, rest = args [] toks in
      with_annot
        { base with defs = dst; uses = Array.of_list arglist; target = name }
        rest
  | Opcode.Ret | Opcode.Halt -> (
      match toks with
      | [] -> base
      | v :: rest when v <> "@" -> with_annot { base with uses = [| reg v |] } rest
      | rest -> with_annot base rest)
  | Opcode.Nop -> with_annot base toks
  | _ ->
      (* Generic register form: signature tells how many defs/uses. *)
      let ndefs, nuses =
        match (op, Opcode.signature op) with
        | _, Some (ds, us) -> (List.length ds, List.length us)
        | Opcode.Chk, None -> (0, 2)
        | _ -> fail line_no "cannot parse %S" mnemonic
      in
      let rec take n acc toks =
        if n = 0 then (List.rev acc, toks)
        else
          match toks with
          | t :: rest -> take (n - 1) (reg t :: acc) rest
          | [] -> fail line_no "%s: missing operands" mnemonic
      in
      let defs, toks = take ndefs [] toks in
      let uses, rest = take nuses [] toks in
      with_annot
        { base with defs = Array.of_list defs; uses = Array.of_list uses }
        rest

let string_of_hex line s =
  let n = String.length s in
  if n mod 2 <> 0 then fail line "odd-length hex data";
  String.init (n / 2) (fun i ->
      let v = int_of_string ("0x" ^ String.sub s (2 * i) 2) in
      Char.chr v)

(* Parse the whole file. *)
let parse_lines lines =
  let entry = ref "" in
  let mem_size = ref (1 lsl 20) in
  let shadow_base = ref None in
  let output = ref (0, 0) in
  let data = ref [] in
  let funcs = ref [] in
  (* Current function state. *)
  let cur_func : Func.t option ref = ref None in
  let cur_blocks = ref [] in
  let cur_label = ref None in
  let cur_insns = ref [] in
  let id_map = Hashtbl.create 64 in
  let pending : (raw_insn * Insn.t) list ref = ref [] in
  let close_block line =
    match (!cur_label, !cur_insns) with
    | None, [] -> ()
    | None, _ -> fail line "instructions outside a block"
    | Some label, insns -> (
        match List.rev insns with
        | [] -> fail line "empty block %s" label
        | insns -> (
            let body, term =
              match List.rev insns with
              | t :: rev_body -> (List.rev rev_body, t)
              | [] -> assert false
            in
            if not (Insn.is_terminator term) then
              fail line "block %s does not end in a terminator" label;
            cur_blocks := Block.make ~label ~body ~term :: !cur_blocks;
            cur_label := None;
            cur_insns := []))
  in
  let close_func line =
    match !cur_func with
    | None -> ()
    | Some f ->
        close_block line;
        f.Func.blocks <- List.rev !cur_blocks;
        (* Fix up annotation references through the id map. *)
        List.iter
          (fun ((raw : raw_insn), (insn : Insn.t)) ->
            if raw.raw_ref >= 0 then begin
              let new_id =
                match Hashtbl.find_opt id_map raw.raw_ref with
                | Some id -> id
                | None -> fail line "annotation references unknown id %%%d" raw.raw_ref
              in
              let fixed =
                match raw.raw_role with
                | Insn.Replica | Insn.Shadow_copy ->
                    { insn with Insn.replica_of = new_id }
                | Insn.Check -> { insn with Insn.protects = new_id }
                | Insn.Original -> insn
              in
              (* Replace in place inside the blocks. *)
              List.iter
                (fun b ->
                  b.Block.body <-
                    List.map
                      (fun (j : Insn.t) ->
                        if j.Insn.id = insn.Insn.id then fixed else j)
                      b.Block.body;
                  if b.Block.term.Insn.id = insn.Insn.id then
                    b.Block.term <- fixed)
                f.Func.blocks
            end)
          !pending;
        Func.normalize_reg_counts f;
        funcs := f :: !funcs;
        cur_func := None;
        cur_blocks := [];
        Hashtbl.reset id_map;
        pending := []
  in
  List.iteri
    (fun idx raw_line ->
      let line = idx + 1 in
      let toks = tokenize line raw_line in
      match toks with
      | [] -> ()
      | "program" :: rest ->
          let rec scan = function
            | "entry" :: "=" :: v :: rest' ->
                entry := v;
                scan rest'
            | "mem" :: "=" :: v :: rest' ->
                mem_size := int_of_string v;
                scan rest'
            | "output" :: "=" :: base :: ":" :: len :: rest' ->
                output := (int_of_string base, int_of_string len);
                scan rest'
            | "shadow" :: "=" :: v :: rest' ->
                shadow_base := Some (int_of_string v);
                scan rest'
            | t :: _ -> fail line "bad program header near %S" t
            | [] -> ()
          in
          scan rest
      | [ "data"; addr; "hex"; ":"; hex ] ->
          data := (int_of_string addr, string_of_hex line hex) :: !data
      | "data" :: _ -> fail line "expected data ADDR hex:BYTES"
      | "func" :: name :: "(" :: rest ->
          close_func line;
          let rec params acc = function
            | ")" :: rest' -> (List.rev acc, rest')
            | p :: rest' -> params (parse_reg line p :: acc) rest'
            | [] -> fail line "unterminated parameter list"
          in
          let ps, rest = params [] rest in
          let ret_cls, rest =
            match rest with
            | ":" :: c :: rest' ->
                let cls =
                  match c with
                  | "gp" | "r" -> Reg.Gp
                  | "fp" | "f" -> Reg.Fp
                  | "pr" | "p" -> Reg.Pr
                  | _ -> fail line "bad return class %S" c
                in
                (Some cls, rest')
            | _ -> (None, rest)
          in
          let protect, rest =
            match rest with
            | "unprotected" :: rest' -> (false, rest')
            | _ -> (true, rest)
          in
          (match rest with
          | [ "{" ] | [] -> ()
          | t :: _ -> fail line "unexpected token %S after func header" t);
          cur_func :=
            Some (Func.make ~name ~params:ps ~ret_cls:(ret_cls) ~protect ())
      | [ "}" ] -> close_func line
      | [ label; ":" ] ->
          close_block line;
          cur_label := Some label
      | _ -> (
          match !cur_func with
          | None -> fail line "instruction outside a function"
          | Some f ->
              if !cur_label = None then fail line "instruction outside a block";
              let raw = parse_insn line toks in
              let id = Func.fresh_id f in
              (match raw.written_id with
              | Some w -> Hashtbl.replace id_map w id
              | None -> ());
              let insn =
                Insn.make ~id ~op:raw.op ~defs:raw.defs ~uses:raw.uses
                  ~imm:raw.imm ~fimm:raw.fimm ~target:raw.target
                  ~target2:raw.target2 ~role:raw.raw_role
                  ~replica_of:
                    (match raw.raw_role with
                    | Insn.Replica | Insn.Shadow_copy -> raw.raw_ref
                    | _ -> -1)
                  ~protects:
                    (match raw.raw_role with
                    | Insn.Check -> raw.raw_ref
                    | _ -> -1)
                  ()
              in
              if raw.raw_ref >= 0 then pending := (raw, insn) :: !pending;
              cur_insns := insn :: !cur_insns))
    lines;
  close_func (List.length lines);
  if !entry = "" then fail 0 "missing program header";
  let output_base, output_len = !output in
  Program.make ~funcs:(List.rev !funcs) ~entry:!entry ~mem_size:!mem_size
    ~data:(List.rev !data) ~output_base ~output_len ?shadow_base:!shadow_base
    ()

let parse text =
  try Ok (parse_lines (String.split_on_char '\n' text)) with
  | Parse_error (line, msg) -> Error (spf "line %d: %s" line msg)
  | Failure msg -> Error msg

let parse_exn text =
  match parse text with
  | Ok p -> p
  | Error msg -> invalid_arg ("Asm.parse: " ^ msg)
