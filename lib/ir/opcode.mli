(** Instruction opcodes of the IR ISA.

    The ISA is a RISC-like three-address code rich enough to express the
    paper's workloads: 64-bit integer and float arithmetic, compares into
    predicate registers, predicated select, loads/stores of width 1/2/4/8
    bytes, branches, calls and the [Chk] instruction emitted by the error
    detection pass (Algorithm 1 of the paper). *)

(** Memory access width in bytes. *)
type width = W1 | W2 | W4 | W8

val width_bytes : width -> int
val pp_width : Format.formatter -> width -> unit

type t =
  (* Integer ALU, register-register. *)
  | Add
  | Sub
  | Mul
  | Div  (** signed; traps on divide by zero *)
  | Rem  (** signed remainder; traps on divide by zero *)
  | And
  | Or
  | Xor
  | Shl  (** shift amount taken modulo 64 *)
  | Shr  (** logical right shift *)
  | Sra  (** arithmetic right shift *)
  | Mov
  (* Integer ALU, register-immediate. *)
  | Movi  (** gp := imm *)
  | Addi  (** gp := gp + imm *)
  | Muli  (** gp := gp * imm *)
  | Andi  (** gp := gp land imm *)
  | Xori  (** gp := gp lxor imm *)
  | Shli  (** gp := gp lsl imm *)
  | Shri  (** gp := gp lsr imm *)
  | Srai  (** gp := gp asr imm *)
  (* Compares and predicated select. *)
  | Cmp of Cond.t  (** pr := gp <cond> gp *)
  | Cmpi of Cond.t  (** pr := gp <cond> imm *)
  | Sel  (** gp := if pr then gp1 else gp2 *)
  (* Floating point. *)
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fmov
  | Fmovi  (** fp := fimm *)
  | Fcmp of Cond.t  (** pr := fp <cond> fp *)
  | Itof  (** fp := float_of_int gp *)
  | Ftoi  (** gp := int_of_float fp (truncating) *)
  (* Memory. Addresses are gp base + imm offset; accesses must be
     width-aligned and in bounds, otherwise the simulator raises a
     machine exception. *)
  | Ld of width  (** gp := zero_extend mem[gp + imm] *)
  | Lds of width  (** gp := sign_extend mem[gp + imm] *)
  | St of width  (** mem[gp1 + imm] := truncate gp0 *)
  | Fld  (** fp := mem64[gp + imm] as float *)
  | Fst  (** mem64[gp1 + imm] := fp0 bits *)
  (* Control flow (never replicated by the detection pass). *)
  | Br  (** unconditional jump to [target] *)
  | Brc of bool  (** jump to [target] if pr = flag, else fall through to [target2] *)
  | Call  (** call function [target]; uses = args, defs = optional result *)
  | Ret  (** return to caller; uses = optional result value *)
  | Halt  (** stop the machine; uses = optional exit code *)
  (* Error detection support. *)
  | Chk  (** compare two same-class registers; trap to the detection
             handler if they differ. Emitted by the detection pass. *)
  | Cpt  (** checkpoint marker: its block's top is a rollback-region
             boundary where the simulator snapshots the machine.
             Emitted by the rollback pass; executes as a no-op. *)
  | Nop

(** Functional-unit class, used for statistics and the pretty printer. *)
type unit_kind = U_int | U_fp | U_mem | U_branch

val unit_kind : t -> unit_kind

(** {1 Classification used by the error-detection pass} *)

val is_load : t -> bool
val is_store : t -> bool
val is_mem : t -> bool

(** Control-flow instructions: [Br], [Brc], [Call], [Ret], [Halt]. *)
val is_control_flow : t -> bool

(** Block terminators: [Br], [Brc], [Ret], [Halt] (not [Call]). *)
val is_terminator : t -> bool

val is_check : t -> bool
val is_checkpoint : t -> bool

(** Instructions the detection pass replicates: everything that is not a
    store, not control flow and not already detection or recovery code. *)
val replicable : t -> bool

(** Instructions with externally visible effects (memory writes, control
    flow, checks): these must not be reordered freely. *)
val has_side_effect : t -> bool

(** [uses_imm op] is true when the instruction reads its integer
    immediate field. *)
val uses_imm : t -> bool

val uses_fimm : t -> bool

(** Register-class signature [(defs, uses)] of an opcode.
    [Call] and [Ret] have variable signatures and return [None]. *)
val signature : t -> (Reg.cls list * Reg.cls list) option

val equal : t -> t -> bool
val mnemonic : t -> string
val pp : Format.formatter -> t -> unit
