(** Deterministic structural rewrites for decorrelated replication
    (the DME scheme's register shuffle and memory-image shift).

    All rewrites are pure IR surgery, seeded and reproducible: the same
    [(seed, function name)] pair yields the same shuffle forever, with
    no dependency on the simulator's RNG. *)

(** Seeded Fisher-Yates permutation of [0, n) (exposed for tests). *)
val permutation : seed:int -> int -> int array

(** Derive a per-function seed from the campaign seed and the function
    name (FNV-1a), so sibling functions get unrelated shuffles. *)
val derive_seed : seed:int -> string -> int

(** [permute_shadow_regs ~seed ~lo f] remaps, in place, every register
    of [f] whose index is at or above [lo.(cls)] (the per-class
    register counters {e before} the hardening pass ran — everything
    above them is shadow space) through a seeded bijection of
    [lo.(cls), f.next_reg.(cls)). Master registers are untouched;
    distinct shadow registers stay distinct, so the pass's isolation
    invariant survives the shuffle. Raises [Invalid_argument] unless
    [lo] carries the 3 class counters. *)
val permute_shadow_regs : seed:int -> lo:int array -> Func.t -> unit

(** Shift every [(addr, bytes)] data segment by [offset] — the replica
    image's seed data in the doubled arena. *)
val offset_data : offset:int -> (int * string) list -> (int * string) list
