type cache_level = {
  size_bytes : int;
  block_bytes : int;
  assoc : int;
  latency : int;
}

type cache_config = {
  l1 : cache_level;
  l2 : cache_level;
  l3 : cache_level;
  mem_latency : int;
}

type t = {
  clusters : int;
  issue_width : int;
  delay : int;
  latencies : Latency.t;
  cache : cache_config;
}

let itanium2_cache =
  {
    l1 = { size_bytes = 16 * 1024; block_bytes = 64; assoc = 4; latency = 1 };
    l2 =
      { size_bytes = 256 * 1024; block_bytes = 128; assoc = 8; latency = 5 };
    l3 =
      {
        size_bytes = 3 * 1024 * 1024;
        block_bytes = 128;
        assoc = 12;
        latency = 12;
      };
    mem_latency = 150;
  }

let make ?(clusters = 2) ?(issue_width = 2) ?(delay = 1)
    ?(latencies = Latency.default) ?(cache = itanium2_cache) () =
  if clusters < 1 then
    invalid_arg
      (Printf.sprintf "Config.make: clusters must be >= 1 (got %d)" clusters);
  if issue_width < 1 then
    invalid_arg
      (Printf.sprintf "Config.make: issue_width must be >= 1 (got %d)"
         issue_width);
  if delay < 0 then
    invalid_arg
      (Printf.sprintf "Config.make: delay must be >= 0 (got %d)" delay);
  { clusters; issue_width; delay; latencies; cache }

let single_core ~issue_width = make ~clusters:1 ~issue_width ~delay:0 ()
let dual_core ~issue_width ~delay = make ~clusters:2 ~issue_width ~delay ()

let pp ppf t =
  Format.fprintf ppf "%d cluster%s x issue %d, delay %d" t.clusters
    (if t.clusters > 1 then "s" else "")
    t.issue_width t.delay

let describe t =
  let lvl l =
    Printf.sprintf "%dK / %dB blocks / %d-way / %d cy" (l.size_bytes / 1024)
      l.block_bytes l.assoc l.latency
  in
  [
    ("Clusters", string_of_int t.clusters);
    ("Issue width (per cluster)", string_of_int t.issue_width);
    ("Inter-cluster delay (cycles)", string_of_int t.delay);
    ("L1", lvl t.cache.l1);
    ("L2", lvl t.cache.l2);
    ("L3", lvl t.cache.l3);
    ("Memory latency (cycles)", string_of_int t.cache.mem_latency);
  ]
