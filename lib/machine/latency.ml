module Opcode = Casted_ir.Opcode

type t = {
  alu : int;
  mul : int;
  div : int;
  fadd : int;
  fmul : int;
  fdiv : int;
  cvt : int;
  load : int;
  store : int;
  branch : int;
  compare : int;
  move : int;
  sel : int;
  check : int;
  call : int;
}

let default =
  {
    alu = 1;
    mul = 3;
    div = 20;
    fadd = 4;
    fmul = 4;
    fdiv = 24;
    cvt = 2;
    load = 1;
    store = 1;
    branch = 1;
    compare = 1;
    move = 1;
    sel = 1;
    check = 1;
    call = 1;
  }

let of_op t (op : Opcode.t) =
  let l =
    match op with
    | Add | Sub | And | Or | Xor | Shl | Shr | Sra | Addi | Andi | Xori
    | Shli | Shri | Srai ->
        t.alu
    | Mul | Muli -> t.mul
    | Div | Rem -> t.div
    | Mov | Movi | Fmov | Fmovi -> t.move
    | Cmp _ | Cmpi _ | Fcmp _ -> t.compare
    | Sel -> t.sel
    | Fadd | Fsub -> t.fadd
    | Fmul -> t.fmul
    | Fdiv -> t.fdiv
    | Itof | Ftoi -> t.cvt
    | Ld _ | Lds _ | Fld -> t.load
    | St _ | Fst -> t.store
    | Br | Brc _ | Ret | Halt -> t.branch
    | Call -> t.call
    | Chk -> t.check
    | Cpt -> 1
    | Nop -> 1
  in
  max 1 l
