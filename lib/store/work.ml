(* Work units and lock-file claiming for cooperative matrix fills. *)

type unit_spec = {
  workload : string;
  size : string;
  scheme : string;
  issue : int;
  delay : int;
  model : string;
  seed : int;
  trials : int;
  fuel_factor : int;
  retry_budget : int;
}

let unit_magic = "casted-work-unit v1"

let address u =
  Printf.sprintf "%s/%s/%s/i%d/d%d/%s|seed=%d|trials=%d|fuel=%d|retry=%d"
    u.workload u.size u.scheme u.issue u.delay u.model u.seed u.trials
    u.fuel_factor u.retry_budget

let hash u = Digest.to_hex (Digest.string (address u))

let queue_dir store = Filename.concat (Store.dir store) "queue"
let locks_dir store = Filename.concat (Store.dir store) "locks"
let unit_path store u = Filename.concat (queue_dir store) (hash u ^ ".unit")
let lock_path store u = Filename.concat (locks_dir store) (hash u ^ ".lock")

let validate u =
  List.iter
    (fun (name, v) ->
      if v = "" || String.contains v '\n' || String.contains v '|' then
        invalid_arg
          (Printf.sprintf "Work.enqueue: field %s is empty or malformed (%S)"
             name v))
    [
      ("workload", u.workload);
      ("size", u.size);
      ("scheme", u.scheme);
      ("model", u.model);
    ];
  if u.trials < 1 then invalid_arg "Work.enqueue: trials must be positive"

let render u =
  String.concat "\n"
    [
      unit_magic;
      "workload=" ^ u.workload;
      "size=" ^ u.size;
      "scheme=" ^ u.scheme;
      Printf.sprintf "issue=%d" u.issue;
      Printf.sprintf "delay=%d" u.delay;
      "model=" ^ u.model;
      Printf.sprintf "seed=%d" u.seed;
      Printf.sprintf "trials=%d" u.trials;
      Printf.sprintf "fuel_factor=%d" u.fuel_factor;
      Printf.sprintf "retry_budget=%d" u.retry_budget;
      "";
    ]

let ( let* ) = Result.bind

let parse ~path content =
  match String.split_on_char '\n' content with
  | header :: fields when String.equal header unit_magic ->
      let table = Hashtbl.create 16 in
      List.iter
        (fun line ->
          match String.index_opt line '=' with
          | Some i ->
              Hashtbl.replace table (String.sub line 0 i)
                (String.sub line (i + 1) (String.length line - i - 1))
          | None -> ())
        fields;
      let str name =
        match Hashtbl.find_opt table name with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "%s: missing field %s" path name)
      in
      let int name =
        let* v = str name in
        match int_of_string_opt v with
        | Some n -> Ok n
        | None ->
            Error
              (Printf.sprintf "%s: field %s is not an integer (%S)" path name
                 v)
      in
      let* workload = str "workload" in
      let* size = str "size" in
      let* scheme = str "scheme" in
      let* issue = int "issue" in
      let* delay = int "delay" in
      let* model = str "model" in
      let* seed = int "seed" in
      let* trials = int "trials" in
      let* fuel_factor = int "fuel_factor" in
      let* retry_budget = int "retry_budget" in
      let u =
        {
          workload;
          size;
          scheme;
          issue;
          delay;
          model;
          seed;
          trials;
          fuel_factor;
          retry_budget;
        }
      in
      let expected = hash u ^ ".unit" in
      if not (String.equal (Filename.basename path) expected) then
        Error
          (Printf.sprintf
             "%s: content addresses %s (unit %S) — file is corrupt or \
              misplaced"
             path expected (address u))
      else Ok u
  | header :: _ ->
      Error
        (Printf.sprintf "%s: version sentinel is %S, expected %S" path
           (String.trim header) unit_magic)
  | [] -> Error (Printf.sprintf "%s: empty unit" path)

let enqueue store u =
  validate u;
  let path = unit_path store u in
  if Sys.file_exists path then false
  else begin
    Store.atomic_write ~path (render u);
    Casted_obs.Metrics.incr "store.units_enqueued";
    true
  end

let units store =
  let dir = queue_dir store in
  if not (Sys.file_exists dir) then
    Error (Printf.sprintf "%s: no queue directory" (Store.dir store))
  else
    Ok
      (Sys.readdir dir |> Array.to_list
      |> List.filter (fun n -> Filename.check_suffix n ".unit")
      |> List.sort String.compare
      |> List.map (fun name ->
             let path = Filename.concat dir name in
             let ic = open_in_bin path in
             let content =
               Fun.protect
                 ~finally:(fun () -> close_in_noerr ic)
                 (fun () -> really_input_string ic (in_channel_length ic))
             in
             parse ~path content))

type claim = Claimed | Busy of string

let owner_string () =
  Printf.sprintf "%d@%s" (Unix.getpid ()) (Unix.gethostname ())

let read_owner path =
  try
    let ic = open_in path in
    let line = try input_line ic with End_of_file -> "" in
    close_in_noerr ic;
    line
  with Sys_error _ -> ""

(* A lock owner "pid@host" is stale when the host is ours and the pid
   is dead — [kill pid 0] raising ESRCH. Locks from other hosts are
   never broken automatically (we cannot probe their processes). *)
let lock_is_stale owner =
  match String.index_opt owner '@' with
  | None -> owner = "" (* unreadable/empty lock: treat as debris *)
  | Some i -> (
      let pid = String.sub owner 0 i in
      let host = String.sub owner (i + 1) (String.length owner - i - 1) in
      String.equal host (Unix.gethostname ())
      &&
      match int_of_string_opt pid with
      | None -> true
      | Some pid -> (
          match Unix.kill pid 0 with
          | () -> false
          | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
          | exception Unix.Unix_error (Unix.EPERM, _, _) -> false
          | exception Unix.Unix_error _ -> false))

let try_take path =
  match Unix.openfile path [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644
  with
  | fd ->
      let content = owner_string () ^ "\n" in
      let _ = Unix.write_substring fd content 0 (String.length content) in
      Unix.close fd;
      true
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false

let claim store u =
  let path = lock_path store u in
  if try_take path then Claimed
  else begin
    let owner = read_owner path in
    if lock_is_stale owner then begin
      (try Sys.remove path with Sys_error _ -> ());
      if try_take path then Claimed else Busy (read_owner path)
    end
    else Busy owner
  end

let release store u =
  try Sys.remove (lock_path store u) with Sys_error _ -> ()

let gc_locks ?(force = false) store =
  let dir = locks_dir store in
  let removed = ref 0 in
  if Sys.file_exists dir then
    Array.iter
      (fun name ->
        if Filename.check_suffix name ".lock" then begin
          let path = Filename.concat dir name in
          if force || lock_is_stale (read_owner path) then begin
            (try Sys.remove path with Sys_error _ -> ());
            incr removed
          end
        end)
      (Sys.readdir dir);
  !removed
