(** Persistent content-addressed campaign-result store.

    The engine's compiled/decoded/replay caches and campaign
    checkpoints die with the process, so every sweep over the
    issue-width × delay × scheme × fault-model × workload matrix used
    to re-simulate cells whose tallies were already known bit-for-bit.
    The store keeps finished (and partially finished) campaign tallies
    on disk, keyed by the same identity discipline campaign checkpoints
    already use ({!Casted_engine.Cache.identity} plus the fault model,
    seed, fuel factor and retry budget), so re-running a matrix only
    simulates the delta.

    {b Layout.} A store is a directory:

    {v
    DIR/MANIFEST            "casted-store v1" — version sentinel
    DIR/entries/<md5>.entry one tally per campaign cell (or shard)
    DIR/queue/<md5>.unit    work units (see {!Work})
    DIR/locks/<md5>.lock    in-flight claims (see {!Work})
    v}

    An entry's filename is the MD5 of its canonical key string, so the
    key {e is} the address: two processes writing the same cell write
    the same file (atomically, last writer wins — both wrote the same
    bit-identical tally for equal [trials]), and a lookup is one hash
    plus one file read.

    {b Merge semantics.} Tallies merge exactly as campaign checkpoint
    chunks merge: per-class counts sum, because trial [i]'s outcome
    depends only on [(seed, i, model)] (see
    {!Casted_sim.Montecarlo.trial}). A full entry carries the tally of
    trials [0, trials_done); a shard entry ([shard = (k, n)], [n > 1])
    carries the tally of the chunks owned by shard [k] out of [n] over
    a fixed total; summing all [n] shard entries reproduces the
    single-process tally bit-for-bit.

    {b Integrity.} Every read re-derives the canonical key string from
    the entry's own fields and refuses (loudly, [Error]) an entry whose
    hash does not match its filename, whose counts do not sum to its
    recorded trials, or whose version sentinel is unknown. Writes are
    atomic (unique tmp file + [rename]), so a SIGKILL can never leave a
    half-written entry behind — at worst an orphan tmp file that
    {!gc_tmp} sweeps.

    All operations record [store.*] {!Casted_obs.Metrics} counters
    (hits, misses, writes, bytes read/written). *)

(** A campaign cell's identity. [identity] is the engine's rendering of
    (workload, scheme, config, fault model) — the same string campaign
    checkpoints embed. [retry_budget] is [-1] when the campaign runs no
    recovery loop. [shard = (k, n)] with [n = 1] is a full (unsharded)
    entry; [trials] is the requested campaign length for shard entries
    and is {e not} part of a full entry's address (full entries extend
    in place as more trials accumulate). *)
type key = {
  identity : string;
  seed : int;
  fuel_factor : int;
  retry_budget : int;
  shard : int * int;
  trials : int;
}

val key :
  ?retry_budget:int ->
  ?shard:int * int ->
  identity:string ->
  seed:int ->
  fuel_factor:int ->
  trials:int ->
  unit ->
  key

(** The canonical string hashed into the entry's filename. Pinned by
    golden tests — changing its shape orphans every store on disk. *)
val address : key -> string

(** MD5 hex of {!address}. *)
val hash : key -> string

(** One stored tally. [counts] is indexed by
    {!Casted_sim.Montecarlo} class order (benign, detected, exception,
    data-corrupt, timeout, recovered — the checkpoint order);
    [trials_done] always equals the sum of [counts]. The [spec_*]
    fields, when present, record the explicit cell coordinates so
    [casted store audit] and workers can rebuild the campaign; an entry
    written from a non-reconstructible spec (non-default pass options)
    has [spec = None]. *)
type spec = {
  workload : string;
  size : string;
  scheme : string;
  issue : int;
  delay : int;
  model : string;
}

type entry = {
  key : key;
  trials_done : int;
  counts : int array;
  golden_cycles : int;
  golden_dyn : int;
  population : int;
  model : string;
  spec : spec option;
}

type t

(** [open_dir ~create dir] opens (or with [create], initialises) a
    store directory, verifying the MANIFEST version sentinel. A
    directory that exists but is not a store, or a store written by an
    unknown version, is a loud [Error] — never silently reused. *)
val open_dir : ?create:bool -> string -> (t, string) result

(** {!open_dir}, raising [Invalid_argument] on error. *)
val open_exn : ?create:bool -> string -> t

val dir : t -> string

(** [find t key] reads the entry at [key]'s address. [Ok None] when
    absent; [Error] on a corrupt, mis-addressed or wrong-version
    entry. Counted as a hit or miss. *)
val find : t -> key -> (entry option, string) result

(** [put t entry] atomically writes [entry] at its key's address
    (unique tmp + rename). Raises [Invalid_argument] on a malformed
    entry (counts/trials mismatch, newline in identity). *)
val put : t -> entry -> unit

(** All entries, sorted by address, skipping nothing: a corrupt entry
    is an [Error] naming the file. *)
val list : t -> ((entry, string) result list, string) result

(** [merge_shards t key] — [key] with [shard = (_, n)], [n >= 1] —
    looks up all [n] shard entries of the cell and, when every one is
    present and complete, returns the summed tally as a full entry
    (shard [(0, 1)], [trials_done = trials]). Returns [Ok None] while
    shards are missing or still partial (a shard worker banks its
    running tally after every finished chunk, so an entry below its
    share just means that worker has not finished); [Error] on corrupt
    entries or on shards that
    disagree about golden cycles / population (which would mean the
    shards did not run the same cell). [chunk] is the campaign chunk
    size the shards split on (pass
    {!Casted_sim.Montecarlo.chunk_trials}; default 64). *)
val merge_shards : ?chunk:int -> t -> key -> (entry option, string) result

(** Remove orphan tmp files older than [age_s] seconds (default 60) —
    debris of SIGKILLed writers. Returns how many were removed. *)
val gc_tmp : ?age_s:float -> t -> int

(** Remove shard entries whose cell already has a full entry covering
    at least as many trials. Returns how many were removed. *)
val gc_shards : t -> (int, string) result

(** Lifetime counters of this handle (process-local). *)
type stats = {
  hits : int;  (** lookups answered from disk *)
  misses : int;  (** lookups that found no entry *)
  writes : int;  (** entries written *)
  bytes_read : int;
  bytes_written : int;
}

val stats : t -> stats

(** Atomic write helper shared with {!Work}: writes [content] to
    [path] via a tmp file unique to this process, then renames. *)
val atomic_write : path:string -> string -> unit
