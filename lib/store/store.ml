(* On-disk content-addressed campaign-result store. See store.mli for
   the layout and merge semantics. *)

type key = {
  identity : string;
  seed : int;
  fuel_factor : int;
  retry_budget : int;
  shard : int * int;
  trials : int;
}

let key ?(retry_budget = -1) ?(shard = (0, 1)) ~identity ~seed ~fuel_factor
    ~trials () =
  let k, n = shard in
  if n < 1 || k < 0 || k >= n then
    invalid_arg (Printf.sprintf "Store.key: shard %d/%d is malformed" k n);
  if trials < 0 then invalid_arg "Store.key: trials must be non-negative";
  if String.contains identity '\n' || String.contains identity '|' then
    invalid_arg "Store.key: identity must not contain newlines or '|'";
  { identity; seed; fuel_factor; retry_budget; shard; trials }

(* The canonical address. A full entry (shard 0/1) is addressed without
   its trial count so it can extend in place as more trials accumulate;
   a shard entry is pinned to its campaign length, since its chunk
   ownership only means anything for one fixed total. Pinned by golden
   tests: changing this shape orphans every store on disk. *)
let address k =
  let base =
    Printf.sprintf "%s|seed=%d|fuel=%d|retry=%d" k.identity k.seed
      k.fuel_factor k.retry_budget
  in
  match k.shard with
  | 0, 1 -> base
  | s, n -> Printf.sprintf "%s|trials=%d|shard=%d/%d" base k.trials s n

let hash k = Digest.to_hex (Digest.string (address k))

type spec = {
  workload : string;
  size : string;
  scheme : string;
  issue : int;
  delay : int;
  model : string;
}

type entry = {
  key : key;
  trials_done : int;
  counts : int array;
  golden_cycles : int;
  golden_dyn : int;
  population : int;
  model : string;
  spec : spec option;
}

type stats = {
  hits : int;
  misses : int;
  writes : int;
  bytes_read : int;
  bytes_written : int;
}

type t = {
  dir : string;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let magic = "casted-store v1"
let entry_magic = "casted-store-entry v1"
let dir t = t.dir
let entries_dir t = Filename.concat t.dir "entries"
let manifest_path dir = Filename.concat dir "MANIFEST"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic publish: write to a tmp file unique to this process, then
   rename. Readers never observe a half-written file; two processes
   racing on one path each rename a complete file and the last one
   wins (for store entries both wrote the same bit-identical tally). *)
let atomic_write ~path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try output_string oc content
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let mkdir_p path =
  if not (Sys.file_exists path) then
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let open_dir ?(create = false) dir =
  let manifest = manifest_path dir in
  let init () =
    {
      dir;
      mutex = Mutex.create ();
      hits = 0;
      misses = 0;
      writes = 0;
      bytes_read = 0;
      bytes_written = 0;
    }
  in
  if Sys.file_exists manifest then begin
    let content = String.trim (read_file manifest) in
    if String.equal content magic then Ok (init ())
    else
      Error
        (Printf.sprintf
           "%s: version sentinel is %S, expected %S — refusing a store \
            written by an unknown casted version"
           manifest content magic)
  end
  else if Sys.file_exists dir && not (Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else if Sys.file_exists dir && Array.length (Sys.readdir dir) > 0 then
    (* Never adopt somebody else's non-empty directory, even when asked
       to create: initialising a store inside it would mix our entries
       into foreign files. *)
    Error
      (Printf.sprintf
         "%s: directory exists but has no MANIFEST — not a casted result \
          store"
         dir)
  else if not (create || Sys.file_exists dir) then
    Error (Printf.sprintf "%s: no such store (pass --create to make one)" dir)
  else begin
    mkdir_p dir;
    mkdir_p (Filename.concat dir "entries");
    mkdir_p (Filename.concat dir "queue");
    mkdir_p (Filename.concat dir "locks");
    atomic_write ~path:manifest (magic ^ "\n");
    Ok (init ())
  end

let open_exn ?create dir =
  match open_dir ?create dir with
  | Ok t -> t
  | Error msg -> invalid_arg ("Store.open_dir: " ^ msg)

let entry_path t k = Filename.concat (entries_dir t) (hash k ^ ".entry")

(* Key/value lines, checkpoint-style: order-independent parse, loud on
   anything missing or malformed. *)
let parse_fields lines =
  let table = Hashtbl.create 16 in
  List.iter
    (fun line ->
      match String.index_opt line '=' with
      | Some i ->
          Hashtbl.replace table (String.sub line 0 i)
            (String.sub line (i + 1) (String.length line - i - 1))
      | None -> ())
    lines;
  table

let ( let* ) = Result.bind

let field ~path table name =
  match Hashtbl.find_opt table name with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %s" path name)

let int_field ~path table name =
  let* v = field ~path table name in
  match int_of_string_opt v with
  | Some n -> Ok n
  | None ->
      Error (Printf.sprintf "%s: field %s is not an integer (%S)" path name v)

let render_entry e =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let k, n = e.key.shard in
  line "%s" entry_magic;
  line "identity=%s" e.key.identity;
  line "seed=%d" e.key.seed;
  line "fuel_factor=%d" e.key.fuel_factor;
  line "retry_budget=%d" e.key.retry_budget;
  line "shard=%d/%d" k n;
  line "trials=%d" e.key.trials;
  line "trials_done=%d" e.trials_done;
  line "counts=%s"
    (String.concat "," (Array.to_list (Array.map string_of_int e.counts)));
  line "golden_cycles=%d" e.golden_cycles;
  line "golden_dyn=%d" e.golden_dyn;
  line "population=%d" e.population;
  line "model=%s" e.model;
  (match e.spec with
  | None -> ()
  | Some s ->
      line "workload=%s" s.workload;
      line "size=%s" s.size;
      line "scheme=%s" s.scheme;
      line "issue=%d" s.issue;
      line "delay=%d" s.delay);
  Buffer.contents b

let validate_entry e =
  let sum = Array.fold_left ( + ) 0 e.counts in
  if sum <> e.trials_done then
    Error
      (Printf.sprintf "counts sum to %d but trials_done is %d" sum
         e.trials_done)
  else if e.trials_done < 0 || e.trials_done > e.key.trials then
    Error
      (Printf.sprintf "trials_done %d outside [0, %d]" e.trials_done
         e.key.trials)
  else Ok ()

let parse_entry ~path content =
  match String.split_on_char '\n' content with
  | header :: fields when String.equal header entry_magic ->
      let table = parse_fields fields in
      let* identity = field ~path table "identity" in
      let* seed = int_field ~path table "seed" in
      let* fuel_factor = int_field ~path table "fuel_factor" in
      let* retry_budget = int_field ~path table "retry_budget" in
      let* shard_s = field ~path table "shard" in
      let* shard =
        match String.split_on_char '/' shard_s with
        | [ k; n ] -> (
            match (int_of_string_opt k, int_of_string_opt n) with
            | Some k, Some n when n >= 1 && k >= 0 && k < n -> Ok (k, n)
            | _ -> Error (Printf.sprintf "%s: malformed shard %S" path shard_s)
            )
        | _ -> Error (Printf.sprintf "%s: malformed shard %S" path shard_s)
      in
      let* trials = int_field ~path table "trials" in
      let* trials_done = int_field ~path table "trials_done" in
      let* counts_s = field ~path table "counts" in
      let* counts =
        let parts = String.split_on_char ',' counts_s in
        let parsed = List.filter_map int_of_string_opt parts in
        if List.length parsed = List.length parts && parts <> [] then
          Ok (Array.of_list parsed)
        else Error (Printf.sprintf "%s: malformed counts %S" path counts_s)
      in
      let* golden_cycles = int_field ~path table "golden_cycles" in
      let* golden_dyn = int_field ~path table "golden_dyn" in
      let* population = int_field ~path table "population" in
      let* model = field ~path table "model" in
      let spec =
        match
          ( Hashtbl.find_opt table "workload",
            Hashtbl.find_opt table "size",
            Hashtbl.find_opt table "scheme",
            Option.bind (Hashtbl.find_opt table "issue") int_of_string_opt,
            Option.bind (Hashtbl.find_opt table "delay") int_of_string_opt )
        with
        | Some workload, Some size, Some scheme, Some issue, Some delay ->
            Some { workload; size; scheme; issue; delay; model }
        | _ -> None
      in
      let e =
        {
          key = { identity; seed; fuel_factor; retry_budget; shard; trials };
          trials_done;
          counts;
          golden_cycles;
          golden_dyn;
          population;
          model;
          spec;
        }
      in
      let* () =
        Result.map_error (fun msg -> path ^ ": " ^ msg) (validate_entry e)
      in
      (* The filename is the address: a mismatch means the file was
         corrupted, hand-edited or moved — refuse it loudly rather than
         serve a tally for the wrong cell. *)
      let expected = hash e.key ^ ".entry" in
      if not (String.equal (Filename.basename path) expected) then
        Error
          (Printf.sprintf
             "%s: content addresses %s (key %S) — entry is corrupt or \
              misplaced"
             path expected (address e.key))
      else Ok e
  | header :: _ ->
      Error
        (Printf.sprintf "%s: version sentinel is %S, expected %S" path
           (String.trim header) entry_magic)
  | [] -> Error (Printf.sprintf "%s: empty entry" path)

let tick t f =
  Mutex.lock t.mutex;
  f t;
  Mutex.unlock t.mutex

let find t k =
  let path = entry_path t k in
  if not (Sys.file_exists path) then begin
    tick t (fun t -> t.misses <- t.misses + 1);
    Casted_obs.Metrics.incr "store.misses";
    Ok None
  end
  else begin
    let content = read_file path in
    match parse_entry ~path content with
    | Error msg -> Error msg
    | Ok entry ->
        if not (String.equal (address entry.key) (address k)) then
          Error
            (Printf.sprintf
               "%s: entry belongs to %S, not %S — hash collision or corrupt \
                store"
               path (address entry.key) (address k))
        else begin
          tick t (fun t ->
              t.hits <- t.hits + 1;
              t.bytes_read <- t.bytes_read + String.length content);
          Casted_obs.Metrics.incr "store.hits";
          Casted_obs.Metrics.incr ~by:(String.length content)
            "store.bytes_read";
          Ok (Some entry)
        end
  end

let put t e =
  (match validate_entry e with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Store.put: " ^ msg));
  let content = render_entry e in
  atomic_write ~path:(entry_path t e.key) content;
  tick t (fun t ->
      t.writes <- t.writes + 1;
      t.bytes_written <- t.bytes_written + String.length content);
  Casted_obs.Metrics.incr "store.writes";
  Casted_obs.Metrics.incr ~by:(String.length content) "store.bytes_written"

let list t =
  let dir = entries_dir t in
  if not (Sys.file_exists dir) then
    Error (Printf.sprintf "%s: no entries directory" t.dir)
  else begin
    let names =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun n -> Filename.check_suffix n ".entry")
      |> List.sort String.compare
    in
    Ok
      (List.map
         (fun name ->
           let path = Filename.concat dir name in
           parse_entry ~path (read_file path))
         names)
  end

(* Expected trial count of shard [s] of [n] over [0, trials): the
   chunks (64-trial groups, Montecarlo.chunk_trials) whose index mod n
   is s. Must mirror the montecarlo chunk grid exactly. *)
let shard_share ~chunk ~trials ~n s =
  let total = ref 0 in
  let lo = ref 0 in
  let i = ref 0 in
  while !lo < trials do
    let hi = min trials (!lo + chunk) in
    if !i mod n = s then total := !total + (hi - !lo);
    lo := hi;
    incr i
  done;
  !total

let merge_shards ?(chunk = 64) t k =
  let _, n = k.shard in
  let rec gather s acc =
    if s >= n then Ok (Some (List.rev acc))
    else
      match find t { k with shard = (s, n) } with
      | Error msg -> Error msg
      | Ok None -> Ok None
      | Ok (Some e) -> gather (s + 1) (e :: acc)
  in
  match gather 0 [] with
  | Error msg -> Error msg
  | Ok None -> Ok None
  | Ok (Some shards)
    when List.exists
           (fun e ->
             let s, _ = e.key.shard in
             e.trials_done < shard_share ~chunk ~trials:k.trials ~n s)
           shards ->
      (* A shard below its share is a partial tally banked by a worker
         still running (or killed mid-campaign) — the cell is simply
         not complete yet, same as a missing shard entry. *)
      Ok None
  | Ok (Some shards) ->
      let reference = List.hd shards in
      let counts = Array.make (Array.length reference.counts) 0 in
      let* () =
        List.fold_left
          (fun acc e ->
            let* () = acc in
            let s, _ = e.key.shard in
            let expected = shard_share ~chunk ~trials:k.trials ~n s in
            if e.trials_done <> expected then
              Error
                (Printf.sprintf
                   "shard %d/%d of %S tallied %d trials, expected %d — \
                    banked from a different chunk grid"
                   s n k.identity e.trials_done expected)
            else if Array.length e.counts <> Array.length counts then
              Error
                (Printf.sprintf
                   "shard %d/%d of %S has %d outcome classes, shard 0 has %d"
                   s n k.identity (Array.length e.counts)
                   (Array.length counts))
            else if
              e.golden_cycles <> reference.golden_cycles
              || e.golden_dyn <> reference.golden_dyn
              || e.population <> reference.population
              || not (String.equal e.model reference.model)
            then
              Error
                (Printf.sprintf
                   "shard %d/%d of %S disagrees with shard 0 about the \
                    golden run (cycles/dyn/population/model) — shards did \
                    not simulate the same cell"
                   s n k.identity)
            else begin
              Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) e.counts;
              Ok ()
            end)
          (Ok ()) shards
      in
      let sum = Array.fold_left ( + ) 0 counts in
      if sum <> k.trials then
        Error
          (Printf.sprintf
             "merged shards of %S tally %d trials, expected %d" k.identity
             sum k.trials)
      else
        Ok
          (Some
             {
               reference with
               key = { k with shard = (0, 1) };
               trials_done = k.trials;
               counts;
             })

let gc_tmp ?(age_s = 60.0) t =
  let now = Unix.gettimeofday () in
  let removed = ref 0 in
  let sweep dir =
    if Sys.file_exists dir then
      Array.iter
        (fun name ->
          let path = Filename.concat dir name in
          let is_tmp =
            (* foo.tmp.<pid> — the unique suffix atomic_write uses. *)
            match String.index_opt name '.' with
            | None -> false
            | Some _ ->
                List.exists
                  (fun part -> String.equal part "tmp")
                  (String.split_on_char '.' name)
          in
          if is_tmp then
            match Unix.stat path with
            | { Unix.st_mtime; _ } when now -. st_mtime > age_s ->
                (try Sys.remove path with Sys_error _ -> ());
                incr removed
            | _ -> ()
            | exception Unix.Unix_error _ -> ())
        (Sys.readdir dir)
  in
  sweep (entries_dir t);
  sweep (Filename.concat t.dir "queue");
  sweep (Filename.concat t.dir "locks");
  sweep t.dir;
  !removed

let gc_shards t =
  let* entries = list t in
  let shard_entries =
    List.filter_map
      (fun e ->
        match e with
        | Ok e when snd e.key.shard > 1 -> Some e
        | _ -> None)
      entries
  in
  let removed = ref 0 in
  List.iter
    (fun (e : entry) ->
      match find t { e.key with shard = (0, 1) } with
      | Ok (Some full) when full.trials_done >= e.key.trials ->
          (try Sys.remove (entry_path t e.key) with Sys_error _ -> ());
          incr removed
      | _ -> ())
    shard_entries;
  Ok !removed

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      writes = t.writes;
      bytes_read = t.bytes_read;
      bytes_written = t.bytes_written;
    }
  in
  Mutex.unlock t.mutex;
  s
