(** Identity-keyed work units and lock-file claiming.

    A coordinator enqueues campaign cells as unit files under
    [DIR/queue/]; any number of worker processes (or hosts sharing the
    directory) then claim units one at a time via [O_EXCL] lock files
    under [DIR/locks/], simulate the cell, and stream the tally back as
    a {!Store} entry. A unit is done when its cell's store entry covers
    its trial count — the queue file stays behind as the durable record
    of what the matrix contains, so a re-run of the same matrix finds
    every cell already present and simulates nothing.

    Locks are advisory and crash-tolerant: a lock names its owner
    ([pid@host]); a claimer finding a lock whose process is dead on the
    same host breaks it and takes over, so a SIGKILLed worker never
    wedges the queue. ([casted store gc] also sweeps stale locks.) *)

(** One campaign cell, fully explicit — enough to rebuild the engine
    key without parsing an identity string. [retry_budget = -1] means
    the engine's default for the scheme. *)
type unit_spec = {
  workload : string;
  size : string;  (** ["fault"] or ["perf"] *)
  scheme : string;
  issue : int;
  delay : int;
  model : string;
  seed : int;
  trials : int;
  fuel_factor : int;
  retry_budget : int;
}

(** Canonical address of a unit (hashed into its filename). *)
val address : unit_spec -> string

val hash : unit_spec -> string

(** [enqueue store u] writes the unit file if absent. Returns [true]
    when newly enqueued, [false] when the identical unit was already
    queued. Raises [Invalid_argument] on a malformed spec (empty or
    newline-carrying fields). *)
val enqueue : Store.t -> unit_spec -> bool

(** All queued units, sorted by address; corrupt unit files surface as
    [Error] naming the file. *)
val units : Store.t -> ((unit_spec, string) result list, string) result

type claim = Claimed | Busy of string  (** [Busy owner] *)

(** [claim store u] takes the unit's lock ([O_CREAT|O_EXCL]). A lock
    held by a dead process on this host is broken and re-taken. *)
val claim : Store.t -> unit_spec -> claim

(** Drop the unit's lock (idempotent). *)
val release : Store.t -> unit_spec -> unit

(** Remove stale locks: those whose owning process is dead (same host),
    or — with [force] — every lock. Returns how many were removed. *)
val gc_locks : ?force:bool -> Store.t -> int
