module Opcode = Casted_ir.Opcode
module Insn = Casted_ir.Insn
module Block = Casted_ir.Block
module Func = Casted_ir.Func
module Program = Casted_ir.Program
module Clone = Casted_ir.Clone

type stats = { regions : int; checkpoints : int }

let zero = { regions = 0; checkpoints = 0 }

let pp_stats ppf s =
  Format.fprintf ppf "%d regions, %d checkpoints" s.regions s.checkpoints

(* A region head is the entry block or any target of a backward (or
   self) branch in layout order — exactly the loop tops. Marking those
   makes every region a loop-free straight shot, so re-executing it
   from its checkpoint is idempotent up to the memory the region itself
   wrote before the failure was detected. *)
let region_heads (f : Func.t) =
  let blocks = Array.of_list f.Func.blocks in
  let index_of = Hashtbl.create (2 * Array.length blocks) in
  Array.iteri
    (fun i b ->
      if not (Hashtbl.mem index_of b.Block.label) then
        Hashtbl.add index_of b.Block.label i)
    blocks;
  let heads = Array.make (Array.length blocks) false in
  if Array.length heads > 0 then heads.(0) <- true;
  Array.iteri
    (fun i b ->
      List.iter
        (fun label ->
          match Hashtbl.find_opt index_of label with
          | Some j when j <= i -> heads.(j) <- true
          | _ -> ())
        (Block.successors b))
    blocks;
  heads

let func (f : Func.t) =
  let heads = region_heads f in
  let n = ref 0 in
  List.iteri
    (fun i b ->
      if heads.(i) then begin
        incr n;
        let cpt = Insn.make ~id:(Func.fresh_id f) ~op:Opcode.Cpt () in
        b.Block.body <- cpt :: b.Block.body
      end)
    f.Func.blocks;
  { regions = !n; checkpoints = !n }

let program (p : Program.t) =
  (* State snapshots are only valid at entry-function block tops with an
     empty call stack (Simulator.run_recovering restores nothing else),
     so only the entry function is partitioned; callee work re-executes
     as part of its caller's region. *)
  let p = Clone.program p in
  let stats =
    match
      List.find_opt (fun f -> f.Func.name = p.Program.entry) p.Program.funcs
    with
    | Some f -> func f
    | None -> zero
  in
  (p, stats)
