module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Insn = Casted_ir.Insn
module Block = Casted_ir.Block
module Func = Casted_ir.Func
module Program = Casted_ir.Program
module Clone = Casted_ir.Clone

type stats = {
  originals : int;
  replicas : int;
  checks : int;
  shadow_copies : int;
}

let zero_stats = { originals = 0; replicas = 0; checks = 0; shadow_copies = 0 }

let add_stats a b =
  {
    originals = a.originals + b.originals;
    replicas = a.replicas + b.replicas;
    checks = a.checks + b.checks;
    shadow_copies = a.shadow_copies + b.shadow_copies;
  }

let pp_stats ppf s =
  Format.fprintf ppf "%d originals, %d replicas, %d checks, %d copies"
    s.originals s.replicas s.checks s.shadow_copies

let expansion s =
  if s.originals = 0 then 1.0
  else
    float_of_int (s.originals + s.replicas + s.checks + s.shadow_copies)
    /. float_of_int s.originals

(* Per-function transformation context. *)
type ctx = {
  func : Func.t;
  shadow : Reg.t Reg.Tbl.t;  (* original register -> shadow register *)
  options : Options.t;
  slice : (int, unit) Hashtbl.t;  (* replication scope (Store_slice mode) *)
  replicate_stores : bool;  (* DME: stores get replicas too *)
  mem_offset : int64;  (* DME: replica memory traffic lands at +offset *)
  mutable n_replicas : int;
  mutable n_checks : int;
  mutable n_copies : int;
}

let should_replicate ctx (insn : Insn.t) =
  (Opcode.replicable insn.Insn.op
  || (ctx.replicate_stores && Opcode.is_store insn.Insn.op))
  &&
  match ctx.options.Options.scope with
  | Options.Full -> true
  | Options.Store_slice -> Hashtbl.mem ctx.slice insn.Insn.id

let ensure_shadow ctx r =
  match Reg.Tbl.find_opt ctx.shadow r with
  | Some r' -> r'
  | None ->
      let r' = Func.fresh_reg ctx.func (Reg.cls r) in
      Reg.Tbl.replace ctx.shadow r r';
      r'

(* Registers that never get a shadow (outside the replication scope)
   resolve to themselves in uses, and produce no check. *)
let soft_shadow ctx r = Reg.Tbl.find_opt ctx.shadow r

(* Pre-allocate every shadow before renaming: a replica may read a
   register whose shadow-producing instruction appears later (loop
   carried), so lazy allocation during the rewrite would misclassify
   it as unshadowed. *)
let preallocate_shadows ctx =
  Func.iter_insns ctx.func (fun _ insn ->
      if should_replicate ctx insn then
        Array.iter (fun r -> ignore (ensure_shadow ctx r)) insn.Insn.defs
      else if
        insn.Insn.role = Insn.Original
        && Array.length insn.Insn.defs > 0
        && (not (Opcode.replicable insn.Insn.op))
        && Array.for_all (fun r -> Reg.cls r <> Reg.Pr) insn.Insn.defs
      then Array.iter (fun r -> ignore (ensure_shadow ctx r)) insn.Insn.defs);
  if ctx.options.Options.shadow_params then
    List.iter
      (fun r -> ignore (ensure_shadow ctx r))
      ctx.func.Func.params

(* Step 1: emit an exact duplicate just before each replicable
   instruction (Algorithm 1, replicate_insns). *)
let replicate_block ctx block =
  let dup insn =
    if should_replicate ctx insn then begin
      ctx.n_replicas <- ctx.n_replicas + 1;
      let replica =
        {
          insn with
          Insn.id = Func.fresh_id ctx.func;
          role = Insn.Replica;
          replica_of = insn.Insn.id;
        }
      in
      [ replica; insn ]
    end
    else [ insn ]
  in
  block.Block.body <- List.concat_map dup block.Block.body

let copy_op cls =
  match cls with
  | Reg.Gp -> Opcode.Mov
  | Reg.Fp -> Opcode.Fmov
  | Reg.Pr ->
      invalid_arg
        "Transform: cannot shadow a predicate register defined by \
         non-replicated code"

let shadow_copy ctx ~after_id r =
  ctx.n_copies <- ctx.n_copies + 1;
  let r' = ensure_shadow ctx r in
  Insn.make ~id:(Func.fresh_id ctx.func) ~op:(copy_op (Reg.cls r))
    ~defs:[| r' |] ~uses:[| r |] ~role:Insn.Shadow_copy ~replica_of:after_id
    ()

(* Step 2: register renaming (Algorithm 1, register_rename).

   Replicas write and read the shadow space; values that enter the
   original stream through non-replicated instructions (call results) or
   function parameters are forwarded into the shadow space with explicit
   copies. *)
let rename_block ctx block =
  let rename insn =
    match insn.Insn.role with
    | Insn.Replica ->
        let def r = ensure_shadow ctx r in
        let use r = Option.value ~default:r (soft_shadow ctx r) in
        let insn = Insn.map_uses use (Insn.map_defs def insn) in
        (* Decorrelated mode: the replica stream's loads and stores hit
           the shifted image, so no single memory line is shared with
           the master's traffic. *)
        let insn =
          if ctx.mem_offset <> 0L && Opcode.is_mem insn.Insn.op then
            { insn with Insn.imm = Int64.add insn.Insn.imm ctx.mem_offset }
          else insn
        in
        [ insn ]
    | Insn.Original when Array.length insn.Insn.defs > 0
                         && not (Opcode.replicable insn.Insn.op) ->
        insn
        :: List.map
             (fun r -> shadow_copy ctx ~after_id:insn.Insn.id r)
             (Array.to_list insn.Insn.defs)
    | Insn.Original | Insn.Check | Insn.Shadow_copy -> [ insn ]
  in
  block.Block.body <- List.concat_map rename block.Block.body

let shadow_params ctx =
  if ctx.options.Options.shadow_params && ctx.func.Func.params <> [] then begin
    let entry = Func.entry ctx.func in
    let copies =
      List.map
        (fun r -> shadow_copy ctx ~after_id:(-1) r)
        ctx.func.Func.params
    in
    entry.Block.body <- copies @ entry.Block.body
  end

(* Step 3: checks (Algorithm 1, emit_check_insns). *)
let wants_check ctx (insn : Insn.t) =
  let o = ctx.options in
  match insn.Insn.op with
  | Opcode.St _ | Opcode.Fst -> o.Options.check_stores
  | Opcode.Brc _ -> o.Options.check_branches
  | Opcode.Call | Opcode.Ret | Opcode.Halt -> o.Options.check_calls
  | _ -> false

let checks_for ctx insn =
  if
    insn.Insn.role = Insn.Original
    && (not (Opcode.replicable insn.Insn.op))
    && wants_check ctx insn
  then
    List.filter_map
      (fun r ->
        match soft_shadow ctx r with
        | None -> None (* outside the replication scope: no check *)
        | Some r' ->
            ctx.n_checks <- ctx.n_checks + 1;
            Some
              (Insn.make ~id:(Func.fresh_id ctx.func) ~op:Opcode.Chk
                 ~uses:[| r; r' |] ~role:Insn.Check ~protects:insn.Insn.id
                 ()))
      (Array.to_list insn.Insn.uses)
  else []

let check_block ctx block =
  let with_checks insn = checks_for ctx insn @ [ insn ] in
  let body = List.concat_map with_checks block.Block.body in
  (* The terminator's operands are checked at the end of the body. *)
  block.Block.body <- body @ checks_for ctx block.Block.term

let func ?(replicate_stores = false) ?(mem_offset = 0L) options f =
  if not f.Func.protect then zero_stats
  else begin
    let slice =
      match options.Options.scope with
      | Options.Full -> Hashtbl.create 1
      | Options.Store_slice -> Selective.store_slice f
    in
    let ctx =
      {
        func = f;
        shadow = Reg.Tbl.create 64;
        options;
        slice;
        replicate_stores;
        mem_offset;
        n_replicas = 0;
        n_checks = 0;
        n_copies = 0;
      }
    in
    let originals = Func.num_insns f in
    preallocate_shadows ctx;
    List.iter (replicate_block ctx) f.Func.blocks;
    List.iter (rename_block ctx) f.Func.blocks;
    shadow_params ctx;
    List.iter (check_block ctx) f.Func.blocks;
    {
      originals;
      replicas = ctx.n_replicas;
      checks = ctx.n_checks;
      shadow_copies = ctx.n_copies;
    }
  end

let program options p =
  let p = Clone.program p in
  let stats =
    List.fold_left
      (fun acc f -> add_stats acc (func options f))
      zero_stats p.Program.funcs
  in
  (p, stats)
