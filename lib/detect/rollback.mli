(** Region-rollback recovery pass ({!Scheme.Rollback}).

    Runs after the detection transform and partitions the entry
    function into checkpoint regions: the entry block and every target
    of a backward (or self) branch in layout order — the loop tops —
    get a {!Casted_ir.Opcode.Cpt} marker prepended to their body. The
    marker costs one issue slot and executes as a no-op; its meaning
    lives in the simulator, where {!Casted_sim.Simulator.run_recovering}
    snapshots the machine at every marked block's loop top and answers
    a fired detection check by restoring the latest snapshot and
    re-executing the region instead of trapping. *)

type stats = {
  regions : int;  (** region-head blocks found in the entry function *)
  checkpoints : int;  (** [Cpt] markers inserted (= [regions]) *)
}

val zero : stats
val pp_stats : Format.formatter -> stats -> unit

(** [program p] returns a deep copy of [p] with the entry function's
    region heads marked. Non-entry functions are untouched: snapshots
    are only valid at entry-function block tops with an empty call
    stack, so callee work re-executes as part of its caller's region. *)
val program : Casted_ir.Program.t -> Casted_ir.Program.t * stats
