module Config = Casted_machine.Config
module Assign = Casted_sched.Assign
module Bug = Casted_sched.Bug

type t = Noed | Sced | Dced | Casted | Dme | Tmr | Rollback

let all = [ Noed; Sced; Dced; Casted; Dme; Tmr; Rollback ]

let name = function
  | Noed -> "NOED"
  | Sced -> "SCED"
  | Dced -> "DCED"
  | Casted -> "CASTED"
  | Dme -> "DME"
  | Tmr -> "TMR"
  | Rollback -> "ROLLBACK"

let of_string s =
  match String.uppercase_ascii s with
  | "NOED" -> Some Noed
  | "SCED" -> Some Sced
  | "DCED" -> Some Dced
  | "CASTED" -> Some Casted
  | "DME" -> Some Dme
  | "TMR" -> Some Tmr
  | "ROLLBACK" -> Some Rollback
  | _ -> None

let hardened = function
  | Noed -> false
  | Sced | Dced | Casted | Dme | Tmr | Rollback -> true

let recovers = function
  | Tmr | Rollback -> true
  | Noed | Sced | Dced | Casted | Dme -> false

let machine t ~issue_width ~delay =
  match t with
  | Noed | Sced -> Config.single_core ~issue_width
  | Dced | Casted | Dme | Tmr | Rollback -> Config.dual_core ~issue_width ~delay

let strategy = function
  | Noed | Sced -> Assign.Single_cluster
  | Dced -> Assign.Dual_fixed
  | Casted | Dme | Tmr | Rollback -> Assign.Adaptive Bug.default_options
