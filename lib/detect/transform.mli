(** The error-detection pass (paper Algorithm 1).

    Three steps, applied per function:

    + {b replicate}: every replicable instruction gets an exact duplicate
      emitted just before it;
    + {b rename}: the duplicate stream is isolated by renaming every
      register it writes (and its uses) through a per-function bijection
      into a fresh "shadow" register space; registers defined by
      non-replicated instructions are copied into their shadow after the
      defining instruction, and incoming parameters are copied at entry;
    + {b checks}: before every non-replicated instruction, each register
      it reads is compared against its shadow with a [Chk]
      (compare-and-trap) instruction.

    Functions with [protect = false] (binary-only "library" code) are
    left untouched, as in the paper. *)

type stats = {
  originals : int;
  replicas : int;
  checks : int;
  shadow_copies : int;
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val pp_stats : Format.formatter -> stats -> unit

(** Code-size expansion factor ((originals + detection code) /
    originals). The paper reports 2.4x on average. *)
val expansion : stats -> float

(** [func options f] transforms [f] in place (blocks are replaced;
    fresh registers and ids are drawn from [f]'s counters) and returns
    the instrumentation statistics.

    [replicate_stores] additionally replicates store instructions —
    used by the decorrelated multi-version (DME) pass, where the
    replica stream keeps its own memory image. The master store is
    still non-replicable for check purposes, so it keeps its [Chk]
    guards. [mem_offset] shifts the integer immediate of every
    {e replica} memory access by that many bytes, relocating the
    replica's traffic into a disjoint image; [0L] (the default) leaves
    addresses untouched. *)
val func :
  ?replicate_stores:bool ->
  ?mem_offset:int64 ->
  Options.t ->
  Casted_ir.Func.t ->
  stats

(** [program options p] clones [p], hardens every protected function of
    the clone and returns it with aggregate statistics. The input program
    is not modified. *)
val program : Options.t -> Casted_ir.Program.t -> Casted_ir.Program.t * stats
