module Config = Casted_machine.Config
module Assign = Casted_sched.Assign
module List_scheduler = Casted_sched.List_scheduler
module Schedule = Casted_sched.Schedule
module Program = Casted_ir.Program

type compiled = {
  scheme : Scheme.t;
  config : Config.t;
  program : Program.t;
  schedule : Schedule.t;
  stats : Transform.stats;
}

module Obs = Casted_obs

let compile ?(options = Options.default) ?bug_options ?(optimize = false)
    ~scheme ~issue_width ~delay program =
  Obs.Trace.with_span ~cat:"compile" "pipeline.compile"
    ~args:
      [
        ("scheme", Obs.Json.String (Scheme.name scheme));
        ("issue_width", Obs.Json.Int issue_width);
        ("delay", Obs.Json.Int delay);
      ]
    (fun () ->
      Obs.Metrics.incr "pipeline.compiles";
      let config = Scheme.machine scheme ~issue_width ~delay in
      let program =
        if optimize then
          fst (Casted_opt.Pass.run_program Casted_opt.Pass.standard program)
        else program
      in
      let program, stats =
        Obs.Trace.with_span ~cat:"compile" "pipeline.transform" (fun () ->
            match scheme with
            | Scheme.Noed ->
                (Casted_ir.Clone.program program, Transform.zero_stats)
            | Scheme.Sced | Scheme.Dced | Scheme.Casted ->
                Transform.program options program
            | Scheme.Dme -> Dme.program options program
            | Scheme.Tmr ->
                let p, s = Recover.program options program in
                ( p,
                  {
                    Transform.originals = s.Recover.originals;
                    replicas = s.Recover.replicas;
                    checks = s.Recover.votes + s.Recover.fallback_checks;
                    shadow_copies = s.Recover.shadow_copies;
                  } )
            | Scheme.Rollback ->
                let p, s = Transform.program options program in
                let p, _regions = Rollback.program p in
                (p, s))
      in
      let strategy =
        match (Scheme.strategy scheme, bug_options) with
        | Assign.Adaptive _, Some opts -> Assign.Adaptive opts
        | s, _ -> s
      in
      let schedule =
        Obs.Trace.with_span ~cat:"compile" "pipeline.schedule" (fun () ->
            List_scheduler.schedule_program config strategy program)
      in
      { scheme; config; program; schedule; stats })
