module Reg = Casted_ir.Reg
module Cond = Casted_ir.Cond
module Opcode = Casted_ir.Opcode
module Insn = Casted_ir.Insn
module Block = Casted_ir.Block
module Func = Casted_ir.Func
module Program = Casted_ir.Program
module Clone = Casted_ir.Clone

type stats = {
  originals : int;
  replicas : int;
  votes : int;
  fallback_checks : int;
  shadow_copies : int;
}

let zero =
  { originals = 0; replicas = 0; votes = 0; fallback_checks = 0;
    shadow_copies = 0 }

let add a b =
  {
    originals = a.originals + b.originals;
    replicas = a.replicas + b.replicas;
    votes = a.votes + b.votes;
    fallback_checks = a.fallback_checks + b.fallback_checks;
    shadow_copies = a.shadow_copies + b.shadow_copies;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d originals, %d replicas, %d votes, %d fallback checks, %d copies"
    s.originals s.replicas s.votes s.fallback_checks s.shadow_copies

type ctx = {
  func : Func.t;
  shadow1 : Reg.t Reg.Tbl.t;
  shadow2 : Reg.t Reg.Tbl.t;
  options : Options.t;
  mutable n_replicas : int;
  mutable n_votes : int;
  mutable n_checks : int;
  mutable n_copies : int;
}

let ensure tbl ctx r =
  match Reg.Tbl.find_opt tbl r with
  | Some r' -> r'
  | None ->
      let r' = Func.fresh_reg ctx.func (Reg.cls r) in
      Reg.Tbl.replace tbl r r';
      r'

let s1 ctx r = ensure ctx.shadow1 ctx r
let s2 ctx r = ensure ctx.shadow2 ctx r

let mk ctx ~op ?defs ?uses ?imm ?fimm ?role ?replica_of ?protects () =
  Insn.make ~id:(Func.fresh_id ctx.func) ~op ?defs ?uses ?imm ?fimm ?role
    ?replica_of ?protects ()

(* Steps 1+2 fused: emit both renamed replicas just before each
   replicable instruction. *)
let triplicate_block ctx block =
  let expand (insn : Insn.t) =
    if Opcode.replicable insn.Insn.op then begin
      ctx.n_replicas <- ctx.n_replicas + 2;
      let clone shadow =
        {
          insn with
          Insn.id = Func.fresh_id ctx.func;
          role = Insn.Replica;
          replica_of = insn.Insn.id;
          defs = Array.map (shadow ctx) insn.Insn.defs;
          uses = Array.map (shadow ctx) insn.Insn.uses;
        }
      in
      [ clone s1; clone s2; insn ]
    end
    else [ insn ]
  in
  block.Block.body <- List.concat_map expand block.Block.body

(* Shadow copies of one register into both shadow spaces. Gp/Fp copy
   with a plain move; there is no predicate move, so a Pr register is
   materialised into a scratch GP ([Sel] of 1/0) and re-compared into
   each shadow predicate. The shadows are then honest copies that a
   later {!fallback_check} can trap against — this used to be an
   [invalid_arg] abort for predicate-class registers. *)
let shadow_copy_pair ctx ?replica_of r =
  ctx.n_copies <- ctx.n_copies + 2;
  match Reg.cls r with
  | Reg.Gp ->
      [
        mk ctx ~op:Opcode.Mov ~defs:[| s1 ctx r |] ~uses:[| r |]
          ~role:Insn.Shadow_copy ?replica_of ();
        mk ctx ~op:Opcode.Mov ~defs:[| s2 ctx r |] ~uses:[| r |]
          ~role:Insn.Shadow_copy ?replica_of ();
      ]
  | Reg.Fp ->
      [
        mk ctx ~op:Opcode.Fmov ~defs:[| s1 ctx r |] ~uses:[| r |]
          ~role:Insn.Shadow_copy ?replica_of ();
        mk ctx ~op:Opcode.Fmov ~defs:[| s2 ctx r |] ~uses:[| r |]
          ~role:Insn.Shadow_copy ?replica_of ();
      ]
  | Reg.Pr ->
      let one = Func.fresh_reg ctx.func Reg.Gp in
      let zero = Func.fresh_reg ctx.func Reg.Gp in
      let g = Func.fresh_reg ctx.func Reg.Gp in
      [
        mk ctx ~op:Opcode.Movi ~defs:[| one |] ~imm:1L ~role:Insn.Shadow_copy
          ?replica_of ();
        mk ctx ~op:Opcode.Movi ~defs:[| zero |] ~imm:0L
          ~role:Insn.Shadow_copy ?replica_of ();
        mk ctx ~op:Opcode.Sel ~defs:[| g |] ~uses:[| r; one; zero |]
          ~role:Insn.Shadow_copy ?replica_of ();
        mk ctx ~op:(Opcode.Cmpi Cond.Ne) ~defs:[| s1 ctx r |] ~uses:[| g |]
          ~imm:0L ~role:Insn.Shadow_copy ?replica_of ();
        mk ctx ~op:(Opcode.Cmpi Cond.Ne) ~defs:[| s2 ctx r |] ~uses:[| g |]
          ~imm:0L ~role:Insn.Shadow_copy ?replica_of ();
      ]

(* Shadow copies after non-replicated definitions and for parameters,
   into both shadow spaces. *)
let shadow_copies_block ctx block =
  let expand (insn : Insn.t) =
    if
      insn.Insn.role = Insn.Original
      && Array.length insn.Insn.defs > 0
      && not (Opcode.replicable insn.Insn.op)
    then
      insn
      :: List.concat_map
           (fun r -> shadow_copy_pair ctx ~replica_of:insn.Insn.id r)
           (Array.to_list insn.Insn.defs)
    else [ insn ]
  in
  block.Block.body <- List.concat_map expand block.Block.body

let shadow_params ctx =
  if ctx.options.Options.shadow_params && ctx.func.Func.params <> [] then begin
    let entry = Func.entry ctx.func in
    let copies =
      List.concat_map (fun r -> shadow_copy_pair ctx r) ctx.func.Func.params
    in
    entry.Block.body <- copies @ entry.Block.body
  end

let wants_protection ctx (insn : Insn.t) =
  let o = ctx.options in
  match insn.Insn.op with
  | Opcode.St _ | Opcode.Fst -> o.Options.check_stores
  | Opcode.Brc _ -> o.Options.check_branches
  | Opcode.Call | Opcode.Ret | Opcode.Halt -> o.Options.check_calls
  | _ -> false

(* Majority vote on one general-purpose register: if the two shadows
   agree they outvote the original, otherwise the original wins (a
   single fault can only corrupt one copy). The voted value repairs all
   three copies. *)
let vote_gp ctx ~protects r =
  ctx.n_votes <- ctx.n_votes + 1;
  let a = s1 ctx r and b = s2 ctx r in
  let p = Func.fresh_reg ctx.func Reg.Pr in
  let v = Func.fresh_reg ctx.func Reg.Gp in
  [
    mk ctx ~op:(Opcode.Cmp Cond.Eq) ~defs:[| p |] ~uses:[| a; b |]
      ~role:Insn.Check ~protects ();
    mk ctx ~op:Opcode.Sel ~defs:[| v |] ~uses:[| p; a; r |] ~role:Insn.Check
      ~protects ();
    mk ctx ~op:Opcode.Mov ~defs:[| r |] ~uses:[| v |] ~role:Insn.Check
      ~protects ();
    mk ctx ~op:Opcode.Mov ~defs:[| a |] ~uses:[| v |] ~role:Insn.Check
      ~protects ();
    mk ctx ~op:Opcode.Mov ~defs:[| b |] ~uses:[| v |] ~role:Insn.Check
      ~protects ();
  ]

(* Non-GP operands cannot be selected on; fall back to a detection
   check against the first shadow. *)
let fallback_check ctx ~protects r =
  ctx.n_checks <- ctx.n_checks + 1;
  [
    mk ctx ~op:Opcode.Chk ~uses:[| r; s1 ctx r |] ~role:Insn.Check ~protects
      ();
  ]

let protect_insn ctx (insn : Insn.t) =
  if insn.Insn.role = Insn.Original
     && (not (Opcode.replicable insn.Insn.op))
     && wants_protection ctx insn
  then begin
    (* Deduplicate: voting twice on the same register is pure waste. *)
    let seen = Reg.Tbl.create 4 in
    List.concat_map
      (fun r ->
        if Reg.Tbl.mem seen r then []
        else begin
          Reg.Tbl.replace seen r ();
          match Reg.cls r with
          | Reg.Gp -> vote_gp ctx ~protects:insn.Insn.id r
          | Reg.Fp | Reg.Pr -> fallback_check ctx ~protects:insn.Insn.id r
        end)
      (Array.to_list insn.Insn.uses)
  end
  else []

let vote_block ctx block =
  let expand insn = protect_insn ctx insn @ [ insn ] in
  let body = List.concat_map expand block.Block.body in
  block.Block.body <- body @ protect_insn ctx block.Block.term

let func options f =
  if not f.Func.protect then zero
  else begin
    let ctx =
      {
        func = f;
        shadow1 = Reg.Tbl.create 64;
        shadow2 = Reg.Tbl.create 64;
        options;
        n_replicas = 0;
        n_votes = 0;
        n_checks = 0;
        n_copies = 0;
      }
    in
    let originals = Func.num_insns f in
    List.iter (triplicate_block ctx) f.Func.blocks;
    List.iter (shadow_copies_block ctx) f.Func.blocks;
    shadow_params ctx;
    List.iter (vote_block ctx) f.Func.blocks;
    {
      originals;
      replicas = ctx.n_replicas;
      votes = ctx.n_votes;
      fallback_checks = ctx.n_checks;
      shadow_copies = ctx.n_copies;
    }
  end

let program options p =
  let p = Clone.program p in
  let stats =
    List.fold_left (fun acc f -> add acc (func options f)) zero
      p.Program.funcs
  in
  (p, stats)
