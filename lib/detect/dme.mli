(** Decorrelated multi-version execution (DME).

    A variant of the detection pass in which the replica stream is made
    {e structurally different} from the master while computing the same
    values: stores are replicated into a private memory image at
    [shadow_base = mem_size] (the arena is doubled and its data
    segments mirrored), and the shadow registers are drawn from a
    seeded, deterministic shuffled assignment
    ({!Casted_ir.Rewrite.permute_shadow_regs}).

    The point: a fault on a resource shared by two bit-identical copies
    (a memory line both copies read, a corrupted store both copies
    reload, a cross-cluster wire carrying "the same" value) corrupts
    master and replica identically and slips every check. Under DME no
    memory line and no shadow register position carries both copies'
    data, so such faults diverge the streams and trap at a [Chk].

    The transformed program records [shadow_base], which makes the
    simulator's architectural memory digest cover only the master image
    — the replica half is intentionally layout-divergent, not
    architectural state. *)

val default_seed : int

(** [program ?seed options p] clones [p], hardens every protected
    function with replicated stores, shifted replica memory traffic and
    a [seed]-derived shadow-register shuffle, and returns the doubled
    program with aggregate statistics. Deterministic in [(seed, p)];
    the input program is not modified. *)
val program :
  ?seed:int ->
  Options.t ->
  Casted_ir.Program.t ->
  Casted_ir.Program.t * Transform.stats
