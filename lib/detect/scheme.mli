(** The four schemes the paper evaluates (§IV-B), plus the two
    recovery schemes this codebase adds on top.

    - [Noed]: unmodified code on a single cluster (the normalisation
      baseline);
    - [Sced]: detection code, all of it on a single cluster;
    - [Dced]: detection code, original stream on cluster 0 and redundant
      stream on cluster 1 (fixed placement);
    - [Casted]: detection code, adaptive BUG placement over both
      clusters;
    - [Dme]: decorrelated multi-version execution ({!Dme}): CASTED's
      adaptive placement, but the replica stream keeps a private
      shifted memory image and a seed-shuffled register assignment, so
      a fault on a {e shared} resource (one memory line, one
      cross-cluster operand) cannot corrupt master and replica
      bit-identically;
    - [Tmr]: SWIFT-R-style triplication with majority voting
      ({!Recover}): a single corrupted copy is voted out and repaired
      in place, so faults are {e corrected}, not just trapped;
    - [Rollback]: CASTED-style detection plus region checkpoints
      ({!Rollback}): a fired check restores the last region snapshot
      and re-executes instead of trapping. *)

type t = Noed | Sced | Dced | Casted | Dme | Tmr | Rollback

val all : t list
val name : t -> string

(** Case-insensitive lookup by {!name}. *)
val of_string : string -> t option

(** Does the scheme run a redundancy transform (anything but NOED)? *)
val hardened : t -> bool

(** Can the scheme repair a detected fault instead of trapping? True
    for [Tmr] (in-place vote) and [Rollback] (checkpoint restore). *)
val recovers : t -> bool

(** The machine the scheme targets at a given configuration point.
    NOED and SCED run on one cluster; the rest on two. *)
val machine :
  t -> issue_width:int -> delay:int -> Casted_machine.Config.t

val strategy : t -> Casted_sched.Assign.strategy
