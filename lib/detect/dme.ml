module Reg = Casted_ir.Reg
module Func = Casted_ir.Func
module Program = Casted_ir.Program
module Clone = Casted_ir.Clone
module Rewrite = Casted_ir.Rewrite

(* Decorrelated multi-version execution.

   CASTED-style replication runs two bit-identical instruction streams:
   the replica reads the same registers-by-construction, the same memory
   lines, the same cross-cluster wires. A fault model that corrupts a
   resource *shared* by both copies — a memory line after the master's
   access, a store whose corrupted value both copies later reload —
   therefore corrupts master and replica identically, and every check
   compares two equally-wrong values: a silent data corruption.

   DME breaks the symmetry structurally, not probabilistically:

   - the replica stream is produced from the same deep-cloned IR, but
     stores are replicated too, so the replica keeps its own complete
     memory image;
   - every replica memory access is shifted by [shadow_base] into the
     upper half of a doubled arena (whose data segments are mirrored at
     [+shadow_base]), so no memory line carries both copies' data;
   - the replica's shadow registers are drawn from a seeded shuffled
     assignment, so a burst striking "the same" register file location
     in both copies hits different logical values.

   Semantics are unchanged: the shuffle is a bijection of the shadow
   space and the shifted image is initialised identically, so the
   architectural state over [0, shadow_base) — which is all the digest
   and the output comparison look at — is bit-for-bit the unhardened
   program's. *)

let default_seed = 0xD31CA57

let program ?(seed = default_seed) options (p : Program.t) =
  let p = Clone.program p in
  let offset = p.Program.mem_size in
  let stats =
    List.fold_left
      (fun acc (f : Func.t) ->
        (* The register counters before the pass runs bound the master's
           register space; everything the pass allocates above them is
           shadow space and fair game for the shuffle. *)
        let lo = Array.copy f.Func.next_reg in
        let s =
          Transform.func ~replicate_stores:true
            ~mem_offset:(Int64.of_int offset) options f
        in
        if f.Func.protect then Rewrite.permute_shadow_regs ~seed ~lo f;
        Transform.add_stats acc s)
      Transform.zero_stats p.Program.funcs
  in
  let p =
    {
      p with
      Program.mem_size = 2 * offset;
      data = p.Program.data @ Rewrite.offset_data ~offset p.Program.data;
      shadow_base = Some offset;
    }
  in
  (p, stats)
