(** Span tracing with per-domain tracks.

    Spans nest naturally (a span is recorded as one Chrome
    ["ph":"X"] complete event; viewers reconstruct the nesting from
    containment), every domain records into its own lock-free track,
    and {!to_chrome} exports the merged timeline as Chrome
    [trace_event] JSON loadable in [chrome://tracing] or Perfetto.

    Tracing is off by default; a disabled {!with_span} is a direct call
    to its body. Tracing never feeds back into the traced computation,
    so enabling it cannot change any experiment outcome. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** Name the calling domain's track in the exported trace (e.g.
    ["pool-worker-3"]); the default is ["track-N"]. *)
val name_track : string -> unit

(** [with_span name f] runs [f ()] inside a span. [cat] is the Chrome
    trace category (default ["casted"]); [args] become the event's
    [args] object. The span is recorded even when [f] raises. *)
val with_span :
  ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** Record an already-measured complete event on the calling domain's
    track. Timestamps are microseconds on the {!Clock} timeline.

    @raise Invalid_argument if [dur_us] is negative. *)
val add_complete :
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ts_us:float ->
  dur_us:float ->
  string ->
  unit

type event = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  track : int;
  args : (string * Json.t) list;
}

(** All recorded events, merged across tracks, ordered by start time. *)
val events : unit -> event list

(** The merged timeline as a Chrome [trace_event] JSON document
    (an object with a [traceEvents] array, complete ["X"] events plus
    ["M"] thread-name metadata). *)
val to_chrome : unit -> Json.t

(** Drop all recorded events (the enabled flag is untouched). Only call
    while no other domain is recording. *)
val clear : unit -> unit
