(** Minimal JSON tree, writer and parser.

    Self-contained (no external dependency): the writer produces
    RFC 8259 JSON — correct escaping of control characters, quotes and
    backslashes, UTF-8 passthrough for everything else — and the parser
    accepts standard JSON including [\uXXXX] escapes and surrogate
    pairs, so writer output round-trips. Non-finite floats have no JSON
    representation and are written as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

(** Look up a key of an [Obj]; [None] on missing key or non-object. *)
val member : string -> t -> t option

(** Parse one JSON document (surrounding whitespace allowed). *)
val parse : string -> (t, string) result
