(** Monotonic process clock.

    Microseconds since the process started, guaranteed never to
    decrease across domains: the wall clock can be stepped backwards
    (NTP), so every reading is clamped to the largest value returned so
    far. Span durations are therefore always non-negative. *)

(** Current time in microseconds since process start. *)
val now_us : unit -> float
