(** Process-wide registry of named counters, gauges and histograms.

    Designed for [Domain]-parallel use without perturbing determinism:
    every domain records into its own shard (no locks or shared writes
    on the hot path), and {!snapshot} merges all shards on read. The
    merged view of a deterministic workload is therefore identical for
    any worker-pool size — counters sum, gauge high-water marks and
    histogram count/sum/min/max are order-independent.

    Collection is off by default ({!set_enabled}); disabled operations
    cost one atomic load. Nothing here feeds back into the simulation,
    so enabling metrics can never change an experiment's outcome. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** Add [by] (default 1) to a counter.

    All three recorders raise [Invalid_argument] if [name] was already
    used in this domain with a different metric kind. *)
val incr : ?by:int -> string -> unit

(** Record a gauge observation (e.g. a queue depth). The merged view
    keeps the high-water mark and the number of observations. *)
val gauge : string -> float -> unit

(** Record a histogram observation (e.g. a duration). *)
val observe : string -> float -> unit

type value =
  | Counter of int
  | Gauge of { high : float; samples : int }
  | Histogram of { count : int; sum : float; min : float; max : float }

(** Merged view of every shard, sorted by metric name.

    @raise Invalid_argument if one name was used with two different
    metric kinds. *)
val snapshot : unit -> (string * value) list

(** Drop all recorded values (the enabled flag is untouched). Only call
    while no other domain is recording. *)
val reset : unit -> unit
