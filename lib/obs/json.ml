type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Shortest decimal representation that round-trips; JSON has no lexeme
   for non-finite numbers, so those degrade to null. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* Recursive-descent parser. *)

exception Parse_error of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        raise (Parse_error (Printf.sprintf "at offset %d: %s" !pos msg)))
      fmt
  in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C, found %C" c c'
    | None -> fail "expected %C, found end of input" c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub text !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> fail "invalid \\u escape %S" s
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = text.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'u' ->
              let u = hex4 () in
              let cp =
                if u >= 0xD800 && u <= 0xDBFF then begin
                  (* High surrogate: require a low-surrogate pair. *)
                  if
                    !pos + 1 < n && text.[!pos] = '\\' && text.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo >= 0xDC00 && lo <= 0xDFFF then
                      0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
                    else fail "unpaired surrogate"
                  end
                  else fail "unpaired surrogate"
                end
                else if u >= 0xDC00 && u <= 0xDFFF then
                  fail "unpaired low surrogate"
                else u
              in
              Buffer.add_utf_8_uchar buf (Uchar.of_int cp);
              go ()
          | c -> fail "invalid escape \\%C" c)
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      match peek () with
      | Some ('0' .. '9') -> true
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    if !is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail "invalid number %S" s
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
          (* Integer lexeme too large for [int]: keep it as a float. *)
          match float_of_string_opt s with
          | Some f -> Float f
          | None -> fail "invalid number %S" s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
