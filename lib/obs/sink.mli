(** Exporters for the collected metrics and traces.

    Three formats: human-readable text, CSV (one row per metric) and
    JSON; plus atomic file output (tmp + rename, so a crash mid-write
    never leaves a truncated artifact behind). *)

(** Write [contents] to [path] atomically (tmp file + rename). *)
val write_file : path:string -> string -> unit

(** {2 Metrics} *)

val metrics_json : unit -> Json.t
val metrics_csv : unit -> string

(** Aligned table; empty string when nothing was recorded. *)
val metrics_text : unit -> string

(** {2 Traces} *)

(** Write the current {!Trace} timeline as Chrome trace JSON. *)
val write_trace : path:string -> unit
