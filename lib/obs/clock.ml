let epoch = Unix.gettimeofday ()

(* Largest timestamp handed out so far, shared by all domains. *)
let high_water = Atomic.make 0.0

let rec now_us () =
  let t = (Unix.gettimeofday () -. epoch) *. 1e6 in
  let prev = Atomic.get high_water in
  if t <= prev then prev
  else if Atomic.compare_and_set high_water prev t then t
  else now_us ()
