let write_file ~path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* Metrics. *)

let value_fields = function
  | Metrics.Counter n -> ("counter", [ ("value", Json.Int n) ])
  | Metrics.Gauge { high; samples } ->
      ("gauge", [ ("high", Json.Float high); ("samples", Json.Int samples) ])
  | Metrics.Histogram { count; sum; min; max } ->
      ( "histogram",
        [
          ("count", Json.Int count);
          ("sum", Json.Float sum);
          ("min", Json.Float min);
          ("max", Json.Float max);
        ] )

let metrics_json () =
  Json.Obj
    (List.map
       (fun (name, v) ->
         let kind, fields = value_fields v in
         (name, Json.Obj (("kind", Json.String kind) :: fields)))
       (Metrics.snapshot ()))

let metrics_csv () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "name,kind,count,sum,min,max\n";
  List.iter
    (fun (name, v) ->
      let row kind count sum min_ max_ =
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,%d,%s,%s,%s\n" name kind count sum min_ max_)
      in
      let f x = Printf.sprintf "%g" x in
      match v with
      | Metrics.Counter n -> row "counter" n "" "" ""
      | Metrics.Gauge { high; samples } ->
          row "gauge" samples "" "" (f high)
      | Metrics.Histogram { count; sum; min; max } ->
          row "histogram" count (f sum) (f min) (f max))
    (Metrics.snapshot ());
  Buffer.contents buf

let metrics_text () =
  match Metrics.snapshot () with
  | [] -> ""
  | snap ->
      let width =
        List.fold_left (fun acc (n, _) -> Stdlib.max acc (String.length n)) 0 snap
      in
      let line (name, v) =
        let detail =
          match v with
          | Metrics.Counter n -> string_of_int n
          | Metrics.Gauge { high; samples } ->
              Printf.sprintf "high %g (%d samples)" high samples
          | Metrics.Histogram { count; sum; min; max } ->
              Printf.sprintf "n %d, sum %g, min %g, max %g, mean %g" count sum
                min max
                (if count = 0 then 0.0 else sum /. float_of_int count)
        in
        Printf.sprintf "%-*s %s" width name detail
      in
      String.concat "\n" (List.map line snap) ^ "\n"

(* Traces. *)

let write_trace ~path =
  write_file ~path (Json.to_string (Trace.to_chrome ()) ^ "\n")
