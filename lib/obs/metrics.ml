type kind = Counter_k | Gauge_k | Histogram_k

(* One metric inside one domain's shard. Mutated only by its owning
   domain; read by {!snapshot} from any domain. Fields are word-sized,
   so the worst a racy read can see is one update missing. *)
type cell = {
  kind : kind;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type shard = (string, cell) Hashtbl.t

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* All shards ever created, including those of joined domains (their
   counts must survive the domain). *)
let registry : shard list ref = ref []
let registry_mutex = Mutex.create ()

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s : shard = Hashtbl.create 32 in
      Mutex.lock registry_mutex;
      registry := s :: !registry;
      Mutex.unlock registry_mutex;
      s)

let cell name kind =
  let shard = Domain.DLS.get shard_key in
  match Hashtbl.find_opt shard name with
  | Some c ->
      if c.kind <> kind then
        invalid_arg
          ("Metrics: metric " ^ name ^ " recorded with two different kinds");
      c
  | None ->
      let c =
        { kind; count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity }
      in
      Hashtbl.replace shard name c;
      c

let incr ?(by = 1) name =
  if enabled () then begin
    let c = cell name Counter_k in
    c.count <- c.count + by
  end

let gauge name v =
  if enabled () then begin
    let c = cell name Gauge_k in
    c.count <- c.count + 1;
    if v > c.max_v then c.max_v <- v
  end

let observe name v =
  if enabled () then begin
    let c = cell name Histogram_k in
    c.count <- c.count + 1;
    c.sum <- c.sum +. v;
    if v < c.min_v then c.min_v <- v;
    if v > c.max_v then c.max_v <- v
  end

type value =
  | Counter of int
  | Gauge of { high : float; samples : int }
  | Histogram of { count : int; sum : float; min : float; max : float }

let snapshot () =
  Mutex.lock registry_mutex;
  let shards = !registry in
  Mutex.unlock registry_mutex;
  let merged : (string, cell) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun shard ->
      Hashtbl.iter
        (fun name (c : cell) ->
          match Hashtbl.find_opt merged name with
          | None ->
              Hashtbl.replace merged name
                {
                  kind = c.kind;
                  count = c.count;
                  sum = c.sum;
                  min_v = c.min_v;
                  max_v = c.max_v;
                }
          | Some m ->
              if m.kind <> c.kind then
                invalid_arg
                  ("Metrics.snapshot: metric " ^ name
                 ^ " recorded with two different kinds");
              m.count <- m.count + c.count;
              m.sum <- m.sum +. c.sum;
              if c.min_v < m.min_v then m.min_v <- c.min_v;
              if c.max_v > m.max_v then m.max_v <- c.max_v)
        shard)
    shards;
  Hashtbl.fold
    (fun name (c : cell) acc ->
      let v =
        match c.kind with
        | Counter_k -> Counter c.count
        | Gauge_k -> Gauge { high = c.max_v; samples = c.count }
        | Histogram_k ->
            Histogram
              { count = c.count; sum = c.sum; min = c.min_v; max = c.max_v }
      in
      (name, v) :: acc)
    merged []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Mutex.lock registry_mutex;
  List.iter Hashtbl.reset !registry;
  Mutex.unlock registry_mutex
