type event = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  track : int;
  args : (string * Json.t) list;
}

(* Per-domain track: only the owning domain appends, so no lock is
   needed on the hot path. *)
type track = {
  id : int;
  mutable label : string;
  mutable events : event list;  (* newest first *)
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let registry : track list ref = ref []
let registry_mutex = Mutex.create ()
let next_track = Atomic.make 0

let track_key : track Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let id = Atomic.fetch_and_add next_track 1 in
      let t = { id; label = Printf.sprintf "track-%d" id; events = [] } in
      Mutex.lock registry_mutex;
      registry := t :: !registry;
      Mutex.unlock registry_mutex;
      t)

let name_track label = (Domain.DLS.get track_key).label <- label

let add_complete ?(cat = "casted") ?(args = []) ~ts_us ~dur_us name =
  if dur_us < 0.0 then
    invalid_arg
      (Printf.sprintf "Trace.add_complete: negative duration %g for %s" dur_us
         name);
  if enabled () then begin
    let t = Domain.DLS.get track_key in
    t.events <-
      { name; cat; ts_us; dur_us; track = t.id; args } :: t.events
  end

let with_span ?cat ?args name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Clock.now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_us () in
        add_complete ?cat ?args ~ts_us:t0 ~dur_us:(t1 -. t0) name)
      f
  end

let tracks () =
  Mutex.lock registry_mutex;
  let ts = !registry in
  Mutex.unlock registry_mutex;
  List.sort (fun a b -> Int.compare a.id b.id) ts

let events () =
  tracks ()
  |> List.concat_map (fun t -> List.rev t.events)
  |> List.stable_sort (fun a b ->
         (* Equal start times (the clock ticks in whole microseconds):
            the longer span encloses the shorter, so it sorts first. *)
         match Float.compare a.ts_us b.ts_us with
         | 0 -> (
             match Float.compare b.dur_us a.dur_us with
             | 0 -> Int.compare a.track b.track
             | c -> c)
         | c -> c)

let to_chrome () =
  let meta =
    List.map
      (fun t ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 0);
            ("tid", Json.Int t.id);
            ("args", Json.Obj [ ("name", Json.String t.label) ]);
          ])
      (tracks ())
  in
  let complete =
    List.map
      (fun e ->
        Json.Obj
          [
            ("name", Json.String e.name);
            ("cat", Json.String e.cat);
            ("ph", Json.String "X");
            ("pid", Json.Int 0);
            ("tid", Json.Int e.track);
            ("ts", Json.Float e.ts_us);
            ("dur", Json.Float e.dur_us);
            ("args", Json.Obj e.args);
          ])
      (events ())
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List (meta @ complete));
    ]

let clear () =
  Mutex.lock registry_mutex;
  List.iter (fun t -> t.events <- []) !registry;
  Mutex.unlock registry_mutex
