module Workload = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Scheme = Casted_detect.Scheme
module Options = Casted_detect.Options
module Pipeline = Casted_detect.Pipeline

type key = {
  workload : string;
  size : Workload.size;
  scheme : Scheme.t;
  issue_width : int;
  delay : int;
  options : Options.t;
  bug_options : Casted_sched.Bug.options option;
  optimize : bool;
}

let key ?(options = Options.default) ?bug_options ?(optimize = false)
    ~workload ~size ~scheme ~issue_width ~delay () =
  { workload; size; scheme; issue_width; delay; options; bug_options; optimize }

let pp_key ppf k =
  Format.fprintf ppf "%s/%s/%s/i%d/d%d" k.workload (Workload.size_name k.size)
    (Scheme.name k.scheme) k.issue_width k.delay

(* One line, stable across runs AND across casted/OCaml versions: what
   campaign checkpoints embed, and what the on-disk result store hashes
   into entry addresses, so both can prove a tally belongs to the same
   (workload, scheme, config) point. Non-default knobs are folded in as
   an FNV-1a hash of an explicit canonical rendering — never
   [Hashtbl.hash], whose value is an implementation detail that may
   change between compiler releases and would silently orphan every
   persisted entry. The exact strings are pinned by golden unit
   tests. *)
let canonical_extras k =
  let scope =
    match k.options.Options.scope with
    | Options.Full -> "full"
    | Options.Store_slice -> "store-slice"
  in
  let bug =
    match k.bug_options with
    | None -> "default"
    | Some { Casted_sched.Bug.tie_break = Casted_sched.Bug.Prefer_lower } ->
        "prefer-lower"
    | Some { Casted_sched.Bug.tie_break = Casted_sched.Bug.Prefer_critical_pred
        } ->
        "prefer-critical-pred"
  in
  Printf.sprintf
    "stores=%b,branches=%b,calls=%b,params=%b,scope=%s,bug=%s,optimize=%b"
    k.options.Options.check_stores k.options.Options.check_branches
    k.options.Options.check_calls k.options.Options.shadow_params scope bug
    k.optimize

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  !h

let identity k =
  let extras =
    if
      k.options = Options.default && k.bug_options = None
      && not k.optimize
    then ""
    else Printf.sprintf "/x%016Lx" (fnv1a64 (canonical_extras k))
  in
  Format.asprintf "%a%s" pp_key k extras

(* The key is a flat record of immediates and small variant records, so
   polymorphic equality and hashing are exact. *)
type t = {
  table : (key, Pipeline.compiled) Hashtbl.t;
  decoded_table : (key, Casted_sim.Decode.t) Hashtbl.t;
  replay_table : (key, Casted_sim.Replay.t) Hashtbl.t;
  compiled_table : (key, Casted_sim.Compile.t) Hashtbl.t;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable decoded_hits : int;
  mutable decoded_misses : int;
  mutable replay_hits : int;
  mutable replay_misses : int;
  mutable compiled_hits : int;
  mutable compiled_misses : int;
}

let create () =
  {
    table = Hashtbl.create 64;
    decoded_table = Hashtbl.create 64;
    replay_table = Hashtbl.create 64;
    compiled_table = Hashtbl.create 64;
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
    decoded_hits = 0;
    decoded_misses = 0;
    replay_hits = 0;
    replay_misses = 0;
    compiled_hits = 0;
    compiled_misses = 0;
  }

let build k =
  let w =
    match Registry.find k.workload with
    | Some w -> w
    | None -> invalid_arg ("Cache.compile: unknown workload " ^ k.workload)
  in
  let program = w.Workload.build k.size in
  Pipeline.compile ~options:k.options ?bug_options:k.bug_options
    ~optimize:k.optimize ~scheme:k.scheme ~issue_width:k.issue_width
    ~delay:k.delay program

let compile t k =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table k with
  | Some c ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.mutex;
      Casted_obs.Metrics.incr "engine.cache.hits";
      c
  | None ->
      (* Compile outside the lock so distinct keys compile in parallel.
         On a same-key race the first insert wins, so every caller gets
         the physically equal compile. *)
      Mutex.unlock t.mutex;
      let c = build k in
      Mutex.lock t.mutex;
      let c, hit =
        match Hashtbl.find_opt t.table k with
        | Some prior ->
            t.hits <- t.hits + 1;
            (prior, true)
        | None ->
            t.misses <- t.misses + 1;
            Hashtbl.add t.table k c;
            (c, false)
      in
      Mutex.unlock t.mutex;
      Casted_obs.Metrics.incr
        (if hit then "engine.cache.hits" else "engine.cache.misses");
      c

(* Decoded programs are memoized separately from compiles: a campaign
   needs the execution-ready form, a report only the schedule. Same
   discipline as [compile] — decode outside the lock, first insert
   wins — so every trial of every campaign on one engine shares the
   physically equal decoded program. *)
let decoded t k =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.decoded_table k with
  | Some d ->
      t.decoded_hits <- t.decoded_hits + 1;
      Mutex.unlock t.mutex;
      Casted_obs.Metrics.incr "engine.cache.decoded_hits";
      d
  | None ->
      Mutex.unlock t.mutex;
      let c = compile t k in
      let d = Casted_sim.Decode.of_schedule c.Pipeline.schedule in
      Mutex.lock t.mutex;
      let d, hit =
        match Hashtbl.find_opt t.decoded_table k with
        | Some prior ->
            t.decoded_hits <- t.decoded_hits + 1;
            (prior, true)
        | None ->
            t.decoded_misses <- t.decoded_misses + 1;
            Hashtbl.add t.decoded_table k d;
            (d, false)
      in
      Mutex.unlock t.mutex;
      Casted_obs.Metrics.incr
        (if hit then "engine.cache.decoded_hits"
         else "engine.cache.decoded_misses");
      d

(* Replay snapshot sets ride alongside the decoded program: captured
   once per key (one golden run), then shared read-only by every
   campaign and pool domain revisiting the configuration — a sweep
   re-running one point never re-captures. Same discipline: capture
   outside the lock, first insert wins. *)
let replay t k =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.replay_table k with
  | Some r ->
      t.replay_hits <- t.replay_hits + 1;
      Mutex.unlock t.mutex;
      Casted_obs.Metrics.incr "engine.cache.replay_hits";
      r
  | None ->
      Mutex.unlock t.mutex;
      let d = decoded t k in
      let r = Casted_sim.Replay.capture d in
      Mutex.lock t.mutex;
      let r, hit =
        match Hashtbl.find_opt t.replay_table k with
        | Some prior ->
            t.replay_hits <- t.replay_hits + 1;
            (prior, true)
        | None ->
            t.replay_misses <- t.replay_misses + 1;
            Hashtbl.add t.replay_table k r;
            (r, false)
      in
      Mutex.unlock t.mutex;
      Casted_obs.Metrics.incr
        (if hit then "engine.cache.replay_hits"
         else "engine.cache.replay_misses");
      r

(* Stage-2 compiled programs complete the per-key artifact chain:
   schedule -> decoded -> compiled. The compiled form holds no mutable
   state (a [cctx] is built per run), so one program is shared by every
   trial of every campaign and pool domain on the engine. Same
   discipline: compile outside the lock, first insert wins. *)
let compiled t k =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.compiled_table k with
  | Some c ->
      t.compiled_hits <- t.compiled_hits + 1;
      Mutex.unlock t.mutex;
      Casted_obs.Metrics.incr "engine.cache.compiled_hits";
      c
  | None ->
      Mutex.unlock t.mutex;
      let d = decoded t k in
      let c = Casted_sim.Compile.of_decoded d in
      Mutex.lock t.mutex;
      let c, hit =
        match Hashtbl.find_opt t.compiled_table k with
        | Some prior ->
            t.compiled_hits <- t.compiled_hits + 1;
            (prior, true)
        | None ->
            t.compiled_misses <- t.compiled_misses + 1;
            Hashtbl.add t.compiled_table k c;
            (c, false)
      in
      Mutex.unlock t.mutex;
      Casted_obs.Metrics.incr
        (if hit then "engine.cache.compiled_hits"
         else "engine.cache.compiled_misses");
      c

type stats = {
  hits : int;
  misses : int;
  entries : int;
  decoded_hits : int;
  decoded_misses : int;
  decoded_entries : int;
  replay_hits : int;
  replay_misses : int;
  replay_entries : int;
  compiled_hits : int;
  compiled_misses : int;
  compiled_entries : int;
}

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      entries = Hashtbl.length t.table;
      decoded_hits = t.decoded_hits;
      decoded_misses = t.decoded_misses;
      decoded_entries = Hashtbl.length t.decoded_table;
      replay_hits = t.replay_hits;
      replay_misses = t.replay_misses;
      replay_entries = Hashtbl.length t.replay_table;
      compiled_hits = t.compiled_hits;
      compiled_misses = t.compiled_misses;
      compiled_entries = Hashtbl.length t.compiled_table;
    }
  in
  Mutex.unlock t.mutex;
  s
