(** Compiled-schedule cache.

    Sweeps and Monte-Carlo campaigns repeatedly compile the same
    [(workload, size, scheme, issue width, delay, options)] point — a
    fig-9 campaign and a perf sweep share every configuration, and the
    CLI recompiles on every invocation of a subcommand. The cache keys
    a {!Casted_detect.Pipeline.compile} result on the full
    configuration tuple so each point is compiled exactly once per
    engine, and repeated lookups return the {e physically equal}
    compile.

    The cache is domain-safe: lookups and inserts are serialised by a
    mutex, while compiles run outside it so distinct keys compile in
    parallel. If two domains race to compile the same key, the first
    insert wins and both receive the same value. *)

type key = {
  workload : string;  (** registry name, e.g. ["cjpeg"] *)
  size : Casted_workloads.Workload.size;
  scheme : Casted_detect.Scheme.t;
  issue_width : int;
  delay : int;
  options : Casted_detect.Options.t;
  bug_options : Casted_sched.Bug.options option;
      (** [None] = the scheme's default assignment options *)
  optimize : bool;  (** run the scalar pass pipeline before detection *)
}

(** Build a key with the usual defaults ([Options.default], no BUG
    override, no pre-pass). *)
val key :
  ?options:Casted_detect.Options.t ->
  ?bug_options:Casted_sched.Bug.options ->
  ?optimize:bool ->
  workload:string ->
  size:Casted_workloads.Workload.size ->
  scheme:Casted_detect.Scheme.t ->
  issue_width:int ->
  delay:int ->
  unit ->
  key

val pp_key : Format.formatter -> key -> unit

(** One-line stable identity for [key] — what campaign checkpoints
    embed so [--resume] can refuse a checkpoint from a different
    (workload, scheme, config) point, and what the on-disk result
    store hashes into entry addresses. The rendering is pinned by
    golden unit tests and must never change shape silently: doing so
    orphans every persisted store entry and checkpoint. Non-default
    options are folded in as an FNV-1a hash of an explicit canonical
    rendering (stable across OCaml releases, unlike [Hashtbl.hash]). *)
val identity : key -> string

type t

val create : unit -> t

(** [compile t key] returns the cached compile for [key], compiling it
    (workload lookup, program build, full pipeline) on first use.
    Raises [Invalid_argument] for an unknown workload name. *)
val compile : t -> key -> Casted_detect.Pipeline.compiled

(** [decoded t key] returns the memoized pre-decoded execution form
    ({!Casted_sim.Decode.of_schedule}) of [key]'s compiled schedule,
    compiling and decoding on first use. Repeated lookups return the
    {e physically equal} decoded program, so every campaign, sweep
    point and pool worker resolving the same configuration on one
    engine executes the same decoded object. Same locking discipline
    as {!compile}: decode runs outside the mutex, first insert wins. *)
val decoded : t -> key -> Casted_sim.Decode.t

(** [replay t key] returns the memoized golden-run snapshot set
    ({!Casted_sim.Replay.capture} over {!decoded}) for [key], capturing
    it on first use. The set is immutable; repeated lookups return the
    physically equal value, so every campaign and pool worker on one
    engine replays from the same snapshots. Same locking discipline as
    {!compile}. *)
val replay : t -> key -> Casted_sim.Replay.t

(** [compiled t key] returns the memoized stage-2 compiled program
    ({!Casted_sim.Compile.of_decoded} over {!decoded}) for [key],
    compiling it on first use. The program is immutable (per-run state
    lives in the run's own context); repeated lookups return the
    physically equal value, so every trial of every campaign and pool
    worker on one engine threads through the same closures. Same
    locking discipline as {!compile}. *)
val compiled : t -> key -> Casted_sim.Compile.t

type stats = {
  hits : int;
  misses : int;
  entries : int;
  decoded_hits : int;  (** {!decoded} lookups served from the table *)
  decoded_misses : int;  (** decodes actually performed *)
  decoded_entries : int;
  replay_hits : int;  (** {!replay} lookups served from the table *)
  replay_misses : int;  (** snapshot captures actually performed *)
  replay_entries : int;
  compiled_hits : int;  (** {!compiled} lookups served from the table *)
  compiled_misses : int;  (** stage-2 compiles actually performed *)
  compiled_entries : int;
}

val stats : t -> stats
