module Pool = Casted_exec.Pool
module Workload = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Simulator = Casted_sim.Simulator
module Outcome = Casted_sim.Outcome
module Montecarlo = Casted_sim.Montecarlo

type job_counters = {
  compiles : int;
  compile_s : float;
  simulates : int;
  simulate_s : float;
  campaigns : int;
  campaign_s : float;
  sweeps : int;
  sweep_s : float;
}

let zero_counters =
  {
    compiles = 0;
    compile_s = 0.0;
    simulates = 0;
    simulate_s = 0.0;
    campaigns = 0;
    campaign_s = 0.0;
    sweeps = 0;
    sweep_s = 0.0;
  }

type store_counters = {
  full_hits : int;
  partial_hits : int;
  store_misses : int;
  store_writes : int;
  trials_served : int;
  trials_simulated : int;
}

let zero_store_counters =
  {
    full_hits = 0;
    partial_hits = 0;
    store_misses = 0;
    store_writes = 0;
    trials_served = 0;
    trials_simulated = 0;
  }

type t = {
  pool : Pool.t;
  cache : Cache.t;
  mutex : Mutex.t;
  mutable counts : job_counters;
  mutable store_counts : store_counters;
}

let create ?jobs () =
  let jobs =
    match jobs with
    | Some n -> n
    | None -> (
        match Pool.default_jobs () with
        | Ok n -> n
        | Error msg -> invalid_arg ("Engine.create: " ^ msg))
  in
  {
    pool = Pool.create ~jobs ();
    cache = Cache.create ();
    mutex = Mutex.create ();
    counts = zero_counters;
    store_counts = zero_store_counters;
  }

let jobs t = Pool.jobs t.pool
let pool t = t.pool
let cache t = t.cache
let shutdown t = Pool.shutdown t.pool

let with_engine ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let timed t kind f =
  let span_name =
    match kind with
    | `Compile -> "engine.compile"
    | `Simulate -> "engine.simulate"
    | `Campaign -> "engine.campaign"
    | `Sweep -> "engine.sweep"
  in
  let f () = Casted_obs.Trace.with_span ~cat:"engine" span_name f in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Mutex.lock t.mutex;
  let c = t.counts in
  t.counts <-
    (match kind with
    | `Compile -> { c with compiles = c.compiles + 1; compile_s = c.compile_s +. dt }
    | `Simulate ->
        { c with simulates = c.simulates + 1; simulate_s = c.simulate_s +. dt }
    | `Campaign ->
        { c with campaigns = c.campaigns + 1; campaign_s = c.campaign_s +. dt }
    | `Sweep -> { c with sweeps = c.sweeps + 1; sweep_s = c.sweep_s +. dt });
  Mutex.unlock t.mutex;
  r

type sweep_point = {
  benchmark : string;
  scheme : Scheme.t;
  issue : int;
  delay : int;
  run : Outcome.run;
}

type job =
  | Compile of Cache.key
  | Simulate of Cache.key
  | Campaign of {
      spec : Cache.key;
      trials : int;
      seed : int;
      fuel_factor : int;
      model : Casted_sim.Fault.model;
      ci_halfwidth : float option;
      checkpoint : string option;
      resume : bool;
    }
  | Sweep of {
      size : Workload.size;
      benchmarks : string list;
      issues : int list;
      delays : int list;
    }

type outcome =
  | Compiled of Pipeline.compiled
  | Simulated of Pipeline.compiled * Outcome.run
  | Campaigned of Montecarlo.result
  | Swept of sweep_point list

let compile t key = timed t `Compile (fun () -> Cache.compile t.cache key)

let simulate t key =
  let compiled = compile t key in
  let decoded = Cache.decoded t.cache key in
  let run =
    timed t `Simulate (fun () -> Simulator.run_decoded decoded)
  in
  (compiled, run)

(* Rollback campaigns run every trial through Simulator.run_recovering
   with this retry budget (a fault that keeps re-failing after this many
   restores reports its original failure). *)
let default_retry_budget = 3

(* Resolve the per-scheme recovery default: an explicit budget always
   wins, a Rollback spec gets the engine default, everything else runs
   without a recovery loop. *)
let resolve_retry_budget key = function
  | Some _ as b -> b
  | None ->
      if key.Cache.scheme = Scheme.Rollback then Some default_retry_budget
      else None

let campaign_identity key model =
  Printf.sprintf "%s/%s" (Cache.identity key)
    (Casted_sim.Fault.model_name model)

type stored_campaign = {
  result : Montecarlo.result;
  simulated : int;
  served : int;
  complete : bool;
}

let bump_store t f =
  Mutex.lock t.mutex;
  t.store_counts <- f t.store_counts;
  Mutex.unlock t.mutex

module Store = Casted_store.Store

(* A store entry only round-trips into a campaign spec when the key has
   nothing beyond the explicit coordinates (default pass options) —
   exactly the keys the CLI builds. Anything else persists fine but
   cannot be audited or re-enqueued from the entry alone. *)
let spec_of_key (key : Cache.key) model =
  if
    key.Cache.options = Casted_detect.Options.default
    && key.Cache.bug_options = None
    && not key.Cache.optimize
  then
    Some
      {
        Store.workload = key.Cache.workload;
        size = Workload.size_name key.Cache.size;
        scheme = Scheme.name key.Cache.scheme;
        issue = key.Cache.issue_width;
        delay = key.Cache.delay;
        model = Casted_sim.Fault.model_name model;
      }
  else None

let result_of_entry ~model (e : Store.entry) =
  let name = Casted_sim.Fault.model_name model in
  if not (String.equal e.Store.model name) then
    invalid_arg
      (Printf.sprintf
         "Engine.campaign: store entry for %S was tallied under fault model \
          %s, not %s — corrupt store"
         (Store.address e.Store.key) e.Store.model name);
  Montecarlo.of_counts ~model ~golden_cycles:e.Store.golden_cycles
    ~golden_dyn:e.Store.golden_dyn ~population:e.Store.population
    e.Store.counts

let entry_of_result ~spec (skey : Store.key) (r : Montecarlo.result) =
  {
    Store.key = skey;
    trials_done = r.Montecarlo.trials;
    counts = Montecarlo.counts r;
    golden_cycles = r.Montecarlo.golden_cycles;
    golden_dyn = r.Montecarlo.golden_dyn;
    population = r.Montecarlo.population;
    model = Casted_sim.Fault.model_name r.Montecarlo.model;
    spec;
  }

(* A resumed or re-simulated cell must agree with the banked entry
   about its golden run: a mismatch means the identity tuple no longer
   pins the simulation (a silent simulator change, or a corrupt store)
   and merging the tallies would be meaningless. *)
let check_golden_agreement ~what (e : Store.entry) (r : Montecarlo.result) =
  if
    e.Store.golden_cycles <> r.Montecarlo.golden_cycles
    || e.Store.golden_dyn <> r.Montecarlo.golden_dyn
    || e.Store.population <> r.Montecarlo.population
  then
    invalid_arg
      (Printf.sprintf
         "Engine.campaign: %s: store entry %S banked a golden run of \
          %d cycles / %d insns / population %d but this build simulates \
          %d / %d / %d — the identity no longer pins the simulation; \
          refusing to merge (run `casted store audit`)"
         what
         (Store.address e.Store.key)
         e.Store.golden_cycles e.Store.golden_dyn e.Store.population
         r.Montecarlo.golden_cycles r.Montecarlo.golden_dyn
         r.Montecarlo.population)

let store_fail msg = invalid_arg ("Engine.campaign: result store: " ^ msg)
let store_get = function Ok v -> v | Error msg -> store_fail msg

(* The absolute 64-trial chunk grid (see Montecarlo): shard [k] of [n]
   owns the chunks whose index is congruent to [k] mod [n]. A banked
   partial shard entry holds a whole number of owned chunks, so its
   resume point is found by walking the grid until the owned-trial
   count matches the banked tally. *)
let owned_chunks ~shard:(k, n) ~trials =
  let chunk = Montecarlo.chunk_trials in
  let rec go lo acc =
    if lo >= trials then List.rev acc
    else
      let hi = min trials (lo + chunk) in
      go hi (if lo / chunk mod n = k then (lo, hi) :: acc else acc)
  in
  go 0 []

let shard_share ~shard ~trials =
  List.fold_left
    (fun acc (lo, hi) -> acc + (hi - lo))
    0
    (owned_chunks ~shard ~trials)

(* Trial index at which a partial shard tally of [banked] owned trials
   resumes: the end of the owned chunk where the running count reaches
   [banked]. The partial entries written by the campaign's bank hook
   always land on chunk boundaries; anything else is a corrupt store. *)
let shard_resume_index ~shard ~trials banked =
  let rec go acc = function
    | _ when acc = banked -> 0
    | [] ->
        invalid_arg
          (Printf.sprintf
             "Engine.campaign: partial shard entry banked %d trials, more \
              than the shard owns — corrupt store"
             banked)
    | (lo, hi) :: rest ->
        let acc = acc + (hi - lo) in
        if acc = banked then hi
        else if acc > banked then
          invalid_arg
            (Printf.sprintf
               "Engine.campaign: partial shard entry banked %d trials, not \
                a whole number of 64-trial chunks — corrupt store"
               banked)
        else go acc rest
  in
  go 0 (owned_chunks ~shard ~trials)

let campaign_stored t ?(seed = 0xCA57ED) ?(fuel_factor = 10)
    ?(model = Casted_sim.Fault.Reg_bit) ?ci_halfwidth ?checkpoint
    ?checkpoint_every ?(resume = false) ?(replay = true)
    ?compile:(use_compiled = true) ?retry_budget
    ?(allow_legacy_checkpoint = false) ?store ?(shard = (0, 1)) ~trials key =
  let retry_budget = resolve_retry_budget key retry_budget in
  let identity = campaign_identity key model in
  (* Compile (cached) under the compile timer, then hand the memoized
     decoded program — and, with replay on, the memoized golden-run
     snapshot set, plus the memoized stage-2 compiled program — to the
     campaign: thousands of trials, one decode, one capture, one
     stage-2 compile, shared read-only across pool domains and across
     campaigns revisiting this configuration. The store's full-hit path
     never gets here: a banked tally costs no compile, no decode, no
     golden run. *)
  let simulate ?prior ?bank ~shard n_trials =
    let (_ : Pipeline.compiled) = compile t key in
    let decoded = Cache.decoded t.cache key in
    let replay = replay && retry_budget = None in
    let replay_set =
      if replay then Some (Cache.replay t.cache key) else None
    in
    let compiled =
      if use_compiled && retry_budget = None then
        Some (Cache.compiled t.cache key)
      else None
    in
    timed t `Campaign (fun () ->
        Montecarlo.run_decoded ~pool:t.pool ~seed ~fuel_factor ~model
          ?ci_halfwidth ?checkpoint ?checkpoint_every ~resume ~identity
          ~replay ?replay_set ~compile:use_compiled ?compiled ?retry_budget
          ~allow_legacy_checkpoint ~shard ?prior ?bank ~trials:n_trials
          decoded)
  in
  match store with
  | None ->
      let result = simulate ~shard trials in
      {
        result;
        simulated = result.Montecarlo.trials;
        served = 0;
        complete = shard = (0, 1);
      }
  | Some s ->
      if ci_halfwidth <> None then
        invalid_arg
          "Engine.campaign: a store-backed campaign cannot use \
           ci_halfwidth (early stopping would make the banked trial count \
           depend on the sampling path)";
      if checkpoint <> None || resume then
        invalid_arg
          "Engine.campaign: a store-backed campaign is its own checkpoint \
           — drop --checkpoint/--resume";
      let retry_for_store = Option.value retry_budget ~default:(-1) in
      let skey =
        Store.key ~retry_budget:retry_for_store ~shard ~identity ~seed
          ~fuel_factor ~trials ()
      in
      let spec = spec_of_key key model in
      let serve ?(simulated = 0) (e : Store.entry) ~complete =
        {
          result = result_of_entry ~model e;
          simulated;
          served = e.Store.trials_done - simulated;
          complete;
        }
      in
      let write_merged () =
        (* All shards banked: publish the summed tally as the cell's
           full entry so every later lookup is a single-read hit. *)
        match
          store_get (Store.merge_shards ~chunk:Montecarlo.chunk_trials s skey)
        with
        | None -> None
        | Some merged ->
            Store.put s merged;
            bump_store t (fun c ->
                { c with store_writes = c.store_writes + 1 });
            Some merged
      in
      if snd shard = 1 then begin
        match store_get (Store.find s skey) with
        | Some e when e.Store.trials_done = trials ->
            bump_store t (fun c ->
                {
                  c with
                  full_hits = c.full_hits + 1;
                  trials_served = c.trials_served + trials;
                });
            Casted_obs.Metrics.incr "engine.store.full_hits";
            serve e ~complete:true
        | Some e when e.Store.trials_done < trials ->
            (* Incremental fill: resume from the banked tally exactly as
               a checkpoint resume would, then extend the entry. *)
            let result =
              simulate ~shard
                ~prior:(e.Store.trials_done, e.Store.counts)
                trials
            in
            check_golden_agreement ~what:"incremental resume" e result;
            Store.put s (entry_of_result ~spec skey result);
            bump_store t (fun c ->
                {
                  c with
                  partial_hits = c.partial_hits + 1;
                  store_writes = c.store_writes + 1;
                  trials_served = c.trials_served + e.Store.trials_done;
                  trials_simulated =
                    c.trials_simulated + (trials - e.Store.trials_done);
                });
            Casted_obs.Metrics.incr "engine.store.partial_hits";
            {
              result;
              simulated = trials - e.Store.trials_done;
              served = e.Store.trials_done;
              complete = true;
            }
        | Some e ->
            (* The banked tally covers MORE trials than requested; the
               first [trials] of it cannot be recovered from counts.
               Simulate the request fresh and leave the richer entry
               alone. *)
            let result = simulate ~shard trials in
            check_golden_agreement ~what:"oversized entry" e result;
            bump_store t (fun c ->
                {
                  c with
                  store_misses = c.store_misses + 1;
                  trials_simulated = c.trials_simulated + trials;
                });
            Casted_obs.Metrics.incr "engine.store.misses";
            { result; simulated = trials; served = 0; complete = true }
        | None -> (
            (* Absent cell — but its shards may already cover it. *)
            match write_merged () with
            | Some merged ->
                bump_store t (fun c ->
                    {
                      c with
                      full_hits = c.full_hits + 1;
                      trials_served = c.trials_served + trials;
                    });
                Casted_obs.Metrics.incr "engine.store.full_hits";
                serve merged ~complete:true
            | None ->
                let result = simulate ~shard trials in
                Store.put s (entry_of_result ~spec skey result);
                bump_store t (fun c ->
                    {
                      c with
                      store_misses = c.store_misses + 1;
                      store_writes = c.store_writes + 1;
                      trials_simulated = c.trials_simulated + trials;
                    });
                Casted_obs.Metrics.incr "engine.store.misses";
                { result; simulated = trials; served = 0; complete = true })
      end
      else begin
        (* Shard worker: serve the cell if it is already complete,
           otherwise fill this shard — banking the partial tally at
           every owned 64-trial chunk so a killed worker's finished
           chunks survive — and merge if that was the last one. *)
        let share = shard_share ~shard ~trials in
        let bank ~next:_ r =
          Store.put s (entry_of_result ~spec skey r);
          bump_store t (fun c ->
              { c with store_writes = c.store_writes + 1 })
        in
        let full_key = { skey with Store.shard = (0, 1) } in
        match store_get (Store.find s full_key) with
        | Some e when e.Store.trials_done = trials ->
            bump_store t (fun c ->
                {
                  c with
                  full_hits = c.full_hits + 1;
                  trials_served = c.trials_served + trials;
                });
            Casted_obs.Metrics.incr "engine.store.full_hits";
            serve e ~complete:true
        | _ -> (
            match store_get (Store.find s skey) with
            | Some own when own.Store.trials_done = share -> (
                (* This shard is banked in full; the cell completes
                   when the others land. *)
                bump_store t (fun c ->
                    {
                      c with
                      full_hits = c.full_hits + 1;
                      trials_served = c.trials_served + own.Store.trials_done;
                    });
                Casted_obs.Metrics.incr "engine.store.full_hits";
                match write_merged () with
                | Some merged -> serve merged ~complete:true
                | None -> serve own ~complete:false)
            | Some own -> (
                (* Partial shard entry — a previous worker was killed
                   mid-campaign. Resume after its last banked chunk. *)
                let start =
                  shard_resume_index ~shard ~trials own.Store.trials_done
                in
                let result =
                  simulate ~shard ~prior:(start, own.Store.counts) ~bank
                    trials
                in
                check_golden_agreement ~what:"partial shard resume" own
                  result;
                Store.put s (entry_of_result ~spec skey result);
                bump_store t (fun c ->
                    {
                      c with
                      partial_hits = c.partial_hits + 1;
                      store_writes = c.store_writes + 1;
                      trials_served = c.trials_served + own.Store.trials_done;
                      trials_simulated =
                        c.trials_simulated
                        + (share - own.Store.trials_done);
                    });
                Casted_obs.Metrics.incr "engine.store.partial_hits";
                let simulated = share - own.Store.trials_done in
                match write_merged () with
                | Some merged ->
                    {
                      result = result_of_entry ~model merged;
                      simulated;
                      served = trials - simulated;
                      complete = true;
                    }
                | None ->
                    {
                      result;
                      simulated;
                      served = own.Store.trials_done;
                      complete = false;
                    })
            | None -> (
                let result = simulate ~shard ~bank trials in
                Store.put s (entry_of_result ~spec skey result);
                bump_store t (fun c ->
                    {
                      c with
                      store_misses = c.store_misses + 1;
                      store_writes = c.store_writes + 1;
                      trials_simulated =
                        c.trials_simulated + result.Montecarlo.trials;
                    });
                Casted_obs.Metrics.incr "engine.store.misses";
                match write_merged () with
                | Some merged ->
                    {
                      result = result_of_entry ~model merged;
                      simulated = result.Montecarlo.trials;
                      served = trials - result.Montecarlo.trials;
                      complete = true;
                    }
                | None ->
                    {
                      result;
                      simulated = result.Montecarlo.trials;
                      served = 0;
                      complete = false;
                    }))
      end

let campaign t ?seed ?fuel_factor ?model ?ci_halfwidth ?checkpoint
    ?checkpoint_every ?resume ?replay ?compile ?retry_budget
    ?allow_legacy_checkpoint ?store ?shard ~trials key =
  (campaign_stored t ?seed ?fuel_factor ?model ?ci_halfwidth ?checkpoint
     ?checkpoint_every ?resume ?replay ?compile ?retry_budget
     ?allow_legacy_checkpoint ?store ?shard ~trials key)
    .result

(* One grid cell: NOED/SCED are single-core, so they are measured once
   per issue width (compiled at delay 1, recorded as delay 0, like the
   paper's figures); DCED/CASTED vary over the delay axis. *)
let sweep_specs ~size ~benchmarks ~issues ~delays =
  List.concat_map
    (fun benchmark ->
      (match Registry.find benchmark with
      | Some _ -> ()
      | None -> invalid_arg ("Engine.sweep: unknown benchmark " ^ benchmark));
      List.concat_map
        (fun issue ->
          let spec scheme ~compile_delay ~record_delay =
            ( Cache.key ~workload:benchmark ~size ~scheme ~issue_width:issue
                ~delay:compile_delay (),
              record_delay )
          in
          spec Scheme.Noed ~compile_delay:1 ~record_delay:0
          :: spec Scheme.Sced ~compile_delay:1 ~record_delay:0
          :: List.concat_map
               (fun delay ->
                 [
                   spec Scheme.Dced ~compile_delay:delay ~record_delay:delay;
                   spec Scheme.Casted ~compile_delay:delay ~record_delay:delay;
                 ])
               delays)
        issues)
    benchmarks

let sweep t ~size ?benchmarks ?(issues = [ 1; 2; 3; 4 ])
    ?(delays = [ 1; 2; 3; 4 ]) () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> Registry.names ()
  in
  let specs =
    Array.of_list (sweep_specs ~size ~benchmarks ~issues ~delays)
  in
  timed t `Sweep (fun () ->
      Array.to_list
        (Pool.map t.pool
           (fun ((key : Cache.key), record_delay) ->
             let run = Simulator.run_decoded (Cache.decoded t.cache key) in
             (match run.Outcome.termination with
             | Outcome.Exit 0 -> ()
             | term ->
                 invalid_arg
                   (Format.asprintf "Engine.sweep: %a: %a" Cache.pp_key key
                      Outcome.pp_termination term));
             {
               benchmark = key.Cache.workload;
               scheme = key.Cache.scheme;
               issue = key.Cache.issue_width;
               delay = record_delay;
               run;
             })
           specs))

let run_job t = function
  | Compile key -> Compiled (compile t key)
  | Simulate key ->
      let compiled, run = simulate t key in
      Simulated (compiled, run)
  | Campaign { spec; trials; seed; fuel_factor; model; ci_halfwidth;
               checkpoint; resume } ->
      Campaigned
        (campaign t ~seed ~fuel_factor ~model ?ci_halfwidth ?checkpoint
           ~resume ~trials spec)
  | Sweep { size; benchmarks; issues; delays } ->
      Swept (sweep t ~size ~benchmarks ~issues ~delays ())

let run_jobs t jobs = List.map (run_job t) jobs

let counters t =
  Mutex.lock t.mutex;
  let c = t.counts in
  Mutex.unlock t.mutex;
  c

let store_counters t =
  Mutex.lock t.mutex;
  let c = t.store_counts in
  Mutex.unlock t.mutex;
  c

let utilisation t =
  let s = Pool.stats t.pool in
  let c = counters t in
  let cs = Cache.stats t.cache in
  let throughput =
    if s.Pool.wall_s > 0.0 then float_of_int s.Pool.tasks /. s.Pool.wall_s
    else 0.0
  in
  let kind name n secs =
    if n = 0 then None else Some (Printf.sprintf "%d %s (%.1fs)" n name secs)
  in
  let jobs_line =
    match
      List.filter_map Fun.id
        [
          kind "compiles" c.compiles c.compile_s;
          kind "simulates" c.simulates c.simulate_s;
          kind "campaigns" c.campaigns c.campaign_s;
          kind "sweeps" c.sweeps c.sweep_s;
        ]
    with
    | [] -> "jobs:    none"
    | parts -> "jobs:    " ^ String.concat ", " parts
  in
  let sc = store_counters t in
  let store_lines =
    if sc = zero_store_counters then []
    else
      [
        Printf.sprintf
          "store:   %d full hits, %d partial, %d misses, %d writes — %d \
           trials served, %d simulated"
          sc.full_hits sc.partial_hits sc.store_misses sc.store_writes
          sc.trials_served sc.trials_simulated;
      ]
  in
  String.concat "\n"
    ([
       Printf.sprintf
         "engine:  %d jobs (%d worker domains), %d tasks, %.1f tasks/s"
         s.Pool.jobs s.Pool.domains s.Pool.tasks throughput;
       Printf.sprintf "busy:    %.1fs over %.1fs wall, utilisation %.0f%%"
         s.Pool.busy_s s.Pool.wall_s
         (100.0 *. Pool.utilisation s);
       jobs_line;
       Printf.sprintf "cache:   %d entries, %d hits, %d misses" cs.Cache.entries
         cs.Cache.hits cs.Cache.misses;
       Printf.sprintf "decoded: %d entries, %d hits, %d misses"
         cs.Cache.decoded_entries cs.Cache.decoded_hits
         cs.Cache.decoded_misses;
       Printf.sprintf "replay:  %d snapshot sets, %d hits, %d captures"
         cs.Cache.replay_entries cs.Cache.replay_hits cs.Cache.replay_misses;
       Printf.sprintf "threaded: %d programs, %d hits, %d compiles"
         cs.Cache.compiled_entries cs.Cache.compiled_hits
         cs.Cache.compiled_misses;
     ]
    @ store_lines @ [ "" ])
