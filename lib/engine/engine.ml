module Pool = Casted_exec.Pool
module Workload = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Simulator = Casted_sim.Simulator
module Outcome = Casted_sim.Outcome
module Montecarlo = Casted_sim.Montecarlo

type job_counters = {
  compiles : int;
  compile_s : float;
  simulates : int;
  simulate_s : float;
  campaigns : int;
  campaign_s : float;
  sweeps : int;
  sweep_s : float;
}

let zero_counters =
  {
    compiles = 0;
    compile_s = 0.0;
    simulates = 0;
    simulate_s = 0.0;
    campaigns = 0;
    campaign_s = 0.0;
    sweeps = 0;
    sweep_s = 0.0;
  }

type t = {
  pool : Pool.t;
  cache : Cache.t;
  mutex : Mutex.t;
  mutable counts : job_counters;
}

let create ?jobs () =
  let jobs =
    match jobs with
    | Some n -> n
    | None -> (
        match Pool.default_jobs () with
        | Ok n -> n
        | Error msg -> invalid_arg ("Engine.create: " ^ msg))
  in
  {
    pool = Pool.create ~jobs ();
    cache = Cache.create ();
    mutex = Mutex.create ();
    counts = zero_counters;
  }

let jobs t = Pool.jobs t.pool
let pool t = t.pool
let cache t = t.cache
let shutdown t = Pool.shutdown t.pool

let with_engine ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let timed t kind f =
  let span_name =
    match kind with
    | `Compile -> "engine.compile"
    | `Simulate -> "engine.simulate"
    | `Campaign -> "engine.campaign"
    | `Sweep -> "engine.sweep"
  in
  let f () = Casted_obs.Trace.with_span ~cat:"engine" span_name f in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Mutex.lock t.mutex;
  let c = t.counts in
  t.counts <-
    (match kind with
    | `Compile -> { c with compiles = c.compiles + 1; compile_s = c.compile_s +. dt }
    | `Simulate ->
        { c with simulates = c.simulates + 1; simulate_s = c.simulate_s +. dt }
    | `Campaign ->
        { c with campaigns = c.campaigns + 1; campaign_s = c.campaign_s +. dt }
    | `Sweep -> { c with sweeps = c.sweeps + 1; sweep_s = c.sweep_s +. dt });
  Mutex.unlock t.mutex;
  r

type sweep_point = {
  benchmark : string;
  scheme : Scheme.t;
  issue : int;
  delay : int;
  run : Outcome.run;
}

type job =
  | Compile of Cache.key
  | Simulate of Cache.key
  | Campaign of {
      spec : Cache.key;
      trials : int;
      seed : int;
      fuel_factor : int;
      model : Casted_sim.Fault.model;
      ci_halfwidth : float option;
      checkpoint : string option;
      resume : bool;
    }
  | Sweep of {
      size : Workload.size;
      benchmarks : string list;
      issues : int list;
      delays : int list;
    }

type outcome =
  | Compiled of Pipeline.compiled
  | Simulated of Pipeline.compiled * Outcome.run
  | Campaigned of Montecarlo.result
  | Swept of sweep_point list

let compile t key = timed t `Compile (fun () -> Cache.compile t.cache key)

let simulate t key =
  let compiled = compile t key in
  let decoded = Cache.decoded t.cache key in
  let run =
    timed t `Simulate (fun () -> Simulator.run_decoded decoded)
  in
  (compiled, run)

(* Rollback campaigns run every trial through Simulator.run_recovering
   with this retry budget (a fault that keeps re-failing after this many
   restores reports its original failure). *)
let default_retry_budget = 3

let campaign t ?(seed = 0xCA57ED) ?(fuel_factor = 10)
    ?(model = Casted_sim.Fault.Reg_bit) ?ci_halfwidth ?checkpoint
    ?checkpoint_every ?(resume = false) ?(replay = true) ?retry_budget
    ?(allow_legacy_checkpoint = false) ~trials key =
  (* Compile (cached) under the compile timer, then hand the memoized
     decoded program — and, with replay on, the memoized golden-run
     snapshot set — to the campaign: thousands of trials, one decode,
     one capture, shared read-only across pool domains and across
     campaigns revisiting this configuration. *)
  let (_ : Pipeline.compiled) = compile t key in
  let decoded = Cache.decoded t.cache key in
  (* A rollback schedule restores its own region checkpoints mid-trial,
     which golden-prefix replay cannot express: such campaigns get the
     recovering executor (and no replay set) instead. *)
  let retry_budget =
    match retry_budget with
    | Some _ as b -> b
    | None ->
        if key.Cache.scheme = Scheme.Rollback then Some default_retry_budget
        else None
  in
  let replay = replay && retry_budget = None in
  let replay_set = if replay then Some (Cache.replay t.cache key) else None in
  let identity =
    Printf.sprintf "%s/%s" (Cache.identity key)
      (Casted_sim.Fault.model_name model)
  in
  timed t `Campaign (fun () ->
      Montecarlo.run_decoded ~pool:t.pool ~seed ~fuel_factor ~model
        ?ci_halfwidth ?checkpoint ?checkpoint_every ~resume ~identity ~replay
        ?replay_set ?retry_budget ~allow_legacy_checkpoint ~trials decoded)

(* One grid cell: NOED/SCED are single-core, so they are measured once
   per issue width (compiled at delay 1, recorded as delay 0, like the
   paper's figures); DCED/CASTED vary over the delay axis. *)
let sweep_specs ~size ~benchmarks ~issues ~delays =
  List.concat_map
    (fun benchmark ->
      (match Registry.find benchmark with
      | Some _ -> ()
      | None -> invalid_arg ("Engine.sweep: unknown benchmark " ^ benchmark));
      List.concat_map
        (fun issue ->
          let spec scheme ~compile_delay ~record_delay =
            ( Cache.key ~workload:benchmark ~size ~scheme ~issue_width:issue
                ~delay:compile_delay (),
              record_delay )
          in
          spec Scheme.Noed ~compile_delay:1 ~record_delay:0
          :: spec Scheme.Sced ~compile_delay:1 ~record_delay:0
          :: List.concat_map
               (fun delay ->
                 [
                   spec Scheme.Dced ~compile_delay:delay ~record_delay:delay;
                   spec Scheme.Casted ~compile_delay:delay ~record_delay:delay;
                 ])
               delays)
        issues)
    benchmarks

let sweep t ~size ?benchmarks ?(issues = [ 1; 2; 3; 4 ])
    ?(delays = [ 1; 2; 3; 4 ]) () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> Registry.names ()
  in
  let specs =
    Array.of_list (sweep_specs ~size ~benchmarks ~issues ~delays)
  in
  timed t `Sweep (fun () ->
      Array.to_list
        (Pool.map t.pool
           (fun ((key : Cache.key), record_delay) ->
             let run = Simulator.run_decoded (Cache.decoded t.cache key) in
             (match run.Outcome.termination with
             | Outcome.Exit 0 -> ()
             | term ->
                 invalid_arg
                   (Format.asprintf "Engine.sweep: %a: %a" Cache.pp_key key
                      Outcome.pp_termination term));
             {
               benchmark = key.Cache.workload;
               scheme = key.Cache.scheme;
               issue = key.Cache.issue_width;
               delay = record_delay;
               run;
             })
           specs))

let run_job t = function
  | Compile key -> Compiled (compile t key)
  | Simulate key ->
      let compiled, run = simulate t key in
      Simulated (compiled, run)
  | Campaign { spec; trials; seed; fuel_factor; model; ci_halfwidth;
               checkpoint; resume } ->
      Campaigned
        (campaign t ~seed ~fuel_factor ~model ?ci_halfwidth ?checkpoint
           ~resume ~trials spec)
  | Sweep { size; benchmarks; issues; delays } ->
      Swept (sweep t ~size ~benchmarks ~issues ~delays ())

let run_jobs t jobs = List.map (run_job t) jobs

let counters t =
  Mutex.lock t.mutex;
  let c = t.counts in
  Mutex.unlock t.mutex;
  c

let utilisation t =
  let s = Pool.stats t.pool in
  let c = counters t in
  let cs = Cache.stats t.cache in
  let throughput =
    if s.Pool.wall_s > 0.0 then float_of_int s.Pool.tasks /. s.Pool.wall_s
    else 0.0
  in
  let kind name n secs =
    if n = 0 then None else Some (Printf.sprintf "%d %s (%.1fs)" n name secs)
  in
  let jobs_line =
    match
      List.filter_map Fun.id
        [
          kind "compiles" c.compiles c.compile_s;
          kind "simulates" c.simulates c.simulate_s;
          kind "campaigns" c.campaigns c.campaign_s;
          kind "sweeps" c.sweeps c.sweep_s;
        ]
    with
    | [] -> "jobs:    none"
    | parts -> "jobs:    " ^ String.concat ", " parts
  in
  String.concat "\n"
    [
      Printf.sprintf
        "engine:  %d jobs (%d worker domains), %d tasks, %.1f tasks/s"
        s.Pool.jobs s.Pool.domains s.Pool.tasks throughput;
      Printf.sprintf "busy:    %.1fs over %.1fs wall, utilisation %.0f%%"
        s.Pool.busy_s s.Pool.wall_s
        (100.0 *. Pool.utilisation s);
      jobs_line;
      Printf.sprintf "cache:   %d entries, %d hits, %d misses" cs.Cache.entries
        cs.Cache.hits cs.Cache.misses;
      Printf.sprintf "decoded: %d entries, %d hits, %d misses"
        cs.Cache.decoded_entries cs.Cache.decoded_hits
        cs.Cache.decoded_misses;
      Printf.sprintf "replay:  %d snapshot sets, %d hits, %d captures"
        cs.Cache.replay_entries cs.Cache.replay_hits cs.Cache.replay_misses;
      "";
    ]
