(** The unified experiment engine.

    Every experiment in the repo — a one-off compile, a golden
    simulation, a Monte-Carlo fault campaign, a full performance sweep —
    is a {!job} value submitted to an engine rather than an inline
    driver loop. The engine owns:

    - a {!Casted_exec.Pool} of worker domains that fans out the
      embarrassingly parallel parts (sweep points, campaign trials);
    - a {!Cache} of compiled schedules so configurations shared between
      jobs compile exactly once;
    - per-job timing and throughput counters, rendered by
      {!utilisation}.

    {b Determinism contract.} Engine results never depend on the number
    of domains: sweep points are returned in grid order, and every
    campaign trial draws from an RNG seeded by
    [Rng.derive ~seed trial_index] (see {!Casted_sim.Montecarlo.trial}),
    so a run with [jobs = N] is bit-identical to [jobs = 1]. *)

type t

(** [create ~jobs ()] builds an engine over a fresh pool. [jobs]
    defaults to {!Casted_exec.Pool.default_jobs} (the [$CASTED_JOBS]
    override or the recommended domain count); raises
    [Invalid_argument] if that env knob is malformed. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int
val pool : t -> Casted_exec.Pool.t
val cache : t -> Cache.t

(** Shut the pool down, draining queued work. Idempotent. *)
val shutdown : t -> unit

(** [with_engine ?jobs f] runs [f] on a fresh engine and shuts it down
    afterwards, also on exception. *)
val with_engine : ?jobs:int -> (t -> 'a) -> 'a

(** {2 The job model} *)

type sweep_point = {
  benchmark : string;
  scheme : Casted_detect.Scheme.t;
  issue : int;
  delay : int;  (** 0 for the single-core schemes (NOED, SCED) *)
  run : Casted_sim.Outcome.run;
}

type job =
  | Compile of Cache.key  (** compile one configuration (cached) *)
  | Simulate of Cache.key  (** compile + golden run *)
  | Campaign of {
      spec : Cache.key;
      trials : int;
      seed : int;
      fuel_factor : int;
      model : Casted_sim.Fault.model;
      ci_halfwidth : float option;
          (** stop once the detected-rate 95% CI half-width (percentage
              points) is at or below this *)
      checkpoint : string option;  (** partial-tally checkpoint path *)
      resume : bool;  (** continue from [checkpoint] *)
    }  (** Monte-Carlo fault campaign; trials fan out over the pool *)
  | Sweep of {
      size : Casted_workloads.Workload.size;
      benchmarks : string list;
      issues : int list;
      delays : int list;
    }  (** the Figs. 6-8 grid; points fan out over the pool *)

type outcome =
  | Compiled of Casted_detect.Pipeline.compiled
  | Simulated of Casted_detect.Pipeline.compiled * Casted_sim.Outcome.run
  | Campaigned of Casted_sim.Montecarlo.result
  | Swept of sweep_point list

val run_job : t -> job -> outcome

(** Run jobs in submission order (each job parallelises internally). *)
val run_jobs : t -> job list -> outcome list

(** {2 Typed conveniences over {!run_job}} *)

val compile : t -> Cache.key -> Casted_detect.Pipeline.compiled

val simulate :
  t -> Cache.key -> Casted_detect.Pipeline.compiled * Casted_sim.Outcome.run

(** [campaign t ~trials spec] compiles [spec] (cached) and fans
    [trials] Monte-Carlo trials over the pool. Identical to the
    sequential {!Casted_sim.Montecarlo.run} with the same [seed];
    the optional knobs ([model], [ci_halfwidth], [checkpoint],
    [checkpoint_every], [resume], [replay], [allow_legacy_checkpoint])
    are forwarded to it. With [replay] on (the default) the golden-run
    snapshot set comes from the engine cache ({!Cache.replay}), so
    campaigns revisiting a configuration share one capture. With
    [compile] on (the default) trials run on the stage-2
    closure-threaded engine ({!Casted_sim.Simulator.run_compiled}) and
    the compiled program comes from the engine cache
    ({!Cache.compiled}) — bit-identical tallies, one stage-2 compile
    per configuration. [~compile:false] is the [--no-compile] escape
    hatch back to the decoded interpreter.

    A {!Casted_detect.Scheme.Rollback} spec automatically runs every
    trial through {!Casted_sim.Simulator.run_recovering} with
    [retry_budget] (default {!default_retry_budget}) and replay forced
    off — a rollback trial restores its own region checkpoints, which
    prefix replay cannot express. Pass [retry_budget] explicitly to
    override the budget (or to run any other scheme recovering).

    With [store] set the campaign becomes incremental: see
    {!campaign_stored}, of which this is the [.result] projection. *)
val campaign :
  t ->
  ?seed:int ->
  ?fuel_factor:int ->
  ?model:Casted_sim.Fault.model ->
  ?ci_halfwidth:float ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?replay:bool ->
  ?compile:bool ->
  ?retry_budget:int ->
  ?allow_legacy_checkpoint:bool ->
  ?store:Casted_store.Store.t ->
  ?shard:int * int ->
  trials:int ->
  Cache.key ->
  Casted_sim.Montecarlo.result

(** Rollback budget {!campaign} uses when the spec's scheme is
    [Rollback] and no explicit [retry_budget] is given. *)
val default_retry_budget : int

(** {2 The persistent result store} *)

(** What a store-backed campaign actually did. [result] is the tally
    this process can vouch for: the cell's full tally when [complete],
    otherwise just this shard's share. [simulated] trials were run by
    this call; [served] came out of the store. *)
type stored_campaign = {
  result : Casted_sim.Montecarlo.result;
  simulated : int;  (** trials this call actually simulated *)
  served : int;  (** trials served from banked store entries *)
  complete : bool;
      (** [result] covers all [trials] of the cell (as opposed to one
          shard of a cell whose other shards are still outstanding) *)
}

(** [campaign_stored t ~store ~trials spec] is {!campaign} made
    incremental against an on-disk {!Casted_store.Store}:

    - {b full hit} — the store holds the cell at ≥ the identical
      identity tuple with [trials_done = trials]: the tally is served
      with {e zero} simulation, zero compiles, zero decodes.
    - {b partial hit} — banked [trials_done < trials]: simulation
      resumes at the banked trial index (the per-trial RNG derivation
      makes the union bit-identical to a cold run of [trials]) and the
      extended entry replaces the old one.
    - {b miss} — the cell is simulated and banked. A banked entry with
      {e more} trials than requested is left alone and the request
      simulated fresh (a prefix cannot be recovered from counts).

    With [shard = (k, n)], this process simulates only the campaign
    chunks owned by shard [k] of [n] (absolute 64-trial grid, so the
    [n] shards partition the trial space exactly), banks the shard
    entry, and — if it completed the cell — merges all [n] shard
    entries into the full entry. [complete = false] means other shards
    are still outstanding; re-running any shard once they land (or
    {!Casted_store.Store.merge_shards}) produces the merged tally,
    bit-identical to an unsharded run. A shard worker also banks its
    partial tally after {e every} finished owned chunk, so a worker
    killed mid-campaign leaves its completed chunks in the store;
    re-running that shard resumes after the last banked chunk instead
    of starting over (counted as a partial hit).

    Store-backed campaigns refuse [ci_halfwidth] (early stopping would
    make the banked trial count depend on the sampling path) and
    [checkpoint]/[resume] (the store subsumes both). A resumed cell
    whose golden run disagrees with the banked entry raises
    [Invalid_argument] — the identity no longer pins the simulation.

    Without [store] this is exactly {!campaign} (plus the shard
    restriction when [shard] is given). *)
val campaign_stored :
  t ->
  ?seed:int ->
  ?fuel_factor:int ->
  ?model:Casted_sim.Fault.model ->
  ?ci_halfwidth:float ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?replay:bool ->
  ?compile:bool ->
  ?retry_budget:int ->
  ?allow_legacy_checkpoint:bool ->
  ?store:Casted_store.Store.t ->
  ?shard:int * int ->
  trials:int ->
  Cache.key ->
  stored_campaign

(** The campaign identity string a store entry (and a checkpoint) is
    keyed on: [Cache.identity spec ^ "/" ^ fault model name]. Pinned by
    golden tests alongside {!Cache.identity}. *)
val campaign_identity : Cache.key -> Casted_sim.Fault.model -> string

(** [sweep t ~size ()] runs the performance grid of the paper's
    Figs. 6-8: NOED and SCED once per issue width, DCED and CASTED per
    (issue, delay). Points come back in deterministic grid order. *)
val sweep :
  t ->
  size:Casted_workloads.Workload.size ->
  ?benchmarks:string list ->
  ?issues:int list ->
  ?delays:int list ->
  unit ->
  sweep_point list

(** {2 Instrumentation} *)

type job_counters = {
  compiles : int;
  compile_s : float;
  simulates : int;
  simulate_s : float;
  campaigns : int;
  campaign_s : float;
  sweeps : int;
  sweep_s : float;
}

val counters : t -> job_counters

(** Result-store traffic across this engine's store-backed campaigns
    (all zero when no campaign used a store). *)
type store_counters = {
  full_hits : int;  (** cells served entirely from the store *)
  partial_hits : int;  (** cells resumed from a banked prefix *)
  store_misses : int;  (** cells simulated from scratch *)
  store_writes : int;  (** entries written (new, extended or merged) *)
  trials_served : int;  (** trials that needed no simulation *)
  trials_simulated : int;  (** trials actually run by store campaigns *)
}

val store_counters : t -> store_counters

(** Multi-line human-readable summary: pool size and utilisation, task
    throughput, per-job-kind counts and times, cache hit rate, and —
    when a result store saw traffic — store hit/miss/trial counters. *)
val utilisation : t -> string
