type t = {
  levels : (Level.t * int) array;  (* level, latency *)
  mem_latency : int;
  perfect : bool;
  l1_latency : int;
}

type stats = {
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  l3_hits : int;
  l3_misses : int;
  writebacks : int;
}

let create (c : Casted_machine.Config.cache_config) =
  let open Casted_machine.Config in
  {
    levels =
      [|
        (Level.of_config c.l1, c.l1.latency);
        (Level.of_config c.l2, c.l2.latency);
        (Level.of_config c.l3, c.l3.latency);
      |];
    mem_latency = c.mem_latency;
    perfect = false;
    l1_latency = c.l1.latency;
  }

let perfect (c : Casted_machine.Config.cache_config) =
  { (create c) with perfect = true }

let access t ~addr ~write =
  if t.perfect then t.l1_latency
  else begin
    (* Walk outwards until a level hits; every traversed level allocates
       the block (inclusive hierarchy). *)
    let n = Array.length t.levels in
    let rec go i =
      if i >= n then t.mem_latency
      else
        let level, latency = t.levels.(i) in
        match Level.access level ~addr ~write with
        | Level.Hit -> latency
        | Level.Miss _ -> go (i + 1)
    in
    go 0
  end

let stats t =
  let h i = Level.hits (fst t.levels.(i)) in
  let m i = Level.misses (fst t.levels.(i)) in
  let wb =
    Array.fold_left (fun acc (l, _) -> acc + Level.writebacks l) 0 t.levels
  in
  {
    l1_hits = h 0;
    l1_misses = m 0;
    l2_hits = h 1;
    l2_misses = m 1;
    l3_hits = h 2;
    l3_misses = m 2;
    writebacks = wb;
  }

let reset t = Array.iter (fun (l, _) -> Level.clear l) t.levels
let is_perfect t = t.perfect

type snapshot = { levels : Level.snapshot array; snap_perfect : bool }

let snapshot (t : t) =
  { levels = Array.map (fun (l, _) -> Level.snapshot l) t.levels;
    snap_perfect = t.perfect }

let restore (t : t) snap =
  if t.perfect <> snap.snap_perfect then
    invalid_arg "Hierarchy.restore: perfect-cache mode mismatch";
  if Array.length snap.levels <> Array.length t.levels then
    invalid_arg "Hierarchy.restore: level count mismatch";
  Array.iteri (fun i (l, _) -> Level.restore l snap.levels.(i)) t.levels

let snapshot_perfect snap = snap.snap_perfect

let snapshot_bytes snap =
  Array.fold_left (fun acc l -> acc + Level.snapshot_bytes l) 0 snap.levels

let pp_stats ppf s =
  Format.fprintf ppf
    "L1 %d/%d L2 %d/%d L3 %d/%d (hits/misses), %d writebacks" s.l1_hits
    s.l1_misses s.l2_hits s.l2_misses s.l3_hits s.l3_misses s.writebacks
