(** Three-level cache hierarchy plus main memory (paper Table I).

    [access] returns the access latency in cycles: the latency of the
    innermost level that hits (or memory latency on a full miss), matching
    the cumulative per-level latencies the paper lists. Caches are
    non-blocking in the paper; the simulator reproduces that by charging
    each load its own latency without serialising misses. *)

type t

type stats = {
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  l3_hits : int;
  l3_misses : int;
  writebacks : int;
}

val create : Casted_machine.Config.cache_config -> t

(** Latency in cycles of a read or write to [addr]. *)
val access : t -> addr:int -> write:bool -> int

(** An ideal hierarchy: every access hits in L1. Used by the
    perfect-cache ablation. *)
val perfect : Casted_machine.Config.cache_config -> t

val stats : t -> stats
val reset : t -> unit

(** Whether this hierarchy was built with {!perfect}. *)
val is_perfect : t -> bool

(** Immutable copy of the whole hierarchy's state (all levels' tags,
    dirty bits, LRU stamps, statistics) plus the perfect-cache flag.
    Never mutated after capture, so safe to share across domains. *)
type snapshot

val snapshot : t -> snapshot

(** Write a snapshot back into a hierarchy of the same geometry and
    perfect-cache mode. Raises [Invalid_argument] on a mode or level
    mismatch. *)
val restore : t -> snapshot -> unit

(** The perfect-cache flag the snapshot was captured under. *)
val snapshot_perfect : snapshot -> bool

(** Approximate heap footprint of a snapshot, in bytes. *)
val snapshot_bytes : snapshot -> int

val pp_stats : Format.formatter -> stats -> unit
