type way = { mutable tag : int; mutable dirty : bool; mutable stamp : int }
(* tag = -1 encodes an invalid way. *)

type t = {
  sets : way array array;
  block_bytes : int;
  block_shift : int;
  n_sets : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  (* Journal of sets mutated since the last [clear]: large levels see a
     handful of distinct sets per short run, so clearing, snapshotting
     and restoring walk the journal instead of the whole array —
     O(touched), not O(capacity). Every way mutation goes through
     [touch]. *)
  touched : int array;  (* stack of touched set indices *)
  touched_flag : Bytes.t;  (* per-set membership bit for the stack *)
  mutable n_touched : int;
}

type outcome = Hit | Miss of { evicted_dirty : bool }

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else if 1 lsl k > n then -1 else go (k + 1) in
  go 0

let create ~size_bytes ~block_bytes ~assoc =
  if size_bytes <= 0 || block_bytes <= 0 || assoc <= 0 then
    invalid_arg "Level.create: non-positive parameter";
  if size_bytes mod (block_bytes * assoc) <> 0 then
    invalid_arg "Level.create: size not divisible by block * assoc";
  let block_shift = log2_exact block_bytes in
  if block_shift < 0 then invalid_arg "Level.create: block size not a power of 2";
  let n_sets = size_bytes / (block_bytes * assoc) in
  let sets =
    Array.init n_sets (fun _ ->
        Array.init assoc (fun _ -> { tag = -1; dirty = false; stamp = 0 }))
  in
  {
    sets;
    block_bytes;
    block_shift;
    n_sets;
    clock = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
    touched = Array.make n_sets 0;
    touched_flag = Bytes.make n_sets '\000';
    n_touched = 0;
  }

let of_config (c : Casted_machine.Config.cache_level) =
  create ~size_bytes:c.Casted_machine.Config.size_bytes
    ~block_bytes:c.Casted_machine.Config.block_bytes
    ~assoc:c.Casted_machine.Config.assoc

let locate t addr =
  let block = addr lsr t.block_shift in
  let set = block mod t.n_sets in
  let tag = block / t.n_sets in
  (set, tag)

let touch t set_idx =
  if Bytes.unsafe_get t.touched_flag set_idx = '\000' then begin
    Bytes.unsafe_set t.touched_flag set_idx '\001';
    t.touched.(t.n_touched) <- set_idx;
    t.n_touched <- t.n_touched + 1
  end

let access t ~addr ~write =
  if addr < 0 then invalid_arg "Level.access: negative address";
  t.clock <- t.clock + 1;
  let set_idx, tag = locate t addr in
  touch t set_idx;
  let set = t.sets.(set_idx) in
  let hit = Array.find_opt (fun w -> w.tag = tag) set in
  match hit with
  | Some w ->
      w.stamp <- t.clock;
      if write then w.dirty <- true;
      t.hits <- t.hits + 1;
      Hit
  | None ->
      t.misses <- t.misses + 1;
      (* Evict the LRU way (invalid ways have stamp 0, oldest). *)
      let victim = ref set.(0) in
      Array.iter (fun w -> if w.stamp < !victim.stamp then victim := w) set;
      let evicted_dirty = !victim.tag >= 0 && !victim.dirty in
      if evicted_dirty then t.writebacks <- t.writebacks + 1;
      !victim.tag <- tag;
      !victim.dirty <- write;
      !victim.stamp <- t.clock;
      Miss { evicted_dirty }

let probe t ~addr =
  let set_idx, tag = locate t addr in
  Array.exists (fun w -> w.tag = tag) t.sets.(set_idx)

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0

(* O(touched): only sets in the journal can differ from the pristine
   all-invalid state, because every way mutation records its set. *)
let clear t =
  for k = 0 to t.n_touched - 1 do
    let s = t.touched.(k) in
    Bytes.unsafe_set t.touched_flag s '\000';
    Array.iter
      (fun w ->
        w.tag <- -1;
        w.dirty <- false;
        w.stamp <- 0)
      t.sets.(s)
  done;
  t.n_touched <- 0;
  t.clock <- 0;
  reset_stats t

let num_sets t = t.n_sets
let block_bytes t = t.block_bytes

(* Sparse snapshot: only the touched sets (everything else is in the
   pristine all-invalid state a [clear] re-establishes). [set_idx.(k)]
   names the k-th captured set; its ways live at [k * assoc ..] in the
   flat arrays. Never mutated after capture — safe to share read-only
   across domains. *)
type snapshot = {
  snap_sets : int;  (* geometry guard: n_sets *)
  assoc : int;
  set_idx : int array;
  tags : int array;  (* length = |set_idx| * assoc *)
  stamps : int array;
  dirty : Bytes.t;
  clock : int;
  s_hits : int;
  s_misses : int;
  s_writebacks : int;
}

let snapshot t =
  let assoc = Array.length t.sets.(0) in
  let n = t.n_touched * assoc in
  let set_idx = Array.sub t.touched 0 t.n_touched in
  let tags = Array.make (max n 1) (-1) in
  let stamps = Array.make (max n 1) 0 in
  let dirty = Bytes.make (max n 1) '\000' in
  for k = 0 to t.n_touched - 1 do
    let set = t.sets.(set_idx.(k)) in
    for w = 0 to assoc - 1 do
      let i = (k * assoc) + w in
      tags.(i) <- set.(w).tag;
      stamps.(i) <- set.(w).stamp;
      if set.(w).dirty then Bytes.unsafe_set dirty i '\001'
    done
  done;
  {
    snap_sets = t.n_sets;
    assoc;
    set_idx;
    tags;
    stamps;
    dirty;
    clock = t.clock;
    s_hits = t.hits;
    s_misses = t.misses;
    s_writebacks = t.writebacks;
  }

(* O(touched of t + touched of snap): clear the level back to pristine,
   then write the snapshot's sets (re-journalling them, so a later
   [clear] undoes the restore too). *)
let restore t snap =
  let assoc = Array.length t.sets.(0) in
  if snap.snap_sets <> t.n_sets || snap.assoc <> assoc then
    invalid_arg "Level.restore: geometry mismatch";
  clear t;
  for k = 0 to Array.length snap.set_idx - 1 do
    let s = snap.set_idx.(k) in
    touch t s;
    let set = t.sets.(s) in
    for w = 0 to assoc - 1 do
      let i = (k * assoc) + w in
      set.(w).tag <- snap.tags.(i);
      set.(w).stamp <- snap.stamps.(i);
      set.(w).dirty <- Bytes.unsafe_get snap.dirty i <> '\000'
    done
  done;
  t.clock <- snap.clock;
  t.hits <- snap.s_hits;
  t.misses <- snap.s_misses;
  t.writebacks <- snap.s_writebacks

(* Rough heap footprint of one snapshot, for observability. *)
let snapshot_bytes snap =
  let words =
    (2 * Array.length snap.tags) + Array.length snap.set_idx + 8
  in
  (words * Sys.word_size / 8) + Bytes.length snap.dirty
