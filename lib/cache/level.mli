(** One set-associative cache level.

    Write-back, write-allocate, LRU replacement. Only tags are tracked —
    the simulator keeps data in a flat arena, the cache model only decides
    latencies — which is exactly what the paper's timing results need. *)

type t

type outcome = Hit | Miss of { evicted_dirty : bool }

val create : size_bytes:int -> block_bytes:int -> assoc:int -> t

val of_config : Casted_machine.Config.cache_level -> t

(** [access t ~addr ~write] looks the block containing [addr] up,
    allocates it on a miss (evicting the LRU way) and marks it dirty on
    writes. *)
val access : t -> addr:int -> write:bool -> outcome

(** Lookup without allocation or LRU update (used by tests). *)
val probe : t -> addr:int -> bool

val hits : t -> int
val misses : t -> int
val writebacks : t -> int
val reset_stats : t -> unit

(** Back to the pristine all-invalid state. O(sets touched since the
    last clear), not O(capacity): mutations are journalled. *)
val clear : t -> unit

val num_sets : t -> int
val block_bytes : t -> int

(** An immutable copy of a level's replacement and statistics state,
    cheap to share read-only across domains. *)
type snapshot

(** Sparse copy of tags, dirty bits, LRU stamps and counters — only the
    sets touched since the last clear are captured, O(touched). *)
val snapshot : t -> snapshot

(** Write a snapshot back into a level of the same geometry (clears the
    level first; O(touched), both sides). *)
val restore : t -> snapshot -> unit

(** Approximate heap footprint of a snapshot, in bytes. *)
val snapshot_bytes : snapshot -> int
