(* Machinery shared by the two execution engines — the decoded-form
   interpreter (Simulator) and the closure-threaded compiled engine
   (Compile). Both raise the same exceptions, assemble the same
   Outcome.run from a finished State.t and surface the same metrics, so
   the engines can only diverge through State itself — the property the
   verify oracle's four-way cross-check leans on. *)

module Insn = Casted_ir.Insn
module Config = Casted_machine.Config
module Hierarchy = Casted_cache.Hierarchy

exception Halted of int
exception Check_failed of int
exception Out_of_fuel

let max_call_depth = 10_000

let role_index = function
  | Insn.Original -> 0
  | Insn.Replica -> 1
  | Insn.Check -> 2
  | Insn.Shadow_copy -> 3

let addr_int addr =
  (* The cache model indexes by machine address; negative or huge
     addresses would have trapped in Memory first, but the cache access
     happens before the bounds check for loads, so clamp defensively. *)
  if Int64.compare addr 0L < 0 then 0
  else Int64.to_int (Int64.logand addr 0x3FFF_FFFFL)

(* Surface one finished run into the metrics registry. Runs entirely on
   the calling domain's shard, after the simulation is done, so it can
   never perturb the simulation itself. *)
let record_metrics (r : Outcome.run) =
  let module M = Casted_obs.Metrics in
  if M.enabled () then begin
    M.incr "sim.runs";
    M.incr ~by:r.Outcome.cycles "sim.cycles";
    M.incr ~by:r.Outcome.dyn_insns "sim.insns";
    M.incr ~by:r.Outcome.dyn_mem "sim.mem_accesses";
    M.incr ~by:r.Outcome.dyn_branches "sim.branches";
    M.incr ~by:r.Outcome.dyn_xreads "sim.xcluster_reads";
    M.incr ~by:r.Outcome.dyn_checks "sim.checks_executed";
    M.incr ~by:r.Outcome.slots_total "sim.slots_offered";
    M.incr ~by:(Outcome.trapped r) "sim.traps";
    (match r.Outcome.termination with
    | Outcome.Detected _ -> M.incr "sim.detections"
    | _ -> ());
    M.observe "sim.occupancy" (Outcome.occupancy r);
    let c = r.Outcome.cache in
    M.incr ~by:c.Casted_cache.Hierarchy.l1_hits "cache.l1.hits";
    M.incr ~by:c.Casted_cache.Hierarchy.l1_misses "cache.l1.misses";
    M.incr ~by:c.Casted_cache.Hierarchy.l2_hits "cache.l2.hits";
    M.incr ~by:c.Casted_cache.Hierarchy.l2_misses "cache.l2.misses";
    M.incr ~by:c.Casted_cache.Hierarchy.l3_hits "cache.l3.hits";
    M.incr ~by:c.Casted_cache.Hierarchy.l3_misses "cache.l3.misses";
    M.incr ~by:c.Casted_cache.Hierarchy.writebacks "cache.writebacks"
  end

(* Assemble the Outcome.run from a finished (or trapped) machine. Shared
   by the full, replayed and compiled paths so they can only differ
   through State itself. *)
let finish ~config ~output_base ~output_len ~digest_len ~with_mem_digest
    (st : State.t) termination =
  let output = Memory.extract st.State.mem ~base:output_base ~len:output_len in
  let cycles = st.State.time + 1 in
  let r =
    {
      Outcome.termination;
      cycles;
      dyn_insns = st.State.dyn;
      dyn_defs = st.State.defs;
      dyn_mem = st.State.mems;
      dyn_branches = st.State.branches;
      dyn_xreads = st.State.xreads;
      dyn_checks = st.State.roles.(role_index Insn.Check);
      dyn_corrections = st.State.corrections;
      dyn_by_role = st.State.roles;
      slots_total =
        cycles * config.Config.clusters * config.Config.issue_width;
      output;
      exit_code =
        (match termination with
        | Outcome.Exit c | Outcome.Recovered { exit_code = c; _ } -> c
        | _ -> -1);
      cache = Hierarchy.stats st.State.hier;
      (* Digest only the architectural prefix: a DME program's replica
         image above [digest_len] differs from the golden layout by
         construction and must not count as corruption. *)
      mem_digest =
        (if with_mem_digest then
           Digest.string
             (Memory.extract st.State.mem ~base:0 ~len:digest_len)
         else "");
    }
  in
  record_metrics r;
  r

let termination_of f =
  try f () with
  | Halted code -> Outcome.Exit code
  | Check_failed id -> Outcome.Detected id
  | Trap.Trap t -> Outcome.Trapped t
  | Out_of_fuel -> Outcome.Timeout
