type model = Reg_bit | Burst | Mem | Control | Xcluster

let all_models = [ Reg_bit; Burst; Mem; Control; Xcluster ]

let model_name = function
  | Reg_bit -> "reg-bit"
  | Burst -> "burst"
  | Mem -> "mem"
  | Control -> "control"
  | Xcluster -> "xcluster"

let model_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "reg-bit" | "reg" | "bit" -> Some Reg_bit
  | "burst" | "mbu" -> Some Burst
  | "mem" | "memory" | "line" -> Some Mem
  | "control" | "branch" -> Some Control
  | "xcluster" | "comm" -> Some Xcluster
  | _ -> None

type t =
  | Reg_flip of { target_slot : int; bit : int }
  | Burst_flip of { target_slot : int; bit : int; width : int }
  | Mem_flip of { target_access : int; offset : int; bit : int }
  | Branch_flip of { target_branch : int }
  | Xcluster_flip of { target_read : int; bit : int }

let model_of = function
  | Reg_flip _ -> Reg_bit
  | Burst_flip _ -> Burst
  | Mem_flip _ -> Mem
  | Branch_flip _ -> Control
  | Xcluster_flip _ -> Xcluster

type population = {
  def_slots : int;
  mem_accesses : int;
  cond_branches : int;
  xcluster_reads : int;
}

let population_size model pop =
  match model with
  | Reg_bit | Burst -> pop.def_slots
  | Mem -> pop.mem_accesses
  | Control -> pop.cond_branches
  | Xcluster -> pop.xcluster_reads

let line_bytes = 64

let random model rng ~population =
  let draw what n =
    if n <= 0 then
      invalid_arg
        (Printf.sprintf "Fault.random: empty %s population for model %s" what
           (model_name model));
    Rng.int rng n
  in
  match model with
  | Reg_bit ->
      let target_slot = draw "def-slot" population.def_slots in
      Reg_flip { target_slot; bit = Rng.int rng 64 }
  | Burst ->
      let target_slot = draw "def-slot" population.def_slots in
      (* 2-4 adjacent bits: the multi-bit upsets dominating MBU studies. *)
      Burst_flip
        { target_slot; bit = Rng.int rng 64; width = 2 + Rng.int rng 3 }
  | Mem ->
      let target_access = draw "memory-access" population.mem_accesses in
      Mem_flip
        {
          target_access;
          offset = Rng.int rng line_bytes;
          bit = Rng.int rng 8;
        }
  | Control ->
      Branch_flip
        { target_branch = draw "cond-branch" population.cond_branches }
  | Xcluster ->
      let target_read = draw "cross-cluster-read" population.xcluster_reads in
      Xcluster_flip { target_read; bit = Rng.int rng 64 }

let flip_int ~bit v = Int64.logxor v (Int64.shift_left 1L (bit land 63))

let burst_mask ~bit ~width =
  let m = ref 0L in
  for k = 0 to max 1 width - 1 do
    m := Int64.logor !m (Int64.shift_left 1L ((bit + k) land 63))
  done;
  !m

let flip_burst ~bit ~width v = Int64.logxor v (burst_mask ~bit ~width)

let flip_float ~bit v =
  Int64.float_of_bits (flip_int ~bit (Int64.bits_of_float v))

let flip_float_burst ~bit ~width v =
  Int64.float_of_bits (flip_burst ~bit ~width (Int64.bits_of_float v))

let pp ppf = function
  | Reg_flip { target_slot; bit } ->
      Format.fprintf ppf "reg-bit@@slot#%d bit %d" target_slot bit
  | Burst_flip { target_slot; bit; width } ->
      (* [burst_mask] wraps each bit position at 64, so a burst starting
         near bit 63 corrupts the low bits too — print the mask that is
         actually applied, not the out-of-range arithmetic range. *)
      let last = bit + max 1 width - 1 in
      if last > 63 then
        Format.fprintf ppf "burst@@slot#%d bits %d..63,0..%d (wrapped)"
          target_slot bit (last land 63)
      else
        Format.fprintf ppf "burst@@slot#%d bits %d..%d" target_slot bit last
  | Mem_flip { target_access; offset; bit } ->
      Format.fprintf ppf "mem@@access#%d line-offset %d bit %d" target_access
        offset bit
  | Branch_flip { target_branch } ->
      Format.fprintf ppf "control@@branch#%d" target_branch
  | Xcluster_flip { target_read; bit } ->
      Format.fprintf ppf "xcluster@@read#%d bit %d" target_read bit
