type t = {
  seed : int;
  fuel_factor : int;
  model : Fault.model;
  trials : int;
  next_index : int;
  counts : int array;
  identity : string;
}

let magic = "casted-checkpoint v1"

let save ~path t =
  if String.contains t.identity '\n' then
    invalid_arg "Checkpoint.save: identity must not contain newlines";
  (* The tmp name is unique per process: cooperating campaign workers
     share directories, and two of them writing [path ^ ".tmp"] would
     interleave before the rename. *)
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  Printf.fprintf oc "%s\n" magic;
  Printf.fprintf oc "seed=%d\n" t.seed;
  Printf.fprintf oc "fuel_factor=%d\n" t.fuel_factor;
  Printf.fprintf oc "model=%s\n" (Fault.model_name t.model);
  Printf.fprintf oc "trials=%d\n" t.trials;
  Printf.fprintf oc "next=%d\n" t.next_index;
  Printf.fprintf oc "identity=%s\n" t.identity;
  Printf.fprintf oc "counts=%s\n"
    (String.concat "," (Array.to_list (Array.map string_of_int t.counts)));
  close_out oc;
  Sys.rename tmp path

let ( let* ) = Result.bind

let load ?(allow_legacy = false) ~path () =
  if not (Sys.file_exists path) then Ok None
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    match List.rev !lines with
    | header :: fields when String.equal header magic ->
        let table = Hashtbl.create 8 in
        List.iter
          (fun line ->
            match String.index_opt line '=' with
            | Some i ->
                Hashtbl.replace table
                  (String.sub line 0 i)
                  (String.sub line (i + 1) (String.length line - i - 1))
            | None -> ())
          fields;
        let field name =
          match Hashtbl.find_opt table name with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "%s: missing field %s" path name)
        in
        let int_field name =
          let* v = field name in
          match int_of_string_opt v with
          | Some n -> Ok n
          | None ->
              Error (Printf.sprintf "%s: field %s is not an integer (%S)" path name v)
        in
        let* seed = int_field "seed" in
        let* fuel_factor = int_field "fuel_factor" in
        let* model_s = field "model" in
        let* model =
          match Fault.model_of_string model_s with
          | Some m -> Ok m
          | None ->
              Error (Printf.sprintf "%s: unknown fault model %S" path model_s)
        in
        let* trials = int_field "trials" in
        let* next_index = int_field "next" in
        (* Pre-identity checkpoints carry no campaign identity, so
           nothing ties them to the campaign resuming from them.
           Refuse them unless the caller explicitly opted in (the CLI's
           --allow-legacy-checkpoint), and even then warn loudly: a
           legacy file resumed into the wrong campaign silently merges
           unrelated tallies. *)
        let* identity =
          match Hashtbl.find_opt table "identity" with
          | Some v -> Ok v
          | None when allow_legacy ->
              Printf.eprintf
                "warning: %s is a legacy identity-less checkpoint; \
                 resuming it without any campaign-identity check\n%!"
                path;
              Ok ""
          | None ->
              Error
                (Printf.sprintf
                   "%s: legacy checkpoint without a campaign identity — \
                    pass --allow-legacy-checkpoint to resume it anyway"
                   path)
        in
        let* counts_s = field "counts" in
        let* counts =
          let parts = String.split_on_char ',' counts_s in
          let parsed = List.filter_map int_of_string_opt parts in
          if List.length parsed = List.length parts then
            Ok (Array.of_list parsed)
          else Error (Printf.sprintf "%s: malformed counts %S" path counts_s)
        in
        if next_index < 0 || next_index > trials then
          Error
            (Printf.sprintf "%s: next index %d outside [0, %d]" path
               next_index trials)
        else if Array.fold_left ( + ) 0 counts <> next_index then
          Error
            (Printf.sprintf
               "%s: counts sum to %d but %d trials are recorded" path
               (Array.fold_left ( + ) 0 counts)
               next_index)
        else
          Ok
            (Some
               { seed; fuel_factor; model; trials; next_index; counts; identity })
    | _ -> Error (Printf.sprintf "%s: not a casted checkpoint" path)
  end
