(** Per-block execution profiling.

    When handed to {!Simulator.run}, collects how often every basic block
    executes and how many cycles it accounts for (inclusive of callees
    invoked from the block). Useful to see where the detection overhead
    lands — e.g. the check-dense loop bodies dominating h263enc. *)

type entry = { mutable visits : int; mutable cycles : int }

type t

val create : unit -> t

(** Used by the simulator. *)
val record : t -> func:string -> label:string -> cycles:int -> unit

(** All entries as [((func, label), entry)], hottest (most cycles)
    first; ties broken by name so the order is deterministic. *)
val entries : t -> ((string * string) * entry) list

val total_cycles : t -> int

(** One profile line in structured form; [share] is the fraction of
    {!total_cycles} in [0, 1]. *)
type row = {
  func : string;
  label : string;
  visits : int;
  cycles : int;
  share : float;
}

(** The [n] hottest blocks (default 10), structured — the data behind
    {!render_top}, for machine-readable export. *)
val top : ?n:int -> t -> row list

(** Render the [n] hottest blocks (default 10) as a table. *)
val render_top : ?n:int -> t -> string
