type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x5EED; seed lxor 0x00CA57ED |]
let int t bound = Random.State.int t bound
let int64 t bound = Random.State.int64 t bound
let split t = Random.State.split t

(* SplitMix64 finaliser over the pair, so nearby (seed, index) pairs
   land far apart in seed space. *)
let derive ~seed index =
  let open Int64 in
  let z =
    add
      (mul (of_int seed) 0x9E3779B97F4A7C15L)
      (mul (of_int (index + 1)) 0xBF58476D1CE4E5B9L)
  in
  let z = logxor z (shift_right_logical z 30) in
  let z = mul z 0xBF58476D1CE4E5B9L in
  let z = logxor z (shift_right_logical z 27) in
  let z = mul z 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z 0x3FFFFFFFFFFFFFFFL)
