(** Golden-prefix replay: snapshot the golden run, start each faulty
    trial from the snapshot nearest its injection event.

    Every fault model is armed by one monotone dynamic counter (written
    register slots, memory accesses, conditional branches, cross-cluster
    reads), and a faulty trial is bit-identical to the golden run until
    that counter reaches the fault's target. So a {!State.snapshot}
    taken while the counter is still at or below the target is a valid
    starting point: {!Simulator.run_replayed} from it reproduces the
    full run exactly, paying only the post-snapshot suffix.

    A capture set is immutable after {!capture} and safe to share
    read-only across pool domains; the engine memoizes it alongside the
    decoded program. *)

type t

(** [capture decoded] executes one golden run, recording snapshots at
    entry-function block boundaries roughly every [init_stride] dynamic
    instructions; whenever twice [target] snapshots accumulate, every
    other one is dropped and the stride doubles (single pass, no need
    to know the program length up front, deterministic). The run is
    traced as a [sim.replay] span and counted in the
    [replay.snapshots]/[replay.snapshot_bytes] metrics. *)
val capture :
  ?init_stride:int ->
  ?target:int ->
  ?fuel:int ->
  ?perfect_cache:bool ->
  Decode.t ->
  t

(** The golden run the capture pass executed — bit-identical to a plain
    [Simulator.run_decoded] of the same program (the snapshot hook only
    copies state). *)
val golden : t -> Outcome.run

(** Number of snapshots retained. *)
val count : t -> int

(** The retained snapshots, chronological. The returned array is the
    capture set itself — treat it as read-only. *)
val snapshots : t -> State.snapshot array

(** Approximate total heap footprint of the snapshot set, in bytes. *)
val total_bytes : t -> int

(** Final dynamic-instruction stride between retained snapshots. *)
val stride : t -> int

(** [find t fault] returns the latest snapshot taken before [fault]'s
    trigger event — the cheapest valid starting point — or [None] when
    even the first snapshot is too late (the trial must run
    full-length). O(log snapshots). *)
val find : t -> Fault.t -> State.snapshot option

(** Fraction of the golden run's dynamic instructions executed when
    replaying from [snap] ([1.0] = whole program). *)
val suffix_fraction : t -> State.snapshot -> float
