module Insn = Casted_ir.Insn
module Opcode = Casted_ir.Opcode
module Func = Casted_ir.Func
module Program = Casted_ir.Program
module Config = Casted_machine.Config
module Latency = Casted_machine.Latency
module Schedule = Casted_sched.Schedule

type dinsn = {
  op : Casted_ir.Opcode.t;
  uses : Casted_ir.Reg.t array;
  defs : Casted_ir.Reg.t array;
  imm : int64;
  fimm : float;
  id : int;
  latency : int;
  role : int;
  target : int;
  target2 : int;
}

type dbundle = { at : int; slots : dinsn array array }
type dblock = { label : string; bundles : dbundle array; checkpoint : bool }
type dfunc = {
  func : Casted_ir.Func.t;
  params : Casted_ir.Reg.t array;
  blocks : dblock array;
}

type t = {
  sched : Casted_sched.Schedule.t;
  config : Casted_machine.Config.t;
  funcs : dfunc array;
  entry : int;
  image : Bytes.t;
  output_base : int;
  output_len : int;
  digest_len : int;
}

let role_index = function
  | Insn.Original -> 0
  | Insn.Replica -> 1
  | Insn.Check -> 2
  | Insn.Shadow_copy -> 3

(* Label/name resolution mirrors the interpreter's old linear scans
   ([block_of], [Schedule.find_func]): the FIRST entry with a matching
   name wins, so a (malformed) schedule with duplicate labels decodes to
   exactly the block the scan would have found. *)
let index_first_wins names =
  let table = Hashtbl.create (2 * Array.length names) in
  Array.iteri
    (fun i name ->
      if not (Hashtbl.mem table name) then Hashtbl.add table name i)
    names;
  table

let decode_insn ~config ~func_of_name ~block_of_label ~fname (insn : Insn.t) =
  let block_target what label =
    match Hashtbl.find_opt block_of_label label with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Decode: unknown %s %S in function %S" what label
             fname)
  in
  let target, target2 =
    match insn.Insn.op with
    | Opcode.Br -> (block_target "branch target" insn.Insn.target, -1)
    | Opcode.Brc _ ->
        ( block_target "branch target" insn.Insn.target,
          block_target "branch target" insn.Insn.target2 )
    | Opcode.Call -> (
        match Hashtbl.find_opt func_of_name insn.Insn.target with
        | Some i -> (i, -1)
        | None ->
            invalid_arg
              (Printf.sprintf "Decode: unknown callee %S in function %S"
                 insn.Insn.target fname))
    | _ -> (-1, -1)
  in
  {
    op = insn.Insn.op;
    uses = insn.Insn.uses;
    defs = insn.Insn.defs;
    imm = insn.Insn.imm;
    fimm = insn.Insn.fimm;
    id = insn.Insn.id;
    latency = Latency.of_op config.Config.latencies insn.Insn.op;
    role = role_index insn.Insn.role;
    target;
    target2;
  }

let of_schedule (sched : Schedule.t) : t =
  Casted_obs.Trace.with_span ~cat:"sim" "sim.decode" (fun () ->
      Casted_obs.Metrics.incr "sim.decodes";
      let config = sched.Schedule.config in
      let funcs = Array.of_list sched.Schedule.funcs in
      let func_of_name = index_first_wins (Array.map fst funcs) in
      let decode_func (fname, (fs : Schedule.func_schedule)) =
        let block_of_label =
          index_first_wins
            (Array.map (fun b -> b.Schedule.label) fs.Schedule.blocks)
        in
        let decode_one =
          decode_insn ~config ~func_of_name ~block_of_label ~fname
        in
        let decode_block (b : Schedule.block_schedule) =
          let bundles = ref [] in
          Array.iteri
            (fun at bundle ->
              if Array.exists (fun insns -> Array.length insns > 0) bundle
              then
                bundles :=
                  { at; slots = Array.map (Array.map decode_one) bundle }
                  :: !bundles)
            b.Schedule.bundles;
          let bundles = Array.of_list (List.rev !bundles) in
          (* A block holding a Cpt marker is a rollback-region head: its
             loop top is where run_recovering snapshots the machine. *)
          let checkpoint =
            Array.exists
              (fun db ->
                Array.exists
                  (Array.exists (fun di -> di.op = Opcode.Cpt))
                  db.slots)
              bundles
          in
          { label = b.Schedule.label; bundles; checkpoint }
        in
        if Array.length fs.Schedule.blocks = 0 then
          invalid_arg
            (Printf.sprintf "Decode: function %S has no blocks" fname);
        {
          func = fs.Schedule.func;
          params = Array.of_list fs.Schedule.func.Func.params;
          blocks = Array.map decode_block fs.Schedule.blocks;
        }
      in
      let dfuncs = Array.map decode_func funcs in
      let program = sched.Schedule.program in
      let entry =
        match Hashtbl.find_opt func_of_name program.Program.entry with
        | Some i -> i
        | None ->
            invalid_arg
              (Printf.sprintf "Decode: unknown entry function %S"
                 program.Program.entry)
      in
      let image =
        Memory.pristine ~size:program.Program.mem_size program.Program.data
      in
      {
        sched;
        config;
        funcs = dfuncs;
        entry;
        image;
        output_base = program.Program.output_base;
        output_len = program.Program.output_len;
        digest_len =
          (match program.Program.shadow_base with
          | Some base -> base
          | None -> program.Program.mem_size);
      })
