(** First-class machine state for the pre-decoded simulator.

    Everything {!Simulator} mutates during a run lives here: the
    dynamic-event counters campaigns size injection populations from,
    the lockstep clock, the control-transfer scratch, the working memory
    arena and the cache-hierarchy model, plus the per-call register file.

    The payoff is {!snapshot}/{!restore}: at an entry-function block
    boundary with the call stack empty, these fields are the {e whole}
    machine, so a snapshot there plus the (immutable) decoded program
    determines the rest of the run exactly — the foundation of
    golden-prefix replay ({!Replay}). *)

(** Per-call register file with scoreboard metadata: value, ready time
    and producing cluster per register. *)
type regfile = {
  gp : int64 array;
  fpv : float array;
  prv : bool array;
  gp_ready : int array;
  fp_ready : int array;
  pr_ready : int array;
  gp_home : int array;
  fp_home : int array;
  pr_home : int array;
}

(** Fresh register file for one call of [func]; every register becomes
    readable at [time], homes are unset. *)
val make_regfile : Casted_ir.Func.t -> time:int -> regfile

val copy_regfile : regfile -> regfile

(** A value crossing a call boundary. *)
type value = V_gp of int64 | V_fp of float | V_pr of bool

(** Sentinels for the [xfer] control-transfer field: [xfer_none] while a
    block runs, a block index after a taken branch, [xfer_return] after
    Ret (value parked in [retv]). *)
val xfer_none : int

val xfer_return : int

type t = {
  mem : Memory.t;
  base : Bytes.t;  (** pristine image [mem] was last reset from *)
  hier : Casted_cache.Hierarchy.t;
  mutable time : int;  (** issue time of the last issued bundle *)
  mutable dyn : int;
  mutable defs : int;  (** dynamic register slots written *)
  mutable mems : int;  (** dynamic memory accesses (loads + stores) *)
  mutable branches : int;  (** dynamic conditional branches *)
  mutable xreads : int;  (** operand reads crossing the cluster boundary *)
  mutable corrections : int;
      (** single faults repaired by a voting sequence (TMR) *)
  roles : int array;  (** dynamic count per role *)
  mutable depth : int;
  mutable tmax : int;  (** scratch for bundle issue-time computation *)
  mutable xfer : int;
  mutable retv : value option;
}

(** Per-domain scratch memory arena reset to [image]. Reused across
    runs on the same domain; when the same image object is passed again
    the reset is [Memory.undo_writes] — O(pages the previous run
    dirtied) — and only a new image pays a full-arena blit. *)
val scratch_memory : Bytes.t -> Memory.t

(** Per-domain scratch cache hierarchy for (geometry, perfect), reset
    field-by-field per run. *)
val scratch_hierarchy :
  Casted_machine.Config.cache_config -> perfect:bool -> Casted_cache.Hierarchy.t

(** Machine state at the start of a run (clock at -1, counters zero),
    backed by the calling domain's scratch arena and hierarchy. *)
val fresh :
  image:Bytes.t ->
  cache:Casted_machine.Config.cache_config ->
  perfect:bool ->
  t

(** A deep, immutable copy of the machine at an entry-function
    block-loop top: counters, clock, entry register file, memory state
    (a sparse {!Memory.delta} over the shared pristine image), cache
    state, and the block index to resume at. Safe to share read-only
    across pool domains. Only valid when the call stack is empty
    (depth 1) — [xfer]/[retv]/[tmax] are dead there and are not
    captured. *)
type snapshot = {
  s_time : int;
  s_dyn : int;
  s_defs : int;
  s_mems : int;
  s_branches : int;
  s_xreads : int;
  s_corrections : int;
  s_roles : int array;
  block : int;
  regs : regfile;
  mem_base : Bytes.t;  (** shared pristine image, not a copy *)
  mem_delta : Memory.delta;
  cache : Casted_cache.Hierarchy.snapshot;
}

(** [snapshot st ~regs ~block] captures the machine; O(pages written +
    cache sets touched), not O(arena + cache capacity). *)
val snapshot : t -> regs:regfile -> block:int -> snapshot

(** [restore ~cache snap] rebuilds an equivalent machine on the calling
    domain's scratch (dirty-page undo + delta apply on the arena,
    sparse hierarchy restore) and returns it with a private copy of the
    snapshot's register file. The returned state has [depth = 1] and no
    pending transfer — ready for the entry function's block loop at
    [snap.block]. *)
val restore :
  cache:Casted_machine.Config.cache_config -> snapshot -> t * regfile

(** Approximate heap footprint of a snapshot, in bytes. *)
val snapshot_bytes : snapshot -> int
