(** Monte-Carlo fault-injection campaigns (paper §IV-C, generalised).

    A campaign first executes the golden (fault-free) run to collect
    the reference output and the per-model injection populations, then
    runs up to [trials] faulty executions under one {!Fault.model},
    classifying each into the paper's five outcome categories — plus
    [Recovered] for recovery schemes (TMR voting, region rollback)
    where a fault fired a correction or rollback and the run still
    produced the golden output.

    Campaigns are statistically rigorous and crash-proof:
    - every class rate carries a 95% Wilson score interval
      ({!interval}, printed by {!pp});
    - an optional sequential early stop ends the campaign once the
      detected-rate interval is narrower than a target half-width;
    - partial tallies can be checkpointed to disk and resumed
      bit-identically after a kill ({!Checkpoint});
    - a trial whose simulation raises is classified and counted
      ({!classify_result}), never allowed to kill the campaign. *)

type classification =
  | Benign  (** golden output, no correction ever fired *)
  | Detected  (** a check trapped (detection-only schemes) *)
  | Exception  (** machine trap, or the simulator itself raised *)
  | Data_corrupt  (** wrong exit code or output bytes (SDC) *)
  | Timeout  (** fuel budget exhausted *)
  | Recovered
      (** golden output, but only because the scheme actively repaired
          the fault: a TMR vote corrected a corrupted copy
          ([dyn_corrections > 0]), or a rollback retry chain ended in
          {!Outcome.Recovered} *)

val all_classes : classification list
val class_name : classification -> string

(** How golden-prefix replay fared, over the trials the reporting
    process ran itself (a resumed campaign's earlier trials left no
    per-trial record in the checkpoint — the tallies still cover them,
    these statistics do not). *)
type replay_stats = {
  snapshots : int;  (** snapshots captured on the golden run *)
  snapshot_bytes : int;  (** approximate heap footprint of the set *)
  replayed : int;  (** trials started from a snapshot *)
  full_runs : int;  (** trials that fell back to full execution *)
  mean_suffix : float;
      (** mean fraction of the golden run actually executed per trial
          ([1.0] = every trial ran full-length) *)
}

type result = {
  trials : int;  (** trials actually run (≤ requested with early stop) *)
  benign : int;
  detected : int;
  exceptions : int;
  corrupt : int;
  timeouts : int;
  recovered : int;
  golden_cycles : int;
  golden_dyn : int;
  population : int;  (** size of the campaign model's injection pool *)
  model : Fault.model;
  replay : replay_stats option;
      (** [Some] iff the campaign ran with golden-prefix replay *)
}

val count : result -> classification -> int

(** Percentage of trials in a class. *)
val percent : result -> classification -> float

(** True when the fault model has no injection sites in this cell
    ([population] = 0) — e.g. a mem campaign over a program with no
    memory traffic, or an xcluster campaign on a single-cluster
    machine. Such a result carries zero trials by construction (the
    campaign clamps the trial count rather than raising out of
    {!Fault.random}); callers should report the cell as skipped, not
    as a 0%-coverage data point. *)
val inapplicable : result -> bool

(** 95% (or [z]-score) Wilson interval on a class rate, in percent. *)
val interval : ?z:float -> result -> classification -> float * float

(** Half the Wilson interval width, in percentage points. *)
val halfwidth : ?z:float -> result -> classification -> float

(** Fraction of trials (0..1) the scheme actively repaired. *)
val recovered_fraction : result -> float

(** Mean Work To Failure relative to an unprotected baseline:
    [1 / (overhead × SDC-fraction)] where overhead is this campaign's
    golden cycle count over [baseline_cycles] (the NOED golden run of
    the same workload and issue width). [infinity] when the campaign
    saw no corrupt trial at this sample size. *)
val mwtf : baseline_cycles:int -> result -> float

(** Classify one faulty run against the golden run. *)
val classify : golden:Outcome.run -> Outcome.run -> classification

(** Like {!classify}, for a trial that may have raised: an [Error] is
    an [Exception] outcome — tallied, not propagated. *)
val classify_result :
  golden:Outcome.run -> (Outcome.run, exn) Stdlib.result -> classification

(** The golden (fault-free) reference: its run, the per-model injection
    populations, the faulty-run fuel budget, and (with replay on) the
    snapshot set trials start from. *)
type golden = {
  run : Outcome.run;
  pop : Fault.population;  (** dynamic event populations *)
  fuel : int;  (** [fuel_factor * dyn_insns], the paper's time-out *)
  replay : Replay.t option;
      (** golden-run snapshots for prefix replay, shared read-only *)
}

(** The {!Fault.population} counted by a finished run. *)
val population_of_run : Outcome.run -> Fault.population

(** Execute the golden run. Raises [Invalid_argument] if it does not
    exit cleanly. *)
val golden : ?fuel_factor:int -> Casted_sched.Schedule.t -> golden

(** {!golden} over an already-decoded program (skips the decode).

    @param replay capture a snapshot set during the golden run
      ({!Replay.capture}) for prefix replay; the captured golden run is
      bit-identical to a plain one (default false).
    @param replay_set use this pre-captured set (e.g. the engine
      cache's memoized one) instead of capturing; implies replay. *)
val golden_decoded :
  ?fuel_factor:int -> ?replay:bool -> ?replay_set:Replay.t -> Decode.t -> golden

(** [trial ~golden ~seed ~index schedule] runs faulty trial [index] of
    a campaign with the given campaign [seed] and fault [model]
    (default {!Fault.Reg_bit}). The trial's fault is drawn from an RNG
    seeded by [Rng.derive ~seed index], so the result depends only on
    [(seed, index, model)] — never on execution order. This is what
    lets the engine fan trials over domains while staying bit-identical
    to a sequential campaign. A model whose population is empty in this
    configuration yields [Benign]; a simulation that raises yields
    [Exception].

    @param retry_budget run the trial through
      {!Simulator.run_recovering} with this rollback budget instead of
      a plain (or replayed) run — the rollback-scheme campaign path. *)
val trial :
  ?retry_budget:int ->
  ?model:Fault.model ->
  golden:golden ->
  seed:int ->
  index:int ->
  Casted_sched.Schedule.t ->
  classification

(** {!trial} over an already-decoded program. [trial ... sched] is
    exactly [trial_decoded ... (Decode.of_schedule sched)]; campaigns
    use this form so the schedule is decoded once, not once per trial. *)
val trial_decoded :
  ?retry_budget:int ->
  ?model:Fault.model ->
  golden:golden ->
  seed:int ->
  index:int ->
  Decode.t ->
  classification

(** One trial on the stage-2 compiled engine, with replay composition
    when the golden carries a snapshot set — what campaigns run by
    default. Bit-identical to {!trial_decoded} on the same arguments. *)
val trial_compiled :
  ?model:Fault.model ->
  golden:golden ->
  seed:int ->
  index:int ->
  compiled:Compile.t ->
  Decode.t ->
  classification

(** Fold per-trial classifications into a campaign result. *)
val tally :
  ?model:Fault.model -> golden:golden -> classification array -> result

(** Per-class counts in the persistence order shared by campaign
    checkpoints and the result store: benign, detected, exception,
    data-corrupt, timeout, recovered. [Array.fold_left (+) 0 (counts r)
    = r.trials] always. *)
val counts : result -> int array

(** Rebuild a {!result} from persisted counts (checkpoint order) and
    the golden-run scalars — the result store's hit path, which serves
    a finished tally without re-running anything, golden run included.
    [trials] is the sum of [counts]; [replay] is [None]. Raises
    [Invalid_argument] on a wrong-length or negative counts array. *)
val of_counts :
  ?model:Fault.model ->
  golden_cycles:int ->
  golden_dyn:int ->
  population:int ->
  int array ->
  result

(** Campaigns advance in chunks of this many trials; early-stop checks
    and checkpoint writes happen only at chunk boundaries (absolute
    trial indices), which is why neither the pool size nor a kill point
    can change a campaign's result. *)
val chunk_trials : int

(** [run ~seed ~trials schedule] runs the campaign. The fuel of each
    faulty run is [fuel_factor] (default 10) times the golden dynamic
    instruction count, reproducing the simulator time-out of the paper.

    @param pool fan trials over these domains; the per-trial seed
      derivation makes the result identical field-for-field to the
      sequential run.
    @param model the fault model to draw every trial from
      (default {!Fault.Reg_bit}, the paper's model).
    @param ci_halfwidth stop early once the detected-rate 95% Wilson
      half-width (percentage points) is at or below this target.
    @param checkpoint write the partial tally to this path every
      [checkpoint_every] trials (rounded to chunk boundaries) and at
      the end.
    @param resume load [checkpoint] (which must exist with matching
      identity and seed/model/trials/fuel, else [Invalid_argument]) and
      continue from its recorded index; a missing file starts from
      trial 0.
    @param identity opaque campaign identity (the engine renders the
      (workload, scheme, config, fault-model) tuple here). Stamped into
      every checkpoint; a resume whose identity differs from the
      checkpoint's fails loudly instead of silently merging tallies
      from a different campaign. Default [""].
    @param replay golden-prefix replay (default true): capture
      snapshots on the golden run and start each trial from the latest
      snapshot preceding its fault's trigger event. Bit-identical
      results — same tallies, same intervals — for every fault model at
      any pool size; only the wall clock changes.
    @param retry_budget run every trial through
      {!Simulator.run_recovering} with this rollback budget (the
      rollback-scheme campaign path). Forces replay off: rollback
      trials restore their own region checkpoints, which prefix replay
      cannot express.
    @param allow_legacy_checkpoint accept resuming from an
      identity-less legacy checkpoint file (default false: such files
      are rejected loudly — see {!Checkpoint.load}).
    @param compile run every trial on the stage-2 closure-threaded
      engine ({!Simulator.run_compiled}, default true) — bit-identical
      tallies to the interpreter, only faster. Rollback campaigns
      ([retry_budget]) always stay on the interpreter.
    @param shard [(k, n)]: simulate only the chunks whose index on the
      absolute chunk grid is congruent to [k] modulo [n] (default
      [(0, 1)] — everything). The grid is anchored at trial 0 and
      identical for every shard, so the [n] shard tallies partition
      [0, trials) exactly and sum to the single-process tally
      bit-for-bit (the result store performs that merge). A sharded
      campaign's [result.trials] counts only its own trials. [n > 1]
      cannot combine with [ci_halfwidth] or [checkpoint].
    @param prior [(done, counts)]: resume from a persisted tally —
      start at trial index [done] with per-class [counts] (checkpoint
      order) pre-seeded, exactly as a checkpoint resume would. This is
      the result store's incremental path: a cell with [done] trials
      banked simulates only [done, trials). With a shard, [counts] must
      cover exactly the shard's own chunks below [done] (the banked
      partial entry of a killed worker). Cannot combine with
      [checkpoint] (two resume sources) or [ci_halfwidth]. *)
val run :
  ?pool:Casted_exec.Pool.t ->
  ?seed:int ->
  ?fuel_factor:int ->
  ?model:Fault.model ->
  ?ci_halfwidth:float ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?identity:string ->
  ?replay:bool ->
  ?compile:bool ->
  ?retry_budget:int ->
  ?allow_legacy_checkpoint:bool ->
  ?shard:int * int ->
  ?prior:int * int array ->
  trials:int ->
  Casted_sched.Schedule.t ->
  result

(** {!run} over an already-decoded program. [run sched] is exactly
    [run_decoded (Decode.of_schedule sched)] — the engine's campaign
    path passes the engine-cache's memoized decoded program here, so a
    sweep re-running one configuration never re-decodes it. The decoded
    program is immutable and shared read-only across pool domains.

    @param replay_set start trials from this pre-captured snapshot set
      (the engine passes its memoized one) instead of capturing afresh.
      Supplying it enables replay regardless of the [replay] flag.
    @param compiled run trials on this stage-2-compiled program (the
      engine passes its memoized one) instead of compiling afresh; wins
      over the [compile] flag.
    @param bank called after every finished owned chunk except the last
      with the next trial index and the partial tally so far — the
      result store's partial-banking hook: a SIGKILLed worker's
      completed chunks survive and are served on restart. The final
      tally is returned normally, not banked. *)
val run_decoded :
  ?pool:Casted_exec.Pool.t ->
  ?seed:int ->
  ?fuel_factor:int ->
  ?model:Fault.model ->
  ?ci_halfwidth:float ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?identity:string ->
  ?replay:bool ->
  ?replay_set:Replay.t ->
  ?compile:bool ->
  ?compiled:Compile.t ->
  ?retry_budget:int ->
  ?allow_legacy_checkpoint:bool ->
  ?shard:int * int ->
  ?prior:int * int array ->
  ?bank:(next:int -> result -> unit) ->
  trials:int ->
  Decode.t ->
  result

(** Render the tally with a 95% Wilson interval on every class rate. *)
val pp : Format.formatter -> result -> unit

(** One-line rendering of a campaign's replay statistics. *)
val pp_replay : Format.formatter -> replay_stats -> unit
