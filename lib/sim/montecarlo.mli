(** Monte-Carlo fault-injection campaigns (paper §IV-C, generalised).

    A campaign first executes the golden (fault-free) run to collect
    the reference output and the per-model injection populations, then
    runs up to [trials] faulty executions under one {!Fault.model},
    classifying each into the paper's five outcome categories.

    Campaigns are statistically rigorous and crash-proof:
    - every class rate carries a 95% Wilson score interval
      ({!interval}, printed by {!pp});
    - an optional sequential early stop ends the campaign once the
      detected-rate interval is narrower than a target half-width;
    - partial tallies can be checkpointed to disk and resumed
      bit-identically after a kill ({!Checkpoint});
    - a trial whose simulation raises is classified and counted
      ({!classify_result}), never allowed to kill the campaign. *)

type classification = Benign | Detected | Exception | Data_corrupt | Timeout

val all_classes : classification list
val class_name : classification -> string

type result = {
  trials : int;  (** trials actually run (≤ requested with early stop) *)
  benign : int;
  detected : int;
  exceptions : int;
  corrupt : int;
  timeouts : int;
  golden_cycles : int;
  golden_dyn : int;
  population : int;  (** size of the campaign model's injection pool *)
  model : Fault.model;
}

val count : result -> classification -> int

(** Percentage of trials in a class. *)
val percent : result -> classification -> float

(** 95% (or [z]-score) Wilson interval on a class rate, in percent. *)
val interval : ?z:float -> result -> classification -> float * float

(** Half the Wilson interval width, in percentage points. *)
val halfwidth : ?z:float -> result -> classification -> float

(** Classify one faulty run against the golden run. *)
val classify : golden:Outcome.run -> Outcome.run -> classification

(** Like {!classify}, for a trial that may have raised: an [Error] is
    an [Exception] outcome — tallied, not propagated. *)
val classify_result :
  golden:Outcome.run -> (Outcome.run, exn) Stdlib.result -> classification

(** The golden (fault-free) reference: its run, the per-model injection
    populations, and the faulty-run fuel budget. *)
type golden = {
  run : Outcome.run;
  pop : Fault.population;  (** dynamic event populations *)
  fuel : int;  (** [fuel_factor * dyn_insns], the paper's time-out *)
}

(** The {!Fault.population} counted by a finished run. *)
val population_of_run : Outcome.run -> Fault.population

(** Execute the golden run. Raises [Invalid_argument] if it does not
    exit cleanly. *)
val golden : ?fuel_factor:int -> Casted_sched.Schedule.t -> golden

(** {!golden} over an already-decoded program (skips the decode). *)
val golden_decoded : ?fuel_factor:int -> Decode.t -> golden

(** [trial ~golden ~seed ~index schedule] runs faulty trial [index] of
    a campaign with the given campaign [seed] and fault [model]
    (default {!Fault.Reg_bit}). The trial's fault is drawn from an RNG
    seeded by [Rng.derive ~seed index], so the result depends only on
    [(seed, index, model)] — never on execution order. This is what
    lets the engine fan trials over domains while staying bit-identical
    to a sequential campaign. A model whose population is empty in this
    configuration yields [Benign]; a simulation that raises yields
    [Exception]. *)
val trial :
  ?model:Fault.model ->
  golden:golden ->
  seed:int ->
  index:int ->
  Casted_sched.Schedule.t ->
  classification

(** {!trial} over an already-decoded program. [trial ... sched] is
    exactly [trial_decoded ... (Decode.of_schedule sched)]; campaigns
    use this form so the schedule is decoded once, not once per trial. *)
val trial_decoded :
  ?model:Fault.model ->
  golden:golden ->
  seed:int ->
  index:int ->
  Decode.t ->
  classification

(** Fold per-trial classifications into a campaign result. *)
val tally :
  ?model:Fault.model -> golden:golden -> classification array -> result

(** Campaigns advance in chunks of this many trials; early-stop checks
    and checkpoint writes happen only at chunk boundaries (absolute
    trial indices), which is why neither the pool size nor a kill point
    can change a campaign's result. *)
val chunk_trials : int

(** [run ~seed ~trials schedule] runs the campaign. The fuel of each
    faulty run is [fuel_factor] (default 10) times the golden dynamic
    instruction count, reproducing the simulator time-out of the paper.

    @param pool fan trials over these domains; the per-trial seed
      derivation makes the result identical field-for-field to the
      sequential run.
    @param model the fault model to draw every trial from
      (default {!Fault.Reg_bit}, the paper's model).
    @param ci_halfwidth stop early once the detected-rate 95% Wilson
      half-width (percentage points) is at or below this target.
    @param checkpoint write the partial tally to this path every
      [checkpoint_every] trials (rounded to chunk boundaries) and at
      the end.
    @param resume load [checkpoint] (which must exist with matching
      identity and seed/model/trials/fuel, else [Invalid_argument]) and
      continue from its recorded index; a missing file starts from
      trial 0.
    @param identity opaque campaign identity (the engine renders the
      (workload, scheme, config, fault-model) tuple here). Stamped into
      every checkpoint; a resume whose identity differs from the
      checkpoint's fails loudly instead of silently merging tallies
      from a different campaign. Default [""]. *)
val run :
  ?pool:Casted_exec.Pool.t ->
  ?seed:int ->
  ?fuel_factor:int ->
  ?model:Fault.model ->
  ?ci_halfwidth:float ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?identity:string ->
  trials:int ->
  Casted_sched.Schedule.t ->
  result

(** {!run} over an already-decoded program. [run sched] is exactly
    [run_decoded (Decode.of_schedule sched)] — the engine's campaign
    path passes the engine-cache's memoized decoded program here, so a
    sweep re-running one configuration never re-decodes it. The decoded
    program is immutable and shared read-only across pool domains. *)
val run_decoded :
  ?pool:Casted_exec.Pool.t ->
  ?seed:int ->
  ?fuel_factor:int ->
  ?model:Fault.model ->
  ?ci_halfwidth:float ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?identity:string ->
  trials:int ->
  Decode.t ->
  result

(** Render the tally with a 95% Wilson interval on every class rate. *)
val pp : Format.formatter -> result -> unit
