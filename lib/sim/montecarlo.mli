(** Monte-Carlo fault-injection campaigns (paper §IV-C).

    A campaign first executes the golden (fault-free) run to collect the
    reference output and the injection population, then runs [trials]
    faulty executions, classifying each into the paper's five outcome
    categories. *)

type classification = Benign | Detected | Exception | Data_corrupt | Timeout

val all_classes : classification list
val class_name : classification -> string

type result = {
  trials : int;
  benign : int;
  detected : int;
  exceptions : int;
  corrupt : int;
  timeouts : int;
  golden_cycles : int;
  golden_dyn : int;
  population : int;  (** dynamic defining instructions in the golden run *)
}

val count : result -> classification -> int

(** Percentage of trials in a class. *)
val percent : result -> classification -> float

(** Classify one faulty run against the golden run. *)
val classify : golden:Outcome.run -> Outcome.run -> classification

(** The golden (fault-free) reference: its run, the injection
    population, and the faulty-run fuel budget. *)
type golden = {
  run : Outcome.run;
  population : int;  (** dynamic defining instructions *)
  fuel : int;  (** [fuel_factor * dyn_insns], the paper's time-out *)
}

(** Execute the golden run. Raises [Invalid_argument] if it does not
    exit cleanly. *)
val golden : ?fuel_factor:int -> Casted_sched.Schedule.t -> golden

(** [trial ~golden ~seed ~index schedule] runs faulty trial [index] of
    a campaign with the given campaign [seed]. The trial's fault is
    drawn from an RNG seeded by [Rng.derive ~seed index], so the result
    depends only on [(seed, index)] — never on execution order. This is
    what lets the engine fan trials over domains while staying
    bit-identical to a sequential campaign. *)
val trial :
  golden:golden ->
  seed:int ->
  index:int ->
  Casted_sched.Schedule.t ->
  classification

(** Fold per-trial classifications into a campaign result. *)
val tally : golden:golden -> classification array -> result

(** [run ~seed ~trials schedule] runs the campaign. The fuel of each
    faulty run is [fuel_factor] (default 10) times the golden dynamic
    instruction count, reproducing the simulator time-out of the paper.

    When [pool] is given, trials are fanned out over its domains; the
    per-trial seed derivation makes the result identical field-for-field
    to the sequential ([pool] absent or [jobs = 1]) run. *)
val run :
  ?pool:Casted_exec.Pool.t ->
  ?seed:int ->
  ?fuel_factor:int ->
  trials:int ->
  Casted_sched.Schedule.t ->
  result

val pp : Format.formatter -> result -> unit
