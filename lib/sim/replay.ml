(* Golden-prefix replay: checkpoint the golden run, start each faulty
   trial from the snapshot nearest its injection event.

   A faulty trial is bit-identical to the golden run until its trigger
   event fires (every fault model is armed by one monotone dynamic
   counter), so any snapshot whose counter has not yet reached the
   fault's target is a valid starting point — restoring it and running
   the suffix with the fault armed is exactly the full run. The mean
   trial cost drops from the whole program to the mean suffix length. *)

module Trace = Casted_obs.Trace
module M = Casted_obs.Metrics

type t = {
  golden : Outcome.run;
  snaps : State.snapshot array;  (* chronological, counters nondecreasing *)
  stride : int;
  bytes : int;
}

let golden t = t.golden
let snapshots t = t.snaps
let count t = Array.length t.snaps
let total_bytes t = t.bytes
let stride t = t.stride

let default_target = 48
let default_init_stride = 512

let capture ?(init_stride = default_init_stride) ?(target = default_target)
    ?fuel ?(perfect_cache = false) (d : Decode.t) =
  if init_stride < 1 then invalid_arg "Replay.capture: init_stride < 1";
  if target < 1 then invalid_arg "Replay.capture: target < 1";
  Trace.with_span ~cat:"sim" "sim.replay"
    ~args:[ ("target", Casted_obs.Json.Int target) ]
  @@ fun () ->
  (* Single-pass capture with stride doubling: the golden dynamic
     length is unknown until the run ends, so start snapshotting every
     [init_stride] dynamic instructions and, whenever 2*[target]
     snapshots have accumulated, drop every other one and double the
     stride. Deterministic, one golden run, bounded live snapshots. *)
  let acc = ref [] in
  (* newest first *)
  let n = ref 0 in
  let stride = ref init_stride in
  let next_at = ref init_stride in
  let on_block st regs block =
    if st.State.dyn >= !next_at then begin
      acc := State.snapshot st ~regs ~block :: !acc;
      incr n;
      if !n >= 2 * target then begin
        (* Keep chronological odd indices — the snapshots sitting near
           multiples of the doubled stride. *)
        let kept = List.filteri (fun i _ -> i land 1 = 1) (List.rev !acc) in
        acc := List.rev kept;
        n := List.length kept;
        stride := !stride * 2
      end;
      next_at :=
        (match !acc with
        | s :: _ -> s.State.s_dyn + !stride
        | [] -> !stride)
    end
  in
  (* The hook only copies state, so this golden run is bit-identical to
     a plain [run_decoded] — campaigns reuse it as their reference. *)
  let golden = Simulator.run_decoded ?fuel ~perfect_cache ~on_block d in
  let snaps = Array.of_list (List.rev !acc) in
  let bytes =
    Array.fold_left (fun a s -> a + State.snapshot_bytes s) 0 snaps
  in
  if M.enabled () then begin
    M.incr ~by:(Array.length snaps) "replay.snapshots";
    M.incr ~by:bytes "replay.snapshot_bytes"
  end;
  { golden; snaps; stride = !stride; bytes }

(* The counter arming the fault, as captured in a snapshot, and the
   event index the fault targets. A snapshot is a valid starting point
   iff counter <= target: the trigger fires when the counter goes from
   target to target+1, which then still lies in the suffix. *)
let counter_of fault (s : State.snapshot) =
  match fault with
  | Fault.Reg_flip _ | Fault.Burst_flip _ -> s.State.s_defs
  | Fault.Mem_flip _ -> s.State.s_mems
  | Fault.Branch_flip _ -> s.State.s_branches
  | Fault.Xcluster_flip _ -> s.State.s_xreads

let target_of = function
  | Fault.Reg_flip { target_slot; _ } | Fault.Burst_flip { target_slot; _ } ->
      target_slot
  | Fault.Mem_flip { target_access; _ } -> target_access
  | Fault.Branch_flip { target_branch } -> target_branch
  | Fault.Xcluster_flip { target_read; _ } -> target_read

let find t fault =
  let target = target_of fault in
  let n = Array.length t.snaps in
  if n = 0 || counter_of fault t.snaps.(0) > target then None
  else begin
    (* Greatest snapshot whose armed counter is still <= target; the
       counters are nondecreasing in chronological order. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if counter_of fault t.snaps.(mid) <= target then lo := mid
      else hi := mid - 1
    done;
    Some t.snaps.(!lo)
  end

let suffix_fraction t (snap : State.snapshot) =
  let g = t.golden.Outcome.dyn_insns in
  if g <= 0 then 1.0
  else float_of_int (g - snap.State.s_dyn) /. float_of_int g
