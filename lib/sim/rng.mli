(** Deterministic random numbers for the Monte-Carlo campaigns.

    A thin wrapper over [Random.State] with explicit seeding so fault
    campaigns are reproducible run to run. *)

type t

val create : seed:int -> t
val int : t -> int -> int
val int64 : t -> int64 -> int64
val split : t -> t

(** [derive ~seed index] deterministically mixes a campaign seed and a
    trial index into an independent per-trial seed (SplitMix64
    finaliser). This is the engine's determinism contract: trial [i] of
    a campaign draws from [create ~seed:(derive ~seed i)] regardless of
    which domain runs it, so parallel and sequential campaigns are
    bit-identical. The result is non-negative. *)
val derive : seed:int -> int -> int
