type termination =
  | Exit of int
  | Recovered of { exit_code : int; retries : int }
  | Detected of int
  | Trapped of Trap.t
  | Timeout

type run = {
  termination : termination;
  cycles : int;
  dyn_insns : int;
  dyn_defs : int;
  dyn_mem : int;
  dyn_branches : int;
  dyn_xreads : int;
  dyn_checks : int;
  dyn_corrections : int;
  dyn_by_role : int array;
  slots_total : int;
  output : string;
  exit_code : int;
  cache : Casted_cache.Hierarchy.stats;
  mem_digest : string;
}

let pp_termination ppf = function
  | Exit c -> Format.fprintf ppf "exit %d" c
  | Recovered { exit_code; retries } ->
      Format.fprintf ppf "exit %d (recovered after %d rollback%s)" exit_code
        retries
        (if retries = 1 then "" else "s")
  | Detected id -> Format.fprintf ppf "error detected (check %d)" id
  | Trapped t -> Format.fprintf ppf "trap: %a" Trap.pp t
  | Timeout -> Format.pp_print_string ppf "timeout"

let ipc r =
  if r.cycles = 0 then 0.0 else float_of_int r.dyn_insns /. float_of_int r.cycles

let occupancy r =
  if r.slots_total = 0 then 0.0
  else float_of_int r.dyn_insns /. float_of_int r.slots_total

let trapped r = match r.termination with Trapped _ -> 1 | _ -> 0

let pp ppf r =
  Format.fprintf ppf "%a in %d cycles, %d insns (ipc %.2f)" pp_termination
    r.termination r.cycles r.dyn_insns (ipc r)
