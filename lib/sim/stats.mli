(** Campaign statistics: Wilson score confidence intervals.

    Monte-Carlo class rates are binomial proportions; the Wilson score
    interval (unlike the naive normal approximation) stays inside
    [0, 1] and behaves sensibly at the extreme rates fault campaigns
    produce (detected rates near 100%, corrupt rates near 0%). ELZAR's
    methodology reports detection rates with exactly such intervals
    over large campaigns. *)

(** [wilson ~z ~successes ~trials] is the Wilson score interval for a
    binomial proportion, as [(lo, hi)] proportions in [0, 1]. [z]
    defaults to 1.96 (95% confidence). An empty sample yields [(0, 1)]
    — total uncertainty. Raises [Invalid_argument] on negative counts
    or [successes > trials]. *)
val wilson : ?z:float -> successes:int -> trials:int -> unit -> float * float

(** Half the width of the Wilson interval, in proportion units. *)
val wilson_halfwidth : ?z:float -> successes:int -> trials:int -> unit -> float
