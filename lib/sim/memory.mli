(** Flat byte-addressable memory arena.

    The arena has hard bounds so that corrupted address registers surface
    as {!Trap.Trap} machine exceptions — the dominant fault outcome the
    paper observes. All accesses are little-endian and must be aligned to
    their width. *)

type t

val create : size:int -> t
val size : t -> int

(** Seed the arena from (address, bytes) segments. *)
val load_image : t -> (int * string) list -> unit

(** [pristine ~size segments] renders the initial memory image once:
    [size] zero bytes with the segments blitted in (bounds-checked).
    The pre-decoded simulator core shares one pristine image across all
    trials of a campaign and restores it per run with a single blit. *)
val pristine : size:int -> (int * string) list -> Bytes.t

(** Fresh working arena initialised from a pristine image (copies). *)
val of_image : Bytes.t -> t

(** [reset t image] re-initialises the arena from the image with one
    [Bytes.blit], no allocation. Raises [Invalid_argument] if the image
    length differs from the arena size. *)
val reset : t -> Bytes.t -> unit

(** [undo_writes t base] re-initialises the arena from [base] by
    blitting back only the pages written since the last {!reset} /
    {!undo_writes} / {!of_image} — O(pages dirtied), not O(size). Only
    valid against the same [base] the arena was last reset from (writes
    are journalled relative to it); raises [Invalid_argument] on a size
    mismatch. *)
val undo_writes : t -> Bytes.t -> unit

(** Sparse snapshot of the pages written since the last reset —
    immutable after capture, safe to share read-only across domains. *)
type delta

(** [delta t] captures the arena's dirty pages, O(pages dirtied). *)
val delta : t -> delta

(** [apply_delta t d] blits the delta's pages into the arena (and
    journals them as dirty, so a later {!undo_writes} removes them
    again). Restoring a snapshot is [undo_writes t base] followed by
    [apply_delta t d]. Raises [Invalid_argument] if [d] was captured
    from an arena of a different size. *)
val apply_delta : t -> delta -> unit

(** Approximate heap footprint of a delta, in bytes. *)
val delta_bytes : delta -> int

(** [read t ~addr ~width ~signed] returns the (sign- or zero-extended)
    value. Raises {!Trap.Trap} on bounds or alignment violations. *)
val read : t -> addr:int64 -> width:Casted_ir.Opcode.width -> signed:bool -> int64

val write : t -> addr:int64 -> width:Casted_ir.Opcode.width -> int64 -> unit

val read_float : t -> addr:int64 -> float
val write_float : t -> addr:int64 -> float -> unit

(** [flip_bit t ~addr ~bit] flips [bit mod 8] of the byte at [addr] —
    the {!Fault.Mem} injection primitive. Addresses outside the arena
    are ignored (a corrupted line can straddle the memory end). *)
val flip_bit : t -> addr:int64 -> bit:int -> unit

(** Copy of [len] bytes starting at [base] (bounds-checked). *)
val extract : t -> base:int -> len:int -> string

(** Fresh copy of the whole arena, suitable for {!reset} /
    {!of_image} — the state-snapshot primitive. *)
val image : t -> Bytes.t
