(** Flat byte-addressable memory arena.

    The arena has hard bounds so that corrupted address registers surface
    as {!Trap.Trap} machine exceptions — the dominant fault outcome the
    paper observes. All accesses are little-endian and must be aligned to
    their width. *)

type t

val create : size:int -> t
val size : t -> int

(** Seed the arena from (address, bytes) segments. *)
val load_image : t -> (int * string) list -> unit

(** [read t ~addr ~width ~signed] returns the (sign- or zero-extended)
    value. Raises {!Trap.Trap} on bounds or alignment violations. *)
val read : t -> addr:int64 -> width:Casted_ir.Opcode.width -> signed:bool -> int64

val write : t -> addr:int64 -> width:Casted_ir.Opcode.width -> int64 -> unit

val read_float : t -> addr:int64 -> float
val write_float : t -> addr:int64 -> float -> unit

(** [flip_bit t ~addr ~bit] flips [bit mod 8] of the byte at [addr] —
    the {!Fault.Mem} injection primitive. Addresses outside the arena
    are ignored (a corrupted line can straddle the memory end). *)
val flip_bit : t -> addr:int64 -> bit:int -> unit

(** Copy of [len] bytes starting at [base] (bounds-checked). *)
val extract : t -> base:int -> len:int -> string
