(** Flat byte-addressable memory arena.

    The arena has hard bounds so that corrupted address registers surface
    as {!Trap.Trap} machine exceptions — the dominant fault outcome the
    paper observes. All accesses are little-endian and must be aligned to
    their width. *)

type t

val create : size:int -> t
val size : t -> int

(** Seed the arena from (address, bytes) segments. *)
val load_image : t -> (int * string) list -> unit

(** [pristine ~size segments] renders the initial memory image once:
    [size] zero bytes with the segments blitted in (bounds-checked).
    The pre-decoded simulator core shares one pristine image across all
    trials of a campaign and restores it per run with a single blit. *)
val pristine : size:int -> (int * string) list -> Bytes.t

(** Fresh working arena initialised from a pristine image (copies). *)
val of_image : Bytes.t -> t

(** [reset t image] re-initialises the arena from the image with one
    [Bytes.blit], no allocation. Raises [Invalid_argument] if the image
    length differs from the arena size. *)
val reset : t -> Bytes.t -> unit

(** [read t ~addr ~width ~signed] returns the (sign- or zero-extended)
    value. Raises {!Trap.Trap} on bounds or alignment violations. *)
val read : t -> addr:int64 -> width:Casted_ir.Opcode.width -> signed:bool -> int64

val write : t -> addr:int64 -> width:Casted_ir.Opcode.width -> int64 -> unit

val read_float : t -> addr:int64 -> float
val write_float : t -> addr:int64 -> float -> unit

(** [flip_bit t ~addr ~bit] flips [bit mod 8] of the byte at [addr] —
    the {!Fault.Mem} injection primitive. Addresses outside the arena
    are ignored (a corrupted line can straddle the memory end). *)
val flip_bit : t -> addr:int64 -> bit:int -> unit

(** Copy of [len] bytes starting at [base] (bounds-checked). *)
val extract : t -> base:int -> len:int -> string
