(** Stage-2 compilation of a pre-decoded program into threaded code:
    one pre-bound closure per instruction, with the opcode arm, operand
    register indices and classes, latency, immediates, branch/callee
    targets and fault-site hooks all resolved at compile time. The hot
    loop is a flat array walk — no per-instruction opcode or class
    dispatch, no fault-option matching, no bounds checks (proven at
    compile time), no allocation beyond what the simulated machine
    itself demands.

    Outcomes are bit-identical to the interpreter ([Simulator.run_decoded]):
    both engines mutate the same [State.t] with the same event ordering,
    and the verify oracle cross-checks them over the whole example
    matrix. Compiled programs are immutable and domain-safe: compile
    once, run from any number of domains concurrently (each run carries
    its own [State.t]). *)

type t
(** A compiled program: the decoded form plus per-function closure
    arrays. Safe to share read-only across domains. *)

val of_decoded : Decode.t -> t
(** Lower a decoded program to threaded code. Costs one pass over the
    program; memoized per schedule in [Engine.Cache]. *)

val decoded : t -> Decode.t
(** The decoded program this was compiled from (shared, not copied). *)

val run :
  ?fault:Fault.t ->
  ?fuel:int ->
  ?with_mem_digest:bool ->
  t ->
  Outcome.run
(** Execute a compiled program from a fresh machine state. Same
    semantics and same results as [Simulator.run_decoded] on the
    underlying decoded program (modulo the profile/on_block hooks, which
    the compiled path does not offer). *)

val run_replayed :
  ?fault:Fault.t ->
  ?fuel:int ->
  ?with_mem_digest:bool ->
  snapshot:State.snapshot ->
  t ->
  Outcome.run
(** Restore a golden-prefix snapshot (captured on the decoded
    interpreter — snapshots are engine independent) and execute only the
    suffix on the compiled path. Same results as
    [Simulator.run_replayed] with the same snapshot and fault. *)
