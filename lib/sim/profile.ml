type entry = { mutable visits : int; mutable cycles : int }

type t = (string * string, entry) Hashtbl.t

let create () = Hashtbl.create 64

let record t ~func ~label ~cycles =
  let key = (func, label) in
  match Hashtbl.find_opt t key with
  | Some e ->
      e.visits <- e.visits + 1;
      e.cycles <- e.cycles + cycles
  | None -> Hashtbl.replace t key { visits = 1; cycles }

let entries t =
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] in
  List.sort
    (fun ((fa, la), a) ((fb, lb), b) ->
      match Int.compare b.cycles a.cycles with
      | 0 -> compare (fa, la) (fb, lb)
      | c -> c)
    all

let total_cycles t = Hashtbl.fold (fun _ e acc -> acc + e.cycles) t 0

type row = {
  func : string;
  label : string;
  visits : int;
  cycles : int;
  share : float;
}

let top ?(n = 10) t =
  let total = max 1 (total_cycles t) in
  List.filteri (fun i _ -> i < n) (entries t)
  |> List.map (fun ((func, label), (e : entry)) ->
         {
           func;
           label;
           visits = e.visits;
           cycles = e.cycles;
           share = float_of_int e.cycles /. float_of_int total;
         })

let render_top ?(n = 10) t =
  let rows =
    List.map
      (fun r ->
        Printf.sprintf "%-28s %10d %12d %6.1f%%"
          (r.func ^ ":" ^ r.label)
          r.visits r.cycles (100.0 *. r.share))
      (top ~n t)
  in
  String.concat "\n"
    (Printf.sprintf "%-28s %10s %12s %7s" "block" "visits" "cycles" "share"
    :: rows)
  ^ "\n"
