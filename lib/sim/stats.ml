let wilson ?(z = 1.96) ~successes ~trials () =
  if successes < 0 || trials < 0 || successes > trials then
    invalid_arg
      (Printf.sprintf "Stats.wilson: bad counts (%d successes, %d trials)"
         successes trials);
  if trials = 0 then (0.0, 1.0)
  else begin
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let spread =
      z /. denom
      *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    (Float.max 0.0 (center -. spread), Float.min 1.0 (center +. spread))
  end

let wilson_halfwidth ?z ~successes ~trials () =
  let lo, hi = wilson ?z ~successes ~trials () in
  (hi -. lo) /. 2.0
