(** Results of a simulated run. *)

type termination =
  | Exit of int  (** [Halt] executed with this exit code *)
  | Recovered of { exit_code : int; retries : int }
      (** [Halt] executed after [retries] region rollbacks repaired one
          or more detections ({!Simulator.run_recovering}) *)
  | Detected of int  (** a [Chk] fired; carries the check's insn id *)
  | Trapped of Trap.t  (** machine exception *)
  | Timeout  (** dynamic instruction budget exhausted *)

type run = {
  termination : termination;
  cycles : int;  (** total execution cycles *)
  dyn_insns : int;  (** dynamic instructions executed *)
  dyn_defs : int;  (** dynamic register slots written; the register
                       fault-injection population. Equal to the number
                       of defining instructions when every instruction
                       defines at most one register. *)
  dyn_mem : int;  (** dynamic memory accesses (loads + stores); the
                      {!Fault.Mem} population *)
  dyn_branches : int;  (** dynamic conditional branches; the
                           {!Fault.Control} population *)
  dyn_xreads : int;  (** operand reads crossing the cluster boundary;
                         the {!Fault.Xcluster} population *)
  dyn_checks : int;  (** dynamic [Chk] instructions executed (the
                         {!Casted_ir.Insn.Check} role count) *)
  dyn_corrections : int;
      (** faults repaired in place by a TMR voting sequence (a
          [Check]-role [Sel] whose agreeing replicas outvoted a
          diverging master copy); always 0 fault-free *)
  dyn_by_role : int array;  (** dynamic count per {!Casted_ir.Insn.role} *)
  slots_total : int;  (** issue slots the machine offered over the run:
                          cycles × clusters × issue width. The single
                          source of truth for slot-occupancy
                          accounting. *)
  output : string;  (** contents of the program's output region *)
  exit_code : int;  (** exit code, or -1 when not [Exit]/[Recovered] *)
  cache : Casted_cache.Hierarchy.stats;
  mem_digest : string;
      (** digest of the whole memory image after the run, or [""] when
          the run was not asked to compute it
          ([Simulator.run ~with_mem_digest:true]). Off the campaign hot
          path: a faulty trial never pays for it. *)
}

val pp_termination : Format.formatter -> termination -> unit
val pp : Format.formatter -> run -> unit

(** Instructions per cycle over the whole run. *)
val ipc : run -> float

(** Dynamic issue-slot occupancy: executed instructions over
    {!field-slots_total} (every instruction occupies one slot). *)
val occupancy : run -> float

(** 1 when the run ended in a machine trap, else 0. *)
val trapped : run -> int
