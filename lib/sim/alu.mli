(** Pure integer/float operation semantics.

    Factored out of the simulator so the unit tests can check each
    operation against OCaml's own arithmetic independently of timing. *)

(** [int_binop op a b]. Raises {!Trap.Trap} [Div_by_zero] for division or
    remainder by zero. [Int64.min_int / -1L] is defined to wrap to
    [Int64.min_int]. Shift amounts are taken modulo 64. *)
val int_binop : Casted_ir.Opcode.t -> int64 -> int64 -> int64

(** [int_immop op a imm] for the register-immediate forms. *)
val int_immop : Casted_ir.Opcode.t -> int64 -> int64 -> int64

val float_binop : Casted_ir.Opcode.t -> float -> float -> float

(** The individual operations, exported so the stage-2 compiler
    ({!Compile}) can bind an opcode's semantics once instead of
    dispatching per executed instruction. *)

val shift_amount : int64 -> int
(** Shift amounts are taken modulo 64. *)

val sdiv : int64 -> int64 -> int64
val srem : int64 -> int64 -> int64
