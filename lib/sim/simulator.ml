module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Cond = Casted_ir.Cond
module Insn = Casted_ir.Insn
module Func = Casted_ir.Func
module Program = Casted_ir.Program
module Config = Casted_machine.Config
module Latency = Casted_machine.Latency
module Schedule = Casted_sched.Schedule
module Hierarchy = Casted_cache.Hierarchy

(* The engine exceptions and run-assembly machinery live in Runtime,
   shared with the closure-threaded compiled engine (Compile); the
   historical names are re-exported here. *)
exception Halted = Runtime.Halted
exception Check_failed = Runtime.Check_failed
exception Out_of_fuel = Runtime.Out_of_fuel

(* All run-mutable machine state (counters, clock, control transfer,
   memory arena, cache model, register files) lives in State; the ctx
   only carries the run's immutable configuration plus the state. This
   split is what makes golden-prefix replay possible: State.snapshot at
   an entry-function block boundary captures the whole machine.
   [args_scratch] is the one exception: a reusable buffer for call
   arguments (consumed by the callee before it executes anything, so
   nested calls can reuse it freely) — the call path allocates no
   argument list. *)
type ctx = {
  d : Decode.t;
  config : Config.t;
  fuel : int;
  fault : Fault.t option;
  profile : Profile.t option;
  on_block : (State.t -> State.regfile -> int -> unit) option;
  st : State.t;
  mutable args_scratch : State.value array;
}

(* Operand access. *)

let reg_need ctx (fr : State.regfile) ~cluster r =
  let idx = Reg.idx r in
  let ready, home =
    match Reg.cls r with
    | Reg.Gp -> (fr.State.gp_ready.(idx), fr.State.gp_home.(idx))
    | Reg.Fp -> (fr.State.fp_ready.(idx), fr.State.fp_home.(idx))
    | Reg.Pr -> (fr.State.pr_ready.(idx), fr.State.pr_home.(idx))
  in
  if home >= 0 && home <> cluster then ready + ctx.config.Config.delay
  else ready

let write_gp (fr : State.regfile) r v ~ready ~home =
  let i = Reg.idx r in
  fr.State.gp.(i) <- v;
  fr.State.gp_ready.(i) <- max fr.State.gp_ready.(i) ready;
  fr.State.gp_home.(i) <- home

let write_fp (fr : State.regfile) r v ~ready ~home =
  let i = Reg.idx r in
  fr.State.fpv.(i) <- v;
  fr.State.fp_ready.(i) <- max fr.State.fp_ready.(i) ready;
  fr.State.fp_home.(i) <- home

let write_pr (fr : State.regfile) r v ~ready ~home =
  let i = Reg.idx r in
  fr.State.prv.(i) <- v;
  fr.State.pr_ready.(i) <- max fr.State.pr_ready.(i) ready;
  fr.State.pr_home.(i) <- home

let write_value fr r v ~ready ~home =
  match (Reg.cls r, v) with
  | Reg.Gp, State.V_gp x -> write_gp fr r x ~ready ~home
  | Reg.Fp, State.V_fp x -> write_fp fr r x ~ready ~home
  | Reg.Pr, State.V_pr x -> write_pr fr r x ~ready ~home
  | _ -> invalid_arg "Simulator: value class mismatch"

(* Cross-cluster-aware operand reads. Every value consumed from a
   register produced on the other cluster travels over the interconnect;
   the Xcluster fault model corrupts one such transfer in flight (the
   register file itself keeps the good value). *)

let xcluster_hit ctx =
  let st = ctx.st in
  st.State.xreads <- st.State.xreads + 1;
  match ctx.fault with
  | Some (Fault.Xcluster_flip { target_read; bit }) ->
      if st.State.xreads = target_read + 1 then Some bit else None
  | Some _ | None -> None

let use_gp ctx (fr : State.regfile) ~cluster r =
  let i = Reg.idx r in
  let v = fr.State.gp.(i) in
  let home = fr.State.gp_home.(i) in
  if home >= 0 && home <> cluster then
    match xcluster_hit ctx with
    | Some bit -> Fault.flip_int ~bit v
    | None -> v
  else v

let use_fp ctx (fr : State.regfile) ~cluster r =
  let i = Reg.idx r in
  let v = fr.State.fpv.(i) in
  let home = fr.State.fp_home.(i) in
  if home >= 0 && home <> cluster then
    match xcluster_hit ctx with
    | Some bit -> Fault.flip_float ~bit v
    | None -> v
  else v

let use_pr ctx (fr : State.regfile) ~cluster r =
  let i = Reg.idx r in
  let v = fr.State.prv.(i) in
  let home = fr.State.pr_home.(i) in
  if home >= 0 && home <> cluster then
    match xcluster_hit ctx with Some _ -> not v | None -> v
  else v

let use_value ctx fr ~cluster r =
  match Reg.cls r with
  | Reg.Gp -> State.V_gp (use_gp ctx fr ~cluster r)
  | Reg.Fp -> State.V_fp (use_fp ctx fr ~cluster r)
  | Reg.Pr -> State.V_pr (use_pr ctx fr ~cluster r)

(* Register-file fault injection: flip bit(s) of one dynamically written
   register slot, right after write-back. Slots are counted one by one,
   so the target is uniform over written slots regardless of how many
   slots an instruction defines. *)
let inject_slot ctx (fr : State.regfile) r =
  let st = ctx.st in
  st.State.defs <- st.State.defs + 1;
  let flip ~bit ~width =
    let i = Reg.idx r in
    match Reg.cls r with
    | Reg.Gp -> fr.State.gp.(i) <- Fault.flip_burst ~bit ~width fr.State.gp.(i)
    | Reg.Fp ->
        fr.State.fpv.(i) <- Fault.flip_float_burst ~bit ~width fr.State.fpv.(i)
    | Reg.Pr -> fr.State.prv.(i) <- not fr.State.prv.(i)
  in
  match ctx.fault with
  | Some (Fault.Reg_flip { target_slot; bit })
    when st.State.defs = target_slot + 1 ->
      flip ~bit ~width:1
  | Some (Fault.Burst_flip { target_slot; bit; width })
    when st.State.defs = target_slot + 1 ->
      flip ~bit ~width
  | Some _ | None -> ()

(* Memory fault injection: after the n-th dynamic access, flip one bit
   of one byte inside the touched 64-byte line — a cache-line upset seen
   by every later read of that line. *)
let touch_mem ctx addr =
  let st = ctx.st in
  st.State.mems <- st.State.mems + 1;
  match ctx.fault with
  | Some (Fault.Mem_flip { target_access; offset; bit })
    when st.State.mems = target_access + 1 ->
      let line =
        Int64.logand addr (Int64.lognot (Int64.of_int (Fault.line_bytes - 1)))
      in
      Memory.flip_bit st.State.mem
        ~addr:(Int64.add line (Int64.of_int offset))
        ~bit
  | Some _ | None -> ()

let max_call_depth = Runtime.max_call_depth
let addr_int = Runtime.addr_int

(* The interpreter proper, over the pre-decoded form (Decode.t): branch
   targets and callees are indices, latencies and role indices are
   baked into each dinsn, and bundle issue runs as plain for-loops over
   state fields — no per-bundle closures or refs, so the hot loop
   allocates only what the simulated machine itself demands (call
   frames, boxed call-boundary values, the rare Ret value).

   [exec_func] consumes the first [nargs] entries of [ctx.args_scratch],
   written by the call site; they are bound into the fresh frame before
   any callee instruction runs, so a nested call overwriting the scratch
   cannot clobber a live argument. *)

let rec exec_func ctx (df : Decode.dfunc) ~nargs : State.value option =
  let st = ctx.st in
  st.State.depth <- st.State.depth + 1;
  if st.State.depth > max_call_depth then raise (Trap.Trap Trap.Stack_overflow);
  let func = df.Decode.func in
  let ready = st.State.time + 1 in
  let fr = State.make_regfile func ~time:ready in
  let params = df.Decode.params in
  if Array.length params <> nargs then
    invalid_arg "Simulator: call arity mismatch";
  let scratch = ctx.args_scratch in
  for i = 0 to nargs - 1 do
    write_value fr params.(i) scratch.(i) ~ready ~home:(-1)
  done;
  let result = exec_blocks ctx fr df ~start:0 in
  st.State.depth <- st.State.depth - 1;
  result

(* The block loop, factored out of exec_func so a replayed run can
   re-enter the entry function at an arbitrary block. At the loop top
   with depth = 1 (entry function, call stack empty) the machine state
   is fully described by State.t + the entry register file — that is
   where the snapshot hook fires, and where State.snapshot is valid. *)
and exec_blocks ctx (fr : State.regfile) (df : Decode.dfunc) ~start :
    State.value option =
  let st = ctx.st in
  let func = df.Decode.func in
  let blocks = df.Decode.blocks in
  let result = ref None in
  let cur = ref start in
  let running = ref true in
  while !running do
    (match ctx.on_block with
    | Some hook when st.State.depth = 1 -> hook st fr !cur
    | Some _ | None -> ());
    let b = blocks.(!cur) in
    (* The static schedule is authoritative for the in-order lockstep
       machine: bundle [i] may not issue before [block_start + at]
       (empty cycles, stripped at decode time, are real NOPs). Dynamic
       stalls (cache misses, cross-block operands) push it further. *)
    let block_start = st.State.time + 1 in
    st.State.xfer <- State.xfer_none;
    st.State.retv <- None;
    let bundles = b.Decode.bundles in
    for i = 0 to Array.length bundles - 1 do
      let db = bundles.(i) in
      exec_bundle ctx fr
        ~not_before:(block_start + db.Decode.at)
        db.Decode.slots
    done;
    (match ctx.profile with
    | Some profile ->
        Profile.record profile ~func:func.Func.name ~label:b.Decode.label
          ~cycles:(st.State.time + 1 - block_start)
    | None -> ());
    if st.State.xfer >= 0 then cur := st.State.xfer
    else if st.State.xfer = State.xfer_return then begin
      result := st.State.retv;
      running := false
    end
    else invalid_arg "Simulator: block finished without control transfer"
  done;
  !result

and exec_bundle ctx fr ~not_before (slots : Decode.dinsn array array) =
  (* Issue time: lockstep across clusters, so one maximum over all
     operand arrival times of the whole bundle. *)
  let st = ctx.st in
  let t0 = st.State.time + 1 in
  st.State.tmax <- (if not_before > t0 then not_before else t0);
  for cluster = 0 to Array.length slots - 1 do
    let insns = slots.(cluster) in
    for k = 0 to Array.length insns - 1 do
      let uses = insns.(k).Decode.uses in
      for u = 0 to Array.length uses - 1 do
        let need = reg_need ctx fr ~cluster uses.(u) in
        if need > st.State.tmax then st.State.tmax <- need
      done
    done
  done;
  let t = st.State.tmax in
  st.State.time <- t;
  (* Read phase: all operands (including loaded memory) are sampled
     before any write of this bundle lands. *)
  for cluster = 0 to Array.length slots - 1 do
    let insns = slots.(cluster) in
    for k = 0 to Array.length insns - 1 do
      exec_insn ctx fr ~cluster ~t insns.(k)
    done
  done

and exec_insn ctx fr ~cluster ~t (di : Decode.dinsn) =
  let st = ctx.st in
  st.State.dyn <- st.State.dyn + 1;
  if st.State.dyn > ctx.fuel then raise Out_of_fuel;
  st.State.roles.(di.Decode.role) <- st.State.roles.(di.Decode.role) + 1;
  let uses = di.Decode.uses in
  let defs = di.Decode.defs in
  let latency = di.Decode.latency in
  (* Two-operand arms read left to right through explicit lets: OCaml
     evaluates function arguments in an unspecified order, and the
     cross-cluster read counter (the Xcluster fault's trigger) must tick
     in a well-defined order that the compiled engine can mirror. *)
  (match di.Decode.op with
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem
  | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Shl | Opcode.Shr
  | Opcode.Sra ->
      let a = use_gp ctx fr ~cluster uses.(0) in
      let b = use_gp ctx fr ~cluster uses.(1) in
      write_gp fr defs.(0)
        (Alu.int_binop di.Decode.op a b)
        ~ready:(t + latency) ~home:cluster
  | Opcode.Addi | Opcode.Muli | Opcode.Andi | Opcode.Xori | Opcode.Shli
  | Opcode.Shri | Opcode.Srai ->
      write_gp fr defs.(0)
        (Alu.int_immop di.Decode.op
           (use_gp ctx fr ~cluster uses.(0))
           di.Decode.imm)
        ~ready:(t + latency) ~home:cluster
  | Opcode.Mov ->
      write_gp fr defs.(0)
        (use_gp ctx fr ~cluster uses.(0))
        ~ready:(t + latency) ~home:cluster
  | Opcode.Movi ->
      write_gp fr defs.(0) di.Decode.imm ~ready:(t + latency) ~home:cluster
  | Opcode.Cmp c ->
      let a = use_gp ctx fr ~cluster uses.(0) in
      let b = use_gp ctx fr ~cluster uses.(1) in
      write_pr fr defs.(0) (Cond.eval_int c a b) ~ready:(t + latency)
        ~home:cluster
  | Opcode.Cmpi c ->
      write_pr fr defs.(0)
        (Cond.eval_int c (use_gp ctx fr ~cluster uses.(0)) di.Decode.imm)
        ~ready:(t + latency) ~home:cluster
  | Opcode.Sel ->
      let p = use_pr ctx fr ~cluster uses.(0) in
      let v =
        if p then use_gp ctx fr ~cluster uses.(1)
        else use_gp ctx fr ~cluster uses.(2)
      in
      (* A voting Sel (role Check, emitted by the TMR pass as
         [v := p ? s1 : r]) repairs a diverged copy in both directions:
         agreeing replicas outvoting the master (p true, v <> r), or
         the master outvoting a corrupted replica (p false — replicas
         never disagree in a fault-free run). Count the repair; the
         master's raw register cell is read directly so the
         cross-cluster accounting stays exactly as without TMR. *)
      if
        di.Decode.role = 2 (* Insn.Check *)
        && ((not p) || not (Int64.equal v fr.State.gp.(Reg.idx uses.(2))))
      then st.State.corrections <- st.State.corrections + 1;
      write_gp fr defs.(0) v ~ready:(t + latency) ~home:cluster
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv ->
      let a = use_fp ctx fr ~cluster uses.(0) in
      let b = use_fp ctx fr ~cluster uses.(1) in
      write_fp fr defs.(0)
        (Alu.float_binop di.Decode.op a b)
        ~ready:(t + latency) ~home:cluster
  | Opcode.Fmov ->
      write_fp fr defs.(0)
        (use_fp ctx fr ~cluster uses.(0))
        ~ready:(t + latency) ~home:cluster
  | Opcode.Fmovi ->
      write_fp fr defs.(0) di.Decode.fimm ~ready:(t + latency) ~home:cluster
  | Opcode.Fcmp c ->
      let a = use_fp ctx fr ~cluster uses.(0) in
      let b = use_fp ctx fr ~cluster uses.(1) in
      write_pr fr defs.(0) (Cond.eval_float c a b) ~ready:(t + latency)
        ~home:cluster
  | Opcode.Itof ->
      write_fp fr defs.(0)
        (Int64.to_float (use_gp ctx fr ~cluster uses.(0)))
        ~ready:(t + latency) ~home:cluster
  | Opcode.Ftoi ->
      let f = use_fp ctx fr ~cluster uses.(0) in
      let v =
        if Float.is_nan f then 0L else Int64.of_float (Float.trunc f)
      in
      write_gp fr defs.(0) v ~ready:(t + latency) ~home:cluster
  | Opcode.Ld w | Opcode.Lds w ->
      let signed =
        match di.Decode.op with Opcode.Lds _ -> true | _ -> false
      in
      let addr = Int64.add (use_gp ctx fr ~cluster uses.(0)) di.Decode.imm in
      let latency =
        Hierarchy.access st.State.hier ~addr:(addr_int addr) ~write:false
      in
      let v = Memory.read st.State.mem ~addr ~width:w ~signed in
      touch_mem ctx addr;
      write_gp fr defs.(0) v ~ready:(t + latency) ~home:cluster
  | Opcode.Fld ->
      let addr = Int64.add (use_gp ctx fr ~cluster uses.(0)) di.Decode.imm in
      let latency =
        Hierarchy.access st.State.hier ~addr:(addr_int addr) ~write:false
      in
      let v = Memory.read_float st.State.mem ~addr in
      touch_mem ctx addr;
      write_fp fr defs.(0) v ~ready:(t + latency) ~home:cluster
  | Opcode.St w ->
      let addr = Int64.add (use_gp ctx fr ~cluster uses.(1)) di.Decode.imm in
      Memory.write st.State.mem ~addr ~width:w
        (use_gp ctx fr ~cluster uses.(0));
      ignore
        (Hierarchy.access st.State.hier ~addr:(addr_int addr) ~write:true);
      touch_mem ctx addr
  | Opcode.Fst ->
      let addr = Int64.add (use_gp ctx fr ~cluster uses.(1)) di.Decode.imm in
      Memory.write_float st.State.mem ~addr (use_fp ctx fr ~cluster uses.(0));
      ignore
        (Hierarchy.access st.State.hier ~addr:(addr_int addr) ~write:true);
      touch_mem ctx addr
  | Opcode.Chk ->
      let ok =
        match Reg.cls uses.(0) with
        | Reg.Gp ->
            let a = use_gp ctx fr ~cluster uses.(0) in
            let b = use_gp ctx fr ~cluster uses.(1) in
            Int64.equal a b
        | Reg.Fp ->
            let a = use_fp ctx fr ~cluster uses.(0) in
            let b = use_fp ctx fr ~cluster uses.(1) in
            Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
        | Reg.Pr ->
            let a = use_pr ctx fr ~cluster uses.(0) in
            let b = use_pr ctx fr ~cluster uses.(1) in
            Bool.equal a b
      in
      if not ok then raise (Check_failed di.Decode.id)
  | Opcode.Br -> st.State.xfer <- di.Decode.target
  | Opcode.Brc flag ->
      let taken = Bool.equal (use_pr ctx fr ~cluster uses.(0)) flag in
      st.State.branches <- st.State.branches + 1;
      let taken =
        match ctx.fault with
        | Some (Fault.Branch_flip { target_branch })
          when st.State.branches = target_branch + 1 ->
            not taken
        | Some _ | None -> taken
      in
      st.State.xfer <- (if taken then di.Decode.target else di.Decode.target2)
  | Opcode.Ret ->
      let v =
        if Array.length uses > 0 then
          Some (use_value ctx fr ~cluster uses.(0))
        else None
      in
      st.State.xfer <- State.xfer_return;
      st.State.retv <- v
  | Opcode.Halt ->
      let code =
        if Array.length uses > 0 then
          Int64.to_int (use_gp ctx fr ~cluster uses.(0))
        else 0
      in
      raise (Halted code)
  | Opcode.Call ->
      let callee = ctx.d.Decode.funcs.(di.Decode.target) in
      let nargs = Array.length uses in
      if Array.length ctx.args_scratch < nargs then
        ctx.args_scratch <- Array.make (max 8 nargs) (State.V_gp 0L);
      let scratch = ctx.args_scratch in
      for i = 0 to nargs - 1 do
        scratch.(i) <- use_value ctx fr ~cluster uses.(i)
      done;
      (* The callee drives xfer/retv for its own blocks; restore the
         caller's pending transfer around the nested execution. *)
      let saved_xfer = st.State.xfer in
      let saved_retv = st.State.retv in
      let result = exec_func ctx callee ~nargs in
      st.State.xfer <- saved_xfer;
      st.State.retv <- saved_retv;
      (match (Array.length defs, result) with
      | 0, _ -> ()
      | 1, Some v ->
          write_value fr defs.(0) v ~ready:(st.State.time + 1) ~home:cluster
      | 1, None -> invalid_arg "Simulator: call expected a return value"
      | _ -> invalid_arg "Simulator: call with multiple defs")
  | Opcode.Cpt ->
      (* Region-boundary marker: the snapshot fires at the enclosing
         block's loop top (run_recovering); executing the marker itself
         does nothing. *)
      ()
  | Opcode.Nop -> ());
  for i = 0 to Array.length defs - 1 do
    inject_slot ctx fr defs.(i)
  done

(* Run assembly (Outcome.run from a finished machine, metrics surface)
   is shared with the compiled engine through Runtime. *)
let finish ctx ~with_mem_digest termination =
  Runtime.finish ~config:ctx.config ~output_base:ctx.d.Decode.output_base
    ~output_len:ctx.d.Decode.output_len
    ~digest_len:ctx.d.Decode.digest_len ~with_mem_digest ctx.st termination

let termination_of = Runtime.termination_of

let run_decoded ?fault ?(fuel = max_int) ?(perfect_cache = false) ?profile
    ?(with_mem_digest = false) ?on_block (d : Decode.t) =
  let st =
    State.fresh ~image:d.Decode.image ~cache:d.Decode.config.Config.cache
      ~perfect:perfect_cache
  in
  let ctx =
    { d; config = d.Decode.config; fuel; fault; profile; on_block; st;
      args_scratch = [||] }
  in
  let entry = d.Decode.funcs.(d.Decode.entry) in
  let termination =
    termination_of (fun () ->
        let (_ : State.value option) = exec_func ctx entry ~nargs:0 in
        (* Entry returned instead of halting: treat as exit 0. *)
        Outcome.Exit 0)
  in
  finish ctx ~with_mem_digest termination

(* Golden-prefix replay: restore a snapshot taken by the golden pass and
   re-run only the entry function's block loop from the captured block.
   With the same decoded program, fuel and fault, the result is
   bit-identical to a full run — the prefix up to the snapshot is, by
   the snapshot's validity condition (taken before the fault's trigger
   event), identical to the golden prefix that produced it. *)
let run_replayed ?fault ?(fuel = max_int) ?(with_mem_digest = false)
    ~snapshot (d : Decode.t) =
  let st, fr = State.restore ~cache:d.Decode.config.Config.cache snapshot in
  let ctx =
    { d; config = d.Decode.config; fuel; fault; profile = None;
      on_block = None; st; args_scratch = [||] }
  in
  let entry = d.Decode.funcs.(d.Decode.entry) in
  let termination =
    termination_of (fun () ->
        let (_ : State.value option) =
          exec_blocks ctx fr entry ~start:snapshot.State.block
        in
        Outcome.Exit 0)
  in
  let module M = Casted_obs.Metrics in
  if M.enabled () then M.incr "sim.replays";
  finish ctx ~with_mem_digest termination

(* Region rollback: execute with a snapshot taken at every
   checkpoint-flagged block top of the entry function; when a check
   fires (or the machine traps), restore the latest snapshot and
   re-execute with the fault disarmed — the injected upset is a
   transient, so the retry sees clean hardware. A corrupted checkpoint
   (the fault landed before the snapshot its detection fires after)
   re-fails deterministically and exhausts the bounded retry budget, in
   which case the original failure is reported. Work thrown away by
   failed attempts is folded into the final run's [cycles]/[dyn_insns]
   so recovery pays its true cost. *)
let run_recovering ?fault ?(fuel = max_int) ?(with_mem_digest = false)
    ~retry_budget (d : Decode.t) =
  let entry = d.Decode.funcs.(d.Decode.entry) in
  let eblocks = entry.Decode.blocks in
  let latest = ref None in
  let on_block st fr cur =
    if eblocks.(cur).Decode.checkpoint then
      latest := Some (State.snapshot st ~regs:fr ~block:cur)
  in
  let wasted_cycles = ref 0 in
  let wasted_dyn = ref 0 in
  let rec attempt ~fault ~retries ~(from : State.snapshot option) =
    let st, runner =
      match from with
      | None ->
          let st =
            State.fresh ~image:d.Decode.image
              ~cache:d.Decode.config.Config.cache ~perfect:false
          in
          ( st,
            fun ctx ->
              let (_ : State.value option) = exec_func ctx entry ~nargs:0 in
              () )
      | Some snap ->
          let st, fr =
            State.restore ~cache:d.Decode.config.Config.cache snap
          in
          ( st,
            fun ctx ->
              let (_ : State.value option) =
                exec_blocks ctx fr entry ~start:snap.State.block
              in
              () )
    in
    let ctx =
      { d; config = d.Decode.config; fuel; fault; profile = None;
        on_block = Some on_block; st; args_scratch = [||] }
    in
    let assemble termination =
      let r = finish ctx ~with_mem_digest termination in
      if !wasted_cycles = 0 && !wasted_dyn = 0 then r
      else
        let cycles = r.Outcome.cycles + !wasted_cycles in
        {
          r with
          Outcome.cycles;
          dyn_insns = r.Outcome.dyn_insns + !wasted_dyn;
          slots_total =
            cycles * ctx.config.Config.clusters
            * ctx.config.Config.issue_width;
        }
    in
    let outcome =
      try
        runner ctx;
        Ok (Outcome.Exit 0)
      with
      | Halted code ->
          Ok
            (if retries > 0 then
               Outcome.Recovered { exit_code = code; retries }
             else Outcome.Exit code)
      | Out_of_fuel -> Ok Outcome.Timeout
      | Check_failed id -> Error (Outcome.Detected id)
      | Trap.Trap tr -> Error (Outcome.Trapped tr)
    in
    match outcome with
    | Ok termination -> assemble termination
    | Error termination -> (
        match !latest with
        | Some snap when retries < retry_budget ->
            wasted_cycles :=
              !wasted_cycles + (st.State.time - snap.State.s_time);
            wasted_dyn := !wasted_dyn + (st.State.dyn - snap.State.s_dyn);
            Casted_obs.Metrics.incr "sim.rollbacks";
            attempt ~fault:None ~retries:(retries + 1) ~from:(Some snap)
        | _ -> assemble termination)
  in
  attempt ~fault ~retries:0 ~from:None

let run ?fault ?fuel ?perfect_cache ?profile ?with_mem_digest sched =
  run_decoded ?fault ?fuel ?perfect_cache ?profile ?with_mem_digest
    (Decode.of_schedule sched)

(* Stage-2 execution: the closure-threaded engine (Compile), re-exported
   here so every run entry point lives behind one module. *)
let run_compiled ?fault ?fuel ?with_mem_digest p =
  Compile.run ?fault ?fuel ?with_mem_digest p

let run_compiled_replayed ?fault ?fuel ?with_mem_digest ~snapshot p =
  Compile.run_replayed ?fault ?fuel ?with_mem_digest ~snapshot p
