module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Cond = Casted_ir.Cond
module Insn = Casted_ir.Insn
module Func = Casted_ir.Func
module Program = Casted_ir.Program
module Config = Casted_machine.Config
module Latency = Casted_machine.Latency
module Schedule = Casted_sched.Schedule
module Hierarchy = Casted_cache.Hierarchy

exception Halted of int
exception Check_failed of int
exception Out_of_fuel

(* Per-call register file with scoreboard metadata: for every register we
   track its value, the time it becomes readable and the cluster that
   produced it (cross-cluster reads pay the interconnect delay). *)
type frame = {
  gp : int64 array;
  fpv : float array;
  prv : bool array;
  gp_ready : int array;
  fp_ready : int array;
  pr_ready : int array;
  gp_home : int array;
  fp_home : int array;
  pr_home : int array;
}

let make_frame func ~time =
  let n c = max 1 (Func.reg_count func c) in
  let ngp = n Reg.Gp and nfp = n Reg.Fp and npr = n Reg.Pr in
  {
    gp = Array.make ngp 0L;
    fpv = Array.make nfp 0.0;
    prv = Array.make npr false;
    gp_ready = Array.make ngp time;
    fp_ready = Array.make nfp time;
    pr_ready = Array.make npr time;
    gp_home = Array.make ngp (-1);
    fp_home = Array.make nfp (-1);
    pr_home = Array.make npr (-1);
  }

(* A value crossing a call boundary. *)
type value = V_gp of int64 | V_fp of float | V_pr of bool

type ctx = {
  sched : Schedule.t;
  config : Config.t;
  mem : Memory.t;
  hier : Hierarchy.t;
  fuel : int;
  fault : Fault.t option;
  profile : Profile.t option;
  mutable time : int;  (* issue time of the last issued bundle *)
  mutable dyn : int;
  mutable defs : int;  (* dynamic register slots written *)
  mutable mems : int;  (* dynamic memory accesses (loads + stores) *)
  mutable branches : int;  (* dynamic conditional branches *)
  mutable xreads : int;  (* operand reads crossing the cluster boundary *)
  roles : int array;  (* dynamic count per role *)
  mutable depth : int;
}

let role_index = function
  | Insn.Original -> 0
  | Insn.Replica -> 1
  | Insn.Check -> 2
  | Insn.Shadow_copy -> 3

(* Operand access. *)

let reg_need ctx fr ~cluster r =
  let idx = Reg.idx r in
  let ready, home =
    match Reg.cls r with
    | Reg.Gp -> (fr.gp_ready.(idx), fr.gp_home.(idx))
    | Reg.Fp -> (fr.fp_ready.(idx), fr.fp_home.(idx))
    | Reg.Pr -> (fr.pr_ready.(idx), fr.pr_home.(idx))
  in
  if home >= 0 && home <> cluster then ready + ctx.config.Config.delay
  else ready

let write_gp fr r v ~ready ~home =
  let i = Reg.idx r in
  fr.gp.(i) <- v;
  fr.gp_ready.(i) <- max fr.gp_ready.(i) ready;
  fr.gp_home.(i) <- home

let write_fp fr r v ~ready ~home =
  let i = Reg.idx r in
  fr.fpv.(i) <- v;
  fr.fp_ready.(i) <- max fr.fp_ready.(i) ready;
  fr.fp_home.(i) <- home

let write_pr fr r v ~ready ~home =
  let i = Reg.idx r in
  fr.prv.(i) <- v;
  fr.pr_ready.(i) <- max fr.pr_ready.(i) ready;
  fr.pr_home.(i) <- home

let write_value fr r v ~ready ~home =
  match (Reg.cls r, v) with
  | Reg.Gp, V_gp x -> write_gp fr r x ~ready ~home
  | Reg.Fp, V_fp x -> write_fp fr r x ~ready ~home
  | Reg.Pr, V_pr x -> write_pr fr r x ~ready ~home
  | _ -> invalid_arg "Simulator: value class mismatch"

(* Cross-cluster-aware operand reads. Every value consumed from a
   register produced on the other cluster travels over the interconnect;
   the Xcluster fault model corrupts one such transfer in flight (the
   register file itself keeps the good value). *)

let xcluster_hit ctx =
  ctx.xreads <- ctx.xreads + 1;
  match ctx.fault with
  | Some (Fault.Xcluster_flip { target_read; bit }) ->
      if ctx.xreads = target_read + 1 then Some bit else None
  | Some _ | None -> None

let use_gp ctx fr ~cluster r =
  let i = Reg.idx r in
  let v = fr.gp.(i) in
  let home = fr.gp_home.(i) in
  if home >= 0 && home <> cluster then
    match xcluster_hit ctx with
    | Some bit -> Fault.flip_int ~bit v
    | None -> v
  else v

let use_fp ctx fr ~cluster r =
  let i = Reg.idx r in
  let v = fr.fpv.(i) in
  let home = fr.fp_home.(i) in
  if home >= 0 && home <> cluster then
    match xcluster_hit ctx with
    | Some bit -> Fault.flip_float ~bit v
    | None -> v
  else v

let use_pr ctx fr ~cluster r =
  let i = Reg.idx r in
  let v = fr.prv.(i) in
  let home = fr.pr_home.(i) in
  if home >= 0 && home <> cluster then
    match xcluster_hit ctx with Some _ -> not v | None -> v
  else v

let use_value ctx fr ~cluster r =
  match Reg.cls r with
  | Reg.Gp -> V_gp (use_gp ctx fr ~cluster r)
  | Reg.Fp -> V_fp (use_fp ctx fr ~cluster r)
  | Reg.Pr -> V_pr (use_pr ctx fr ~cluster r)

(* Register-file fault injection: flip bit(s) of one dynamically written
   register slot, right after write-back. Slots are counted one by one,
   so the target is uniform over written slots regardless of how many
   slots an instruction defines. *)
let inject_slot ctx fr r =
  ctx.defs <- ctx.defs + 1;
  let flip ~bit ~width =
    let i = Reg.idx r in
    match Reg.cls r with
    | Reg.Gp -> fr.gp.(i) <- Fault.flip_burst ~bit ~width fr.gp.(i)
    | Reg.Fp -> fr.fpv.(i) <- Fault.flip_float_burst ~bit ~width fr.fpv.(i)
    | Reg.Pr -> fr.prv.(i) <- not fr.prv.(i)
  in
  match ctx.fault with
  | Some (Fault.Reg_flip { target_slot; bit }) when ctx.defs = target_slot + 1
    ->
      flip ~bit ~width:1
  | Some (Fault.Burst_flip { target_slot; bit; width })
    when ctx.defs = target_slot + 1 ->
      flip ~bit ~width
  | Some _ | None -> ()

(* Memory fault injection: after the n-th dynamic access, flip one bit
   of one byte inside the touched 64-byte line — a cache-line upset seen
   by every later read of that line. *)
let touch_mem ctx addr =
  ctx.mems <- ctx.mems + 1;
  match ctx.fault with
  | Some (Fault.Mem_flip { target_access; offset; bit })
    when ctx.mems = target_access + 1 ->
      let line =
        Int64.logand addr (Int64.lognot (Int64.of_int (Fault.line_bytes - 1)))
      in
      Memory.flip_bit ctx.mem ~addr:(Int64.add line (Int64.of_int offset)) ~bit
  | Some _ | None -> ()

(* What a bundle instruction decided to do with control flow. *)
type transfer = Fallthrough | Goto of string | Return of value option

let max_call_depth = 10_000

let rec exec_func ctx (fs : Schedule.func_schedule) (args : value list) :
    value option =
  ctx.depth <- ctx.depth + 1;
  if ctx.depth > max_call_depth then raise (Trap.Trap Trap.Stack_overflow);
  let func = fs.Schedule.func in
  let fr = make_frame func ~time:(ctx.time + 1) in
  List.iter2
    (fun r v -> write_value fr r v ~ready:(ctx.time + 1) ~home:(-1))
    func.Func.params args;
  let block_of label =
    let n = Array.length fs.Schedule.blocks in
    let rec go i =
      if i >= n then invalid_arg ("Simulator: unknown block " ^ label)
      else if fs.Schedule.blocks.(i).Schedule.label = label then
        fs.Schedule.blocks.(i)
      else go (i + 1)
    in
    go 0
  in
  let rec run_block (b : Schedule.block_schedule) =
    let transfer = ref Fallthrough in
    (* The static schedule is authoritative for the in-order lockstep
       machine: bundle [i] may not issue before [block_start + i]
       (empty cycles are real NOPs). Dynamic stalls (cache misses,
       cross-block operands) push it further. *)
    let block_start = ctx.time + 1 in
    Array.iteri
      (fun idx bundle ->
        exec_bundle ctx fr ~not_before:(block_start + idx) bundle transfer)
      b.Schedule.bundles;
    (match ctx.profile with
    | Some profile ->
        Profile.record profile ~func:func.Func.name ~label:b.Schedule.label
          ~cycles:(ctx.time + 1 - block_start)
    | None -> ());
    match !transfer with
    | Goto label -> run_block (block_of label)
    | Return v ->
        ctx.depth <- ctx.depth - 1;
        v
    | Fallthrough ->
        invalid_arg "Simulator: block finished without control transfer"
  in
  run_block fs.Schedule.blocks.(0)

and exec_bundle ctx fr ~not_before (bundle : Schedule.bundle) transfer =
  let any = Array.exists (fun insns -> Array.length insns > 0) bundle in
  if any then begin
    (* Issue time: lockstep across clusters, so one maximum over all
       operand arrival times of the whole bundle. *)
    let t = ref (max not_before (ctx.time + 1)) in
    Array.iteri
      (fun cluster insns ->
        Array.iter
          (fun (insn : Insn.t) ->
            Array.iter
              (fun r -> t := max !t (reg_need ctx fr ~cluster r))
              insn.Insn.uses)
          insns)
      bundle;
    let t = !t in
    ctx.time <- t;
    (* Read phase: all operands (including loaded memory) are sampled
       before any write of this bundle lands. *)
    let lat op = Latency.of_op ctx.config.Config.latencies op in
    Array.iteri
      (fun cluster insns ->
        Array.iter
          (fun insn -> exec_insn ctx fr ~cluster ~t ~lat insn transfer)
          insns)
      bundle
  end

and exec_insn ctx fr ~cluster ~t ~lat (insn : Insn.t) transfer =
  ctx.dyn <- ctx.dyn + 1;
  if ctx.dyn > ctx.fuel then raise Out_of_fuel;
  ctx.roles.(role_index insn.Insn.role) <-
    ctx.roles.(role_index insn.Insn.role) + 1;
  let op = insn.Insn.op in
  let u i = insn.Insn.uses.(i) in
  let d i = insn.Insn.defs.(i) in
  let ugp r = use_gp ctx fr ~cluster r in
  let ufp r = use_fp ctx fr ~cluster r in
  let upr r = use_pr ctx fr ~cluster r in
  let finish_def () = Array.iter (inject_slot ctx fr) insn.Insn.defs in
  let set_gp r v ~latency =
    write_gp fr r v ~ready:(t + latency) ~home:cluster
  in
  let set_fp r v ~latency =
    write_fp fr r v ~ready:(t + latency) ~home:cluster
  in
  let set_pr r v ~latency =
    write_pr fr r v ~ready:(t + latency) ~home:cluster
  in
  (match op with
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem
  | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Shl | Opcode.Shr
  | Opcode.Sra ->
      set_gp (d 0) (Alu.int_binop op (ugp (u 0)) (ugp (u 1))) ~latency:(lat op)
  | Opcode.Addi | Opcode.Muli | Opcode.Andi | Opcode.Xori | Opcode.Shli
  | Opcode.Shri | Opcode.Srai ->
      set_gp (d 0)
        (Alu.int_immop op (ugp (u 0)) insn.Insn.imm)
        ~latency:(lat op)
  | Opcode.Mov -> set_gp (d 0) (ugp (u 0)) ~latency:(lat op)
  | Opcode.Movi -> set_gp (d 0) insn.Insn.imm ~latency:(lat op)
  | Opcode.Cmp c ->
      set_pr (d 0) (Cond.eval_int c (ugp (u 0)) (ugp (u 1))) ~latency:(lat op)
  | Opcode.Cmpi c ->
      set_pr (d 0)
        (Cond.eval_int c (ugp (u 0)) insn.Insn.imm)
        ~latency:(lat op)
  | Opcode.Sel ->
      let v = if upr (u 0) then ugp (u 1) else ugp (u 2) in
      set_gp (d 0) v ~latency:(lat op)
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv ->
      set_fp (d 0)
        (Alu.float_binop op (ufp (u 0)) (ufp (u 1)))
        ~latency:(lat op)
  | Opcode.Fmov -> set_fp (d 0) (ufp (u 0)) ~latency:(lat op)
  | Opcode.Fmovi -> set_fp (d 0) insn.Insn.fimm ~latency:(lat op)
  | Opcode.Fcmp c ->
      set_pr (d 0)
        (Cond.eval_float c (ufp (u 0)) (ufp (u 1)))
        ~latency:(lat op)
  | Opcode.Itof ->
      set_fp (d 0) (Int64.to_float (ugp (u 0))) ~latency:(lat op)
  | Opcode.Ftoi ->
      let f = ufp (u 0) in
      let v =
        if Float.is_nan f then 0L else Int64.of_float (Float.trunc f)
      in
      set_gp (d 0) v ~latency:(lat op)
  | Opcode.Ld w | Opcode.Lds w ->
      let signed = match op with Opcode.Lds _ -> true | _ -> false in
      let addr = Int64.add (ugp (u 0)) insn.Insn.imm in
      let latency = Hierarchy.access ctx.hier ~addr:(addr_int addr) ~write:false in
      let v = Memory.read ctx.mem ~addr ~width:w ~signed in
      touch_mem ctx addr;
      set_gp (d 0) v ~latency
  | Opcode.Fld ->
      let addr = Int64.add (ugp (u 0)) insn.Insn.imm in
      let latency = Hierarchy.access ctx.hier ~addr:(addr_int addr) ~write:false in
      let v = Memory.read_float ctx.mem ~addr in
      touch_mem ctx addr;
      set_fp (d 0) v ~latency
  | Opcode.St w ->
      let addr = Int64.add (ugp (u 1)) insn.Insn.imm in
      Memory.write ctx.mem ~addr ~width:w (ugp (u 0));
      ignore (Hierarchy.access ctx.hier ~addr:(addr_int addr) ~write:true);
      touch_mem ctx addr
  | Opcode.Fst ->
      let addr = Int64.add (ugp (u 1)) insn.Insn.imm in
      Memory.write_float ctx.mem ~addr (ufp (u 0));
      ignore (Hierarchy.access ctx.hier ~addr:(addr_int addr) ~write:true);
      touch_mem ctx addr
  | Opcode.Chk ->
      let ok =
        match Reg.cls (u 0) with
        | Reg.Gp -> Int64.equal (ugp (u 0)) (ugp (u 1))
        | Reg.Fp ->
            Int64.equal
              (Int64.bits_of_float (ufp (u 0)))
              (Int64.bits_of_float (ufp (u 1)))
        | Reg.Pr -> Bool.equal (upr (u 0)) (upr (u 1))
      in
      if not ok then raise (Check_failed insn.Insn.id)
  | Opcode.Br -> transfer := Goto insn.Insn.target
  | Opcode.Brc flag ->
      let taken = Bool.equal (upr (u 0)) flag in
      ctx.branches <- ctx.branches + 1;
      let taken =
        match ctx.fault with
        | Some (Fault.Branch_flip { target_branch })
          when ctx.branches = target_branch + 1 ->
            not taken
        | Some _ | None -> taken
      in
      transfer :=
        Goto (if taken then insn.Insn.target else insn.Insn.target2)
  | Opcode.Ret ->
      let v =
        if Array.length insn.Insn.uses > 0 then
          Some (use_value ctx fr ~cluster (u 0))
        else None
      in
      transfer := Return v
  | Opcode.Halt ->
      let code =
        if Array.length insn.Insn.uses > 0 then Int64.to_int (ugp (u 0))
        else 0
      in
      raise (Halted code)
  | Opcode.Call ->
      let callee = Schedule.find_func ctx.sched insn.Insn.target in
      let args =
        List.map (use_value ctx fr ~cluster) (Array.to_list insn.Insn.uses)
      in
      let result = exec_func ctx callee args in
      (match (Array.length insn.Insn.defs, result) with
      | 0, _ -> ()
      | 1, Some v -> write_value fr (d 0) v ~ready:(ctx.time + 1) ~home:cluster
      | 1, None -> invalid_arg "Simulator: call expected a return value"
      | _ -> invalid_arg "Simulator: call with multiple defs")
  | Opcode.Nop -> ());
  finish_def ()

and addr_int addr =
  (* The cache model indexes by machine address; negative or huge
     addresses would have trapped in Memory first, but the cache access
     happens before the bounds check for loads, so clamp defensively. *)
  if Int64.compare addr 0L < 0 then 0
  else Int64.to_int (Int64.logand addr 0x3FFF_FFFFL)

(* Surface one finished run into the metrics registry. Runs entirely on
   the calling domain's shard, after the simulation is done, so it can
   never perturb the simulation itself. *)
let record_metrics (r : Outcome.run) =
  let module M = Casted_obs.Metrics in
  if M.enabled () then begin
    M.incr "sim.runs";
    M.incr ~by:r.Outcome.cycles "sim.cycles";
    M.incr ~by:r.Outcome.dyn_insns "sim.insns";
    M.incr ~by:r.Outcome.dyn_mem "sim.mem_accesses";
    M.incr ~by:r.Outcome.dyn_branches "sim.branches";
    M.incr ~by:r.Outcome.dyn_xreads "sim.xcluster_reads";
    M.incr ~by:r.Outcome.dyn_checks "sim.checks_executed";
    M.incr ~by:r.Outcome.slots_total "sim.slots_offered";
    M.incr ~by:(Outcome.trapped r) "sim.traps";
    (match r.Outcome.termination with
    | Outcome.Detected _ -> M.incr "sim.detections"
    | _ -> ());
    M.observe "sim.occupancy" (Outcome.occupancy r);
    let c = r.Outcome.cache in
    M.incr ~by:c.Casted_cache.Hierarchy.l1_hits "cache.l1.hits";
    M.incr ~by:c.Casted_cache.Hierarchy.l1_misses "cache.l1.misses";
    M.incr ~by:c.Casted_cache.Hierarchy.l2_hits "cache.l2.hits";
    M.incr ~by:c.Casted_cache.Hierarchy.l2_misses "cache.l2.misses";
    M.incr ~by:c.Casted_cache.Hierarchy.l3_hits "cache.l3.hits";
    M.incr ~by:c.Casted_cache.Hierarchy.l3_misses "cache.l3.misses";
    M.incr ~by:c.Casted_cache.Hierarchy.writebacks "cache.writebacks"
  end

let run ?fault ?(fuel = max_int) ?(perfect_cache = false) ?profile sched =
  let program = sched.Schedule.program in
  let mem = Memory.create ~size:program.Program.mem_size in
  Memory.load_image mem program.Program.data;
  let hier =
    let cc = sched.Schedule.config.Config.cache in
    if perfect_cache then Hierarchy.perfect cc else Hierarchy.create cc
  in
  let ctx =
    {
      sched;
      config = sched.Schedule.config;
      mem;
      hier;
      fuel;
      fault;
      profile;
      time = -1;
      dyn = 0;
      defs = 0;
      mems = 0;
      branches = 0;
      xreads = 0;
      roles = Array.make 4 0;
      depth = 0;
    }
  in
  let entry = Schedule.find_func sched program.Program.entry in
  let termination =
    try
      let (_ : value option) = exec_func ctx entry [] in
      (* Entry returned instead of halting: treat as exit 0. *)
      Outcome.Exit 0
    with
    | Halted code -> Outcome.Exit code
    | Check_failed id -> Outcome.Detected id
    | Trap.Trap t -> Outcome.Trapped t
    | Out_of_fuel -> Outcome.Timeout
  in
  let output =
    Memory.extract mem ~base:program.Program.output_base
      ~len:program.Program.output_len
  in
  let cycles = ctx.time + 1 in
  let r =
    {
      Outcome.termination;
      cycles;
      dyn_insns = ctx.dyn;
      dyn_defs = ctx.defs;
      dyn_mem = ctx.mems;
      dyn_branches = ctx.branches;
      dyn_xreads = ctx.xreads;
      dyn_checks = ctx.roles.(role_index Insn.Check);
      dyn_by_role = ctx.roles;
      slots_total =
        cycles * ctx.config.Config.clusters * ctx.config.Config.issue_width;
      output;
      exit_code = (match termination with Outcome.Exit c -> c | _ -> -1);
      cache = Hierarchy.stats hier;
    }
  in
  record_metrics r;
  r
