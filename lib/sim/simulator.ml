module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Cond = Casted_ir.Cond
module Insn = Casted_ir.Insn
module Func = Casted_ir.Func
module Program = Casted_ir.Program
module Config = Casted_machine.Config
module Latency = Casted_machine.Latency
module Schedule = Casted_sched.Schedule
module Hierarchy = Casted_cache.Hierarchy

exception Halted of int
exception Check_failed of int
exception Out_of_fuel

(* Per-call register file with scoreboard metadata: for every register we
   track its value, the time it becomes readable and the cluster that
   produced it (cross-cluster reads pay the interconnect delay). *)
type frame = {
  gp : int64 array;
  fpv : float array;
  prv : bool array;
  gp_ready : int array;
  fp_ready : int array;
  pr_ready : int array;
  gp_home : int array;
  fp_home : int array;
  pr_home : int array;
}

let make_frame func ~time =
  let n c = max 1 (Func.reg_count func c) in
  let ngp = n Reg.Gp and nfp = n Reg.Fp and npr = n Reg.Pr in
  {
    gp = Array.make ngp 0L;
    fpv = Array.make nfp 0.0;
    prv = Array.make npr false;
    gp_ready = Array.make ngp time;
    fp_ready = Array.make nfp time;
    pr_ready = Array.make npr time;
    gp_home = Array.make ngp (-1);
    fp_home = Array.make nfp (-1);
    pr_home = Array.make npr (-1);
  }

(* A value crossing a call boundary. *)
type value = V_gp of int64 | V_fp of float | V_pr of bool

(* Control transfer is a mutable ctx field instead of a per-block ref so
   the bundle-issue loop allocates nothing: [xfer_none] while the block
   runs, a block index after a (taken) branch, [xfer_return] after Ret
   (with the value parked in [retv]). Nested calls save and restore the
   pair around the callee. *)
let xfer_none = -2
let xfer_return = -1

type ctx = {
  d : Decode.t;
  config : Config.t;
  mem : Memory.t;
  hier : Hierarchy.t;
  fuel : int;
  fault : Fault.t option;
  profile : Profile.t option;
  mutable time : int;  (* issue time of the last issued bundle *)
  mutable dyn : int;
  mutable defs : int;  (* dynamic register slots written *)
  mutable mems : int;  (* dynamic memory accesses (loads + stores) *)
  mutable branches : int;  (* dynamic conditional branches *)
  mutable xreads : int;  (* operand reads crossing the cluster boundary *)
  roles : int array;  (* dynamic count per role *)
  mutable depth : int;
  mutable tmax : int;  (* scratch for bundle issue-time computation *)
  mutable xfer : int;
  mutable retv : value option;
}

let role_index = function
  | Insn.Original -> 0
  | Insn.Replica -> 1
  | Insn.Check -> 2
  | Insn.Shadow_copy -> 3

(* Operand access. *)

let reg_need ctx fr ~cluster r =
  let idx = Reg.idx r in
  let ready, home =
    match Reg.cls r with
    | Reg.Gp -> (fr.gp_ready.(idx), fr.gp_home.(idx))
    | Reg.Fp -> (fr.fp_ready.(idx), fr.fp_home.(idx))
    | Reg.Pr -> (fr.pr_ready.(idx), fr.pr_home.(idx))
  in
  if home >= 0 && home <> cluster then ready + ctx.config.Config.delay
  else ready

let write_gp fr r v ~ready ~home =
  let i = Reg.idx r in
  fr.gp.(i) <- v;
  fr.gp_ready.(i) <- max fr.gp_ready.(i) ready;
  fr.gp_home.(i) <- home

let write_fp fr r v ~ready ~home =
  let i = Reg.idx r in
  fr.fpv.(i) <- v;
  fr.fp_ready.(i) <- max fr.fp_ready.(i) ready;
  fr.fp_home.(i) <- home

let write_pr fr r v ~ready ~home =
  let i = Reg.idx r in
  fr.prv.(i) <- v;
  fr.pr_ready.(i) <- max fr.pr_ready.(i) ready;
  fr.pr_home.(i) <- home

let write_value fr r v ~ready ~home =
  match (Reg.cls r, v) with
  | Reg.Gp, V_gp x -> write_gp fr r x ~ready ~home
  | Reg.Fp, V_fp x -> write_fp fr r x ~ready ~home
  | Reg.Pr, V_pr x -> write_pr fr r x ~ready ~home
  | _ -> invalid_arg "Simulator: value class mismatch"

(* Cross-cluster-aware operand reads. Every value consumed from a
   register produced on the other cluster travels over the interconnect;
   the Xcluster fault model corrupts one such transfer in flight (the
   register file itself keeps the good value). *)

let xcluster_hit ctx =
  ctx.xreads <- ctx.xreads + 1;
  match ctx.fault with
  | Some (Fault.Xcluster_flip { target_read; bit }) ->
      if ctx.xreads = target_read + 1 then Some bit else None
  | Some _ | None -> None

let use_gp ctx fr ~cluster r =
  let i = Reg.idx r in
  let v = fr.gp.(i) in
  let home = fr.gp_home.(i) in
  if home >= 0 && home <> cluster then
    match xcluster_hit ctx with
    | Some bit -> Fault.flip_int ~bit v
    | None -> v
  else v

let use_fp ctx fr ~cluster r =
  let i = Reg.idx r in
  let v = fr.fpv.(i) in
  let home = fr.fp_home.(i) in
  if home >= 0 && home <> cluster then
    match xcluster_hit ctx with
    | Some bit -> Fault.flip_float ~bit v
    | None -> v
  else v

let use_pr ctx fr ~cluster r =
  let i = Reg.idx r in
  let v = fr.prv.(i) in
  let home = fr.pr_home.(i) in
  if home >= 0 && home <> cluster then
    match xcluster_hit ctx with Some _ -> not v | None -> v
  else v

let use_value ctx fr ~cluster r =
  match Reg.cls r with
  | Reg.Gp -> V_gp (use_gp ctx fr ~cluster r)
  | Reg.Fp -> V_fp (use_fp ctx fr ~cluster r)
  | Reg.Pr -> V_pr (use_pr ctx fr ~cluster r)

(* Register-file fault injection: flip bit(s) of one dynamically written
   register slot, right after write-back. Slots are counted one by one,
   so the target is uniform over written slots regardless of how many
   slots an instruction defines. *)
let inject_slot ctx fr r =
  ctx.defs <- ctx.defs + 1;
  let flip ~bit ~width =
    let i = Reg.idx r in
    match Reg.cls r with
    | Reg.Gp -> fr.gp.(i) <- Fault.flip_burst ~bit ~width fr.gp.(i)
    | Reg.Fp -> fr.fpv.(i) <- Fault.flip_float_burst ~bit ~width fr.fpv.(i)
    | Reg.Pr -> fr.prv.(i) <- not fr.prv.(i)
  in
  match ctx.fault with
  | Some (Fault.Reg_flip { target_slot; bit }) when ctx.defs = target_slot + 1
    ->
      flip ~bit ~width:1
  | Some (Fault.Burst_flip { target_slot; bit; width })
    when ctx.defs = target_slot + 1 ->
      flip ~bit ~width
  | Some _ | None -> ()

(* Memory fault injection: after the n-th dynamic access, flip one bit
   of one byte inside the touched 64-byte line — a cache-line upset seen
   by every later read of that line. *)
let touch_mem ctx addr =
  ctx.mems <- ctx.mems + 1;
  match ctx.fault with
  | Some (Fault.Mem_flip { target_access; offset; bit })
    when ctx.mems = target_access + 1 ->
      let line =
        Int64.logand addr (Int64.lognot (Int64.of_int (Fault.line_bytes - 1)))
      in
      Memory.flip_bit ctx.mem ~addr:(Int64.add line (Int64.of_int offset)) ~bit
  | Some _ | None -> ()

let max_call_depth = 10_000

let addr_int addr =
  (* The cache model indexes by machine address; negative or huge
     addresses would have trapped in Memory first, but the cache access
     happens before the bounds check for loads, so clamp defensively. *)
  if Int64.compare addr 0L < 0 then 0
  else Int64.to_int (Int64.logand addr 0x3FFF_FFFFL)

(* The interpreter proper, over the pre-decoded form (Decode.t): branch
   targets and callees are indices, latencies and role indices are
   baked into each dinsn, and bundle issue runs as plain for-loops over
   ctx fields — no per-bundle closures or refs, so the hot loop
   allocates only what the simulated machine itself demands (call
   frames, call argument lists, the rare Ret value). *)

let rec exec_func ctx (df : Decode.dfunc) (args : value list) : value option =
  ctx.depth <- ctx.depth + 1;
  if ctx.depth > max_call_depth then raise (Trap.Trap Trap.Stack_overflow);
  let func = df.Decode.func in
  let fr = make_frame func ~time:(ctx.time + 1) in
  List.iter2
    (fun r v -> write_value fr r v ~ready:(ctx.time + 1) ~home:(-1))
    func.Func.params args;
  let blocks = df.Decode.blocks in
  let result = ref None in
  let cur = ref 0 in
  let running = ref true in
  while !running do
    let b = blocks.(!cur) in
    (* The static schedule is authoritative for the in-order lockstep
       machine: bundle [i] may not issue before [block_start + at]
       (empty cycles, stripped at decode time, are real NOPs). Dynamic
       stalls (cache misses, cross-block operands) push it further. *)
    let block_start = ctx.time + 1 in
    ctx.xfer <- xfer_none;
    ctx.retv <- None;
    let bundles = b.Decode.bundles in
    for i = 0 to Array.length bundles - 1 do
      let db = bundles.(i) in
      exec_bundle ctx fr ~not_before:(block_start + db.Decode.at)
        db.Decode.slots
    done;
    (match ctx.profile with
    | Some profile ->
        Profile.record profile ~func:func.Func.name ~label:b.Decode.label
          ~cycles:(ctx.time + 1 - block_start)
    | None -> ());
    if ctx.xfer >= 0 then cur := ctx.xfer
    else if ctx.xfer = xfer_return then begin
      result := ctx.retv;
      running := false
    end
    else invalid_arg "Simulator: block finished without control transfer"
  done;
  ctx.depth <- ctx.depth - 1;
  !result

and exec_bundle ctx fr ~not_before (slots : Decode.dinsn array array) =
  (* Issue time: lockstep across clusters, so one maximum over all
     operand arrival times of the whole bundle. *)
  let t0 = ctx.time + 1 in
  ctx.tmax <- (if not_before > t0 then not_before else t0);
  for cluster = 0 to Array.length slots - 1 do
    let insns = slots.(cluster) in
    for k = 0 to Array.length insns - 1 do
      let uses = insns.(k).Decode.uses in
      for u = 0 to Array.length uses - 1 do
        let need = reg_need ctx fr ~cluster uses.(u) in
        if need > ctx.tmax then ctx.tmax <- need
      done
    done
  done;
  let t = ctx.tmax in
  ctx.time <- t;
  (* Read phase: all operands (including loaded memory) are sampled
     before any write of this bundle lands. *)
  for cluster = 0 to Array.length slots - 1 do
    let insns = slots.(cluster) in
    for k = 0 to Array.length insns - 1 do
      exec_insn ctx fr ~cluster ~t insns.(k)
    done
  done

and exec_insn ctx fr ~cluster ~t (di : Decode.dinsn) =
  ctx.dyn <- ctx.dyn + 1;
  if ctx.dyn > ctx.fuel then raise Out_of_fuel;
  ctx.roles.(di.Decode.role) <- ctx.roles.(di.Decode.role) + 1;
  let uses = di.Decode.uses in
  let defs = di.Decode.defs in
  let latency = di.Decode.latency in
  (match di.Decode.op with
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem
  | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Shl | Opcode.Shr
  | Opcode.Sra ->
      write_gp fr defs.(0)
        (Alu.int_binop di.Decode.op
           (use_gp ctx fr ~cluster uses.(0))
           (use_gp ctx fr ~cluster uses.(1)))
        ~ready:(t + latency) ~home:cluster
  | Opcode.Addi | Opcode.Muli | Opcode.Andi | Opcode.Xori | Opcode.Shli
  | Opcode.Shri | Opcode.Srai ->
      write_gp fr defs.(0)
        (Alu.int_immop di.Decode.op
           (use_gp ctx fr ~cluster uses.(0))
           di.Decode.imm)
        ~ready:(t + latency) ~home:cluster
  | Opcode.Mov ->
      write_gp fr defs.(0)
        (use_gp ctx fr ~cluster uses.(0))
        ~ready:(t + latency) ~home:cluster
  | Opcode.Movi ->
      write_gp fr defs.(0) di.Decode.imm ~ready:(t + latency) ~home:cluster
  | Opcode.Cmp c ->
      write_pr fr defs.(0)
        (Cond.eval_int c
           (use_gp ctx fr ~cluster uses.(0))
           (use_gp ctx fr ~cluster uses.(1)))
        ~ready:(t + latency) ~home:cluster
  | Opcode.Cmpi c ->
      write_pr fr defs.(0)
        (Cond.eval_int c (use_gp ctx fr ~cluster uses.(0)) di.Decode.imm)
        ~ready:(t + latency) ~home:cluster
  | Opcode.Sel ->
      let v =
        if use_pr ctx fr ~cluster uses.(0) then
          use_gp ctx fr ~cluster uses.(1)
        else use_gp ctx fr ~cluster uses.(2)
      in
      write_gp fr defs.(0) v ~ready:(t + latency) ~home:cluster
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv ->
      write_fp fr defs.(0)
        (Alu.float_binop di.Decode.op
           (use_fp ctx fr ~cluster uses.(0))
           (use_fp ctx fr ~cluster uses.(1)))
        ~ready:(t + latency) ~home:cluster
  | Opcode.Fmov ->
      write_fp fr defs.(0)
        (use_fp ctx fr ~cluster uses.(0))
        ~ready:(t + latency) ~home:cluster
  | Opcode.Fmovi ->
      write_fp fr defs.(0) di.Decode.fimm ~ready:(t + latency) ~home:cluster
  | Opcode.Fcmp c ->
      write_pr fr defs.(0)
        (Cond.eval_float c
           (use_fp ctx fr ~cluster uses.(0))
           (use_fp ctx fr ~cluster uses.(1)))
        ~ready:(t + latency) ~home:cluster
  | Opcode.Itof ->
      write_fp fr defs.(0)
        (Int64.to_float (use_gp ctx fr ~cluster uses.(0)))
        ~ready:(t + latency) ~home:cluster
  | Opcode.Ftoi ->
      let f = use_fp ctx fr ~cluster uses.(0) in
      let v =
        if Float.is_nan f then 0L else Int64.of_float (Float.trunc f)
      in
      write_gp fr defs.(0) v ~ready:(t + latency) ~home:cluster
  | Opcode.Ld w | Opcode.Lds w ->
      let signed =
        match di.Decode.op with Opcode.Lds _ -> true | _ -> false
      in
      let addr = Int64.add (use_gp ctx fr ~cluster uses.(0)) di.Decode.imm in
      let latency =
        Hierarchy.access ctx.hier ~addr:(addr_int addr) ~write:false
      in
      let v = Memory.read ctx.mem ~addr ~width:w ~signed in
      touch_mem ctx addr;
      write_gp fr defs.(0) v ~ready:(t + latency) ~home:cluster
  | Opcode.Fld ->
      let addr = Int64.add (use_gp ctx fr ~cluster uses.(0)) di.Decode.imm in
      let latency =
        Hierarchy.access ctx.hier ~addr:(addr_int addr) ~write:false
      in
      let v = Memory.read_float ctx.mem ~addr in
      touch_mem ctx addr;
      write_fp fr defs.(0) v ~ready:(t + latency) ~home:cluster
  | Opcode.St w ->
      let addr = Int64.add (use_gp ctx fr ~cluster uses.(1)) di.Decode.imm in
      Memory.write ctx.mem ~addr ~width:w (use_gp ctx fr ~cluster uses.(0));
      ignore (Hierarchy.access ctx.hier ~addr:(addr_int addr) ~write:true);
      touch_mem ctx addr
  | Opcode.Fst ->
      let addr = Int64.add (use_gp ctx fr ~cluster uses.(1)) di.Decode.imm in
      Memory.write_float ctx.mem ~addr (use_fp ctx fr ~cluster uses.(0));
      ignore (Hierarchy.access ctx.hier ~addr:(addr_int addr) ~write:true);
      touch_mem ctx addr
  | Opcode.Chk ->
      let ok =
        match Reg.cls uses.(0) with
        | Reg.Gp ->
            Int64.equal
              (use_gp ctx fr ~cluster uses.(0))
              (use_gp ctx fr ~cluster uses.(1))
        | Reg.Fp ->
            Int64.equal
              (Int64.bits_of_float (use_fp ctx fr ~cluster uses.(0)))
              (Int64.bits_of_float (use_fp ctx fr ~cluster uses.(1)))
        | Reg.Pr ->
            Bool.equal
              (use_pr ctx fr ~cluster uses.(0))
              (use_pr ctx fr ~cluster uses.(1))
      in
      if not ok then raise (Check_failed di.Decode.id)
  | Opcode.Br -> ctx.xfer <- di.Decode.target
  | Opcode.Brc flag ->
      let taken = Bool.equal (use_pr ctx fr ~cluster uses.(0)) flag in
      ctx.branches <- ctx.branches + 1;
      let taken =
        match ctx.fault with
        | Some (Fault.Branch_flip { target_branch })
          when ctx.branches = target_branch + 1 ->
            not taken
        | Some _ | None -> taken
      in
      ctx.xfer <- (if taken then di.Decode.target else di.Decode.target2)
  | Opcode.Ret ->
      let v =
        if Array.length uses > 0 then
          Some (use_value ctx fr ~cluster uses.(0))
        else None
      in
      ctx.xfer <- xfer_return;
      ctx.retv <- v
  | Opcode.Halt ->
      let code =
        if Array.length uses > 0 then
          Int64.to_int (use_gp ctx fr ~cluster uses.(0))
        else 0
      in
      raise (Halted code)
  | Opcode.Call ->
      let callee = ctx.d.Decode.funcs.(di.Decode.target) in
      let args =
        List.map (use_value ctx fr ~cluster) (Array.to_list uses)
      in
      (* The callee drives ctx.xfer/retv for its own blocks; restore the
         caller's pending transfer around the nested execution. *)
      let saved_xfer = ctx.xfer in
      let saved_retv = ctx.retv in
      let result = exec_func ctx callee args in
      ctx.xfer <- saved_xfer;
      ctx.retv <- saved_retv;
      (match (Array.length defs, result) with
      | 0, _ -> ()
      | 1, Some v ->
          write_value fr defs.(0) v ~ready:(ctx.time + 1) ~home:cluster
      | 1, None -> invalid_arg "Simulator: call expected a return value"
      | _ -> invalid_arg "Simulator: call with multiple defs")
  | Opcode.Nop -> ());
  for i = 0 to Array.length defs - 1 do
    inject_slot ctx fr defs.(i)
  done

(* Surface one finished run into the metrics registry. Runs entirely on
   the calling domain's shard, after the simulation is done, so it can
   never perturb the simulation itself. *)
let record_metrics (r : Outcome.run) =
  let module M = Casted_obs.Metrics in
  if M.enabled () then begin
    M.incr "sim.runs";
    M.incr ~by:r.Outcome.cycles "sim.cycles";
    M.incr ~by:r.Outcome.dyn_insns "sim.insns";
    M.incr ~by:r.Outcome.dyn_mem "sim.mem_accesses";
    M.incr ~by:r.Outcome.dyn_branches "sim.branches";
    M.incr ~by:r.Outcome.dyn_xreads "sim.xcluster_reads";
    M.incr ~by:r.Outcome.dyn_checks "sim.checks_executed";
    M.incr ~by:r.Outcome.slots_total "sim.slots_offered";
    M.incr ~by:(Outcome.trapped r) "sim.traps";
    (match r.Outcome.termination with
    | Outcome.Detected _ -> M.incr "sim.detections"
    | _ -> ());
    M.observe "sim.occupancy" (Outcome.occupancy r);
    let c = r.Outcome.cache in
    M.incr ~by:c.Casted_cache.Hierarchy.l1_hits "cache.l1.hits";
    M.incr ~by:c.Casted_cache.Hierarchy.l1_misses "cache.l1.misses";
    M.incr ~by:c.Casted_cache.Hierarchy.l2_hits "cache.l2.hits";
    M.incr ~by:c.Casted_cache.Hierarchy.l2_misses "cache.l2.misses";
    M.incr ~by:c.Casted_cache.Hierarchy.l3_hits "cache.l3.hits";
    M.incr ~by:c.Casted_cache.Hierarchy.l3_misses "cache.l3.misses";
    M.incr ~by:c.Casted_cache.Hierarchy.writebacks "cache.writebacks"
  end

(* Each executor domain keeps one working memory arena and restores the
   campaign's pristine image into it with a single [Bytes.blit] per
   trial — no [Memory.create] + [load_image] per run. The arena is
   private to the domain (pool workers run trials sequentially), and it
   is reset before any instruction executes, so trials cannot observe
   each other's stores. *)
let scratch_mem : Memory.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let trial_memory image =
  let r = Domain.DLS.get scratch_mem in
  match !r with
  | Some m when Memory.size m = Bytes.length image ->
      Memory.reset m image;
      m
  | _ ->
      let m = Memory.of_image image in
      r := Some m;
      m

(* Same treatment for the cache model: building the three levels
   allocates tens of thousands of way records, so each domain keeps one
   hierarchy per (geometry, perfect) and cold-restores it with
   [Hierarchy.reset] — field writes, no allocation — per run. *)
let scratch_hier :
    (Config.cache_config * bool * Hierarchy.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let trial_hierarchy cc ~perfect =
  let r = Domain.DLS.get scratch_hier in
  match !r with
  | Some (cc', perfect', h) when perfect' = perfect && cc' = cc ->
      Hierarchy.reset h;
      h
  | _ ->
      let h = if perfect then Hierarchy.perfect cc else Hierarchy.create cc in
      r := Some (cc, perfect, h);
      h

let run_decoded ?fault ?(fuel = max_int) ?(perfect_cache = false) ?profile
    ?(with_mem_digest = false) (d : Decode.t) =
  let mem = trial_memory d.Decode.image in
  let hier =
    trial_hierarchy d.Decode.config.Config.cache ~perfect:perfect_cache
  in
  let ctx =
    {
      d;
      config = d.Decode.config;
      mem;
      hier;
      fuel;
      fault;
      profile;
      time = -1;
      dyn = 0;
      defs = 0;
      mems = 0;
      branches = 0;
      xreads = 0;
      roles = Array.make 4 0;
      depth = 0;
      tmax = 0;
      xfer = xfer_none;
      retv = None;
    }
  in
  let entry = d.Decode.funcs.(d.Decode.entry) in
  let termination =
    try
      let (_ : value option) = exec_func ctx entry [] in
      (* Entry returned instead of halting: treat as exit 0. *)
      Outcome.Exit 0
    with
    | Halted code -> Outcome.Exit code
    | Check_failed id -> Outcome.Detected id
    | Trap.Trap t -> Outcome.Trapped t
    | Out_of_fuel -> Outcome.Timeout
  in
  let output =
    Memory.extract mem ~base:d.Decode.output_base ~len:d.Decode.output_len
  in
  let cycles = ctx.time + 1 in
  let r =
    {
      Outcome.termination;
      cycles;
      dyn_insns = ctx.dyn;
      dyn_defs = ctx.defs;
      dyn_mem = ctx.mems;
      dyn_branches = ctx.branches;
      dyn_xreads = ctx.xreads;
      dyn_checks = ctx.roles.(role_index Insn.Check);
      dyn_by_role = ctx.roles;
      slots_total =
        cycles * ctx.config.Config.clusters * ctx.config.Config.issue_width;
      output;
      exit_code = (match termination with Outcome.Exit c -> c | _ -> -1);
      cache = Hierarchy.stats hier;
      mem_digest =
        (if with_mem_digest then
           Digest.string (Memory.extract mem ~base:0 ~len:(Memory.size mem))
         else "");
    }
  in
  record_metrics r;
  r

let run ?fault ?fuel ?perfect_cache ?profile ?with_mem_digest sched =
  run_decoded ?fault ?fuel ?perfect_cache ?profile ?with_mem_digest
    (Decode.of_schedule sched)
