module Opcode = Casted_ir.Opcode

type t = { bytes : Bytes.t; size : int }

let create ~size =
  if size <= 0 then invalid_arg "Memory.create: non-positive size";
  { bytes = Bytes.make size '\000'; size }

let size t = t.size

let load_image t segments =
  List.iter
    (fun (addr, s) ->
      if addr < 0 || addr + String.length s > t.size then
        invalid_arg "Memory.load_image: segment out of bounds";
      Bytes.blit_string s 0 t.bytes addr (String.length s))
    segments

let pristine ~size segments =
  let t = create ~size in
  load_image t segments;
  t.bytes

let of_image image = { bytes = Bytes.copy image; size = Bytes.length image }

let reset t image =
  if Bytes.length image <> t.size then
    invalid_arg "Memory.reset: image size mismatch";
  Bytes.blit image 0 t.bytes 0 t.size

let check t ~addr ~bytes =
  if Int64.compare addr 0L < 0 || Int64.compare addr (Int64.of_int t.size) >= 0
  then raise (Trap.Trap (Trap.Out_of_bounds addr));
  let a = Int64.to_int addr in
  if a + bytes > t.size then raise (Trap.Trap (Trap.Out_of_bounds addr));
  if a mod bytes <> 0 then raise (Trap.Trap (Trap.Misaligned addr));
  a

let read t ~addr ~width ~signed =
  let bytes = Opcode.width_bytes width in
  let a = check t ~addr ~bytes in
  match (width, signed) with
  | Opcode.W1, false -> Int64.of_int (Bytes.get_uint8 t.bytes a)
  | Opcode.W1, true -> Int64.of_int (Bytes.get_int8 t.bytes a)
  | Opcode.W2, false -> Int64.of_int (Bytes.get_uint16_le t.bytes a)
  | Opcode.W2, true -> Int64.of_int (Bytes.get_int16_le t.bytes a)
  | Opcode.W4, false ->
      Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.bytes a)) 0xFFFF_FFFFL
  | Opcode.W4, true -> Int64.of_int32 (Bytes.get_int32_le t.bytes a)
  | Opcode.W8, _ -> Bytes.get_int64_le t.bytes a

let write t ~addr ~width v =
  let bytes = Opcode.width_bytes width in
  let a = check t ~addr ~bytes in
  match width with
  | Opcode.W1 -> Bytes.set_uint8 t.bytes a (Int64.to_int v land 0xFF)
  | Opcode.W2 -> Bytes.set_uint16_le t.bytes a (Int64.to_int v land 0xFFFF)
  | Opcode.W4 -> Bytes.set_int32_le t.bytes a (Int64.to_int32 v)
  | Opcode.W8 -> Bytes.set_int64_le t.bytes a v

let read_float t ~addr =
  Int64.float_of_bits (read t ~addr ~width:Opcode.W8 ~signed:false)

let write_float t ~addr v =
  write t ~addr ~width:Opcode.W8 (Int64.bits_of_float v)

let flip_bit t ~addr ~bit =
  (* Fault injection: silently skip targets outside the arena (a line
     straddling the memory end has no backing bytes there). *)
  if Int64.compare addr 0L >= 0 && Int64.compare addr (Int64.of_int t.size) < 0
  then begin
    let a = Int64.to_int addr in
    let b = Bytes.get_uint8 t.bytes a in
    Bytes.set_uint8 t.bytes a (b lxor (1 lsl (bit land 7)))
  end

let extract t ~base ~len =
  if base < 0 || len < 0 || base + len > t.size then
    invalid_arg "Memory.extract: out of bounds";
  Bytes.sub_string t.bytes base len
