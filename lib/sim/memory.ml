module Opcode = Casted_ir.Opcode

(* Dirty pages are journalled so per-trial reset and state snapshots
   cost O(pages written), not O(arena size): a trial touches a few
   pages of stack and output, the arena is megabytes. *)
let page_shift = 12
let page_size = 1 lsl page_shift

type t = {
  bytes : Bytes.t;
  size : int;
  dirty : int array;  (* stack of dirtied page indices *)
  dirty_flag : Bytes.t;  (* per-page membership bit for the stack *)
  mutable n_dirty : int;
}

let n_pages size = (size + page_size - 1) lsr page_shift

let create ~size =
  if size <= 0 then invalid_arg "Memory.create: non-positive size";
  let np = n_pages size in
  {
    bytes = Bytes.make size '\000';
    size;
    dirty = Array.make np 0;
    dirty_flag = Bytes.make np '\000';
    n_dirty = 0;
  }

let size t = t.size

(* Every mutation of [t.bytes] journals the pages it touches; [a] and
   [len] are already bounds-checked by the caller. *)
let mark t a len =
  let p1 = (a + len - 1) lsr page_shift in
  let p = ref (a lsr page_shift) in
  while !p <= p1 do
    if Bytes.unsafe_get t.dirty_flag !p = '\000' then begin
      Bytes.unsafe_set t.dirty_flag !p '\001';
      t.dirty.(t.n_dirty) <- !p;
      t.n_dirty <- t.n_dirty + 1
    end;
    incr p
  done

let load_image t segments =
  List.iter
    (fun (addr, s) ->
      if addr < 0 || addr + String.length s > t.size then
        invalid_arg "Memory.load_image: segment out of bounds";
      if String.length s > 0 then begin
        Bytes.blit_string s 0 t.bytes addr (String.length s);
        mark t addr (String.length s)
      end)
    segments

let pristine ~size segments =
  let t = create ~size in
  load_image t segments;
  t.bytes

let of_image image =
  let size = Bytes.length image in
  let np = n_pages size in
  {
    bytes = Bytes.copy image;
    size;
    dirty = Array.make np 0;
    dirty_flag = Bytes.make np '\000';
    n_dirty = 0;
  }

let clear_journal t =
  for k = 0 to t.n_dirty - 1 do
    Bytes.unsafe_set t.dirty_flag t.dirty.(k) '\000'
  done;
  t.n_dirty <- 0

let reset t image =
  if Bytes.length image <> t.size then
    invalid_arg "Memory.reset: image size mismatch";
  Bytes.blit image 0 t.bytes 0 t.size;
  clear_journal t

let page_len t p =
  let base = p lsl page_shift in
  min page_size (t.size - base)

(* O(dirty pages): blit only the journalled pages back from [base].
   Correct because the journal covers every byte written since the last
   [reset]/[undo_writes] against the same [base] — everywhere else the
   arena already equals it. *)
let undo_writes t base =
  if Bytes.length base <> t.size then
    invalid_arg "Memory.undo_writes: image size mismatch";
  for k = 0 to t.n_dirty - 1 do
    let p = t.dirty.(k) in
    Bytes.unsafe_set t.dirty_flag p '\000';
    let a = p lsl page_shift in
    Bytes.blit base a t.bytes a (page_len t p)
  done;
  t.n_dirty <- 0

(* Sparse snapshot of everything written since the last reset: the
   dirty pages, packed. Immutable after capture. *)
type delta = { d_size : int; pages : int array; data : Bytes.t }

let delta t =
  let pages = Array.sub t.dirty 0 t.n_dirty in
  let data = Bytes.create (t.n_dirty * page_size) in
  Array.iteri
    (fun k p ->
      Bytes.blit t.bytes (p lsl page_shift) data (k * page_size)
        (page_len t p))
    pages;
  { d_size = t.size; pages; data }

let apply_delta t d =
  if d.d_size <> t.size then
    invalid_arg "Memory.apply_delta: arena size mismatch";
  Array.iteri
    (fun k p ->
      let a = p lsl page_shift in
      let len = page_len t p in
      Bytes.blit d.data (k * page_size) t.bytes a len;
      mark t a len)
    d.pages

let delta_bytes d = Bytes.length d.data + (Array.length d.pages * 8) + 32

let check t ~addr ~bytes =
  if Int64.compare addr 0L < 0 || Int64.compare addr (Int64.of_int t.size) >= 0
  then raise (Trap.Trap (Trap.Out_of_bounds addr));
  let a = Int64.to_int addr in
  if a + bytes > t.size then raise (Trap.Trap (Trap.Out_of_bounds addr));
  if a mod bytes <> 0 then raise (Trap.Trap (Trap.Misaligned addr));
  a

let read t ~addr ~width ~signed =
  let bytes = Opcode.width_bytes width in
  let a = check t ~addr ~bytes in
  match (width, signed) with
  | Opcode.W1, false -> Int64.of_int (Bytes.get_uint8 t.bytes a)
  | Opcode.W1, true -> Int64.of_int (Bytes.get_int8 t.bytes a)
  | Opcode.W2, false -> Int64.of_int (Bytes.get_uint16_le t.bytes a)
  | Opcode.W2, true -> Int64.of_int (Bytes.get_int16_le t.bytes a)
  | Opcode.W4, false ->
      Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.bytes a)) 0xFFFF_FFFFL
  | Opcode.W4, true -> Int64.of_int32 (Bytes.get_int32_le t.bytes a)
  | Opcode.W8, _ -> Bytes.get_int64_le t.bytes a

let write t ~addr ~width v =
  let bytes = Opcode.width_bytes width in
  let a = check t ~addr ~bytes in
  mark t a bytes;
  match width with
  | Opcode.W1 -> Bytes.set_uint8 t.bytes a (Int64.to_int v land 0xFF)
  | Opcode.W2 -> Bytes.set_uint16_le t.bytes a (Int64.to_int v land 0xFFFF)
  | Opcode.W4 -> Bytes.set_int32_le t.bytes a (Int64.to_int32 v)
  | Opcode.W8 -> Bytes.set_int64_le t.bytes a v

let read_float t ~addr =
  Int64.float_of_bits (read t ~addr ~width:Opcode.W8 ~signed:false)

let write_float t ~addr v =
  write t ~addr ~width:Opcode.W8 (Int64.bits_of_float v)

let flip_bit t ~addr ~bit =
  (* Fault injection: silently skip targets outside the arena (a line
     straddling the memory end has no backing bytes there). *)
  if Int64.compare addr 0L >= 0 && Int64.compare addr (Int64.of_int t.size) < 0
  then begin
    let a = Int64.to_int addr in
    mark t a 1;
    let b = Bytes.get_uint8 t.bytes a in
    Bytes.set_uint8 t.bytes a (b lxor (1 lsl (bit land 7)))
  end

let image t = Bytes.copy t.bytes

let extract t ~base ~len =
  if base < 0 || len < 0 || base + len > t.size then
    invalid_arg "Memory.extract: out of bounds";
  Bytes.sub_string t.bytes base len
