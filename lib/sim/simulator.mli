(** Cycle-accurate lockstep VLIW simulator.

    Executes a scheduled program (the output of
    {!Casted_detect.Pipeline.compile}) bundle by bundle. All clusters
    issue in lockstep: a bundle's issue time is the maximum over its
    instructions' operand-ready times, where an operand produced on a
    different cluster arrives [delay] cycles late (the paper's
    inter-cluster register-file read). Dynamic stalls come from cache
    misses (Table-I hierarchy) and cross-cluster reads not visible to the
    static scheduler (block boundaries, call returns).

    Bundle semantics are VLIW-parallel: all operands are read before any
    write of the same bundle lands.

    Faults: when a {!Fault.t} is supplied, one dynamic event is
    corrupted according to the fault's model (§IV-C, generalised):
    register-slot bit flips and bursts right after write-back, a
    cache-line bit after the n-th memory access, an inverted direction
    on the n-th conditional branch, or a corrupted value on the n-th
    cross-cluster operand read. The run also counts each model's
    dynamic population ({!Outcome.run} [dyn_defs], [dyn_mem],
    [dyn_branches], [dyn_xreads]), which is how a campaign's golden run
    sizes the injection pool. *)

(** [run schedule] executes the program to termination.

    @param fault optional single transient fault to inject.
    @param fuel dynamic-instruction budget; exceeding it terminates the
      run with {!Outcome.Timeout} (the paper's simulator time-out).
    @param perfect_cache every access hits in L1 (ablation).
    @param profile per-block visit/cycle profile, filled during the run.
    @param with_mem_digest fill {!Outcome.run} [mem_digest] with a
      digest of the final memory image (default false: campaigns never
      pay for it; the differential oracle turns it on to compare whole
      memory images across schemes). *)
val run :
  ?fault:Fault.t ->
  ?fuel:int ->
  ?perfect_cache:bool ->
  ?profile:Profile.t ->
  ?with_mem_digest:bool ->
  Casted_sched.Schedule.t ->
  Outcome.run

(** [run_decoded decoded] executes a pre-decoded program
    ({!Decode.of_schedule}). Bit-identical to [run] on the source
    schedule — same {!Outcome.run} field for field — but skips the
    per-run decode work: [run sched] is exactly
    [run_decoded (Decode.of_schedule sched)]. Monte-Carlo campaigns
    decode once and call this per trial; the decoded program is
    read-only and safe to share across pool domains. Each executor
    domain also keeps a private scratch memory arena that is restored
    from [decoded.image] with one blit per run.

    @param on_block called at every entry-function block-loop top where
      the call stack is empty (depth 1) with the machine state, the
      entry register file and the block index about to execute — the
      only program points where {!State.snapshot} is valid. The golden
      pass of {!Replay.capture} uses it to record snapshots; plain runs
      leave it unset and pay nothing. *)
val run_decoded :
  ?fault:Fault.t ->
  ?fuel:int ->
  ?perfect_cache:bool ->
  ?profile:Profile.t ->
  ?with_mem_digest:bool ->
  ?on_block:(State.t -> State.regfile -> int -> unit) ->
  Decode.t ->
  Outcome.run

(** [run_replayed ~snapshot decoded] restores [snapshot] (captured by a
    golden pass over the same decoded program) and executes only the
    remaining suffix. Bit-identical to
    [run_decoded ?fault ?fuel decoded] whenever the snapshot precedes
    the fault's trigger event (see {!Replay.find}) and the snapshot's
    perfect-cache mode matches the run's: the prefix a full run would
    execute before the trigger is exactly the golden prefix the
    snapshot captured. Counters and cycle counts resume from the
    snapshot, so every {!Outcome.run} field reports whole-run totals. *)
val run_replayed :
  ?fault:Fault.t ->
  ?fuel:int ->
  ?with_mem_digest:bool ->
  snapshot:State.snapshot ->
  Decode.t ->
  Outcome.run

(** [run_recovering ~retry_budget decoded] executes a rollback-hardened
    program ({!Casted_detect.Scheme.Rollback}): a {!State.snapshot} is
    taken at every checkpoint-flagged block top of the entry function
    (the region boundaries the rollback pass marked with
    {!Casted_ir.Opcode.Cpt}), and a fired check or machine trap no
    longer ends the run — the latest snapshot is restored and the
    suffix re-executed with the (transient) fault disarmed, up to
    [retry_budget] times. A run that completes after at least one
    rollback terminates with {!Outcome.Recovered}; a retry chain that
    keeps failing (the fault corrupted the checkpoint itself) exhausts
    the budget and reports the original failure. Cycles and dynamic
    instructions thrown away by failed attempts are folded into the
    final {!Outcome.run}, so recovery pays its re-execution cost.
    On a schedule with no checkpoint blocks this is plain
    [run_decoded]. Timeouts never retry: the fuel budget is global. *)
val run_recovering :
  ?fault:Fault.t ->
  ?fuel:int ->
  ?with_mem_digest:bool ->
  retry_budget:int ->
  Decode.t ->
  Outcome.run

(** [run_compiled compiled] executes a stage-2-compiled program
    ({!Compile.of_decoded}) on the closure-threaded engine.
    Bit-identical to [run_decoded] on the underlying decoded program —
    same {!Outcome.run} field for field — but with every per-instruction
    dispatch decision resolved at compile time; the verify oracle's
    four-way cross-check holds the engines to that contract. Campaigns
    compile once (memoized in [Engine.Cache]) and run trials on this
    path by default. *)
val run_compiled :
  ?fault:Fault.t ->
  ?fuel:int ->
  ?with_mem_digest:bool ->
  Compile.t ->
  Outcome.run

(** [run_compiled_replayed ~snapshot compiled] is {!run_replayed} on the
    compiled engine: restore a golden-prefix snapshot (snapshots are
    engine independent) and execute only the suffix as threaded code. *)
val run_compiled_replayed :
  ?fault:Fault.t ->
  ?fuel:int ->
  ?with_mem_digest:bool ->
  snapshot:State.snapshot ->
  Compile.t ->
  Outcome.run
