type classification = Benign | Detected | Exception | Data_corrupt | Timeout

let all_classes = [ Benign; Detected; Exception; Data_corrupt; Timeout ]

let class_name = function
  | Benign -> "benign"
  | Detected -> "detected"
  | Exception -> "exception"
  | Data_corrupt -> "data-corrupt"
  | Timeout -> "timeout"

type result = {
  trials : int;
  benign : int;
  detected : int;
  exceptions : int;
  corrupt : int;
  timeouts : int;
  golden_cycles : int;
  golden_dyn : int;
  population : int;
}

let count r = function
  | Benign -> r.benign
  | Detected -> r.detected
  | Exception -> r.exceptions
  | Data_corrupt -> r.corrupt
  | Timeout -> r.timeouts

let percent r c =
  if r.trials = 0 then 0.0
  else 100.0 *. float_of_int (count r c) /. float_of_int r.trials

let classify ~golden (run : Outcome.run) =
  match run.Outcome.termination with
  | Outcome.Detected _ -> Detected
  | Outcome.Trapped _ -> Exception
  | Outcome.Timeout -> Timeout
  | Outcome.Exit code ->
      if
        code = golden.Outcome.exit_code
        && String.equal run.Outcome.output golden.Outcome.output
      then Benign
      else Data_corrupt

type golden = {
  run : Outcome.run;
  population : int;
  fuel : int;
}

let golden ?(fuel_factor = 10) sched =
  let run = Simulator.run sched in
  (match run.Outcome.termination with
  | Outcome.Exit _ -> ()
  | t ->
      invalid_arg
        (Format.asprintf "Montecarlo.run: golden run did not exit cleanly: %a"
           Outcome.pp_termination t));
  {
    run;
    population = run.Outcome.dyn_defs;
    fuel = fuel_factor * max 1 run.Outcome.dyn_insns;
  }

(* Each trial draws from its own RNG seeded by (campaign seed, trial
   index), so the outcome of trial [i] does not depend on which domain
   runs it or on the trials before it. *)
let trial ~golden:g ~seed ~index sched =
  let rng = Rng.create ~seed:(Rng.derive ~seed index) in
  let fault = Fault.random rng ~population:g.population in
  let faulty = Simulator.run ~fault ~fuel:g.fuel sched in
  classify ~golden:g.run faulty

let idx = function
  | Benign -> 0
  | Detected -> 1
  | Exception -> 2
  | Data_corrupt -> 3
  | Timeout -> 4

let tally ~golden:g classes =
  let counts = Array.make 5 0 in
  Array.iter (fun c -> counts.(idx c) <- counts.(idx c) + 1) classes;
  {
    trials = Array.length classes;
    benign = counts.(0);
    detected = counts.(1);
    exceptions = counts.(2);
    corrupt = counts.(3);
    timeouts = counts.(4);
    golden_cycles = g.run.Outcome.cycles;
    golden_dyn = g.run.Outcome.dyn_insns;
    population = g.population;
  }

let run ?pool ?(seed = 0xCA57ED) ?(fuel_factor = 10) ~trials sched =
  let g = golden ~fuel_factor sched in
  let one index = trial ~golden:g ~seed ~index sched in
  let indices = Array.init trials Fun.id in
  let classes =
    match pool with
    | Some p -> Casted_exec.Pool.map p one indices
    | None -> Array.map one indices
  in
  tally ~golden:g classes

let pp ppf r =
  Format.fprintf ppf
    "%d trials: %.1f%% benign, %.1f%% detected, %.1f%% exception, %.1f%% \
     corrupt, %.1f%% timeout"
    r.trials (percent r Benign) (percent r Detected) (percent r Exception)
    (percent r Data_corrupt) (percent r Timeout)
