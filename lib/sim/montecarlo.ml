type classification =
  | Benign
  | Detected
  | Exception
  | Data_corrupt
  | Timeout
  | Recovered

let all_classes =
  [ Benign; Recovered; Detected; Exception; Data_corrupt; Timeout ]

let class_name = function
  | Benign -> "benign"
  | Detected -> "detected"
  | Exception -> "exception"
  | Data_corrupt -> "data-corrupt"
  | Timeout -> "timeout"
  | Recovered -> "recovered"

(* How golden-prefix replay fared, over the trials this process ran
   (resumed trials from an earlier process left no per-trial record in
   the checkpoint). *)
type replay_stats = {
  snapshots : int;
  snapshot_bytes : int;
  replayed : int;  (* trials started from a snapshot *)
  full_runs : int;  (* trials that fell back to full execution *)
  mean_suffix : float;  (* mean fraction of the golden run executed *)
}

type result = {
  trials : int;
  benign : int;
  detected : int;
  exceptions : int;
  corrupt : int;
  timeouts : int;
  recovered : int;
  golden_cycles : int;
  golden_dyn : int;
  population : int;
  model : Fault.model;
  replay : replay_stats option;
}

let count r = function
  | Benign -> r.benign
  | Detected -> r.detected
  | Exception -> r.exceptions
  | Data_corrupt -> r.corrupt
  | Timeout -> r.timeouts
  | Recovered -> r.recovered

let percent r c =
  if r.trials = 0 then 0.0
  else 100.0 *. float_of_int (count r c) /. float_of_int r.trials

let inapplicable r = r.population = 0

let interval ?z r c =
  let lo, hi = Stats.wilson ?z ~successes:(count r c) ~trials:r.trials () in
  (100.0 *. lo, 100.0 *. hi)

let halfwidth ?z r c =
  let lo, hi = interval ?z r c in
  (hi -. lo) /. 2.0

let classify ~golden (run : Outcome.run) =
  let architecturally_clean code =
    code = golden.Outcome.exit_code
    && String.equal run.Outcome.output golden.Outcome.output
  in
  match run.Outcome.termination with
  | Outcome.Detected _ -> Detected
  | Outcome.Trapped _ -> Exception
  | Outcome.Timeout -> Timeout
  | Outcome.Recovered { exit_code; _ } ->
      (* The rollback machinery retried, but only a golden-matching
         completion counts as a recovery. *)
      if architecturally_clean exit_code then Recovered else Data_corrupt
  | Outcome.Exit code ->
      if architecturally_clean code then
        (* A TMR run repairs faults in place and exits normally; a
           correction that fired separates "the scheme actively saved
           the run" from "the fault was benign anyway". *)
        if run.Outcome.dyn_corrections > 0 then Recovered else Benign
      else Data_corrupt

(* A trial whose simulation raised instead of terminating cleanly is a
   machine exception from the campaign's point of view: the fault drove
   the interpreter somewhere the architecture would have faulted. It is
   tallied, never propagated — one pathological trial must not kill a
   multi-hour campaign (or its whole domain pool). *)
let classify_result ~golden = function
  | Ok run -> classify ~golden run
  | Error (_ : exn) -> Exception

type golden = {
  run : Outcome.run;
  pop : Fault.population;
  fuel : int;
  replay : Replay.t option;
}

let population_of_run (r : Outcome.run) =
  {
    Fault.def_slots = r.Outcome.dyn_defs;
    mem_accesses = r.Outcome.dyn_mem;
    cond_branches = r.Outcome.dyn_branches;
    xcluster_reads = r.Outcome.dyn_xreads;
  }

let golden_decoded ?(fuel_factor = 10) ?(replay = false) ?replay_set decoded =
  (* The replay capture pass IS a golden run (the snapshot hook only
     copies state), so campaigns with replay on pay no extra run. *)
  let replay_set =
    match replay_set with
    | Some _ as r -> r
    | None -> if replay then Some (Replay.capture decoded) else None
  in
  let run =
    match replay_set with
    | Some r -> Replay.golden r
    | None -> Simulator.run_decoded decoded
  in
  (match run.Outcome.termination with
  | Outcome.Exit _ -> ()
  | t ->
      invalid_arg
        (Format.asprintf "Montecarlo.run: golden run did not exit cleanly: %a"
           Outcome.pp_termination t));
  {
    run;
    pop = population_of_run run;
    fuel = fuel_factor * max 1 run.Outcome.dyn_insns;
    replay = replay_set;
  }

let golden ?fuel_factor sched =
  golden_decoded ?fuel_factor (Decode.of_schedule sched)

(* Each trial draws from its own RNG seeded by (campaign seed, trial
   index), so the outcome of trial [i] does not depend on which domain
   runs it or on the trials before it. *)
(* One trial, reporting how it ran: [(class, suffix fraction, replayed)]
   where the fraction is the share of the golden run actually executed
   (1.0 for a full-length run). When the golden carries a replay set,
   the trial restores the latest snapshot preceding its fault's trigger
   event and executes only the suffix — bit-identical to the full run
   (Simulator.run_replayed), just cheaper. *)
let trial_instrumented ?retry_budget ?compiled ~model ~golden:g ~seed ~index
    decoded =
  if Fault.population_size model g.pop = 0 then
    (* The fault path does not exist in this configuration (e.g. no
       cross-cluster reads on a single-cluster scheme): nothing to
       inject, the run is the golden run. *)
    (Benign, 1.0, false)
  else begin
    let rng = Rng.create ~seed:(Rng.derive ~seed index) in
    let fault = Fault.random model rng ~population:g.pop in
    match retry_budget with
    | Some retry_budget ->
        (* Rollback trials own the snapshot machinery themselves (the
           region checkpoints), so golden-prefix replay stays out of the
           picture: run_decoded forces it off for these campaigns. *)
        let c =
          classify_result ~golden:g.run
            (try
               Ok
                 (Simulator.run_recovering ~fault ~fuel:g.fuel ~retry_budget
                    decoded)
             with e -> Error e)
        in
        (c, 1.0, false)
    | None -> (
    let snap =
      match g.replay with Some r -> Replay.find r fault | None -> None
    in
    match snap with
    | Some snapshot ->
        let c =
          classify_result ~golden:g.run
            (try
               Ok
                 (match compiled with
                 | Some p ->
                     Simulator.run_compiled_replayed ~fault ~fuel:g.fuel
                       ~snapshot p
                 | None ->
                     Simulator.run_replayed ~fault ~fuel:g.fuel ~snapshot
                       decoded)
             with e -> Error e)
        in
        (c, Replay.suffix_fraction (Option.get g.replay) snapshot, true)
    | None ->
        let c =
          classify_result ~golden:g.run
            (try
               Ok
                 (match compiled with
                 | Some p -> Simulator.run_compiled ~fault ~fuel:g.fuel p
                 | None -> Simulator.run_decoded ~fault ~fuel:g.fuel decoded)
             with e -> Error e)
        in
        (c, 1.0, false))
  end

let trial_decoded ?retry_budget ?(model = Fault.Reg_bit) ~golden ~seed ~index
    decoded =
  let c, _, _ =
    trial_instrumented ?retry_budget ~model ~golden ~seed ~index decoded
  in
  c

let trial ?retry_budget ?model ~golden ~seed ~index sched =
  trial_decoded ?retry_budget ?model ~golden ~seed ~index
    (Decode.of_schedule sched)

let trial_compiled ?(model = Fault.Reg_bit) ~golden ~seed ~index ~compiled
    decoded =
  let c, _, _ =
    trial_instrumented ~compiled ~model ~golden ~seed ~index decoded
  in
  c

let idx = function
  | Benign -> 0
  | Detected -> 1
  | Exception -> 2
  | Data_corrupt -> 3
  | Timeout -> 4
  | Recovered -> 5

let n_classes = List.length all_classes

let result_of_counts ?replay_stats ~golden:g ~model ~trials counts =
  {
    trials;
    benign = counts.(0);
    detected = counts.(1);
    exceptions = counts.(2);
    corrupt = counts.(3);
    timeouts = counts.(4);
    recovered = counts.(5);
    golden_cycles = g.run.Outcome.cycles;
    golden_dyn = g.run.Outcome.dyn_insns;
    population = Fault.population_size model g.pop;
    model;
    replay = replay_stats;
  }

let tally ?(model = Fault.Reg_bit) ~golden:g classes =
  let counts = Array.make n_classes 0 in
  Array.iter (fun c -> counts.(idx c) <- counts.(idx c) + 1) classes;
  result_of_counts ~golden:g ~model ~trials:(Array.length classes) counts

(* Campaigns advance in fixed-size chunks. Early-stop checks and
   checkpoint writes happen only at chunk boundaries, which are
   absolute trial indices — so the set of boundaries (and therefore the
   stopping point and every checkpoint) is identical whatever the pool
   size and wherever a previous run was killed. *)
let chunk_trials = 64

let run_decoded ?pool ?(seed = 0xCA57ED) ?(fuel_factor = 10)
    ?(model = Fault.Reg_bit) ?ci_halfwidth ?checkpoint
    ?(checkpoint_every = 256) ?(resume = false) ?(identity = "")
    ?(replay = true) ?replay_set ?(compile = true) ?compiled ?retry_budget
    ?(allow_legacy_checkpoint = false) ?(shard = (0, 1)) ?prior ?bank ~trials
    decoded =
  (match ci_halfwidth with
  | Some w when w <= 0.0 ->
      invalid_arg "Montecarlo.run: ci_halfwidth must be positive"
  | _ -> ());
  if resume && checkpoint = None then
    invalid_arg "Montecarlo.run: resume requires a checkpoint path";
  (* Sharded and store-resumed campaigns own their merge bookkeeping
     (the result store); mixing them with the checkpoint file or the
     early stop would make the tally depend on which mechanism fired
     first, so the combinations are rejected outright. A [prior] is
     fine with a shard: it resumes the shard's own banked chunks. *)
  let shard_k, shard_n = shard in
  if shard_n < 1 || shard_k < 0 || shard_k >= shard_n then
    invalid_arg
      (Printf.sprintf "Montecarlo.run: shard %d/%d is malformed" shard_k
         shard_n);
  if shard_n > 1 && (ci_halfwidth <> None || checkpoint <> None) then
    invalid_arg
      "Montecarlo.run: a sharded campaign cannot combine with \
       ci_halfwidth or checkpoint (shards merge through the result store)";
  (* A shard owns the chunks whose index (on the absolute grid anchored
     at trial 0) is congruent to it modulo the shard count. The grid is
     identical for every shard, so the union of all shards' trials is
     exactly [0, trials) with no overlap, and summed tallies are
     bit-identical to the single-process campaign. *)
  let owned lo = shard_n = 1 || lo / chunk_trials mod shard_n = shard_k in
  (* Trials this process owns on the grid strictly below [start] — what
     a resumed shard's prior counts must sum to (for an unsharded
     campaign this is just [start]). *)
  let owned_below start =
    let rec go lo acc =
      if lo >= start then acc
      else
        let hi = min start (lo + chunk_trials) in
        go (lo + chunk_trials) (if owned lo then acc + (hi - lo) else acc)
    in
    go 0 0
  in
  (match prior with
  | None -> ()
  | Some (start, counts) ->
      if checkpoint <> None then
        invalid_arg
          "Montecarlo.run: prior and checkpoint are two resume sources — \
           pass one";
      if ci_halfwidth <> None then
        invalid_arg "Montecarlo.run: prior cannot combine with ci_halfwidth";
      if start < 0 || start > trials then
        invalid_arg
          (Printf.sprintf "Montecarlo.run: prior index %d outside [0, %d]"
             start trials);
      if Array.length counts <> n_classes then
        invalid_arg
          (Printf.sprintf
             "Montecarlo.run: prior carries %d outcome classes, expected %d"
             (Array.length counts) n_classes);
      if Array.fold_left ( + ) 0 counts <> owned_below start then
        invalid_arg
          (Printf.sprintf
             "Montecarlo.run: prior counts sum to %d but %d trials are \
              recorded"
             (Array.fold_left ( + ) 0 counts)
             (owned_below start)));
  (* Rollback trials restore their own region checkpoints mid-run, which
     golden-prefix replay's restored-suffix execution cannot express:
     replay is forced off for recovering campaigns. *)
  let replay = replay && retry_budget = None in
  let replay_set = if retry_budget = None then replay_set else None in
  let g =
    Casted_obs.Trace.with_span ~cat:"mc" "mc.golden" (fun () ->
        golden_decoded ~fuel_factor ~replay ?replay_set decoded)
  in
  (* A program with no fault sites for this model (no memory traffic
     for [Mem], a single cluster for [Xcluster], ...) has nothing to
     sample: the model is inapplicable to this cell. Clamp the trial
     count to zero so the campaign reports an empty-but-well-formed
     result ([population] = 0, see {!inapplicable}) instead of each
     trial raising [Invalid_argument] out of [Fault.random]. *)
  let trials =
    if Fault.population_size model g.pop = 0 then 0 else trials
  in
  let counts = Array.make n_classes 0 in
  let start =
    match (resume, checkpoint) with
    | true, Some path -> (
        match Checkpoint.load ~allow_legacy:allow_legacy_checkpoint ~path ()
        with
        | Error msg -> invalid_arg ("Montecarlo.run: " ^ msg)
        | Ok None -> 0
        | Ok (Some c) ->
            if not (String.equal c.Checkpoint.identity identity) then
              invalid_arg
                (Printf.sprintf
                   "Montecarlo.run: checkpoint %s belongs to campaign %S, \
                    not %S — refusing to merge tallies across different \
                    (workload, scheme, config, fault-model) identities"
                   path c.Checkpoint.identity identity)
            else if
              c.Checkpoint.seed <> seed
              || c.Checkpoint.fuel_factor <> fuel_factor
              || c.Checkpoint.model <> model
              || c.Checkpoint.trials <> trials
              || Array.length c.Checkpoint.counts <> n_classes
            then
              invalid_arg
                (Printf.sprintf
                   "Montecarlo.run: checkpoint %s was written by a \
                    different campaign (seed/model/trials/fuel mismatch)"
                   path)
            else begin
              Array.blit c.Checkpoint.counts 0 counts 0 n_classes;
              c.Checkpoint.next_index
            end)
    | _ -> (
        (* A store-resumed campaign continues from a persisted tally:
           identical discipline to the checkpoint path, just with the
           caller (the engine's result store) holding the counts. *)
        match prior with
        | Some (start, prior_counts) ->
            Array.blit prior_counts 0 counts 0 n_classes;
            start
        | None -> 0)
  in
  (* Replay bookkeeping, accumulated on the coordinator at chunk
     boundaries so it cannot perturb trial order or results. *)
  let n_replayed = ref 0 in
  let n_full = ref 0 in
  let suffix_sum = ref 0.0 in
  (* Stage-2 compile: trials run on the closure-threaded engine unless
     the caller opted out. Rollback campaigns stay on the interpreter —
     run_recovering needs its on_block snapshot hook, which the compiled
     path does not offer. A pre-compiled program (the engine cache's
     memoized one) wins over compiling here. *)
  let compiled =
    if retry_budget <> None then None
    else
      match compiled with
      | Some _ as p -> p
      | None -> if compile then Some (Compile.of_decoded decoded) else None
  in
  let one index =
    trial_instrumented ?retry_budget ?compiled ~model ~golden:g ~seed ~index
      decoded
  in
  let map_chunk lo hi =
    Casted_obs.Trace.with_span ~cat:"mc" "mc.chunk"
      ~args:[ ("lo", Casted_obs.Json.Int lo); ("hi", Casted_obs.Json.Int hi) ]
      (fun () ->
        Casted_obs.Metrics.incr ~by:(hi - lo) "mc.trials";
        let indices = Array.init (hi - lo) (fun i -> lo + i) in
        match pool with
        | Some p -> Casted_exec.Pool.map p one indices
        | None -> Array.map one indices)
  in
  let save_checkpoint next_index =
    match checkpoint with
    | Some path ->
        Checkpoint.save ~path
          {
            Checkpoint.seed;
            fuel_factor;
            model;
            trials;
            next_index;
            counts = Array.copy counts;
            identity;
          }
    | None -> ()
  in
  let narrow_enough done_ =
    match ci_halfwidth with
    | None -> false
    | Some target ->
        100.0
        *. Stats.wilson_halfwidth ~successes:counts.(idx Detected)
             ~trials:done_ ()
        <= target
  in
  let rec go lo last_saved =
    if lo >= trials || narrow_enough lo then begin
      if lo > last_saved then save_checkpoint lo;
      lo
    end
    else begin
      let hi = min trials (lo + chunk_trials) in
      if owned lo then begin
        Array.iter
          (fun (c, suffix, replayed) ->
            counts.(idx c) <- counts.(idx c) + 1;
            if g.replay <> None then begin
              if replayed then incr n_replayed else incr n_full;
              suffix_sum := !suffix_sum +. suffix;
              if Casted_obs.Metrics.enabled () then begin
                Casted_obs.Metrics.incr
                  (if replayed then "replay.hits" else "replay.misses");
                Casted_obs.Metrics.observe "replay.suffix_fraction" suffix
              end
            end)
          (map_chunk lo hi);
        (* Bank the partial tally at every finished owned chunk (the
           final tally is returned normally): a killed worker's
           completed chunks survive and get served on restart. *)
        match bank with
        | Some f when hi < trials ->
            f ~next:hi
              (result_of_counts ~golden:g ~model
                 ~trials:(Array.fold_left ( + ) 0 counts)
                 counts)
        | _ -> ()
      end;
      let last_saved =
        if checkpoint <> None && (hi - last_saved >= checkpoint_every || hi = trials)
        then begin
          save_checkpoint hi;
          hi
        end
        else last_saved
      in
      go hi last_saved
    end
  in
  let (_ : int) = go start start in
  (* Tallied trials: the absolute index for a plain campaign, only the
     owned chunks for a shard. The counts are the ground truth either
     way. *)
  let done_ = Array.fold_left ( + ) 0 counts in
  let replay_stats =
    match g.replay with
    | None -> None
    | Some r ->
        let executed = !n_replayed + !n_full in
        Some
          {
            snapshots = Replay.count r;
            snapshot_bytes = Replay.total_bytes r;
            replayed = !n_replayed;
            full_runs = !n_full;
            mean_suffix =
              (if executed = 0 then 1.0
               else !suffix_sum /. float_of_int executed);
          }
  in
  result_of_counts ?replay_stats ~golden:g ~model ~trials:done_ counts

(* Decode once per campaign, not once per trial: the decoded program is
   immutable and shared read-only by every pool domain. *)
let run ?pool ?seed ?fuel_factor ?model ?ci_halfwidth ?checkpoint
    ?checkpoint_every ?resume ?identity ?replay ?compile ?retry_budget
    ?allow_legacy_checkpoint ?shard ?prior ~trials sched =
  run_decoded ?pool ?seed ?fuel_factor ?model ?ci_halfwidth ?checkpoint
    ?checkpoint_every ?resume ?identity ?replay ?compile ?retry_budget
    ?allow_legacy_checkpoint ?shard ?prior ~trials
    (Decode.of_schedule sched)

(* Per-class counts in checkpoint order (the [idx] order) — what the
   checkpoint file and the result store persist. *)
let counts r =
  [| r.benign; r.detected; r.exceptions; r.corrupt; r.timeouts; r.recovered |]

(* Rebuild a result from persisted counts — the store's hit path, which
   must not need a golden run (that is the whole point of the store). *)
let of_counts ?(model = Fault.Reg_bit) ~golden_cycles ~golden_dyn ~population
    counts =
  if Array.length counts <> n_classes then
    invalid_arg
      (Printf.sprintf "Montecarlo.of_counts: %d outcome classes, expected %d"
         (Array.length counts) n_classes);
  Array.iter
    (fun c ->
      if c < 0 then invalid_arg "Montecarlo.of_counts: negative count")
    counts;
  {
    trials = Array.fold_left ( + ) 0 counts;
    benign = counts.(0);
    detected = counts.(1);
    exceptions = counts.(2);
    corrupt = counts.(3);
    timeouts = counts.(4);
    recovered = counts.(5);
    golden_cycles;
    golden_dyn;
    population;
    model;
    replay = None;
  }

let recovered_fraction r =
  if r.trials = 0 then 0.0
  else float_of_int r.recovered /. float_of_int r.trials

(* Mean Work To Failure (Reis et al.), relative to an unprotected
   baseline: MWTF = 1 / (execution-time overhead × SDC fraction). A
   scheme that doubles runtime but kills 10× more silent corruptions is
   still a 5× MWTF win; a campaign with zero corrupt trials has
   unbounded MWTF at this sample size. *)
let mwtf ~baseline_cycles r =
  let overhead =
    float_of_int r.golden_cycles /. float_of_int (max 1 baseline_cycles)
  in
  let sdc = float_of_int r.corrupt /. float_of_int (max 1 r.trials) in
  if sdc <= 0.0 then infinity else 1.0 /. (overhead *. sdc)

let pp ppf r =
  let item c =
    let lo, hi = interval r c in
    Format.asprintf "%.1f%% [%.1f, %.1f] %s" (percent r c) lo hi
      (class_name c)
  in
  Format.fprintf ppf "%d trials (%s, population %d): %s" r.trials
    (Fault.model_name r.model) r.population
    (String.concat ", " (List.map item all_classes))

let pp_replay ppf (s : replay_stats) =
  let executed = s.replayed + s.full_runs in
  Format.fprintf ppf
    "replay: %d snapshots (%.1f KiB), %d/%d trials replayed, mean suffix \
     %.1f%%"
    s.snapshots
    (float_of_int s.snapshot_bytes /. 1024.0)
    s.replayed executed
    (100.0 *. s.mean_suffix)
