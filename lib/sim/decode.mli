(** Pre-decoded execution form of a schedule: decode once, simulate many.

    Monte-Carlo fault injection re-simulates the {e same} schedule
    thousands of times, so everything that can be resolved once per
    schedule is resolved here instead of per executed instruction:

    - branch targets become block {e indices} (no per-taken-branch
      linear label scan);
    - callees become function {e indices} (no [List.assoc] per dynamic
      call);
    - per-instruction issue latencies are precomputed (no
      [Latency.of_op] dispatch in the hot loop);
    - role indices are baked in (no per-instruction variant match for
      the role tally);
    - bundles with no instructions are stripped, keeping their cycle
      offset (an empty bundle is a real NOP cycle but executes nothing);
    - the initial memory image is rendered to one pristine byte string
      that each trial restores with a single [Bytes.blit].

    Decoding only changes {e how} the simulator executes, never what the
    machine does: {!Casted_sim.Simulator.run_decoded} produces
    bit-identical {!Outcome.run}s to interpreting the [Schedule.t]
    directly. Decode also validates every branch label and callee name
    up front, so a malformed schedule fails loudly at decode time
    instead of mid-run. *)

(** One decoded instruction: the IR fields the interpreter reads, plus
    everything resolvable at decode time. *)
type dinsn = {
  op : Casted_ir.Opcode.t;
  uses : Casted_ir.Reg.t array;  (** shared with the source [Insn.t] *)
  defs : Casted_ir.Reg.t array;
  imm : int64;
  fimm : float;
  id : int;  (** source instruction id (check reporting) *)
  latency : int;  (** issue latency under the schedule's config *)
  role : int;  (** {!Casted_ir.Insn.role} as a dense index 0..3 *)
  target : int;
      (** [Br]/[Brc]: taken-branch block index; [Call]: callee function
          index; -1 otherwise *)
  target2 : int;  (** [Brc]: fall-through block index; -1 otherwise *)
}

type dbundle = {
  at : int;
      (** static cycle offset of this bundle within its block — kept
          through empty-bundle stripping so NOP cycles still gate issue
          time *)
  slots : dinsn array array;  (** [slots.(cluster)], at least one insn *)
}

type dblock = {
  label : string;  (** for profiling only *)
  bundles : dbundle array;  (** empty cycles stripped *)
  checkpoint : bool;
      (** the block carries a [Cpt] marker: its loop top is a
          rollback-region boundary ({!Simulator.run_recovering}) *)
}

type dfunc = {
  func : Casted_ir.Func.t;
  params : Casted_ir.Reg.t array;
      (** [func.params] as an array, so call-argument binding is an
          index loop instead of a [List.iter2] *)
  blocks : dblock array;  (** same order as the schedule's blocks *)
}

type t = {
  sched : Casted_sched.Schedule.t;  (** provenance *)
  config : Casted_machine.Config.t;
  funcs : dfunc array;
  entry : int;  (** index of the entry function in [funcs] *)
  image : Bytes.t;
      (** pristine initial memory ([mem_size] bytes, data segments
          loaded) — read-only, shared across trials and domains *)
  output_base : int;
  output_len : int;
  digest_len : int;
      (** prefix of the arena covered by the architectural memory
          digest: [shadow_base] for DME programs (the replica image
          above it is intentionally divergent layout, not architectural
          state), [mem_size] otherwise *)
}

(** [of_schedule sched] compiles the schedule into its execution-ready
    form. Raises [Invalid_argument] for an unknown branch label, callee
    or entry function, or an out-of-bounds data segment. Traced as a
    [sim.decode] span; counted by the [sim.decodes] metric. *)
val of_schedule : Casted_sched.Schedule.t -> t
