(* First-class machine state for the pre-decoded simulator.

   Everything a run mutates lives here: the dynamic-event counters that
   size injection populations, the lockstep clock, the control-transfer
   scratch, the working memory arena and the cache-hierarchy model, plus
   the per-call register file ([regfile]). Pulling the state out of the
   interpreter makes it snapshotable: [snapshot] captures the whole
   machine in O(state size) at an entry-function block boundary (call
   stack empty), and [restore] rebuilds an equivalent machine from it —
   the foundation of golden-prefix replay (Replay). *)

module Reg = Casted_ir.Reg
module Func = Casted_ir.Func
module Config = Casted_machine.Config
module Hierarchy = Casted_cache.Hierarchy

(* Per-call register file with scoreboard metadata: for every register we
   track its value, the time it becomes readable and the cluster that
   produced it (cross-cluster reads pay the interconnect delay). *)
type regfile = {
  gp : int64 array;
  fpv : float array;
  prv : bool array;
  gp_ready : int array;
  fp_ready : int array;
  pr_ready : int array;
  gp_home : int array;
  fp_home : int array;
  pr_home : int array;
}

let make_regfile func ~time =
  let n c = max 1 (Func.reg_count func c) in
  let ngp = n Reg.Gp and nfp = n Reg.Fp and npr = n Reg.Pr in
  {
    gp = Array.make ngp 0L;
    fpv = Array.make nfp 0.0;
    prv = Array.make npr false;
    gp_ready = Array.make ngp time;
    fp_ready = Array.make nfp time;
    pr_ready = Array.make npr time;
    gp_home = Array.make ngp (-1);
    fp_home = Array.make nfp (-1);
    pr_home = Array.make npr (-1);
  }

let copy_regfile rf =
  {
    gp = Array.copy rf.gp;
    fpv = Array.copy rf.fpv;
    prv = Array.copy rf.prv;
    gp_ready = Array.copy rf.gp_ready;
    fp_ready = Array.copy rf.fp_ready;
    pr_ready = Array.copy rf.pr_ready;
    gp_home = Array.copy rf.gp_home;
    fp_home = Array.copy rf.fp_home;
    pr_home = Array.copy rf.pr_home;
  }

(* A value crossing a call boundary. *)
type value = V_gp of int64 | V_fp of float | V_pr of bool

(* Control transfer is a mutable state field instead of a per-block ref
   so the bundle-issue loop allocates nothing: [xfer_none] while the
   block runs, a block index after a (taken) branch, [xfer_return] after
   Ret (with the value parked in [retv]). *)
let xfer_none = -2
let xfer_return = -1

type t = {
  mem : Memory.t;
  base : Bytes.t;  (* pristine image [mem] was last reset from *)
  hier : Hierarchy.t;
  mutable time : int;  (* issue time of the last issued bundle *)
  mutable dyn : int;
  mutable defs : int;  (* dynamic register slots written *)
  mutable mems : int;  (* dynamic memory accesses (loads + stores) *)
  mutable branches : int;  (* dynamic conditional branches *)
  mutable xreads : int;  (* operand reads crossing the cluster boundary *)
  mutable corrections : int;  (* faults repaired by voting sequences *)
  roles : int array;  (* dynamic count per role *)
  mutable depth : int;
  mutable tmax : int;  (* scratch for bundle issue-time computation *)
  mutable xfer : int;
  mutable retv : value option;
}

(* Each executor domain keeps one working memory arena — no
   [Memory.create] + [load_image] per run. The arena is private to the
   domain (pool workers run trials sequentially), and it is reset before
   any instruction executes, so trials cannot observe each other's
   stores. When consecutive runs share the same pristine image (the
   common case: one campaign, thousands of trials), the reset is
   [Memory.undo_writes] — O(pages the previous trial dirtied), not a
   full-arena blit. *)
type mem_scratch = { m : Memory.t; mutable m_base : Bytes.t }

let scratch_mem : mem_scratch option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let scratch_memory base =
  let r = Domain.DLS.get scratch_mem in
  match !r with
  | Some s when Memory.size s.m = Bytes.length base ->
      if s.m_base == base then Memory.undo_writes s.m base
      else begin
        Memory.reset s.m base;
        s.m_base <- base
      end;
      s.m
  | _ ->
      let m = Memory.of_image base in
      r := Some { m; m_base = base };
      m

(* Same treatment for the cache model: building the three levels
   allocates tens of thousands of way records, so each domain keeps one
   hierarchy per (geometry, perfect) and cold-restores it with
   [Hierarchy.reset] — field writes, no allocation — per run. *)
let scratch_hier :
    (Config.cache_config * bool * Hierarchy.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let scratch_hierarchy cc ~perfect =
  let r = Domain.DLS.get scratch_hier in
  match !r with
  | Some (cc', perfect', h) when perfect' = perfect && cc' = cc ->
      Hierarchy.reset h;
      h
  | _ ->
      let h = if perfect then Hierarchy.perfect cc else Hierarchy.create cc in
      r := Some (cc, perfect, h);
      h

let fresh ~image ~cache ~perfect =
  {
    mem = scratch_memory image;
    base = image;
    hier = scratch_hierarchy cache ~perfect;
    time = -1;
    dyn = 0;
    defs = 0;
    mems = 0;
    branches = 0;
    xreads = 0;
    corrections = 0;
    roles = Array.make 4 0;
    depth = 0;
    tmax = 0;
    xfer = xfer_none;
    retv = None;
  }

(* A snapshot is only taken at an entry-function block-loop top with the
   call stack empty (depth = 1), where [xfer]/[retv]/[tmax] are dead:
   the block body overwrites them before any read. So the snapshot needs
   exactly the counters, the clock, the entry register file, the memory
   state, the cache state and the block index to resume at. The memory
   is a sparse delta over the (shared, never-mutated) pristine image, so
   a snapshot costs O(pages written so far), not O(arena). All captured
   fields are deep copies, never mutated after capture — safe to share
   read-only across pool domains. *)
type snapshot = {
  s_time : int;
  s_dyn : int;
  s_defs : int;
  s_mems : int;
  s_branches : int;
  s_xreads : int;
  s_corrections : int;
  s_roles : int array;
  block : int;  (* entry-function block index to resume at *)
  regs : regfile;
  mem_base : Bytes.t;  (* shared pristine image, not a copy *)
  mem_delta : Memory.delta;
  cache : Hierarchy.snapshot;
}

let snapshot st ~regs ~block =
  {
    s_time = st.time;
    s_dyn = st.dyn;
    s_defs = st.defs;
    s_mems = st.mems;
    s_branches = st.branches;
    s_xreads = st.xreads;
    s_corrections = st.corrections;
    s_roles = Array.copy st.roles;
    block;
    regs = copy_regfile regs;
    mem_base = st.base;
    mem_delta = Memory.delta st.mem;
    cache = Hierarchy.snapshot st.hier;
  }

let restore ~cache snap =
  let hier =
    scratch_hierarchy cache ~perfect:(Hierarchy.snapshot_perfect snap.cache)
  in
  Hierarchy.restore hier snap.cache;
  let mem = scratch_memory snap.mem_base in
  Memory.apply_delta mem snap.mem_delta;
  let st =
    {
      mem;
      base = snap.mem_base;
      hier;
      time = snap.s_time;
      dyn = snap.s_dyn;
      defs = snap.s_defs;
      mems = snap.s_mems;
      branches = snap.s_branches;
      xreads = snap.s_xreads;
      corrections = snap.s_corrections;
      roles = Array.copy snap.s_roles;
      (* Resuming inside the entry function's block loop: one live call
         frame, no pending transfer. *)
      depth = 1;
      tmax = 0;
      xfer = xfer_none;
      retv = None;
    }
  in
  (st, copy_regfile snap.regs)

let regfile_bytes rf =
  let words =
    Array.length rf.gp + Array.length rf.fpv + Array.length rf.prv
    + Array.length rf.gp_ready + Array.length rf.fp_ready
    + Array.length rf.pr_ready + Array.length rf.gp_home
    + Array.length rf.fp_home + Array.length rf.pr_home
  in
  words * Sys.word_size / 8

let snapshot_bytes snap =
  Memory.delta_bytes snap.mem_delta
  + Hierarchy.snapshot_bytes snap.cache
  + regfile_bytes snap.regs
  + ((Array.length snap.s_roles + 8) * Sys.word_size / 8)
