(** Crash-proof campaign checkpoints.

    A long Monte-Carlo campaign periodically writes its partial tally
    to disk so a killed run can resume without repeating work. Because
    trial [i] derives its own RNG from [(seed, i)] ({!Rng.derive}), a
    resumed campaign is bit-identical to the uninterrupted one: the
    checkpoint only needs the class counts of the completed prefix and
    the index to continue from.

    The format is a small self-describing text file written atomically
    (temp file + rename), so a kill during a write can never leave a
    truncated checkpoint behind. *)

type t = {
  seed : int;
  fuel_factor : int;
  model : Fault.model;
  trials : int;  (** the campaign's requested trial count *)
  next_index : int;  (** trials [0, next_index) are tallied in [counts] *)
  counts : int array;
      (** per-class tallies, indexed like [Montecarlo.all_classes] *)
  identity : string;
      (** opaque campaign identity — the (workload, scheme, config,
          fault-model) tuple rendered by the caller. A resume compares
          it against the resuming campaign's identity and fails loudly
          on mismatch, so a checkpoint written by one campaign can never
          silently seed another. [""] for checkpoints written before the
          field existed (or by callers that opt out). *)
}

(** Atomically write [t] to [path]. Raises [Invalid_argument] if the
    identity contains a newline (it must fit the one-line format). *)
val save : path:string -> t -> unit

(** [load ~path ()] is [Ok None] when no checkpoint exists at [path],
    [Ok (Some t)] for a well-formed checkpoint, and [Error msg] for a
    file that exists but does not parse — a corrupt checkpoint must
    abort loudly, never silently restart the campaign.

    A legacy file with no [identity] field at all (pre-identity format)
    is an [Error] unless [allow_legacy] is set, in which case it loads
    with the empty identity after a loud warning on stderr: nothing
    ties such a file to the campaign resuming from it. *)
val load :
  ?allow_legacy:bool -> path:string -> unit -> (t option, string) result
