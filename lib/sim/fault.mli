(** Transient-fault taxonomy (paper §IV-C, generalised).

    The paper evaluates a single fault model: one flipped bit in one
    output register of one random dynamic instruction. SEU/SET studies
    (Azambuja et al.) show that control-path and multi-bit upsets behave
    qualitatively differently from data-path flips, so the injector
    models five fault classes:

    - {!Reg_bit}: the paper's model — a single bit flip in one output
      register slot of one dynamic instruction;
    - {!Burst}: a multi-bit upset — [width] adjacent bits of one output
      register slot flip together (MBU);
    - {!Mem}: memory/cache-line corruption — one bit of one byte inside
      the 64-byte line touched by a random dynamic memory access flips;
    - {!Control}: an opcode/control fault — one random dynamic
      conditional branch takes the wrong direction;
    - {!Xcluster}: an inter-cluster communication fault — the value read
      across the cluster boundary (the path CASTED's DCED/adaptive
      schemes uniquely stress) is corrupted in flight; the register file
      itself stays intact.

    Each model draws its target uniformly from its own dynamic
    population, measured on the golden run (see {!population}). *)

(** The model tag, as selected on the command line. *)
type model = Reg_bit | Burst | Mem | Control | Xcluster

val all_models : model list

(** Command-line names: ["reg-bit"], ["burst"], ["mem"], ["control"],
    ["xcluster"]. *)
val model_name : model -> string

val model_of_string : string -> model option

(** A concrete fault to inject into one run. All [target_*] indices
    count dynamic events from 0 in program order, exactly as the golden
    run counts them. *)
type t =
  | Reg_flip of { target_slot : int; bit : int }
      (** flip [bit] of the [target_slot]-th dynamically written
          register slot (predicates negate instead) *)
  | Burst_flip of { target_slot : int; bit : int; width : int }
      (** flip [width] adjacent bits starting at [bit] (mod 64) *)
  | Mem_flip of { target_access : int; offset : int; bit : int }
      (** after the [target_access]-th dynamic memory access, flip
          [bit] of the byte at [offset] inside the accessed 64-byte
          line *)
  | Branch_flip of { target_branch : int }
      (** invert the direction of the [target_branch]-th dynamic
          conditional branch *)
  | Xcluster_flip of { target_read : int; bit : int }
      (** flip [bit] of the [target_read]-th operand value read across
          the cluster boundary *)

val model_of : t -> model

(** Dynamic event populations a fault can target, measured on the
    golden run. *)
type population = {
  def_slots : int;  (** register slots written (≥ defining insns) *)
  mem_accesses : int;  (** loads + stores executed *)
  cond_branches : int;  (** conditional branches executed *)
  xcluster_reads : int;  (** operand reads crossing the cluster boundary *)
}

(** Cache-line size assumed by the {!Mem} model (bytes). *)
val line_bytes : int

(** Size of the pool the given model draws from. A population of 0
    means the fault path does not exist in this configuration (e.g. no
    cross-cluster reads on a single-cluster scheme). *)
val population_size : model -> population -> int

(** Draw a fault of the given model uniformly over its population.
    The register-flip target is drawn over {e register slots}, not
    instructions, so every written slot is equally likely regardless of
    how many slots its instruction defines. Raises [Invalid_argument]
    if the model's population is empty. *)
val random : model -> Rng.t -> population:population -> t

(** Flip [bit] of an integer value. *)
val flip_int : bit:int -> int64 -> int64

(** Flip [width] adjacent bits starting at [bit] (indices mod 64). *)
val flip_burst : bit:int -> width:int -> int64 -> int64

(** Flip [bit] of a float's IEEE-754 representation. *)
val flip_float : bit:int -> float -> float

val flip_float_burst : bit:int -> width:int -> float -> float

val pp : Format.formatter -> t -> unit
