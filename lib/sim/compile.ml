(* Stage-2 compilation: lower a pre-decoded program (Decode.t) into
   arrays of pre-bound OCaml closures — classic threaded code. Every
   per-instruction decision the interpreter makes dynamically (the
   ~40-arm Opcode match, Reg.cls dispatch per operand, latency lookup,
   immediate/target fetch, fault-site option matching, array bounds
   checks) is resolved here, once, at compile time. What remains at run
   time is a flat array walk: one indirect call per dynamic instruction
   into a closure that reads its operands from unsafe, compile-proven
   indices, computes, and writes back.

   The contract is bit-identity with the interpreter (Simulator): both
   engines mutate the same State.t with the same event ordering — dyn /
   fuel / role accounting first, operand reads left to right, memory
   touch after the cache access and the load itself, def-slot injection
   after the write-back, branch-counter increment after the predicate
   read. The verify oracle's four-way cross-check
   (run/run_decoded/run_replayed/run_compiled) holds the two engines to
   that contract over the whole example matrix.

   Fault hooks are pre-extracted into plain int "arms" on the compile
   context: an event counter fires its fault when it equals the arm
   after increment, and arm 0 means never (counters are >= 1 after
   increment). This removes every per-event [Fault.t option] match from
   the hot loop.

   Malformed programs (register indices out of the frame proven at
   compile time, non-canonical operand shapes) compile to poison
   closures that raise at execution time — the same observable point
   where the interpreter's own bounds checks would have raised — so
   compiling a bad program is harmless until it actually runs. *)

module Reg = Casted_ir.Reg
module Opcode = Casted_ir.Opcode
module Cond = Casted_ir.Cond
module Func = Casted_ir.Func
module Config = Casted_machine.Config
module Hierarchy = Casted_cache.Hierarchy

type cctx = {
  st : State.t;
  funcs : cfunc array;
  fuel : int;
  delay : int;  (* cross-cluster interconnect delay, from the config *)
  (* Pre-extracted fault triggers: counter value (post-increment) at
     which the single armed fault site fires; 0 = never. *)
  def_arm : int;
  def_bit : int;
  def_width : int;
  mem_arm : int;
  mem_off : int;
  mem_bit : int;
  br_arm : int;
  x_arm : int;
  x_bit : int;
  (* Return-value scratch: Ret parks the value here (class-coded, -1 =
     none), Call consumes it — no [State.value option] allocation. *)
  mutable ret_cls : int;
  mutable ret_gp : int64;
  mutable ret_fp : float;
  mutable ret_pr : bool;
}

and cinsn = cctx -> State.regfile -> int -> unit

and cbundle = {
  c_at : int;  (* earliest issue offset within the block *)
  c_oob : bool;  (* an issue-scan operand is out of frame: raise *)
  (* Issue-scan queues, one per register class: each entry packs
     [(reg_idx lsl 16) lor cluster] so the scan is a flat int walk. *)
  q_gp : int array;
  q_fp : int array;
  q_pr : int array;
  c_body : cinsn array;  (* flattened (cluster, slot) order *)
}

and cblock = { c_bundles : cbundle array }
and cfunc = { c_func : Func.t; c_blocks : cblock array }

type t = { d : Decode.t; cfuncs : cfunc array }

let decoded t = t.d

let oob = "index out of bounds"

(* Per-instruction bookkeeping shared by every closure: dynamic count,
   fuel, role tally. Mirrors the interpreter's exec_insn preamble. *)
let pre c role =
  let st = c.st in
  let dyn = st.State.dyn + 1 in
  st.State.dyn <- dyn;
  if dyn > c.fuel then raise Runtime.Out_of_fuel;
  let roles = st.State.roles in
  Array.unsafe_set roles role (Array.unsafe_get roles role + 1)

(* Operand reads with cross-cluster accounting; indices are proven in
   bounds at compile time. *)

let read_gp c (fr : State.regfile) i cluster =
  let v = Array.unsafe_get fr.State.gp i in
  let home = Array.unsafe_get fr.State.gp_home i in
  if home >= 0 && home <> cluster then begin
    let st = c.st in
    let x = st.State.xreads + 1 in
    st.State.xreads <- x;
    if x = c.x_arm then Fault.flip_int ~bit:c.x_bit v else v
  end
  else v

let read_fp c (fr : State.regfile) i cluster =
  let v = Array.unsafe_get fr.State.fpv i in
  let home = Array.unsafe_get fr.State.fp_home i in
  if home >= 0 && home <> cluster then begin
    let st = c.st in
    let x = st.State.xreads + 1 in
    st.State.xreads <- x;
    if x = c.x_arm then Fault.flip_float ~bit:c.x_bit v else v
  end
  else v

let read_pr c (fr : State.regfile) i cluster =
  let v = Array.unsafe_get fr.State.prv i in
  let home = Array.unsafe_get fr.State.pr_home i in
  if home >= 0 && home <> cluster then begin
    let st = c.st in
    let x = st.State.xreads + 1 in
    st.State.xreads <- x;
    if x = c.x_arm then not v else v
  end
  else v

(* Write-back: value, ready time (monotone max), producing cluster. *)

let wr_gp (fr : State.regfile) i v ready home =
  Array.unsafe_set fr.State.gp i v;
  if ready > Array.unsafe_get fr.State.gp_ready i then
    Array.unsafe_set fr.State.gp_ready i ready;
  Array.unsafe_set fr.State.gp_home i home

let wr_fp (fr : State.regfile) i v ready home =
  Array.unsafe_set fr.State.fpv i v;
  if ready > Array.unsafe_get fr.State.fp_ready i then
    Array.unsafe_set fr.State.fp_ready i ready;
  Array.unsafe_set fr.State.fp_home i home

let wr_pr (fr : State.regfile) i v ready home =
  Array.unsafe_set fr.State.prv i v;
  if ready > Array.unsafe_get fr.State.pr_ready i then
    Array.unsafe_set fr.State.pr_ready i ready;
  Array.unsafe_set fr.State.pr_home i home

(* Def-slot fault injection, right after write-back. *)

let inject_gp c (fr : State.regfile) i =
  let st = c.st in
  let n = st.State.defs + 1 in
  st.State.defs <- n;
  if n = c.def_arm then
    Array.unsafe_set fr.State.gp i
      (Fault.flip_burst ~bit:c.def_bit ~width:c.def_width
         (Array.unsafe_get fr.State.gp i))

let inject_fp c (fr : State.regfile) i =
  let st = c.st in
  let n = st.State.defs + 1 in
  st.State.defs <- n;
  if n = c.def_arm then
    Array.unsafe_set fr.State.fpv i
      (Fault.flip_float_burst ~bit:c.def_bit ~width:c.def_width
         (Array.unsafe_get fr.State.fpv i))

let inject_pr c (fr : State.regfile) i =
  let st = c.st in
  let n = st.State.defs + 1 in
  st.State.defs <- n;
  if n = c.def_arm then
    Array.unsafe_set fr.State.prv i (not (Array.unsafe_get fr.State.prv i))

let touch_mem c addr =
  let st = c.st in
  let n = st.State.mems + 1 in
  st.State.mems <- n;
  if n = c.mem_arm then begin
    let line =
      Int64.logand addr (Int64.lognot (Int64.of_int (Fault.line_bytes - 1)))
    in
    Memory.flip_bit st.State.mem
      ~addr:(Int64.add line (Int64.of_int c.mem_off))
      ~bit:c.mem_bit
  end

(* Issue-time scan over one packed queue: fold cross-cluster-delayed
   operand arrival times into st.tmax. *)
let scan_q st (ready : int array) (home : int array) delay (q : int array) =
  for i = 0 to Array.length q - 1 do
    let p = Array.unsafe_get q i in
    let idx = p lsr 16 in
    let cl = p land 0xffff in
    let r = Array.unsafe_get ready idx in
    let h = Array.unsafe_get home idx in
    let need = if h >= 0 && h <> cl then r + delay else r in
    if need > st.State.tmax then st.State.tmax <- need
  done

(* The block loop — same two-phase bundle semantics as the interpreter:
   compute the lockstep issue time over every operand of the whole
   bundle, then execute the flattened body at that time. Tail-recursive,
   allocation-free. *)
let rec exec_cblocks c (fr : State.regfile) (blocks : cblock array) cur =
  let st = c.st in
  let b = Array.unsafe_get blocks cur in
  let block_start = st.State.time + 1 in
  st.State.xfer <- State.xfer_none;
  let bundles = b.c_bundles in
  for i = 0 to Array.length bundles - 1 do
    let cb = Array.unsafe_get bundles i in
    if cb.c_oob then invalid_arg oob;
    let t0 = st.State.time + 1 in
    let nb = block_start + cb.c_at in
    st.State.tmax <- (if nb > t0 then nb else t0);
    scan_q st fr.State.gp_ready fr.State.gp_home c.delay cb.q_gp;
    scan_q st fr.State.fp_ready fr.State.fp_home c.delay cb.q_fp;
    scan_q st fr.State.pr_ready fr.State.pr_home c.delay cb.q_pr;
    let t = st.State.tmax in
    st.State.time <- t;
    let body = cb.c_body in
    for k = 0 to Array.length body - 1 do
      (Array.unsafe_get body k) c fr t
    done
  done;
  if st.State.xfer >= 0 then exec_cblocks c fr blocks st.State.xfer
  else if st.State.xfer = State.xfer_return then ()
  else invalid_arg "Simulator: block finished without control transfer"

(* ---- Instruction compilation ---- *)

(* Argument binders for Call: read one caller operand (cross-cluster
   accounted), write it into the fresh callee frame. Compiled per formal
   parameter so the call site does no class dispatch. *)
type binder = cctx -> State.regfile -> State.regfile -> int -> unit

let compile_binder ~cluster ~caller:(cngp, cnfp, cnpr)
    ~callee:(kngp, knfp, knpr) (u : Reg.t) (p : Reg.t) : binder =
  let ui = Reg.idx u and pi = Reg.idx p in
  match (Reg.cls u, Reg.cls p) with
  | Reg.Gp, Reg.Gp when ui < cngp && pi < kngp ->
      fun c caller callee ready ->
        let v = read_gp c caller ui cluster in
        wr_gp callee pi v ready (-1)
  | Reg.Fp, Reg.Fp when ui < cnfp && pi < knfp ->
      fun c caller callee ready ->
        let v = read_fp c caller ui cluster in
        wr_fp callee pi v ready (-1)
  | Reg.Pr, Reg.Pr when ui < cnpr && pi < knpr ->
      fun c caller callee ready ->
        let v = read_pr c caller ui cluster in
        wr_pr callee pi v ready (-1)
  | (Reg.Gp, Reg.Gp) | (Reg.Fp, Reg.Fp) | (Reg.Pr, Reg.Pr) ->
      fun _ _ _ _ -> invalid_arg oob
  | _ -> fun _ _ _ _ -> invalid_arg "Simulator: value class mismatch"

let compile_insn (d : Decode.t) ~sizes:(ngp, nfp, npr) ~cluster
    (di : Decode.dinsn) : cinsn =
  let role = di.Decode.role in
  let lat = di.Decode.latency in
  let uses = di.Decode.uses and defs = di.Decode.defs in
  let nu = Array.length uses and nd = Array.length defs in
  let u i = Reg.idx uses.(i) in
  let poison msg : cinsn = fun c _ _ -> pre c role; invalid_arg msg in
  (* Canonical single-def shapes, checked against the frame the written
     array actually lives in AND the declared class (injection dispatches
     on the declared class, the write on the arm's class — they agree in
     every pipeline-built program). *)
  let gp_def () = nd = 1 && Reg.cls defs.(0) = Reg.Gp && Reg.idx defs.(0) < ngp in
  let fp_def () = nd = 1 && Reg.cls defs.(0) = Reg.Fp && Reg.idx defs.(0) < nfp in
  let pr_def () = nd = 1 && Reg.cls defs.(0) = Reg.Pr && Reg.idx defs.(0) < npr in
  let no_def () = nd = 0 in
  match di.Decode.op with
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem
  | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Shl | Opcode.Shr
  | Opcode.Sra ->
      if not (nu >= 2 && u 0 < ngp && u 1 < ngp && gp_def ()) then poison oob
      else
        let a = u 0 and b = u 1 and dd = Reg.idx defs.(0) in
        let f =
          match di.Decode.op with
          | Opcode.Add -> Int64.add
          | Opcode.Sub -> Int64.sub
          | Opcode.Mul -> Int64.mul
          | Opcode.Div -> Alu.sdiv
          | Opcode.Rem -> Alu.srem
          | Opcode.And -> Int64.logand
          | Opcode.Or -> Int64.logor
          | Opcode.Xor -> Int64.logxor
          | Opcode.Shl -> fun x y -> Int64.shift_left x (Alu.shift_amount y)
          | Opcode.Shr ->
              fun x y -> Int64.shift_right_logical x (Alu.shift_amount y)
          | _ -> fun x y -> Int64.shift_right x (Alu.shift_amount y)
        in
        fun c fr t ->
          pre c role;
          let x = read_gp c fr a cluster in
          let y = read_gp c fr b cluster in
          wr_gp fr dd (f x y) (t + lat) cluster;
          inject_gp c fr dd
  | Opcode.Addi | Opcode.Muli | Opcode.Andi | Opcode.Xori | Opcode.Shli
  | Opcode.Shri | Opcode.Srai ->
      if not (nu >= 1 && u 0 < ngp && gp_def ()) then poison oob
      else
        let a = u 0 and dd = Reg.idx defs.(0) and imm = di.Decode.imm in
        let f =
          match di.Decode.op with
          | Opcode.Addi -> Int64.add
          | Opcode.Muli -> Int64.mul
          | Opcode.Andi -> Int64.logand
          | Opcode.Xori -> Int64.logxor
          | Opcode.Shli -> fun x y -> Int64.shift_left x (Alu.shift_amount y)
          | Opcode.Shri ->
              fun x y -> Int64.shift_right_logical x (Alu.shift_amount y)
          | _ -> fun x y -> Int64.shift_right x (Alu.shift_amount y)
        in
        fun c fr t ->
          pre c role;
          let x = read_gp c fr a cluster in
          wr_gp fr dd (f x imm) (t + lat) cluster;
          inject_gp c fr dd
  | Opcode.Mov ->
      if not (nu >= 1 && u 0 < ngp && gp_def ()) then poison oob
      else
        let a = u 0 and dd = Reg.idx defs.(0) in
        fun c fr t ->
          pre c role;
          let v = read_gp c fr a cluster in
          wr_gp fr dd v (t + lat) cluster;
          inject_gp c fr dd
  | Opcode.Movi ->
      if not (gp_def ()) then poison oob
      else
        let dd = Reg.idx defs.(0) and imm = di.Decode.imm in
        fun c fr t ->
          pre c role;
          wr_gp fr dd imm (t + lat) cluster;
          inject_gp c fr dd
  | Opcode.Cmp cond ->
      if not (nu >= 2 && u 0 < ngp && u 1 < ngp && pr_def ()) then poison oob
      else
        let a = u 0 and b = u 1 and dd = Reg.idx defs.(0) in
        let f = Cond.eval_int cond in
        fun c fr t ->
          pre c role;
          let x = read_gp c fr a cluster in
          let y = read_gp c fr b cluster in
          wr_pr fr dd (f x y) (t + lat) cluster;
          inject_pr c fr dd
  | Opcode.Cmpi cond ->
      if not (nu >= 1 && u 0 < ngp && pr_def ()) then poison oob
      else
        let a = u 0 and dd = Reg.idx defs.(0) and imm = di.Decode.imm in
        let f = Cond.eval_int cond in
        fun c fr t ->
          pre c role;
          let x = read_gp c fr a cluster in
          wr_pr fr dd (f x imm) (t + lat) cluster;
          inject_pr c fr dd
  | Opcode.Sel ->
      if
        not
          (nu >= 3 && u 0 < npr && u 1 < ngp && u 2 < ngp && gp_def ())
      then poison oob
      else
        let up = u 0 and u1 = u 1 and u2 = u 2 and dd = Reg.idx defs.(0) in
        let voting = role = 2 (* Insn.Check: TMR majority vote *) in
        fun c fr t ->
          pre c role;
          let p = read_pr c fr up cluster in
          let v =
            if p then read_gp c fr u1 cluster else read_gp c fr u2 cluster
          in
          if
            voting
            && ((not p)
               || not (Int64.equal v (Array.unsafe_get fr.State.gp u2)))
          then c.st.State.corrections <- c.st.State.corrections + 1;
          wr_gp fr dd v (t + lat) cluster;
          inject_gp c fr dd
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv ->
      if not (nu >= 2 && u 0 < nfp && u 1 < nfp && fp_def ()) then poison oob
      else
        let a = u 0 and b = u 1 and dd = Reg.idx defs.(0) in
        let f =
          match di.Decode.op with
          | Opcode.Fadd -> ( +. )
          | Opcode.Fsub -> ( -. )
          | Opcode.Fmul -> ( *. )
          | _ -> ( /. )
        in
        fun c fr t ->
          pre c role;
          let x = read_fp c fr a cluster in
          let y = read_fp c fr b cluster in
          wr_fp fr dd (f x y) (t + lat) cluster;
          inject_fp c fr dd
  | Opcode.Fmov ->
      if not (nu >= 1 && u 0 < nfp && fp_def ()) then poison oob
      else
        let a = u 0 and dd = Reg.idx defs.(0) in
        fun c fr t ->
          pre c role;
          let v = read_fp c fr a cluster in
          wr_fp fr dd v (t + lat) cluster;
          inject_fp c fr dd
  | Opcode.Fmovi ->
      if not (fp_def ()) then poison oob
      else
        let dd = Reg.idx defs.(0) and fimm = di.Decode.fimm in
        fun c fr t ->
          pre c role;
          wr_fp fr dd fimm (t + lat) cluster;
          inject_fp c fr dd
  | Opcode.Fcmp cond ->
      if not (nu >= 2 && u 0 < nfp && u 1 < nfp && pr_def ()) then poison oob
      else
        let a = u 0 and b = u 1 and dd = Reg.idx defs.(0) in
        let f = Cond.eval_float cond in
        fun c fr t ->
          pre c role;
          let x = read_fp c fr a cluster in
          let y = read_fp c fr b cluster in
          wr_pr fr dd (f x y) (t + lat) cluster;
          inject_pr c fr dd
  | Opcode.Itof ->
      if not (nu >= 1 && u 0 < ngp && fp_def ()) then poison oob
      else
        let a = u 0 and dd = Reg.idx defs.(0) in
        fun c fr t ->
          pre c role;
          let v = Int64.to_float (read_gp c fr a cluster) in
          wr_fp fr dd v (t + lat) cluster;
          inject_fp c fr dd
  | Opcode.Ftoi ->
      if not (nu >= 1 && u 0 < nfp && gp_def ()) then poison oob
      else
        let a = u 0 and dd = Reg.idx defs.(0) in
        fun c fr t ->
          pre c role;
          let f = read_fp c fr a cluster in
          let v =
            if Float.is_nan f then 0L else Int64.of_float (Float.trunc f)
          in
          wr_gp fr dd v (t + lat) cluster;
          inject_gp c fr dd
  | Opcode.Ld w | Opcode.Lds w ->
      if not (nu >= 1 && u 0 < ngp && gp_def ()) then poison oob
      else
        let a = u 0 and dd = Reg.idx defs.(0) and imm = di.Decode.imm in
        let signed =
          match di.Decode.op with Opcode.Lds _ -> true | _ -> false
        in
        fun c fr t ->
          pre c role;
          let st = c.st in
          let addr = Int64.add (read_gp c fr a cluster) imm in
          let lat =
            Hierarchy.access st.State.hier ~addr:(Runtime.addr_int addr)
              ~write:false
          in
          let v = Memory.read st.State.mem ~addr ~width:w ~signed in
          touch_mem c addr;
          wr_gp fr dd v (t + lat) cluster;
          inject_gp c fr dd
  | Opcode.Fld ->
      if not (nu >= 1 && u 0 < ngp && fp_def ()) then poison oob
      else
        let a = u 0 and dd = Reg.idx defs.(0) and imm = di.Decode.imm in
        fun c fr t ->
          pre c role;
          let st = c.st in
          let addr = Int64.add (read_gp c fr a cluster) imm in
          let lat =
            Hierarchy.access st.State.hier ~addr:(Runtime.addr_int addr)
              ~write:false
          in
          let v = Memory.read_float st.State.mem ~addr in
          touch_mem c addr;
          wr_fp fr dd v (t + lat) cluster;
          inject_fp c fr dd
  | Opcode.St w ->
      if not (nu >= 2 && u 0 < ngp && u 1 < ngp && no_def ()) then poison oob
      else
        let aval = u 0 and aaddr = u 1 and imm = di.Decode.imm in
        fun c fr _ ->
          pre c role;
          let st = c.st in
          let addr = Int64.add (read_gp c fr aaddr cluster) imm in
          let v = read_gp c fr aval cluster in
          Memory.write st.State.mem ~addr ~width:w v;
          ignore
            (Hierarchy.access st.State.hier ~addr:(Runtime.addr_int addr)
               ~write:true);
          touch_mem c addr
  | Opcode.Fst ->
      if not (nu >= 2 && u 0 < nfp && u 1 < ngp && no_def ()) then poison oob
      else
        let aval = u 0 and aaddr = u 1 and imm = di.Decode.imm in
        fun c fr _ ->
          pre c role;
          let st = c.st in
          let addr = Int64.add (read_gp c fr aaddr cluster) imm in
          let v = read_fp c fr aval cluster in
          Memory.write_float st.State.mem ~addr v;
          ignore
            (Hierarchy.access st.State.hier ~addr:(Runtime.addr_int addr)
               ~write:true);
          touch_mem c addr
  | Opcode.Chk ->
      if not (nu >= 2 && no_def ()) then poison oob
      else
        let id = di.Decode.id in
        (* Chk dispatches on the declared class of its first operand;
           both operands are then read through that class's file. *)
        (match Reg.cls uses.(0) with
        | Reg.Gp ->
            if not (u 0 < ngp && u 1 < ngp) then poison oob
            else
              let a = u 0 and b = u 1 in
              fun c fr _ ->
                pre c role;
                let x = read_gp c fr a cluster in
                let y = read_gp c fr b cluster in
                if not (Int64.equal x y) then raise (Runtime.Check_failed id)
        | Reg.Fp ->
            if not (u 0 < nfp && u 1 < nfp) then poison oob
            else
              let a = u 0 and b = u 1 in
              fun c fr _ ->
                pre c role;
                let x = read_fp c fr a cluster in
                let y = read_fp c fr b cluster in
                if
                  not
                    (Int64.equal (Int64.bits_of_float x)
                       (Int64.bits_of_float y))
                then raise (Runtime.Check_failed id)
        | Reg.Pr ->
            if not (u 0 < npr && u 1 < npr) then poison oob
            else
              let a = u 0 and b = u 1 in
              fun c fr _ ->
                pre c role;
                let x = read_pr c fr a cluster in
                let y = read_pr c fr b cluster in
                if not (Bool.equal x y) then raise (Runtime.Check_failed id))
  | Opcode.Br ->
      if not (no_def ()) then poison oob
      else
        let target = di.Decode.target in
        fun c _ _ ->
          pre c role;
          c.st.State.xfer <- target
  | Opcode.Brc flag ->
      if not (nu >= 1 && u 0 < npr && no_def ()) then poison oob
      else
        let a = u 0 in
        let target = di.Decode.target and target2 = di.Decode.target2 in
        fun c fr _ ->
          pre c role;
          let taken = Bool.equal (read_pr c fr a cluster) flag in
          let st = c.st in
          let n = st.State.branches + 1 in
          st.State.branches <- n;
          let taken = if n = c.br_arm then not taken else taken in
          st.State.xfer <- (if taken then target else target2)
  | Opcode.Ret ->
      if not (no_def ()) then poison oob
      else if nu = 0 then
        fun c _ _ ->
          pre c role;
          c.ret_cls <- -1;
          c.st.State.xfer <- State.xfer_return
      else (
        match Reg.cls uses.(0) with
        | Reg.Gp ->
            if not (u 0 < ngp) then poison oob
            else
              let a = u 0 in
              fun c fr _ ->
                pre c role;
                let v = read_gp c fr a cluster in
                c.ret_cls <- 0;
                c.ret_gp <- v;
                c.st.State.xfer <- State.xfer_return
        | Reg.Fp ->
            if not (u 0 < nfp) then poison oob
            else
              let a = u 0 in
              fun c fr _ ->
                pre c role;
                let v = read_fp c fr a cluster in
                c.ret_cls <- 1;
                c.ret_fp <- v;
                c.st.State.xfer <- State.xfer_return
        | Reg.Pr ->
            if not (u 0 < npr) then poison oob
            else
              let a = u 0 in
              fun c fr _ ->
                pre c role;
                let v = read_pr c fr a cluster in
                c.ret_cls <- 2;
                c.ret_pr <- v;
                c.st.State.xfer <- State.xfer_return)
  | Opcode.Halt ->
      if nu = 0 then fun c _ _ ->
        pre c role;
        raise (Runtime.Halted 0)
      else if not (u 0 < ngp) then poison oob
      else
        let a = u 0 in
        fun c fr _ ->
          pre c role;
          let v = read_gp c fr a cluster in
          raise (Runtime.Halted (Int64.to_int v))
  | Opcode.Call ->
      let target = di.Decode.target in
      let callee = d.Decode.funcs.(target) in
      let kfunc = callee.Decode.func in
      let kngp = max 1 (Func.reg_count kfunc Reg.Gp) in
      let knfp = max 1 (Func.reg_count kfunc Reg.Fp) in
      let knpr = max 1 (Func.reg_count kfunc Reg.Pr) in
      let params = Array.of_list kfunc.Func.params in
      if nd > 1 then poison "Simulator: call with multiple defs"
      else if Array.length params <> nu then
        poison "Simulator: call arity mismatch"
      else
        let binders =
          Array.init nu (fun i ->
              compile_binder ~cluster ~caller:(ngp, nfp, npr)
                ~callee:(kngp, knfp, knpr) uses.(i) params.(i))
        in
        (* def_kind: -1 none, 0/1/2 = Gp/Fp/Pr destination. *)
        let def_kind, dd =
          if nd = 0 then (-1, 0)
          else
            let r = defs.(0) in
            let i = Reg.idx r in
            (match Reg.cls r with
            | Reg.Gp -> if i < ngp then (0, i) else (-2, 0)
            | Reg.Fp -> if i < nfp then (1, i) else (-2, 0)
            | Reg.Pr -> if i < npr then (2, i) else (-2, 0))
        in
        if def_kind = -2 then poison oob
        else
          fun c fr _ ->
            pre c role;
            let st = c.st in
            (* The callee drives xfer and the return scratch for its own
               blocks; restore the caller's pending values around the
               nested execution. *)
            let saved_xfer = st.State.xfer in
            let saved_cls = c.ret_cls in
            let saved_gp = c.ret_gp in
            let saved_fp = c.ret_fp in
            let saved_pr = c.ret_pr in
            let ready = st.State.time + 1 in
            let nfr = State.make_regfile kfunc ~time:ready in
            for i = 0 to Array.length binders - 1 do
              (Array.unsafe_get binders i) c fr nfr ready
            done;
            st.State.depth <- st.State.depth + 1;
            if st.State.depth > Runtime.max_call_depth then
              raise (Trap.Trap Trap.Stack_overflow);
            exec_cblocks c nfr (Array.unsafe_get c.funcs target).c_blocks 0;
            st.State.depth <- st.State.depth - 1;
            let rcls = c.ret_cls in
            let rgp = c.ret_gp in
            let rfp = c.ret_fp in
            let rpr = c.ret_pr in
            c.ret_cls <- saved_cls;
            c.ret_gp <- saved_gp;
            c.ret_fp <- saved_fp;
            c.ret_pr <- saved_pr;
            st.State.xfer <- saved_xfer;
            if def_kind >= 0 then begin
              if rcls < 0 then
                invalid_arg "Simulator: call expected a return value";
              if rcls <> def_kind then
                invalid_arg "Simulator: value class mismatch";
              let wready = st.State.time + 1 in
              match def_kind with
              | 0 ->
                  wr_gp fr dd rgp wready cluster;
                  inject_gp c fr dd
              | 1 ->
                  wr_fp fr dd rfp wready cluster;
                  inject_fp c fr dd
              | _ ->
                  wr_pr fr dd rpr wready cluster;
                  inject_pr c fr dd
            end
  | Opcode.Cpt | Opcode.Nop ->
      if not (no_def ()) then poison oob else fun c _ _ -> pre c role

let compile_bundle (d : Decode.t) ~sizes (db : Decode.dbundle) : cbundle =
  let ngp, nfp, npr = sizes in
  let qg = ref [] and qf = ref [] and qp = ref [] in
  let bad = ref false in
  Array.iteri
    (fun cluster insns ->
      Array.iter
        (fun (di : Decode.dinsn) ->
          Array.iter
            (fun r ->
              let i = Reg.idx r in
              let pk = (i lsl 16) lor cluster in
              match Reg.cls r with
              | Reg.Gp -> if i >= ngp then bad := true else qg := pk :: !qg
              | Reg.Fp -> if i >= nfp then bad := true else qf := pk :: !qf
              | Reg.Pr -> if i >= npr then bad := true else qp := pk :: !qp)
            di.Decode.uses)
        insns)
    db.Decode.slots;
  if Array.length db.Decode.slots > 0x10000 then bad := true;
  let arr l = Array.of_list (List.rev l) in
  let body =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun cluster insns ->
              Array.map (compile_insn d ~sizes ~cluster) insns)
            db.Decode.slots))
  in
  {
    c_at = db.Decode.at;
    c_oob = !bad;
    q_gp = arr !qg;
    q_fp = arr !qf;
    q_pr = arr !qp;
    c_body = body;
  }

let of_decoded (d : Decode.t) : t =
  Casted_obs.Trace.with_span ~cat:"sim" "sim.compile" (fun () ->
      Casted_obs.Metrics.incr "sim.compiles";
      let compile_func (df : Decode.dfunc) =
        let func = df.Decode.func in
        let n c = max 1 (Func.reg_count func c) in
        let sizes = (n Reg.Gp, n Reg.Fp, n Reg.Pr) in
        let compile_block (db : Decode.dblock) =
          { c_bundles = Array.map (compile_bundle d ~sizes) db.Decode.bundles }
        in
        { c_func = func; c_blocks = Array.map compile_block df.Decode.blocks }
      in
      { d; cfuncs = Array.map compile_func d.Decode.funcs })

(* ---- Entry points ---- *)

let arms_of_fault = function
  | None -> (0, 0, 1, 0, 0, 0, 0, 0, 0)
  | Some (Fault.Reg_flip { target_slot; bit }) ->
      (target_slot + 1, bit, 1, 0, 0, 0, 0, 0, 0)
  | Some (Fault.Burst_flip { target_slot; bit; width }) ->
      (target_slot + 1, bit, width, 0, 0, 0, 0, 0, 0)
  | Some (Fault.Mem_flip { target_access; offset; bit }) ->
      (0, 0, 1, target_access + 1, offset, bit, 0, 0, 0)
  | Some (Fault.Branch_flip { target_branch }) ->
      (0, 0, 1, 0, 0, 0, target_branch + 1, 0, 0)
  | Some (Fault.Xcluster_flip { target_read; bit }) ->
      (0, 0, 1, 0, 0, 0, 0, target_read + 1, bit)

let make_cctx (p : t) ~fault ~fuel st =
  let ( def_arm, def_bit, def_width, mem_arm, mem_off, mem_bit, br_arm, x_arm,
        x_bit ) =
    arms_of_fault fault
  in
  {
    st;
    funcs = p.cfuncs;
    fuel;
    delay = p.d.Decode.config.Config.delay;
    def_arm;
    def_bit;
    def_width;
    mem_arm;
    mem_off;
    mem_bit;
    br_arm;
    x_arm;
    x_bit;
    ret_cls = -1;
    ret_gp = 0L;
    ret_fp = 0.0;
    ret_pr = false;
  }

let exec_entry c entry =
  let st = c.st in
  st.State.depth <- st.State.depth + 1;
  if st.State.depth > Runtime.max_call_depth then
    raise (Trap.Trap Trap.Stack_overflow);
  let cf = Array.unsafe_get c.funcs entry in
  let fr = State.make_regfile cf.c_func ~time:(st.State.time + 1) in
  (match cf.c_func.Func.params with
  | [] -> ()
  | _ :: _ -> invalid_arg "Simulator: call arity mismatch");
  exec_cblocks c fr cf.c_blocks 0;
  st.State.depth <- st.State.depth - 1

let run ?fault ?(fuel = max_int) ?(with_mem_digest = false) (p : t) =
  let d = p.d in
  let st =
    State.fresh ~image:d.Decode.image ~cache:d.Decode.config.Config.cache
      ~perfect:false
  in
  let c = make_cctx p ~fault ~fuel st in
  let termination =
    Runtime.termination_of (fun () ->
        exec_entry c d.Decode.entry;
        (* Entry returned instead of halting: treat as exit 0. *)
        Outcome.Exit 0)
  in
  Runtime.finish ~config:d.Decode.config ~output_base:d.Decode.output_base
    ~output_len:d.Decode.output_len ~digest_len:d.Decode.digest_len
    ~with_mem_digest st termination

(* Replay composition: restore a golden-prefix snapshot (captured by the
   decoded interpreter — block boundaries and counters are engine
   independent) and run only the entry function's suffix on the compiled
   path. *)
let run_replayed ?fault ?(fuel = max_int) ?(with_mem_digest = false) ~snapshot
    (p : t) =
  let d = p.d in
  let st, fr = State.restore ~cache:d.Decode.config.Config.cache snapshot in
  let c = make_cctx p ~fault ~fuel st in
  let blocks = (Array.unsafe_get c.funcs d.Decode.entry).c_blocks in
  let start = snapshot.State.block in
  if start < 0 || start >= Array.length blocks then invalid_arg oob;
  let termination =
    Runtime.termination_of (fun () ->
        exec_cblocks c fr blocks start;
        Outcome.Exit 0)
  in
  let module M = Casted_obs.Metrics in
  if M.enabled () then M.incr "sim.replays";
  Runtime.finish ~config:d.Decode.config ~output_base:d.Decode.output_base
    ~output_len:d.Decode.output_len ~digest_len:d.Decode.digest_len
    ~with_mem_digest st termination
