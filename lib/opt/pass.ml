module Func = Casted_ir.Func
module Program = Casted_ir.Program
module Clone = Casted_ir.Clone

type t = {
  name : string;
  run : preserve_detection:bool -> Func.t -> int;
}

let constfold =
  {
    name = "constfold";
    run = (fun ~preserve_detection:_ f -> Constfold.run f);
  }

let copyprop =
  {
    name = "copyprop";
    run = (fun ~preserve_detection f -> Copyprop.run ~preserve_detection f);
  }

let cse =
  {
    name = "cse";
    run = (fun ~preserve_detection f -> Cse.run ~preserve_detection f);
  }

let dce =
  {
    name = "dce";
    run = (fun ~preserve_detection f -> Dce.run ~preserve_detection f);
  }

let simplify_cfg =
  {
    name = "simplify-cfg";
    run = (fun ~preserve_detection:_ f -> Simplify_cfg.run f);
  }

let standard = [ constfold; copyprop; cse; dce; simplify_cfg ]

let run_program ?(preserve_detection = true) passes program =
  let program = Clone.program program in
  let counts =
    List.map
      (fun pass ->
        let n =
          Casted_obs.Trace.with_span ~cat:"opt" ("opt." ^ pass.name)
            (fun () ->
              List.fold_left
                (fun acc f -> acc + pass.run ~preserve_detection f)
                0 program.Program.funcs)
        in
        Casted_obs.Metrics.incr ~by:n ("opt.rewrites." ^ pass.name);
        (pass.name, n))
      passes
  in
  (program, counts)

let run_to_fixpoint ?(preserve_detection = true) ?(max_rounds = 10) passes
    program =
  let rec go program rounds =
    if rounds >= max_rounds then (program, rounds)
    else
      let program', counts =
        run_program ~preserve_detection passes program
      in
      let changed = List.exists (fun (_, n) -> n > 0) counts in
      if changed then go program' (rounds + 1) else (program', rounds)
  in
  go program 0
