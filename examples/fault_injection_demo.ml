(* Fault injection walkthrough: inject specific single-bit faults into a
   hardened run and watch the checks catch them, then run a small
   Monte-Carlo campaign comparing NOED and CASTED coverage.

   Run with: dune exec examples/fault_injection_demo.exe *)

module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Simulator = Casted_sim.Simulator
module Outcome = Casted_sim.Outcome
module Fault = Casted_sim.Fault
module Montecarlo = Casted_sim.Montecarlo

let () =
  let w = Option.get (Registry.find "h263dec") in
  let program = w.W.build W.Fault in
  let hardened =
    Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 program
  in
  let golden = Simulator.run hardened.Pipeline.schedule in
  Format.printf "golden run: %a@." Outcome.pp golden;
  let pop = Montecarlo.population_of_run golden in
  Format.printf
    "injection populations: %d register def slots, %d memory accesses, %d \
     conditional branches, %d cross-cluster reads@.@."
    pop.Fault.def_slots pop.Fault.mem_accesses pop.Fault.cond_branches
    pop.Fault.xcluster_reads;
  (* Inject a handful of hand-picked faults — one per fault model — and
     watch what the checks do with each. *)
  let fuel = 10 * golden.Outcome.dyn_insns in
  List.iter
    (fun fault ->
      let r = Simulator.run ~fault ~fuel hardened.Pipeline.schedule in
      Format.printf "%a -> %a (%s)@." Fault.pp fault Outcome.pp_termination
        r.Outcome.termination
        (Montecarlo.class_name (Montecarlo.classify ~golden r)))
    [
      Fault.Reg_flip { target_slot = 10; bit = 0 };
      Fault.Reg_flip { target_slot = 10; bit = 63 };
      Fault.Reg_flip { target_slot = pop.Fault.def_slots / 2; bit = 5 };
      Fault.Burst_flip
        { target_slot = pop.Fault.def_slots / 2; bit = 40; width = 3 };
      Fault.Mem_flip
        { target_access = pop.Fault.mem_accesses / 2; offset = 7; bit = 2 };
      Fault.Branch_flip { target_branch = pop.Fault.cond_branches / 2 };
      Fault.Xcluster_flip
        { target_read = pop.Fault.xcluster_reads / 2; bit = 17 };
    ];
  (* Small campaigns: the hardened binary turns silent corruptions into
     detections, whatever the fault model. *)
  List.iter
    (fun model ->
      Format.printf "@.Monte-Carlo, %s model (200 trials each):@."
        (Fault.model_name model);
      List.iter
        (fun scheme ->
          let compiled =
            Pipeline.compile ~scheme ~issue_width:2 ~delay:2 program
          in
          let result =
            Montecarlo.run ~model ~trials:200 compiled.Pipeline.schedule
          in
          Format.printf "%-7s %a@." (Scheme.name scheme) Montecarlo.pp result)
        [ Scheme.Noed; Scheme.Casted ])
    [ Fault.Reg_bit; Fault.Mem; Fault.Control ]
