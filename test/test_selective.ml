open Helpers
module Selective = Casted_detect.Selective
module Transform = Casted_detect.Transform
module Montecarlo = Casted_sim.Montecarlo
module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry

let selective_options = { Options.default with Options.scope = Options.Store_slice }

let test_slice_contains_store_producers () =
  let p =
    program_of (fun b ->
        let base = B.movi b 0x100L in
        let v = B.movi b 7L in
        let w = B.addi b v 1L in
        (* dead-end computation: never reaches memory *)
        let _unused = B.muli b w 3L in
        B.st b Opcode.W8 ~value:w ~base 0L)
  in
  let f = Program.entry_func p in
  let slice = Selective.store_slice f in
  let find_id pred =
    (List.find pred (Func.all_insns f)).Insn.id
  in
  let movi7 = find_id (fun i -> i.Insn.op = Opcode.Movi && i.Insn.imm = 7L) in
  let muli3 = find_id (fun i -> i.Insn.op = Opcode.Muli) in
  Alcotest.(check bool) "store value producer in slice" true
    (Hashtbl.mem slice movi7);
  Alcotest.(check bool) "dead-end computation outside slice" false
    (Hashtbl.mem slice muli3)

let test_slice_fraction_bounds () =
  List.iter
    (fun w ->
      let p = w.W.build W.Fault in
      List.iter
        (fun f ->
          if f.Func.protect then begin
            let frac = Selective.slice_fraction f in
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s fraction %.2f" w.W.name f.Func.name frac)
              true
              (frac >= 0.0 && frac <= 1.0)
          end)
        p.Program.funcs)
    Registry.all

let test_selective_semantics_preserved () =
  List.iter
    (fun w ->
      let p = w.W.build W.Fault in
      let plain = run_scheme Scheme.Noed p in
      let hardened, _ = Transform.program selective_options p in
      Casted_ir.Validate.check_exn hardened;
      let config = Config.dual_core ~issue_width:2 ~delay:2 in
      let s =
        Casted_sched.List_scheduler.schedule_program config
          (Casted_sched.Assign.Adaptive Casted_sched.Bug.default_options)
          hardened
      in
      let r = Simulator.run s in
      (match r.Outcome.termination with
      | Outcome.Exit 0 -> ()
      | t -> Alcotest.failf "%s: %a" w.W.name Outcome.pp_termination t);
      Alcotest.(check string) (w.W.name ^ " output") plain.Outcome.output
        r.Outcome.output)
    Registry.all

let test_selective_cheaper_than_full () =
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let p = w.W.build W.Fault in
      let _, full = Transform.program Options.default p in
      let _, partial = Transform.program selective_options p in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d vs %d replicas" name
           partial.Transform.replicas full.Transform.replicas)
        true
        (partial.Transform.replicas < full.Transform.replicas))
    [ "h263enc"; "197.parser"; "175.vpr" ]

let coverage options p =
  let hardened, _ = Transform.program options p in
  let config = Config.single_core ~issue_width:2 in
  let s =
    Casted_sched.List_scheduler.schedule_program config
      Casted_sched.Assign.Single_cluster hardened
  in
  Montecarlo.run ~trials:300 s

let test_coverage_tradeoff () =
  (* Shoestring's bet: lower overhead, lower (but real) coverage. On
     cjpeg the store slice covers almost the whole program, so the two
     detection rates sit within Monte-Carlo noise of each other; assert
     that full replication is not meaningfully worse rather than
     strictly higher. *)
  let w = Option.get (Registry.find "cjpeg") in
  let p = w.W.build W.Fault in
  let full = coverage Options.default p in
  let partial = coverage selective_options p in
  let pct r = Montecarlo.percent r Montecarlo.Detected in
  Alcotest.(check bool) "partial still detects" true (pct partial > 20.0);
  Alcotest.(check bool)
    (Printf.sprintf "full (%.0f%%) covers at least partial (%.0f%%) - noise"
       (pct full) (pct partial))
    true
    (pct full >= pct partial -. 5.0);
  (* Unlike full replication, partial replication may leak silent
     corruption through the unprotected address/branch logic. *)
  Alcotest.(check bool) "full has no corruption" true
    (full.Montecarlo.corrupt = 0)

let test_selective_faster () =
  let w = Option.get (Registry.find "h263enc") in
  let p = w.W.build W.Fault in
  let cycles options =
    let hardened, _ = Transform.program options p in
    let config = Config.single_core ~issue_width:2 in
    let s =
      Casted_sched.List_scheduler.schedule_program config
        Casted_sched.Assign.Single_cluster hardened
    in
    (Simulator.run s).Outcome.cycles
  in
  Alcotest.(check bool) "partial redundancy is cheaper" true
    (cycles selective_options < cycles Options.default)

let suite =
  ( "selective",
    [
      case "slice contains store producers, not dead ends"
        test_slice_contains_store_producers;
      case "slice fractions are sane on all workloads"
        test_slice_fraction_bounds;
      case "semantics preserved under partial replication"
        test_selective_semantics_preserved;
      case "partial replication emits fewer replicas"
        test_selective_cheaper_than_full;
      case "coverage/overhead trade-off (Shoestring's bet)"
        test_coverage_tradeoff;
      case "partial redundancy runs faster" test_selective_faster;
    ] )
