let () =
  Alcotest.run "casted"
    [
      Test_reg.suite;
      Test_cond.suite;
      Test_opcode.suite;
      Test_builder.suite;
      Test_validate.suite;
      Test_cfg_liveness.suite;
      Test_cache.suite;
      Test_reservation.suite;
      Test_dfg.suite;
      Test_scheduler.suite;
      Test_bug.suite;
      Test_transform.suite;
      Test_sim.suite;
      Test_fault.suite;
      Test_workloads.suite;
      Test_report.suite;
      Test_integration.suite;
      Test_opt.suite;
      Test_recover.suite;
      Test_analysis.suite;
      Test_differential.suite;
      Test_asm.suite;
      Test_selective.suite;
      Test_engine.suite;
    ]
