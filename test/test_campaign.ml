(* Campaign statistics and crash-proofing: Wilson intervals, sequential
   early stopping, checkpoint/resume, and trial-level fault tolerance. *)

open Helpers
module Fault = Casted_sim.Fault
module Stats = Casted_sim.Stats
module Checkpoint = Casted_sim.Checkpoint
module Montecarlo = Casted_sim.Montecarlo
module Pool = Casted_exec.Pool
module Workload = Casted_workloads.Workload

(* A small kernel with loads, stores and conditional branches so every
   fault model has a non-empty population under CASTED. *)
let kernel () =
  program_of (fun b ->
      let base = B.movi b 0x100L in
      let acc = B.movi b 1L in
      B.counted_loop b ~from:0L ~until:12L (fun b i ->
          let x = B.mul b acc acc in
          let y = B.add b x i in
          let (_ : Reg.t) = B.andi b ~dst:acc y 0xFFFFL in
          B.st b Opcode.W8 ~value:acc ~base 0L);
      let out = B.movi b 0x40L in
      let v = B.ld b Opcode.W8 base 0L in
      B.st b Opcode.W8 ~value:v ~base:out 0L)

let schedule () =
  let c =
    Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 (kernel ())
  in
  c.Pipeline.schedule

let same_result msg (a : Montecarlo.result) (b : Montecarlo.result) =
  let ck field = Alcotest.(check int) (msg ^ ": " ^ field) in
  ck "trials" a.Montecarlo.trials b.Montecarlo.trials;
  ck "benign" a.Montecarlo.benign b.Montecarlo.benign;
  ck "detected" a.Montecarlo.detected b.Montecarlo.detected;
  ck "exceptions" a.Montecarlo.exceptions b.Montecarlo.exceptions;
  ck "corrupt" a.Montecarlo.corrupt b.Montecarlo.corrupt;
  ck "timeouts" a.Montecarlo.timeouts b.Montecarlo.timeouts;
  ck "recovered" a.Montecarlo.recovered b.Montecarlo.recovered

(* Wilson interval: a known value, the empty-sample convention, the
   edge rates, and basic soundness over a sweep. *)
let test_wilson_known_values () =
  let close name expected got =
    Alcotest.(check bool)
      (Printf.sprintf "%s: |%.4f - %.4f| < 1e-3" name expected got)
      true
      (Float.abs (expected -. got) < 1e-3)
  in
  let lo, hi = Stats.wilson ~successes:50 ~trials:100 () in
  close "50/100 lo" 0.4038 lo;
  close "50/100 hi" 0.5962 hi;
  let lo, hi = Stats.wilson ~successes:0 ~trials:10 () in
  close "0/10 lo" 0.0 lo;
  close "0/10 hi" 0.2775 hi;
  let lo, hi = Stats.wilson ~successes:10 ~trials:10 () in
  close "10/10 lo" (1.0 -. 0.2775) lo;
  close "10/10 hi" 1.0 hi;
  let lo, hi = Stats.wilson ~successes:0 ~trials:0 () in
  close "empty lo" 0.0 lo;
  close "empty hi" 1.0 hi

let test_wilson_soundness () =
  List.iter
    (fun (successes, trials) ->
      let lo, hi = Stats.wilson ~successes ~trials () in
      let p = float_of_int successes /. float_of_int trials in
      Alcotest.(check bool)
        (Printf.sprintf "%d/%d: 0 <= %.4f <= %.4f <= %.4f <= 1" successes
           trials lo p hi)
        true
        (0.0 <= lo && lo <= p && p <= hi && hi <= 1.0))
    [ (0, 1); (1, 1); (1, 3); (7, 300); (299, 300); (150, 300); (1, 100000) ];
  (* More trials at the same rate must narrow the interval. *)
  let hw n = Stats.wilson_halfwidth ~successes:(n / 2) ~trials:n () in
  Alcotest.(check bool) "interval narrows with n" true
    (hw 10 > hw 100 && hw 100 > hw 10000)

(* Boundary cases: all-success, all-failure and the one-trial sample
   must stay inside [0,1], the halfwidth must shrink monotonically in
   the trial count at a fixed rate, and one golden halfwidth pins the
   formula itself. *)
let test_wilson_boundaries () =
  let in_unit name (successes, trials) =
    let lo, hi = Stats.wilson ~successes ~trials () in
    Alcotest.(check bool)
      (Printf.sprintf "%s: 0 <= %.4f <= %.4f <= 1" name lo hi)
      true
      (0.0 <= lo && lo <= hi && hi <= 1.0)
  in
  in_unit "successes = trials = 1" (1, 1);
  in_unit "successes = 0, trials = 1" (0, 1);
  in_unit "successes = trials" (37, 37);
  in_unit "successes = 0" (0, 37);
  in_unit "successes = trials, large" (1_000_000, 1_000_000);
  (* All-success intervals reach 1; all-failure intervals reach 0. *)
  let _, hi = Stats.wilson ~successes:37 ~trials:37 () in
  Alcotest.(check (float 1e-9)) "all-success upper bound is 1" 1.0 hi;
  let lo, _ = Stats.wilson ~successes:0 ~trials:37 () in
  Alcotest.(check (float 1e-9)) "all-failure lower bound is 0" 0.0 lo;
  (* Monotone in trials at the all-success rate: more evidence, tighter
     interval. *)
  let hw n = Stats.wilson_halfwidth ~successes:n ~trials:n () in
  Alcotest.(check bool) "halfwidth monotone in trials" true
    (hw 1 > hw 10 && hw 10 > hw 100 && hw 100 > hw 10_000);
  (* Golden value: 50/100 at z=1.96 has halfwidth 0.09617. *)
  Alcotest.(check (float 1e-4)) "halfwidth golden value" 0.09617
    (Stats.wilson_halfwidth ~successes:50 ~trials:100 ())

let test_wilson_rejects_bad_counts () =
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "negative successes" (fun () ->
      Stats.wilson ~successes:(-1) ~trials:10 ());
  expect_invalid "successes > trials" (fun () ->
      Stats.wilson ~successes:11 ~trials:10 ())

(* A raising trial is a tallied Exception, never a propagated crash. *)
let test_raising_trial_is_tallied () =
  let golden = Simulator.run (schedule ()) in
  Alcotest.(check string) "Error is an exception outcome" "exception"
    (Montecarlo.class_name
       (Montecarlo.classify_result ~golden (Error (Failure "boom"))));
  Alcotest.(check string) "Ok classifies normally" "benign"
    (Montecarlo.class_name (Montecarlo.classify_result ~golden (Ok golden)))

(* A model whose population is empty in this configuration (xcluster on
   a single-cluster NOED schedule) yields Benign, not a crash. *)
let test_empty_population_is_benign () =
  let c =
    Pipeline.compile ~scheme:Scheme.Noed ~issue_width:2 ~delay:1 (kernel ())
  in
  let s = c.Pipeline.schedule in
  let g = Montecarlo.golden s in
  Alcotest.(check int) "no cross-cluster reads on one cluster" 0
    g.Montecarlo.pop.Fault.xcluster_reads;
  (* A single trial forced through an empty pool still classifies
     benign (the per-trial guard)... *)
  Alcotest.(check string) "trial is benign" "benign"
    (Montecarlo.class_name
       (Montecarlo.trial ~model:Fault.Xcluster ~golden:g ~seed:3 ~index:0 s));
  (* ...but a campaign reports the model as inapplicable: zero trials
     run, population recorded as empty, no exception escapes. *)
  let r = Montecarlo.run ~model:Fault.Xcluster ~seed:3 ~trials:10 s in
  Alcotest.(check int) "campaign runs no trials" 0 r.Montecarlo.trials;
  Alcotest.(check int) "population is empty" 0 r.Montecarlo.population;
  Alcotest.(check bool) "result is inapplicable" true
    (Montecarlo.inapplicable r)

(* An inapplicable cell is reported identically whatever the pool
   size: zero trials, empty population, bit-identical results at
   jobs=1 and jobs=4 — never a crash from drawing on an empty pool. *)
let test_inapplicable_skip_across_pools () =
  let c =
    Pipeline.compile ~scheme:Scheme.Noed ~issue_width:2 ~delay:1 (kernel ())
  in
  let s = c.Pipeline.schedule in
  let run jobs =
    Pool.with_pool ~jobs (fun pool ->
        Montecarlo.run ~pool ~model:Fault.Xcluster ~seed:5 ~trials:50 s)
  in
  let seq = run 1 and par = run 4 in
  same_result "inapplicable cell jobs=4 vs jobs=1" par seq;
  Alcotest.(check int) "jobs=1 runs no trials" 0 seq.Montecarlo.trials;
  Alcotest.(check bool) "jobs=1 is inapplicable" true
    (Montecarlo.inapplicable seq);
  Alcotest.(check bool) "jobs=4 is inapplicable" true
    (Montecarlo.inapplicable par)

(* Early stopping fires at the same chunk boundary whatever the pool
   size, and only runs fewer trials than requested. *)
let test_early_stop_deterministic () =
  let s = schedule () in
  let run jobs =
    Pool.with_pool ~jobs (fun pool ->
        Montecarlo.run ~pool ~seed:11 ~ci_halfwidth:25.0 ~trials:10_000 s)
  in
  let seq = run 1 and par = run 4 in
  same_result "early stop jobs=4 vs jobs=1" par seq;
  Alcotest.(check bool) "stopped before the requested count" true
    (seq.Montecarlo.trials < 10_000);
  Alcotest.(check int) "stopped at a chunk boundary" 0
    (seq.Montecarlo.trials mod Montecarlo.chunk_trials);
  Alcotest.(check bool) "the target is reached" true
    (Montecarlo.halfwidth seq Montecarlo.Detected <= 25.0)

let test_early_stop_rejects_bad_target () =
  match Montecarlo.run ~ci_halfwidth:0.0 ~trials:10 (schedule ()) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let with_tmp_checkpoint f =
  let path = Filename.temp_file "casted-test" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_checkpoint_round_trip () =
  with_tmp_checkpoint (fun path ->
      let t =
        {
          Checkpoint.seed = 42;
          fuel_factor = 10;
          model = Fault.Burst;
          trials = 300;
          next_index = 128;
          counts = [| 50; 60; 5; 10; 3 |];
          identity = "cjpeg/fault/CASTED/i2/d2/burst";
        }
      in
      Checkpoint.save ~path t;
      match Checkpoint.load ~path () with
      | Ok (Some t') ->
          Alcotest.(check int) "seed" t.Checkpoint.seed t'.Checkpoint.seed;
          Alcotest.(check int) "fuel" t.Checkpoint.fuel_factor
            t'.Checkpoint.fuel_factor;
          Alcotest.(check bool) "model" true
            (t.Checkpoint.model = t'.Checkpoint.model);
          Alcotest.(check int) "trials" t.Checkpoint.trials
            t'.Checkpoint.trials;
          Alcotest.(check int) "next_index" t.Checkpoint.next_index
            t'.Checkpoint.next_index;
          Alcotest.(check (array int)) "counts" t.Checkpoint.counts
            t'.Checkpoint.counts;
          Alcotest.(check string) "identity" t.Checkpoint.identity
            t'.Checkpoint.identity
      | Ok None -> Alcotest.fail "checkpoint vanished"
      | Error msg -> Alcotest.failf "round trip failed: %s" msg)

let test_checkpoint_missing_and_corrupt () =
  (match Checkpoint.load ~path:"/nonexistent/casted.ckpt" () with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "phantom checkpoint"
  | Error msg -> Alcotest.failf "missing file must be Ok None, got %s" msg);
  with_tmp_checkpoint (fun path ->
      let oc = open_out path in
      output_string oc "not a checkpoint\n";
      close_out oc;
      match Checkpoint.load ~path () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt checkpoint must be a loud error")

(* The crash-recovery property: a campaign killed at any chunk boundary
   and resumed from its checkpoint produces the bit-identical tally of
   the uninterrupted campaign. We simulate the kill by writing the
   checkpoint a partial prefix would have left behind. *)
let test_resume_bit_identical () =
  let s = schedule () in
  let seed = 5 and trials = 200 in
  let uninterrupted = Montecarlo.run ~seed ~trials s in
  let g = Montecarlo.golden s in
  List.iter
    (fun kill_at ->
      with_tmp_checkpoint (fun path ->
          let counts = Array.make (List.length Montecarlo.all_classes) 0 in
          for index = 0 to kill_at - 1 do
            let c = Montecarlo.trial ~golden:g ~seed ~index s in
            let i =
              match c with
              | Montecarlo.Benign -> 0
              | Montecarlo.Detected -> 1
              | Montecarlo.Exception -> 2
              | Montecarlo.Data_corrupt -> 3
              | Montecarlo.Timeout -> 4
              | Montecarlo.Recovered -> 5
            in
            counts.(i) <- counts.(i) + 1
          done;
          Checkpoint.save ~path
            {
              Checkpoint.seed;
              fuel_factor = 10;
              model = Fault.Reg_bit;
              trials;
              next_index = kill_at;
              counts;
              identity = "";
            };
          List.iter
            (fun jobs ->
              let resumed =
                Pool.with_pool ~jobs (fun pool ->
                    Montecarlo.run ~pool ~seed ~checkpoint:path ~resume:true
                      ~trials s)
              in
              same_result
                (Printf.sprintf "killed at %d, resumed with jobs=%d" kill_at
                   jobs)
                resumed uninterrupted)
            [ 1; 4 ]))
    [ 64; 128 ]

(* Resuming against a checkpoint from a different campaign is a loud
   mismatch, not a silently wrong tally. *)
let test_resume_rejects_mismatch () =
  let s = schedule () in
  with_tmp_checkpoint (fun path ->
      Checkpoint.save ~path
        {
          Checkpoint.seed = 999;
          fuel_factor = 10;
          model = Fault.Reg_bit;
          trials = 200;
          next_index = 64;
          counts = [| 30; 30; 2; 1; 1 |];
          identity = "";
        };
      match
        Montecarlo.run ~seed:5 ~checkpoint:path ~resume:true ~trials:200 s
      with
      | _ -> Alcotest.fail "expected Invalid_argument on seed mismatch"
      | exception Invalid_argument _ -> ())

(* The config-mismatch hole: a checkpoint carries the campaign's
   (workload, scheme, config, fault-model) identity, and resuming under
   any other identity must fail loudly even when seed, model, trial
   count and tally shape all happen to match. *)
let test_resume_rejects_identity_mismatch () =
  let s = schedule () in
  let saved ~identity path =
    Checkpoint.save ~path
      {
        Checkpoint.seed = 5;
        fuel_factor = 10;
        model = Fault.Reg_bit;
        trials = 200;
        next_index = 64;
        counts = [| 60; 2; 1; 1; 0 |];
        identity;
      }
  in
  with_tmp_checkpoint (fun path ->
      saved ~identity:"h263dec/fault/DCED/i4/d1/reg-bit" path;
      (match
         Montecarlo.run ~seed:5 ~checkpoint:path ~resume:true
           ~identity:"cjpeg/fault/CASTED/i2/d2/reg-bit" ~trials:200 s
       with
      | _ -> Alcotest.fail "expected Invalid_argument on identity mismatch"
      | exception Invalid_argument msg ->
          Alcotest.(check bool) "message names both identities" true
            (Helpers.contains msg "h263dec/fault/DCED/i4/d1"
            && Helpers.contains msg "cjpeg/fault/CASTED/i2/d2"));
      (* A checkpoint written before the identity field existed (empty
         identity) must also be rejected by an identity-carrying
         resume. *)
      saved ~identity:"" path;
      match
        Montecarlo.run ~seed:5 ~checkpoint:path ~resume:true
          ~identity:"cjpeg/fault/CASTED/i2/d2/reg-bit" ~trials:200 s
      with
      | _ -> Alcotest.fail "expected Invalid_argument on legacy checkpoint"
      | exception Invalid_argument _ -> ())

(* End-to-end through the engine: the engine stamps its cache key into
   the checkpoint, so resuming the same key works and resuming a
   different scheme fails loudly. *)
let test_engine_resume_identity () =
  with_tmp_checkpoint (fun path ->
      Casted_engine.Engine.with_engine ~jobs:2 (fun e ->
          let key scheme =
            Casted_engine.Cache.key ~workload:"cjpeg" ~size:Workload.Fault
              ~scheme ~issue_width:2 ~delay:2 ()
          in
          let r =
            Casted_engine.Engine.campaign e ~seed:7 ~checkpoint:path
              ~trials:100 (key Scheme.Casted)
          in
          let resumed =
            Casted_engine.Engine.campaign e ~seed:7 ~checkpoint:path
              ~resume:true ~trials:100 (key Scheme.Casted)
          in
          same_result "engine re-resume of finished campaign" resumed r;
          match
            Casted_engine.Engine.campaign e ~seed:7 ~checkpoint:path
              ~resume:true ~trials:100 (key Scheme.Dced)
          with
          | _ ->
              Alcotest.fail "expected Invalid_argument on scheme mismatch"
          | exception Invalid_argument msg ->
              Alcotest.(check bool) "message names the checkpoint identity"
                true
                (Helpers.contains msg "CASTED" && Helpers.contains msg "DCED")))

(* A finished campaign leaves a checkpoint whose index covers every
   trial, so re-resuming runs nothing and reproduces the tally. *)
let test_checkpoint_written_and_final () =
  let s = schedule () in
  with_tmp_checkpoint (fun path ->
      let r =
        Montecarlo.run ~seed:6 ~checkpoint:path ~checkpoint_every:64
          ~trials:100 s
      in
      (match Checkpoint.load ~path () with
      | Ok (Some c) ->
          Alcotest.(check int) "final index" 100 c.Checkpoint.next_index
      | Ok None -> Alcotest.fail "no checkpoint written"
      | Error msg -> Alcotest.failf "unreadable checkpoint: %s" msg);
      let resumed =
        Montecarlo.run ~seed:6 ~checkpoint:path ~resume:true ~trials:100 s
      in
      same_result "re-resume of a finished campaign" resumed r)

(* Recovery campaigns keep the engine's determinism contract: the
   recovered tally of a TMR (voting) and a ROLLBACK (retrying) campaign
   is bit-identical whatever the pool size, and is non-empty under
   reg-bit faults. *)
let test_recovery_campaign_deterministic () =
  List.iter
    (fun scheme ->
      let key =
        Casted_engine.Cache.key ~workload:"cjpeg" ~size:Workload.Fault ~scheme
          ~issue_width:2 ~delay:2 ()
      in
      let run jobs =
        Casted_engine.Engine.with_engine ~jobs (fun e ->
            Casted_engine.Engine.campaign e ~seed:9 ~trials:120 key)
      in
      let seq = run 1 and par = run 4 in
      same_result
        (Scheme.name scheme ^ " recovery campaign jobs=4 vs jobs=1")
        par seq;
      Alcotest.(check bool)
        (Scheme.name scheme ^ " recovers some trials")
        true
        (seq.Montecarlo.recovered > 0))
    [ Scheme.Tmr; Scheme.Rollback ]

(* DME keeps the determinism contract under the model it decorrelates
   against: a mem-model campaign is bit-identical whatever the pool
   size, and converts CASTED-escaping shared-line SDCs into detections
   (strictly fewer corrupt trials than CASTED on the same cell). *)
let test_dme_campaign_deterministic () =
  let key scheme =
    Casted_engine.Cache.key ~workload:"cjpeg" ~size:Workload.Fault ~scheme
      ~issue_width:2 ~delay:2 ()
  in
  let run jobs scheme =
    Casted_engine.Engine.with_engine ~jobs (fun e ->
        Casted_engine.Engine.campaign e ~seed:13 ~model:Fault.Mem ~trials:200
          (key scheme))
  in
  let seq = run 1 Scheme.Dme and par = run 4 Scheme.Dme in
  same_result "DME mem campaign jobs=4 vs jobs=1" par seq;
  let casted = run 2 Scheme.Casted in
  Alcotest.(check bool) "DME sheds CASTED-escaping mem SDCs" true
    (seq.Montecarlo.corrupt < casted.Montecarlo.corrupt)

(* Pool.map_result: raising tasks land as Error in their own slot;
   every other task still completes. *)
let test_pool_map_result () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let results =
        Pool.map_result pool
          (fun i -> if i mod 5 = 2 then failwith (string_of_int i) else 2 * i)
          (Array.init 20 Fun.id)
      in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (2 * i) v
          | Error (Failure msg) ->
              Alcotest.(check int) (Printf.sprintf "slot %d raised" i) i
                (int_of_string msg);
              Alcotest.(check int) "only the raising slots" 2 (i mod 5)
          | Error e -> raise e)
        results)

let suite =
  ( "campaign",
    [
      case "wilson known values" test_wilson_known_values;
      case "wilson soundness" test_wilson_soundness;
      case "wilson boundary cases" test_wilson_boundaries;
      case "wilson rejects bad counts" test_wilson_rejects_bad_counts;
      case "raising trial is tallied" test_raising_trial_is_tallied;
      case "empty population is benign" test_empty_population_is_benign;
      case "inapplicable cells skip identically across pools"
        test_inapplicable_skip_across_pools;
      case "early stop deterministic across pools"
        test_early_stop_deterministic;
      case "early stop rejects bad target" test_early_stop_rejects_bad_target;
      case "checkpoint round trip" test_checkpoint_round_trip;
      case "checkpoint missing vs corrupt" test_checkpoint_missing_and_corrupt;
      case "killed + resumed campaign is bit-identical"
        test_resume_bit_identical;
      case "resume rejects a mismatched checkpoint"
        test_resume_rejects_mismatch;
      case "resume rejects a mismatched campaign identity"
        test_resume_rejects_identity_mismatch;
      case "engine stamps and enforces checkpoint identity"
        test_engine_resume_identity;
      case "finished campaign leaves a complete checkpoint"
        test_checkpoint_written_and_final;
      case "recovery campaigns are pool-size independent"
        test_recovery_campaign_deterministic;
      case "DME campaigns are pool-size independent and shed mem SDCs"
        test_dme_campaign_deterministic;
      case "pool map_result isolates raising tasks" test_pool_map_result;
    ] )
