(* The persistent result store: content addressing, atomic writes,
   corruption refusal, incremental campaigns, shard merging and the
   work queue. *)

open Helpers
module Store = Casted_store.Store
module Work = Casted_store.Work
module Engine = Casted_engine.Engine
module Cache = Casted_engine.Cache
module Montecarlo = Casted_sim.Montecarlo
module Workload = Casted_workloads.Workload

let spec =
  Cache.key ~workload:"cjpeg" ~size:Workload.Fault ~scheme:Scheme.Casted
    ~issue_width:2 ~delay:2 ()

(* Fresh store directory per test, removed afterwards. *)
let dir_counter = ref 0

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_store_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "casted-store-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  if Sys.file_exists dir then rm_rf dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let with_store f = with_store_dir (fun dir -> f (Store.open_exn ~create:true dir))

let same_result msg (a : Montecarlo.result) (b : Montecarlo.result) =
  Alcotest.(check (array int))
    (msg ^ ": counts") (Montecarlo.counts a) (Montecarlo.counts b);
  Alcotest.(check int) (msg ^ ": trials") a.Montecarlo.trials
    b.Montecarlo.trials;
  Alcotest.(check int)
    (msg ^ ": golden_cycles") a.Montecarlo.golden_cycles
    b.Montecarlo.golden_cycles;
  Alcotest.(check int)
    (msg ^ ": golden_dyn") a.Montecarlo.golden_dyn b.Montecarlo.golden_dyn;
  Alcotest.(check int)
    (msg ^ ": population") a.Montecarlo.population b.Montecarlo.population

(* Golden pins for the on-disk address shapes (the content-addressing
   contract: changing these orphans every store on disk). *)
let test_address_golden () =
  let full =
    Store.key ~retry_budget:(-1)
      ~identity:"cjpeg/fault/CASTED/i2/d2/reg-bit" ~seed:7 ~fuel_factor:10
      ~trials:256 ()
  in
  Alcotest.(check string)
    "full entry address" "cjpeg/fault/CASTED/i2/d2/reg-bit|seed=7|fuel=10|retry=-1"
    (Store.address full);
  let shard =
    Store.key ~retry_budget:3 ~shard:(1, 4)
      ~identity:"cjpeg/fault/ROLLBACK/i2/d2/reg-bit" ~seed:7 ~fuel_factor:10
      ~trials:256 ()
  in
  Alcotest.(check string)
    "shard entry address"
    "cjpeg/fault/ROLLBACK/i2/d2/reg-bit|seed=7|fuel=10|retry=3|trials=256|shard=1/4"
    (Store.address shard);
  Alcotest.(check string)
    "work unit address"
    "cjpeg/fault/CASTED/i2/d2/reg-bit|seed=7|trials=256|fuel=10|retry=-1"
    (Work.address
       {
         Work.workload = "cjpeg";
         size = "fault";
         scheme = "CASTED";
         issue = 2;
         delay = 2;
         model = "reg-bit";
         seed = 7;
         trials = 256;
         fuel_factor = 10;
         retry_budget = -1;
       })

let sample_entry ?(identity = "cjpeg/fault/CASTED/i2/d2/reg-bit") ?shard
    ?(trials = 100) ?(counts = [| 10; 85; 3; 1; 1; 0 |]) () =
  let key =
    Store.key ~retry_budget:(-1) ?shard ~identity ~seed:7 ~fuel_factor:10
      ~trials ()
  in
  {
    Store.key;
    trials_done = Array.fold_left ( + ) 0 counts;
    counts;
    golden_cycles = 4242;
    golden_dyn = 1234;
    population = 9999;
    model = "reg-bit";
    spec =
      Some
        {
          Store.workload = "cjpeg";
          size = "fault";
          scheme = "CASTED";
          issue = 2;
          delay = 2;
          model = "reg-bit";
        };
  }

let test_roundtrip () =
  with_store (fun s ->
      let e = sample_entry () in
      (match Store.find s e.Store.key with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "found an entry in a fresh store"
      | Error msg -> Alcotest.fail msg);
      Store.put s e;
      (match Store.find s e.Store.key with
      | Ok (Some got) ->
          Alcotest.(check string)
            "address" (Store.address e.Store.key)
            (Store.address got.Store.key);
          Alcotest.(check (array int)) "counts" e.Store.counts got.Store.counts;
          Alcotest.(check int) "trials_done" e.Store.trials_done
            got.Store.trials_done;
          Alcotest.(check int) "golden_cycles" e.Store.golden_cycles
            got.Store.golden_cycles;
          Alcotest.(check bool) "spec survived" true (got.Store.spec <> None)
      | Ok None -> Alcotest.fail "entry vanished"
      | Error msg -> Alcotest.fail msg);
      let st = Store.stats s in
      Alcotest.(check int) "one miss" 1 st.Store.misses;
      Alcotest.(check int) "one hit" 1 st.Store.hits;
      Alcotest.(check int) "one write" 1 st.Store.writes;
      Alcotest.(check bool) "bytes flowed" true
        (st.Store.bytes_written > 0 && st.Store.bytes_read > 0))

let test_reopen_persists () =
  with_store_dir (fun dir ->
      let e = sample_entry () in
      Store.put (Store.open_exn ~create:true dir) e;
      match Store.find (Store.open_exn ~create:false dir) e.Store.key with
      | Ok (Some got) ->
          Alcotest.(check (array int)) "counts survive reopen" e.Store.counts
            got.Store.counts
      | Ok None -> Alcotest.fail "entry lost across reopen"
      | Error msg -> Alcotest.fail msg)

let expect_error msg = function
  | Error _ -> ()
  | Ok _ -> Alcotest.fail msg

let test_corruption_refused () =
  with_store_dir (fun dir ->
      let s = Store.open_exn ~create:true dir in
      let e = sample_entry () in
      Store.put s e;
      let entries = Filename.concat dir "entries" in
      let path =
        Filename.concat entries (Store.hash e.Store.key ^ ".entry")
      in
      (* Tamper with a tally digit: the counts/trials consistency check
         must refuse the entry. *)
      let content =
        let ic = open_in_bin path in
        let c = really_input_string ic (in_channel_length ic) in
        close_in ic;
        c
      in
      let tampered =
        let sub = "trials_done=100" and by = "trials_done=199" in
        match String.index_opt content 't' with
        | None -> Alcotest.fail "entry has no tally field"
        | Some _ ->
            let rec find i =
              if i + String.length sub > String.length content then
                Alcotest.fail "entry has no trials_done=100 field"
              else if String.sub content i (String.length sub) = sub then
                String.sub content 0 i
                ^ by
                ^ String.sub content
                    (i + String.length sub)
                    (String.length content - i - String.length sub)
              else find (i + 1)
            in
            find 0
      in
      let oc = open_out_bin path in
      output_string oc tampered;
      close_out oc;
      expect_error "tampered tally accepted" (Store.find s e.Store.key);
      (* A mis-addressed (renamed) entry must be refused too: the
         filename no longer matches the content's own address. *)
      let oc = open_out_bin path in
      output_string oc content;
      close_out oc;
      let misplaced = Filename.concat entries (String.make 32 'a' ^ ".entry")
      in
      Sys.rename path misplaced;
      (match Store.list s with
      | Ok [ Error _ ] -> ()
      | Ok _ -> Alcotest.fail "misplaced entry accepted"
      | Error msg -> Alcotest.fail msg);
      Sys.remove misplaced;
      (* An unknown version sentinel refuses the whole store. *)
      let oc = open_out (Filename.concat dir "MANIFEST") in
      output_string oc "casted-store v999\n";
      close_out oc;
      expect_error "unknown store version opened"
        (Store.open_dir ~create:false dir))

let test_open_refuses_non_store () =
  with_store_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let oc = open_out (Filename.concat dir "README") in
      output_string oc "not a store\n";
      close_out oc;
      expect_error "non-store directory adopted"
        (Store.open_dir ~create:true dir))

(* The tentpole regression: a campaign run twice against the same store
   simulates zero trials the second time and returns the bit-identical
   tally — at jobs=1 and jobs=4. *)
let test_campaign_twice_zero_resim () =
  List.iter
    (fun jobs ->
      with_store (fun s ->
          let trials = 96 and seed = 11 in
          let cold, warm =
            Engine.with_engine ~jobs (fun e ->
                let cold =
                  Engine.campaign_stored e ~seed ~store:s ~trials spec
                in
                let warm =
                  Engine.campaign_stored e ~seed ~store:s ~trials spec
                in
                (cold, warm))
          in
          Alcotest.(check int) "cold run simulated everything" trials
            cold.Engine.simulated;
          Alcotest.(check int) "warm run simulated nothing" 0
            warm.Engine.simulated;
          Alcotest.(check int) "warm run served everything" trials
            warm.Engine.served;
          Alcotest.(check bool) "both complete" true
            (cold.Engine.complete && warm.Engine.complete);
          same_result
            (Printf.sprintf "jobs=%d warm vs cold" jobs)
            warm.Engine.result cold.Engine.result;
          (* A separate process (fresh engine, fresh caches) over the
             same directory is served too. *)
          let other =
            Engine.with_engine ~jobs:1 (fun e ->
                Engine.campaign_stored e ~seed ~store:s ~trials spec)
          in
          Alcotest.(check int) "fresh engine simulated nothing" 0
            other.Engine.simulated;
          same_result "fresh engine tally" other.Engine.result
            cold.Engine.result))
    [ 1; 4 ]

(* Incremental fill: extending a banked 64-trial cell to 128 simulates
   only the delta and matches a cold 128-trial run bit for bit. *)
let test_incremental_extend () =
  with_store (fun s ->
      let seed = 5 in
      Engine.with_engine ~jobs:2 (fun e ->
          let first = Engine.campaign_stored e ~seed ~store:s ~trials:64 spec in
          Alcotest.(check int) "first fill" 64 first.Engine.simulated;
          let second =
            Engine.campaign_stored e ~seed ~store:s ~trials:128 spec
          in
          Alcotest.(check int) "extension simulated the delta" 64
            second.Engine.simulated;
          Alcotest.(check int) "extension served the prefix" 64
            second.Engine.served;
          let cold = Engine.campaign e ~seed ~trials:128 spec in
          same_result "extended vs cold" second.Engine.result cold;
          (* The cell is now banked at 128: asking for the original 64
             again must not clobber the richer entry. *)
          let smaller =
            Engine.campaign_stored e ~seed ~store:s ~trials:64 spec
          in
          Alcotest.(check int) "oversized entry bypassed" 64
            smaller.Engine.simulated;
          let again =
            Engine.campaign_stored e ~seed ~store:s ~trials:128 spec
          in
          Alcotest.(check int) "128-trial entry still banked" 0
            again.Engine.simulated))

(* The sharding regression: a 2-shard run against one store merges to
   the bit-identical tally of a 1-shard run — at jobs=1 and jobs=4. *)
let test_shard_merge_matches_single () =
  List.iter
    (fun jobs ->
      with_store (fun s ->
          let trials = 192 and seed = 3 in
          let single =
            Engine.with_engine ~jobs (fun e ->
                Engine.campaign e ~seed ~trials spec)
          in
          let s0, s1 =
            Engine.with_engine ~jobs (fun e ->
                let s0 =
                  Engine.campaign_stored e ~seed ~store:s ~shard:(0, 2)
                    ~trials spec
                in
                let s1 =
                  Engine.campaign_stored e ~seed ~store:s ~shard:(1, 2)
                    ~trials spec
                in
                (s0, s1))
          in
          Alcotest.(check bool) "shard 0 incomplete alone" false
            s0.Engine.complete;
          Alcotest.(check bool) "last shard completes the cell" true
            s1.Engine.complete;
          Alcotest.(check int) "shards partition the trials" trials
            (s0.Engine.simulated + s1.Engine.simulated);
          same_result
            (Printf.sprintf "jobs=%d merged vs single" jobs)
            s1.Engine.result single;
          (* The merged full entry now serves unsharded requests. *)
          let warm =
            Engine.with_engine ~jobs:1 (fun e ->
                Engine.campaign_stored e ~seed ~store:s ~trials spec)
          in
          Alcotest.(check int) "merged entry serves with zero simulation" 0
            warm.Engine.simulated;
          same_result "served merge" warm.Engine.result single))
    [ 1; 4 ]

let test_store_rejects_early_stop_and_checkpoint () =
  with_store (fun s ->
      Engine.with_engine ~jobs:1 (fun e ->
          let raises msg f =
            match f () with
            | (_ : Engine.stored_campaign) ->
                Alcotest.fail (msg ^ ": no exception")
            | exception Invalid_argument _ -> ()
          in
          raises "ci_halfwidth" (fun () ->
              Engine.campaign_stored e ~store:s ~ci_halfwidth:1.0 ~trials:64
                spec);
          raises "checkpoint" (fun () ->
              Engine.campaign_stored e ~store:s ~checkpoint:"/tmp/x" ~trials:64
                spec)))

let test_work_queue_and_claims () =
  with_store (fun s ->
      let u =
        {
          Work.workload = "cjpeg";
          size = "fault";
          scheme = "CASTED";
          issue = 2;
          delay = 2;
          model = "reg-bit";
          seed = 7;
          trials = 64;
          fuel_factor = 10;
          retry_budget = -1;
        }
      in
      Alcotest.(check bool) "first enqueue" true (Work.enqueue s u);
      Alcotest.(check bool) "idempotent enqueue" false (Work.enqueue s u);
      (match Work.units s with
      | Ok [ Ok got ] ->
          Alcotest.(check string) "unit round-trips" (Work.address u)
            (Work.address got)
      | Ok l -> Alcotest.failf "expected one unit, got %d" (List.length l)
      | Error msg -> Alcotest.fail msg);
      (match Work.claim s u with
      | Work.Claimed -> ()
      | Work.Busy o -> Alcotest.failf "fresh unit busy (%s)" o);
      (* A live claim (our own pid) is not stealable. *)
      (match Work.claim s u with
      | Work.Busy _ -> ()
      | Work.Claimed -> Alcotest.fail "double-claimed a held lock");
      Work.release s u;
      (match Work.claim s u with
      | Work.Claimed -> ()
      | Work.Busy o -> Alcotest.failf "released unit busy (%s)" o);
      Work.release s u)

let test_work_stale_lock_broken () =
  with_store_dir (fun dir ->
      let s = Store.open_exn ~create:true dir in
      let u =
        {
          Work.workload = "cjpeg";
          size = "fault";
          scheme = "CASTED";
          issue = 2;
          delay = 2;
          model = "reg-bit";
          seed = 7;
          trials = 64;
          fuel_factor = 10;
          retry_budget = -1;
        }
      in
      ignore (Work.enqueue s u);
      (* Forge a lock owned by a dead pid on this host — what a
         SIGKILLed worker leaves behind. *)
      let lock =
        Filename.concat
          (Filename.concat dir "locks")
          (Work.hash u ^ ".lock")
      in
      let dead_pid =
        (* A pid that is almost surely unused; if it happens to be live,
           walk forward. *)
        let rec hunt p =
          match Unix.kill p 0 with
          | () -> hunt (p + 1)
          | exception Unix.Unix_error (Unix.ESRCH, _, _) -> p
          | exception Unix.Unix_error _ -> p
        in
        hunt 3999983
      in
      let oc = open_out lock in
      Printf.fprintf oc "%d@%s\n" dead_pid (Unix.gethostname ());
      close_out oc;
      (match Work.claim s u with
      | Work.Claimed -> ()
      | Work.Busy o -> Alcotest.failf "stale lock not broken (owner %s)" o);
      Work.release s u;
      (* gc_locks sweeps a forged stale lock the same way. *)
      let oc = open_out lock in
      Printf.fprintf oc "%d@%s\n" dead_pid (Unix.gethostname ());
      close_out oc;
      Alcotest.(check int) "gc removed the stale lock" 1 (Work.gc_locks s);
      Alcotest.(check int) "nothing left to gc" 0 (Work.gc_locks s))

let test_gc_shards_after_merge () =
  with_store (fun s ->
      let trials = 128 and seed = 13 in
      Engine.with_engine ~jobs:2 (fun e ->
          let _ =
            Engine.campaign_stored e ~seed ~store:s ~shard:(0, 2) ~trials spec
          in
          let last =
            Engine.campaign_stored e ~seed ~store:s ~shard:(1, 2) ~trials spec
          in
          Alcotest.(check bool) "merged" true last.Engine.complete);
      (match Store.gc_shards s with
      | Ok n -> Alcotest.(check int) "both shard entries swept" 2 n
      | Error msg -> Alcotest.fail msg);
      (* The merged full entry survives the sweep. *)
      Engine.with_engine ~jobs:1 (fun e ->
          let warm = Engine.campaign_stored e ~seed ~store:s ~trials spec in
          Alcotest.(check int) "full entry intact" 0 warm.Engine.simulated))

let suite =
  ( "store",
    [
      case "address golden pins" test_address_golden;
      case "entry roundtrip and counters" test_roundtrip;
      case "entries persist across reopen" test_reopen_persists;
      case "corrupt / mis-addressed / wrong-version refused"
        test_corruption_refused;
      case "non-store directory refused" test_open_refuses_non_store;
      case "campaign twice: zero re-simulation, bit-identical"
        test_campaign_twice_zero_resim;
      case "incremental extension simulates only the delta"
        test_incremental_extend;
      case "2-shard run merges bit-identically to 1 process"
        test_shard_merge_matches_single;
      case "store refuses early-stop and checkpoint combos"
        test_store_rejects_early_stop_and_checkpoint;
      case "work queue enqueue/claim/release" test_work_queue_and_claims;
      case "stale lock of a dead worker is broken" test_work_stale_lock_broken;
      case "gc sweeps merged-away shard entries" test_gc_shards_after_merge;
    ] )
