open Helpers
module Recover = Casted_detect.Recover
module Fault = Casted_sim.Fault
module Decode = Casted_sim.Decode
module Montecarlo = Casted_sim.Montecarlo
module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry

let schedule_recovered ?(issue_width = 2) ?(delay = 2) p =
  let hardened, stats = Recover.program Options.default p in
  Casted_ir.Validate.check_exn hardened;
  let config = Config.dual_core ~issue_width ~delay in
  let schedule =
    Casted_sched.List_scheduler.schedule_program config
      (Casted_sched.Assign.Adaptive Casted_sched.Bug.default_options)
      hardened
  in
  (schedule, stats)

(* A fully protected integer kernel (GP-only, so every operand of a
   non-replicated instruction is voted, not just checked). *)
let kernel () =
  program_of (fun b ->
      let base = B.movi b 0x100L in
      let acc = B.movi b 7L in
      B.counted_loop b ~from:0L ~until:24L (fun b i ->
          let x = B.mul b acc acc in
          let y = B.add b x i in
          let (_ : Reg.t) = B.andi b ~dst:acc y 0x1FFFL in
          B.st b Opcode.W8 ~value:acc ~base 0L);
      let out = B.movi b 0x40L in
      let v = B.ld b Opcode.W8 base 0L in
      B.st b Opcode.W8 ~value:v ~base:out 0L)

let test_semantics_preserved () =
  List.iter
    (fun w ->
      let p = w.W.build W.Fault in
      let plain = run_scheme Scheme.Noed p in
      let schedule, _ = schedule_recovered p in
      let r = Simulator.run schedule in
      (match r.Outcome.termination with
      | Outcome.Exit 0 -> ()
      | t -> Alcotest.failf "%s: %a" w.W.name Outcome.pp_termination t);
      Alcotest.(check string) (w.W.name ^ " output") plain.Outcome.output
        r.Outcome.output)
    Registry.all

let test_stats_shape () =
  let p = kernel () in
  let _, stats = schedule_recovered p in
  Alcotest.(check bool) "two replicas per original op" true
    (stats.Recover.replicas mod 2 = 0 && stats.Recover.replicas > 0);
  Alcotest.(check bool) "votes emitted" true (stats.Recover.votes > 0);
  (* GP operands are voted; only the loop branch predicate falls back
     to a detection check. *)
  Alcotest.(check bool) "votes dominate fallbacks" true
    (stats.Recover.votes > stats.Recover.fallback_checks)

let test_fallback_checks_for_float () =
  let p =
    program_of (fun b ->
        let x = B.fmovi b 1.5 in
        let y = B.fmul b x x in
        let base = B.movi b 0x100L in
        B.fst_ b ~value:y ~base 0L)
  in
  let _, stats = schedule_recovered p in
  Alcotest.(check bool) "float store operand falls back to a check" true
    (stats.Recover.fallback_checks > 0)

(* The headline property: single faults are *corrected*, not merely
   detected. Exhaustively inject into every defining instruction; the
   output must match the golden run in the overwhelming majority of
   trials, with zero detections (nothing traps) on GP faults. *)
let test_faults_are_recovered () =
  let p = kernel () in
  let schedule, _ = schedule_recovered p in
  let golden = Simulator.run schedule in
  let fuel = 10 * golden.Outcome.dyn_insns in
  let outcomes = Hashtbl.create 8 in
  let bump k =
    Hashtbl.replace outcomes k (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes k))
  in
  let population = golden.Outcome.dyn_defs in
  (* Sample every 7th def to keep the sweep fast but systematic. *)
  let injected = ref 0 in
  let recovered = ref 0 in
  let rec go def =
    if def < population then begin
      let fault = Fault.Reg_flip { target_slot = def; bit = 11 } in
      let r = Simulator.run ~fault ~fuel schedule in
      incr injected;
      let c = Montecarlo.classify ~golden r in
      bump (Montecarlo.class_name c);
      (* Benign = the flipped copy never mattered; Recovered = a vote
         actively repaired it. Both end bit-identical to golden. *)
      if c = Montecarlo.Benign || c = Montecarlo.Recovered then
        incr recovered;
      go (def + 7)
    end
  in
  go 0;
  (* Faults on the predicate path are detected (fail-stop), not
     corrected, so full recovery is not 100%; silent corruption must
     stay at zero and the large majority must be repaired. *)
  Alcotest.(check (option int)) "no silent corruption" None
    (Hashtbl.find_opt outcomes (Montecarlo.class_name Montecarlo.Data_corrupt));
  let rate = float_of_int !recovered /. float_of_int !injected in
  if rate < 0.70 then
    Alcotest.failf "only %.1f%% of faults recovered (%s)" (100.0 *. rate)
      (String.concat ", "
         (Hashtbl.fold
            (fun k v acc -> Printf.sprintf "%s=%d" k v :: acc)
            outcomes []))

let test_recovery_beats_detection_on_completion () =
  (* Under detection (CASTED), a fault usually stops the program; under
     recovery (CASTED-R), it usually completes with the right output. *)
  let p = kernel () in
  let det = Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 p in
  let det_result = Montecarlo.run ~trials:150 det.Pipeline.schedule in
  let rec_schedule, _ = schedule_recovered p in
  let rec_result = Montecarlo.run ~trials:150 rec_schedule in
  Alcotest.(check bool) "detection detects" true
    (det_result.Montecarlo.detected > 0);
  Alcotest.(check bool) "recovery completes benignly far more often" true
    (Montecarlo.percent rec_result Montecarlo.Benign
     +. Montecarlo.percent rec_result Montecarlo.Recovered
    > Montecarlo.percent det_result Montecarlo.Benign +. 25.0);
  Alcotest.(check bool) "recovery (almost) never silently corrupts" true
    (Montecarlo.percent rec_result Montecarlo.Data_corrupt < 3.0)

(* TMR through the pipeline entry point (scheme dispatch, not the raw
   pass): a trial whose fault was voted out must be bit-identical to
   the golden run — same output bytes, same exit code — not merely
   "close". *)
let test_tmr_single_fault_bit_identity () =
  let p = kernel () in
  let c = Pipeline.compile ~scheme:Scheme.Tmr ~issue_width:2 ~delay:2 p in
  let s = c.Pipeline.schedule in
  let golden = Simulator.run s in
  let fuel = 10 * golden.Outcome.dyn_insns in
  let corrected = ref 0 in
  let rec go def =
    if def < golden.Outcome.dyn_defs && !corrected < 5 then begin
      let fault = Fault.Reg_flip { target_slot = def; bit = 11 } in
      let r = Simulator.run ~fault ~fuel s in
      if r.Outcome.dyn_corrections > 0 && r.Outcome.termination = Outcome.Exit 0
      then begin
        incr corrected;
        Alcotest.(check string)
          (Printf.sprintf "def %d: output bit-identical" def)
          golden.Outcome.output r.Outcome.output;
        Alcotest.(check int)
          (Printf.sprintf "def %d: exit code" def)
          golden.Outcome.exit_code r.Outcome.exit_code
      end;
      go (def + 3)
    end
  in
  go 0;
  Alcotest.(check bool) "some trials were actively corrected" true
    (!corrected > 0)

(* Rollback retry budgets. A fault detected inside the region it
   corrupts is repaired by one restore (the re-execution runs with the
   fault disarmed). A fault that corrupts state *before* the next
   checkpoint and is detected *after* it poisons the snapshot itself:
   every retry restores the same corrupt state, the budget runs out,
   and the original detection is reported — raising the budget cannot
   help. *)
let test_rollback_budget_exhaustion () =
  let p = kernel () in
  let c = Pipeline.compile ~scheme:Scheme.Rollback ~issue_width:2 ~delay:2 p in
  let decoded = Decode.of_schedule c.Pipeline.schedule in
  let golden = Simulator.run_decoded decoded in
  let fuel = 20 * golden.Outcome.dyn_insns in
  let exhausted = ref None in
  let recovered_retries = ref None in
  let rec go def =
    if
      def < golden.Outcome.dyn_defs
      && (!exhausted = None || !recovered_retries = None)
    then begin
      let fault = Fault.Reg_flip { target_slot = def; bit = 11 } in
      let r = Simulator.run_recovering ~fault ~fuel ~retry_budget:1 decoded in
      (match r.Outcome.termination with
      | Outcome.Detected _ when !exhausted = None -> exhausted := Some def
      | Outcome.Recovered { retries; _ } when !recovered_retries = None ->
          recovered_retries := Some retries
      | _ -> ());
      go (def + 1)
    end
  in
  go 0;
  (match !recovered_retries with
  | Some retries ->
      Alcotest.(check int) "recovery used exactly the one retry" 1 retries
  | None -> Alcotest.fail "no fault was recovered by a rollback");
  match !exhausted with
  | None -> Alcotest.fail "no fault exhausts a retry budget of 1"
  | Some def -> (
      let fault = Fault.Reg_flip { target_slot = def; bit = 11 } in
      let again =
        Simulator.run_recovering ~fault ~fuel ~retry_budget:4 decoded
      in
      match again.Outcome.termination with
      | Outcome.Detected _ -> ()
      | t ->
          Alcotest.failf
            "poisoned snapshot must stay detected under a larger budget: %a"
            Outcome.pp_termination t)

(* The acceptance bar of the recovery campaign: under reg-bit faults a
   strict majority of TMR trials on a real workload is classified
   Recovered (the tiny kernels above have too many dead values — most
   flips land benign), and the MWTF accessors are sane against a NOED
   baseline. *)
let test_tmr_majority_recovered () =
  let p =
    match Registry.find "cjpeg" with
    | Some w -> w.W.build W.Fault
    | None -> Alcotest.fail "cjpeg not registered"
  in
  let c = Pipeline.compile ~scheme:Scheme.Tmr ~issue_width:2 ~delay:2 p in
  let r = Montecarlo.run ~seed:3 ~trials:300 c.Pipeline.schedule in
  Alcotest.(check bool)
    (Printf.sprintf "strict majority recovered (%.1f%%)"
       (100.0 *. Montecarlo.recovered_fraction r))
    true
    (Montecarlo.recovered_fraction r > 0.5);
  let baseline = run_scheme Scheme.Noed p in
  let mwtf = Montecarlo.mwtf ~baseline_cycles:baseline.Outcome.cycles r in
  Alcotest.(check bool) "mwtf is positive" true (mwtf > 0.0)

let test_recovery_overhead_larger () =
  (* Triplication costs more than duplication: dynamic instruction count
     must sit clearly above the detection scheme's. *)
  let p = kernel () in
  let det = run_scheme Scheme.Casted p in
  let rec_schedule, _ = schedule_recovered p in
  let rec_run = Simulator.run rec_schedule in
  Alcotest.(check bool) "more dynamic work" true
    (rec_run.Outcome.dyn_insns > det.Outcome.dyn_insns)

let suite =
  ( "recover",
    [
      case "semantics preserved on all workloads" test_semantics_preserved;
      case "triplication statistics" test_stats_shape;
      case "float operands fall back to checks"
        test_fallback_checks_for_float;
      case "single faults are corrected (systematic sweep)"
        test_faults_are_recovered;
      case "recovery completes where detection stops"
        test_recovery_beats_detection_on_completion;
      case "TMR single-fault trial is bit-identical to golden"
        test_tmr_single_fault_bit_identity;
      case "rollback retry budget exhausts on a poisoned snapshot"
        test_rollback_budget_exhaustion;
      case "TMR reg-bit campaign recovers a strict majority"
        test_tmr_majority_recovered;
      case "recovery costs more than detection" test_recovery_overhead_larger;
    ] )
