open Helpers
module Dfg = Casted_sched.Dfg
module Assign = Casted_sched.Assign
module Bug = Casted_sched.Bug
module List_scheduler = Casted_sched.List_scheduler
module Schedule = Casted_sched.Schedule

let latency i = Latency.of_op Latency.default i.Insn.op

let dfg_of body =
  let p = program_of body in
  let blk = List.hd (Program.entry_func p).Func.blocks in
  Dfg.build ~latency blk

let test_assignment_in_range () =
  let dfg =
    dfg_of (fun b ->
        let x = B.movi b 1L in
        let y = B.addi b x 1L in
        ignore (B.add b x y))
  in
  List.iter
    (fun clusters ->
      let config = Config.make ~clusters ~issue_width:1 ~delay:1 () in
      let a = Bug.assign Bug.default_options config dfg in
      Array.iter
        (fun c ->
          Alcotest.(check bool) "in range" true (c >= 0 && c < clusters))
        a)
    [ 1; 2; 3 ]

let test_single_cluster_trivial () =
  let dfg = dfg_of (fun b -> ignore (B.movi b 1L)) in
  let a =
    Bug.assign Bug.default_options (Config.single_core ~issue_width:2) dfg
  in
  Array.iter (fun c -> Alcotest.(check int) "cluster 0" 0 c) a

let test_spreads_independent_work () =
  (* Two long independent chains on 1-wide clusters: BUG must use both
     clusters, otherwise one chain would wait on issue slots. *)
  let dfg =
    dfg_of (fun b ->
        let x = ref (B.movi b 1L) in
        let y = ref (B.movi b 2L) in
        for _ = 1 to 6 do
          x := B.addi b !x 1L;
          y := B.addi b !y 1L
        done)
  in
  let config = Config.dual_core ~issue_width:1 ~delay:1 in
  let a = Bug.assign Bug.default_options config dfg in
  let used = Array.to_list a |> List.sort_uniq Int.compare in
  Alcotest.(check (list int)) "both clusters used" [ 0; 1 ] used

let test_dependent_chain_stays_together () =
  (* A single serial chain with a large delay: splitting it across
     clusters would cost the delay per hop, so BUG must keep it on one
     cluster. *)
  let dfg =
    dfg_of (fun b ->
        let x = ref (B.movi b 1L) in
        for _ = 1 to 10 do
          x := B.addi b !x 1L
        done)
  in
  let config = Config.dual_core ~issue_width:2 ~delay:4 in
  let a = Bug.assign Bug.default_options config dfg in
  (* All the chain instructions (everything except possibly the
     terminator) on one cluster. *)
  let n = Dfg.num_nodes dfg in
  let chain = Array.sub a 0 (n - 1) in
  let distinct = Array.to_list chain |> List.sort_uniq Int.compare in
  Alcotest.(check int) "chain on one cluster" 1 (List.length distinct)

let schedule_length strategy config dfg =
  let a = Assign.compute strategy config dfg in
  let bs = List_scheduler.schedule_block config dfg ~assignment:a ~label:"x" in
  Schedule.block_length bs

(* The paper's motivating claim: the adaptive placement is at least as
   good as the better of the two fixed ones, on both example regimes. *)
let hardened_example_dfg () =
  let p =
    program_of (fun b ->
        let base = B.movi b 0x100L in
        let a = B.ld b Opcode.W8 base 0L in
        let x = B.addi b a 17L in
        let y = B.xori b x 90L in
        let z = B.muli b y 3L in
        B.st b Opcode.W8 ~value:z ~base 8L;
        let w = B.ld b Opcode.W8 base 16L in
        let v = B.add b w z in
        B.st b Opcode.W8 ~value:v ~base 24L)
  in
  let hardened, _ = Casted_detect.Transform.program Options.default p in
  let blk = List.hd (Program.entry_func hardened).Func.blocks in
  Dfg.build ~latency blk

let test_adaptive_at_least_matches_fixed () =
  let dfg = hardened_example_dfg () in
  List.iter
    (fun (issue_width, delay) ->
      let dual = Config.dual_core ~issue_width ~delay in
      let single = Config.single_core ~issue_width in
      let sced = schedule_length Assign.Single_cluster single dfg in
      let dced = schedule_length Assign.Dual_fixed dual dfg in
      let casted =
        schedule_length (Assign.Adaptive Bug.default_options) dual dfg
      in
      (* Greedy heuristics admit small misses; allow 10% slack, as the
         paper's own Fig. 6/7 data does in a few points. *)
      let best = min sced dced in
      if float_of_int casted > 1.1 *. float_of_int best then
        Alcotest.failf "issue %d delay %d: CASTED %d vs best fixed %d"
          issue_width delay casted best)
    [ (1, 1); (1, 4); (2, 1); (2, 4); (4, 2) ]

let test_tie_break_modes_both_work () =
  let dfg = hardened_example_dfg () in
  let config = Config.dual_core ~issue_width:2 ~delay:2 in
  List.iter
    (fun tie_break ->
      let a = Bug.assign { Bug.tie_break } config dfg in
      Alcotest.(check int) "covers all nodes" (Dfg.num_nodes dfg)
        (Array.length a))
    [ Bug.Prefer_lower; Bug.Prefer_critical_pred ]

(* Prefer_lower must keep the lowest-numbered cluster on a completion
   tie. Independent roots on an empty reservation table tie across every
   cluster (same arrival, same first free cycle), so each must land on
   cluster 0 — whatever the cluster count, and regardless of any
   critical-predecessor state left over from earlier candidates. *)
let test_prefer_lower_keeps_lowest_on_tie () =
  let dfg =
    dfg_of (fun b ->
        ignore (B.movi b 1L);
        ignore (B.movi b 2L);
        ignore (B.movi b 3L))
  in
  List.iter
    (fun clusters ->
      let config = Config.make ~clusters ~issue_width:8 ~delay:3 () in
      let a = Bug.assign { Bug.tie_break = Bug.Prefer_lower } config dfg in
      Array.iteri
        (fun node c ->
          Alcotest.(check int)
            (Printf.sprintf "node %d on lowest cluster (of %d)" node clusters)
            0 c)
        a)
    [ 1; 2; 3; 4 ]

(* The same property must hold when the tied candidates carry different
   critical predecessors: a chain rooted on cluster 0 keeps its
   dependents there when the completion ties, because Prefer_lower must
   never let crit_pred state override the lowest-cluster rule. *)
let test_prefer_lower_ignores_crit_pred () =
  let dfg =
    dfg_of (fun b ->
        let x = B.movi b 1L in
        let y = B.addi b x 1L in
        ignore (B.add b x y))
  in
  let config = Config.make ~clusters:3 ~issue_width:8 ~delay:0 () in
  (* delay 0: arrival is cluster-independent, so every candidate ties
     and the whole graph must sit on cluster 0. *)
  let a = Bug.assign { Bug.tie_break = Bug.Prefer_lower } config dfg in
  Array.iteri
    (fun node c ->
      Alcotest.(check int) (Printf.sprintf "node %d" node) 0 c)
    a

let suite =
  ( "bug",
    [
      case "assignment in range" test_assignment_in_range;
      case "single cluster trivial" test_single_cluster_trivial;
      case "spreads independent chains" test_spreads_independent_work;
      case "keeps a serial chain together under delay"
        test_dependent_chain_stays_together;
      case "adaptive >= best fixed (paper SS II-B)"
        test_adaptive_at_least_matches_fixed;
      case "tie-break modes" test_tie_break_modes_both_work;
      case "Prefer_lower keeps the lowest cluster on ties"
        test_prefer_lower_keeps_lowest_on_tie;
      case "Prefer_lower is immune to crit_pred state"
        test_prefer_lower_ignores_crit_pred;
    ] )
